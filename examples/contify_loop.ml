(** Walkthrough of Sec. 4: contification, staged exactly as the paper's
    comparison with Moby's local CPS conversion —

    {v
    let f x = rhs in case (f y) of alts
      --(Float In)-->   case (let f x = rhs in f y) of alts
      --(contify)-->    case (join f x = rhs in jump f y) of alts
      --(jfloat/abort, in the Simplifier)-->
                        join f x = case rhs of alts in jump f y
    v}

    Run with: [dune exec examples/contify_loop.exe] *)

open Fj_core
module B = Builder

let show title e =
  Fmt.pr "@.---- %s ----@.%a@." title Pretty.pp e;
  match Lint.lint_result Datacon.builtins e with
  | Ok _ -> ()
  | Error err -> Fmt.pr "LINT ERROR: %a@." Lint.pp_error err

let () =
  (* let f x = x + 100 in case (f 1) of { _DEFAULT -> ... } with the
     call under an evaluation context E = case [] of alts. *)
  let e0 =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 100)))
      (fun f ->
        B.case
          (Syntax.App (f, B.int 1))
          [
            B.alt_lit (Literal.Int 101) B.true_;
            B.alt_default B.false_;
          ])
  in
  show "input: call under an intervening context E" e0;

  (* Stage 1: Float In narrows f's scope into the scrutinee — now every
     call to f is a tail call OF ITS SCOPE. *)
  let e1, moved = Float_in.run e0 in
  assert moved;
  show "after Float In (float axiom, right to left)" e1;

  (* Stage 2: contify — f becomes a join point, the call a jump. *)
  let e2 = Contify.contify e1 in
  show "after contification (Fig. 5)" e2;

  (* Stage 3: the simplifier's jfloat pushes E into the join's rhs, and
     abort discards it at the jump. *)
  let e3 =
    Simplify.simplify
      (Simplify.default_config ~inline_threshold:0 ~dup_threshold:0 ())
      e2
  in
  show "after the Simplifier (jfloat + abort)" e3;

  (* Recursive contification: the paper's find/go loop. *)
  Fmt.pr "@.==== recursive join points (Sec. 5 find) ====@.";
  let denv, core =
    Fj_surface.Prelude.compile
      {|
def main =
  let rec go n acc = if n <= 0 then acc else go (n - 1) (acc + n)
  in go 100 0
|}
  in
  Fmt.pr "@.surface elaborates to:@.%a@." Pretty.pp core;
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv ()
  in
  let opt, report = Pipeline.run_report cfg core in
  show "after the pipeline: a recursive join point, zero allocation" opt;
  let t, s = Eval.run_deep opt in
  Fmt.pr "@.result = %a   (%a)@." Eval.pp_tree t Eval.pp_stats s;
  Fmt.pr "contified bindings this run: %d@." (Pipeline.contified report)
