(** Regression corpus replay: every retained interesting case under
    [test/corpus/] must still pass the full differential oracle
    ({!Fj_core.Fuzz.check_program}). The corpus is grown by
    [fjc fuzz --corpus-out test/corpus] — cases that extended
    optimization coverage when first seen — so replaying it pins both
    the oracle verdicts and the coverage those programs bought. *)

open Fj_core

let corpus_dir = "../../../test/corpus"
(* dune runs tests in _build/default/test; the corpus is copied in via
   the glob dep in test/dune. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_programs () =
  let dir =
    if Sys.file_exists corpus_dir then corpus_dir
    else "test/corpus" (* when run from the repo root *)
  in
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sexp")
    |> List.sort String.compare
    |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let replay_corpus () =
  let cases = corpus_programs () in
  Alcotest.(check bool) "corpus present" true (List.length cases >= 10);
  let cover = Coverage.create () in
  List.iter
    (fun (name, text) ->
      let e = Sexp.read Datacon.builtins text in
      match Fuzz.check_program ~cover e with
      | Fuzz.Pass | Fuzz.Skip _ -> ()
      | Fuzz.Fail { mode; kind; detail } ->
          Alcotest.failf "%s: %s failure in %s: %s" name kind mode detail)
    cases;
  (* The whole point of retention: replaying the corpus rebuilds a
     non-trivial slice of the coverage universe deterministically. *)
  Alcotest.(check bool)
    "corpus coverage is substantial" true
    (Coverage.covered cover > 30);
  Alcotest.(check int) "in-universe" 0 (Coverage.unknown_hits cover)

let corpus_parses_deterministically () =
  (* Sexp round trip: reading and re-printing a corpus entry is
     stable, so the on-disk form is canonical. *)
  List.iter
    (fun (name, text) ->
      let e = Sexp.read Datacon.builtins text in
      let printed = Sexp.write e in
      let e' = Sexp.read Datacon.builtins printed in
      Alcotest.(check string)
        (name ^ " round trips")
        printed (Sexp.write e'))
    (corpus_programs ())

let tests =
  [
    Alcotest.test_case "replay through the oracle" `Quick replay_corpus;
    Alcotest.test_case "entries are canonical" `Quick
      corpus_parses_deterministically;
  ]
