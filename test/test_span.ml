(** Tests for {!Fj_core.Span} and the Chrome trace-event export:
    nesting depth, the ring bound, annotation, exception safety, the
    duration contract shared with {!Pipeline.pass_record}, and the
    [Pipeline.perfetto_json] envelope (parses; every event carries
    ph/name/pid/tid; "X" events carry ts/dur; one named track per
    configuration; pass spans nest inside the root compile span with
    durations consistent with the per-pass wall-clock fields). *)

open Fj_core
open Util

let json_obj = function
  | Telemetry.Json.Obj fields -> fields
  | j -> Alcotest.failf "expected an object, got %s" (Telemetry.Json.to_string j)

let field name j =
  match List.assoc_opt name (json_obj j) with
  | Some v -> v
  | None ->
      Alcotest.failf "missing field %S in %s" name (Telemetry.Json.to_string j)

let int_field name j =
  match field name j with
  | Telemetry.Json.Int n -> n
  | v -> Alcotest.failf "field %S not an int: %s" name (Telemetry.Json.to_string v)

let str_field name j =
  match field name j with
  | Telemetry.Json.Str s -> s
  | v -> Alcotest.failf "field %S not a string: %s" name (Telemetry.Json.to_string v)

(* ------------------------------------------------------------------ *)
(* The collector itself                                                *)
(* ------------------------------------------------------------------ *)

let nesting_and_depth () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~cat:"outer" "a" (fun () ->
          Span.with_span ~cat:"inner" "b" (fun () -> ());
          Span.with_span ~cat:"inner" "c" (fun () -> ())));
  match Span.spans c with
  | [ b; c'; a ] ->
      (* Children complete before their parents. *)
      Alcotest.(check string) "first completed" "b" b.Span.sp_name;
      Alcotest.(check string) "second completed" "c" c'.Span.sp_name;
      Alcotest.(check string) "root completes last" "a" a.Span.sp_name;
      Alcotest.(check int) "root depth" 0 a.Span.sp_depth;
      Alcotest.(check int) "child depth" 1 b.Span.sp_depth;
      Alcotest.(check string) "category kept" "outer" a.Span.sp_cat;
      (* Children are contained in the parent's interval. *)
      let inside (ch : Span.span) (p : Span.span) =
        ch.sp_start_ms >= p.sp_start_ms
        && ch.sp_start_ms +. ch.sp_dur_ms <= p.sp_start_ms +. p.sp_dur_ms +. 1e-6
      in
      Alcotest.(check bool) "b inside a" true (inside b a);
      Alcotest.(check bool) "c inside a" true (inside c' a)
  | ss -> Alcotest.failf "expected 3 spans, got %d" (List.length ss)

let no_collector_is_noop () =
  (* Publishing without an installed collector must be safe (and is
     the fast path for the machines). *)
  Span.with_span "orphan" (fun () -> Span.annotate "k" Telemetry.Json.Null);
  let v, d = Span.with_span_timed "orphan" (fun () -> 42) in
  Alcotest.(check int) "body result" 42 v;
  Alcotest.(check bool) "duration non-negative" true (d >= 0.0)

let ring_bound_drops_oldest () =
  let c = Span.create ~cap:3 () in
  Span.with_collector c (fun () ->
      for i = 1 to 10 do
        Span.with_span (Fmt.str "s%d" i) (fun () -> ())
      done);
  let names = List.map (fun s -> s.Span.sp_name) (Span.spans c) in
  Alcotest.(check (list string)) "most recent retained" [ "s8"; "s9"; "s10" ]
    names;
  Alcotest.(check int) "evictions counted" 7 (Span.dropped c)

let annotations_recorded () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span "work" (fun () ->
          Span.annotate "steps" (Telemetry.Json.Int 17);
          Span.annotate "steps" (Telemetry.Json.Int 18)));
  match Span.spans c with
  | [ s ] ->
      Alcotest.(check int) "later value wins" 18
        (match List.assoc "steps" s.Span.sp_args with
        | Telemetry.Json.Int n -> n
        | _ -> -1)
  | _ -> Alcotest.fail "expected one span"

let exception_still_records () =
  let c = Span.create () in
  (try
     Span.with_collector c (fun () ->
         Span.with_span "boom" (fun () -> failwith "bang"))
   with Failure _ -> ());
  match Span.spans c with
  | [ s ] ->
      Alcotest.(check string) "span recorded" "boom" s.Span.sp_name;
      Alcotest.(check bool) "marked raised" true
        (List.mem_assoc "raised" s.Span.sp_args)
  | ss -> Alcotest.failf "expected 1 span, got %d" (List.length ss)

let timed_matches_span () =
  let c = Span.create () in
  let (), d =
    Span.with_collector c (fun () ->
        Span.with_span_timed "t" (fun () -> Sys.opaque_identity (ignore [ 1 ])))
  in
  match Span.spans c with
  | [ s ] ->
      (* The contract Pipeline relies on: the returned duration IS the
         recorded span's duration, not a third clock read. *)
      Alcotest.(check (float 0.0)) "identical duration" s.Span.sp_dur_ms d
  | _ -> Alcotest.fail "expected one span"

let trace_event_fields () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~cat:"pass" "p" (fun () ->
          Span.annotate "size" (Telemetry.Json.Int 3)));
  match Span.trace_events ~pid:9 ~tid:4 c with
  | [ ev ] ->
      Alcotest.(check string) "ph" "X" (str_field "ph" ev);
      Alcotest.(check string) "name" "p" (str_field "name" ev);
      Alcotest.(check string) "cat" "pass" (str_field "cat" ev);
      Alcotest.(check int) "pid" 9 (int_field "pid" ev);
      Alcotest.(check int) "tid" 4 (int_field "tid" ev);
      Alcotest.(check bool) "ts integer µs" true (int_field "ts" ev >= 0);
      Alcotest.(check bool) "dur integer µs" true (int_field "dur" ev >= 0);
      Alcotest.(check int) "args carried" 3 (int_field "size" (field "args" ev))
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* The pipeline's Perfetto export                                      *)
(* ------------------------------------------------------------------ *)

let cc_src =
  {|
def main =
  let rec go i acc =
    if i > 50 then acc
    else if odd i then go (i + 1) (acc + i)
    else go (i + 1) acc
  in go 1 0
|}

let report_for mode =
  let denv, core = Fj_surface.Prelude.compile cc_src in
  let cfg =
    Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 ()
  in
  snd (Pipeline.run_report cfg core)

let all_modes = [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]

let perfetto_structure () =
  let reports = List.map report_for all_modes in
  let json = Pipeline.perfetto_json ~file:"test.fj" reports in
  let text = Telemetry.Json.to_string json in
  Alcotest.(check bool) "well-formed JSON" true
    (Telemetry.Json.is_well_formed text);
  let events =
    match field "traceEvents" json with
    | Telemetry.Json.Arr evs -> evs
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  (* Every event has ph/name/pid/tid; complete events have ts+dur. *)
  List.iter
    (fun ev ->
      let ph = str_field "ph" ev in
      ignore (str_field "name" ev);
      ignore (int_field "pid" ev);
      ignore (int_field "tid" ev);
      if ph = "X" then (
        Alcotest.(check bool) "ts >= 0" true (int_field "ts" ev >= 0);
        Alcotest.(check bool) "dur >= 0" true (int_field "dur" ev >= 0))
      else Alcotest.(check string) "only X and M events" "M" ph)
    events;
  (* One named track per configuration. *)
  let thread_names =
    List.filter_map
      (fun ev ->
        if str_field "ph" ev = "M" && str_field "name" ev = "thread_name" then
          Some (str_field "name" (field "args" ev), int_field "tid" ev)
        else None)
      events
  in
  List.iter
    (fun mode ->
      let mname = Pipeline.mode_name mode in
      Alcotest.(check bool)
        (Fmt.str "track for %s" mname)
        true
        (List.mem_assoc mname thread_names))
    all_modes;
  let tids = List.sort_uniq compare (List.map snd thread_names) in
  Alcotest.(check int) "three distinct tids" 3 (List.length tids);
  (* Histogram summaries folded into the envelope. *)
  let other = field "otherData" json in
  Alcotest.(check string) "file recorded" "test.fj" (str_field "file" other);
  let metrics = json_obj (field "metrics" other) in
  List.iter
    (fun mode ->
      let mname = Pipeline.mode_name mode in
      match List.assoc_opt mname metrics with
      | Some m ->
          let hs = json_obj (field "histograms" m) in
          Alcotest.(check bool)
            (Fmt.str "%s has pass.duration_ms histogram" mname)
            true
            (List.mem_assoc "pass.duration_ms" hs);
          let summary = List.assoc "pass.duration_ms" hs in
          List.iter
            (fun k -> ignore (field k summary))
            [ "count"; "sum"; "min"; "max"; "p50"; "p95" ]
      | None -> Alcotest.failf "no metrics for %s" mname)
    all_modes

let perfetto_durations_match_pass_records () =
  let r = report_for Pipeline.Join_points in
  let root, children =
    match
      List.partition (fun s -> s.Span.sp_depth = 0) (Pipeline.spans r)
    with
    | [ root ], rest -> (root, rest)
    | roots, _ ->
        Alcotest.failf "expected exactly one root span, got %d"
          (List.length roots)
  in
  Alcotest.(check string) "root is the compile span" "compile"
    root.Span.sp_name;
  (* Every child lies inside the compile interval. *)
  List.iter
    (fun (s : Span.span) ->
      Alcotest.(check bool)
        (Fmt.str "%s nested in compile" s.sp_name)
        true
        (s.sp_start_ms >= root.sp_start_ms
        && s.sp_start_ms +. s.sp_dur_ms
           <= root.sp_start_ms +. root.sp_dur_ms +. 1e-6))
    children;
  (* Each pass record's wall clock IS its span's duration. The one
     exception is the rules pass, whose record is renamed after the
     fact; this config runs no rewrite rules, so it never appears. *)
  let pass_spans =
    List.filter (fun (s : Span.span) -> s.sp_cat = "pass") children
  in
  List.iter
    (fun (p : Pipeline.pass_record) ->
      match
        List.find_opt (fun (s : Span.span) -> s.sp_name = p.pass) pass_spans
      with
      | Some s ->
          Alcotest.(check (float 1e-9))
            (Fmt.str "span dur = pass record %s" p.pass)
            p.duration_ms s.sp_dur_ms
      | None -> Alcotest.failf "no span for pass %s" p.pass)
    (Pipeline.passes r);
  (* And the compile span covers the sum of its (disjoint) passes. *)
  let summed =
    List.fold_left (fun acc (s : Span.span) -> acc +. s.sp_dur_ms) 0.0
      pass_spans
  in
  Alcotest.(check bool) "pass spans fit in the compile span" true
    (summed <= root.sp_dur_ms +. 1e-6)

let report_json_carries_spans_and_metrics () =
  let r = report_for Pipeline.Join_points in
  let json = Pipeline.report_to_json r in
  match Telemetry.Json.parse json with
  | Ok obj ->
      (match field "spans" obj with
      | Telemetry.Json.Arr (_ :: _) -> ()
      | _ -> Alcotest.fail "spans array empty or missing");
      ignore (field "histograms" (field "metrics" obj))
  | Error m -> Alcotest.failf "report JSON does not parse: %s" m

let tests =
  [
    test "nesting, depth, completion order" nesting_and_depth;
    test "no installed collector is a safe no-op" no_collector_is_noop;
    test "ring bound retains the most recent spans" ring_bound_drops_oldest;
    test "annotations attach to the open span" annotations_recorded;
    test "a raising body still records its span" exception_still_records;
    test "with_span_timed returns the recorded duration" timed_matches_span;
    test "trace events carry ph/ts/dur/name/pid/tid" trace_event_fields;
    test "perfetto export: tracks, fields, histograms" perfetto_structure;
    test "pass spans nest and match per-pass wall clock"
      perfetto_durations_match_pass_records;
    test "report JSON carries spans and metrics" report_json_carries_spans_and_metrics;
  ]
