(** Tests for {!Fj_core.Span} and the Chrome trace-event export:
    nesting depth, the ring bound, annotation, exception safety, the
    duration contract shared with {!Pipeline.pass_record}, and the
    [Pipeline.perfetto_json] envelope (parses; every event carries
    ph/name/pid/tid; "X" events carry ts/dur, "C" GC counter samples
    carry word deltas; one named track per configuration; pass spans
    nest inside the root compile span with durations consistent with
    the per-pass wall-clock fields), plus the folded flamegraph
    export (every span exactly once; exclusive weights sum to the
    root's total; deterministic; allocation weighting). *)

open Fj_core
open Util

let json_obj = function
  | Telemetry.Json.Obj fields -> fields
  | j -> Alcotest.failf "expected an object, got %s" (Telemetry.Json.to_string j)

let field name j =
  match List.assoc_opt name (json_obj j) with
  | Some v -> v
  | None ->
      Alcotest.failf "missing field %S in %s" name (Telemetry.Json.to_string j)

let int_field name j =
  match field name j with
  | Telemetry.Json.Int n -> n
  | v -> Alcotest.failf "field %S not an int: %s" name (Telemetry.Json.to_string v)

let str_field name j =
  match field name j with
  | Telemetry.Json.Str s -> s
  | v -> Alcotest.failf "field %S not a string: %s" name (Telemetry.Json.to_string v)

(* ------------------------------------------------------------------ *)
(* The collector itself                                                *)
(* ------------------------------------------------------------------ *)

let nesting_and_depth () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~cat:"outer" "a" (fun () ->
          Span.with_span ~cat:"inner" "b" (fun () -> ());
          Span.with_span ~cat:"inner" "c" (fun () -> ())));
  match Span.spans c with
  | [ b; c'; a ] ->
      (* Children complete before their parents. *)
      Alcotest.(check string) "first completed" "b" b.Span.sp_name;
      Alcotest.(check string) "second completed" "c" c'.Span.sp_name;
      Alcotest.(check string) "root completes last" "a" a.Span.sp_name;
      Alcotest.(check int) "root depth" 0 a.Span.sp_depth;
      Alcotest.(check int) "child depth" 1 b.Span.sp_depth;
      Alcotest.(check string) "category kept" "outer" a.Span.sp_cat;
      (* Children are contained in the parent's interval. *)
      let inside (ch : Span.span) (p : Span.span) =
        ch.sp_start_ms >= p.sp_start_ms
        && ch.sp_start_ms +. ch.sp_dur_ms <= p.sp_start_ms +. p.sp_dur_ms +. 1e-6
      in
      Alcotest.(check bool) "b inside a" true (inside b a);
      Alcotest.(check bool) "c inside a" true (inside c' a)
  | ss -> Alcotest.failf "expected 3 spans, got %d" (List.length ss)

let no_collector_is_noop () =
  (* Publishing without an installed collector must be safe (and is
     the fast path for the machines). *)
  Span.with_span "orphan" (fun () -> Span.annotate "k" Telemetry.Json.Null);
  let v, d = Span.with_span_timed "orphan" (fun () -> 42) in
  Alcotest.(check int) "body result" 42 v;
  Alcotest.(check bool) "duration non-negative" true (d >= 0.0)

let ring_bound_drops_oldest () =
  let c = Span.create ~cap:3 () in
  Span.with_collector c (fun () ->
      for i = 1 to 10 do
        Span.with_span (Fmt.str "s%d" i) (fun () -> ())
      done);
  let names = List.map (fun s -> s.Span.sp_name) (Span.spans c) in
  Alcotest.(check (list string)) "most recent retained" [ "s8"; "s9"; "s10" ]
    names;
  Alcotest.(check int) "evictions counted" 7 (Span.dropped c)

let annotations_recorded () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span "work" (fun () ->
          Span.annotate "steps" (Telemetry.Json.Int 17);
          Span.annotate "steps" (Telemetry.Json.Int 18)));
  match Span.spans c with
  | [ s ] ->
      Alcotest.(check int) "later value wins" 18
        (match List.assoc "steps" s.Span.sp_args with
        | Telemetry.Json.Int n -> n
        | _ -> -1)
  | _ -> Alcotest.fail "expected one span"

let exception_still_records () =
  let c = Span.create () in
  (try
     Span.with_collector c (fun () ->
         Span.with_span "boom" (fun () -> failwith "bang"))
   with Failure _ -> ());
  match Span.spans c with
  | [ s ] ->
      Alcotest.(check string) "span recorded" "boom" s.Span.sp_name;
      Alcotest.(check bool) "marked raised" true
        (List.mem_assoc "raised" s.Span.sp_args)
  | ss -> Alcotest.failf "expected 1 span, got %d" (List.length ss)

let timed_matches_span () =
  let c = Span.create () in
  let (), d =
    Span.with_collector c (fun () ->
        Span.with_span_timed "t" (fun () -> Sys.opaque_identity (ignore [ 1 ])))
  in
  match Span.spans c with
  | [ s ] ->
      (* The contract Pipeline relies on: the returned duration IS the
         recorded span's duration, not a third clock read. *)
      Alcotest.(check (float 0.0)) "identical duration" s.Span.sp_dur_ms d
  | _ -> Alcotest.fail "expected one span"

let trace_event_fields () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~cat:"pass" "p" (fun () ->
          Span.annotate "size" (Telemetry.Json.Int 3)));
  match Span.trace_events ~pid:9 ~tid:4 c with
  | [ ev ] ->
      Alcotest.(check string) "ph" "X" (str_field "ph" ev);
      Alcotest.(check string) "name" "p" (str_field "name" ev);
      Alcotest.(check string) "cat" "pass" (str_field "cat" ev);
      Alcotest.(check int) "pid" 9 (int_field "pid" ev);
      Alcotest.(check int) "tid" 4 (int_field "tid" ev);
      Alcotest.(check bool) "ts integer µs" true (int_field "ts" ev >= 0);
      Alcotest.(check bool) "dur integer µs" true (int_field "dur" ev >= 0);
      Alcotest.(check int) "args carried" 3 (int_field "size" (field "args" ev))
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

(* ------------------------------------------------------------------ *)
(* The pipeline's Perfetto export                                      *)
(* ------------------------------------------------------------------ *)

let cc_src =
  {|
def main =
  let rec go i acc =
    if i > 50 then acc
    else if odd i then go (i + 1) (acc + i)
    else go (i + 1) acc
  in go 1 0
|}

let report_for mode =
  let denv, core = Fj_surface.Prelude.compile cc_src in
  let cfg =
    Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 ()
  in
  snd (Pipeline.run_report cfg core)

let all_modes = [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]

let perfetto_structure () =
  let reports = List.map report_for all_modes in
  let json = Pipeline.perfetto_json ~file:"test.fj" reports in
  let text = Telemetry.Json.to_string json in
  Alcotest.(check bool) "well-formed JSON" true
    (Telemetry.Json.is_well_formed text);
  let events =
    match field "traceEvents" json with
    | Telemetry.Json.Arr evs -> evs
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  (* Every event has ph/name/pid/tid; complete events have ts+dur. *)
  List.iter
    (fun ev ->
      let ph = str_field "ph" ev in
      ignore (str_field "name" ev);
      ignore (int_field "pid" ev);
      ignore (int_field "tid" ev);
      if ph = "X" then (
        Alcotest.(check bool) "ts >= 0" true (int_field "ts" ev >= 0);
        Alcotest.(check bool) "dur >= 0" true (int_field "dur" ev >= 0))
      else if ph = "C" then
        (* GC counter samples: one per pass boundary, with the word
           deltas under args. *)
        List.iter
          (fun k -> ignore (int_field k (field "args" ev)))
          [ "minor"; "major"; "promoted" ]
      else Alcotest.(check string) "only X/M/C events" "M" ph)
    events;
  (* The GC counter track exists: one sample per pass span. *)
  let counter_count =
    List.length (List.filter (fun ev -> str_field "ph" ev = "C") events)
  in
  let pass_span_count =
    List.fold_left
      (fun acc r ->
        acc
        + List.length
            (List.filter
               (fun (s : Span.span) -> s.Span.sp_cat = "pass")
               (Pipeline.spans r)))
      0 reports
  in
  Alcotest.(check int) "one GC counter sample per pass span"
    pass_span_count counter_count;
  (* One named track per configuration. *)
  let thread_names =
    List.filter_map
      (fun ev ->
        if str_field "ph" ev = "M" && str_field "name" ev = "thread_name" then
          Some (str_field "name" (field "args" ev), int_field "tid" ev)
        else None)
      events
  in
  List.iter
    (fun mode ->
      let mname = Pipeline.mode_name mode in
      Alcotest.(check bool)
        (Fmt.str "track for %s" mname)
        true
        (List.mem_assoc mname thread_names))
    all_modes;
  let tids = List.sort_uniq compare (List.map snd thread_names) in
  Alcotest.(check int) "three distinct tids" 3 (List.length tids);
  (* Histogram summaries folded into the envelope. *)
  let other = field "otherData" json in
  Alcotest.(check string) "file recorded" "test.fj" (str_field "file" other);
  let metrics = json_obj (field "metrics" other) in
  List.iter
    (fun mode ->
      let mname = Pipeline.mode_name mode in
      match List.assoc_opt mname metrics with
      | Some m ->
          let hs = json_obj (field "histograms" m) in
          Alcotest.(check bool)
            (Fmt.str "%s has pass.duration_ms histogram" mname)
            true
            (List.mem_assoc "pass.duration_ms" hs);
          let summary = List.assoc "pass.duration_ms" hs in
          List.iter
            (fun k -> ignore (field k summary))
            [ "count"; "sum"; "min"; "max"; "p50"; "p95" ]
      | None -> Alcotest.failf "no metrics for %s" mname)
    all_modes

let perfetto_durations_match_pass_records () =
  let r = report_for Pipeline.Join_points in
  let root, children =
    match
      List.partition (fun s -> s.Span.sp_depth = 0) (Pipeline.spans r)
    with
    | [ root ], rest -> (root, rest)
    | roots, _ ->
        Alcotest.failf "expected exactly one root span, got %d"
          (List.length roots)
  in
  Alcotest.(check string) "root is the compile span" "compile"
    root.Span.sp_name;
  (* Every child lies inside the compile interval. *)
  List.iter
    (fun (s : Span.span) ->
      Alcotest.(check bool)
        (Fmt.str "%s nested in compile" s.sp_name)
        true
        (s.sp_start_ms >= root.sp_start_ms
        && s.sp_start_ms +. s.sp_dur_ms
           <= root.sp_start_ms +. root.sp_dur_ms +. 1e-6))
    children;
  (* Each pass record's wall clock IS its span's duration. The one
     exception is the rules pass, whose record is renamed after the
     fact; this config runs no rewrite rules, so it never appears. *)
  let pass_spans =
    List.filter (fun (s : Span.span) -> s.sp_cat = "pass") children
  in
  List.iter
    (fun (p : Pipeline.pass_record) ->
      match
        List.find_opt (fun (s : Span.span) -> s.sp_name = p.pass) pass_spans
      with
      | Some s ->
          Alcotest.(check (float 1e-9))
            (Fmt.str "span dur = pass record %s" p.pass)
            p.duration_ms s.sp_dur_ms
      | None -> Alcotest.failf "no span for pass %s" p.pass)
    (Pipeline.passes r);
  (* And the compile span covers the sum of its (disjoint) passes. *)
  let summed =
    List.fold_left (fun acc (s : Span.span) -> acc +. s.sp_dur_ms) 0.0
      pass_spans
  in
  Alcotest.(check bool) "pass spans fit in the compile span" true
    (summed <= root.sp_dur_ms +. 1e-6)

let report_json_carries_spans_and_metrics () =
  let r = report_for Pipeline.Join_points in
  let json = Pipeline.report_to_json r in
  match Telemetry.Json.parse json with
  | Ok obj ->
      (match field "spans" obj with
      | Telemetry.Json.Arr (_ :: _) -> ()
      | _ -> Alcotest.fail "spans array empty or missing");
      ignore (field "histograms" (field "metrics" obj));
      (* GC accounting rides in the trace JSON: whole-run totals plus
         per-pass deltas and tree-shape stats. *)
      ignore (int_field "minor_words" (field "total_gc" obj));
      (match field "passes" obj with
      | Telemetry.Json.Arr (p :: _) ->
          ignore (int_field "minor_words" (field "gc" p));
          let shape = field "shape_after" p in
          Alcotest.(check bool) "nodes positive" true
            (int_field "nodes" shape > 0);
          Alcotest.(check bool) "depth positive" true
            (int_field "depth" shape > 0);
          Alcotest.(check bool) "heap words >= nodes" true
            (int_field "heap_words" shape >= int_field "nodes" shape)
      | _ -> Alcotest.fail "passes array empty or missing")
  | Error m -> Alcotest.failf "report JSON does not parse: %s" m

(* ------------------------------------------------------------------ *)
(* GC accounting                                                       *)
(* ------------------------------------------------------------------ *)

let with_span_stats_measures_allocation () =
  let c = Span.create () in
  let (), _, gc =
    Span.with_collector c (fun () ->
        Span.with_span_stats "alloc" (fun () ->
            ignore (Sys.opaque_identity (Array.make 1000 0.0))))
  in
  (* A 1000-element float array is ~1001 words; anything smaller means
     the delta missed the allocation. *)
  Alcotest.(check bool) "allocation observed" true
    (Gcstats.alloc_words gc >= 1000.0);
  (match Span.spans c with
  | [ s ] ->
      Alcotest.(check (float 0.0)) "span gc = returned gc"
        (Gcstats.alloc_words gc)
        (Gcstats.alloc_words s.Span.sp_gc)
  | _ -> Alcotest.fail "expected one span");
  (* And without a collector the stats still measure. *)
  let (), _, gc' =
    Span.with_span_stats "orphan" (fun () ->
        ignore (Sys.opaque_identity (Array.make 1000 0.0)))
  in
  Alcotest.(check bool) "measures without collector" true
    (Gcstats.alloc_words gc' >= 1000.0)

let pass_records_carry_gc_and_shape () =
  let r = report_for Pipeline.Join_points in
  let ps = Pipeline.passes r in
  Alcotest.(check bool) "has passes" true (ps <> []);
  List.iter
    (fun (p : Pipeline.pass_record) ->
      Alcotest.(check bool)
        (Fmt.str "%s gc non-negative" p.pass)
        true
        (Gcstats.alloc_words p.gc >= 0.0);
      Alcotest.(check bool)
        (Fmt.str "%s shape sane" p.pass)
        true
        (p.shape_after.Syntax.m_nodes > 0
        && p.shape_after.Syntax.m_depth > 0
        && p.shape_after.Syntax.m_heap_words >= p.shape_after.Syntax.m_nodes))
    ps;
  (* The optimizer does real work: someone allocated. *)
  Alcotest.(check bool) "some pass allocates" true
    (List.exists (fun (p : Pipeline.pass_record) ->
         Gcstats.alloc_words p.gc > 0.0)
       ps);
  (* Pass deltas are slices of the same monotonic counters the run
     total is a delta of, so the total dominates their sum. *)
  let summed =
    List.fold_left
      (fun acc (p : Pipeline.pass_record) -> Gcstats.add acc p.gc)
      Gcstats.zero ps
  in
  Alcotest.(check bool) "total >= sum of passes" true
    (Gcstats.alloc_words (Pipeline.total_gc r)
    >= Gcstats.alloc_words summed -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Folded (collapsed-stack) export                                     *)
(* ------------------------------------------------------------------ *)

let folded_structure_and_weights () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~cat:"root cat" "main loop" (fun () ->
          Span.with_span ~cat:"pass" "x" (fun () ->
              ignore (Sys.opaque_identity (List.init 100 Fun.id)));
          Span.with_span ~cat:"pass" "x" (fun () -> ());
          Span.with_span ~cat:"guard" "lint check" (fun () -> ())));
  let stacks = Span.folded_stacks c in
  (* Root keeps its bare (sanitized) name; nested frames are cat:name;
     duplicate stacks merge: 5 spans, 3 distinct stacks. *)
  Alcotest.(check (list string))
    "stacks, sorted and sanitized"
    [ "main_loop"; "main_loop;guard:lint_check"; "main_loop;pass:x" ]
    (List.map fst stacks);
  List.iter
    (fun (s, w) ->
      Alcotest.(check bool) (Fmt.str "%s weight non-negative" s) true (w >= 0))
    stacks;
  (* Exclusive weights partition the root: their sum is the root
     span's own total, up to one rounded microsecond per span. *)
  let root_us =
    match List.find (fun s -> s.Span.sp_depth = 0) (Span.spans c) with
    | s -> Span.us s.Span.sp_dur_ms
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 stacks in
  Alcotest.(check bool)
    (Fmt.str "weights sum to root total (%d vs %d)" total root_us)
    true
    (abs (total - root_us) <= List.length (Span.spans c));
  (* Deterministic: a second export is identical. *)
  Alcotest.(check bool) "deterministic" true (stacks = Span.folded_stacks c);
  (* The rendered text is one "stack weight" line per entry. *)
  let lines = String.split_on_char '\n' (Span.folded c) in
  Alcotest.(check int) "one line per stack" (List.length stacks)
    (List.length lines);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "unparseable folded line: %s" line
      | Some i ->
          let w = String.sub line (i + 1) (String.length line - i - 1) in
          (match int_of_string_opt w with
          | Some _ -> ()
          | None -> Alcotest.failf "non-integer weight in: %s" line);
          Alcotest.(check bool) "no spaces in stack" true
            (not
               (String.contains
                  (String.sub line 0 i)
                  ' ')))
    lines

let folded_alloc_weight () =
  let c = Span.create () in
  Span.with_collector c (fun () ->
      Span.with_span ~cat:"r" "root" (fun () ->
          Span.with_span ~cat:"p" "hog" (fun () ->
              ignore (Sys.opaque_identity (Array.make 5000 0.0)));
          Span.with_span ~cat:"p" "lean" (fun () -> ())));
  let stacks = Span.folded_stacks ~weight:Span.Alloc_words c in
  let weight name =
    match List.assoc_opt name stacks with
    | Some w -> w
    | None -> Alcotest.failf "missing stack %s" name
  in
  (* Exclusive words: the hog's 5000-word array lands on the hog's
     frame, not the root's. *)
  Alcotest.(check bool) "hog heavy" true (weight "root;p:hog" >= 5000);
  Alcotest.(check bool) "hog dominates root self" true
    (weight "root;p:hog" > weight "root")

let pipeline_folded_covers_compile () =
  let r = report_for Pipeline.Join_points in
  let stacks = Pipeline.folded_stacks r in
  Alcotest.(check bool) "has stacks" true (stacks <> []);
  List.iter
    (fun (s, _) ->
      Alcotest.(check bool)
        (Fmt.str "%s rooted at compile" s)
        true
        (s = "compile" || String.length s > 8 && String.sub s 0 8 = "compile;"))
    stacks;
  (* Every pass span surfaces as a frame. *)
  List.iter
    (fun (p : Pipeline.pass_record) ->
      let frame =
        "compile;pass:"
        ^ String.map (function ' ' -> '_' | c -> c) p.pass
      in
      Alcotest.(check bool) (Fmt.str "stack for %s" p.pass) true
        (List.mem_assoc frame stacks))
    (Pipeline.passes r);
  let root_us =
    match
      List.find (fun s -> s.Span.sp_depth = 0) (Pipeline.spans r)
    with
    | s -> Span.us s.Span.sp_dur_ms
  in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 stacks in
  Alcotest.(check bool)
    (Fmt.str "weights sum to compile total (%d vs %d)" total root_us)
    true
    (abs (total - root_us) <= List.length (Pipeline.spans r))

let tests =
  [
    test "nesting, depth, completion order" nesting_and_depth;
    test "no installed collector is a safe no-op" no_collector_is_noop;
    test "ring bound retains the most recent spans" ring_bound_drops_oldest;
    test "annotations attach to the open span" annotations_recorded;
    test "a raising body still records its span" exception_still_records;
    test "with_span_timed returns the recorded duration" timed_matches_span;
    test "trace events carry ph/ts/dur/name/pid/tid" trace_event_fields;
    test "perfetto export: tracks, fields, histograms" perfetto_structure;
    test "pass spans nest and match per-pass wall clock"
      perfetto_durations_match_pass_records;
    test "report JSON carries spans and metrics" report_json_carries_spans_and_metrics;
    test "with_span_stats measures allocation" with_span_stats_measures_allocation;
    test "pass records carry GC deltas and tree shape"
      pass_records_carry_gc_and_shape;
    test "folded export: structure, weights, determinism"
      folded_structure_and_weights;
    test "folded export: allocation weighting" folded_alloc_weight;
    test "pipeline folded stacks cover the compile" pipeline_folded_covers_compile;
  ]
