(** Tests for {!Fj_core.Profile} — per-site cost attribution on both
    machines (the Fig. 3 evaluator and the block machine), survival of
    site labels through the optimiser, and the bounded event trace
    with its JSON round-trip. *)

open Fj_core
open Util
module B = Builder
module P = Profile
module M = Fj_machine.Bmachine
module L = Fj_machine.Lower

(* The canonical join-point loop: sum 1..50 via a recursive join. *)
let join_loop =
  B.joinrec1 "loop"
    [ ("n", Types.int); ("acc", Types.int) ]
    (fun jmp xs ->
      match xs with
      | [ n; acc ] ->
          B.if_ (B.le n (B.int 0)) acc
            (jmp [ B.sub n (B.int 1); B.add acc n ] Types.int)
      | _ -> assert false)
    (fun jmp -> jmp [ B.int 50; B.int 0 ] Types.int)

(* The same loop as a recursive function binding — the baseline shape
   the contifier turns into [join_loop]. *)
let fun_loop =
  B.letrec1 "loop"
    (Types.arrows [ Types.int; Types.int ] Types.int)
    (fun loop ->
      B.lam "n" Types.int (fun n ->
          B.lam "acc" Types.int (fun acc ->
              B.if_ (B.le n (B.int 0)) acc
                (B.app2 loop (B.sub n (B.int 1)) (B.add acc n)))))
    (fun loop -> B.app2 loop (B.int 50) (B.int 0))

let eval_profiled ?trace_cap e =
  let prof = P.create ?trace_cap () in
  let _, stats = Eval.run_deep ~profile:prof e in
  (prof, stats)

let machine_profiled ?trace_cap e =
  let prof = P.create ?trace_cap () in
  let v, stats = M.run ~profile:prof (L.lower_program e) in
  ignore v;
  (prof, stats)

let site_exn prof label =
  match P.find prof label with
  | Some s -> s
  | None -> Alcotest.failf "no cost centre for site %S" label

let check_kind what expected (s : P.site) =
  Alcotest.(check string) what (P.kind_name expected) (P.kind_name s.site_kind)

(* Join sites allocate zero words — per site, under the Fig. 3
   machine. *)
let eval_join_site_is_free () =
  let prof, stats = eval_profiled join_loop in
  let s = site_exn prof "loop" in
  check_kind "kind" P.Join s;
  Alcotest.(check int) "join site words" 0 s.P.s_words;
  Alcotest.(check bool) "jumped a lot" true (s.P.s_jumps > 50);
  Alcotest.(check int) "program allocates nothing" 0 stats.Eval.words;
  Alcotest.(check int) "profiler agrees" 0 (P.total_words prof)

(* ... and under the block machine, where jumps are literal gotos. *)
let machine_join_site_is_free () =
  let prof, stats = machine_profiled join_loop in
  let s = site_exn prof "loop" in
  check_kind "kind" P.Join s;
  Alcotest.(check int) "join site words" 0 s.P.s_words;
  Alcotest.(check bool) "jumped a lot" true (s.P.s_jumps > 50);
  Alcotest.(check int) "program allocates nothing" 0 stats.words

(* The same binder, bound as a function: the site is charged for the
   closure. The label is identical, so profiles line up across the
   join/no-join contrast. *)
let function_site_allocates () =
  let prof, _ = eval_profiled fun_loop in
  let s = site_exn prof "loop" in
  Alcotest.(check bool) "closure words charged" true (s.P.s_words > 0);
  Alcotest.(check int) "no jumps at a function site" 0 s.P.s_jumps

(* Site labels survive the whole optimisation pipeline: the contifier
   rebinds [loop] as a join point, and under the profiler the
   optimised program charges the {e same} label — now join-kinded and
   allocation-free. *)
let attribution_survives_optimiser () =
  let joined =
    Pipeline.run (Pipeline.default_config ~mode:Pipeline.Join_points ()) fun_loop
  in
  let prof, _ = eval_profiled joined in
  let s = site_exn prof "loop" in
  check_kind "contified to a join" P.Join s;
  Alcotest.(check int) "still zero words" 0 s.P.s_words;
  let base =
    Pipeline.run (Pipeline.default_config ~mode:Pipeline.Baseline ()) fun_loop
  in
  let bprof, _ = eval_profiled base in
  (* The baseline keeps the binding a closure; same label, nonzero
     cost — the per-site Table 1 contrast. *)
  let bs = site_exn bprof "loop" in
  Alcotest.(check bool) "baseline site pays" true (bs.P.s_words > 0)

(* Both machines fill the same Mstats shape; on a total program their
   headline columns must agree metric for metric. *)
let machines_agree_per_metric () =
  let eprof, es = eval_profiled join_loop in
  let mprof, ms = machine_profiled join_loop in
  ignore eprof;
  ignore mprof;
  Alcotest.(check int) "words agree" es.Eval.words ms.M.words;
  Alcotest.(check int) "jumps agree" es.Eval.jumps ms.M.jumps;
  Alcotest.(check int) "calls agree" es.Eval.calls ms.M.calls;
  Alcotest.(check (list string))
    "same stats fields"
    (List.map fst (Mstats.fields es))
    (List.map fst (Mstats.fields ms))

(* Event-trace JSON round-trips exactly. *)
let event_trace_roundtrip () =
  let prof, _ = eval_profiled ~trace_cap:256 join_loop in
  let evs = P.events prof in
  Alcotest.(check bool) "trace nonempty" true (evs <> []);
  match P.events_of_json (P.events_json prof) with
  | Error m -> Alcotest.failf "events did not parse back: %s" m
  | Ok evs' ->
      Alcotest.(check int) "same length" (List.length evs) (List.length evs');
      Alcotest.(check bool)
        "same events" true
        (List.for_all2 P.event_equal evs evs')

(* The ring buffer is bounded: old events are evicted and counted. *)
let trace_ring_is_bounded () =
  let prof, _ = eval_profiled ~trace_cap:16 join_loop in
  Alcotest.(check bool)
    "at most cap events" true
    (List.length (P.events prof) <= 16);
  Alcotest.(check bool) "evictions counted" true (P.dropped prof > 0);
  (* cap 0 disables tracing entirely. *)
  let off, _ = eval_profiled ~trace_cap:0 join_loop in
  Alcotest.(check (list string))
    "trace disabled" []
    (List.map (fun _ -> "ev") (P.events off))

(* Unprofiled runs are unchanged (profiler strictly optional). *)
let profiler_is_optional () =
  let t1, s1 = Eval.run_deep join_loop in
  let prof = P.create () in
  let t2, s2 = Eval.run_deep ~profile:prof join_loop in
  Alcotest.check tree_testable "same result" t1 t2;
  Alcotest.(check int) "same words" s1.Eval.words s2.Eval.words;
  Alcotest.(check int) "same steps" s1.Eval.steps s2.Eval.steps

let tests =
  [
    test "join site allocates zero words (Fig. 3 machine)"
      eval_join_site_is_free;
    test "join site allocates zero words (block machine)"
      machine_join_site_is_free;
    test "function site is charged for its closure" function_site_allocates;
    test "site labels survive the optimiser" attribution_survives_optimiser;
    test "Eval and Bmachine stats align per metric" machines_agree_per_metric;
    test "event trace JSON round-trips" event_trace_roundtrip;
    test "event ring buffer is bounded" trace_ring_is_bounded;
    test "profiling does not perturb execution" profiler_is_optional;
  ]
