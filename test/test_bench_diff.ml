(** Tests for {!Fj_core.Bench_diff}: round-trip over two inline
    [fj-bench/1] fixtures — program alignment, per-kind delta and gate
    semantics (counts in percent, delta_pct in points, timing beyond
    recorded noise, info never gated), appearing / disappearing
    programs, and the markdown / JSON renderings. *)

open Fj_core
open Util

(* A minimal but schema-complete fj-bench/1 document: two programs
   with timing and optimizer summaries, plus coverage. *)
let fixture_old =
  {|{"schema": "fj-bench/1", "date": "2026-08-01", "quick": true,
     "commit": "0123456789abcdef",
     "programs": [
       {"name": "queens", "suite": "spectral",
        "base_words": 1000, "join_words": 800,
        "base_steps": 5000, "join_steps": 4000,
        "base_jumps": 0, "join_jumps": 120,
        "delta_pct": -20.0,
        "timing": {"warmup": 1, "samples": 5,
                   "base_eval_ms_median": 1.0, "base_eval_ms_p95": 1.2,
                   "join_eval_ms_median": 0.8, "join_eval_ms_p95": 0.9},
        "optimizer": {"join": {"total_ticks": 40, "contified": 3,
                               "decisions": {"fired": 10, "rejected": 2}}}},
       {"name": "vanishes", "suite": "spectral",
        "base_words": 10, "join_words": 10, "delta_pct": 0.0}
     ],
     "suites": [], "metrics": {}, "failures": [],
     "coverage": {"covered": 50, "percent": 40.0}}|}

(* The new side: join_words regressed 5%, delta_pct worsened 5 points,
   base timing jumped far beyond its noise band, steps improved;
   "vanishes" disappeared and "appears" appeared. *)
let fixture_new =
  {|{"schema": "fj-bench/1", "date": "2026-08-08", "quick": true,
     "programs": [
       {"name": "queens", "suite": "spectral",
        "base_words": 1000, "join_words": 840,
        "base_steps": 5000, "join_steps": 3600,
        "base_jumps": 0, "join_jumps": 120,
        "delta_pct": -15.0,
        "timing": {"warmup": 1, "samples": 5,
                   "base_eval_ms_median": 2.0, "base_eval_ms_p95": 2.1,
                   "join_eval_ms_median": 0.81, "join_eval_ms_p95": 0.95},
        "optimizer": {"join": {"total_ticks": 90, "contified": 3,
                               "decisions": {"fired": 11, "rejected": 1}}}},
       {"name": "appears", "suite": "spectral",
        "base_words": 7, "join_words": 7, "delta_pct": 0.0}
     ],
     "suites": [], "metrics": {}, "failures": [],
     "coverage": {"covered": 55, "percent": 44.0}}|}

let diff ?gate_pct ?gate_timing () =
  match
    Bench_diff.of_strings ?gate_pct ?gate_timing ~old_label:"old.json"
      ~new_label:"new.json" fixture_old fixture_new
  with
  | Ok d -> d
  | Error m -> Alcotest.failf "diff failed: %s" m

let metric d prog name =
  let p =
    match
      List.find_opt (fun p -> p.Bench_diff.p_name = prog) d.Bench_diff.d_programs
    with
    | Some p -> p
    | None -> Alcotest.failf "program %s not aligned" prog
  in
  match
    List.find_opt (fun m -> m.Bench_diff.m_metric = name) p.Bench_diff.p_metrics
  with
  | Some m -> m
  | None -> Alcotest.failf "metric %s missing for %s" name prog

let alignment () =
  let d = diff () in
  Alcotest.(check int) "one aligned program" 1
    (List.length d.Bench_diff.d_programs);
  Alcotest.(check (list string)) "disappeared" [ "vanishes" ]
    d.Bench_diff.d_only_old;
  Alcotest.(check (list string)) "appeared" [ "appears" ] d.Bench_diff.d_only_new;
  (* Labels carry date, and the commit when stamped. *)
  Alcotest.(check string) "old label" "old.json (2026-08-01, 012345678)"
    d.Bench_diff.d_old;
  Alcotest.(check string) "new label" "new.json (2026-08-08)"
    d.Bench_diff.d_new

let deltas () =
  let d = diff () in
  let m = metric d "queens" "join_words" in
  Alcotest.(check (float 1e-9)) "join_words delta" 40.0 m.Bench_diff.m_delta;
  (match m.Bench_diff.m_delta_pct with
  | Some pct -> Alcotest.(check (float 1e-9)) "join_words pct" 5.0 pct
  | None -> Alcotest.fail "join_words has no pct");
  let m = metric d "queens" "delta_pct" in
  Alcotest.(check (float 1e-9)) "delta_pct points" 5.0 m.Bench_diff.m_delta;
  let m = metric d "queens" "timing.base_eval_ms_median" in
  (* Noise band: (1.2-1.0) + (2.1-2.0) = 0.3. *)
  (match m.Bench_diff.m_noise with
  | Some n -> Alcotest.(check (float 1e-9)) "noise band" 0.3 n
  | None -> Alcotest.fail "timing metric has no noise band");
  (* No gate: nothing regressed anywhere. *)
  Alcotest.(check int) "ungated diff has no regressions" 0
    (List.length (Bench_diff.regressions d))

let gate () =
  let d = diff ~gate_pct:2.0 () in
  let regressed ?(d = d) name =
    (metric d "queens" name).Bench_diff.m_regressed
  in
  (* +5% words > 2% gate; +5 points > 2 point gate. *)
  Alcotest.(check bool) "join_words trips" true (regressed "join_words");
  Alcotest.(check bool) "delta_pct trips" true (regressed "delta_pct");
  (* Timing is opt-in: cross-machine wall clocks don't compare. By
     default the +1.0 jump is reported but not gated... *)
  Alcotest.(check bool) "timing silent by default" false
    (regressed "timing.base_eval_ms_median");
  let rs = Bench_diff.regressions d in
  Alcotest.(check int) "two regressions without timing" 2 (List.length rs);
  (* ...with --timing-gate it trips: +1.0 over a 0.3 noise band + 2%
     of 1.0. *)
  let dt = diff ~gate_pct:2.0 ~gate_timing:true () in
  Alcotest.(check bool) "base timing trips when opted in" true
    (regressed ~d:dt "timing.base_eval_ms_median");
  (* Improvements and in-noise movement pass: steps improved, join
     timing moved +0.01 inside its 0.24 noise band. *)
  Alcotest.(check bool) "improvement passes" false (regressed ~d:dt "join_steps");
  Alcotest.(check bool) "in-noise timing passes" false
    (regressed ~d:dt "timing.join_eval_ms_median");
  (* Info metrics never gate, however much they move. *)
  Alcotest.(check bool) "info never gates" false
    (regressed ~d:dt "optimizer.join.total_ticks");
  Alcotest.(check int) "three regressions with timing opted in" 3
    (List.length (Bench_diff.regressions dt));
  (* A generous gate waves the same diff through. *)
  Alcotest.(check int) "gate 1000 passes everything" 0
    (List.length
       (Bench_diff.regressions (diff ~gate_pct:1000.0 ~gate_timing:true ())))

let self_diff_is_clean () =
  match
    Bench_diff.of_strings ~gate_pct:2.0 ~old_label:"a" ~new_label:"b"
      fixture_old fixture_old
  with
  | Error m -> Alcotest.failf "self diff failed: %s" m
  | Ok d ->
      Alcotest.(check int) "no regressions" 0
        (List.length (Bench_diff.regressions d));
      Alcotest.(check bool) "no appearing/disappearing" true
        (d.Bench_diff.d_only_old = [] && d.Bench_diff.d_only_new = []);
      List.iter
        (fun p ->
          List.iter
            (fun m ->
              Alcotest.(check (float 0.0))
                (Fmt.str "%s zero delta" m.Bench_diff.m_metric)
                0.0 m.Bench_diff.m_delta)
            p.Bench_diff.p_metrics)
        d.Bench_diff.d_programs

let renderings () =
  let d = diff ~gate_pct:2.0 ~gate_timing:true () in
  let md = Bench_diff.to_markdown d in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "md has table header" true
    (contains md "| program | suite |");
  Alcotest.(check bool) "md lists the program" true (contains md "queens");
  Alcotest.(check bool) "md has regressions section" true
    (contains md "## Regressions (3)");
  Alcotest.(check bool) "md notes disappearance" true (contains md "vanishes");
  let json = Telemetry.Json.to_string (Bench_diff.to_json d) in
  Alcotest.(check bool) "json well-formed" true
    (Telemetry.Json.is_well_formed json);
  match Telemetry.Json.parse json with
  | Error m -> Alcotest.failf "diff json does not parse: %s" m
  | Ok (Telemetry.Json.Obj fields) ->
      (match List.assoc_opt "schema" fields with
      | Some (Telemetry.Json.Str "fj-bench-diff/1") -> ()
      | _ -> Alcotest.fail "wrong diff schema");
      (match List.assoc_opt "regressions" fields with
      | Some (Telemetry.Json.Arr rs) ->
          Alcotest.(check int) "json regressions" 3 (List.length rs)
      | _ -> Alcotest.fail "regressions missing")
  | Ok _ -> Alcotest.fail "diff json not an object"

let rejects_non_bench () =
  (match
     Bench_diff.of_strings ~old_label:"bad" ~new_label:"new" {|{"schema":"nope/9"}|}
       fixture_new
   with
  | Error m ->
      Alcotest.(check bool) "names the bad side" true
        (String.length m >= 3 && String.sub m 0 3 = "bad")
  | Ok _ -> Alcotest.fail "accepted a non-bench schema");
  match Bench_diff.of_strings ~old_label:"o" ~new_label:"n" "{" fixture_new with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unparseable JSON"

(* The committed trajectory snapshot stays diffable against itself —
   the same invariant CI relies on before gating a fresh run. *)
let committed_baseline_self_diff () =
  let path = "../BENCH_2026-08.json" in
  if not (Sys.file_exists path) then ()
  else
    let ic = open_in_bin path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match
      Bench_diff.of_strings ~gate_pct:2.0 ~old_label:"BENCH" ~new_label:"BENCH"
        s s
    with
    | Error m -> Alcotest.failf "committed baseline does not diff: %s" m
    | Ok d ->
        Alcotest.(check bool) "aligned programs" true
          (d.Bench_diff.d_programs <> []);
        Alcotest.(check int) "self diff clean" 0
          (List.length (Bench_diff.regressions d))

let tests =
  [
    test "program alignment and labels" alignment;
    test "per-kind deltas and noise bands" deltas;
    test "gate semantics per metric kind" gate;
    test "a file diffed against itself is clean" self_diff_is_clean;
    test "markdown and JSON renderings" renderings;
    test "non-bench inputs are rejected with the culprit named"
      rejects_non_bench;
    test "committed BENCH baseline self-diffs clean"
      committed_baseline_self_diff;
  ]
