(** Tests for the fault-tolerant compile service ({!Fj_service}):
    deterministic backoff, deadline watchdog, load shedding, the
    content-addressed cache (round-trip, integrity quarantine), the
    retry/degradation ladder, worker respawn, and the acceptance
    criterion behind it all — batch outputs are byte-identical at any
    [--jobs] level, cold or warm cache, faults or no faults. *)

open Fj_core
module Service = Fj_service.Service
module Budget = Fj_service.Budget
module Cache = Fj_service.Cache
module Workqueue = Fj_service.Workqueue
module Shutdown = Fj_service.Shutdown

(* --- fixtures ------------------------------------------------------ *)

let tmp_root =
  lazy
    (let d =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "fj-service-test.%d" (Unix.getpid ()))
     in
     (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     d)

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d =
      Filename.concat (Lazy.force tmp_root)
        (Printf.sprintf "%s.%d" name !n)
    in
    Unix.mkdir d 0o755;
    d

(* Like {!Fault.with_armed} but with per-point fire limits (a
   transient fault that auto-disarms after N firings). *)
let with_faults arms f =
  Fault.reset_fired ();
  List.iter (fun (p, b, limit) -> Fault.arm ?limit p b) arms;
  Fun.protect
    ~finally:(fun () -> List.iter (fun (p, _, _) -> Fault.disarm p) arms)
    f

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(* Loop-heavy enough that the full pipeline has real work (ticks,
   decisions), small enough that a whole batch runs in milliseconds. *)
let src_loop =
  {|
def main =
  let rec go i acc =
    if i > 20 then acc
    else if odd i then go (i + 1) (acc + i * 3)
    else go (i + 1) acc
  in go 1 0
|}

let src_calls = {|
def main =
  let f x = x * 2 + 1 in
  f 3 + f 4 + f 5
|}

let src_branch =
  {|
def main =
  let pick n x y = if odd n then x + y else x - y in
  pick 1 10 3 + pick 2 10 3
|}

(* A little corpus on disk: three valid programs and one ill-typed. *)
let corpus ?(with_bad = false) () =
  let dir = fresh_dir "corpus" in
  let add name content =
    let p = Filename.concat dir name in
    write_file p content;
    (Service.sanitize_id p, p)
  in
  let sources =
    [
      add "a_loop.fj" src_loop;
      add "b_calls.fj" src_calls;
      add "c_branch.fj" src_branch;
    ]
  in
  if with_bad then sources @ [ add "d_bad.fj" "def main = 1 + true\n" ]
  else sources

(* The deterministic signature of an outcome: everything the .meta.json
   carries, nothing wall-clock. Two runs agree iff these agree. *)
let sig_of (o : Service.outcome) =
  let body =
    match o.status with
    | Service.Compiled a ->
        String.concat "\n"
          ([
             Service.rung_name a.Service.a_rung;
             string_of_int a.Service.a_output_size;
             a.Service.a_output;
           ]
          @ List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" k n)
              a.Service.a_ticks
          @ List.map
              (fun e -> Telemetry.Json.to_string (Decision.event_json e))
              a.Service.a_decisions
          @ List.map
              (fun i -> Telemetry.Json.to_string (Guard.incident_json i))
              a.Service.a_incidents)
    | st -> Service.status_name st
  in
  o.Service.id ^ ":" ^ body

let batch_sig (b : Service.batch) =
  String.concat "\n----\n" (List.map sig_of b.Service.b_outcomes)

let config ?(jobs = 1) ?cache ?(attempts = 2) ?deadline ?(queue = 256)
    ?(isolate = false) () =
  let base = Service.default_config () in
  {
    base with
    Service.jobs;
    queue_capacity = queue;
    attempts_per_rung = attempts;
    (* Keep retries fast: the ladder is exercised, the clock is not. *)
    backoff_base_ms = 0.1;
    backoff_max_ms = 0.5;
    budget = { base.Service.budget with Budget.wall_ms = deadline };
    cache;
    isolate;
  }

(* --- backoff ------------------------------------------------------- *)

let backoff_deterministic () =
  let b attempt id =
    Service.backoff_ms ~base_ms:25.0 ~max_ms:250.0 ~seed:7 ~id ~rung:"full"
      ~attempt
  in
  Alcotest.(check (float 0.0))
    "same inputs, same backoff" (b 0 "x") (b 0 "x");
  Alcotest.(check bool) "grows with attempt" true (b 1 "x" > b 0 "x");
  Alcotest.(check bool) "capped" true (b 10 "x" <= 250.0);
  Alcotest.(check bool)
    "base bounds below" true
    (b 0 "x" >= 25.0 && b 0 "x" < 25.0 *. 1.5);
  (* Different requests must not stampede in lockstep. *)
  let distinct =
    List.sort_uniq compare
      (List.map (fun id -> b 0 id) [ "a"; "b"; "c"; "d"; "e" ])
  in
  Alcotest.(check bool) "jitter varies by id" true (List.length distinct > 1)

(* --- budget -------------------------------------------------------- *)

let deadline_check_expires () =
  let spec = { Budget.default_spec with Budget.wall_ms = Some 1.0 } in
  let t = Budget.start spec in
  Budget.burn ~cap_ms:50.0 t;
  Alcotest.(check bool) "expired" true (Budget.expired t);
  (match Budget.check t with
  | () -> Alcotest.fail "check should raise after the deadline"
  | exception Budget.Deadline_exceeded _ -> ());
  (* No deadline: never expires, check never raises. *)
  let t' = Budget.start Budget.default_spec in
  Budget.check t';
  Alcotest.(check bool) "no deadline" false (Budget.expired t')

let deadline_watchdog_fires () =
  let spec = { Budget.default_spec with Budget.wall_ms = Some 2.0 } in
  let t = Budget.start spec in
  match
    Budget.with_watchdog t (fun () ->
        (* A runaway "pass": ticks forever, never checks the clock
           itself. The watchdog must interrupt it. *)
        let deadline_guard = Telemetry.now_ms () +. 5_000.0 in
        while Telemetry.now_ms () < deadline_guard do
          Telemetry.tick Telemetry.Beta_tau
        done;
        `Ran_to_completion)
  with
  | `Ran_to_completion -> Alcotest.fail "watchdog never fired"
  | exception Budget.Deadline_exceeded _ -> ()

(* The watchdog must keep firing inside a pass whose Guard fuel meter
   is also installed — observers chain, not replace. *)
let observers_chain () =
  let outer = ref 0 and inner = ref 0 in
  Telemetry.with_observer
    (fun n -> outer := !outer + n)
    (fun () ->
      Telemetry.with_observer
        (fun n -> inner := !inner + n)
        (fun () -> Telemetry.tick ~n:3 Telemetry.Beta_tau));
  Alcotest.(check int) "inner observer saw the tick" 3 !inner;
  Alcotest.(check int) "outer observer saw it too" 3 !outer

(* --- workqueue ----------------------------------------------------- *)

let queue_sheds_at_capacity () =
  let q = Workqueue.create ~capacity:2 in
  Alcotest.(check bool) "first" true (Workqueue.try_push q 1 = `Ok);
  Alcotest.(check bool) "second" true (Workqueue.try_push q 2 = `Ok);
  Alcotest.(check bool) "third is shed" true (Workqueue.try_push q 3 = `Shed);
  (* The urgent lane bypasses capacity and jumps the queue. *)
  Alcotest.(check bool) "urgent" true (Workqueue.push_urgent q 99 = `Ok);
  Alcotest.(check (option int)) "urgent first" (Some 99) (Workqueue.pop q);
  Alcotest.(check (option int)) "then fifo" (Some 1) (Workqueue.pop q);
  Workqueue.close q;
  Alcotest.(check bool) "closed refuses" true (Workqueue.try_push q 4 = `Closed);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Workqueue.pop q);
  Alcotest.(check (option int)) "then signals exit" None (Workqueue.pop q)

(* --- cache --------------------------------------------------------- *)

let some_expr () =
  let _denv, core = Fj_surface.Prelude.compile src_calls in
  core

let cache_round_trip () =
  let dir = fresh_dir "cache" in
  let c = Cache.create ~dir () in
  let hook = Cache.pass_cache c ~fingerprint:"test" ~datacons:Datacon.builtins in
  let input = some_expr () in
  let cp =
    {
      Pipeline.cp_output = input;
      cp_ident_after = 123;
      cp_ticks = [ ("beta", 4); ("case_of_known", 1) ];
      cp_decisions = [];
    }
  in
  Alcotest.(check bool)
    "cold miss" true
    (hook.Pipeline.cache_lookup ~pass:"simplify" ~supply:7 ~input = None);
  hook.Pipeline.cache_store ~pass:"simplify" ~supply:7 ~input cp;
  (match hook.Pipeline.cache_lookup ~pass:"simplify" ~supply:7 ~input with
  | None -> Alcotest.fail "warm lookup missed"
  | Some got ->
      Alcotest.(check int) "ident_after" 123 got.Pipeline.cp_ident_after;
      Alcotest.(check (list (pair string int)))
        "ticks" cp.Pipeline.cp_ticks got.Pipeline.cp_ticks;
      Alcotest.(check string)
        "output round-trips" (Sexp.write input)
        (Sexp.write got.Pipeline.cp_output));
  (* A different supply position is a different key. *)
  Alcotest.(check bool)
    "supply is in the key" true
    (hook.Pipeline.cache_lookup ~pass:"simplify" ~supply:8 ~input = None);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "stores" 1 s.Cache.stores

let cache_quarantines_corruption () =
  let dir = fresh_dir "cache" in
  let c = Cache.create ~dir () in
  let hook = Cache.pass_cache c ~fingerprint:"test" ~datacons:Datacon.builtins in
  let input = some_expr () in
  let cp =
    {
      Pipeline.cp_output = input;
      cp_ident_after = 1;
      cp_ticks = [];
      cp_decisions = [];
    }
  in
  (* The service/cache fault corrupts the payload on its way to disk;
     the read path's re-hash must refuse to serve it. *)
  Fault.with_armed
    [ ("service/cache", Fault.Raise) ]
    (fun () -> hook.Pipeline.cache_store ~pass:"simplify" ~supply:0 ~input cp);
  Alcotest.(check bool)
    "corrupt entry never served" true
    (hook.Pipeline.cache_lookup ~pass:"simplify" ~supply:0 ~input = None);
  Alcotest.(check int)
    "and is quarantined" 1 (Cache.stats c).Cache.quarantined;
  Alcotest.(check int)
    "quarantine holds the evidence" 1
    (List.length (Cache.quarantine_entries c));
  (* Recompute-and-store heals the entry. *)
  hook.Pipeline.cache_store ~pass:"simplify" ~supply:0 ~input cp;
  Alcotest.(check bool)
    "healed" true
    (hook.Pipeline.cache_lookup ~pass:"simplify" ~supply:0 ~input <> None)

(* --- the ladder ---------------------------------------------------- *)

let one_request () =
  let dir = fresh_dir "req" in
  let p = Filename.concat dir "main.fj" in
  write_file p src_loop;
  p

let rejects_permanently () =
  let dir = fresh_dir "req" in
  let p = Filename.concat dir "bad.fj" in
  write_file p "def main = 1 + true\n";
  let o = Service.process_one (config ()) ~id:"bad" ~path:p in
  (match o.Service.status with
  | Service.Rejected { kind; _ } ->
      Alcotest.(check string) "kind" "type-error" kind
  | st -> Alcotest.failf "expected rejection, got %s" (Service.status_name st));
  Alcotest.(check int)
    "no retries for a permanent failure" 0
    (List.length o.Service.failures);
  (* Missing file: same taxonomy. *)
  let o =
    Service.process_one (config ()) ~id:"gone"
      ~path:(Filename.concat dir "nope.fj")
  in
  match o.Service.status with
  | Service.Rejected { kind; _ } ->
      Alcotest.(check string) "unreadable" "unreadable" kind
  | st -> Alcotest.failf "expected rejection, got %s" (Service.status_name st)

(* service/slow-pass with a deadline: each firing burns one attempt.
   One firing -> retry on the same rung succeeds; enough firings to
   exhaust Full -> the request degrades; unlimited -> exhausted. *)
let ladder_retries_then_degrades () =
  let path = one_request () in
  let cfg = config ~attempts:1 ~deadline:30.0 () in
  let outcome limit =
    with_faults
      [ ("service/slow-pass", Fault.Raise, limit) ]
      (fun () -> Service.process_one cfg ~id:"r" ~path)
  in
  (* One deadline burn: Full's single attempt fails, Degraded runs
     clean. *)
  let o = outcome (Some 1) in
  (match o.Service.status with
  | Service.Compiled a ->
      Alcotest.(check string)
        "degraded to baseline" "baseline"
        (Service.rung_name a.Service.a_rung)
  | st -> Alcotest.failf "expected compiled, got %s" (Service.status_name st));
  (match o.Service.failures with
  | [ f ] ->
      Alcotest.(check string) "cause" "deadline" f.Service.f_cause;
      Alcotest.(check string) "rung" "full" f.Service.f_rung
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs));
  (* Two burns: check-only still answers. *)
  (let o = outcome (Some 2) in
   match o.Service.status with
   | Service.Compiled a ->
       Alcotest.(check string)
         "check-only floor" "check-only"
         (Service.rung_name a.Service.a_rung)
   | st -> Alcotest.failf "expected compiled, got %s" (Service.status_name st));
  (* Unlimited: every rung exhausted -- still a structured outcome. *)
  let o = outcome None in
  match o.Service.status with
  | Service.Exhausted _ ->
      Alcotest.(check int)
        "a failure per rung" 3
        (List.length o.Service.failures)
  | st -> Alcotest.failf "expected exhausted, got %s" (Service.status_name st)

let retry_same_rung_absorbs_transient () =
  let path = one_request () in
  (* attempts 2: the first attempt burns the deadline, the second (the
     fault has auto-disarmed) completes on the Full rung. *)
  let cfg = config ~attempts:2 ~deadline:30.0 () in
  let o =
    with_faults
      [ ("service/slow-pass", Fault.Raise, Some 1) ]
      (fun () -> Service.process_one cfg ~id:"r" ~path)
  in
  match o.Service.status with
  | Service.Compiled a ->
      Alcotest.(check string)
        "still full pipeline" "full"
        (Service.rung_name a.Service.a_rung);
      Alcotest.(check int) "one absorbed failure" 1
        (List.length o.Service.failures)
  | st -> Alcotest.failf "expected compiled, got %s" (Service.status_name st)

(* --- batch determinism (the acceptance criterion) ------------------ *)

let batch_deterministic_across_jobs () =
  let sources = corpus ~with_bad:true () in
  let b1 = Service.run_batch (config ~jobs:1 ()) sources in
  let b8 = Service.run_batch (config ~jobs:8 ()) sources in
  Alcotest.(check string)
    "jobs 1 and jobs 8 agree byte-for-byte" (batch_sig b1) (batch_sig b8)

let batch_deterministic_cold_vs_warm () =
  let sources = corpus () in
  let dir = fresh_dir "cache" in
  let b0 = Service.run_batch (config ()) sources in
  let cold_cache = Cache.create ~dir () in
  let b_cold = Service.run_batch (config ~cache:cold_cache ()) sources in
  let warm_cache = Cache.create ~dir () in
  let b_warm = Service.run_batch (config ~cache:warm_cache ()) sources in
  Alcotest.(check string)
    "cacheless and cold agree" (batch_sig b0) (batch_sig b_cold);
  Alcotest.(check string)
    "cold and warm agree" (batch_sig b_cold) (batch_sig b_warm);
  Alcotest.(check bool)
    "warm hit rate > 50%" true
    (Cache.hit_rate warm_cache > 0.5);
  Alcotest.(check int)
    "nothing quarantined" 0 (Cache.stats warm_cache).Cache.quarantined

let batch_deterministic_under_faults () =
  let sources = corpus () in
  let clean = Service.run_batch (config ~jobs:1 ()) sources in
  let dir = fresh_dir "cache" in
  let cache = Cache.create ~dir () in
  let faulted =
    with_faults
      [
        ("service/worker", Fault.Raise, Some 1);
        ("service/cache", Fault.Raise, Some 2);
      ]
      (fun () ->
        Service.run_batch (config ~jobs:4 ~cache ~deadline:2_000.0 ()) sources)
  in
  Alcotest.(check string)
    "fault drill matches the fault-free jobs-1 run byte-for-byte"
    (batch_sig clean) (batch_sig faulted);
  Alcotest.(check bool)
    "the crash was supervised" true
    (faulted.Service.b_respawns >= 1)

let worker_crash_is_requeued () =
  let sources = corpus () in
  let b =
    with_faults
      [ ("service/worker", Fault.Raise, Some 2) ]
      (fun () -> Service.run_batch (config ~jobs:2 ()) sources)
  in
  Alcotest.(check int) "two respawns" 2 b.Service.b_respawns;
  List.iter
    (fun (o : Service.outcome) ->
      match o.Service.status with
      | Service.Compiled _ -> ()
      | st ->
          Alcotest.failf "%s: expected compiled, got %s" o.Service.id
            (Service.status_name st))
    b.Service.b_outcomes;
  let crashes =
    List.concat_map (fun (o : Service.outcome) -> o.Service.failures)
      b.Service.b_outcomes
    |> List.filter (fun (f : Service.failure) ->
           String.equal f.Service.f_cause "worker-crash")
  in
  Alcotest.(check int) "both crashes on record" 2 (List.length crashes)

let batch_sheds_deterministically () =
  let sources = corpus () in
  let run () = Service.run_batch (config ~jobs:4 ~queue:2 ()) sources in
  let shed_ids b =
    List.filter_map
      (fun (o : Service.outcome) ->
        match o.Service.status with
        | Service.Shed -> Some o.Service.id
        | _ -> None)
      b.Service.b_outcomes
  in
  let a = run () and b = run () in
  Alcotest.(check (list string))
    "the shed set is a function of input order, not scheduling"
    (shed_ids a) (shed_ids b);
  Alcotest.(check int) "exactly the overflow is shed" 1
    (List.length (shed_ids a));
  Alcotest.(check int) "shed batches exit 3" 3 (Service.batch_exit_code a)

let isolate_matches_inline () =
  let sources = corpus () in
  let inline_b = Service.run_batch (config ()) sources in
  let forked = Service.run_batch (config ~isolate:true ()) sources in
  Alcotest.(check string)
    "fork-per-request agrees with in-process byte-for-byte"
    (batch_sig inline_b) (batch_sig forked)

(* --- shutdown ------------------------------------------------------ *)

let shutdown_exit_codes () =
  Alcotest.(check int) "SIGINT" 130 (Shutdown.exit_code Shutdown.Interrupt);
  Alcotest.(check int) "SIGTERM" 143 (Shutdown.exit_code Shutdown.Terminate)

let fuzz_should_stop_drains () =
  let ran = ref 0 in
  let s =
    Fuzz.run ~size:10
      ~on_case:(fun _ _ -> incr ran)
      ~should_stop:(fun () -> !ran >= 3)
      ~seed:1 ~count:50 ()
  in
  Alcotest.(check int) "stopped after the case in flight" 3 s.Fuzz.cases;
  Alcotest.(check int) "nothing abandoned mid-case" 3 !ran

let tests =
  [
    Alcotest.test_case "backoff: deterministic, jittered, capped" `Quick
      backoff_deterministic;
    Alcotest.test_case "budget: deadline expires" `Quick
      deadline_check_expires;
    Alcotest.test_case "budget: watchdog interrupts a runaway pass" `Quick
      deadline_watchdog_fires;
    Alcotest.test_case "telemetry: observers chain" `Quick observers_chain;
    Alcotest.test_case "workqueue: sheds, urgent lane, drains" `Quick
      queue_sheds_at_capacity;
    Alcotest.test_case "cache: round-trip, supply in key" `Quick
      cache_round_trip;
    Alcotest.test_case "cache: corruption quarantined, never served" `Quick
      cache_quarantines_corruption;
    Alcotest.test_case "ladder: permanent failures reject immediately" `Quick
      rejects_permanently;
    Alcotest.test_case "ladder: retry, degrade, exhaust" `Quick
      ladder_retries_then_degrades;
    Alcotest.test_case "ladder: transient absorbed on the same rung" `Quick
      retry_same_rung_absorbs_transient;
    (* Must run before any test that spawns a domain: Unix.fork (and
       so --isolate) is refused for the rest of the process once a
       domain has ever been created. *)
    Alcotest.test_case "batch: --isolate agrees with in-process" `Quick
      isolate_matches_inline;
    Alcotest.test_case "batch: jobs 1 = jobs 8, byte-for-byte" `Quick
      batch_deterministic_across_jobs;
    Alcotest.test_case "batch: cacheless = cold = warm, hit rate > 50%"
      `Quick batch_deterministic_cold_vs_warm;
    Alcotest.test_case "batch: fault drill matches fault-free run" `Quick
      batch_deterministic_under_faults;
    Alcotest.test_case "batch: crashed worker respawned and requeued" `Quick
      worker_crash_is_requeued;
    Alcotest.test_case "batch: load shedding is deterministic" `Quick
      batch_sheds_deterministically;
    Alcotest.test_case "shutdown: documented exit codes" `Quick
      shutdown_exit_codes;
    Alcotest.test_case "fuzz: should_stop drains gracefully" `Quick
      fuzz_should_stop_drains;
  ]
