(** Tests for {!Fj_core.Guard} and {!Fj_core.Fault}: every injection
    point fires, the [Recover] policy rolls a failing pass back to a
    tree that lints and means the same thing, [Strict] still aborts,
    the fuel and size gates trip, and incident records survive a JSON
    round-trip (both standalone and through the pipeline trace). *)

open Fj_core
open Util

let compile src = Fj_surface.Prelude.compile src

(* Loop-heavy enough that every pass in the Join_points pipeline has
   real work (so every fault point is actually reached). *)
let src =
  {|
def main =
  let rec go i acc =
    if i > 40 then acc
    else if odd i then go (i + 1) (acc + i * 3)
    else go (i + 1) acc
  in go 1 0
|}

let recovered_run ?(behaviour = Fault.Raise) point =
  let denv, core = compile src in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
      ~policy:Guard.Recover ()
  in
  Fault.with_armed
    [ (point, behaviour) ]
    (fun () ->
      let e, report = Pipeline.run_report cfg core in
      (denv, core, e, report, Fault.fired ()))

(* Tentpole acceptance: with any single fault armed, a Recover-mode
   compile completes, the output lints, and it evaluates to the same
   answer as the unoptimised seed — with the rollback on record. *)
let every_point_recovers () =
  List.iter
    (fun point ->
      let denv, core, e, report, fired = recovered_run point in
      Alcotest.(check bool)
        (Fmt.str "point %s fired" point)
        true (List.mem point fired);
      Alcotest.(check bool)
        (Fmt.str "incident recorded for %s" point)
        true
        (Pipeline.incidents report <> []);
      let _ = lints ~env:denv e in
      same_result core e)
    (* Pass points only: the service-layer points (service/worker,
       service/cache, service/slow-pass) fire in the compile service's
       retry/supervision machinery, not inside a pipeline pass — they
       are exercised by the service suite. *)
    Fault.pass_points

let incident_names_failing_pass () =
  let _, _, _, report, _ = recovered_run "contify/result" in
  match Pipeline.incidents report with
  | [] -> Alcotest.fail "expected at least one incident"
  | i :: _ ->
      Alcotest.(check string) "cause" "exception" (Guard.cause_name i.i_cause);
      Alcotest.(check bool)
        (Fmt.str "pass label %S mentions contify" i.i_pass)
        true
        (String.length i.i_pass >= 7 && String.sub i.i_pass 0 7 = "contify")

let ill_typed_tripped_by_lint_gate () =
  let denv, core, e, report, _ =
    recovered_run ~behaviour:Fault.Ill_typed "simplify/result"
  in
  (match Pipeline.incidents report with
  | [] -> Alcotest.fail "expected a lint incident"
  | i :: _ ->
      Alcotest.(check string) "cause" "lint" (Guard.cause_name i.i_cause));
  let _ = lints ~env:denv e in
  same_result core e

let burn_fuel_tripped_by_budget () =
  let denv, core, e, report, _ =
    recovered_run ~behaviour:Fault.Burn_fuel "cse/result"
  in
  (match Pipeline.incidents report with
  | [] -> Alcotest.fail "expected a fuel incident"
  | i :: _ ->
      Alcotest.(check string) "cause" "fuel" (Guard.cause_name i.i_cause));
  let _ = lints ~env:denv e in
  same_result core e

let grow_tripped_by_size_ceiling () =
  let denv, core, e, report, _ =
    recovered_run ~behaviour:Fault.Grow "float-in/result"
  in
  (match Pipeline.incidents report with
  | [] -> Alcotest.fail "expected a size incident"
  | i :: _ ->
      Alcotest.(check string) "cause" "size" (Guard.cause_name i.i_cause));
  let _ = lints ~env:denv e in
  same_result core e

(* Rolled-back passes must not change the tree: size_after equals
   size_before on the incident's own pass record. *)
let rollback_keeps_size () =
  let _, _, _, report, _ = recovered_run "float-out/result" in
  List.iter
    (fun (p : Pipeline.pass_record) ->
      match p.incident with
      | None -> ()
      | Some _ ->
          Alcotest.(check int)
            (Fmt.str "pass %s rolled back cleanly" p.pass)
            p.size_before p.size_after)
    (Pipeline.passes report)

let strict_still_aborts () =
  let denv, core = compile src in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
      ~policy:Guard.Strict ()
  in
  Fault.with_armed
    [ ("simplify/result", Fault.Raise) ]
    (fun () ->
      match Pipeline.run cfg core with
      | _ -> Alcotest.fail "strict mode must propagate the injected failure"
      | exception Fault.Injected p ->
          Alcotest.(check string) "the armed point raised" "simplify/result" p)

let strict_has_no_incidents () =
  let denv, core = compile src in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
      ~policy:Guard.Strict ()
  in
  let _, report = Pipeline.run_report cfg core in
  Alcotest.(check int) "no incidents on a healthy strict run" 0
    (List.length (Pipeline.incidents report))

(* ------------------------------------------------------------------ *)
(* Incident JSON                                                       *)
(* ------------------------------------------------------------------ *)

let roundtrips (i : Guard.incident) =
  let s = Telemetry.Json.to_string (Guard.incident_json i) in
  match Telemetry.Json.parse s with
  | Error m -> Alcotest.failf "incident JSON does not parse: %s (%s)" m s
  | Ok j -> (
      match Guard.incident_of_json j with
      | None -> Alcotest.failf "incident JSON does not decode: %s" s
      | Some i' ->
          Alcotest.(check bool)
            (Fmt.str "round-trip of %s" s)
            true (i = i'))

let incident_json_roundtrip () =
  List.iter roundtrips
    [
      {
        Guard.i_pass = "simplify (0)";
        i_cause = Guard.Exn "Stack_overflow";
        i_restored = "input";
      };
      {
        Guard.i_pass = "contify (1)";
        i_cause = Guard.Lint_failed "applying non-function of type Int";
        i_restored = "simplify (0)";
      };
      {
        Guard.i_pass = "cse (2)";
        i_cause = Guard.Fuel_exhausted { budget = 2_000_000 };
        i_restored = "contify (1)";
      };
      {
        Guard.i_pass = "float-in (0)";
        i_cause =
          Guard.Size_exploded
            { size_before = 40; size_after = 9_000; limit = 2_480 };
        i_restored = "input";
      };
    ]

(* The acceptance criterion's end-to-end form: arm a fault, run in
   Recover mode, and find the incident again by parsing the pipeline's
   own trace JSON. *)
let trace_json_carries_incidents () =
  let _, _, _, report, _ = recovered_run "spec-constr/result" in
  match Telemetry.Json.parse (Pipeline.report_to_json report) with
  | Error m -> Alcotest.failf "trace JSON does not parse: %s" m
  | Ok (Telemetry.Json.Obj fields) -> (
      (match List.assoc_opt "policy" fields with
      | Some (Telemetry.Json.Str p) ->
          Alcotest.(check string) "policy recorded" "recover" p
      | _ -> Alcotest.fail "trace JSON lacks a policy field");
      match List.assoc_opt "incidents" fields with
      | Some (Telemetry.Json.Arr (_ :: _ as is)) ->
          List.iter
            (fun j ->
              match Guard.incident_of_json j with
              | Some i ->
                  Alcotest.(check string) "cause survives" "exception"
                    (Guard.cause_name i.Guard.i_cause)
              | None -> Alcotest.fail "incident in trace does not decode")
            is
      | _ -> Alcotest.fail "trace JSON lacks a non-empty incidents array")
  | Ok _ -> Alcotest.fail "trace JSON is not an object"

(* ------------------------------------------------------------------ *)
(* The harness in isolation                                            *)
(* ------------------------------------------------------------------ *)

let protect_passes_healthy () =
  let _, core = compile "def main = 1 + 2" in
  match
    Guard.protect ~limits:Guard.default_limits ~datacons:Datacon.builtins
      ~pass:"id" ~restored:"input" Fun.id core
  with
  | Ok (e, _) -> Alcotest.(check bool) "identity" true (e == core)
  | Error i -> Alcotest.failf "unexpected incident: %a" Guard.pp_incident i

let protect_meters_fuel () =
  let _, core = compile "def main = 1" in
  let limits = { Guard.default_limits with Guard.pass_fuel = Some 10 } in
  match
    Guard.protect ~limits ~datacons:Datacon.builtins ~pass:"spin"
      ~restored:"input"
      (fun e ->
        for _ = 1 to 100 do
          Telemetry.tick Telemetry.Beta
        done;
        e)
      core
  with
  | Ok _ -> Alcotest.fail "expected the fuel gate to trip"
  | Error i ->
      Alcotest.(check string) "fuel incident" "fuel"
        (Guard.cause_name i.Guard.i_cause)

let spend_is_safe_outside_budget () =
  (* Passes call Guard.spend via the telemetry observer
     unconditionally; outside [protect] it must be a no-op. *)
  Guard.spend 1_000_000;
  Telemetry.tick Telemetry.Beta

let tests =
  [
    test "every fault point fires and recovers" every_point_recovers;
    test "incident names the failing pass" incident_names_failing_pass;
    test "lint gate catches an ill-typed result" ill_typed_tripped_by_lint_gate;
    test "fuel budget cuts off a runaway pass" burn_fuel_tripped_by_budget;
    test "size ceiling catches a size explosion" grow_tripped_by_size_ceiling;
    test "rollback restores the pre-pass tree" rollback_keeps_size;
    test "strict mode still aborts" strict_still_aborts;
    test "healthy strict run has no incidents" strict_has_no_incidents;
    test "incident JSON round-trips" incident_json_roundtrip;
    test "trace JSON carries the incidents" trace_json_carries_incidents;
    test "protect passes a healthy pass through" protect_passes_healthy;
    test "protect meters tick fuel" protect_meters_fuel;
    test "spend outside a budget is a no-op" spend_is_safe_outside_budget;
  ]
