(** Property-based tests: a generator of random {e well-typed} F_J
    terms (including join points and jumps), over which we check the
    paper's metatheory:

    - the generator only produces Lint-clean terms;
    - type safety (Prop. 1): evaluation never gets stuck;
    - call-by-name and call-by-need agree;
    - every optimisation pass — simplifier (both configurations),
      contification, Float In/Out, the full pipelines — preserves
      typing and observable results (Prop. 3);
    - erasure produces an equivalent join-free System F term (Thm. 5);
    - lowering to the block machine agrees with the evaluator. *)

open Fj_core
open Syntax

let dc = Datacon.builtins

(* ------------------------------------------------------------------ *)
(* The generator                                                       *)
(* ------------------------------------------------------------------ *)

(* The well-typed term generator grew out of this file and now lives
   in the library ({!Fj_core.Gen}), shared with the [fjc fuzz]
   differential harness. QCheck's [Gen.t] is [Random.State.t -> 'a],
   so the library's direct-style generator plugs straight in. *)
let gen_program : expr QCheck.Gen.t = fun st -> Gen.program st

let arb_program =
  QCheck.make ~print:(fun e -> Pretty.to_string e) gen_program


(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let fuel = 200_000

let eval_tree e =
  match Eval.run_deep ~fuel e with
  | t, _ -> `Value t
  | exception Eval.Out_of_fuel -> `Timeout
  | exception Eval.Stuck m -> `Stuck m

let prop_count = 300

let prop name f = QCheck.Test.make ~count:prop_count ~name arb_program f

let generator_produces_well_typed =
  prop "generated terms lint" (fun e -> Lint.well_typed dc e)

let type_safety =
  prop "type safety: evaluation never sticks (Prop. 1)" (fun e ->
      match eval_tree e with
      | `Value _ | `Timeout -> true
      | `Stuck m -> QCheck.Test.fail_reportf "stuck: %s" m)

let name_need_agree =
  prop "call-by-name and call-by-need agree" (fun e ->
      let need = eval_tree e in
      let name =
        match Eval.eval ~mode:Eval.By_name ~fuel e with
        | v, _ -> (
            match Eval.force_deep ~fuel v with
            | t -> `Value t
            | exception Eval.Out_of_fuel -> `Timeout)
        | exception Eval.Out_of_fuel -> `Timeout
        | exception Eval.Stuck m -> `Stuck m
      in
      match (need, name) with
      | `Value a, `Value b -> Eval.equal_tree a b
      | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
      | _ -> false)

let pass_preserves pass_name pass =
  prop
    (pass_name ^ " preserves typing and meaning (Prop. 3)")
    (fun e ->
      let e' = pass e in
      if not (Lint.well_typed dc e') then
        QCheck.Test.fail_reportf "result does not lint:@.%a" Pretty.pp e'
      else
        match (eval_tree e, eval_tree e') with
        | `Value a, `Value b ->
            Eval.equal_tree a b
            || QCheck.Test.fail_reportf "results differ: %a vs %a@.after:@.%a"
                 Eval.pp_tree a Eval.pp_tree b Pretty.pp e'
        | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
        | `Stuck m, _ | _, `Stuck m ->
            QCheck.Test.fail_reportf "stuck: %s" m)

let simplify_preserves =
  pass_preserves "simplify (join points)"
    (Simplify.simplify (Simplify.default_config ()))

let simplify_baseline_preserves =
  pass_preserves "simplify (baseline)"
    (fun e ->
      Simplify.simplify (Simplify.default_config ~join_points:false ())
        (Erase.erase e))

let contify_preserves = pass_preserves "contify" Contify.contify

let float_in_preserves =
  pass_preserves "float-in" (fun e -> fst (Float_in.run e))

let float_out_preserves =
  pass_preserves "float-out" (fun e -> fst (Float_out.run e))

let cleanup_preserves =
  pass_preserves "cleanup (jinline/jdrop)" (fun e -> fst (Cleanup.cleanup e))

let strictify_preserves = pass_preserves "demand strictify" Demand.strictify

let sexp_roundtrip =
  prop "serialisation round trips exactly" (fun e ->
      let e' = Sexp.read dc (Sexp.write e) in
      String.equal (Pretty.to_string e) (Pretty.to_string e'))

let cps_preserves =
  prop "CPS transform preserves meaning on the monomorphic fragment"
    (fun e ->
      (* Generated terms are monomorphic and join-ful: erase first.
         CPS evaluation is call-by-value; generated terms are total, so
         results agree (timeouts discarded). *)
      match Cps.transform (Erase.erase e) with
      | exception Cps.Unsupported _ -> QCheck.assume_fail ()
      | e' ->
          if not (Lint.well_typed dc e') then
            QCheck.Test.fail_reportf "CPS output does not lint:@.%a" Pretty.pp
              e'
          else (
            match (eval_tree e, eval_tree e') with
            | `Value a, `Value b -> Eval.equal_tree a b
            | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
            | `Stuck m, _ | _, `Stuck m ->
                QCheck.Test.fail_reportf "stuck: %s" m))

let freshen_preserves = pass_preserves "freshen" Subst.freshen

let cnf_preserves =
  pass_preserves "commuting-normal form" Erase.commuting_normal_form

let pipeline_preserves mode =
  pass_preserves
    ("pipeline " ^ Pipeline.mode_name mode)
    (fun e ->
      let e = if mode = Pipeline.Join_points then e else Erase.erase e in
      Pipeline.run (Pipeline.default_config ~mode ()) e)

let erase_theorem =
  prop "erasure: equivalent join-free System F term (Thm. 5)" (fun e ->
      let e' = Erase.erase e in
      if not (Erase.is_join_free e') then
        QCheck.Test.fail_reportf "joins remain:@.%a" Pretty.pp e'
      else if not (Lint.well_typed dc e') then
        QCheck.Test.fail_reportf "erased term does not lint:@.%a" Pretty.pp e'
      else
        match (eval_tree e, eval_tree e') with
        | `Value a, `Value b -> Eval.equal_tree a b
        | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
        | _ -> false)

let erase_type_preserved =
  prop "erasure preserves the type" (fun e ->
      match (Lint.lint_result dc e, Lint.lint_result dc (Erase.erase e)) with
      | Ok t1, Ok t2 -> Types.equal t1 t2
      | _ -> false)

let machine_agrees =
  prop "block machine agrees with the evaluator" (fun e ->
      (* The machine is call-by-value: evaluate strictly; compare only
         when the lazy evaluator also produced a value and the strict
         machine terminates. Disagreement on termination alone is
         allowed (strictness); disagreement on VALUES is a bug. *)
      match eval_tree e with
      | `Timeout | `Stuck _ -> QCheck.assume_fail ()
      | `Value a -> (
          let prog = Fj_machine.Lower.lower_program e in
          match Fj_machine.Bmachine.run ~fuel prog with
          | v, _ ->
              let b = Fj_machine.Bmachine.tree_of_value v in
              Eval.equal_tree a b
              || QCheck.Test.fail_reportf "machine: %a, evaluator: %a"
                   Eval.pp_tree b Eval.pp_tree a
          | exception Fj_machine.Bmachine.Out_of_fuel -> QCheck.assume_fail ()
          | exception Fj_machine.Bmachine.Stuck m ->
              QCheck.Test.fail_reportf "machine stuck: %s" m))

let occurrence_analysis_sound =
  prop "dead per Occur implies really dead" (fun e ->
      (* If the analysis says a let binder is dead, dropping the
         binding must preserve meaning. Checked via the Cleanup pass on
         a wrapper; here we validate on the root only. *)
      match e with
      | Let (NonRec (x, _), body) ->
          let usage = Occur.of_expr body in
          if Occur.is_dead usage x then not (occurs x.v_name body) else true
      | _ -> true)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      generator_produces_well_typed;
      type_safety;
      name_need_agree;
      simplify_preserves;
      simplify_baseline_preserves;
      contify_preserves;
      float_in_preserves;
      float_out_preserves;
      cleanup_preserves;
      strictify_preserves;
      sexp_roundtrip;
      cps_preserves;
      freshen_preserves;
      cnf_preserves;
      pipeline_preserves Pipeline.Baseline;
      pipeline_preserves Pipeline.Join_points;
      pipeline_preserves Pipeline.No_cc;
      erase_theorem;
      erase_type_preserved;
      machine_agrees;
      occurrence_analysis_sound;
    ]
