(** Tests for {!Fj_core.Telemetry} and the structured pipeline trace:
    tick collection, mode-sensitivity of the commuting-conversion
    ticks, determinism, and the JSON emitter/parser. *)

open Fj_core
open Util

let compile src = Fj_surface.Prelude.compile src

(* A program whose optimisation is known to need case-of-case and
   jfloat: a loop returning a boolean that is immediately scrutinised
   (the Sec. 2 shape). *)
let cc_src =
  {|
def main =
  let rec go i acc =
    if i > 50 then acc
    else if odd i then go (i + 1) (acc + i)
    else go (i + 1) acc
  in go 1 0
|}

let report_for mode =
  let denv, core = compile cc_src in
  let cfg =
    Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 ()
  in
  snd (Pipeline.run_report cfg core)

let tick_count r name =
  match List.assoc_opt name (Pipeline.ticks r) with Some n -> n | None -> 0

let basic_collection () =
  let c = Telemetry.create () in
  Telemetry.with_counters c (fun () ->
      Telemetry.tick Telemetry.Beta;
      Telemetry.tick ~n:3 Telemetry.Drop);
  Alcotest.(check int) "beta" 1 (Telemetry.get c Telemetry.Beta);
  Alcotest.(check int) "drop" 3 (Telemetry.get c Telemetry.Drop);
  Alcotest.(check int) "total" 4 (Telemetry.total c);
  (* No collector installed: ticks are dropped, not an error. *)
  Telemetry.tick Telemetry.Beta;
  Alcotest.(check int) "uninstalled tick dropped" 1
    (Telemetry.get c Telemetry.Beta)

let nested_collectors () =
  (* An inner collector sees its own ticks; the outer resumes after. *)
  let outer = Telemetry.create () in
  let inner = Telemetry.create () in
  Telemetry.with_counters outer (fun () ->
      Telemetry.tick Telemetry.Beta;
      Telemetry.with_counters inner (fun () -> Telemetry.tick Telemetry.Beta);
      Telemetry.tick Telemetry.Beta);
  Alcotest.(check int) "outer" 2 (Telemetry.get outer Telemetry.Beta);
  Alcotest.(check int) "inner" 1 (Telemetry.get inner Telemetry.Beta)

let cc_ticks_mode_sensitive () =
  let j = report_for Pipeline.Join_points in
  let n = report_for Pipeline.No_cc in
  Alcotest.(check bool) "join-points fires case_of_case" true
    (tick_count j "case_of_case" > 0);
  Alcotest.(check bool) "join-points fires jfloat" true
    (tick_count j "jfloat" > 0);
  Alcotest.(check int) "no-cc never fires case_of_case" 0
    (tick_count n "case_of_case");
  Alcotest.(check int) "no-cc never fires jfloat" 0 (tick_count n "jfloat")

let deterministic () =
  let a = report_for Pipeline.Join_points in
  let b = report_for Pipeline.Join_points in
  Alcotest.(check (list (pair string int)))
    "tick maps identical across runs" (Pipeline.ticks a) (Pipeline.ticks b);
  Alcotest.(check (list (pair string int)))
    "trails identical across runs" (Pipeline.trail a) (Pipeline.trail b)

let json_roundtrip () =
  let open Telemetry.Json in
  let v =
    Obj
      [
        ("s", Str "he \"said\"\n\t\\x");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("b", Bool true);
        ("n", Null);
        ("a", Arr [ Int 1; Str "two"; Obj [] ]);
      ]
  in
  match parse (to_string v) with
  | Ok v' ->
      Alcotest.(check string) "roundtrip" (to_string v) (to_string v')
  | Error m -> Alcotest.failf "emitted JSON does not parse: %s" m

let report_json_well_formed () =
  let r = report_for Pipeline.Join_points in
  let json = Pipeline.report_to_json r in
  Alcotest.(check bool) "report JSON parses" true
    (Telemetry.Json.is_well_formed json);
  match Telemetry.Json.parse json with
  | Ok (Telemetry.Json.Obj fields) ->
      List.iter
        (fun k ->
          Alcotest.(check bool)
            (Fmt.str "field %s present" k)
            true
            (List.mem_assoc k fields))
        [
          "mode"; "input_size"; "output_size"; "total_ms"; "total_ticks";
          "contified"; "ticks"; "passes";
        ]
  | Ok _ -> Alcotest.fail "report JSON is not an object"
  | Error m -> Alcotest.failf "report JSON does not parse: %s" m

let json_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Fmt.str "rejects %S" s) false
        (Telemetry.Json.is_well_formed s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{} trailing" ]

(* ------------------------------------------------------------------ *)
(* String escaping round-trips (satellite: the emitter and parser
   must agree on every byte string we might put in a span name or a
   fuzz counterexample)                                                *)
(* ------------------------------------------------------------------ *)

let escape_roundtrip s =
  let open Telemetry.Json in
  let text = to_string (Str s) in
  if not (is_well_formed text) then
    Alcotest.failf "escaped %S emits ill-formed JSON: %s" s text;
  match parse text with
  | Ok (Str s') -> Alcotest.(check string) (Fmt.str "roundtrip %S" s) s s'
  | Ok j -> Alcotest.failf "%S parsed to a non-string: %s" s (to_string j)
  | Error m -> Alcotest.failf "escaped %S does not parse: %s" s m

let string_escaping_control_chars () =
  List.iter escape_roundtrip
    [
      "";
      "plain";
      "quote \" backslash \\ slash /";
      "newline \n tab \t return \r";
      "\x00\x01\x1f";  (* every escape class below 0x20 *)
      "bell \b form-feed \012";
      "mixed \"\\\n\x02 tail";
    ]

let string_escaping_multibyte_utf8 () =
  (* Multi-byte UTF-8 passes through byte-for-byte (the emitter only
     escapes ASCII control characters and the two JSON specials). *)
  List.iter escape_roundtrip
    [ "é"; "λx.x ⊢ ∀α"; "日本語"; "🙂 emoji"; "caf\xc3\xa9 \n \xe2\x8a\xa2" ]

let unicode_escape_parsing () =
  let open Telemetry.Json in
  (* \u below 0x80 decodes to the character itself... *)
  (match parse "\"\\u0041\\u000A\\u0009\"" with
  | Ok (Str s) -> Alcotest.(check string) "ascii \\u decodes" "A\n\t" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error m -> Alcotest.failf "\\u form does not parse: %s" m);
  (* ...and emitting a control character uses the \u form, which must
     parse back to the same byte. *)
  match parse (to_string (Str "\x07")) with
  | Ok (Str s) -> Alcotest.(check string) "control char survives" "\x07" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error m -> Alcotest.failf "emitted control char does not parse: %s" m

(* The property behind the hand-picked cases: EVERY byte string
   round-trips through the emitter and parser. *)
let string_roundtrip_property =
  QCheck.Test.make ~count:500 ~name:"Json.Str round-trips any byte string"
    QCheck.(string_gen (Gen.char_range '\x00' '\xff'))
    (fun s ->
      let open Telemetry.Json in
      let text = to_string (Str s) in
      is_well_formed text
      &&
      match parse text with Ok (Str s') -> s' = s | _ -> false)

let now_ms_is_monotonic () =
  (* Satellite: durations come off the monotonic clock — consecutive
     reads never go backwards, and work advances them. *)
  let a = Telemetry.now_ms () in
  let x = ref 0 in
  for i = 0 to 100_000 do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x);
  let b = Telemetry.now_ms () in
  Alcotest.(check bool) "non-decreasing" true (b >= a);
  (* And the epoch clock is a plausible wall-clock (after 2020). *)
  Alcotest.(check bool) "epoch_ms is absolute" true
    (Telemetry.epoch_ms () > 1.577e12)

let contify_counted_standalone () =
  let denv, core = compile cc_src in
  ignore denv;
  let _, n = Contify.contify_counted core in
  Alcotest.(check bool) "counts the contified loop" true (n > 0)

let tree_mismatch_reporting () =
  let open Eval in
  let leaf n = TLit (Literal.Int n) in
  let a = TCon ("Pair", [ leaf 1; TCon ("Cons", [ leaf 2; TCon ("Nil", []) ]) ]) in
  let b = TCon ("Pair", [ leaf 1; TCon ("Cons", [ leaf 3; TCon ("Nil", []) ]) ]) in
  Alcotest.(check (option string)) "equal trees" None (tree_mismatch a a);
  (match tree_mismatch a b with
  | Some msg ->
      let prefix = "at root.1.0" in
      Alcotest.(check bool)
        (Fmt.str "path points into the tree (%s)" msg)
        true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
  | None -> Alcotest.fail "differing trees reported equal");
  match tree_mismatch (TCon ("Nil", [])) TFun with
  | Some _ -> ()
  | None -> Alcotest.fail "constructor vs function reported equal"

let tick_name_round_trips () =
  (* Exhaustive: every tick's printed name parses back to itself, so
     coverage maps and fjc cover JSON can key ticks by name. *)
  List.iter
    (fun t ->
      match Telemetry.tick_of_name (Telemetry.tick_name t) with
      | Some t' when t' = t -> ()
      | Some t' ->
          Alcotest.failf "%s parsed back as %s" (Telemetry.tick_name t)
            (Telemetry.tick_name t')
      | None ->
          Alcotest.failf "%s does not parse back" (Telemetry.tick_name t))
    Telemetry.all_ticks;
  (* Names are unique — the table cannot alias two ticks. *)
  let names = List.map Telemetry.tick_name Telemetry.all_ticks in
  Alcotest.(check int)
    "names are distinct"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  Alcotest.(check (option reject)) "unknown name rejected" None
    (Telemetry.tick_of_name "no-such-tick")

let tests =
  [
    test "tick collection and totals" basic_collection;
    test "nested collectors" nested_collectors;
    test "case-of-case/jfloat ticks are mode-sensitive" cc_ticks_mode_sensitive;
    test "tick counts are deterministic" deterministic;
    test "JSON emitter round-trips" json_roundtrip;
    test "pipeline report JSON is well-formed" report_json_well_formed;
    test "JSON parser rejects garbage" json_rejects_garbage;
    test "contify_counted counts per invocation" contify_counted_standalone;
    test "tick names round-trip through tick_of_name" tick_name_round_trips;
    test "tree_mismatch locates the first divergence" tree_mismatch_reporting;
    test "string escaping round-trips control chars"
      string_escaping_control_chars;
    test "string escaping passes multi-byte UTF-8" string_escaping_multibyte_utf8;
    test "\\u escapes parse" unicode_escape_parsing;
    QCheck_alcotest.to_alcotest string_roundtrip_property;
    test "now_ms is monotonic, epoch_ms is absolute" now_ms_is_monotonic;
  ]
