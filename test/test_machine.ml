(** Tests for {!Fj_machine} — lowering F_J to the block IR and running
    it: agreement with the core evaluator, and the Sec. 3 cost claims
    (jumps are gotos, no allocation; baseline functions are closures). *)

open Fj_core
open Syntax
open Util
module B = Builder
module M = Fj_machine.Bmachine
module L = Fj_machine.Lower

let machine_run e =
  let prog = L.lower_program e in
  match M.run ~fuel:5_000_000 prog with
  | v, s -> (M.tree_of_value v, s)
  | exception M.Stuck m -> Alcotest.failf "machine stuck: %s" m

(* The block machine is call-by-value; compare against the core
   evaluator only on total, laziness-independent programs. *)
let agrees e =
  let t_core, _ = run e in
  let t_mach, _ = machine_run e in
  Alcotest.check tree_testable "machine agrees with evaluator" t_core t_mach

let literals_and_prims () =
  agrees (B.add (B.mul (B.int 6) (B.int 7)) (B.int 0));
  agrees (B.lt (B.int 1) (B.int 2))

let constructors_and_cases () =
  agrees
    (B.case (B.just Types.int (B.int 5))
       [
         B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
         B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
       ]);
  agrees (B.int_list [ 1; 2; 3 ])

let closures_and_calls () =
  agrees
    (B.let_ "f"
       (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
       (fun f -> B.app f (B.int 41)))

let partial_application () =
  (* Under-saturated call produces a PAP; a later call completes it. *)
  agrees
    (B.let_ "add2"
       (B.lam "x" Types.int (fun x -> B.lam "y" Types.int (fun y -> B.add x y)))
       (fun add2 ->
         B.let_ "inc" (B.app add2 (B.int 1)) (fun inc ->
             B.app inc (B.int 41))))

let oversaturated_call () =
  (* A call with more args than the head's manifest arity. *)
  agrees
    (B.let_ "konst"
       (B.lam "x" Types.int (fun x ->
            B.lam "y" Types.int (fun _ -> B.lam "z" Types.int (fun _ -> x))))
       (fun k -> B.app3 k (B.int 7) (B.int 8) (B.int 9)))

let recursion () =
  agrees
    (B.letrec1 "fact"
       (Types.Arrow (Types.int, Types.int))
       (fun fact ->
         B.lam "n" Types.int (fun n ->
             B.if_ (B.le n (B.int 1)) (B.int 1)
               (B.mul n (B.app fact (B.sub n (B.int 1))))))
       (fun fact -> B.app fact (B.int 6)))

let joins_are_gotos () =
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int); ("acc", Types.int) ]
      (fun jmp xs ->
        match xs with
        | [ n; acc ] ->
            B.if_ (B.le n (B.int 0)) acc
              (jmp [ B.sub n (B.int 1); B.add acc n ] Types.int)
        | _ -> assert false)
      (fun jmp -> jmp [ B.int 50; B.int 0 ] Types.int)
  in
  let t, s = machine_run e in
  Alcotest.(check string) "sum" "1275" (Fmt.str "%a" Eval.pp_tree t);
  Alcotest.(check int) "no allocation" 0 s.M.words;
  Alcotest.(check int) "no calls" 0 s.M.calls;
  Alcotest.(check bool) "gotos happened" true (s.M.jumps > 50)

let letbound_functions_allocate () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f -> B.app f (B.int 1))
  in
  let _, s = machine_run e in
  Alcotest.(check bool) "closure allocated" true (s.M.words > 0);
  Alcotest.(check int) "one call" 1 s.M.calls

let non_tail_jump_discards () =
  (* A jump whose context includes a pending continuation block: the
     goto must bypass it (the jump rule). *)
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = Var x } in
  let e =
    Join
      ( JNonRec defn,
        Case
          ( Jump (jv, [], [ B.int 2 ], Types.int),
            [ { alt_pat = PDefault; alt_rhs = B.int 99 } ] ) )
  in
  let t, _ = machine_run e in
  Alcotest.(check string) "discarded case" "2" (Fmt.str "%a" Eval.pp_tree t)

let surface_program_roundtrip () =
  let denv, core =
    Fj_surface.Prelude.compile
      "def main = sum (map (\\x -> x * x) (enumFromTo 1 10))"
  in
  let t_core, _ = run core in
  List.iter
    (fun mode ->
      let cfg = Pipeline.default_config ~mode ~datacons:denv () in
      let opt = Pipeline.run cfg core in
      let t_mach, _ = machine_run opt in
      Alcotest.check tree_testable
        (Pipeline.mode_name mode ^ " lowering agrees")
        t_core t_mach)
    [ Pipeline.Baseline; Pipeline.Join_points ]

let tail_calls_do_not_grow_stack () =
  (* A contified tail loop must run in constant stack on the machine. *)
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int) ]
      (fun jmp xs ->
        let n = List.hd xs in
        B.if_ (B.le n (B.int 0)) (B.int 0) (jmp [ B.sub n (B.int 1) ] Types.int))
      (fun jmp -> jmp [ B.int 10_000 ] Types.int)
  in
  let _, s = machine_run e in
  Alcotest.(check bool) "constant stack" true (s.M.max_stack <= 1)

let tests =
  [
    test "literals and primops" literals_and_prims;
    test "constructors and cases" constructors_and_cases;
    test "closures and calls" closures_and_calls;
    test "partial application (PAP)" partial_application;
    test "over-saturated calls" oversaturated_call;
    test "recursion" recursion;
    test "joins lower to gotos, zero alloc (Sec. 3)" joins_are_gotos;
    test "let-bound functions allocate closures" letbound_functions_allocate;
    test "non-tail jump discards its context" non_tail_jump_discards;
    test "lowered pipelines agree with evaluator" surface_program_roundtrip;
    test "tail jumps run in constant stack" tail_calls_do_not_grow_stack;
  ]
