(** Tests for {!Fj_core.Occur} — the occurrence/tail-call analysis of
    Sec. 4 ("a free-variable analysis that also tracks whether each
    free variable has appeared only in the holes of tail contexts"). *)

open Fj_core
open Syntax
open Util
module B = Builder

let info_of e (x : var) = Occur.lookup (Occur.of_expr e) x

let dead_and_once () =
  let x = mk_var "x" Types.int in
  let e = B.add (Var x) (B.int 1) in
  let i = info_of e x in
  Alcotest.(check int) "once" 1 i.count;
  let y = mk_var "y" Types.int in
  Alcotest.(check int) "dead" 0 (info_of e y).count

let counts_add_up () =
  let x = mk_var "x" Types.int in
  let e = B.add (Var x) (B.mul (Var x) (Var x)) in
  Alcotest.(check int) "three" 3 (info_of e x).count

let under_lambda_flag () =
  let x = mk_var "x" Types.int in
  let e = B.lam "y" Types.int (fun _ -> Var x) in
  let i = info_of e x in
  Alcotest.(check bool) "under lambda" true i.under_lam;
  Alcotest.(check bool) "not a tail call" false i.all_tail

let tail_call_direct () =
  (* f x — a saturated call in tail position. *)
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let e = App (Var f, B.int 1) in
  let i = info_of e f in
  Alcotest.(check bool) "tail" true i.all_tail;
  (match i.shape with
  | Some s ->
      Alcotest.(check int) "no ty args" 0 s.Occur.n_ty;
      Alcotest.(check int) "one val arg" 1 s.Occur.n_val
  | None -> Alcotest.fail "expected a shape")

let tail_through_case_branches () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let e =
    B.if_ B.true_ (App (Var f, B.int 1)) (App (Var f, B.int 2))
  in
  Alcotest.(check bool) "both branches tail" true (info_of e f).all_tail

let scrutinee_not_tail () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let e =
    B.case
      (App (Var f, B.int 1))
      [ B.alt_default (B.int 0) ]
  in
  Alcotest.(check bool) "scrutinee call is not tail" false
    (info_of e f).all_tail

let argument_not_tail () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let g = mk_var "g" (Types.Arrow (Types.int, Types.int)) in
  let e = App (Var g, App (Var f, B.int 1)) in
  Alcotest.(check bool) "argument call is not tail" false
    (info_of e f).all_tail;
  (* The head g IS a tail call. *)
  Alcotest.(check bool) "head is tail" true (info_of e g).all_tail

let let_body_is_tail () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let e = B.let_ "z" (B.int 1) (fun _ -> App (Var f, B.int 2)) in
  Alcotest.(check bool) "let body tail" true (info_of e f).all_tail

let let_rhs_not_tail () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let e = B.let_ "z" (App (Var f, B.int 1)) (fun z -> z) in
  Alcotest.(check bool) "let rhs not tail" false (info_of e f).all_tail

let inconsistent_arity_not_tail () =
  let f =
    mk_var "f" (Types.Arrow (Types.int, Types.Arrow (Types.int, Types.int)))
  in
  let e =
    B.if_ B.true_
      (App (Var f, B.int 1))
      (App (App (Var f, B.int 1), B.int 2))
  in
  Alcotest.(check bool) "mixed arity rejected" false (info_of e f).all_tail

let naked_use_not_call () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let e = B.if_ B.true_ (App (Var f, B.int 1)) (B.app (B.lam "g" (Types.Arrow (Types.int, Types.int)) (fun g -> B.app g (B.int 2))) (Var f)) in
  (* Second occurrence passes f as an argument (shape 0/0): shapes
     disagree, so not all-tail. *)
  Alcotest.(check bool) "escaping use blocks" false (info_of e f).all_tail

let join_rhs_is_tail_context () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.int)) in
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun _ -> App (Var f, B.int 1))
      (fun jmp -> jmp [ B.int 0 ] Types.int)
  in
  Alcotest.(check bool) "call in join rhs is tail" true (info_of e f).all_tail

let binder_info_recorded () =
  let e =
    B.let_ "x" (B.int 1) (fun x -> B.add x x)
  in
  let _, binders = Occur.with_binder_info e in
  (* Exactly one binder recorded, with two occurrences. *)
  Alcotest.(check int) "one binder" 1 (Ident.Map.cardinal binders);
  let _, i = Ident.Map.choose binders in
  Alcotest.(check int) "two occurrences" 2 i.Occur.count

let once_safely () =
  let e = B.let_ "x" (B.int 1) (fun x -> B.add x (B.int 2)) in
  let _, binders = Occur.with_binder_info e in
  let x, _ = Ident.Map.choose binders in
  let m = Ident.Map.map (fun i -> i) binders in
  Alcotest.(check bool) "once safe" true
    (Occur.occurs_once_safely m { v_name = x; v_ty = Types.int })

let recursive_join_shape_tracked () =
  (* join rec go (x) = if x == 0 then 0 else jump go (x - 1)
     in jump go (10)
     Every use of [go] (body and its own rhs) is a shape-(0,1) jump;
     with_binder_info must record that shape for the group's binder. *)
  let e =
    B.joinrec1 "go"
      [ ("x", Types.int) ]
      (fun jmp args ->
        match args with
        | [ x ] ->
            B.if_ (B.eq x (B.int 0)) (B.int 0)
              (jmp [ B.sub x (B.int 1) ] Types.int)
        | _ -> assert false)
      (fun jmp -> jmp [ B.int 10 ] Types.int)
  in
  let _, binders = Occur.with_binder_info e in
  let go =
    match
      Ident.Map.fold
        (fun id i acc -> if id.Ident.name = "go" then Some i else acc)
        binders None
    with
    | Some i -> i
    | None -> Alcotest.fail "group binder not recorded"
  in
  Alcotest.(check bool) "all tail" true go.Occur.all_tail;
  match go.Occur.shape with
  | Some s ->
      Alcotest.(check int) "no ty args" 0 s.Occur.n_ty;
      Alcotest.(check int) "one val arg" 1 s.Occur.n_val
  | None -> Alcotest.fail "expected a consistent shape"

let under_lambda_escape_recorded () =
  (* let f = \y. y + 1 in \z. f z — the only use of [f] is under the
     lambda: with_binder_info must record the escape (under_lam, and
     therefore not all-tail), which is what the contifier's
     Escapes_under_lambda refusal quotes. *)
  let e =
    B.let_ "f"
      (B.lam "y" Types.int (fun y -> B.add y (B.int 1)))
      (fun f -> B.lam "z" Types.int (fun z -> B.app f z))
  in
  let _, binders = Occur.with_binder_info e in
  let fi =
    match
      Ident.Map.fold
        (fun id i acc -> if id.Ident.name = "f" then Some i else acc)
        binders None
    with
    | Some i -> i
    | None -> Alcotest.fail "binder not recorded"
  in
  Alcotest.(check int) "one occurrence" 1 fi.Occur.count;
  Alcotest.(check bool) "under a lambda" true fi.Occur.under_lam;
  Alcotest.(check bool) "not a tail call" false fi.Occur.all_tail

let rec_join_rhs_marks_work_dup () =
  (* An outer binding used inside a recursive join's rhs runs once per
     jump: its recorded info must say under_lam (work duplication), but
     tail-ness is preserved so the OUTER binding can still contify. *)
  let e =
    B.let_ "k"
      (B.lam "w" Types.int (fun w -> B.add w (B.int 7)))
      (fun k ->
        B.joinrec1 "go"
          [ ("x", Types.int) ]
          (fun jmp args ->
            match args with
            | [ x ] ->
                B.if_ (B.eq x (B.int 0)) (B.app k (B.int 0))
                  (jmp [ B.sub x (B.int 1) ] Types.int)
            | _ -> assert false)
          (fun jmp -> jmp [ B.int 3 ] Types.int))
  in
  let _, binders = Occur.with_binder_info e in
  let ki =
    match
      Ident.Map.fold
        (fun id i acc -> if id.Ident.name = "k" then Some i else acc)
        binders None
    with
    | Some i -> i
    | None -> Alcotest.fail "binder not recorded"
  in
  Alcotest.(check bool) "work-dup flagged" true ki.Occur.under_lam;
  Alcotest.(check bool) "tail-ness preserved" true ki.Occur.all_tail

let tests =
  [
    test "dead and once" dead_and_once;
    test "counts add up" counts_add_up;
    test "under-lambda flag" under_lambda_flag;
    test "direct tail call" tail_call_direct;
    test "tail through case branches" tail_through_case_branches;
    test "scrutinee is not tail" scrutinee_not_tail;
    test "argument is not tail, head is" argument_not_tail;
    test "let body is tail" let_body_is_tail;
    test "let rhs is not tail" let_rhs_not_tail;
    test "inconsistent arities rejected" inconsistent_arity_not_tail;
    test "escaping use blocks tail-ness" naked_use_not_call;
    test "join rhs is a tail context" join_rhs_is_tail_context;
    test "binder info is recorded" binder_info_recorded;
    test "occurs-once-safely" once_safely;
    test "recursive join group shape is tracked" recursive_join_shape_tracked;
    test "under-lambda escape is recorded" under_lambda_escape_recorded;
    test "recursive join rhs marks work duplication" rec_join_rhs_marks_work_dup;
  ]
