(** Tests for {!Fj_core.Gen} and {!Fj_core.Fuzz}: the generator is
    deterministic from a seed (the replay contract), produces only
    Lint-clean programs, the shrinker minimizes while preserving the
    failing predicate, the differential oracle passes on a healthy
    compiler and catches an injected pass bug. *)

open Fj_core
open Util

let seed_determinism () =
  (* Same seed, fresh supply: byte-identical programs, even across
     interleaved generations (the fjc replay contract). *)
  let a = Sexp.write (Gen.program_of_seed 7) in
  let _noise = Gen.program_of_seed 99 in
  let b = Sexp.write (Gen.program_of_seed 7) in
  Alcotest.(check string) "seed 7 replays" a b;
  let c = Sexp.write (Gen.program_of_seed 8) in
  Alcotest.(check bool) "distinct seeds differ" true (a <> c)

let generated_programs_lint () =
  for seed = 0 to 49 do
    let e = Gen.program_of_seed seed in
    match Lint.lint_result dc e with
    | Ok _ -> ()
    | Error err ->
        Alcotest.failf "seed %d does not lint: %a@.%s" seed Lint.pp_error err
          (Sexp.write e)
  done

let generated_programs_are_closed () =
  for seed = 0 to 49 do
    let e = Gen.program_of_seed seed in
    if not (Ident.Set.is_empty (Syntax.free_vars e)) then
      Alcotest.failf "seed %d is open: %s" seed (Sexp.write e)
  done

(* The size parameter is a budget, not a target; hunt for a seed that
   actually spent it so shrinking has something to do. *)
let large_program () =
  let rec pick seed =
    if seed > 200 then Alcotest.fail "no large generated program found"
    else
      let e = Gen.program_of_seed seed ~size:40 in
      if Syntax.size e > 20 then e else pick (seed + 1)
  in
  pick 0

let shrink_candidates_no_larger () =
  let e = large_program () in
  let n = Syntax.size e in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Fmt.str "candidate size %d <= %d" (Syntax.size c) n)
        true
        (Syntax.size c <= n))
    (Gen.shrink e)

let minimize_reaches_local_minimum () =
  (* A predicate any subterm-rich program satisfies: size above a
     floor. Minimize must end at a program still failing, no larger
     than the input, with no failing shrink candidate left. The size
     parameter is a budget, not a target, so hunt for a seed that
     actually spent it. *)
  let e = large_program () in
  let failing c = Lint.well_typed dc c && Syntax.size c > 3 in
  let m = Gen.minimize ~failing e in
  Alcotest.(check bool) "still failing" true (failing m);
  Alcotest.(check bool) "no larger" true (Syntax.size m <= Syntax.size e);
  Alcotest.(check bool) "locally minimal" true
    (not
       (List.exists
          (fun c -> Syntax.size c < Syntax.size m && failing c)
          (Gen.shrink m)))

let oracle_passes_on_healthy_compiler () =
  let s = Fuzz.run ~seed:1 ~count:40 () in
  Alcotest.(check int) "cases" 40 s.Fuzz.cases;
  (match s.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "unexpected failure: %a" Fuzz.pp_failure f);
  Alcotest.(check bool) "mostly not skipped" true (s.Fuzz.passed > 30)

let oracle_catches_injected_bug () =
  let s =
    Fault.with_armed
      [ ("simplify/result", Fault.Ill_typed) ]
      (fun () -> Fuzz.run ~seed:1 ~count:3 ())
  in
  Alcotest.(check bool) "found the bug" true (s.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      Alcotest.(check string) "classified as a pass abort" "pass-aborted"
        f.Fuzz.f_kind;
      (* The minimized counterexample must itself be a valid replayable
         program. *)
      Alcotest.(check bool) "counterexample lints" true
        (Lint.well_typed dc f.Fuzz.f_program);
      Alcotest.(check bool) "counterexample no larger" true
        (Syntax.size f.Fuzz.f_program <= f.Fuzz.f_size_orig))
    s.Fuzz.failures

let failure_json_shape () =
  let s =
    Fault.with_armed
      [ ("simplify/result", Fault.Raise) ]
      (fun () -> Fuzz.run ~seed:5 ~count:1 ())
  in
  match s.Fuzz.failures with
  | [] -> Alcotest.fail "expected a failure"
  | f :: _ -> (
      let str = Telemetry.Json.to_string (Fuzz.failure_json f) in
      match Telemetry.Json.parse str with
      | Error m -> Alcotest.failf "failure JSON does not parse: %s" m
      | Ok (Telemetry.Json.Obj fields) ->
          List.iter
            (fun k ->
              if not (List.mem_assoc k fields) then
                Alcotest.failf "failure JSON lacks %S" k)
            [ "seed"; "mode"; "kind"; "detail"; "size_orig"; "size_min";
              "program" ]
      | Ok _ -> Alcotest.fail "failure JSON is not an object")

let run_outcome_reifies_fuel () =
  (* Satellite: the evaluator's fuel exhaustion is an outcome, not an
     exception — the property a fuzz oracle over generated (possibly
     expensive) programs depends on. *)
  let _, loop =
    Fj_surface.Prelude.compile
      "def main = let rec go i = go (i + 1) in go 0"
  in
  (match Eval.run_outcome ~fuel:1_000 loop with
  | Eval.Fuel_exhausted -> ()
  | Eval.Finished _ -> Alcotest.fail "a divergent program finished"
  | Eval.Crashed m -> Alcotest.failf "a divergent program got stuck: %s" m);
  let _, fine = Fj_surface.Prelude.compile "def main = 1 + 2" in
  match Eval.run_outcome ~fuel:1_000 fine with
  | Eval.Finished (t, _) ->
      Alcotest.(check string) "answer" "3" (Fmt.str "%a" Eval.pp_tree t)
  | Eval.Fuel_exhausted -> Alcotest.fail "1 + 2 ran out of fuel"
  | Eval.Crashed m -> Alcotest.failf "1 + 2 got stuck: %s" m

let tests =
  [
    test "generation is deterministic from the seed" seed_determinism;
    test "generated programs lint" generated_programs_lint;
    test "generated programs are closed" generated_programs_are_closed;
    test "shrink candidates never grow" shrink_candidates_no_larger;
    test "minimize reaches a local minimum" minimize_reaches_local_minimum;
    test "oracle passes on the healthy compiler" oracle_passes_on_healthy_compiler;
    test "oracle catches an injected pass bug" oracle_catches_injected_bug;
    test "failure JSON has the documented shape" failure_json_shape;
    test "evaluator fuel exhaustion is an outcome" run_outcome_reifies_fuel;
  ]
