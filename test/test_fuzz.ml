(** Tests for {!Fj_core.Gen} and {!Fj_core.Fuzz}: the generator is
    deterministic from a seed (the replay contract), produces only
    Lint-clean programs, the shrinker minimizes while preserving the
    failing predicate, the differential oracle passes on a healthy
    compiler and catches an injected pass bug. *)

open Fj_core
open Util

let seed_determinism () =
  (* Same seed, fresh supply: byte-identical programs, even across
     interleaved generations (the fjc replay contract). *)
  let a = Sexp.write (Gen.program_of_seed 7) in
  let _noise = Gen.program_of_seed 99 in
  let b = Sexp.write (Gen.program_of_seed 7) in
  Alcotest.(check string) "seed 7 replays" a b;
  let c = Sexp.write (Gen.program_of_seed 8) in
  Alcotest.(check bool) "distinct seeds differ" true (a <> c)

let generated_programs_lint () =
  for seed = 0 to 49 do
    let e = Gen.program_of_seed seed in
    match Lint.lint_result dc e with
    | Ok _ -> ()
    | Error err ->
        Alcotest.failf "seed %d does not lint: %a@.%s" seed Lint.pp_error err
          (Sexp.write e)
  done

let generated_programs_are_closed () =
  for seed = 0 to 49 do
    let e = Gen.program_of_seed seed in
    if not (Ident.Set.is_empty (Syntax.free_vars e)) then
      Alcotest.failf "seed %d is open: %s" seed (Sexp.write e)
  done

(* The size parameter is a budget, not a target; hunt for a seed that
   actually spent it so shrinking has something to do. *)
let large_program () =
  let rec pick seed =
    if seed > 200 then Alcotest.fail "no large generated program found"
    else
      let e = Gen.program_of_seed seed ~size:40 in
      if Syntax.size e > 20 then e else pick (seed + 1)
  in
  pick 0

let shrink_candidates_no_larger () =
  let e = large_program () in
  let n = Syntax.size e in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Fmt.str "candidate size %d <= %d" (Syntax.size c) n)
        true
        (Syntax.size c <= n))
    (Gen.shrink e)

let minimize_reaches_local_minimum () =
  (* A predicate any subterm-rich program satisfies: size above a
     floor. Minimize must end at a program still failing, no larger
     than the input, with no failing shrink candidate left. The size
     parameter is a budget, not a target, so hunt for a seed that
     actually spent it. *)
  let e = large_program () in
  let failing c = Lint.well_typed dc c && Syntax.size c > 3 in
  let m = Gen.minimize ~failing e in
  Alcotest.(check bool) "still failing" true (failing m);
  Alcotest.(check bool) "no larger" true (Syntax.size m <= Syntax.size e);
  Alcotest.(check bool) "locally minimal" true
    (not
       (List.exists
          (fun c -> Syntax.size c < Syntax.size m && failing c)
          (Gen.shrink m)))

let oracle_passes_on_healthy_compiler () =
  let s = Fuzz.run ~seed:1 ~count:40 () in
  Alcotest.(check int) "cases" 40 s.Fuzz.cases;
  (match s.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "unexpected failure: %a" Fuzz.pp_failure f);
  Alcotest.(check bool) "mostly not skipped" true (s.Fuzz.passed > 30)

let oracle_catches_injected_bug () =
  let s =
    Fault.with_armed
      [ ("simplify/result", Fault.Ill_typed) ]
      (fun () -> Fuzz.run ~seed:1 ~count:3 ())
  in
  Alcotest.(check bool) "found the bug" true (s.Fuzz.failures <> []);
  List.iter
    (fun (f : Fuzz.failure) ->
      Alcotest.(check string) "classified as a pass abort" "pass-aborted"
        f.Fuzz.f_kind;
      (* The minimized counterexample must itself be a valid replayable
         program. *)
      Alcotest.(check bool) "counterexample lints" true
        (Lint.well_typed dc f.Fuzz.f_program);
      Alcotest.(check bool) "counterexample no larger" true
        (Syntax.size f.Fuzz.f_program <= f.Fuzz.f_size_orig))
    s.Fuzz.failures

let failure_json_shape () =
  let s =
    Fault.with_armed
      [ ("simplify/result", Fault.Raise) ]
      (fun () -> Fuzz.run ~seed:5 ~count:1 ())
  in
  match s.Fuzz.failures with
  | [] -> Alcotest.fail "expected a failure"
  | f :: _ -> (
      let str = Telemetry.Json.to_string (Fuzz.failure_json f) in
      match Telemetry.Json.parse str with
      | Error m -> Alcotest.failf "failure JSON does not parse: %s" m
      | Ok (Telemetry.Json.Obj fields) ->
          List.iter
            (fun k ->
              if not (List.mem_assoc k fields) then
                Alcotest.failf "failure JSON lacks %S" k)
            [ "seed"; "mode"; "kind"; "detail"; "size_orig"; "size_min";
              "program" ]
      | Ok _ -> Alcotest.fail "failure JSON is not an object")

let run_outcome_reifies_fuel () =
  (* Satellite: the evaluator's fuel exhaustion is an outcome, not an
     exception — the property a fuzz oracle over generated (possibly
     expensive) programs depends on. *)
  let _, loop =
    Fj_surface.Prelude.compile
      "def main = let rec go i = go (i + 1) in go 0"
  in
  (match Eval.run_outcome ~fuel:1_000 loop with
  | Eval.Fuel_exhausted -> ()
  | Eval.Finished _ -> Alcotest.fail "a divergent program finished"
  | Eval.Crashed m -> Alcotest.failf "a divergent program got stuck: %s" m);
  let _, fine = Fj_surface.Prelude.compile "def main = 1 + 2" in
  match Eval.run_outcome ~fuel:1_000 fine with
  | Eval.Finished (t, _) ->
      Alcotest.(check string) "answer" "3" (Fmt.str "%a" Eval.pp_tree t)
  | Eval.Fuel_exhausted -> Alcotest.fail "1 + 2 ran out of fuel"
  | Eval.Crashed m -> Alcotest.failf "1 + 2 got stuck: %s" m

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let recorder_heartbeats () =
  let hbs = ref [] in
  let r =
    Fuzz.recorder ~every:10 ~on_heartbeat:(fun hb -> hbs := hb :: !hbs) ()
  in
  let s = Fuzz.run ~recorder:r ~seed:0 ~count:25 () in
  (* Periodic at 10 and 20, final at 25. *)
  let hbs = List.rev !hbs in
  Alcotest.(check int) "heartbeat count" 3 (List.length hbs);
  Alcotest.(check (list int)) "progress points" [ 10; 20; 25 ]
    (List.map (fun hb -> hb.Fuzz.hb_cases) hbs);
  let last = List.nth hbs 2 in
  Alcotest.(check int) "total planned" 25 last.Fuzz.hb_total;
  Alcotest.(check int) "pass count matches summary" s.Fuzz.passed
    last.Fuzz.hb_passed;
  Alcotest.(check int) "incidents match summary"
    (List.length s.Fuzz.failures)
    last.Fuzz.hb_incidents;
  Alcotest.(check bool) "rate is positive" true (last.Fuzz.hb_rate > 0.0);
  Alcotest.(check bool) "case latency histogram snapshotted" true
    (List.mem_assoc "fuzz.case_ms" last.Fuzz.hb_histograms);
  (* The callback view and the recorder's retained list agree. *)
  Alcotest.(check int) "recorder retains them" 3
    (List.length (Fuzz.heartbeats r))

let recorder_final_heartbeat_on_short_runs () =
  (* Runs shorter than the period still end with one heartbeat. *)
  let r = Fuzz.recorder ~every:100 () in
  ignore (Fuzz.run ~recorder:r ~seed:3 ~count:4 ());
  match Fuzz.heartbeats r with
  | [ hb ] -> Alcotest.(check int) "covers the whole run" 4 hb.Fuzz.hb_cases
  | hbs -> Alcotest.failf "expected 1 heartbeat, got %d" (List.length hbs)

let recorder_ring_is_bounded () =
  let cap = 16 in
  let r = Fuzz.recorder ~ring_cap:cap ~every:max_int () in
  ignore (Fuzz.run ~recorder:r ~seed:0 ~count:30 ());
  Alcotest.(check bool)
    (Fmt.str "retained %d <= cap" (List.length (Fuzz.recent_spans r)))
    true
    (List.length (Fuzz.recent_spans r) <= cap);
  Alcotest.(check bool) "evictions counted" true (Fuzz.dropped_spans r > 0);
  (* Case latencies landed in the recorder's registry. *)
  match Metrics.histogram (Fuzz.recorder_metrics r) "fuzz.case_ms" with
  | Some s -> Alcotest.(check int) "every case observed" 30 s.Metrics.h_count
  | None -> Alcotest.fail "fuzz.case_ms histogram missing"

let heartbeat_and_flight_json_well_formed () =
  let r = Fuzz.recorder ~every:5 () in
  ignore (Fuzz.run ~recorder:r ~seed:1 ~count:10 ());
  List.iter
    (fun hb ->
      Alcotest.(check bool) "heartbeat JSON well-formed" true
        (Telemetry.Json.is_well_formed
           (Telemetry.Json.to_string (Fuzz.heartbeat_json hb))))
    (Fuzz.heartbeats r);
  let flight = Fuzz.flight_json r in
  Alcotest.(check bool) "flight JSON well-formed" true
    (Telemetry.Json.is_well_formed (Telemetry.Json.to_string flight));
  match flight with
  | Telemetry.Json.Obj fields ->
      List.iter
        (fun k ->
          if not (List.mem_assoc k fields) then
            Alcotest.failf "flight JSON lacks %S" k)
        [ "schema"; "traceEvents"; "dropped_spans"; "heartbeats"; "metrics" ];
      (match List.assoc "schema" fields with
      | Telemetry.Json.Str "fj-flight/1" -> ()
      | j ->
          Alcotest.failf "wrong schema: %s" (Telemetry.Json.to_string j))
  | _ -> Alcotest.fail "flight JSON is not an object"

(* ------------------------------------------------------------------ *)
(* Coverage-guided mode                                                *)
(* ------------------------------------------------------------------ *)

let mutants_are_well_typed () =
  (* Mutation must preserve closedness and typability — an ill-typed
     mutant would show up as a bogus counterexample. Read the program
     back through Sexp first so the ident supply is past every binder,
     exactly as the guided fuzzer does with pooled cases. *)
  let st = Random.State.make [| 0xbeef |] in
  for seed = 0 to 29 do
    let e = Sexp.read dc (Sexp.write (Gen.program_of_seed seed)) in
    let m = Gen.mutate st e in
    if not (Ident.Set.is_empty (Syntax.free_vars m)) then
      Alcotest.failf "mutant of seed %d is open" seed;
    (* Some operator draws can produce a shadowing-adjacent shape the
       lint rejects; the fuzzer filters those. Most must survive. *)
    ignore (Lint.well_typed dc m)
  done;
  let surviving = ref 0 in
  for seed = 0 to 29 do
    let e = Sexp.read dc (Sexp.write (Gen.program_of_seed seed)) in
    if Lint.well_typed dc (Gen.mutate st e) then incr surviving
  done;
  Alcotest.(check bool)
    (Fmt.str "most mutants lint (%d/30)" !surviving)
    true (!surviving >= 25)

let guided_run_accumulates_coverage () =
  let unguided = Coverage.create () and guided = Coverage.create () in
  let su = Fuzz.run ~cover:unguided ~seed:11 ~count:40 () in
  let sg = Fuzz.run ~cover:guided ~guided:true ~seed:11 ~count:40 () in
  Alcotest.(check int) "unguided is clean" 0 (List.length su.Fuzz.failures);
  Alcotest.(check int) "guided is clean" 0 (List.length sg.Fuzz.failures);
  Alcotest.(check bool) "guided retains interesting cases" true
    (sg.Fuzz.interesting > 0);
  Alcotest.(check bool) "guided coverage at least matches" true
    (Coverage.covered guided >= Coverage.covered unguided);
  Alcotest.(check int) "guided stays in-universe" 0
    (Coverage.unknown_hits guided)

let guided_run_replays () =
  (* The replay contract extends to guided mode: mutation draws come
     from a dedicated RNG derived from the run seed. *)
  let interesting run_seed =
    let acc = ref [] in
    let cover = Coverage.create () in
    ignore
      (Fuzz.run ~cover ~guided:true
         ~on_interesting:(fun s e -> acc := (s, Sexp.write e) :: !acc)
         ~seed:run_seed ~count:30 ());
    List.rev !acc
  in
  let a = interesting 5 and b = interesting 5 in
  Alcotest.(check int) "same retention count" (List.length a)
    (List.length b);
  List.iter2
    (fun (sa, ea) (sb, eb) ->
      Alcotest.(check int) "same case seed" sa sb;
      Alcotest.(check string) "same program" ea eb)
    a b

let tests =
  [
    test "generation is deterministic from the seed" seed_determinism;
    test "generated programs lint" generated_programs_lint;
    test "generated programs are closed" generated_programs_are_closed;
    test "shrink candidates never grow" shrink_candidates_no_larger;
    test "minimize reaches a local minimum" minimize_reaches_local_minimum;
    test "oracle passes on the healthy compiler" oracle_passes_on_healthy_compiler;
    test "oracle catches an injected pass bug" oracle_catches_injected_bug;
    test "failure JSON has the documented shape" failure_json_shape;
    test "evaluator fuel exhaustion is an outcome" run_outcome_reifies_fuel;
    test "recorder emits periodic and final heartbeats" recorder_heartbeats;
    test "short runs still get a final heartbeat"
      recorder_final_heartbeat_on_short_runs;
    test "flight ring is bounded, registry sees every case"
      recorder_ring_is_bounded;
    test "heartbeat and flight JSON are well-formed"
      heartbeat_and_flight_json_well_formed;
    test "mutants stay closed and mostly lint" mutants_are_well_typed;
    test "guided runs accumulate coverage" guided_run_accumulates_coverage;
    test "guided runs replay deterministically" guided_run_replays;
  ]
