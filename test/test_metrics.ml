(** Tests for {!Fj_core.Metrics}: counters and gauges, the log-bucketed
    histogram's quantile accuracy (within the documented ~19% bucket
    resolution), publishing discipline (innermost registry, no-op when
    none installed), and the JSON shape. *)

open Fj_core
open Util

let counters_and_gauges () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () ->
      Metrics.incr "a";
      Metrics.incr ~by:4 "a";
      Metrics.incr "b";
      Metrics.set_gauge "g" 1.5;
      Metrics.set_gauge "g" 2.5);
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter_value r "a");
  Alcotest.(check int) "independent counters" 1 (Metrics.counter_value r "b");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter_value r "z");
  Alcotest.(check (option (float 0.0))) "gauge last-value-wins" (Some 2.5)
    (Metrics.gauge_value r "g");
  Alcotest.(check (option (float 0.0))) "absent gauge" None
    (Metrics.gauge_value r "z")

let no_registry_is_noop () =
  Metrics.incr "orphan";
  Metrics.set_gauge "orphan" 1.0;
  Metrics.observe "orphan" 1.0

let nested_registries () =
  let outer = Metrics.create () in
  let inner = Metrics.create () in
  Metrics.with_registry outer (fun () ->
      Metrics.incr "n";
      Metrics.with_registry inner (fun () -> Metrics.incr "n");
      Metrics.incr "n");
  Alcotest.(check int) "outer sees its own" 2 (Metrics.counter_value outer "n");
  Alcotest.(check int) "inner shadows" 1 (Metrics.counter_value inner "n")

let histogram_summary_exact_fields () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () ->
      List.iter (Metrics.observe "h") [ 1.0; 2.0; 4.0; 8.0; 100.0 ]);
  match Metrics.histogram r "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count" 5 s.Metrics.h_count;
      Alcotest.(check (float 1e-9)) "sum exact" 115.0 s.Metrics.h_sum;
      Alcotest.(check (float 1e-9)) "min exact" 1.0 s.Metrics.h_min;
      Alcotest.(check (float 1e-9)) "max exact" 100.0 s.Metrics.h_max

(* p50/p95 are bucket-interpolated: boundaries at 2^(i/4), so any
   estimate is within a factor of 2^(1/4) ≈ 1.19 of the exact
   percentile. Check that bound against known sample sets. *)
let within_bucket_resolution ~exact got =
  let ratio = got /. exact in
  ratio >= 1.0 /. 1.2 && ratio <= 1.2

let histogram_quantile_accuracy () =
  let r = Metrics.create () in
  (* 100 samples 1..100: exact p50 = 50, exact p95 = 95. *)
  Metrics.with_registry r (fun () ->
      for i = 1 to 100 do
        Metrics.observe "lat" (float_of_int i)
      done);
  match Metrics.histogram r "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check bool)
        (Fmt.str "p50 %.2f within 19%% of 50" s.Metrics.h_p50)
        true
        (within_bucket_resolution ~exact:50.0 s.Metrics.h_p50);
      Alcotest.(check bool)
        (Fmt.str "p95 %.2f within 19%% of 95" s.Metrics.h_p95)
        true
        (within_bucket_resolution ~exact:95.0 s.Metrics.h_p95);
      Alcotest.(check bool) "p50 <= p95" true
        (s.Metrics.h_p50 <= s.Metrics.h_p95);
      Alcotest.(check bool) "quantiles clamped to [min,max]" true
        (s.Metrics.h_p50 >= s.Metrics.h_min
        && s.Metrics.h_p95 <= s.Metrics.h_max)

let histogram_single_sample () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () -> Metrics.observe "one" 7.0);
  match Metrics.histogram r "one" with
  | Some s ->
      (* With one sample, clamping makes every statistic exact. *)
      Alcotest.(check (float 1e-9)) "p50 = the sample" 7.0 s.Metrics.h_p50;
      Alcotest.(check (float 1e-9)) "p95 = the sample" 7.0 s.Metrics.h_p95
  | None -> Alcotest.fail "histogram missing"

let negative_samples_clamp () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () -> Metrics.observe "neg" (-3.0));
  match Metrics.histogram r "neg" with
  | Some s ->
      Alcotest.(check (float 1e-9)) "clamped to 0" 0.0 s.Metrics.h_min;
      Alcotest.(check int) "still counted" 1 s.Metrics.h_count
  | None -> Alcotest.fail "histogram missing"

let json_shape () =
  let r = Metrics.create () in
  Metrics.with_registry r (fun () ->
      Metrics.incr "c";
      Metrics.set_gauge "g" 3.0;
      Metrics.observe "h" 2.0);
  let text = Telemetry.Json.to_string (Metrics.to_json r) in
  Alcotest.(check bool) "well-formed" true (Telemetry.Json.is_well_formed text);
  match Telemetry.Json.parse text with
  | Ok (Telemetry.Json.Obj fields) ->
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " present") true (List.mem_assoc k fields))
        [ "counters"; "gauges"; "histograms" ]
  | Ok _ -> Alcotest.fail "not an object"
  | Error m -> Alcotest.failf "does not parse: %s" m

let empty_json_elides_sections () =
  match Metrics.to_json (Metrics.create ()) with
  | Telemetry.Json.Obj [] -> ()
  | j ->
      Alcotest.failf "empty registry should serialize to {}: %s"
        (Telemetry.Json.to_string j)

let tests =
  [
    test "counters and gauges" counters_and_gauges;
    test "publishing without a registry is a no-op" no_registry_is_noop;
    test "nested registries shadow" nested_registries;
    test "histogram count/sum/min/max are exact" histogram_summary_exact_fields;
    test "p50/p95 within log-bucket resolution" histogram_quantile_accuracy;
    test "single-sample histogram is exact" histogram_single_sample;
    test "negative samples clamp to zero" negative_samples_clamp;
    test "to_json shape" json_shape;
    test "empty registry serializes empty" empty_json_elides_sections;
  ]
