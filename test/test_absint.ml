(** Tests for {!Fj_core.Absint} and {!Fj_core.Diagnostic}: the
    lattice, the fixpoint engine's precision through join points, the
    discipline verifier on hand-built ill-formed trees (including
    every [Fault]-injectable corruption Lint catches), liveness
    agreement with {!Fj_core.Occur}, abstract soundness against the
    evaluator over seeded generated programs under all three pipeline
    configurations, and the committed corpus sweep with its missed-opt
    warning snapshot. *)

open Fj_core
open Util

module B = Builder

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* dune runs tests from _build/default/test; fall back to the repo
   root for direct execution. *)
let corpus () =
  let dir =
    if Sys.file_exists "../../../test/corpus" then "../../../test/corpus"
    else "test/corpus"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sexp")
  |> List.sort String.compare
  |> List.map (fun f -> (f, Sexp.read dc (read_file (Filename.concat dir f))))

let examples () =
  let dir =
    if Sys.file_exists "../../../examples/programs" then
      "../../../examples/programs"
    else "examples/programs"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".fj")
  |> List.sort String.compare
  |> List.map (fun f ->
         let denv, core =
           Fj_surface.Prelude.compile (read_file (Filename.concat dir f))
         in
         (f, denv, core))

(* Mirror [fjc check]'s defaults exactly so the snapshot below matches
   what the CLI reports. *)
let check_config denv =
  Pipeline.default_config ~mode:Pipeline.Join_points ~iterations:3
    ~datacons:denv ~inline_threshold:300 ~dup_threshold:12
    ~policy:Guard.Recover ()

(* ---------------- the lattice ---------------- *)

let aval = Alcotest.testable Absint.pp_aval Absint.equal_aval

let lattice_laws () =
  let vals =
    [
      Absint.Bot;
      Absint.Top;
      Absint.Fun;
      Absint.Const (Literal.Int 3);
      Absint.Const (Literal.Int 4);
      Absint.Shape ("Just", [ Absint.Const (Literal.Int 1) ]);
      Absint.Shape ("Nothing", []);
    ]
  in
  List.iter
    (fun a ->
      Alcotest.check aval "idempotent" a (Absint.join_aval a a);
      Alcotest.check aval "bot is identity" a (Absint.join_aval Absint.Bot a);
      Alcotest.check aval "top absorbs" Absint.Top
        (Absint.join_aval Absint.Top a);
      List.iter
        (fun b ->
          Alcotest.check aval "commutative" (Absint.join_aval a b)
            (Absint.join_aval b a))
        vals)
    vals;
  Alcotest.check aval "distinct constants widen" Absint.Top
    (Absint.join_aval
       (Absint.Const (Literal.Int 3))
       (Absint.Const (Literal.Int 4)));
  Alcotest.check aval "same-shape fields join"
    (Absint.Shape ("Just", [ Absint.Top ]))
    (Absint.join_aval
       (Absint.Shape ("Just", [ Absint.Const (Literal.Int 1) ]))
       (Absint.Shape ("Just", [ Absint.Const (Literal.Int 2) ])))

let concretization () =
  let t_one = Eval.TLit (Literal.Int 1) in
  Alcotest.(check bool) "top accepts" true (Absint.concretizes Absint.Top t_one);
  Alcotest.(check bool) "bot refutes" false
    (Absint.concretizes Absint.Bot t_one);
  Alcotest.(check bool) "const matches" true
    (Absint.concretizes (Absint.Const (Literal.Int 1)) t_one);
  Alcotest.(check bool) "const mismatch" false
    (Absint.concretizes (Absint.Const (Literal.Int 2)) t_one);
  Alcotest.(check bool) "fun matches" true
    (Absint.concretizes Absint.Fun Eval.TFun);
  Alcotest.(check bool) "shape matches pointwise" true
    (Absint.concretizes
       (Absint.Shape ("Just", [ Absint.Const (Literal.Int 1) ]))
       (Eval.TCon ("Just", [ t_one ])));
  Alcotest.(check bool) "shape field refutes" false
    (Absint.concretizes
       (Absint.Shape ("Just", [ Absint.Const (Literal.Int 2) ]))
       (Eval.TCon ("Just", [ t_one ])))

(* ---------------- engine precision ---------------- *)

(* join j (p : Int) = p + 1 in jump j 41 — the constant must flow
   through the jump into the join parameter and out of the rhs. *)
let const_through_jump () =
  let e =
    B.join1 "j"
      [ ("p", Types.int) ]
      (fun args -> B.add (List.hd args) (B.int 1))
      (fun jump -> jump [ B.int 41 ] Types.int)
  in
  let _ = lints e in
  let r = Absint.analyze e in
  Alcotest.check aval "constant flows through the jump"
    (Absint.Const (Literal.Int 42))
    r.Absint.r_value

let primops_fold () =
  let r = Absint.analyze (B.mul (B.int 6) (B.int 7)) in
  Alcotest.check aval "arithmetic folds" (Absint.Const (Literal.Int 42))
    r.Absint.r_value;
  let r = Absint.analyze (B.lt (B.int 1) (B.int 2)) in
  Alcotest.check aval "comparison folds to a shape"
    (Absint.Shape ("True", []))
    r.Absint.r_value

let case_feasibility () =
  (* case Just 5 of Just x -> x | Nothing -> 0: only the Just branch
     is feasible, and the field constant survives the pattern bind. *)
  let e =
    B.case
      (B.just Types.int (B.int 5))
      [
        B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
        B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
      ]
  in
  let _ = lints e in
  let r = Absint.analyze e in
  Alcotest.check aval "single feasible alternative"
    (Absint.Const (Literal.Int 5))
    r.Absint.r_value

let recursion_terminates () =
  (* joinrec loop (n) = if n <= 0 then 0 else jump loop (n - 1): the
     parameter cell must widen (0, 10 -> Top) and the engine stop. *)
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int) ]
      (fun jump args ->
        let n = List.hd args in
        B.if_ (B.le n (B.int 0)) (B.int 0)
          (jump [ B.sub n (B.int 1) ] Types.int))
      (fun jump -> jump [ B.int 10 ] Types.int)
  in
  let _ = lints e in
  let r = Absint.analyze e in
  Alcotest.(check bool)
    (Fmt.str "fixpoint in %d rounds" r.Absint.r_iterations)
    true
    (r.Absint.r_iterations < 10_000);
  Alcotest.(check bool) "result is sound" true
    (Absint.concretizes r.Absint.r_value (fst (run e)))

(* ---------------- the discipline verifier ---------------- *)

let errors_of e = List.filter Diagnostic.is_error (Absint.verify e)
let has_check c ds = List.exists (fun d -> d.Diagnostic.d_check = c) ds

let ok_join () =
  B.join1 "j"
    [ ("p", Types.int) ]
    (fun args -> List.hd args)
    (fun jump -> jump [ B.int 0 ] Types.int)

let verifier_accepts_clean () =
  Alcotest.(check int) "no errors on a clean join" 0
    (List.length (errors_of (ok_join ())));
  (* Recursive joins: self-jumps from a JRec rhs are in Δ. *)
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int) ]
      (fun jump args -> jump [ List.hd args ] Types.int)
      (fun jump -> jump [ B.int 1 ] Types.int)
  in
  Alcotest.(check int) "no errors on a recursive group" 0
    (List.length (errors_of e))

(* Hand-corrupt a clean join: the HOAS builders cannot express these,
   which is rather the point. *)
let jump_escape_under_lambda () =
  let p = Syntax.mk_var "p" Types.int in
  let j = Syntax.mk_join_var "j" [] [ p ] in
  let x = Syntax.mk_var "x" Types.int in
  let e =
    Syntax.Join
      ( Syntax.JNonRec
          { j_var = j; j_tyvars = []; j_params = [ p ]; j_rhs = Syntax.Var p },
        Syntax.Lam
          (x, Syntax.Jump (j, [], [ Syntax.Lit (Literal.Int 0) ], Types.int))
      )
  in
  fails_lint e;
  let ds = errors_of e in
  Alcotest.(check bool) "jump-escape reported" true (has_check "jump-escape" ds);
  (* The sharper-than-Lint part: the message names the Δ-resetting
     construct. *)
  let d = List.find (fun d -> d.Diagnostic.d_check = "jump-escape") ds in
  Alcotest.(check bool)
    (Fmt.str "message names the lambda: %s" d.Diagnostic.d_message)
    true
    (contains ~affix:"lambda body" d.Diagnostic.d_message)

let jump_arity_mismatch () =
  let p = Syntax.mk_var "p" Types.int in
  let j = Syntax.mk_join_var "j" [] [ p ] in
  let e =
    Syntax.Join
      ( Syntax.JNonRec
          { j_var = j; j_tyvars = []; j_params = [ p ]; j_rhs = Syntax.Var p },
        Syntax.Jump (j, [], [], Types.int) )
  in
  fails_lint e;
  Alcotest.(check bool) "jump-arity reported" true
    (has_check "jump-arity" (errors_of e))

let join_as_value () =
  let p = Syntax.mk_var "p" Types.int in
  let j = Syntax.mk_join_var "j" [] [ p ] in
  let e =
    Syntax.Join
      ( Syntax.JNonRec
          { j_var = j; j_tyvars = []; j_params = [ p ]; j_rhs = Syntax.Var p },
        Syntax.Var j )
  in
  fails_lint e;
  Alcotest.(check bool) "join-as-value reported" true
    (has_check "join-as-value" (errors_of e))

let jump_unbound () =
  let p = Syntax.mk_var "p" Types.int in
  let j = Syntax.mk_join_var "j" [] [ p ] in
  let e = Syntax.Jump (j, [], [ Syntax.Lit (Literal.Int 0) ], Types.int) in
  Alcotest.(check bool) "jump-unbound reported" true
    (has_check "jump-unbound" (errors_of e))

let join_binder_type () =
  let p = Syntax.mk_var "p" Types.int in
  let j = Syntax.mk_var "j" Types.int (* not a join-point type *) in
  let e =
    Syntax.Join
      ( Syntax.JNonRec
          { j_var = j; j_tyvars = []; j_params = [ p ]; j_rhs = Syntax.Var p },
        Syntax.Jump (j, [], [ Syntax.Lit (Literal.Int 0) ], Types.int) )
  in
  Alcotest.(check bool) "join-binder-type reported" true
    (has_check "join-binder-type" (errors_of e))

let dead_join_warning () =
  let p = Syntax.mk_var "p" Types.int in
  let j = Syntax.mk_join_var "j" [] [ p ] in
  let e =
    Syntax.Join
      ( Syntax.JNonRec
          { j_var = j; j_tyvars = []; j_params = [ p ]; j_rhs = Syntax.Var p },
        Syntax.Lit (Literal.Int 0) )
  in
  let ds = Absint.verify e in
  Alcotest.(check int) "no errors" 0
    (List.length (List.filter Diagnostic.is_error ds));
  Alcotest.(check bool) "dead-join warned" true (has_check "dead-join" ds)

let ill_formed_application () =
  let e =
    Syntax.App (Syntax.Lit (Literal.Int 0), Syntax.Lit (Literal.Int 1))
  in
  fails_lint e;
  Alcotest.(check bool) "ill-formed-application reported" true
    (has_check "ill-formed-application" (errors_of e))

(* Every Ill_typed corruption the fault registry can inject must be
   rejected by the verifier, exactly as Lint rejects it. *)
let rejects_fault_injected_trees () =
  let sample = ok_join () in
  let _ = lints sample in
  List.iter
    (fun point ->
      let corrupted =
        Fault.with_armed
          [ (point, Fault.Ill_typed) ]
          (fun () -> Fault.point point sample)
      in
      Alcotest.(check bool) (point ^ " breaks lint") false
        (Lint.well_typed dc corrupted);
      Alcotest.(check bool)
        (point ^ " rejected by the verifier")
        true
        (errors_of corrupted <> []))
    Fault.points

(* ---------------- liveness ---------------- *)

let dead_binder_basics () =
  (* let x = 0 in 1: x is dead. *)
  let e = B.let_ "x" (B.int 0) (fun _ -> B.int 1) in
  let x =
    match Absint.let_binders e with [ x ] -> x | _ -> Alcotest.fail "binders"
  in
  Alcotest.(check bool) "syntactically dead binder found" true
    (Ident.Set.mem x.Syntax.v_name (Absint.dead_binders e));
  (* let x = 0 in let y = x in 2: y is dead, and x is used *only* by
     y, so it is transitively dead — beyond Occur's zero-count test. *)
  let e = B.let_ "x" (B.int 0) (fun x -> B.let_ "y" x (fun _ -> B.int 2)) in
  let dead = Absint.dead_binders e in
  Alcotest.(check int) "both transitively dead" 2 (Ident.Set.cardinal dead);
  (* let x = 0 in x: live. *)
  let e = B.let_ "x" (B.int 0) (fun x -> x) in
  Alcotest.(check int) "used binder is live" 0
    (Ident.Set.cardinal (Absint.dead_binders e))

(* On the whole corpus: Occur.count = 0 implies Absint-dead (the
   analysis is strictly stronger, never weaker). *)
let dead_agrees_with_occur () =
  List.iter
    (fun (name, e) ->
      let _, info = Occur.with_binder_info e in
      let dead = Absint.dead_binders e in
      List.iter
        (fun (x : Syntax.var) ->
          match Ident.Map.find_opt x.Syntax.v_name info with
          | Some (i : Occur.info) when i.Occur.count = 0 ->
              if not (Ident.Set.mem x.Syntax.v_name dead) then
                Alcotest.failf "%s: %s has zero occurrences but is not dead"
                  name
                  (Ident.site x.Syntax.v_name)
          | _ -> ())
        (Absint.let_binders e))
    (corpus ())

(* ---------------- abstract soundness, fuzzed ---------------- *)

(* The acceptance-criteria run: 200 seeded cases through the full
   differential oracle with the absint soundness oracle armed — the
   concrete result must lie in the concretization of the abstract one
   on the seed and on every optimised output (all three pipeline
   configurations). *)
let soundness_vs_eval () =
  for seed = 0 to 199 do
    let e = Gen.program_of_seed seed in
    match Fuzz.check_program ~absint:true e with
    | Fuzz.Pass | Fuzz.Skip _ -> ()
    | Fuzz.Fail { mode; kind; detail } ->
        Alcotest.failf "seed %d: %s under %s: %s@.%s" seed kind mode detail
          (Sexp.write e)
  done

(* ---------------- corpus & examples sweep ---------------- *)

(* The committed corpus is discipline-clean; its missed-optimization
   warning counts are pinned so a pipeline change that starts (or
   stops) leaving provably-foldable or dead sites behind is visible in
   review. Regenerate with:
     dune exec bin/fjc.exe -- check test/corpus/*.sexp *)
let corpus_warning_snapshot =
  [
    ("interesting-300.sexp", 3);
    ("interesting-301.sexp", 0);
    ("interesting-303.sexp", 2);
    ("interesting-304.sexp", 4);
    ("interesting-306.sexp", 3);
    ("interesting-307.sexp", 2);
    ("interesting-317.sexp", 1);
    ("interesting-336.sexp", 5);
    ("interesting-339.sexp", 3);
    ("interesting-42.sexp", 2);
    ("interesting-44.sexp", 1);
    ("interesting-45.sexp", 6);
    ("interesting-46.sexp", 5);
    ("interesting-47.sexp", 0);
    ("interesting-50.sexp", 1);
    ("interesting-51.sexp", 4);
    ("interesting-53.sexp", 1);
    ("interesting-58.sexp", 1);
    ("interesting-95.sexp", 6);
  ]

let corpus_sweep () =
  let cases = corpus () in
  Alcotest.(check bool) "corpus present" true (List.length cases >= 10);
  List.iter
    (fun (name, e) ->
      let r = Absint.check ~config:(check_config dc) e in
      Alcotest.(check int)
        (name ^ ": zero discipline errors")
        0 r.Absint.c_errors;
      match List.assoc_opt name corpus_warning_snapshot with
      | None ->
          Alcotest.failf
            "%s: not in the warning snapshot — add (%S, %d) to \
             corpus_warning_snapshot"
            name name r.Absint.c_warnings
      | Some expected ->
          Alcotest.(check int)
            (name ^ ": warning count matches the snapshot")
            expected r.Absint.c_warnings)
    cases

let examples_sweep () =
  let cases = examples () in
  Alcotest.(check bool) "examples present" true (List.length cases >= 4);
  List.iter
    (fun (name, denv, core) ->
      let r = Absint.check ~config:(check_config denv) core in
      Alcotest.(check int)
        (name ^ ": zero discipline errors")
        0 r.Absint.c_errors;
      Alcotest.(check int)
        (name ^ ": no missed-opt warnings")
        0 r.Absint.c_warnings)
    cases

(* ---------------- missed-optimization report ---------------- *)

let missed_reports_foldable_and_dead () =
  (* A "pipeline output" with a provably foldable primop under a
     binder and a dead binding: both must be reported, with the
     no-ledger-entry reason (an empty ledger was "passed in"). *)
  let e =
    B.let_ "dead" (B.int 0) (fun _ ->
        B.let_ "s" (B.add (B.int 1) (B.int 2)) (fun s -> s))
  in
  let ds, _iters = Absint.missed ~decisions:[] e in
  Alcotest.(check bool) "constant fold reported" true
    (has_check "missed-constant-fold" ds);
  Alcotest.(check bool) "dead binding reported" true
    (has_check "missed-dead-binding" ds);
  List.iter
    (fun d ->
      Alcotest.(check bool) "ledger cross-reference present" true
        (d.Diagnostic.d_reason <> None))
    ds

let check_skips_pipeline_on_errors () =
  let e =
    Syntax.App (Syntax.Lit (Literal.Int 0), Syntax.Lit (Literal.Int 1))
  in
  let r = Absint.check ~config:(check_config dc) e in
  Alcotest.(check bool) "errors found" true (r.Absint.c_errors > 0);
  Alcotest.(check bool) "no missed-opt stage ran" true
    (not
       (List.exists
          (fun d ->
            String.length d.Diagnostic.d_check >= 6
            && String.sub d.Diagnostic.d_check 0 6 = "missed")
          r.Absint.c_diagnostics))

(* ---------------- diagnostics JSON ---------------- *)

let diagnostic_round_trip () =
  let ds =
    [
      Diagnostic.error "jump-arity" ~site:"j" "wrong arity";
      Diagnostic.warning "dead-join" ~site:"k" "never jumped to";
      Diagnostic.warning ~pass:"simplify" ~reason:"size 74 > threshold 60"
        "missed-constant-fold" ~site:"s" "provably constant";
    ]
  in
  List.iter
    (fun d ->
      match Diagnostic.of_json (Diagnostic.to_json d) with
      | Ok d' ->
          Alcotest.(check string)
            "round trips"
            (Fmt.str "%a" Diagnostic.pp d)
            (Fmt.str "%a" Diagnostic.pp d')
      | Error m -> Alcotest.failf "round trip failed: %s" m)
    ds;
  (match Diagnostic.of_json (Telemetry.Json.Str "nope") with
  | Ok _ -> Alcotest.fail "non-object accepted"
  | Error _ -> ());
  (match
     Diagnostic.of_json
       (Telemetry.Json.Obj [ ("check", Telemetry.Json.Str "x") ])
   with
  | Ok _ -> Alcotest.fail "missing fields accepted"
  | Error _ -> ());
  Alcotest.(check (pair int int))
    "count splits severities" (1, 2) (Diagnostic.count ds)

let tests =
  [
    test "lattice laws" lattice_laws;
    test "concretization" concretization;
    test "constants flow through jumps" const_through_jump;
    test "primops fold" primops_fold;
    test "case feasibility" case_feasibility;
    test "recursive joins terminate (widening)" recursion_terminates;
    test "verifier accepts clean joins" verifier_accepts_clean;
    test "jump under a lambda is an escape" jump_escape_under_lambda;
    test "jump arity mismatch" jump_arity_mismatch;
    test "join point as a first-class value" join_as_value;
    test "jump to an unbound label" jump_unbound;
    test "join binder type" join_binder_type;
    test "unreached join points warn" dead_join_warning;
    test "literal in application head" ill_formed_application;
    test "rejects every fault-injected ill-typed tree"
      rejects_fault_injected_trees;
    test "dead-binder basics (transitive)" dead_binder_basics;
    test "dead facts agree with Occur on the corpus" dead_agrees_with_occur;
    test "abstract soundness vs Eval, 200 seeds x 3 configs"
      soundness_vs_eval;
    test "corpus sweep: clean, warnings snapshotted" corpus_sweep;
    test "examples sweep: clean" examples_sweep;
    test "missed-opt report (foldable + dead)" missed_reports_foldable_and_dead;
    test "check skips the pipeline on discipline errors"
      check_skips_pipeline_on_errors;
    test "diagnostic JSON round trip" diagnostic_round_trip;
  ]
