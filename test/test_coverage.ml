(** Tests for {!Fj_core.Coverage}: the statically-enumerated universe,
    hit recording (including from real pipeline traces, which must
    never produce out-of-universe hits — the guard against the static
    decision table drifting from the passes), merge/diff, the axiom
    gate, and the [fj-cover/1] JSON round trip. *)

open Fj_core

let compile src = Fj_surface.Prelude.compile src

let src =
  {|
def main =
  let rec go i acc =
    if i > 40 then acc
    else if odd i then go (i + 1) (acc + i * 3)
    else go (i + 1) acc
  in go 1 0
|}

let all_modes =
  [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]

let observe_all ?(policy = Guard.Strict) cover src =
  let denv, core = compile src in
  List.iter
    (fun mode ->
      let cfg =
        Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300
          ~policy ()
      in
      let _, r = Pipeline.run_report cfg core in
      Coverage.observe_report cover r)
    all_modes

(* ------------------------------------------------------------------ *)
(* Universe                                                            *)
(* ------------------------------------------------------------------ *)

let universe_shape () =
  (* 3 configurations x every tick, the static decision-outcome table,
     and the four rollback causes. The exact numbers are pinned so the
     universe cannot silently shrink. *)
  let ticks = List.length (Coverage.dim_points Coverage.Ticks) in
  let decisions = List.length (Coverage.dim_points Coverage.Decisions) in
  let guards = List.length (Coverage.dim_points Coverage.Guards) in
  Alcotest.(check int)
    "ticks = 3 x all_ticks"
    (3 * List.length Telemetry.all_ticks)
    ticks;
  Alcotest.(check int) "guard causes" 4 guards;
  Alcotest.(check bool) "decision outcomes > actions" true (decisions > 11);
  Alcotest.(check int)
    "universe is the disjoint union"
    (ticks + decisions + guards)
    Coverage.universe_size;
  Alcotest.(check int)
    "universe listing matches"
    Coverage.universe_size
    (List.length Coverage.universe)

let fresh_map_is_empty () =
  let m = Coverage.create () in
  Alcotest.(check int) "covered" 0 (Coverage.covered m);
  Alcotest.(check int)
    "never-fired lists everything"
    Coverage.universe_size
    (List.length (Coverage.never_fired m));
  let covered, total = Coverage.axioms_covered m in
  Alcotest.(check int) "no axioms" 0 covered;
  Alcotest.(check int)
    "axiom total = tick names"
    (List.length Telemetry.all_ticks)
    total

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let hit_and_read () =
  let m = Coverage.create () in
  Coverage.hit_tick m ~mode:"baseline" Telemetry.Beta;
  Coverage.hit_tick ~n:4 m ~mode:"baseline" Telemetry.Beta;
  Coverage.hit_decision m Decision.Inline Decision.Fired;
  Coverage.hit_incident m (Guard.Exn "boom");
  Alcotest.(check int)
    "tick count" 5
    (Coverage.count m Coverage.Ticks "baseline/beta");
  Alcotest.(check int)
    "decision count" 1
    (Coverage.count m Coverage.Decisions "inline:fired");
  Alcotest.(check int)
    "guard count" 1
    (Coverage.count m Coverage.Guards "exception");
  Alcotest.(check int) "covered" 3 (Coverage.covered m);
  Alcotest.(check int) "unknown" 0 (Coverage.unknown_hits m)

let unknown_hits_counted () =
  let m = Coverage.create () in
  Coverage.hit_tick m ~mode:"no-such-mode" Telemetry.Beta;
  (* Inline can never be rejected with a cse-style reason — the static
     table must refuse to file it rather than invent a point. *)
  Coverage.hit_decision m Decision.Inline
    (Decision.Rejected Decision.Already_whnf);
  Alcotest.(check int) "both unknown" 2 (Coverage.unknown_hits m);
  Alcotest.(check int) "nothing covered" 0 (Coverage.covered m)

(* The drift guard: a real three-configuration compile must land every
   single hit inside the static universe. *)
let real_runs_have_no_unknown_hits () =
  let m = Coverage.create () in
  observe_all m src;
  Alcotest.(check int) "no unknown hits" 0 (Coverage.unknown_hits m);
  Alcotest.(check bool) "something covered" true (Coverage.covered m > 0);
  (* The loop above needs join points: the axiom gate must see beta
     and case_of_known fire somewhere. *)
  let covered, _ = Coverage.axioms_covered m in
  Alcotest.(check bool) "several axioms fired" true (covered >= 5)

let incident_causes_from_faults () =
  let m = Coverage.create () in
  List.iter
    (fun (site, behaviour) ->
      Fault.with_armed
        [ (site, behaviour) ]
        (fun () -> observe_all ~policy:Guard.Recover m src))
    [
      ("simplify/result", Fault.Raise);
      ("simplify/result", Fault.Ill_typed);
      ("simplify/result", Fault.Burn_fuel);
      (* Grow at simplify stays under the 12x-plus-slack ceiling on a
         program this small; float-in's input is the whole term, so the
         grown result clears the limit there. *)
      ("float-in/result", Fault.Grow);
    ];
  let covered, total = Coverage.dim_covered m Coverage.Guards in
  Alcotest.(check int) "guards total" 4 total;
  Alcotest.(check int) "all four causes hit" 4 covered;
  Alcotest.(check int) "still no unknown hits" 0 (Coverage.unknown_hits m)

(* ------------------------------------------------------------------ *)
(* Combining                                                           *)
(* ------------------------------------------------------------------ *)

let merge_and_diff () =
  let a = Coverage.create () and b = Coverage.create () in
  Coverage.hit_tick a ~mode:"baseline" Telemetry.Beta;
  Coverage.hit_tick a ~mode:"join-points" Telemetry.Jinline;
  Coverage.hit_tick b ~mode:"baseline" Telemetry.Beta;
  Coverage.hit_decision b Decision.Cse Decision.Fired;
  (* diff: in a but not b. *)
  (match Coverage.diff a b with
  | [ (Coverage.Ticks, "join-points/jinline") ] -> ()
  | other ->
      Alcotest.failf "unexpected diff: %d points" (List.length other));
  let before = Coverage.count a Coverage.Ticks "baseline/beta" in
  Coverage.merge_into ~into:a b;
  Alcotest.(check int)
    "counts add" (before + 1)
    (Coverage.count a Coverage.Ticks "baseline/beta");
  Alcotest.(check int) "union covered" 3 (Coverage.covered a);
  Alcotest.(check bool)
    "diff now empty" true
    (Coverage.diff b a = [])

let copy_is_independent () =
  let a = Coverage.create () in
  Coverage.hit_incident a (Guard.Lint_failed "broke");
  let b = Coverage.copy a in
  Coverage.hit_incident b (Guard.Fuel_exhausted { budget = 0 });
  Alcotest.(check bool) "copy equal until diverged" false
    (Coverage.equal a b);
  Alcotest.(check int) "original untouched" 1 (Coverage.covered a);
  Alcotest.(check int) "copy extended" 2 (Coverage.covered b)

(* ------------------------------------------------------------------ *)
(* JSON round trip                                                     *)
(* ------------------------------------------------------------------ *)

let json_round_trip () =
  let m = Coverage.create () in
  observe_all m src;
  Coverage.hit_incident m
    (Guard.Size_exploded { size_before = 1; size_after = 9; limit = 3 });
  let j = Coverage.to_json m in
  (* Through text, as [fjc cover --json] consumers would see it. *)
  let reread =
    match Telemetry.Json.parse (Telemetry.Json.to_string j) with
    | Ok j' -> j'
    | Error e -> Alcotest.failf "emitted JSON does not parse: %s" e
  in
  match Coverage.of_json reread with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok m' ->
      Alcotest.(check bool)
        "round trip is count-exact" true (Coverage.equal m m')

let json_rejects_garbage () =
  (match Coverage.of_json (Telemetry.Json.Obj [ ("schema", Telemetry.Json.Str "fj-bench/1") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  let bogus =
    Telemetry.Json.(
      Obj
        [
          ("schema", Str "fj-cover/1");
          ( "dims",
            Obj
              [
                ( "ticks",
                  Obj [ ("points", Obj [ ("baseline/not-a-tick", Int 1) ]) ]
                );
              ] );
        ])
  in
  match Coverage.of_json bogus with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-universe point accepted"

let tests =
  [
    Alcotest.test_case "universe shape" `Quick universe_shape;
    Alcotest.test_case "fresh map is empty" `Quick fresh_map_is_empty;
    Alcotest.test_case "hit and read" `Quick hit_and_read;
    Alcotest.test_case "unknown hits counted" `Quick unknown_hits_counted;
    Alcotest.test_case "real runs stay in-universe" `Quick
      real_runs_have_no_unknown_hits;
    Alcotest.test_case "faults cover the guard causes" `Quick
      incident_causes_from_faults;
    Alcotest.test_case "merge and diff" `Quick merge_and_diff;
    Alcotest.test_case "copy is independent" `Quick copy_is_independent;
    Alcotest.test_case "fj-cover/1 round trip" `Quick json_round_trip;
    Alcotest.test_case "of_json rejects garbage" `Quick json_rejects_garbage;
  ]
