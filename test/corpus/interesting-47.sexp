(join
 ((j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((p.1 (tc Int)))
  (var (p.1 (tc Int))))
 (let (x.11 (tc Bool))
  (join
   ((j.6 (-> (tc Int) (forall r.5 (tv r.5)))) () ((p.4 (tc Int)))
    (let (x.9 (tapp (tc List) (tc Int)))
     (case (con Nil ((tc Int))) (pcon Nil () (con Nil ((tc Int))))
      (pcon Cons ((h.7 (tc Int)) (t.8 (tapp (tc List) (tc Int))))
       (var (t.8 (tapp (tc List) (tc Int))))))
     (let (x.10 (tc Bool)) (con True ()) (con True ()))))
   (jump (j.6 (-> (tc Int) (forall r.5 (tv r.5)))) () (tc Bool)
    (lit (int 50))))
  (jump (j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () (tc Int) (lit (int 42)))))
