(let (x.7 (tc Int))
 (app (lam (l.6 (tc Int)) (prim +# (var (l.6 (tc Int))) (lit (int 1))))
  (case
   (case (con False ()) (pcon True () (con True ()))
    (pcon False () (con False ())))
   (pcon True ()
    (join
     ((j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((p.1 (tc Int)))
      (var (p.1 (tc Int)))) (lit (int 52))))
   (pcon False ()
    (let (x.5 (-> (tc Int) (tc Int)))
     (lam (l.4 (tc Int)) (prim +# (var (l.4 (tc Int))) (lit (int 1))))
     (lit (int 19))))))
 (app
  (join
   ((j.14 (-> (tc Int) (forall r.13 (tv r.13)))) () ((p.12 (tc Int)))
    (lam (l.15 (tc Int)) (prim +# (var (l.15 (tc Int))) (lit (int 1)))))
   (join
    ((j.18 (-> (tc Int) (forall r.17 (tv r.17)))) () ((p.16 (tc Int)))
     (lam (l.19 (tc Int)) (prim +# (var (l.19 (tc Int))) (lit (int 1)))))
    (lam (l.20 (tc Int)) (prim +# (var (l.20 (tc Int))) (lit (int 1))))))
  (prim +#
   (case (con Nothing ((tc Int))) (pcon Nothing () (var (x.7 (tc Int))))
    (pcon Just ((mx.8 (tc Int))) (var (x.7 (tc Int)))))
   (join
    ((j.11 (-> (tc Int) (forall r.10 (tv r.10)))) () ((p.9 (tc Int)))
     (var (x.7 (tc Int)))) (var (x.7 (tc Int)))))))
