(join
 ((j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((p.1 (tc Int)))
  (prim *# (let (x.4 (tc Bool)) (con False ()) (var (p.1 (tc Int))))
   (app (lam (l.5 (tc Int)) (prim +# (var (l.5 (tc Int))) (lit (int 1))))
    (lit (int 96)))))
 (join
  ((j.8 (-> (tc Int) (forall r.7 (tv r.7)))) () ((p.6 (tc Int)))
   (prim +# (var (p.6 (tc Int))) (lit (int 71))))
  (jump (j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () (tc Int) (lit (int 97)))))
