(let (x.14 (-> (tc Int) (tc Int)))
 (joinrec
  (((loop.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((n.1 (tc Int)))
    (case (prim <=# (var (n.1 (tc Int))) (lit (int 0)))
     (pcon True ()
      (let (x.5 (-> (tc Int) (tc Int)))
       (lam (l.4 (tc Int)) (prim +# (var (l.4 (tc Int))) (lit (int 1))))
       (join
        ((j.8 (-> (tc Int) (forall r.7 (tv r.7)))) () ((p.6 (tc Int)))
         (var (x.5 (-> (tc Int) (tc Int)))))
        (lam (l.9 (tc Int)) (prim +# (var (l.9 (tc Int))) (lit (int 1)))))))
     (pcon False ()
      (case (prim ># (var (n.1 (tc Int))) (lit (int 2)))
       (pcon True ()
        (jump (loop.3 (-> (tc Int) (forall r.2 (tv r.2)))) ()
         (-> (tc Int) (tc Int)) (prim -# (var (n.1 (tc Int))) (lit (int 1)))))
       (pcon False ()
        (app
         (let (x.11 (tc Int)) (var (n.1 (tc Int)))
          (lam (d.12 (tc Int)) (lam (d.13 (tc Int)) (lit (int 0)))))
         (case (con Nothing ((tc Int)))
          (pcon Nothing () (var (n.1 (tc Int))))
          (pcon Just ((mx.10 (tc Int))) (var (n.1 (tc Int))))))))))))
  (jump (loop.3 (-> (tc Int) (forall r.2 (tv r.2)))) ()
   (-> (tc Int) (tc Int)) (lit (int 2))))
 (let (x.15 (tc Bool)) (con False ())
  (case
   (join
    ((j.18 (-> (tc Int) (forall r.17 (tv r.17)))) () ((p.16 (tc Int)))
     (let (x.19 (tc Bool)) (var (x.15 (tc Bool))) (var (x.19 (tc Bool)))))
    (join
     ((j.22 (-> (tc Int) (forall r.21 (tv r.21)))) () ((p.20 (tc Int)))
      (var (x.15 (tc Bool)))) (var (x.15 (tc Bool)))))
   (pcon True () (lit (int 60))) (pcon False () (lit (int 31))))))
