(join
 ((j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((p.1 (tc Int)))
  (prim <# (let (x.4 (tc Bool)) (con True ()) (lit (int 99)))
   (prim +#
    (let (x.7 (-> (tc Int) (tc Int)))
     (let (x.5 (tapp (tc Maybe) (tc Int))) (con Nothing ((tc Int)))
      (lam (l.6 (tc Int)) (prim +# (var (l.6 (tc Int))) (lit (int 1)))))
     (app (var (x.7 (-> (tc Int) (tc Int)))) (lit (int 97))))
    (case
     (join
      ((j.10 (-> (tc Int) (forall r.9 (tv r.9)))) () ((p.8 (tc Int)))
       (con Nil ((tc Int)))) (con Nil ((tc Int))))
     (pcon Nil () (lit (int 0)))
     (pcon Cons ((h.11 (tc Int)) (t.12 (tapp (tc List) (tc Int))))
      (prim +# (lit (int 29)) (var (p.1 (tc Int)))))))))
 (prim <#
  (app
   (lam (a.13 (tc Int))
    (prim +# (var (a.13 (tc Int))) (var (a.13 (tc Int))))) (lit (int 86)))
  (lit (int 26))))
