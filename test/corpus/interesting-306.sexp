(case
 (prim <=# (lit (int 0))
  (letrec
   (((h.25 (-> (tc Int) (tc Int)))
     (lam (n.26 (tc Int))
      (case (prim <=# (var (n.26 (tc Int))) (lit (int 0)))
       (pcon True () (lit (int 1)))
       (pcon False ()
        (prim +#
         (app (var (h.25 (-> (tc Int) (tc Int))))
          (prim -# (var (n.26 (tc Int))) (lit (int 1)))) (lit (int 2))))))))
   (let (x.27 (tc Int))
    (app (var (h.25 (-> (tc Int) (tc Int)))) (lit (int 5)))
    (let (a.28 (tc Int)) (prim +# (var (x.27 (tc Int))) (lit (int 7)))
     (let (b.29 (tc Int)) (prim +# (var (x.27 (tc Int))) (lit (int 7)))
      (let (big.30 (-> (tc Int) (tc Int)))
       (lam (w.31 (tc Int))
        (prim +#
         (prim +#
          (prim +#
           (prim +#
            (prim +#
             (prim +#
              (prim +#
               (prim +#
                (prim +#
                 (prim +#
                  (prim +#
                   (prim +#
                    (prim +#
                     (prim +#
                      (prim +#
                       (prim +#
                        (prim +#
                         (prim +#
                          (prim +#
                           (prim +#
                            (prim +#
                             (prim +#
                              (prim +#
                               (prim +# (var (w.31 (tc Int)))
                                (prim *# (var (w.31 (tc Int)))
                                 (prim +# (var (x.27 (tc Int)))
                                  (lit (int 1)))))
                               (prim *# (var (w.31 (tc Int)))
                                (prim +# (var (x.27 (tc Int))) (lit (int 2)))))
                              (prim *# (var (w.31 (tc Int)))
                               (prim +# (var (x.27 (tc Int))) (lit (int 3)))))
                             (prim *# (var (w.31 (tc Int)))
                              (prim +# (var (x.27 (tc Int))) (lit (int 4)))))
                            (prim *# (var (w.31 (tc Int)))
                             (prim +# (var (x.27 (tc Int))) (lit (int 5)))))
                           (prim *# (var (w.31 (tc Int)))
                            (prim +# (var (x.27 (tc Int))) (lit (int 6)))))
                          (prim *# (var (w.31 (tc Int)))
                           (prim +# (var (x.27 (tc Int))) (lit (int 7)))))
                         (prim *# (var (w.31 (tc Int)))
                          (prim +# (var (x.27 (tc Int))) (lit (int 8)))))
                        (prim *# (var (w.31 (tc Int)))
                         (prim +# (var (x.27 (tc Int))) (lit (int 9)))))
                       (prim *# (var (w.31 (tc Int)))
                        (prim +# (var (x.27 (tc Int))) (lit (int 10)))))
                      (prim *# (var (w.31 (tc Int)))
                       (prim +# (var (x.27 (tc Int))) (lit (int 11)))))
                     (prim *# (var (w.31 (tc Int)))
                      (prim +# (var (x.27 (tc Int))) (lit (int 12)))))
                    (prim *# (var (w.31 (tc Int)))
                     (prim +# (var (x.27 (tc Int))) (lit (int 13)))))
                   (prim *# (var (w.31 (tc Int)))
                    (prim +# (var (x.27 (tc Int))) (lit (int 14)))))
                  (prim *# (var (w.31 (tc Int)))
                   (prim +# (var (x.27 (tc Int))) (lit (int 15)))))
                 (prim *# (var (w.31 (tc Int)))
                  (prim +# (var (x.27 (tc Int))) (lit (int 16)))))
                (prim *# (var (w.31 (tc Int)))
                 (prim +# (var (x.27 (tc Int))) (lit (int 17)))))
               (prim *# (var (w.31 (tc Int)))
                (prim +# (var (x.27 (tc Int))) (lit (int 18)))))
              (prim *# (var (w.31 (tc Int)))
               (prim +# (var (x.27 (tc Int))) (lit (int 19)))))
             (prim *# (var (w.31 (tc Int)))
              (prim +# (var (x.27 (tc Int))) (lit (int 20)))))
            (prim *# (var (w.31 (tc Int)))
             (prim +# (var (x.27 (tc Int))) (lit (int 21)))))
           (prim *# (var (w.31 (tc Int)))
            (prim +# (var (x.27 (tc Int))) (lit (int 22)))))
          (prim *# (var (w.31 (tc Int)))
           (prim +# (var (x.27 (tc Int))) (lit (int 23)))))
         (prim *# (var (w.31 (tc Int)))
          (prim +# (var (x.27 (tc Int))) (lit (int 24))))))
       (let (sm.32 (-> (tc Int) (tc Int)))
        (lam (v.33 (tc Int))
         (prim +# (prim +# (var (v.33 (tc Int))) (var (v.33 (tc Int))))
          (lit (int 3))))
        (prim +#
         (prim +# (prim +# (var (a.28 (tc Int))) (var (a.28 (tc Int))))
          (var (b.29 (tc Int))))
         (prim +#
          (prim +# (app (var (big.30 (-> (tc Int) (tc Int)))) (lit (int 1)))
           (app (var (big.30 (-> (tc Int) (tc Int)))) (lit (int 2))))
          (prim +# (app (var (sm.32 (-> (tc Int) (tc Int)))) (lit (int 1)))
           (app (var (sm.32 (-> (tc Int) (tc Int)))) (lit (int 2)))))))))))))
 (pcon True ()
  (let (x.22 (tapp (tc Maybe) (tc Int)))
   (join
    ((j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((p.1 (tc Int)))
     (app
      (case
       (joinrec
        (((loop.7 (-> (tc Int) (forall r.6 (tv r.6)))) () ((n.5 (tc Int)))
          (case (prim <=# (var (n.5 (tc Int))) (lit (int 0)))
           (pcon True () (con Nothing ((tc Int))))
           (pcon False ()
            (case (prim ># (var (n.5 (tc Int))) (lit (int 2)))
             (pcon True ()
              (jump (loop.7 (-> (tc Int) (forall r.6 (tv r.6)))) ()
               (tapp (tc Maybe) (tc Int))
               (prim -# (var (n.5 (tc Int))) (lit (int 1)))))
             (pcon False () (con Nothing ((tc Int)))))))))
        (jump (loop.7 (-> (tc Int) (forall r.6 (tv r.6)))) ()
         (tapp (tc Maybe) (tc Int)) (lit (int 1))))
       (pcon Nothing () (lam (d.9 (tc Int)) (con Nothing ((tc Int)))))
       (pcon Just ((mx.8 (tc Int)))
        (case (con True ())
         (pcon True () (lam (d.10 (tc Int)) (con Nothing ((tc Int)))))
         (pcon False () (lam (d.11 (tc Int)) (con Nothing ((tc Int))))))))
      (prim +# (var (p.1 (tc Int)))
       (app (lam (l.4 (tc Int)) (prim +# (var (l.4 (tc Int))) (lit (int 1))))
        (var (p.1 (tc Int)))))))
    (app
     (let (x.16 (tc Bool))
      (join
       ((j.15 (-> (tc Int) (forall r.14 (tv r.14)))) () ((p.13 (tc Int)))
        (con True ())) (con True ()))
      (join
       ((j.19 (-> (tc Int) (forall r.18 (tv r.18)))) () ((p.17 (tc Int)))
        (lam (d.20 (tc Int)) (con Nothing ((tc Int)))))
       (lam (d.21 (tc Int)) (con Nothing ((tc Int))))))
     (let (x.12 (tapp (tc List) (tc Int))) (con Nil ((tc Int)))
      (case (con True ()) (pcon True () (lit (int 55)))
       (pcon False () (lit (int 0)))))))
   (lam (l.23 (tc Int)) (prim +# (var (l.23 (tc Int))) (lit (int 1))))))
 (pcon False () (lam (a.34 (tc Int)) (lit (int 7)))))
