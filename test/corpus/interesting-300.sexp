(let (x.22 (tapp (tc Maybe) (tc Int)))
 (join
  ((j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((p.1 (tc Int)))
   (app
    (case
     (joinrec
      (((loop.7 (-> (tc Int) (forall r.6 (tv r.6)))) () ((n.5 (tc Int)))
        (case (prim <=# (var (n.5 (tc Int))) (lit (int 0)))
         (pcon True () (con Nothing ((tc Int))))
         (pcon False ()
          (case (prim ># (var (n.5 (tc Int))) (lit (int 2)))
           (pcon True ()
            (jump (loop.7 (-> (tc Int) (forall r.6 (tv r.6)))) ()
             (tapp (tc Maybe) (tc Int))
             (prim -# (var (n.5 (tc Int))) (lit (int 1)))))
           (pcon False () (con Nothing ((tc Int)))))))))
      (jump (loop.7 (-> (tc Int) (forall r.6 (tv r.6)))) ()
       (tapp (tc Maybe) (tc Int)) (lit (int 1))))
     (pcon Nothing () (lam (d.9 (tc Int)) (con Nothing ((tc Int)))))
     (pcon Just ((mx.8 (tc Int)))
      (case (con True ())
       (pcon True () (lam (d.10 (tc Int)) (con Nothing ((tc Int)))))
       (pcon False () (lam (d.11 (tc Int)) (con Nothing ((tc Int))))))))
    (prim +# (var (p.1 (tc Int)))
     (app (lam (l.4 (tc Int)) (prim +# (var (l.4 (tc Int))) (lit (int 1))))
      (var (p.1 (tc Int)))))))
  (app
   (let (x.16 (tc Bool))
    (join
     ((j.15 (-> (tc Int) (forall r.14 (tv r.14)))) () ((p.13 (tc Int)))
      (con True ())) (con True ()))
    (join
     ((j.19 (-> (tc Int) (forall r.18 (tv r.18)))) () ((p.17 (tc Int)))
      (lam (d.20 (tc Int)) (con Nothing ((tc Int)))))
     (lam (d.21 (tc Int)) (con Nothing ((tc Int))))))
   (let (x.12 (tapp (tc List) (tc Int))) (con Nil ((tc Int)))
    (case (con True ()) (pcon True () (lit (int 55)))
     (pcon False () (lit (int 0)))))))
 (lam (l.23 (tc Int)) (prim +# (var (l.23 (tc Int))) (lit (int 1)))))
