(prim +#
 (prim +# (lit (int 4))
  (join
   ((j.3 (-> (tc Int) (forall r.2 (tv r.2)))) () ((p.1 (tc Int)))
    (prim +# (var (p.1 (tc Int))) (var (p.1 (tc Int))))) (lit (int 31))))
 (prim +# (lit (int 33))
  (prim +# (prim +# (lit (int 19)) (lit (int 82))) (lit (int 29)))))
