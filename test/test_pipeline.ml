(** Tests for {!Fj_core.Pipeline}: configuration behaviour, reports,
    the forensic Lint mode, and the expected allocation ordering across
    compiler configurations. *)

open Fj_core
open Util

let compile src = Fj_surface.Prelude.compile src

let words mode ?(strictness = true) ?(cse = true) ?(spec_constr = true) src =
  let denv, core = compile src in
  let cfg =
    Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300
      ~strictness ~cse ~spec_constr ()
  in
  let e = Pipeline.run cfg core in
  let _ = lints ~env:denv e in
  same_result core e;
  (snd (run e)).Eval.words

let fusion_src =
  {|
def main =
  let rec go i acc =
    if i > 300 then acc
    else if odd i then go (i + 1) (acc + i * 3)
    else go (i + 1) acc
  in go 1 0
|}

let ordering () =
  (* join-points <= baseline <= no-cc on a loop-heavy program. *)
  let j = words Pipeline.Join_points fusion_src in
  let b = words Pipeline.Baseline fusion_src in
  let n = words Pipeline.No_cc fusion_src in
  Alcotest.(check bool)
    (Fmt.str "join (%d) <= baseline (%d)" j b)
    true (j <= b);
  Alcotest.(check bool)
    (Fmt.str "baseline (%d) <= no-cc (%d)" b n)
    true (b <= n);
  Alcotest.(check int) "join points allocate nothing here" 0 j

let report_trail () =
  let denv, core = compile "def main = sum (enumFromTo 1 10)" in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv ()
  in
  let _, report = Pipeline.run_report cfg core in
  let passes = List.map fst (Pipeline.trail report) in
  let has prefix =
    List.exists
      (fun p -> String.length p >= String.length prefix
                && String.sub p 0 (String.length prefix) = prefix)
      passes
  in
  Alcotest.(check bool) "ran float-in" true (has "float-in");
  Alcotest.(check bool) "ran contify" true (has "contify");
  Alcotest.(check bool) "ran demand" true (has "demand");
  Alcotest.(check bool) "ran simplify" true (has "simplify");
  Alcotest.(check bool) "ran float-out" true (has "float-out");
  Alcotest.(check bool) "contified something" true
    (Pipeline.contified report > 0)

let baseline_skips_contify () =
  let denv, core = compile "def main = sum (enumFromTo 1 10)" in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Baseline ~datacons:denv ()
  in
  let _, report = Pipeline.run_report cfg core in
  let passes = List.map fst (Pipeline.trail report) in
  Alcotest.(check bool) "no contify pass" false
    (List.exists
       (fun p -> String.length p >= 7 && String.sub p 0 7 = "contify")
       passes)

let lint_every_pass_catches () =
  (* The forensic mode must lint-check between passes and report the
     failing pass name (we can only check it does not fire on healthy
     programs here; pass-bug injection is covered by the fact that all
     integration tests run with it on). *)
  let denv, core = compile "def main = length [1,2,3]" in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
      ~lint_every_pass:true ()
  in
  ignore (Pipeline.run cfg core)

let strictness_ablation () =
  let on = words Pipeline.Join_points ~strictness:true fusion_src in
  let off = words Pipeline.Join_points ~strictness:false fusion_src in
  Alcotest.(check bool)
    (Fmt.str "strictness only helps (%d <= %d)" on off)
    true (on <= off)

let mode_names () =
  Alcotest.(check string) "baseline" "baseline"
    (Pipeline.mode_name Pipeline.Baseline);
  Alcotest.(check string) "join-points" "join-points"
    (Pipeline.mode_name Pipeline.Join_points)

let run_all_modes_consistent () =
  let denv, core = compile "def main = product (enumFromTo 1 6)" in
  let t0, _ = run core in
  let results = Pipeline.run_all_modes ~datacons:denv core in
  Alcotest.(check int) "three configurations" 3 (List.length results);
  List.iter
    (fun (_, e) ->
      let t, _ = run e in
      Alcotest.check tree_testable "same value" t0 t)
    results

let idempotent_ish () =
  (* Optimising twice must not change meaning and must keep Lint. *)
  let denv, core = compile "def main = any even [1,3,5,6]" in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv ()
  in
  let once = Pipeline.run cfg core in
  let twice = Pipeline.run cfg once in
  let _ = lints ~env:denv twice in
  same_result once twice

(* User rewrite RULES fire through the pipeline (GHC-style: the rule
   meets its redex only after inlining exposes it). *)
let rules_through_pipeline () =
  let denv, core =
    compile
      {|
def toUp x = x + 1000
def toDown x = x - 1000
def main = toUp (toDown 7) + toUp (toDown 35)
|}
  in
  (* forall x. toUp (toDown x) = x — like stream/unstream. The rule's
     head variables must be the elaborated binders: fetch them from the
     linked core (they are the let binders named toUp/toDown). *)
  let rec find_binder name e =
    match e with
    | Syntax.Let (Syntax.NonRec (v, _), body) ->
        if Ident.name v.Syntax.v_name = name then Some v
        else find_binder name body
    | Syntax.Let (_, body) -> find_binder name body
    | _ -> None
  in
  let up = Option.get (find_binder "toUp" core) in
  let down = Option.get (find_binder "toDown" core) in
  let hole = Syntax.mk_var "x" Types.int in
  (* The elaborated calls go through the generalized binders: toUp has
     no quantifiers here (monomorphic Int -> Int), so spines are plain
     applications. *)
  let rule =
    Rules.rule ~name:"up/down" ~term_holes:[ hole ] ~ty_holes:[]
      ~lhs:(Syntax.App (Syntax.Var up, Syntax.App (Syntax.Var down, Syntax.Var hole)))
      ~rhs:(Syntax.Var hole)
  in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
      ~rules:[ rule ] ()
  in
  let e, report = Pipeline.run_report cfg core in
  let _ = lints ~env:denv e in
  same_result core e;
  let fired =
    List.exists
      (fun (p, _) -> String.length p >= 5 && String.sub p 0 5 = "rules")
      (Pipeline.trail report)
  in
  Alcotest.(check bool) "rule fired in the pipeline" true fired

let tests =
  [
    test "allocation ordering across configurations" ordering;
    test "user RULES fire through the pipeline" rules_through_pipeline;
    test "report records the pass trail" report_trail;
    test "baseline never contifies" baseline_skips_contify;
    test "lint-every-pass on healthy input" lint_every_pass_catches;
    test "strictness ablation" strictness_ablation;
    test "mode names" mode_names;
    test "run_all_modes agree" run_all_modes_consistent;
    test "re-optimisation is stable" idempotent_ish;
  ]
