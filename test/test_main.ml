(* The alcotest entry point: all suites. *)
let () =
  Alcotest.run "fj"
    [
      ("types", Test_types.tests);
      ("syntax", Test_syntax.tests);
      ("pretty", Test_pretty.tests);
      ("lint", Test_lint.tests);
      ("eval", Test_eval.tests);
      ("axioms", Test_axioms.tests);
      ("occur", Test_occur.tests);
      ("contify", Test_contify.tests);
      ("simplify", Test_simplify.tests);
      ("float", Test_float.tests);
      ("erase", Test_erase.tests);
      ("demote", Test_demote.tests);
      ("rules", Test_rules.tests);
      ("surface", Test_surface.tests);
      ("machine", Test_machine.tests);
      ("fusion", Test_fusion.tests);
      ("demand", Test_demand.tests);
      ("cse", Test_cse.tests);
      ("cps", Test_cps.tests);
      ("sexp", Test_sexp.tests);
      ("spec-constr", Test_spec_constr.tests);
      ("paper-examples", Test_paper_examples.tests);
      ("pipeline", Test_pipeline.tests);
      ("telemetry", Test_telemetry.tests);
      ("span", Test_span.tests);
      ("bench-diff", Test_bench_diff.tests);
      ("metrics", Test_metrics.tests);
      ("profile", Test_profile.tests);
      ("decision", Test_decision.tests);
      ("integration", Test_integration.tests);
      ("guard", Test_guard.tests);
      ("fuzz", Test_fuzz.tests);
      ("coverage", Test_coverage.tests);
      ("corpus", Test_corpus.tests);
      ("properties", Test_qcheck.tests);
      ("absint", Test_absint.tests);
      ("service", Test_service.tests);
    ]
