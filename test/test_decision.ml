(** Tests for {!Fj_core.Decision} — the optimization decision ledger:
    every accepted {e and rejected} rewrite with its site and structured
    reason, collected per pipeline run and surfaced by [fjc explain]. *)

open Fj_core
open Util
module B = Builder

let scfg ?(inline_threshold = 60) () : Simplify.config =
  {
    Simplify.join_points = true;
    case_of_case = true;
    inline_threshold;
    dup_threshold = 12;
    datacons = Datacon.builtins;
  }

(* ------------------------------------------------------------------ *)
(* The collector                                                       *)
(* ------------------------------------------------------------------ *)

let ledger_basics () =
  let l = Decision.create () in
  Alcotest.(check bool) "disabled outside" false (Decision.enabled ());
  (* Recording with no ledger installed is a silent no-op. *)
  Decision.record ~pass:"nowhere" Decision.Cse ~site:"x" Decision.Fired;
  Alcotest.(check int) "no-op when uninstalled" 0 (Decision.length l);
  Decision.with_ledger l (fun () ->
      Alcotest.(check bool) "enabled inside" true (Decision.enabled ());
      Decision.record ~pass:"p" Decision.Inline ~site:"f" Decision.Fired;
      Decision.record ~pass:"p" Decision.Inline ~site:"g"
        (Decision.Rejected Decision.Loop_breaker));
  Alcotest.(check bool) "disabled after" false (Decision.enabled ());
  let events = Decision.events l in
  Alcotest.(check int) "two events" 2 (List.length events);
  (match events with
  | [ e1; e2 ] ->
      (* Oldest first. *)
      Alcotest.(check string) "first site" "f" e1.Decision.d_site;
      Alcotest.(check string) "second site" "g" e2.Decision.d_site
  | _ -> Alcotest.fail "expected exactly two events");
  Alcotest.(check int) "one fired" 1 (Decision.fired events);
  Alcotest.(check int) "one rejected" 1 (Decision.rejected events);
  Alcotest.(check (list (pair string int)))
    "reason counts" [ ("loop_breaker", 1) ]
    (Decision.reason_counts events)

let ledger_nesting () =
  let outer = Decision.create () and inner = Decision.create () in
  Decision.with_ledger outer (fun () ->
      Decision.record ~pass:"a" Decision.Cse ~site:"x" Decision.Fired;
      Decision.with_ledger inner (fun () ->
          Decision.record ~pass:"b" Decision.Cse ~site:"y" Decision.Fired);
      (* The outer ledger is restored after the inner extent. *)
      Decision.record ~pass:"a" Decision.Cse ~site:"z" Decision.Fired);
  Alcotest.(check int) "outer got two" 2 (Decision.length outer);
  Alcotest.(check int) "inner got one" 1 (Decision.length inner);
  Alcotest.(check string) "inner event" "y"
    (List.hd (Decision.events inner)).Decision.d_site

let ledger_snapshots () =
  let l = Decision.create () in
  Decision.with_ledger l (fun () ->
      Decision.record ~pass:"p" Decision.Demote ~site:"j1" Decision.Fired;
      let s = Decision.snapshot l in
      Decision.record ~pass:"p" Decision.Demote ~site:"j2" Decision.Fired;
      Decision.record ~pass:"p" Decision.Demote ~site:"j3" Decision.Fired;
      match Decision.events_since s l with
      | [ e2; e3 ] ->
          Alcotest.(check string) "delta oldest first" "j2" e2.Decision.d_site;
          Alcotest.(check string) "delta newest last" "j3" e3.Decision.d_site
      | es -> Alcotest.failf "expected a 2-event delta, got %d" (List.length es))

let summary_keys () =
  let mk action verdict =
    { Decision.d_pass = "p"; d_action = action; d_site = "s"; d_verdict = verdict }
  in
  let events =
    [
      mk Decision.Inline Decision.Fired;
      mk Decision.Inline Decision.Fired;
      mk Decision.Inline
        (Decision.Rejected (Decision.Inline_too_big { size = 9; threshold = 1 }));
      mk Decision.Contify (Decision.Rejected Decision.Nullary_candidate);
    ]
  in
  Alcotest.(check (list (pair string int)))
    "summary keys sorted"
    [
      ("contify:rejected:nullary_candidate", 1);
      ("inline:fired", 2);
      ("inline:rejected:inline_too_big", 1);
    ]
    (Decision.summary events)

(* ------------------------------------------------------------------ *)
(* Pass instrumentation on synthetic terms                             *)
(* ------------------------------------------------------------------ *)

(* A function too big to inline at threshold 1 but with two call sites:
   call-site inlining must ledger an [Inline_too_big] rejection quoting
   the size it measured and the threshold it compared against. *)
let inline_too_big_payload () =
  let big =
    B.lam "x" Types.int (fun x ->
        B.add x (B.add x (B.add x (B.add x (B.add x x)))))
  in
  let e =
    B.let_ "f" big (fun f ->
        B.add (B.app f (B.int 1)) (B.app f (B.int 2)))
  in
  let _ = lints e in
  let l = Decision.create () in
  let e' =
    Decision.with_ledger l (fun () ->
        Simplify.simplify (scfg ~inline_threshold:1 ()) e)
  in
  let _ = lints e' in
  let rejections =
    List.filter_map
      (fun (ev : Decision.event) ->
        match (ev.d_action, ev.d_verdict) with
        | ( Decision.Inline,
            Decision.Rejected (Decision.Inline_too_big { size; threshold }) ) ->
            Some (ev.d_site, size, threshold)
        | _ -> None)
      (Decision.events l)
  in
  Alcotest.(check bool) "at least one rejection" true (rejections <> []);
  List.iter
    (fun (site, size, threshold) ->
      Alcotest.(check string) "site is the binder" "f" site;
      Alcotest.(check int) "threshold quoted" 1 threshold;
      Alcotest.(check bool) "size exceeds threshold" true (size > threshold))
    rejections;
  (* At the default threshold the same unfolding fits: both call sites
     splice, and the ledger says so. *)
  let l2 = Decision.create () in
  let _ =
    Decision.with_ledger l2 (fun () -> Simplify.simplify (scfg ()) e)
  in
  let fired_inlines =
    List.filter
      (fun (ev : Decision.event) ->
        ev.d_action = Decision.Inline && ev.d_verdict = Decision.Fired)
      (Decision.events l2)
  in
  Alcotest.(check bool) "fits at default threshold" true (fired_inlines <> [])

(* Regression for the deliberate Fig. 5 divergence: a nullary multi-use
   candidate ([let x = 1 + 2 in if b then x else x] — every occurrence
   a tail "call" of shape (0,0)) is NOT contified, because a join point
   would re-evaluate the rhs at every jump where the let shares one
   thunk. The ledger must name the restriction. *)
let nullary_candidate_regression () =
  let e =
    B.let_ "x"
      (B.add (B.int 1) (B.int 2))
      (fun x -> B.if_ B.true_ x x)
  in
  let _ = lints e in
  let l = Decision.create () in
  let e' = Decision.with_ledger l (fun () -> Contify.contify e) in
  let _ = lints e' in
  (match e' with
  | Syntax.Let (Syntax.NonRec _, _) -> ()
  | _ -> Alcotest.fail "nullary candidate must stay a let");
  let hit =
    List.exists
      (fun (ev : Decision.event) ->
        ev.Decision.d_pass = "contify"
        && ev.d_action = Decision.Contify
        && ev.d_site = "x"
        && ev.d_verdict = Decision.Rejected Decision.Nullary_candidate)
      (Decision.events l)
  in
  Alcotest.(check bool) "ledger names the nullary restriction" true hit;
  (* A unary candidate with the same use pattern IS contified (and the
     ledger says Fired), so the rejection above is specifically the
     nullary rule. *)
  let e2 =
    B.let_ "f"
      (B.lam "y" Types.int (fun y -> B.add y (B.int 1)))
      (fun f ->
        B.if_ B.true_ (B.app f (B.int 1)) (B.app f (B.int 2)))
  in
  let _ = lints e2 in
  let l2 = Decision.create () in
  let e2' = Decision.with_ledger l2 (fun () -> Contify.contify e2) in
  let _ = lints e2' in
  let fired =
    List.exists
      (fun (ev : Decision.event) ->
        ev.Decision.d_action = Decision.Contify
        && ev.d_site = "f"
        && ev.d_verdict = Decision.Fired)
      (Decision.events l2)
  in
  Alcotest.(check bool) "unary candidate contifies" true fired

(* Bare pass invocations with no ledger installed still optimize
   identically — instrumentation must not change results. *)
let passes_unaffected_without_ledger () =
  let e =
    B.let_ "f"
      (B.lam "y" Types.int (fun y -> B.add y (B.int 1)))
      (fun f -> B.if_ B.true_ (B.app f (B.int 1)) (B.app f (B.int 2)))
  in
  let bare = Contify.contify e in
  let l = Decision.create () in
  let under = Decision.with_ledger l (fun () -> Contify.contify e) in
  (* Fresh uniques differ between runs, so compare observationally:
     same shape, same size, same meaning. *)
  Alcotest.(check int) "same size" (Syntax.size bare) (Syntax.size under);
  Alcotest.(check int) "same join count" (Syntax.count_joins bare)
    (Syntax.count_joins under);
  same_result bare under

(* ------------------------------------------------------------------ *)
(* Whole-pipeline invariants over the benchmark suite                  *)
(* ------------------------------------------------------------------ *)

(* Compile each bench program once and run the pipeline under both the
   baseline and the join-point configuration; share across tests. *)
let bench_reports =
  lazy
    (List.map
       (fun (pr : Bench_programs.program) ->
         let datacons, core = Bench_programs.compile pr in
         let reports =
           List.map
             (fun mode ->
               let _, r =
                 Pipeline.run_report
                   (Pipeline.default_config ~mode ~datacons ())
                   core
               in
               (mode, r))
             [ Pipeline.Baseline; Pipeline.Join_points ]
         in
         (pr.Bench_programs.name, core, datacons, reports))
       Bench_programs.all)

let tick_count r name =
  Option.value ~default:0 (List.assoc_opt name (Pipeline.ticks r))

let count_fired events action =
  List.length
    (List.filter
       (fun (ev : Decision.event) ->
         ev.d_action = action && ev.d_verdict = Decision.Fired)
       events)

(* The headline acceptance invariant: every [inline] and [contify] tick
   has exactly one matching Fired ledger entry — the ledger is a
   superset view of the tick counters, never out of sync with them. *)
let fired_matches_ticks () =
  List.iter
    (fun (name, _, _, reports) ->
      List.iter
        (fun (mode, r) ->
          let events = Pipeline.decisions r in
          let ctx = name ^ "/" ^ Pipeline.mode_name mode in
          Alcotest.(check int)
            (ctx ^ ": inline ticks = Fired Inline events")
            (tick_count r "inline")
            (count_fired events Decision.Inline);
          Alcotest.(check int)
            (ctx ^ ": contify ticks = Fired Contify events")
            (tick_count r "contify")
            (count_fired events Decision.Contify);
          Alcotest.(check int)
            (ctx ^ ": cse ticks = Fired Cse events")
            (tick_count r "cse")
            (count_fired events Decision.Cse))
        reports)
    (Lazy.force bench_reports)

(* The suite must exercise a diverse refusal surface: at least five
   distinct structured rejection reasons across the bench programs
   (ISSUE acceptance criterion for [fjc explain]). *)
let rejection_reason_diversity () =
  let reasons =
    List.fold_left
      (fun acc (_, _, _, reports) ->
        List.fold_left
          (fun acc (_, r) ->
            List.fold_left
              (fun acc (reason, _) -> reason :: acc)
              acc
              (Decision.reason_counts (Pipeline.decisions r)))
          acc reports)
      [] (Lazy.force bench_reports)
  in
  let distinct = List.sort_uniq String.compare reasons in
  if List.length distinct < 5 then
    Alcotest.failf "only %d distinct rejection reasons: %s"
      (List.length distinct)
      (String.concat ", " distinct)

(* Two identical runs over the same core term must produce
   byte-identical ledgers (fjc explain output is diffable). *)
let ledger_deterministic () =
  match Lazy.force bench_reports with
  | [] -> Alcotest.fail "no bench programs"
  | (_, core, datacons, _) :: _ ->
      let run () =
        let _, r =
          Pipeline.run_report
            (Pipeline.default_config ~mode:Pipeline.Join_points ~datacons ())
            core
        in
        Pipeline.decisions r
      in
      let a = run () and b = run () in
      Alcotest.(check int) "same length" (List.length a) (List.length b);
      Alcotest.(check bool) "identical event sequences" true (a = b)

(* Every JSON surface of the ledger serialises to well-formed JSON that
   our own parser round-trips. *)
let ledger_json_well_formed () =
  match Lazy.force bench_reports with
  | [] -> Alcotest.fail "no bench programs"
  | (_, _, _, reports) :: _ ->
      List.iter
        (fun (_, r) ->
          let events = Pipeline.decisions r in
          List.iter
            (fun ev ->
              let s = Telemetry.Json.to_string (Decision.event_json ev) in
              Alcotest.(check bool) "event json" true
                (Telemetry.Json.is_well_formed s))
            events;
          let s = Telemetry.Json.to_string (Decision.summary_json events) in
          Alcotest.(check bool) "summary json" true
            (Telemetry.Json.is_well_formed s);
          (match Telemetry.Json.parse (Pipeline.report_to_json r) with
          | Ok (Telemetry.Json.Obj fields) ->
              Alcotest.(check bool) "report has decisions" true
                (List.mem_assoc "decisions" fields)
          | Ok _ -> Alcotest.fail "report json is not an object"
          | Error m -> Alcotest.failf "report json does not parse: %s" m))
        reports

let tests =
  [
    test "ledger basics" ledger_basics;
    test "with_ledger nests" ledger_nesting;
    test "snapshots give per-pass deltas" ledger_snapshots;
    test "summary keys" summary_keys;
    test "inline_too_big quotes size and threshold" inline_too_big_payload;
    test "nullary candidate is refused, and says why"
      nullary_candidate_regression;
    test "passes unchanged without a ledger" passes_unaffected_without_ledger;
    test "every inline/contify/cse tick has a Fired entry"
      fired_matches_ticks;
    test "bench suite shows >= 5 distinct rejection reasons"
      rejection_reason_diversity;
    test "ledger is deterministic across runs" ledger_deterministic;
    test "ledger JSON is well-formed" ledger_json_well_formed;
  ]
