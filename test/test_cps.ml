(** Tests for {!Fj_core.Cps} — the Sec. 8 comparison: the CPS transform
    is meaning-preserving and type-correct, and the paper's two
    "harder in CPS" claims (CSE, rule matching) hold measurably. *)

open Fj_core
open Syntax
open Util
module B = Builder

let cps_ok e =
  let _ = lints e in
  let e' = Cps.transform e in
  (match Lint.lint_result Datacon.builtins e' with
  | Ok _ -> ()
  | Error err ->
      Alcotest.failf "CPS output does not lint: %a@.%a" Lint.pp_error err
        Pretty.pp e');
  same_result e e';
  e'

let preserves_arithmetic () =
  ignore (cps_ok (B.add (B.mul (B.int 6) (B.int 7)) (B.int 0)))

let preserves_functions () =
  ignore
    (cps_ok
       (B.app
          (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
          (B.int 41)))

let preserves_case () =
  ignore
    (cps_ok
       (B.case (B.just Types.int (B.int 5))
          [
            B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
            B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
          ]))

let preserves_lets () =
  ignore
    (cps_ok
       (B.let_ "a" (B.int 10) (fun a ->
            B.let_ "b" (B.add a (B.int 5)) (fun b -> B.mul a b))))

let preserves_recursion () =
  ignore
    (cps_ok
       (B.letrec1 "fact"
          (Types.Arrow (Types.int, Types.int))
          (fun fact ->
            B.lam "n" Types.int (fun n ->
                B.if_ (B.le n (B.int 1)) (B.int 1)
                  (B.mul n (B.app fact (B.sub n (B.int 1))))))
          (fun fact -> B.app fact (B.int 6))))

let preserves_higher_order () =
  ignore
    (cps_ok
       (B.app
          (B.app
             (B.lam "f" (Types.Arrow (Types.int, Types.int)) (fun f ->
                  B.lam "x" Types.int (fun x -> B.app f (B.app f x))))
             (B.lam "y" Types.int (fun y -> B.add y (B.int 3))))
          (B.int 1)))

let rejects_join_points () =
  let e =
    B.join1 "j" [ ("x", Types.int) ]
      (fun xs -> List.hd xs)
      (fun jmp -> jmp [ B.int 1 ] Types.int)
  in
  match Cps.transform e with
  | exception Cps.Unsupported _ -> ()
  | _ -> Alcotest.fail "join points must be erased before CPS"

let erase_then_cps () =
  (* The full chain: F_J with joins -> erase -> CPS, same value. *)
  let e =
    B.join1 "j" [ ("x", Types.int) ]
      (fun xs -> B.add (List.hd xs) (B.int 1))
      (fun jmp -> jmp [ B.int 41 ] Types.int)
  in
  let erased = Erase.erase e in
  let cpsd = cps_ok erased in
  same_result e cpsd

(* The paper's CSE claim: [let a = g x in f a (g x)] shares in direct
   style; the same program CPS-transformed has no repeated subterm for
   CSE to find. *)
let cse_direct_vs_cps () =
  let i2i = Types.Arrow (Types.int, Types.int) in
  let prog =
    B.app
      (B.app
         (B.lam "f" (Types.arrows [ Types.int; Types.int ] Types.int)
            (fun f ->
              B.lam "g" i2i (fun g ->
                  B.let_ "a" (B.app g (B.int 7)) (fun a ->
                      B.app2 f a (B.app g (B.int 7))))))
         (B.lam "p" Types.int (fun p ->
              B.lam "q" Types.int (fun q -> B.add p q))))
      (B.lam "y" Types.int (fun y -> B.mul y y))
  in
  let count_shared e = snd (Cse.run_counted e) in
  let direct_shared = count_shared prog in
  let cpsd = cps_ok prog in
  let cps_shared = count_shared cpsd in
  Alcotest.(check bool) "direct style shares the g call" true
    (direct_shared >= 1);
  Alcotest.(check int) "CPS hides the common sub-expression" 0 cps_shared

(* The paper's RULES claim: [stream (unstream s)] is a visible redex in
   direct style; after CPS the nesting is smeared across continuations
   and the same rule cannot fire. *)
let rules_direct_vs_cps () =
  let ilist = B.list_ty Types.int in
  let stream_v = mk_var "stream" (Types.Arrow (ilist, ilist)) in
  let unstream_v = mk_var "unstream" (Types.Arrow (ilist, ilist)) in
  let s_hole = mk_var "s" ilist in
  let rule =
    Rules.rule ~name:"stream/unstream" ~term_holes:[ s_hole ] ~ty_holes:[]
      ~lhs:(App (Var stream_v, App (Var unstream_v, Var s_hole)))
      ~rhs:(Var s_hole)
  in
  (* Close the program over stream/unstream (identity functions),
     binding exactly the rule's head variables. *)
  let prog body =
    B.app
      (B.app
         (Lam (stream_v, Lam (unstream_v, body)))
         (B.lam "xs" ilist (fun xs -> xs)))
      (B.lam "ys" ilist (fun ys -> ys))
  in
  let direct = App (Var stream_v, App (Var unstream_v, B.int_list [ 1 ])) in
  let _, fired_direct = Rules.rewrite [ rule ] direct in
  Alcotest.(check int) "fires in direct style" 1 (List.length fired_direct);
  (* CPS the closed program containing the redex. *)
  let closed = prog direct in
  let _ = lints closed in
  let cpsd = Cps.transform closed in
  let _, fired_cps = Rules.rewrite [ rule ] cpsd in
  Alcotest.(check int) "cannot fire after CPS" 0 (List.length fired_cps)

let administrative_blowup () =
  let e =
    B.let_ "a" (B.add (B.int 1) (B.int 2)) (fun a ->
        B.mul a (B.add a (B.int 3)))
  in
  let cpsd = cps_ok e in
  Alcotest.(check bool)
    (Fmt.str "CPS introduces lambdas (%d > %d)" (Cps.count_lams cpsd)
       (Cps.count_lams e))
    true
    (Cps.count_lams cpsd > Cps.count_lams e)

let tests =
  [
    test "preserves arithmetic" preserves_arithmetic;
    test "preserves functions" preserves_functions;
    test "preserves case" preserves_case;
    test "preserves lets" preserves_lets;
    test "preserves recursion" preserves_recursion;
    test "preserves higher-order code" preserves_higher_order;
    test "rejects join points (erase first)" rejects_join_points;
    test "erase then CPS round trip" erase_then_cps;
    test "CSE: easy direct, blocked by CPS (Sec. 8)" cse_direct_vs_cps;
    test "RULES: fire direct, blocked by CPS (Sec. 8)" rules_direct_vs_cps;
    test "administrative lambda blow-up" administrative_blowup;
  ]
