(** Executor for the block IR with instruction/allocation counters:
    [Goto] binds parameters and transfers — zero allocation; calls go
    through heap-allocated closures (eval/apply, PAPs). Statistics
    share the {!Fj_core.Mstats} shape with the Fig. 3 machine
    ([steps] = instructions, [jumps] = gotos, [joins_entered] =
    [LetBlock]s, [updates] = 0); [?profile] fills the same per-site
    {!Fj_core.Profile}. *)

type stats = Fj_core.Mstats.t = {
  mutable steps : int;
  mutable objects : int;
  mutable words : int;
  mutable jumps : int;
  mutable joins_entered : int;
  mutable calls : int;
  mutable updates : int;
  mutable max_stack : int;
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

type value

exception Stuck of string
exception Out_of_fuel

val run :
  ?fuel:int -> ?profile:Fj_core.Profile.t -> Blockir.program -> value * stats

val pp_value : Format.formatter -> value -> unit

(** First-order view, comparable with the core evaluator's. *)
val tree_of_value : value -> Fj_core.Eval.tree
