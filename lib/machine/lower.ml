(** Lowering System F_J to the block IR ({!Blockir}).

    This is the code-generation story of Sec. 2–3 made executable:

    - a [join] binding lowers to {e labelled blocks} ([LetBlock]) — no
      allocation, no closure;
    - a [jump] lowers to [Goto] — "adjust the stack and jump";
    - a [let]-bound function lowers to a heap-allocated closure
      ([RAllocClos]); calls go through it;
    - types are fully erased.

    A [jump] in a non-tail position simply ignores the pending
    continuation block — which is exactly the context-discarding
    semantics of Fig. 3.

    The lowering is closure-converting: each lambda becomes a top-level
    [code] whose environment slots are its free variables. Evaluation
    is call-by-value (see {!Blockir}); recursive [let]s must bind
    lambdas (which elaborated and optimised programs satisfy). *)

open Fj_core
open Syntax
open Blockir

exception Unsupported of string

type st = { mutable codes : code Ident.Map.t }

type ret =
  | Tail  (** End with [Return]/[TailApply]. *)
  | Block of label  (** End with [Goto label [result]]. *)

let finish ret (a : atom) : block_expr =
  match ret with Tail -> Return a | Block l -> Goto (l, [ a ])

(* Strip type binders/arguments: the block IR is untyped. *)
let rec erase_ty_head e =
  match e with
  | TyLam (_, b) -> erase_ty_head b
  | _ -> e

(* Collect the value parameters of a (type-erased) lambda chain. *)
let collect_lam_params e =
  let rec go acc e =
    match e with
    | Lam (x, b) -> go (x.v_name :: acc) b
    | TyLam (_, b) -> go acc b
    | _ -> (List.rev acc, e)
  in
  go [] e

let is_lambda e =
  match erase_ty_head e with Lam _ -> true | _ -> false

let rec lower_program (e : expr) : program =
  let st = { codes = Ident.Map.empty } in
  let main = lower st Tail e in
  { codes = st.codes; main }

(* Lower [e] so that its value is delivered according to [ret]. *)
and lower (st : st) (ret : ret) (e : expr) : block_expr =
  match e with
  | Var v -> finish ret (AVar v.v_name)
  | Lit l -> finish ret (ALit l)
  | Con (dc, _, args) ->
      atomize_list st args (fun atoms ->
          let x = Ident.fresh (String.lowercase_ascii dc.name) in
          Let (x, RAllocCon (dc.name, dc.tag, atoms), finish ret (AVar x)))
  | Prim (op, args) ->
      atomize_list st args (fun atoms ->
          let x = Ident.fresh "p" in
          Let (x, RPrim (op, atoms), finish ret (AVar x)))
  | Lam _ | TyLam _ ->
      let x = Ident.fresh "clos" in
      alloc_closure st x e (finish ret (AVar x))
  | App _ | TyApp _ -> (
      let head, args = collect_args e in
      let vargs =
        List.filter_map (function `Val a -> Some a | `Ty _ -> None) args
      in
      match (head, vargs) with
      | _, [] -> lower st ret head
      | _ ->
          atomize st head (fun f ->
              atomize_list st vargs (fun atoms ->
                  match ret with
                  | Tail -> TailApply (f, atoms)
                  | Block l ->
                      let x = Ident.fresh "r" in
                      Apply (x, f, atoms, Goto (l, [ AVar x ])))))
  | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
      (* The block machine is call-by-value: strict and lazy bindings
         lower identically. *)
      if is_lambda rhs then
        alloc_closure st x.v_name rhs (lower st ret body)
      else
        atomize st rhs (fun a ->
            Let (x.v_name, RAtom a, lower st ret body))
  | Let (Rec pairs, body) ->
      let closures =
        List.map
          (fun ((x : var), rhs) ->
            if not (is_lambda rhs) then
              raise
                (Unsupported
                   (Fmt.str "recursive non-lambda binding %a" Ident.pp
                      x.v_name));
            let code_name, captures =
              make_code ~name:(Ident.site x.v_name) st rhs
            in
            (x.v_name, code_name, List.map (fun c -> AVar c) captures))
          pairs
      in
      LetRecClos (closures, lower st ret body)
  | Case (scrut, alts) ->
      atomize st scrut (fun a ->
          Case
            ( a,
              List.map
                (fun { alt_pat; alt_rhs } ->
                  let p =
                    match alt_pat with
                    | Syntax.PCon (dc, xs) ->
                        PTag (dc.name, List.map (fun (x : var) -> x.v_name) xs)
                    | Syntax.PLit l -> PLit l
                    | Syntax.PDefault -> PAny
                  in
                  (p, lower st ret alt_rhs))
                alts ))
  | Join (jb, body) ->
      let recursive = match jb with JNonRec _ -> false | JRec _ -> true in
      let blocks =
        List.map
          (fun (d : join_defn) ->
            ( d.j_var.v_name,
              List.map (fun (p : var) -> p.v_name) d.j_params,
              lower st ret d.j_rhs ))
          (join_defns jb)
      in
      LetBlock (recursive, blocks, lower st ret body)
  | Jump (j, _, args, _) ->
      (* The pending continuation (if any) is deliberately ignored: a
         jump discards its evaluation context. *)
      atomize_list st args (fun atoms -> Goto (j.v_name, atoms))

(* Evaluate [e] to an atom, then continue. Control constructs
   materialise a continuation block. *)
and atomize (st : st) (e : expr) (k : atom -> block_expr) : block_expr =
  match e with
  | Var v -> k (AVar v.v_name)
  | Lit l -> k (ALit l)
  | TyApp (f, _) -> atomize st f k
  | Con (dc, _, args) ->
      atomize_list st args (fun atoms ->
          let x = Ident.fresh (String.lowercase_ascii dc.name) in
          Let (x, RAllocCon (dc.name, dc.tag, atoms), k (AVar x)))
  | Prim (op, args) ->
      atomize_list st args (fun atoms ->
          let x = Ident.fresh "p" in
          Let (x, RPrim (op, atoms), k (AVar x)))
  | Lam _ | TyLam _ ->
      let x = Ident.fresh "clos" in
      alloc_closure st x e (k (AVar x))
  | App _ -> (
      let head, args = collect_args e in
      let vargs =
        List.filter_map (function `Val a -> Some a | `Ty _ -> None) args
      in
      match vargs with
      | [] -> atomize st head k
      | _ ->
          atomize st head (fun f ->
              atomize_list st vargs (fun atoms ->
                  let x = Ident.fresh "r" in
                  Apply (x, f, atoms, k (AVar x)))))
  | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
      if is_lambda rhs then alloc_closure st x.v_name rhs (atomize st body k)
      else
        atomize st rhs (fun a -> Let (x.v_name, RAtom a, atomize st body k))
  | Let (Rec _, _) | Case _ | Join _ | Jump _ ->
      (* Materialise the continuation as a block, then lower [e] in
         block-return mode. A jump inside [e] will bypass the block —
         context discarding for free. *)
      let l = Ident.fresh "k" in
      let x = Ident.fresh "v" in
      LetBlock (false, [ (l, [ x ], k (AVar x)) ], lower st (Block l) e)

and atomize_list st (es : expr list) (k : atom list -> block_expr) :
    block_expr =
  match es with
  | [] -> k []
  | e :: rest ->
      atomize st e (fun a -> atomize_list st rest (fun atoms -> k (a :: atoms)))

(* Create a top-level code for lambda [e]; returns its name and the
   capture list (free variables of [e]). [name] carries provenance:
   codes are named after the binder the closure is bound to, so the
   block machine's profiler attributes their allocation and steps back
   to the source binding. *)
and make_code ?(name = "code") st (e : expr) : Ident.t * Ident.t list =
  let params, body = collect_lam_params e in
  let captures = Ident.Set.elements (Syntax.free_vars e) in
  let code_name = Ident.fresh name in
  let body' = lower st Tail body in
  st.codes <-
    Ident.Map.add code_name
      { code_name; params; captures; body = body' }
      st.codes;
  (code_name, captures)

and alloc_closure st (x : Ident.t) (lam : expr) (k : block_expr) : block_expr =
  match erase_ty_head lam with
  | Lam _ ->
      let code_name, captures = make_code ~name:(Ident.site x) st lam in
      Let (x, RAllocClos (code_name, List.map (fun c -> AVar c) captures), k)
  | other ->
      (* A type lambda over a non-lambda (e.g. a polymorphic constant):
         evaluate the body now (call-by-value). *)
      atomize st other (fun a -> Let (x, RAtom a, k))
