(** An executor for the block IR, with instruction and allocation
    counters.

    The operational costs match the story the paper tells about
    compiled code:

    - [Goto] (a lowered {e jump}) costs one instruction and {b zero
      allocation} — it binds the block parameters and transfers
      control;
    - [Apply]/[TailApply] (lowered {e calls}) go through closures,
      which had to be allocated; non-tail calls additionally push a
      frame on the call stack;
    - constructors and closures allocate [1 + n] words ([n] fields;
      nullary constructors are static and free).

    The machine uses eval/apply for over- and under-saturated calls
    (partial applications allocate a PAP).

    Statistics use the machine-neutral {!Fj_core.Mstats} shape shared
    with {!Fj_core.Eval}, field by field: [steps] are instructions,
    [jumps] are gotos, [joins_entered] counts [LetBlock]s evaluated,
    and [updates] stays 0 (the machine is call-by-value). [?profile]
    attaches the same per-site {!Fj_core.Profile} the Fig. 3 machine
    fills: allocations are attributed to the binder that performed
    them, gotos to the block label (a lowered join point — zero
    words), steps to the most recently entered code or block. *)

open Blockir
module Literal = Fj_core.Literal
module Primop = Fj_core.Primop
module Profile = Fj_core.Profile

type stats = Fj_core.Mstats.t = {
  mutable steps : int;
  mutable objects : int;
  mutable words : int;
  mutable jumps : int;
  mutable joins_entered : int;
  mutable calls : int;
  mutable updates : int;
  mutable max_stack : int;
}

let fresh_stats = Fj_core.Mstats.create
let pp_stats = Fj_core.Mstats.pp

type value =
  | VLit of Literal.t
  | VCon of string * int * value array
  | VClos of clos
  | VPap of clos * value list

and clos = {
  clos_code : code;
  clos_env : value array;  (** Mutable for recursive closure patching. *)
}

and blockdef = {
  b_params : Ident.t list;
  b_body : block_expr;
  mutable b_env : env;
}

and env = { vars : value Ident.Map.t; blocks : blockdef Ident.Map.t }

exception Stuck of string
exception Out_of_fuel

let stuck fmt = Fmt.kstr (fun m -> raise (Stuck m)) fmt

let empty_env = { vars = Ident.Map.empty; blocks = Ident.Map.empty }

type frame = { fr_var : Ident.t; fr_cont : block_expr; fr_env : env }

let rec pp_value ppf = function
  | VLit l -> Literal.pp ppf l
  | VCon (c, _, [||]) -> Fmt.string ppf c
  | VCon (c, _, fields) ->
      Fmt.pf ppf "(%s%a)" c
        Fmt.(array ~sep:nop (fun ppf v -> Fmt.pf ppf " %a" pp_value v))
        fields
  | VClos _ | VPap _ -> Fmt.string ppf "<fun>"

(** Run a program. [fuel] bounds the instruction count; [profile]
    attaches a per-site profiler. *)
let run_machine ?(fuel = max_int) ?profile (p : program) : value * stats =
  let stats = fresh_stats () in
  let p_alloc ~label ~kind words =
    match profile with
    | Some pr -> Profile.alloc pr ~label ~kind ~words
    | None -> ()
  in
  (* [label] is the binder (site) the allocation is attributed to. *)
  let alloc ~label ~kind words =
    if words > 0 then begin
      stats.objects <- stats.objects + 1;
      stats.words <- stats.words + words;
      p_alloc ~label ~kind words
    end
  in
  let lookup env x =
    match Ident.Map.find_opt x env.vars with
    | Some v -> v
    | None -> stuck "unbound machine variable %a" Ident.pp x
  in
  let atom env = function
    | ALit l -> VLit l
    | AVar x -> lookup env x
  in
  let bind env x v = { env with vars = Ident.Map.add x v env.vars } in
  let eval_rhs ~label env = function
    | RAtom a -> atom env a
    | RPrim (op, args) -> (
        let vals = List.map (atom env) args in
        let lits =
          List.filter_map (function VLit l -> Some l | _ -> None) vals
        in
        if List.length lits <> List.length vals then
          stuck "primop %s applied to non-literal" (Primop.name op)
        else
          match Primop.fold_lit op lits with
          | Some l -> VLit l
          | None -> (
              match Primop.fold_bool op lits with
              | Some b ->
                  let name = if b then "True" else "False" in
                  let tag = if b then 1 else 0 in
                  VCon (name, tag, [||])
              | None -> stuck "primop %s is stuck" (Primop.name op)))
    | RAllocCon (c, tag, fields) ->
        let vs = Array.of_list (List.map (atom env) fields) in
        if Array.length vs > 0 then
          alloc ~label ~kind:Profile.Con (1 + Array.length vs);
        VCon (c, tag, vs)
    | RAllocClos (code_name, caps) -> (
        match Ident.Map.find_opt code_name p.codes with
        | None -> stuck "unknown code %a" Ident.pp code_name
        | Some code ->
            let envv = Array.of_list (List.map (atom env) caps) in
            alloc ~label ~kind:Profile.Closure (1 + Array.length envv);
            VClos { clos_code = code; clos_env = envv })
    | RProj (a, i) -> (
        match atom env a with
        | VCon (_, _, fields) when i < Array.length fields -> fields.(i)
        | _ -> stuck "bad projection")
  in
  (* Enter a closure's code with exactly the right number of args. *)
  let enter (c : clos) (args : value list) : env * block_expr =
    let code = c.clos_code in
    let env =
      List.fold_left2 bind
        (List.fold_left2 bind empty_env code.captures
           (Array.to_list c.clos_env))
        code.params args
    in
    (env, code.body)
  in
  let fuel = ref fuel in
  (* [site] is the current cost centre (the code or block most recently
     entered); [depth] tracks the frame-stack length incrementally. *)
  let rec exec site env (e : block_expr) (stack : frame list) (depth : int) :
      value =
    stats.steps <- stats.steps + 1;
    (match profile with Some pr -> Profile.step pr site | None -> ());
    decr fuel;
    if !fuel <= 0 then raise Out_of_fuel;
    if depth > stats.max_stack then stats.max_stack <- depth;
    match e with
    | Let (x, r, k) ->
        exec site
          (bind env x (eval_rhs ~label:(Ident.site x) env r))
          k stack depth
    | LetRecClos (cs, k) ->
        (* Allocate first, then patch captures. *)
        let items =
          List.map
            (fun (x, code_name, caps) ->
              match Ident.Map.find_opt code_name p.codes with
              | None -> stuck "unknown code %a" Ident.pp code_name
              | Some code ->
                  let envv =
                    Array.make (List.length code.captures)
                      (VLit (Literal.Int 0))
                  in
                  alloc ~label:(Ident.site x) ~kind:Profile.Closure
                    (1 + Array.length envv);
                  (x, code, caps, envv))
            cs
        in
        let env' =
          List.fold_left
            (fun env (x, code, _, envv) ->
              bind env x (VClos { clos_code = code; clos_env = envv }))
            env items
        in
        List.iter
          (fun (_, _, caps, envv) ->
            List.iteri (fun i a -> envv.(i) <- atom env' a) caps)
          items;
        exec site env' k stack depth
    | LetBlock (recursive, blocks, k) ->
        stats.joins_entered <- stats.joins_entered + 1;
        let defs =
          List.map
            (fun (l, ps, b) ->
              (match profile with
              | Some pr -> Profile.join_bind pr (Ident.site l)
              | None -> ());
              (l, { b_params = ps; b_body = b; b_env = env }))
            blocks
        in
        let env' =
          {
            env with
            blocks =
              List.fold_left
                (fun m (l, d) -> Ident.Map.add l d m)
                env.blocks defs;
          }
        in
        if recursive then List.iter (fun (_, d) -> d.b_env <- env') defs;
        exec site env' k stack depth
    | Case (a, alts) -> (
        let v = atom env a in
        let matches (pat, _) =
          match (pat, v) with
          | PTag (c, _), VCon (c', _, _) -> String.equal c c'
          | PLit l, VLit l' -> Literal.equal l l'
          | PAny, _ -> true
          | _ -> false
        in
        match List.find_opt matches alts with
        | None -> stuck "no matching machine case alternative"
        | Some (pat, body) ->
            let env' =
              match (pat, v) with
              | PTag (_, xs), VCon (_, _, fields) ->
                  List.fold_left2 bind env xs (Array.to_list fields)
              | _ -> env
            in
            exec site env' body stack depth)
    | Goto (l, args) -> (
        stats.jumps <- stats.jumps + 1;
        match Ident.Map.find_opt l env.blocks with
        | None -> stuck "goto to unknown block %a" Ident.pp l
        | Some d ->
            let lsite = Ident.site l in
            (match profile with
            | Some pr -> Profile.jump pr lsite
            | None -> ());
            let vals = List.map (atom env) args in
            let env' = List.fold_left2 bind d.b_env d.b_params vals in
            (* The block (a lowered join point) becomes the cost
               centre: its steps show up against a zero-word site. *)
            exec lsite env' d.b_body stack depth)
    | Return a -> ret site (atom env a) stack depth
    | TailApply (f, args) ->
        stats.calls <- stats.calls + 1;
        apply site (atom env f) (List.map (atom env) args) stack depth
    | Apply (x, f, args, k) ->
        stats.calls <- stats.calls + 1;
        apply site (atom env f)
          (List.map (atom env) args)
          ({ fr_var = x; fr_cont = k; fr_env = env } :: stack)
          (depth + 1)
  and ret site v stack depth =
    match stack with
    | [] -> v
    | fr :: rest ->
        exec site (bind fr.fr_env fr.fr_var v) fr.fr_cont rest (depth - 1)
  and apply site f args stack depth =
    match f with
    | VClos c ->
        let arity = List.length c.clos_code.params in
        let n = List.length args in
        if n = arity then begin
          let env, body = enter c args in
          let csite = Ident.site c.clos_code.code_name in
          (match profile with
          | Some pr -> Profile.enter pr csite
          | None -> ());
          exec csite env body stack depth
        end
        else if n < arity then begin
          alloc ~label:(Ident.site c.clos_code.code_name) ~kind:Profile.Pap
            (1 + n);
          ret site (VPap (c, args)) stack depth
        end
        else begin
          (* Over-saturated: call with [arity] args, then apply the
             result to the remainder. *)
          let now = List.filteri (fun i _ -> i < arity) args in
          let later = List.filteri (fun i _ -> i >= arity) args in
          let env', body = enter c now in
          let csite = Ident.site c.clos_code.code_name in
          (match profile with
          | Some pr -> Profile.enter pr csite
          | None -> ());
          let x = Ident.fresh "over" in
          let later_ids = List.map (fun _ -> Ident.fresh "a") later in
          let fenv = List.fold_left2 bind empty_env later_ids later in
          exec csite env' body
            ({
               fr_var = x;
               fr_cont =
                 TailApply (AVar x, List.map (fun y -> AVar y) later_ids);
               fr_env = fenv;
             }
            :: stack)
            (depth + 1)
        end
    | VPap (c, prev) -> apply site (VClos c) (prev @ args) stack depth
    | _ -> stuck "applying a non-function value"
  in
  let v = exec Profile.main_site empty_env p.main [] 0 in
  (v, stats)

(* The public entry point: one root span (cat ["machine"]) per block
   machine run, annotated with its step/jump/word counts, publishing
   into the innermost metrics registry — no-ops when no observability
   collector/registry is installed. *)
let run ?fuel ?profile (p : program) : value * stats =
  let open Fj_core in
  let (v, stats), dur =
    Span.with_span_timed ~cat:"machine" "bmachine" (fun () ->
        let (v, stats) = run_machine ?fuel ?profile p in
        Span.annotate "steps" (Telemetry.Json.Int stats.Mstats.steps);
        Span.annotate "jumps" (Telemetry.Json.Int stats.Mstats.jumps);
        Span.annotate "words" (Telemetry.Json.Int stats.Mstats.words);
        (v, stats))
  in
  Metrics.observe "bmachine.ms" dur;
  Metrics.observe "bmachine.steps" (float_of_int stats.Mstats.steps);
  Metrics.observe "bmachine.words" (float_of_int stats.Mstats.words);
  (v, stats)

(* ------------------------------------------------------------------ *)
(* Observation (mirrors {!Fj_core.Eval.tree})                          *)
(* ------------------------------------------------------------------ *)

let rec tree_of_value (v : value) : Fj_core.Eval.tree =
  match v with
  | VLit l -> Fj_core.Eval.TLit l
  | VCon (c, _, fields) ->
      Fj_core.Eval.TCon
        (c, List.map tree_of_value (Array.to_list fields))
  | VClos _ | VPap _ -> Fj_core.Eval.TFun
