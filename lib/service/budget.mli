(** Per-request resource budgets: wall-clock deadline, tick fuel, and
    term-size ceiling.

    Fuel and size ride the existing {!Fj_core.Guard.limits} machinery (they
    are per-pass budgets enforced by {!Fj_core.Guard.protect} under the
    [Recover] policy, or by the fuel cutoff under any policy). The
    wall-clock deadline is this module's own: a {e cooperative
    watchdog} installed as a {!Fj_core.Telemetry} tick observer — the
    optimizer ticks on every rewrite, so a runaway pass is interrupted
    within a few rewrites of the deadline; code that does not tick
    (parsing, I/O) is covered by explicit {!check} calls at phase
    boundaries. Observers stack ({!Fj_core.Telemetry.with_observer}), so the
    watchdog keeps firing inside a pass whose Guard fuel meter is also
    installed.

    Deadline expiry raises {!Deadline_exceeded} — a {e transient}
    failure in the service's taxonomy: the request is retried with
    backoff and eventually degraded, never hung. *)

(** The configured bounds (durations, not absolute times). *)
type spec = {
  wall_ms : float option;  (** Per-attempt deadline; [None] = none. *)
  fuel : int option;  (** Per-pass tick budget ({!Fj_core.Guard.limits}). *)
  growth_factor : int;  (** Per-pass size ceiling factor. *)
  growth_slack : int;  (** Per-pass size ceiling slack. *)
}

(** No deadline; fuel and size from {!Fj_core.Guard.default_limits}. *)
val default_spec : spec

(** The {!Fj_core.Guard.limits} embedding of a spec's fuel and size bounds. *)
val limits : spec -> Fj_core.Guard.limits

exception Deadline_exceeded of { wall_ms : float }

(** One armed attempt: the spec plus an absolute monotonic deadline
    fixed at {!start}. *)
type t

val start : spec -> t

(** Raise {!Deadline_exceeded} if the deadline has passed. Call at
    phase boundaries (after load, after the pipeline). *)
val check : t -> unit

val expired : t -> bool

(** Monotonic milliseconds until the deadline; [None] when the spec
    has no deadline. Negative once expired. *)
val remaining_ms : t -> float option

(** [with_watchdog b f] runs [f] with a tick observer that {!check}s
    the clock every few dozen ticks. *)
val with_watchdog : t -> (unit -> 'a) -> 'a

(** Busy-wait (in short sleeps) until the deadline has passed — how
    the ["service/slow-pass"] fault burns a request's deadline. Sleeps
    at most [cap_ms] (default 500) so an undeadlined request is never
    stalled for long. *)
val burn : ?cap_ms:float -> t -> unit
