(** A bounded multi-producer multi-consumer queue with explicit
    load-shedding — the compile service's admission control.

    The queue never blocks a producer: {!try_push} on a full queue
    returns [`Shed] immediately, and the caller turns that into a
    structured rejection (ISSUE: overload must produce an explicit
    refusal, never a hang). Consumers block in {!pop} until an item
    arrives or the queue is {!close}d and drained.

    A second, unbounded lane ({!push_urgent}) exists for {e requeues}:
    when a supervised worker crashes mid-request, its in-flight
    request must not be lost to the same admission control that
    (deliberately) drops fresh work — the request was already
    admitted. Urgent items are popped before queued ones.

    All operations are safe to call from any domain. *)

type 'a t

(** [create ~capacity] — [capacity] bounds the normal lane only
    (must be positive). *)
val create : capacity:int -> 'a t

(** Admit an item, or refuse: [`Shed] when the normal lane is at
    capacity, [`Closed] after {!close}. Never blocks. *)
val try_push : 'a t -> 'a -> [ `Ok | `Shed | `Closed ]

(** Re-admit an already-admitted item (a crashed worker's in-flight
    request), bypassing the capacity bound. [`Closed] after {!close}
    with an empty queue means the drain has ended and the item is the
    caller's to account for. *)
val push_urgent : 'a t -> 'a -> [ `Ok | `Closed ]

(** Next item, urgent lane first; blocks while the queue is empty and
    open. [None] once the queue is closed {e and} drained — the
    consumer's signal to exit. *)
val pop : 'a t -> 'a option

(** Stop admissions. Blocked consumers drain what remains, then get
    [None]. Idempotent. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool

(** Items currently queued (both lanes). *)
val length : 'a t -> int
