(* Per-request budgets. See budget.mli. *)

open Fj_core

type spec = {
  wall_ms : float option;
  fuel : int option;
  growth_factor : int;
  growth_slack : int;
}

let default_spec =
  {
    wall_ms = None;
    fuel = Guard.default_limits.Guard.pass_fuel;
    growth_factor = Guard.default_limits.Guard.max_growth_factor;
    growth_slack = Guard.default_limits.Guard.max_growth_slack;
  }

let limits s =
  {
    Guard.pass_fuel = s.fuel;
    max_growth_factor = s.growth_factor;
    max_growth_slack = s.growth_slack;
  }

exception Deadline_exceeded of { wall_ms : float }

type t = {
  spec : spec;
  deadline : float option;  (* absolute, Telemetry.now_ms clock *)
  mutable credit : int;  (* ticks until the next clock read *)
}

(* Reading the monotonic clock on every tick would double the cost of
   the hottest counter in the optimizer; once per [interval] ticks
   still bounds the overshoot to a handful of rewrites. *)
let interval = 64

let start spec =
  {
    spec;
    deadline = Option.map (fun w -> Telemetry.now_ms () +. w) spec.wall_ms;
    credit = interval;
  }

let expired b =
  match b.deadline with
  | None -> false
  | Some d -> Telemetry.now_ms () > d

let check b =
  if expired b then
    raise (Deadline_exceeded { wall_ms = Option.get b.spec.wall_ms })

let remaining_ms b =
  Option.map (fun d -> d -. Telemetry.now_ms ()) b.deadline

let with_watchdog b f =
  match b.deadline with
  | None -> f ()
  | Some _ ->
      Telemetry.with_observer
        (fun n ->
          b.credit <- b.credit - n;
          if b.credit <= 0 then begin
            b.credit <- interval;
            check b
          end)
        f

let burn ?(cap_ms = 500.0) b =
  let until =
    match b.deadline with
    | Some d -> Float.min d (Telemetry.now_ms () +. cap_ms)
    | None -> Telemetry.now_ms () +. cap_ms
  in
  while Telemetry.now_ms () <= until do
    Unix.sleepf 0.005
  done
