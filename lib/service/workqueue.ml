(* Bounded MPMC queue with shedding. See workqueue.mli. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  normal : 'a Queue.t;  (* bounded admission lane *)
  urgent : 'a Queue.t;  (* unbounded requeue lane *)
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Workqueue.create: capacity must be positive";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    normal = Queue.create ();
    urgent = Queue.create ();
    capacity;
    closed = false;
  }

let try_push t x =
  Mutex.protect t.lock (fun () ->
      if t.closed then `Closed
      else if Queue.length t.normal >= t.capacity then `Shed
      else begin
        Queue.push x t.normal;
        Condition.signal t.nonempty;
        `Ok
      end)

let push_urgent t x =
  Mutex.protect t.lock (fun () ->
      if t.closed && Queue.is_empty t.normal && Queue.is_empty t.urgent then
        `Closed
      else begin
        Queue.push x t.urgent;
        Condition.signal t.nonempty;
        `Ok
      end)

let pop t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.urgent) then Some (Queue.pop t.urgent)
        else if not (Queue.is_empty t.normal) then Some (Queue.pop t.normal)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      (* Wake every blocked consumer so it can observe the close. *)
      Condition.broadcast t.nonempty)

let is_closed t = Mutex.protect t.lock (fun () -> t.closed)

let length t =
  Mutex.protect t.lock (fun () ->
      Queue.length t.normal + Queue.length t.urgent)
