(* Supervised worker pool. See supervisor.mli. *)

type 'a crash = {
  c_request : 'a;
  c_worker : int;
  c_exn : string;
  c_respawn : int;
  c_requeued : bool;
}

let respawn_count = Atomic.make 0
let respawns () = Atomic.get respawn_count
let reset_respawns () = Atomic.set respawn_count 0

let default_max_crashes_per_request = 3

(* The trampoline: a worker loop that survives its own crashes. A
   request whose handling raises is re-admitted on the urgent lane
   (it already passed admission control — shedding it now would turn
   a transient crash into a lost result), the crash is reported, and
   the loop restarts with fresh worker state. A request that keeps
   crashing is poison: past its cap it is abandoned (reported with
   [c_requeued = false]) rather than crash/requeued forever. *)
let supervised_loop ~crash_counts ~crash_lock ~max_crashes ~queue ~handle
    ~on_crash i =
  let crashes = ref 0 in
  let rec loop () =
    match Workqueue.pop queue with
    | None -> ()
    | Some req -> (
        match handle ~worker:i req with
        | () -> loop ()
        | exception exn ->
            incr crashes;
            Atomic.incr respawn_count;
            let request_crashes =
              Mutex.protect crash_lock (fun () ->
                  let n =
                    1
                    + Option.value ~default:0
                        (Hashtbl.find_opt crash_counts (Hashtbl.hash req))
                  in
                  Hashtbl.replace crash_counts (Hashtbl.hash req) n;
                  n)
            in
            let requeued =
              request_crashes < max_crashes
              &&
              match Workqueue.push_urgent queue req with
              | `Ok -> true
              | `Closed -> false
            in
            on_crash
              {
                c_request = req;
                c_worker = i;
                c_exn = Printexc.to_string exn;
                c_respawn = !crashes;
                c_requeued = requeued;
              };
            loop ())
  in
  loop ()

let run ?(max_crashes_per_request = default_max_crashes_per_request) ~jobs
    ~queue ~handle ~on_crash () =
  let crash_counts = Hashtbl.create 8 in
  let crash_lock = Mutex.create () in
  let worker i =
    supervised_loop ~crash_counts ~crash_lock
      ~max_crashes:max_crashes_per_request ~queue ~handle ~on_crash i
  in
  if jobs <= 1 then worker 0
  else
    let domains = List.init jobs (fun i -> Domain.spawn (fun () -> worker i)) in
    List.iter Domain.join domains
