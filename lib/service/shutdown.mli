(** Graceful-shutdown signal plumbing for the long-running [fjc]
    modes ([batch], [serve], [fuzz] soaks).

    {!install} registers SIGINT and SIGTERM handlers that only set a
    flag (signal handlers run on the main domain at safepoints; doing
    more there is unsafe). The driving loop polls {!requested} and, on
    the first signal, {e drains}: stops admitting work, finishes what
    is in flight, flushes partial results / the flight recorder, and
    exits with the documented code — 130 for SIGINT, 143 for SIGTERM
    (the classic 128+signo convention). A {e second} signal skips the
    drain and exits immediately with the same code. *)

type reason = Interrupt  (** SIGINT *) | Terminate  (** SIGTERM *)

val reason_name : reason -> string

(** 130 for [Interrupt], 143 for [Terminate]. *)
val exit_code : reason -> int

(** Install the handlers (idempotent). Safe to call from the main
    domain only. *)
val install : unit -> unit

(** The first signal received since {!install}/{!reset}, if any. *)
val requested : unit -> reason option

(** Clear the flag (tests). *)
val reset : unit -> unit
