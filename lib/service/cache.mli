(** The content-addressed pass cache behind {!Fj_core.Pipeline.pass_cache}.

    {b Keying.} A cached entry is addressed by the digest of
    [(format version, configuration fingerprint, pass label, supply
    position, Sexp encoding of the input tree)]. Every component
    matters for the byte-identical warm-compile guarantee:

    - the {e Sexp encoding} round-trips uniques exactly, so two
      structurally-equal trees with different binder numbering are
      (correctly) different keys;
    - the {e supply position} ({!Fj_core.Ident.counter_value} before the pass)
      pins what uniques the pass would have allocated — replaying an
      entry recorded at a different supply position would renumber
      fresh binders and desynchronise the warm compile;
    - the {e fingerprint} carries everything else that can change a
      pass's behaviour (mode, thresholds, policy, budget, rung), owned
      by the caller.

    {b Integrity.} Entries are written atomically (temp file + rename)
    as [<md5 of payload>\n<payload>]. Every read re-hashes the payload
    and compares; a mismatch — a truncated write, a flipped bit, the
    ["service/cache"] fault — {e quarantines} the entry (moves it to
    [quarantine/] for the post-mortem) and reports a miss, so a
    corrupt entry is recomputed, never served. Unparseable payloads
    with a valid hash are quarantined the same way.

    {b Concurrency.} One [t] is shared by all worker domains. Stats
    are mutex-protected; file operations rely on rename atomicity
    (two domains storing the same key write identical bytes). *)

type t

(** [create ~dir ()] opens (creating directories as needed) a cache
    rooted at [dir]. *)
val create : dir:string -> unit -> t

(** The {!Fj_core.Pipeline.pass_cache} hook for one compilation, keyed under
    [fingerprint] (the caller's encoding of every behaviour-affecting
    flag) and decoding trees under [datacons]. *)
val pass_cache : t -> fingerprint:string -> datacons:Fj_core.Datacon.env -> Fj_core.Pipeline.pass_cache

type stats = {
  hits : int;
  misses : int;
  stores : int;
  quarantined : int;  (** Corrupt entries detected and set aside. *)
}

val stats : t -> stats

(** [{hits, misses, stores, quarantined, hit_rate}]. *)
val stats_json : t -> Fj_core.Telemetry.Json.t

(** [hits / (hits + misses)]; 0 when no lookups have happened. *)
val hit_rate : t -> float

(** Quarantined entry files currently on disk (absolute paths). *)
val quarantine_entries : t -> string list
