(* The fault-tolerant compile service. See service.mli. *)

open Fj_core

type rung = Full | Degraded | Check_only

let rung_name = function
  | Full -> "full"
  | Degraded -> "baseline"
  | Check_only -> "check-only"

let rung_of_name = function
  | "full" -> Some Full
  | "baseline" -> Some Degraded
  | "check-only" -> Some Check_only
  | _ -> None

type failure = {
  f_rung : string;
  f_attempt : int;
  f_cause : string;
  f_detail : string;
  f_backoff_ms : float;
}

let failure_json f =
  Telemetry.Json.(
    Obj
      [
        ("rung", Str f.f_rung);
        ("attempt", Int f.f_attempt);
        ("cause", Str f.f_cause);
        ("detail", Str f.f_detail);
        ("backoff_ms", Float f.f_backoff_ms);
      ])

type attempt_ok = {
  a_rung : rung;
  a_output : string;
  a_output_size : int;
  a_ticks : (string * int) list;
  a_decisions : Decision.event list;
  a_incidents : Guard.incident list;
}

type status =
  | Compiled of attempt_ok
  | Rejected of { kind : string; detail : string }
  | Exhausted of { last : string }
  | Shed
  | Dropped of { reason : string }

let status_name = function
  | Compiled _ -> "compiled"
  | Rejected _ -> "rejected"
  | Exhausted _ -> "exhausted"
  | Shed -> "shed"
  | Dropped _ -> "dropped"

type outcome = {
  id : string;
  path : string;
  status : status;
  failures : failure list;
  ms : float;
}

type config = {
  jobs : int;
  queue_capacity : int;
  attempts_per_rung : int;
  backoff_base_ms : float;
  backoff_max_ms : float;
  seed : int;
  budget : Budget.spec;
  pipeline : Pipeline.config;
  no_prelude : bool;
  cache : Cache.t option;
  isolate : bool;
}

let default_config () =
  {
    jobs = 1;
    queue_capacity = 256;
    attempts_per_rung = 2;
    backoff_base_ms = 25.0;
    backoff_max_ms = 250.0;
    seed = 0;
    budget = Budget.default_spec;
    pipeline = Pipeline.default_config ();
    no_prelude = false;
    cache = None;
    isolate = false;
  }

(* --- backoff ------------------------------------------------------- *)

let backoff_ms ~base_ms ~max_ms ~seed ~id ~rung ~attempt =
  let h = Hashtbl.hash (seed, id, rung, attempt) in
  let jitter = float_of_int (h land 0xffff) /. 65536.0 /. 2.0 in
  Float.min max_ms (base_ms *. (2.0 ** float_of_int attempt) *. (1.0 +. jitter))

(* --- loading ------------------------------------------------------- *)

(* A permanent failure: bad input, not bad luck. Never retried. *)
exception Permanent of string * string

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_source ~no_prelude path =
  let src =
    try read_file path
    with Sys_error msg -> raise (Permanent ("unreadable", msg))
  in
  if Filename.check_suffix path ".sexp" then
    match Sexp.read Datacon.builtins src with
    | core -> (Datacon.builtins, core)
    | exception exn ->
        raise (Permanent ("bad-sexp", Printexc.to_string exn))
  else
    match
      if no_prelude then Fj_surface.Infer.compile src
      else Fj_surface.Prelude.compile src
    with
    | denv, core -> (
        match Lint.lint_result denv core with
        | Ok _ -> (denv, core)
        | Error err ->
            raise (Permanent ("ill-typed", Fmt.str "%a" Lint.pp_error err)))
    | exception Fj_surface.Parser.Parse_error (msg, _) ->
        raise (Permanent ("parse-error", msg))
    | exception Fj_surface.Lexer.Lex_error (msg, _) ->
        raise (Permanent ("parse-error", msg))
    | exception Fj_surface.Infer.Type_error (msg, _) ->
        raise (Permanent ("type-error", msg))

(* --- fingerprint --------------------------------------------------- *)

(* Everything that can change what a pass produces, so a cache entry
   recorded under one configuration can never replay under another. *)
let fingerprint cfg rung =
  let p = cfg.pipeline in
  let limits = Budget.limits cfg.budget in
  String.concat ";"
    [
      "fp1";
      rung_name rung;
      Pipeline.mode_name p.Pipeline.mode;
      string_of_int p.Pipeline.iterations;
      string_of_int p.Pipeline.inline_threshold;
      string_of_int p.Pipeline.dup_threshold;
      string_of_bool p.Pipeline.strictness;
      string_of_bool p.Pipeline.cse;
      string_of_bool p.Pipeline.spec_constr;
      String.concat "," (List.map (fun r -> r.Rules.name) p.Pipeline.rules);
      Guard.policy_name p.Pipeline.policy;
      (match limits.Guard.pass_fuel with
      | None -> "inf"
      | Some n -> string_of_int n);
      string_of_int limits.Guard.max_growth_factor;
      string_of_int limits.Guard.max_growth_slack;
      string_of_bool cfg.no_prelude;
    ]

(* --- one attempt, in process --------------------------------------- *)

let rung_pipeline cfg rung denv =
  let p = cfg.pipeline in
  {
    p with
    Pipeline.mode = (if rung = Degraded then Pipeline.Baseline else p.Pipeline.mode);
    datacons = denv;
    limits = Budget.limits cfg.budget;
    cache =
      Option.map
        (fun c ->
          Cache.pass_cache c ~fingerprint:(fingerprint cfg rung) ~datacons:denv)
        cfg.cache;
  }

(* Run one attempt at one rung under a fresh per-compilation context:
   its own unique supply (so identical inputs yield byte-identical
   Core regardless of what other requests this domain has processed)
   and an armed budget watchdog. *)
let compile_attempt cfg ~rung ~path : attempt_ok =
  Context.with_fresh @@ fun () ->
  let budget = Budget.start cfg.budget in
  Budget.with_watchdog budget @@ fun () ->
  (match Fault.trigger "service/slow-pass" with
  | Some _ -> Budget.burn budget
  | None -> ());
  let denv, core = load_source ~no_prelude:cfg.no_prelude path in
  Budget.check budget;
  match rung with
  | Check_only ->
      {
        a_rung = rung;
        a_output = Sexp.write core;
        a_output_size = Syntax.size core;
        a_ticks = [];
        a_decisions = [];
        a_incidents = [];
      }
  | Full | Degraded ->
      let core', report = Pipeline.run_report (rung_pipeline cfg rung denv) core in
      Budget.check budget;
      {
        a_rung = rung;
        a_output = Sexp.write core';
        a_output_size = Syntax.size core';
        a_ticks = Pipeline.ticks report;
        a_decisions = Pipeline.decisions report;
        a_incidents = Pipeline.incidents report;
      }

(* Classify an attempt's escape as a transient (cause, detail). *)
let transient_of_exn = function
  | Budget.Deadline_exceeded { wall_ms } ->
      ("deadline", Fmt.str "exceeded %.0fms deadline" wall_ms)
  | Fault.Injected point -> ("injected", point)
  | Pipeline.Pass_broke_lint (pass, _) -> ("lint", pass)
  | exn -> ("exn", Printexc.to_string exn)

(* --- one attempt, isolated (fork) ---------------------------------- *)

(* Serialisation of an attempt result across the fork boundary. *)
let attempt_ok_json a =
  Telemetry.Json.(
    Obj
      [
        ("rung", Str (rung_name a.a_rung));
        ("output", Str a.a_output);
        ("output_size", Int a.a_output_size);
        ( "ticks",
          Obj (List.map (fun (k, v) -> (k, Int v)) a.a_ticks) );
        ("decisions", Arr (List.map Decision.event_json a.a_decisions));
        ("incidents", Arr (List.map Guard.incident_json a.a_incidents));
      ])

let attempt_ok_of_json = function
  | Telemetry.Json.Obj fields -> (
      let open Telemetry.Json in
      let str k =
        match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None
      in
      let int k =
        match List.assoc_opt k fields with Some (Int n) -> Some n | _ -> None
      in
      match (Option.bind (str "rung") rung_of_name, str "output", int "output_size") with
      | Some a_rung, Some a_output, Some a_output_size ->
          let a_ticks =
            match List.assoc_opt "ticks" fields with
            | Some (Obj kvs) ->
                List.filter_map
                  (function k, Int n -> Some (k, n) | _ -> None)
                  kvs
            | _ -> []
          in
          let a_decisions =
            match List.assoc_opt "decisions" fields with
            | Some (Arr es) -> List.filter_map Decision.event_of_json es
            | _ -> []
          in
          let a_incidents =
            match List.assoc_opt "incidents" fields with
            | Some (Arr is) -> List.filter_map Guard.incident_of_json is
            | _ -> []
          in
          Some { a_rung; a_output; a_output_size; a_ticks; a_decisions; a_incidents }
      | _ -> None)
  | _ -> None

(* Child exit codes for the isolate protocol. *)
let exit_ok = 0
let exit_permanent = 4
let exit_transient = 5

(* In [--isolate] mode service faults must be claimed by the parent:
   the forked child inherits a {e copy} of the fault registry, so a
   fire limit decremented in the child would never reach the parent
   and a "transient" fault would fire in every retry forever. The
   claimed behaviour crosses the fork through this flag. *)
let inject_slow = ref false

let isolated_attempt cfg ~rung ~path : (attempt_ok, [ `P of string * string | `T of string * string ]) result =
  let crash = Fault.trigger "service/worker" <> None in
  inject_slow := Fault.trigger "service/slow-pass" <> None;
  let result_file =
    Filename.temp_file "fjc-isolate" (Fmt.str ".%d.json" (Unix.getpid ()))
  in
  Fun.protect ~finally:(fun () ->
      inject_slow := false;
      try Sys.remove result_file with Sys_error _ -> ())
  @@ fun () ->
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* Child: one attempt, result through the file, verdict through
         the exit code. The injected worker crash dies uncleanly on
         purpose — the parent must see a crash, not a verdict. *)
      let code =
        try
          if crash then raise (Fault.Injected "service/worker");
          if !inject_slow then Budget.burn (Budget.start cfg.budget);
          let a = compile_attempt cfg ~rung ~path in
          let oc = open_out_bin result_file in
          output_string oc (Telemetry.Json.to_string (attempt_ok_json a));
          close_out oc;
          exit_ok
        with
        | Permanent (kind, detail) ->
            let oc = open_out_bin result_file in
            output_string oc
              (Telemetry.Json.to_string
                 Telemetry.Json.(
                   Obj [ ("kind", Str kind); ("detail", Str detail) ]));
            close_out oc;
            exit_permanent
        | Fault.Injected _ -> 70 (* simulated crash: die uncleanly *)
        | _ -> exit_transient
      in
      (* Skip at_exit (the parent owns the terminal and any recorders). *)
      Unix._exit code
  | pid -> (
      (* Parent: reap, with a hard kill at the deadline — the real
         watchdog isolate mode buys us. *)
      let deadline =
        Option.map (fun w -> Telemetry.now_ms () +. w +. 100.0) cfg.budget.Budget.wall_ms
      in
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            (match deadline with
            | Some d when Telemetry.now_ms () > d ->
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
            | _ -> ());
            Unix.sleepf 0.002;
            reap ()
        | _, status -> status
      in
      let read_result () =
        try Ok (read_file result_file)
        with Sys_error msg -> Error msg
      in
      match reap () with
      | Unix.WEXITED c when c = exit_ok -> (
          match Result.bind (read_result ()) Telemetry.Json.parse with
          | Ok j -> (
              match attempt_ok_of_json j with
              | Some a -> Ok a
              | None -> Error (`T ("exn", "unreadable isolate result")))
          | Error e -> Error (`T ("exn", "unreadable isolate result: " ^ e)))
      | Unix.WEXITED c when c = exit_permanent -> (
          match Result.bind (read_result ()) Telemetry.Json.parse with
          | Ok (Telemetry.Json.Obj fields) ->
              let str k =
                match List.assoc_opt k fields with
                | Some (Telemetry.Json.Str s) -> Some s
                | _ -> None
              in
              Error
                (`P
                   ( Option.value ~default:"error" (str "kind"),
                     Option.value ~default:"" (str "detail") ))
          | _ -> Error (`P ("error", "unreadable isolate result"))
        )
      | Unix.WEXITED c when c = exit_transient -> Error (`T ("exn", "transient failure in isolated child"))
      | Unix.WEXITED c -> Error (`T ("worker-crash", Fmt.str "child exited %d" c))
      | Unix.WSIGNALED s when s = Sys.sigkill && deadline <> None ->
          Error
            (`T
               ( "deadline",
                 Fmt.str "killed after %.0fms deadline"
                   (Option.get cfg.budget.Budget.wall_ms) ))
      | Unix.WSIGNALED s -> Error (`T ("worker-crash", Fmt.str "child killed by signal %d" s))
      | Unix.WSTOPPED _ -> Error (`T ("worker-crash", "child stopped")))

(* --- the retry/degrade ladder -------------------------------------- *)

let next_rung = function
  | Full -> Some Degraded
  | Degraded -> Some Check_only
  | Check_only -> None

let run_attempt cfg ~rung ~path :
    (attempt_ok, [ `P of string * string | `T of string * string ]) result =
  if cfg.isolate then
    (* [Unix.fork] itself can fail — most notably it refuses outright
       once any domain has ever been spawned in this process. That is
       an environmental (transient-class) failure of the attempt, not
       a crash: it must feed the ladder, never the supervisor. *)
    match isolated_attempt cfg ~rung ~path with
    | r -> r
    | exception exn -> Error (`T (transient_of_exn exn))
  else
    match compile_attempt cfg ~rung ~path with
    | a -> Ok a
    | exception Permanent (kind, detail) -> Error (`P (kind, detail))
    | exception exn -> Error (`T (transient_of_exn exn))

let process_one cfg ~id ~path : outcome =
  (* The worker-crash injection point: in domain mode the raise
     escapes all the way to the supervisor's trampoline (isolate mode
     claims the fault itself, per attempt, in the parent). *)
  if not cfg.isolate then (
    match Fault.trigger "service/worker" with
    | Some _ -> raise (Fault.Injected "service/worker")
    | None -> ());
  let t0 = Telemetry.now_ms () in
  let failures = ref [] in
  let finish status =
    { id; path; status; failures = List.rev !failures; ms = Telemetry.now_ms () -. t0 }
  in
  let rec attempt rung n =
    match run_attempt cfg ~rung ~path with
    | Ok a -> finish (Compiled a)
    | Error (`P (kind, detail)) -> finish (Rejected { kind; detail })
    | Error (`T (cause, detail)) ->
        let last_of_rung = n + 1 >= cfg.attempts_per_rung in
        let out_of_rungs = last_of_rung && next_rung rung = None in
        let backoff =
          if out_of_rungs then 0.0
          else
            backoff_ms ~base_ms:cfg.backoff_base_ms ~max_ms:cfg.backoff_max_ms
              ~seed:cfg.seed ~id ~rung:(rung_name rung) ~attempt:n
        in
        failures :=
          {
            f_rung = rung_name rung;
            f_attempt = n;
            f_cause = cause;
            f_detail = detail;
            f_backoff_ms = backoff;
          }
          :: !failures;
        if backoff > 0.0 then Unix.sleepf (backoff /. 1000.0);
        if not last_of_rung then attempt rung (n + 1)
        else (
          match next_rung rung with
          | Some r -> attempt r 0
          | None -> finish (Exhausted { last = cause ^ ": " ^ detail }))
  in
  attempt Full 0

(* --- batch --------------------------------------------------------- *)

type batch = {
  b_outcomes : outcome list;
  b_respawns : int;
  b_wall_ms : float;
  b_shutdown : Shutdown.reason option;
}

let run_batch cfg sources =
  let t0 = Telemetry.now_ms () in
  Supervisor.reset_respawns ();
  let queue = Workqueue.create ~capacity:cfg.queue_capacity in
  let lock = Mutex.create () in
  let results : (string, outcome) Hashtbl.t = Hashtbl.create 64 in
  let record o = Mutex.protect lock (fun () -> Hashtbl.replace results o.id o) in
  (* Admission up front, before any worker runs: the shed set then
     depends only on capacity and input order — deterministic — and a
     full queue is an explicit structured refusal, never a hang. *)
  List.iter
    (fun (id, path) ->
      match Workqueue.try_push queue (id, path) with
      | `Ok -> ()
      | `Shed | `Closed ->
          record { id; path; status = Shed; failures = []; ms = 0.0 })
    sources;
  Workqueue.close queue;
  let handle ~worker:_ (id, path) =
    match Shutdown.requested () with
    | Some r ->
        (* Draining: in-flight work finished; queued work is dropped
           with an explicit marker, and partial results still land. *)
        record
          {
            id;
            path;
            status = Dropped { reason = Shutdown.reason_name r };
            failures = [];
            ms = 0.0;
          }
    | None -> record (process_one cfg ~id ~path)
  in
  let crashes = ref [] in
  let on_crash (c : (string * string) Supervisor.crash) =
    let id, path = c.Supervisor.c_request in
    Mutex.protect lock (fun () -> crashes := (id, c) :: !crashes);
    if not c.Supervisor.c_requeued then
      record
        {
          id;
          path;
          status = Dropped { reason = "worker crashed: " ^ c.Supervisor.c_exn };
          failures = [];
          ms = 0.0;
        }
  in
  (* Isolate mode forks; forking a process that has running sibling
     domains is a hazard, so the pool is forced inline on this domain. *)
  let jobs = if cfg.isolate then 1 else cfg.jobs in
  Supervisor.run ~jobs ~queue ~handle ~on_crash ();
  (* Fold the supervisor's crash log into each outcome's failure
     history (a crash is one more absorbed transient). *)
  let outcomes =
    List.filter_map (fun (id, _) -> Hashtbl.find_opt results id)
      (List.sort_uniq compare (List.map (fun (id, p) -> (id, p)) sources))
  in
  let outcomes =
    List.map
      (fun o ->
        let mine =
          List.filter (fun (id, _) -> String.equal id o.id) !crashes
          |> List.map (fun (_, c) ->
                 {
                   f_rung = "pool";
                   f_attempt = c.Supervisor.c_respawn - 1;
                   f_cause = "worker-crash";
                   f_detail = c.Supervisor.c_exn;
                   f_backoff_ms = 0.0;
                 })
        in
        { o with failures = mine @ o.failures })
      outcomes
  in
  {
    b_outcomes = List.sort (fun a b -> String.compare a.id b.id) outcomes;
    b_respawns = Supervisor.respawns ();
    b_wall_ms = Telemetry.now_ms () -. t0;
    b_shutdown = Shutdown.requested ();
  }

(* --- reporting ----------------------------------------------------- *)

let ticks_json l =
  Telemetry.Json.Obj (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) l)

(* The deterministic per-request document: everything here must be
   byte-identical across --jobs levels and cold/warm cache, so no
   timings, no cache counters, no backoff history. *)
let meta_json id (a : attempt_ok) =
  Telemetry.Json.(
    Obj
      [
        ("v", Str "fj-meta/1");
        ("id", Str id);
        ("rung", Str (rung_name a.a_rung));
        ("output_size", Int a.a_output_size);
        ("ticks", ticks_json a.a_ticks);
        ("decisions", Arr (List.map Decision.event_json a.a_decisions));
        ("incidents", Arr (List.map Guard.incident_json a.a_incidents));
      ])

let outcome_row o =
  Telemetry.Json.(
    Obj
      ([
         ("id", Str o.id);
         ("path", Str o.path);
         ("status", Str (status_name o.status));
       ]
      @ (match o.status with
        | Compiled a ->
            [
              ("rung", Str (rung_name a.a_rung));
              ("output_size", Int a.a_output_size);
            ]
        | Rejected { kind; detail } ->
            [ ("kind", Str kind); ("detail", Str detail) ]
        | Exhausted { last } -> [ ("last", Str last) ]
        | Shed | Dropped _ -> [])
      @ (match o.status with
        | Dropped { reason } -> [ ("reason", Str reason) ]
        | _ -> [])
      @ [
          ("ms", Float o.ms);
          ("failures", Arr (List.map failure_json o.failures));
        ]))

let count p l = List.length (List.filter p l)

let batch_json cfg b =
  let status_is name o = String.equal (status_name o.status) name in
  Telemetry.Json.(
    Obj
      ([
         ("v", Str "fj-batch/1");
         ("jobs", Int cfg.jobs);
         ("isolate", Bool cfg.isolate);
         ("requests", Int (List.length b.b_outcomes));
         ("compiled", Int (count (status_is "compiled") b.b_outcomes));
         ("rejected", Int (count (status_is "rejected") b.b_outcomes));
         ("exhausted", Int (count (status_is "exhausted") b.b_outcomes));
         ("shed", Int (count (status_is "shed") b.b_outcomes));
         ("dropped", Int (count (status_is "dropped") b.b_outcomes));
         ( "degraded",
           Int
             (count
                (fun o ->
                  match o.status with
                  | Compiled a -> a.a_rung <> Full
                  | _ -> false)
                b.b_outcomes) );
         ("worker_respawns", Int b.b_respawns);
         ("wall_ms", Float b.b_wall_ms);
       ]
      @ (match b.b_shutdown with
        | None -> []
        | Some r -> [ ("shutdown", Str (Shutdown.reason_name r)) ])
      @ (match cfg.cache with
        | None -> []
        | Some c -> [ ("cache", Cache.stats_json c) ])
      @ [ ("rows", Arr (List.map outcome_row b.b_outcomes)) ]))

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let write_batch cfg ~dir b =
  mkdir_p dir;
  List.iter
    (fun o ->
      match o.status with
      | Compiled a ->
          write_file (Filename.concat dir (o.id ^ ".sexp")) (a.a_output ^ "\n");
          write_file
            (Filename.concat dir (o.id ^ ".meta.json"))
            (Telemetry.Json.to_string (meta_json o.id a) ^ "\n")
      | _ -> ())
    b.b_outcomes;
  write_file
    (Filename.concat dir "results.json")
    (Telemetry.Json.to_string (batch_json cfg b) ^ "\n")

let batch_exit_code b =
  match b.b_shutdown with
  | Some r -> Shutdown.exit_code r
  | None ->
      if List.exists (fun o -> o.status = Shed) b.b_outcomes then 3
      else if
        List.exists
          (fun o ->
            match o.status with
            | Rejected _ | Exhausted _ | Dropped _ -> true
            | _ -> false)
          b.b_outcomes
      then 1
      else 0

(* --- serve --------------------------------------------------------- *)

let response_json o =
  Telemetry.Json.(
    Obj
      ([ ("id", Str o.id); ("status", Str (status_name o.status)) ]
      @ (match o.status with
        | Compiled a ->
            [
              ("rung", Str (rung_name a.a_rung));
              ("output_size", Int a.a_output_size);
              ("output", Str a.a_output);
            ]
        | Rejected { kind; detail } ->
            [ ("error", Str kind); ("detail", Str detail) ]
        | Exhausted { last } -> [ ("error", Str "exhausted"); ("detail", Str last) ]
        | Shed -> [ ("error", Str "shed"); ("detail", Str "queue full; retry later") ]
        | Dropped { reason } -> [ ("error", Str "dropped"); ("detail", Str reason) ])))

let sanitize_id path =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    path

let parse_request line =
  match String.index_opt line '\t' with
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )
  | None -> (sanitize_id line, line)

let serve_channels cfg ~input ~output =
  let queue = Workqueue.create ~capacity:cfg.queue_capacity in
  let out_lock = Mutex.create () in
  let respond o =
    Mutex.protect out_lock (fun () ->
        output_string output (Telemetry.Json.to_string (response_json o) ^ "\n");
        flush output)
  in
  let handle ~worker:_ (id, path) =
    match Shutdown.requested () with
    | Some r ->
        respond
          {
            id;
            path;
            status = Dropped { reason = Shutdown.reason_name r };
            failures = [];
            ms = 0.0;
          }
    | None -> respond (process_one cfg ~id ~path)
  in
  let on_crash (c : (string * string) Supervisor.crash) =
    if not c.Supervisor.c_requeued then
      let id, path = c.Supervisor.c_request in
      respond
        {
          id;
          path;
          status = Dropped { reason = "worker crashed: " ^ c.Supervisor.c_exn };
          failures = [];
          ms = 0.0;
        }
  in
  if cfg.isolate then begin
    (* Fork-per-attempt is only legal while this process has never
       spawned a domain, so isolate mode serves serially on the main
       domain: read a request, answer it, read the next. *)
    let rec serial () =
      match Shutdown.requested () with
      | Some _ -> ()
      | None -> (
          match input_line input with
          | exception End_of_file -> ()
          | line when String.trim line = "" -> serial ()
          | line ->
              handle ~worker:0 (parse_request (String.trim line));
              serial ())
    in
    serial ();
    Workqueue.close queue
  end
  else begin
    let pool =
      Domain.spawn (fun () ->
          Supervisor.run ~jobs:cfg.jobs ~queue ~handle ~on_crash ())
    in
    let rec loop () =
      match Shutdown.requested () with
      | Some _ -> ()
      | None -> (
          match input_line input with
          | exception End_of_file -> ()
          | line when String.trim line = "" -> loop ()
          | line -> (
              let id, path = parse_request (String.trim line) in
              match Workqueue.try_push queue (id, path) with
              | `Ok -> loop ()
              | `Shed ->
                  respond { id; path; status = Shed; failures = []; ms = 0.0 };
                  loop ()
              | `Closed -> ()))
    in
    loop ();
    Workqueue.close queue;
    Domain.join pool
  end;
  Shutdown.requested ()

let serve cfg ~input ~output = serve_channels cfg ~input ~output

let serve_socket cfg ~path =
  (try Sys.remove path with Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let rec accept_loop () =
    match Shutdown.requested () with
    | Some r -> Some r
    | None -> (
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | client, _ ->
            let input = Unix.in_channel_of_descr client in
            let output = Unix.out_channel_of_descr client in
            let stopped = serve_channels cfg ~input ~output in
            (try Unix.close client with Unix.Unix_error _ -> ());
            (match stopped with Some r -> Some r | None -> accept_loop ()))
  in
  accept_loop ()
