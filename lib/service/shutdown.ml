(* Graceful-shutdown signals. See shutdown.mli. *)

type reason = Interrupt | Terminate

let reason_name = function Interrupt -> "interrupt" | Terminate -> "terminate"
let exit_code = function Interrupt -> 130 | Terminate -> 143

(* 0 = none; otherwise the signal's exit code. Atomic because worker
   domains poll it while the main domain's handler writes it. *)
let state = Atomic.make 0

let of_code = function 130 -> Some Interrupt | 143 -> Some Terminate | _ -> None

let handle reason _signo =
  let code = exit_code reason in
  if not (Atomic.compare_and_set state 0 code) then
    (* Second signal: the user is insisting. Skip the drain. *)
    Stdlib.exit code

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Sys.set_signal Sys.sigint (Sys.Signal_handle (handle Interrupt));
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (handle Terminate))
  end

let requested () = of_code (Atomic.get state)
let reset () = Atomic.set state 0
