(** A supervised worker pool over OCaml domains.

    [run ~jobs ~queue ~handle ~on_crash ()] spawns [jobs] worker
    domains (or runs the loop inline when [jobs <= 1]), each popping
    requests from [queue] and running [handle] on them, and blocks
    until the queue is drained and every worker has exited.

    {b Supervision.} [handle] owns ordinary failure (retry, degrade,
    structured error results) and is expected not to raise. An
    exception that {e does} escape it — a bug, or the armed
    ["service/worker"] fault — is a {e worker crash}: the supervising
    trampoline reports it via [on_crash], re-admits the in-flight
    request on the queue's urgent lane (it was already past admission
    control, so it must not be shed or lost), and respawns the worker
    loop in place with fresh state. If the re-admission loses the race
    with a closing, drained queue, [on_crash] sees [c_requeued =
    false] and owns accounting for the request.

    {b Poison requests.} A request that crashes {e every} time it is
    handled would crash/requeue forever; after
    [max_crashes_per_request] crashes (default
    {!default_max_crashes_per_request}) it is abandoned instead —
    [on_crash] sees [c_requeued = false] and owns accounting for it.
    Nothing loops unboundedly.

    [on_crash] is called from the crashing worker's domain; implement
    it thread-safely. *)

type 'a crash = {
  c_request : 'a;
  c_worker : int;  (** Worker index, [0 .. jobs-1]. *)
  c_exn : string;  (** [Printexc.to_string] of what escaped. *)
  c_respawn : int;  (** How many times this worker has crashed, ≥ 1. *)
  c_requeued : bool;
      (** The request went back on the urgent lane; [false] if the
          queue had already closed and drained, or the request hit
          its crash cap (a poison request). *)
}

val default_max_crashes_per_request : int

val run :
  ?max_crashes_per_request:int ->
  jobs:int ->
  queue:'a Workqueue.t ->
  handle:(worker:int -> 'a -> unit) ->
  on_crash:('a crash -> unit) ->
  unit ->
  unit

(** Worker crashes (respawns) since process start — the observability
    counter the batch report and tests read. *)
val respawns : unit -> int

val reset_respawns : unit -> unit
