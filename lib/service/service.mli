(** The fault-tolerant compile service: [fjc batch] / [fjc serve].

    Each request is one source file compiled under an explicit
    per-compilation context ({!Fj_core.Context}): its own unique
    supply, its own collectors — so identical inputs produce
    byte-identical Core, tick counts, and decision ledgers at any
    [--jobs] level, cold or warm cache.

    {b Failure taxonomy.} A {e permanent} failure (unreadable file,
    parse error, ill-typed program) is a structured rejection,
    immediately. A {e transient} failure (deadline expiry, an injected
    fault, a crashing optimizer pass under [Strict]) is retried with
    deterministic jittered exponential backoff; when a rung's attempts
    are exhausted the request {e degrades}: the full requested
    pipeline, then the [Baseline] pass set, then parse+typecheck only
    — each step a recorded {!failure}. A worker that crashes outright
    is the supervisor's problem ({!Supervisor}): respawn, requeue,
    rerun. Nothing hangs: overload is shed at admission
    ({!Workqueue}), deadlines are watchdogged ({!Budget}), and every
    admitted request ends in exactly one {!outcome}. *)

type rung = Full | Degraded | Check_only

val rung_name : rung -> string

(** One absorbed transient failure. *)
type failure = {
  f_rung : string;
  f_attempt : int;  (** 0-based attempt index within the rung. *)
  f_cause : string;  (** ["deadline" | "injected" | "lint" | "exn" | "worker-crash"]. *)
  f_detail : string;
  f_backoff_ms : float;  (** Backoff slept after this failure. *)
}

val failure_json : failure -> Fj_core.Telemetry.Json.t

(** A successful compilation (possibly degraded). [a_output] is the
    round-trippable Sexp of the final Core — with [a_ticks],
    [a_decisions], and [a_incidents], exactly the deterministic
    fields the [.meta.json] files carry. *)
type attempt_ok = {
  a_rung : rung;
  a_output : string;
  a_output_size : int;
  a_ticks : (string * int) list;
  a_decisions : Fj_core.Decision.event list;
  a_incidents : Fj_core.Guard.incident list;
}

type status =
  | Compiled of attempt_ok
  | Rejected of { kind : string; detail : string }  (** Permanent. *)
  | Exhausted of { last : string }
      (** Every rung failed every attempt — still a structured result. *)
  | Shed  (** Refused at admission: the queue was full. *)
  | Dropped of { reason : string }  (** Abandoned by a shutdown drain. *)

val status_name : status -> string

type outcome = {
  id : string;
  path : string;
  status : status;
  failures : failure list;  (** Oldest first. *)
  ms : float;  (** Wall clock (not deterministic; kept out of meta). *)
}

type config = {
  jobs : int;
  queue_capacity : int;
  attempts_per_rung : int;  (** ≥ 1. *)
  backoff_base_ms : float;
  backoff_max_ms : float;
  seed : int;  (** Determinises the backoff jitter. *)
  budget : Budget.spec;
  pipeline : Fj_core.Pipeline.config;
      (** Template for the [Full] rung; [limits], [datacons] and
          [cache] are overridden per request. *)
  no_prelude : bool;
  cache : Cache.t option;
  isolate : bool;  (** Fork one child process per attempt. *)
}

val default_config : unit -> config

(** Deterministic jittered exponential backoff:
    [min max_ms (base * 2^attempt * (1 + jitter))] with jitter in
    [[0, 0.5)] drawn from a hash of [(seed, id, rung, attempt)] — two
    runs with the same seed back off identically; two requests with
    the same seed do not stampede in lockstep. *)
val backoff_ms :
  base_ms:float ->
  max_ms:float ->
  seed:int ->
  id:string ->
  rung:string ->
  attempt:int ->
  float

(** The cache fingerprint for a rung of this configuration: every
    flag that can change what a pass produces. *)
val fingerprint : config -> rung -> string

(** Run one request through the retry/degrade ladder on the calling
    domain. Never raises — except an armed ["service/worker"] fault,
    which escapes {e deliberately} so the supervisor's crash path is
    exercised. *)
val process_one : config -> id:string -> path:string -> outcome

type batch = {
  b_outcomes : outcome list;  (** Sorted by id; one per source. *)
  b_respawns : int;  (** Worker crashes absorbed by the supervisor. *)
  b_wall_ms : float;
  b_shutdown : Shutdown.reason option;
      (** A drain was triggered mid-batch by SIGINT/SIGTERM. *)
}

(** Compile a batch of [(id, path)] sources. Admission is performed
    up front (so the shed set depends only on capacity and input
    order, not scheduling), then [jobs] supervised workers drain the
    queue. Polls {!Shutdown.requested}: after a signal, in-flight
    requests finish, the rest drain as [Dropped], and partial results
    are still returned. *)
val run_batch : config -> (string * string) list -> batch

(** Write a batch's artifacts under [dir]: per-request [<id>.sexp] and
    [<id>.meta.json] (deterministic fields only — byte-comparable
    across [--jobs] levels and cold/warm cache), plus [results.json]
    ([fj-batch/1]: rows, cache stats, respawns, wall-clock). *)
val write_batch : config -> dir:string -> batch -> unit

(** The [results.json] document. *)
val batch_json : config -> batch -> Fj_core.Telemetry.Json.t

(** The batch exit code: shutdown code (130/143) if a drain was
    triggered, else 3 if anything was shed, else 1 if anything was
    rejected/exhausted/dropped, else 0. *)
val batch_exit_code : batch -> int

(** A filesystem path squashed to a filename-safe request id
    (anything outside [[A-Za-z0-9._-]] becomes ['_']). *)
val sanitize_id : string -> string

(** [serve cfg ~input ~output] runs the newline-delimited request
    protocol: each request line is [PATH] or [ID\tPATH]; each response
    line is one JSON object [{id, status, rung?, output?, error?,
    detail?}] (responses may interleave across requests; match on
    [id]). Returns on EOF or shutdown signal, after draining. *)
val serve :
  config -> input:in_channel -> output:out_channel -> Shutdown.reason option

(** Accept loop on a Unix-domain socket, one client at a time, same
    protocol as {!serve}. Returns on shutdown signal. *)
val serve_socket : config -> path:string -> Shutdown.reason option
