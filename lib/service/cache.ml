(* Content-addressed pass cache with integrity verification.
   See cache.mli. *)

open Fj_core

let version = "fj-cache/1"

type t = {
  root : string;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable quarantined : int;
}

type stats = { hits : int; misses : int; stores : int; quarantined : int }

let objects_dir t = Filename.concat t.root "objects"
let quarantine_dir t = Filename.concat t.root "quarantine"
let tmp_dir t = Filename.concat t.root "tmp"

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let create ~dir () =
  let t =
    { root = dir; lock = Mutex.create (); hits = 0; misses = 0; stores = 0;
      quarantined = 0 }
  in
  mkdir_p (objects_dir t);
  mkdir_p (quarantine_dir t);
  mkdir_p (tmp_dir t);
  t

(* --- keying ------------------------------------------------------- *)

let key ~fingerprint ~pass ~supply ~input_sexp =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ version; fingerprint; pass; string_of_int supply; input_sexp ]))

(* objects/ab/cdef... — the usual two-level fan-out so directory
   listings stay manageable on large corpora. *)
let entry_path t k =
  Filename.concat (objects_dir t) (Filename.concat (String.sub k 0 2) (String.sub k 2 (String.length k - 2)))

(* --- entry encoding ----------------------------------------------- *)

let ticks_json l =
  Telemetry.Json.Obj (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) l)

let payload_of (cp : Pipeline.cached_pass) =
  Telemetry.Json.(
    to_string
      (Obj
         [
           ("v", Str version);
           ("output", Str (Sexp.write cp.Pipeline.cp_output));
           ("ident_after", Int cp.Pipeline.cp_ident_after);
           ("ticks", ticks_json cp.Pipeline.cp_ticks);
           ( "decisions",
             Arr (List.map Decision.event_json cp.Pipeline.cp_decisions) );
         ]))

(* Decode a verified payload; [None] on any shape surprise (treated as
   corruption by the caller). *)
let payload_to ~datacons s : Pipeline.cached_pass option =
  match Telemetry.Json.parse s with
  | Error _ -> None
  | Ok (Telemetry.Json.Obj fields) -> (
      let open Telemetry.Json in
      let str k =
        match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None
      in
      let int k =
        match List.assoc_opt k fields with Some (Int n) -> Some n | _ -> None
      in
      match (str "v", str "output", int "ident_after") with
      | Some v, Some out, Some ident_after when String.equal v version -> (
          let ticks =
            match List.assoc_opt "ticks" fields with
            | Some (Obj kvs) ->
                Some
                  (List.filter_map
                     (function k, Int n -> Some (k, n) | _ -> None)
                     kvs)
            | _ -> None
          in
          let decisions =
            match List.assoc_opt "decisions" fields with
            | Some (Arr es) ->
                let ds = List.filter_map Decision.event_of_json es in
                if List.length ds = List.length es then Some ds else None
            | _ -> None
          in
          match (ticks, decisions) with
          | Some cp_ticks, Some cp_decisions -> (
              match Sexp.read datacons out with
              | exception _ -> None
              | cp_output ->
                  Some
                    {
                      Pipeline.cp_output;
                      cp_ident_after = ident_after;
                      cp_ticks;
                      cp_decisions;
                    })
          | _ -> None)
      | _ -> None)
  | Ok _ -> None

(* --- disk --------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publish: write to a private temp file, then rename into
   place. Readers see either no entry or a complete one. *)
let write_entry t path content =
  mkdir_p (Filename.dirname path);
  let tmp =
    Filename.concat (tmp_dir t)
      (Printf.sprintf "%d.%d.%s" (Unix.getpid ())
         (Domain.self () :> int)
         (Filename.basename path))
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let quarantine t path =
  let dest = Filename.concat (quarantine_dir t) (Filename.basename path) in
  (try Sys.rename path dest
   with Sys_error _ -> (* lost a race with another quarantining domain *) ());
  Mutex.protect t.lock (fun () -> t.quarantined <- t.quarantined + 1)

(* --- the Pipeline hook -------------------------------------------- *)

(* Serializing the input tree is the dominant cost of a cache probe,
   and every probe is followed by a store of the *same* tree on a
   miss — memoize the last serialization per domain (physical
   equality, so a rewritten tree never reuses a stale string). *)
let last_input_sexp : (Syntax.expr * string) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let input_sexp_of input =
  let slot = Domain.DLS.get last_input_sexp in
  match !slot with
  | Some (e, s) when e == input -> s
  | _ ->
      let s = Sexp.write input in
      slot := Some (input, s);
      s

let lookup t ~fingerprint ~datacons ~pass ~supply ~input =
  let input_sexp = input_sexp_of input in
  let k = key ~fingerprint ~pass ~supply ~input_sexp in
  let path = entry_path t k in
  let miss () = Mutex.protect t.lock (fun () -> t.misses <- t.misses + 1) in
  match read_file path with
  | exception Sys_error _ ->
      miss ();
      None
  | content -> (
      let verified =
        match String.index_opt content '\n' with
        | None -> None
        | Some i ->
            let sum = String.sub content 0 i in
            let payload =
              String.sub content (i + 1) (String.length content - i - 1)
            in
            if String.equal sum (Digest.to_hex (Digest.string payload)) then
              payload_to ~datacons payload
            else None
      in
      match verified with
      | None ->
          (* Truncated, bit-flipped, or unparseable: set the entry
             aside for the post-mortem and recompute. Never serve. *)
          quarantine t path;
          miss ();
          None
      | Some cp ->
          Mutex.protect t.lock (fun () -> t.hits <- t.hits + 1);
          Some cp)

let store t ~fingerprint ~pass ~supply ~input cp =
  let input_sexp = input_sexp_of input in
  let k = key ~fingerprint ~pass ~supply ~input_sexp in
  let path = entry_path t k in
  if not (Sys.file_exists path) then begin
    let clean = payload_of cp in
    (* The checksum is of the *clean* payload: the "service/cache"
       fault corrupts the bytes on their way to disk, and the read
       path's re-hash must catch it. *)
    let sum = Digest.to_hex (Digest.string clean) in
    let payload =
      match Fault.trigger "service/cache" with
      | Some _ ->
          Bytes.unsafe_to_string
            (let b = Bytes.of_string clean in
             if Bytes.length b > 0 then
               Bytes.set b (Bytes.length b / 2) '\xff';
             b)
      | None -> clean
    in
    let content = sum ^ "\n" ^ payload in
    write_entry t path content;
    Mutex.protect t.lock (fun () -> t.stores <- t.stores + 1)
  end

let pass_cache t ~fingerprint ~datacons =
  {
    Pipeline.cache_lookup =
      (fun ~pass ~supply ~input -> lookup t ~fingerprint ~datacons ~pass ~supply ~input);
    cache_store =
      (fun ~pass ~supply ~input cp -> store t ~fingerprint ~pass ~supply ~input cp);
  }

(* --- stats -------------------------------------------------------- *)

let stats t =
  Mutex.protect t.lock (fun () ->
      { hits = t.hits; misses = t.misses; stores = t.stores;
        quarantined = t.quarantined })

let hit_rate t =
  let s = stats t in
  if s.hits + s.misses = 0 then 0.0
  else float_of_int s.hits /. float_of_int (s.hits + s.misses)

let stats_json t =
  let s = stats t in
  Telemetry.Json.(
    Obj
      [
        ("hits", Int s.hits);
        ("misses", Int s.misses);
        ("stores", Int s.stores);
        ("quarantined", Int s.quarantined);
        ("hit_rate", Float (hit_rate t));
      ])

let quarantine_entries t =
  let dir = quarantine_dir t in
  if Sys.file_exists dir then
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.map (Filename.concat dir)
  else []
