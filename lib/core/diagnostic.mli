(** Structured static-analysis diagnostics — the currency of
    [fjc check] and the {!Absint} clients.

    A diagnostic names the {e check} that produced it (a stable slug
    like ["jump-arity"] or ["missed-constant-fold"]), a severity, the
    {e site} it is anchored to (an {!Ident.site} provenance label, the
    same binder name hints the profiler and the decision ledger use,
    or ["<top>"] for the program spine), and a human message. A
    missed-optimization diagnostic additionally carries the pipeline
    pass that considered — and declined — the rewrite, together with
    the ledger reason it gave, so every "the analysis can prove this,
    why didn't you?" finding is answerable from the diagnostic alone.

    The JSON form is one element of the [fj-check/1] schema and is
    round-trippable: {!of_json} inverts {!to_json} exactly. *)

type severity = Error | Warning

val severity_name : severity -> string

type t = {
  d_check : string;  (** Stable check slug, e.g. ["jump-arity"]. *)
  d_severity : severity;
  d_site : string;  (** {!Ident.site} label, or ["<top>"]. *)
  d_message : string;
  d_pass : string option;
      (** Missed-opt only: the pipeline pass that declined the
          rewrite, e.g. ["simplify"] — or [None] when no pass ever
          considered the site. *)
  d_reason : string option;
      (** Missed-opt only: the ledger's structured refusal, rendered
          ({!Decision.pp_reason}), e.g. ["size 74 > threshold 60"]. *)
}

(** [error check ~site msg] / [warning check ~site msg]. *)
val error : string -> site:string -> string -> t

val warning : ?pass:string -> ?reason:string -> string -> site:string -> string -> t

val is_error : t -> bool

(** ["error[jump-arity] at j: ..."]. *)
val pp : Format.formatter -> t -> unit

(** [{check, severity, site, message, pass?, reason?}]. *)
val to_json : t -> Telemetry.Json.t

(** Inverse of {!to_json}; [Error] names the offending field. *)
val of_json : Telemetry.Json.t -> (t, string) result

(** Severity split: [(errors, warnings)]. *)
val count : t list -> int * int
