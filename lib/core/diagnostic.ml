(** Structured static-analysis diagnostics — see the interface. *)

type severity = Error | Warning

let severity_name = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

type t = {
  d_check : string;
  d_severity : severity;
  d_site : string;
  d_message : string;
  d_pass : string option;
  d_reason : string option;
}

let error check ~site message =
  {
    d_check = check;
    d_severity = Error;
    d_site = site;
    d_message = message;
    d_pass = None;
    d_reason = None;
  }

let warning ?pass ?reason check ~site message =
  {
    d_check = check;
    d_severity = Warning;
    d_site = site;
    d_message = message;
    d_pass = pass;
    d_reason = reason;
  }

let is_error d = d.d_severity = Error

let pp ppf d =
  Fmt.pf ppf "%s[%s] at %s: %s"
    (severity_name d.d_severity)
    d.d_check d.d_site d.d_message;
  match (d.d_pass, d.d_reason) with
  | Some p, Some r -> Fmt.pf ppf " (%s declined: %s)" p r
  | Some p, None -> Fmt.pf ppf " (%s declined)" p
  | None, _ -> ()

let to_json d =
  Telemetry.Json.(
    Obj
      ([
         ("check", Str d.d_check);
         ("severity", Str (severity_name d.d_severity));
         ("site", Str d.d_site);
         ("message", Str d.d_message);
       ]
      @ (match d.d_pass with Some p -> [ ("pass", Str p) ] | None -> [])
      @
      match d.d_reason with Some r -> [ ("reason", Str r) ] | None -> []))

let of_json (j : Telemetry.Json.t) : (t, string) result =
  match j with
  | Telemetry.Json.Obj fields ->
      let str name =
        match List.assoc_opt name fields with
        | Some (Telemetry.Json.Str s) -> Ok s
        | Some _ -> Error (Fmt.str "field %S is not a string" name)
        | None -> Error (Fmt.str "missing field %S" name)
      in
      let opt_str name =
        match List.assoc_opt name fields with
        | Some (Telemetry.Json.Str s) -> Ok (Some s)
        | Some _ -> Error (Fmt.str "field %S is not a string" name)
        | None -> Ok None
      in
      let ( let* ) = Result.bind in
      let* check = str "check" in
      let* sev = str "severity" in
      let* severity =
        match severity_of_string sev with
        | Some s -> Ok s
        | None -> Error (Fmt.str "unknown severity %S" sev)
      in
      let* site = str "site" in
      let* message = str "message" in
      let* pass = opt_str "pass" in
      let* reason = opt_str "reason" in
      Ok
        {
          d_check = check;
          d_severity = severity;
          d_site = site;
          d_message = message;
          d_pass = pass;
          d_reason = reason;
        }
  | _ -> Error "diagnostic is not an object"

let count ds =
  List.fold_left
    (fun (e, w) d ->
      match d.d_severity with Error -> (e + 1, w) | Warning -> (e, w + 1))
    (0, 0) ds
