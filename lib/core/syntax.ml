(** Abstract syntax of System F_J terms (Fig. 1 of the paper).

    The term language is System F with datatypes, [let] (possibly
    recursive), [case], and the paper's two new constructs:

    - [Join (jb, body)] — a join-point binding [join jb in body];
    - [Jump (j, phis, args, ty)] — a jump [jump j phis args ty], where
      [ty] is the type the whole jump expression claims (rule JUMP lets
      a jump claim any type, since it never returns).

    Following the GHC implementation (Sec. 7), a join point's binder is
    an ordinary {!var} whose type is [forall a. sigmas -> forall r. r];
    the [Join]/[Jump] constructors are what distinguish it
    syntactically.

    Beyond the paper we add literals and saturated primops (see
    DESIGN.md): they are orthogonal to join points and required for
    realistic benchmarks. *)

(** A term-variable binder: an identifier together with its type. *)
type var = { v_name : Ident.t; v_ty : Types.t }

type expr =
  | Var of var  (** Occurrence of a term variable. *)
  | Lit of Literal.t  (** Unboxed literal. *)
  | Con of Datacon.t * Types.t list * expr list
      (** Saturated constructor application [K phis es]. *)
  | Prim of Primop.t * expr list  (** Saturated primitive operation. *)
  | App of expr * expr  (** Application [e u]. *)
  | TyApp of expr * Types.t  (** Type instantiation [e phi]. *)
  | Lam of var * expr  (** Value abstraction [\x:sigma. e]. *)
  | TyLam of Ident.t * expr  (** Type abstraction [/\a. e]. *)
  | Let of bind * expr  (** Value binding [let vb in e]. *)
  | Case of expr * alt list  (** Case analysis [case e of alts]. *)
  | Join of jbind * expr  (** Join-point binding [join jb in u]. *)
  | Jump of var * Types.t list * expr list * Types.t
      (** [jump j phis es tau]: invoke join point [j]. *)

and bind =
  | NonRec of var * expr  (** [x : tau = e] *)
  | Strict of var * expr
      (** [let! x : tau = e] — a demand-analysis-certified strict
          binding: the right-hand side is evaluated to WHNF before the
          body runs. Introduced by {!Demand} where the binder is
          provably demanded (GHC models these as cases with binders;
          §7 of the paper discusses strictness analysis for join
          points). An unboxed-literal result binds with {b no heap
          allocation} — this is what keeps loop accumulators free. *)
  | Rec of (var * expr) list  (** [rec x_i : tau_i = e_i] *)

(** One join-point definition [j tyvars params = rhs]. The binder
    [j_var]'s type is always [Types.join_point_ty] of the parameters. *)
and join_defn = {
  j_var : var;
  j_tyvars : Ident.t list;
  j_params : var list;
  j_rhs : expr;
}

and jbind = JNonRec of join_defn | JRec of join_defn list

and alt = { alt_pat : pat; alt_rhs : expr }

and pat =
  | PCon of Datacon.t * var list  (** [K x1 ... xn -> rhs] *)
  | PLit of Literal.t  (** Literal pattern (unboxed match). *)
  | PDefault  (** Wildcard [DEFAULT]; matches anything. *)

(* ------------------------------------------------------------------ *)
(* Smart constructors and helpers                                      *)
(* ------------------------------------------------------------------ *)

let mk_var name ty = { v_name = Ident.fresh name; v_ty = ty }
let var_occ v = Var v

(** Refresh a binder's identifier, keeping its type. *)
let refresh_var v = { v with v_name = Ident.refresh v.v_name }

let var_equal a b = Ident.equal a.v_name b.v_name

(** [apps f es] builds the curried application [f e1 ... en]. *)
let apps f es = List.fold_left (fun acc e -> App (acc, e)) f es

(** [ty_apps f phis] builds [f phi1 ... phin]. *)
let ty_apps f phis = List.fold_left (fun acc t -> TyApp (acc, t)) f phis

(** [lams xs e] builds [\x1 ... xn. e]. *)
let lams xs e = List.fold_right (fun x acc -> Lam (x, acc)) xs e

(** [ty_lams as e] builds [/\a1 ... an. e]. *)
let ty_lams tvs e = List.fold_right (fun a acc -> TyLam (a, acc)) tvs e

(** Fully decompose an application head: returns the head expression,
    and the spine of type and value arguments in application order. *)
let collect_args e =
  let rec go e (args : [ `Ty of Types.t | `Val of expr ] list) =
    match e with
    | App (f, a) -> go f (`Val a :: args)
    | TyApp (f, t) -> go f (`Ty t :: args)
    | _ -> (e, args)
  in
  go e []

(** Strip leading value and type lambdas, in order. *)
let collect_binders e =
  let rec go acc = function
    | Lam (x, b) -> go (`Val x :: acc) b
    | TyLam (a, b) -> go (`Ty a :: acc) b
    | e -> (List.rev acc, e)
  in
  go [] e

let join_defns = function JNonRec d -> [ d ] | JRec ds -> ds
let bind_pairs = function
  | NonRec (x, e) | Strict (x, e) -> [ (x, e) ]
  | Rec xs -> xs
let binders_of_bind b = List.map fst (bind_pairs b)
let binders_of_jbind jb = List.map (fun d -> d.j_var) (join_defns jb)

(** Variables bound by a pattern. *)
let pat_binders = function PCon (_, xs) -> xs | PLit _ | PDefault -> []

(** A fresh join-point binder for the given type/value parameters. *)
let mk_join_var name tyvars (params : var list) =
  mk_var name
    (Types.join_point_ty tyvars (List.map (fun p -> p.v_ty) params))

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)
(* ------------------------------------------------------------------ *)

(** Answers [A] of Fig. 1: lambdas, type lambdas and constructor
    applications to values. Literals are also answers. *)
let rec is_answer = function
  | Lam _ | TyLam _ | Lit _ -> true
  | Con (_, _, args) -> List.for_all is_answer args
  | Var _ -> false
  | _ -> false

(** Values for the purpose of the [inline] axiom: anything whose
    evaluation is complete (a WHNF). Variable occurrences are treated as
    trivial rather than values. *)
let is_whnf = function Lam _ | TyLam _ | Lit _ | Con _ -> true | _ -> false

(** Trivial expressions: duplicating them costs nothing at runtime. *)
let rec is_trivial = function
  | Var _ | Lit _ -> true
  | TyApp (e, _) -> is_trivial e
  | Con (_, _, []) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Size                                                                *)
(* ------------------------------------------------------------------ *)

(** A crude size measure used by inlining heuristics: the number of
    syntax nodes, ignoring types. *)
let rec size e =
  match e with
  | Var _ | Lit _ -> 1
  | Con (_, _, es) | Prim (_, es) -> 1 + List.fold_left (fun n e -> n + size e) 0 es
  | App (f, a) -> size f + size a
  | TyApp (f, _) -> size f
  | Lam (_, b) -> 1 + size b
  | TyLam (_, b) -> size b
  | Let (b, body) ->
      1 + size body
      + List.fold_left (fun n (_, e) -> n + size e) 0 (bind_pairs b)
  | Case (scrut, alts) ->
      1 + size scrut
      + List.fold_left (fun n a -> n + 1 + size a.alt_rhs) 0 alts
  | Join (jb, body) ->
      1 + size body
      + List.fold_left (fun n d -> n + size d.j_rhs) 0 (join_defns jb)
  | Jump (_, _, es, _) ->
      1 + List.fold_left (fun n e -> n + size e) 0 es

(** Number of join-point definitions in the term (each member of a
    recursive group counts once) — a telemetry measure. *)
let rec count_joins e =
  match e with
  | Var _ | Lit _ -> 0
  | Con (_, _, es) | Prim (_, es) | Jump (_, _, es, _) ->
      List.fold_left (fun n e -> n + count_joins e) 0 es
  | App (f, a) -> count_joins f + count_joins a
  | TyApp (f, _) -> count_joins f
  | Lam (_, b) | TyLam (_, b) -> count_joins b
  | Let (b, body) ->
      count_joins body
      + List.fold_left (fun n (_, e) -> n + count_joins e) 0 (bind_pairs b)
  | Case (scrut, alts) ->
      count_joins scrut
      + List.fold_left (fun n a -> n + count_joins a.alt_rhs) 0 alts
  | Join (jb, body) ->
      let ds = join_defns jb in
      List.length ds + count_joins body
      + List.fold_left (fun n d -> n + count_joins d.j_rhs) 0 ds

(* ------------------------------------------------------------------ *)
(* Tree-shape measure                                                  *)
(* ------------------------------------------------------------------ *)

type measure = { m_nodes : int; m_depth : int; m_heap_words : int }

(** One traversal computing node count, maximum nesting depth, and an
    estimate of the OCaml heap words the tree occupies. The word model
    is the runtime's: a block with [k] fields costs [k + 1] words
    (header included), a list of [n] elements adds [n] 3-word cons
    cells, a binder ({!var} record) is a 3-word block. Types hanging
    off the tree are counted as the single pointer word their field
    occupies (they are heavily shared); the estimate is consistent
    across passes, which is what pass-boundary deltas need. *)
let measure e =
  let block k = 1 + k in
  let conses n = 3 * n in
  let var_w = block 2 in
  let max_d = List.fold_left (fun acc (_, d, _) -> max acc d) 0 in
  let sum_n = List.fold_left (fun acc (n, _, _) -> acc + n) 0 in
  let sum_w = List.fold_left (fun acc (_, _, w) -> acc + w) 0 in
  let rec go e =
    match e with
    | Var _ -> (1, 1, block 1 + var_w)
    | Lit _ -> (1, 1, block 1 + block 1)
    | Con (_, tys, es) ->
        let ms = List.map go es in
        ( 1 + sum_n ms,
          1 + max_d ms,
          block 3 + conses (List.length tys + List.length es) + sum_w ms )
    | Prim (_, es) ->
        let ms = List.map go es in
        (1 + sum_n ms, 1 + max_d ms, block 2 + conses (List.length es) + sum_w ms)
    | App (f, a) ->
        let ms = [ go f; go a ] in
        (1 + sum_n ms, 1 + max_d ms, block 2 + sum_w ms)
    | TyApp (f, _) ->
        let n, d, w = go f in
        (1 + n, 1 + d, block 2 + w)
    | Lam (_, b) ->
        let n, d, w = go b in
        (1 + n, 1 + d, block 2 + var_w + w)
    | TyLam (_, b) ->
        let n, d, w = go b in
        (1 + n, 1 + d, block 2 + w)
    | Let (b, body) ->
        let pairs = bind_pairs b in
        let ms = go body :: List.map (fun (_, rhs) -> go rhs) pairs in
        ( 1 + sum_n ms,
          1 + max_d ms,
          block 2
          + (List.length pairs * (var_w + conses 1 + block 2))
          + sum_w ms )
    | Case (scrut, alts) ->
        let pat_w = function
          | PCon (_, xs) -> block 2 + List.length xs * (var_w + conses 1)
          | PLit _ -> block 1 + block 1
          | PDefault -> 0
        in
        let ms = go scrut :: List.map (fun a -> go a.alt_rhs) alts in
        let alts_w =
          List.fold_left
            (fun acc a -> acc + conses 1 + block 2 + pat_w a.alt_pat)
            0 alts
        in
        (1 + sum_n ms, 1 + max_d ms, block 2 + alts_w + sum_w ms)
    | Join (jb, body) ->
        let ds = join_defns jb in
        let ms = go body :: List.map (fun d -> go d.j_rhs) ds in
        let defn_w =
          List.fold_left
            (fun acc d ->
              acc + block 4 + var_w
              + conses (List.length d.j_tyvars)
              + (List.length d.j_params * (var_w + conses 1)))
            0 ds
        in
        (1 + sum_n ms, 1 + max_d ms, block 2 + defn_w + sum_w ms)
    | Jump (_, tys, es, _) ->
        let ms = List.map go es in
        ( 1 + sum_n ms,
          1 + max_d ms,
          block 4 + var_w
          + conses (List.length tys + List.length es)
          + sum_w ms )
  in
  let m_nodes, m_depth, m_heap_words = go e in
  { m_nodes; m_depth; m_heap_words }

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)
(* ------------------------------------------------------------------ *)

(** Free {e term} variables of an expression — including free labels
    (join-point names), which live in the same namespace. *)
let free_vars e =
  let rec go bound acc e =
    match e with
    | Var v ->
        if Ident.Set.mem v.v_name bound then acc
        else Ident.Set.add v.v_name acc
    | Jump (j, _, es, _) ->
        let acc =
          if Ident.Set.mem j.v_name bound then acc
          else Ident.Set.add j.v_name acc
        in
        List.fold_left (go bound) acc es
    | Lit _ -> acc
    | Con (_, _, es) | Prim (_, es) -> List.fold_left (go bound) acc es
    | App (f, a) -> go bound (go bound acc f) a
    | TyApp (f, _) -> go bound acc f
    | Lam (x, b) -> go (Ident.Set.add x.v_name bound) acc b
    | TyLam (_, b) -> go bound acc b
    | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
        let acc = go bound acc rhs in
        go (Ident.Set.add x.v_name bound) acc body
    | Let (Rec pairs, body) ->
        let bound' =
          List.fold_left
            (fun s (x, _) -> Ident.Set.add x.v_name s)
            bound pairs
        in
        let acc =
          List.fold_left (fun acc (_, rhs) -> go bound' acc rhs) acc pairs
        in
        go bound' acc body
    | Case (scrut, alts) ->
        let acc = go bound acc scrut in
        List.fold_left
          (fun acc { alt_pat; alt_rhs } ->
            let bound' =
              List.fold_left
                (fun s x -> Ident.Set.add x.v_name s)
                bound (pat_binders alt_pat)
            in
            go bound' acc alt_rhs)
          acc alts
    | Join (JNonRec d, body) ->
        let acc = go_defn bound acc d in
        go (Ident.Set.add d.j_var.v_name bound) acc body
    | Join (JRec ds, body) ->
        let bound' =
          List.fold_left
            (fun s d -> Ident.Set.add d.j_var.v_name s)
            bound ds
        in
        let acc = List.fold_left (go_defn bound') acc ds in
        go bound' acc body
  and go_defn bound acc d =
    let bound' =
      List.fold_left
        (fun s p -> Ident.Set.add p.v_name s)
        bound d.j_params
    in
    go bound' acc d.j_rhs
  in
  go Ident.Set.empty Ident.Set.empty e

(** Free type variables (needed by the floating passes). *)
let free_ty_vars e =
  let add_ty bound acc ty =
    Ident.Set.union acc (Ident.Set.diff (Types.free_vars ty) bound)
  in
  let add_var bound acc (v : var) = add_ty bound acc v.v_ty in
  let rec go bound acc e =
    match e with
    | Var v -> add_var bound acc v
    | Lit _ -> acc
    | Con (_, tys, es) ->
        let acc = List.fold_left (fun a t -> add_ty bound a t) acc tys in
        List.fold_left (go bound) acc es
    | Prim (_, es) -> List.fold_left (go bound) acc es
    | App (f, a) -> go bound (go bound acc f) a
    | TyApp (f, t) -> go bound (add_ty bound acc t) f
    | Lam (x, b) -> go bound (add_var bound acc x) b
    | TyLam (a, b) -> go (Ident.Set.add a bound) acc b
    | Let (b, body) ->
        let acc =
          List.fold_left
            (fun acc (x, rhs) -> go bound (add_var bound acc x) rhs)
            acc (bind_pairs b)
        in
        go bound acc body
    | Case (scrut, alts) ->
        let acc = go bound acc scrut in
        List.fold_left
          (fun acc { alt_pat; alt_rhs } ->
            let acc =
              List.fold_left (add_var bound) acc (pat_binders alt_pat)
            in
            go bound acc alt_rhs)
          acc alts
    | Join (jb, body) ->
        let acc =
          List.fold_left
            (fun acc d ->
              let bound' =
                List.fold_left (fun s a -> Ident.Set.add a s) bound d.j_tyvars
              in
              let acc =
                List.fold_left (add_var bound') acc d.j_params
              in
              go bound' acc d.j_rhs)
            acc (join_defns jb)
        in
        go bound acc body
    | Jump (_, tys, es, ty) ->
        let acc = List.fold_left (add_ty bound) acc tys in
        let acc = add_ty bound acc ty in
        List.fold_left (go bound) acc es
  in
  go Ident.Set.empty Ident.Set.empty e

(** Does variable [x] occur free in [e]? *)
let occurs x e = Ident.Set.mem x (free_vars e)

(* ------------------------------------------------------------------ *)
(* The type of a well-typed expression                                 *)
(* ------------------------------------------------------------------ *)

exception Ill_typed of string

(** [ty_of e] computes the type of [e], {e assuming} [e] is well-typed
    (cf. GHC's [exprType]). Use {!Lint} to actually check typing. *)
let rec ty_of e =
  match e with
  | Var v -> v.v_ty
  | Lit l -> Literal.ty l
  | Con (dc, phis, _) -> Types.apps (Types.Con dc.tycon) phis
  | Prim (op, _) -> snd (Primop.signature op)
  | App (f, _) -> (
      match ty_of f with
      | Types.Arrow (_, res) -> res
      | t ->
          raise
            (Ill_typed
               (Fmt.str "application head has non-function type %a" Types.pp t)))
  | TyApp (f, phi) -> (
      match ty_of f with
      | Types.Forall (a, body) -> Types.subst1 a phi body
      | t ->
          raise
            (Ill_typed
               (Fmt.str "type application head has type %a" Types.pp t)))
  | Lam (x, b) -> Types.Arrow (x.v_ty, ty_of b)
  | TyLam (a, b) -> Types.Forall (a, ty_of b)
  | Let (_, body) -> ty_of body
  | Case (_, alts) -> (
      match alts with
      | [] -> raise (Ill_typed "empty case")
      | a :: _ -> ty_of a.alt_rhs)
  | Join (_, body) -> ty_of body
  | Jump (_, _, _, ty) -> ty
