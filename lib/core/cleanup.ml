(** Post-simplification cleanup: the [drop], [jdrop], and (once-used)
    [jinline] axioms applied bottom-up.

    The simplifier proper cannot inline a once-used join point in the
    same pass that absorbs the binding's evaluation context, because at
    the jump site it cannot tell which suffix of the current
    continuation belongs to the binding. After a full simplifier pass,
    however, every jump is a tail call of its binding (the pass
    normalises to commuting-normal form, Sec. 6), so inlining a
    once-used join point is a plain [jinline] + [jdrop]. Interleaving
    this cleanup between simplifier passes yields the cascade. *)

open Syntax

(* Cheap, certainly-terminating expressions (cf. GHC's
   ok-for-speculation): safe to discard or evaluate early. *)
let rec ok_for_speculation = function
  | Var _ | Lit _ -> true
  | Con (_, _, es) -> List.for_all ok_for_speculation es
  | Prim ((Primop.Div | Primop.Mod), _) -> false
  | Prim (_, es) -> List.for_all ok_for_speculation es
  | TyApp (e, _) -> ok_for_speculation e
  | Lam _ | TyLam _ -> true
  | _ -> false

let changed = ref false

let rec go (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map go es)
  | Prim (op, es) -> Prim (op, List.map go es)
  | App (f, a) -> App (go f, go a)
  | TyApp (f, t) -> TyApp (go f, t)
  | Lam (x, b) -> Lam (x, go b)
  | TyLam (a, b) -> TyLam (a, go b)
  | Let (NonRec (x, rhs), body) ->
      let body = go body in
      if occurs x.v_name body then Let (NonRec (x, go rhs), body)
      else begin
        changed := true;
        Telemetry.tick Telemetry.Drop;
        body
      end
  | Let (Strict (x, rhs), body) ->
      let body = go body in
      let rhs = go rhs in
      (* A dead strict binding may only be dropped when its right-hand
         side is certainly terminating. *)
      if occurs x.v_name body then Let (Strict (x, rhs), body)
      else if ok_for_speculation rhs then begin
        changed := true;
        Telemetry.tick Telemetry.Drop;
        body
      end
      else Let (Strict (x, rhs), body)
  | Let (Rec pairs, body) ->
      let body = go body in
      let pairs = List.map (fun (x, rhs) -> (x, go rhs)) pairs in
      let dead =
        List.for_all
          (fun ((x : var), _) ->
            (not (occurs x.v_name body))
            && List.for_all (fun (_, rhs) -> not (occurs x.v_name rhs)) pairs)
          pairs
      in
      if dead then begin
        changed := true;
        Telemetry.tick Telemetry.Drop;
        body
      end
      else Let (Rec pairs, body)
  | Case (scrut, alts) ->
      Case (go scrut, List.map (fun a -> { a with alt_rhs = go a.alt_rhs }) alts)
  | Jump (j, phis, es, ty) -> Jump (j, phis, List.map go es, ty)
  | Join (JNonRec d, body) ->
      let body = go body in
      let d = { d with j_rhs = go d.j_rhs } in
      let usage = Occur.lookup (Occur.of_expr body) d.j_var in
      if usage.count = 0 then begin
        (* jdrop *)
        changed := true;
        Telemetry.tick Telemetry.Jdrop;
        body
      end
      else if usage.count = 1 then begin
        match Axioms.substitute_jumps ~defn:d body with
        | Some body' ->
            (* jinline + jdrop *)
            changed := true;
            Telemetry.tick Telemetry.Jinline;
            Telemetry.tick Telemetry.Jdrop;
            go body'
        | None -> Join (JNonRec d, body)
      end
      else Join (JNonRec d, body)
  | Join (JRec ds, body) ->
      let body = go body in
      let ds = List.map (fun d -> { d with j_rhs = go d.j_rhs }) ds in
      let dead =
        List.for_all
          (fun (d : join_defn) ->
            (not (occurs d.j_var.v_name body))
            && List.for_all
                 (fun (d' : join_defn) -> not (occurs d.j_var.v_name d'.j_rhs))
                 ds)
          ds
      in
      if dead then begin
        changed := true;
        Telemetry.tick Telemetry.Jdrop;
        body
      end
      else Join (JRec ds, body)

(** One bottom-up cleanup pass; returns the new term and whether
    anything changed. *)
let cleanup (e : expr) : expr * bool =
  changed := false;
  let e' = go e in
  (e', !changed)
