(** Contification: inferring join points from tail-called let bindings
    (Sec. 4, Fig. 5 of the paper).

    Contified-binding counts are reported per-invocation via
    {!Telemetry} ([Contified] and [Contified_group] ticks); install a
    collector with {!Telemetry.with_counters} around the call — or use
    {!contify_counted} — to read them. There is deliberately no global
    mutable counter any more. *)

(** One bottom-up pass turning every eligible [let] into a [join]:
    every occurrence must be a saturated tail call of consistent shape,
    the right-hand side must supply matching binders, and the stripped
    body must have the scope's type (the Fig. 5 proviso). Idempotent,
    typing- and meaning-preserving. *)
val contify : Syntax.expr -> Syntax.expr

(** [contify] plus this invocation's count of contified bindings — a
    convenience for callers that are not running under a pipeline
    telemetry collector. *)
val contify_counted : Syntax.expr -> Syntax.expr * int
