(** A seeded generator of random {e well-typed} F_J programs
    (including join points, jumps, and bounded recursive loops), and a
    greedy structural shrinker — the substrate of the [fjc fuzz]
    differential harness and of the property-based test suite.

    Programs are closed, Lint-clean by construction, and total up to
    the evaluator's fuel (recursive joins loop over a strictly
    decreasing counter). Generation is a pure function of the
    {!Random.State.t} {e and} of the {!Ident} fresh-name supply:
    {!program_of_seed} pins both, so a printed seed replays to the
    byte-identical program in another process. *)

(** Generation size budget (the [n] driving the recursion); the
    default used by [fjc fuzz] and the property suite. *)
val default_size : int

(** Generate one program: a random result type, then a term of that
    type. Deterministic in the RNG state and the current {!Ident}
    supply. *)
val program : ?size:int -> Random.State.t -> Syntax.expr

(** [program_of_seed ~size seed] resets the {!Ident} fresh-name
    counter, seeds a fresh RNG with [seed], and generates — the
    reproducible entry point. {b Drop all previously generated terms
    first}: resetting the supply makes their uniques collidable. *)
val program_of_seed : ?size:int -> int -> Syntax.expr

(** [mutate st e] produces a type-preserving random mutation of a
    {e closed, well-typed} program: an integer literal regenerated
    into a small expression, or the whole program wrapped in a fresh
    binding, branch, join point, or bounded loop. The substrate of
    coverage-guided fuzzing ({!Fuzz}): an interesting seed is mutated
    rather than regenerated, so generation is steered toward the
    neighbourhood of programs that reached new coverage points.

    The result is closed and has the seed's type. {b Uniques}: fresh
    binders come from the global {!Ident} supply, so the supply must
    be beyond every unique in [e] (re-reading the program through
    {!Sexp.read} guarantees this); [mutate] never resets the
    supply. *)
val mutate : Random.State.t -> Syntax.expr -> Syntax.expr

(** Immediate shrink candidates of a program: closed subterms,
    let-elimination by substitution, case-branch selection — each no
    larger than the input. Candidates are {e not} guaranteed
    well-typed; filter with {!Lint.well_typed}. *)
val shrink : Syntax.expr -> Syntax.expr list

(** [minimize ~failing e] greedily applies {!shrink} while candidates
    keep [failing] true (callers also bake well-typedness into
    [failing]), up to [steps] rounds (default 500). Returns a local
    minimum: no candidate both shrinks it and still fails. *)
val minimize : ?steps:int -> failing:(Syntax.expr -> bool) -> Syntax.expr -> Syntax.expr
