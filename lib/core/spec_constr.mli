(** Call-pattern specialisation (SpecConstr) for recursive join points
    — the stream-fusion ingredient of Sec. 9 [21]. If every jump to a
    recursive join point passes the same data constructor in some
    position, the join point takes the fields instead and the
    constructor allocation disappears from the loop. *)

(** Run one layer of specialisation over a whole program (pipeline
    rounds peel nested constructor layers). Typing- and
    meaning-preserving. Each specialised group fires a
    {!Telemetry.Spec_constr} tick. *)
val run : Syntax.expr -> Syntax.expr
