(** Common sub-expression elimination.

    Sec. 8 of the paper argues for direct style over CPS with CSE as
    the example: "In [f (g x) (g x)], the common sub-expression is easy
    to see. But it is much harder to find in the CPS version" — where
    the two calls are sequentialised into nested continuations with
    distinct continuation variables.

    This pass is that argument made concrete: because F_J is direct
    style, CSE is a straightforward traversal with a hash of the
    expressions seen on the current path. We keep it deliberately
    simple and manifestly sound:

    - only {e pure, terminating, closed-under-scope} candidates are
      shared (applications are pure here — the language has no effects
      — but may diverge, so we only share when a {e syntactically
      equal} computation is already bound in scope: replacing work with
      a variable reference can only reduce work);
    - candidate keys are alpha-insensitive prints of the expression
      with free variables resolved to their unique names;
    - [let]- and [case]-introduced bindings extend the environment;
      lambda/join boundaries keep it (sharing across a lambda is safe:
      the binding is forced at most once under call-by-need).

    Sharing is witnessed by replacing the repeated expression with the
    earlier binder, which the Simplifier can then exploit (e.g. the
    second [g x] disappears and its allocation with it). *)

open Syntax

(* Sharing counts are reported per-invocation via Telemetry
   ([Cse_shared] ticks); see [run_counted] for a self-contained
   wrapper. *)

(* A scope-safe key: the printed form mentions binder uniques, so two
   prints are equal only if the expressions are syntactically equal up
   to (nothing — uniques are global). *)
let key_of (e : expr) : string option =
  (* Only consider interesting, non-trivial candidates. *)
  match e with
  | App _ | Prim _ | Con (_, _, _ :: _) -> Some (Pretty.to_string e)
  | _ -> None

(* Candidates must not capture: every free variable of the candidate
   must be bound at the point where the earlier binding lives. Because
   we only record bindings on the current spine (the environment is
   threaded downward and never across), any hit is in scope. *)

type env = { seen : var Stringmap.t }

let empty = { seen = Stringmap.empty }

let remember env (x : var) (rhs : expr) =
  match key_of rhs with
  | Some k when not (Stringmap.mem k env.seen) ->
      { seen = Stringmap.add k x env.seen }
  | _ -> env

let lookup env e =
  match key_of e with
  | Some k -> Stringmap.find_opt k env.seen
  | None -> None

let rec cse_expr (env : env) (e : expr) : expr =
  match lookup env e with
  | Some x ->
      Telemetry.tick Telemetry.Cse_shared;
      Decision.record ~pass:"cse" Decision.Cse ~site:(Ident.site x.v_name)
        Decision.Fired;
      Var x
  | None -> (
      match e with
      | Var _ | Lit _ -> e
      | Con (dc, phis, es) -> Con (dc, phis, List.map (cse_expr env) es)
      | Prim (op, es) -> Prim (op, List.map (cse_expr env) es)
      | App (f, a) -> App (cse_expr env f, cse_expr env a)
      | TyApp (f, t) -> TyApp (cse_expr env f, t)
      | Lam (x, b) -> Lam (x, cse_expr env b)
      | TyLam (a, b) -> TyLam (a, cse_expr env b)
      | Let (NonRec (x, rhs), body) ->
          let rhs = cse_expr env rhs in
          Let (NonRec (x, rhs), cse_expr (remember env x rhs) body)
      | Let (Strict (x, rhs), body) ->
          let rhs = cse_expr env rhs in
          Let (Strict (x, rhs), cse_expr (remember env x rhs) body)
      | Let (Rec pairs, body) ->
          Let
            ( Rec (List.map (fun (x, rhs) -> (x, cse_expr env rhs)) pairs),
              cse_expr env body )
      | Case (scrut, alts) ->
          let scrut = cse_expr env scrut in
          Case
            ( scrut,
              List.map
                (fun a -> { a with alt_rhs = cse_expr env a.alt_rhs })
                alts )
      | Join (jb, body) ->
          let jb' =
            match jb with
            | JNonRec d -> JNonRec { d with j_rhs = cse_expr env d.j_rhs }
            | JRec ds ->
                JRec
                  (List.map (fun d -> { d with j_rhs = cse_expr env d.j_rhs }) ds)
          in
          Join (jb', cse_expr env body)
      | Jump (j, phis, es, ty) -> Jump (j, phis, List.map (cse_expr env) es, ty))

(** Run CSE over a whole program. *)
let run (e : expr) : expr = Fault.point "cse/result" (cse_expr empty e)

(** [run] plus this invocation's count of shared occurrences. Forwards
    the ticks to any enclosing collector so pipeline totals still see
    them. *)
let run_counted (e : expr) : expr * int =
  let c = Telemetry.create () in
  let e' = Telemetry.with_counters c (fun () -> run e) in
  let n = Telemetry.get c Telemetry.Cse_shared in
  if n > 0 then Telemetry.tick ~n Telemetry.Cse_shared;
  (e', n)
