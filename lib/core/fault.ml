(** Fault injection — see the interface for the design. *)

type behaviour = Raise | Ill_typed | Burn_fuel | Grow

let behaviour_name = function
  | Raise -> "raise"
  | Ill_typed -> "ill-typed"
  | Burn_fuel -> "burn-fuel"
  | Grow -> "grow"

let behaviour_of_string = function
  | "raise" -> Some Raise
  | "ill-typed" -> Some Ill_typed
  | "burn-fuel" -> Some Burn_fuel
  | "grow" -> Some Grow
  | _ -> None

exception Injected of string

let pass_points =
  [
    "simplify/input";
    "simplify/result";
    "contify/result";
    "cse/result";
    "float-in/result";
    "float-out/result";
    "spec-constr/result";
  ]

(* Service-layer points, triggered via {!trigger} rather than
   {!point}: the worker loop, the cache write path, and the pass
   harness's deadline all consult them to prove the supervision /
   quarantine / watchdog machinery has teeth. *)
let service_points = [ "service/worker"; "service/cache"; "service/slow-pass" ]
let points = pass_points @ service_points

(* Armed state: behaviour plus an optional remaining-fire budget
   ([None] = unlimited). Everything under one mutex: the compile
   service arms points before spawning workers, but [trigger]/[point]
   run concurrently on every worker domain, and a budget decrement
   must be atomic or two workers could both claim the last fire. *)
type armed_state = { a_beh : behaviour; mutable a_left : int option }

let lock = Mutex.create ()
let armed_tbl : (string, armed_state) Hashtbl.t = Hashtbl.create 11
let fired_rev : string list ref = ref []
let locked f = Mutex.protect lock f
let known name = List.mem name points

let arm ?limit name b =
  if not (known name) then
    invalid_arg
      (Fmt.str "Fault.arm: unknown point %S (known: %s)" name
         (String.concat ", " points));
  locked (fun () ->
      Hashtbl.replace armed_tbl name { a_beh = b; a_left = limit })

let disarm name = locked (fun () -> Hashtbl.remove armed_tbl name)
let disarm_all () = locked (fun () -> Hashtbl.reset armed_tbl)

let armed () =
  locked (fun () ->
      List.filter_map
        (fun p ->
          Option.map (fun s -> (p, s.a_beh)) (Hashtbl.find_opt armed_tbl p))
        points)

let fired () = locked (fun () -> List.rev !fired_rev)
let reset_fired () = locked (fun () -> fired_rev := [])

let with_armed arms f =
  let saved = armed () in
  Fun.protect
    ~finally:(fun () ->
      disarm_all ();
      List.iter (fun (p, b) -> arm p b) saved)
    (fun () ->
      disarm_all ();
      reset_fired ();
      List.iter (fun (p, b) -> arm p b) arms;
      f ())

(* [POINT:BEHAVIOUR] or [POINT:BEHAVIOUR:N] (fire at most N times,
   then auto-disarm — how a drill injects a transient fault the
   retry path must absorb, rather than a permanent one it can't). *)
let parse_spec s =
  let fail msg = Error msg in
  match String.split_on_char ':' s with
  | [ _ ] | [] ->
      fail
        (Fmt.str
           "expected POINT:BEHAVIOUR[:N] (points: %s; behaviours: raise, \
            ill-typed, burn-fuel, grow)"
           (String.concat ", " points))
  | point :: beh :: rest -> (
      match behaviour_of_string beh with
      | None -> fail (Fmt.str "unknown behaviour %S" beh)
      | Some b ->
          if not (known point) then
            fail
              (Fmt.str "unknown fault point %S (known: %s)" point
                 (String.concat ", " points))
          else (
            match rest with
            | [] -> Ok (point, b, None)
            | [ n ] -> (
                match int_of_string_opt n with
                | Some n when n > 0 -> Ok (point, b, Some n)
                | _ -> fail (Fmt.str "fire limit must be a positive int: %S" n))
            | _ -> fail "expected POINT:BEHAVIOUR[:N]"))

(* The armed-behaviour claim shared by [point] and [trigger]: consult
   the table, burn one unit of the fire budget (auto-disarming at 0),
   and record the firing. *)
let claim name =
  if not (known name) then
    invalid_arg (Fmt.str "Fault.trigger: unknown point %S" name);
  locked (fun () ->
      match Hashtbl.find_opt armed_tbl name with
      | None -> None
      | Some st ->
          (match st.a_left with
          | None -> ()
          | Some 1 -> Hashtbl.remove armed_tbl name
          | Some n -> st.a_left <- Some (n - 1));
          fired_rev := name :: !fired_rev;
          Some st.a_beh)

let trigger name = claim name

(* A characteristically ill-typed tree: applying an integer literal.
   Lint rejects it at the root, whatever [e] is. *)
let corrupt (e : Syntax.expr) : Syntax.expr =
  Syntax.App (Syntax.Lit (Literal.Int 0), e)

(* A well-typed but size-exploded tree: enough freshened copies of [e],
   bound and discarded, to exceed the default size ceiling. *)
let grow (e : Syntax.expr) : Syntax.expr =
  let size = max 1 (Syntax.size e) in
  let l = Guard.default_limits in
  let limit = (l.Guard.max_growth_factor * size) + l.Guard.max_growth_slack in
  let copies = (limit / size) + 2 in
  let ty = Syntax.ty_of e in
  let rec pile n acc =
    if n <= 0 then acc
    else
      let x = Syntax.mk_var "fault_grow" ty in
      pile (n - 1) (Syntax.Let (Syntax.NonRec (x, Subst.freshen e), acc))
  in
  pile copies e

(* How long an armed [Burn_fuel] point spins when no {!Guard} budget is
   installed to cut it off: large enough to trip any realistic budget,
   small enough to terminate promptly in bare (unguarded) runs. *)
let burn_iters = 50_000_000

let point name (e : Syntax.expr) : Syntax.expr =
  match claim name with
  | None -> e
  | Some b -> (
      match b with
      | Raise -> raise (Injected name)
      | Ill_typed -> corrupt e
      | Grow -> grow e
      | Burn_fuel ->
          for _ = 1 to burn_iters do
            Guard.spend 1
          done;
          e)
