(** Fault injection — see the interface for the design. *)

type behaviour = Raise | Ill_typed | Burn_fuel | Grow

let behaviour_name = function
  | Raise -> "raise"
  | Ill_typed -> "ill-typed"
  | Burn_fuel -> "burn-fuel"
  | Grow -> "grow"

let behaviour_of_string = function
  | "raise" -> Some Raise
  | "ill-typed" -> Some Ill_typed
  | "burn-fuel" -> Some Burn_fuel
  | "grow" -> Some Grow
  | _ -> None

exception Injected of string

let points =
  [
    "simplify/input";
    "simplify/result";
    "contify/result";
    "cse/result";
    "float-in/result";
    "float-out/result";
    "spec-constr/result";
  ]

let armed_tbl : (string, behaviour) Hashtbl.t = Hashtbl.create 7
let fired_rev : string list ref = ref []

let known name = List.mem name points

let arm name b =
  if not (known name) then
    invalid_arg
      (Fmt.str "Fault.arm: unknown point %S (known: %s)" name
         (String.concat ", " points));
  Hashtbl.replace armed_tbl name b

let disarm name = Hashtbl.remove armed_tbl name
let disarm_all () = Hashtbl.reset armed_tbl

let armed () =
  List.filter_map
    (fun p ->
      Option.map (fun b -> (p, b)) (Hashtbl.find_opt armed_tbl p))
    points

let fired () = List.rev !fired_rev
let reset_fired () = fired_rev := []

let with_armed arms f =
  let saved = armed () in
  Fun.protect
    ~finally:(fun () ->
      disarm_all ();
      List.iter (fun (p, b) -> arm p b) saved)
    (fun () ->
      disarm_all ();
      reset_fired ();
      List.iter (fun (p, b) -> arm p b) arms;
      f ())

(* A characteristically ill-typed tree: applying an integer literal.
   Lint rejects it at the root, whatever [e] is. *)
let corrupt (e : Syntax.expr) : Syntax.expr =
  Syntax.App (Syntax.Lit (Literal.Int 0), e)

(* A well-typed but size-exploded tree: enough freshened copies of [e],
   bound and discarded, to exceed the default size ceiling. *)
let grow (e : Syntax.expr) : Syntax.expr =
  let size = max 1 (Syntax.size e) in
  let l = Guard.default_limits in
  let limit = (l.Guard.max_growth_factor * size) + l.Guard.max_growth_slack in
  let copies = (limit / size) + 2 in
  let ty = Syntax.ty_of e in
  let rec pile n acc =
    if n <= 0 then acc
    else
      let x = Syntax.mk_var "fault_grow" ty in
      pile (n - 1) (Syntax.Let (Syntax.NonRec (x, Subst.freshen e), acc))
  in
  pile copies e

(* How long an armed [Burn_fuel] point spins when no {!Guard} budget is
   installed to cut it off: large enough to trip any realistic budget,
   small enough to terminate promptly in bare (unguarded) runs. *)
let burn_iters = 50_000_000

let point name (e : Syntax.expr) : Syntax.expr =
  if not (known name) then
    invalid_arg (Fmt.str "Fault.point: unknown point %S" name);
  match Hashtbl.find_opt armed_tbl name with
  | None -> e
  | Some b -> (
      fired_rev := name :: !fired_rev;
      match b with
      | Raise -> raise (Injected name)
      | Ill_typed -> corrupt e
      | Grow -> grow e
      | Burn_fuel ->
          for _ = 1 to burn_iters do
            Guard.spend 1
          done;
          e)
