(** Contification: inferring join points (Sec. 4, Fig. 5).

    A [let]-bound function every one of whose occurrences is a
    saturated {e tail call} (with a consistent argument shape) can be
    rebound as a join point, and its calls turned into jumps, without
    changing the meaning of the program: when such a call runs, the
    evaluation context to discard is empty.

    Implementation: run {!Occur} on the scope of each binding; if every
    occurrence is a tail call of shape [(n_ty, n_val)], the right-hand
    side decomposes as [/\a_1..a_nty. \x_1..x_nval. body], and [body]
    has the same type as the binding's scope (the proviso of Fig. 5),
    then rewrite. Recursive groups are contified only as a whole, with
    the same check applied to each right-hand side (whose own lambdas
    are first stripped, so the recursive calls are tail calls of the
    stripped bodies).

    One restriction beyond the paper: a nullary candidate
    ([n_ty = n_val = 0]) that is used more than once is left alone —
    under call-by-need the [let] shares one evaluation, whereas a join
    point would re-evaluate at every jump. (GHC's Core is free to do
    this too but its simplifier makes the same work-duplication
    choice.) *)

open Syntax

(* Contification counts are reported per-invocation through
   {!Telemetry} ([Contified] / [Contified_group] ticks into whatever
   collector the caller installed) — the old process-global mutable
   [stats] record made repeated or interleaved pipeline runs
   cross-contaminate each other's counts. *)

(* Strip exactly [n_ty] type binders then [n_val] value binders from an
   expression; [None] if the binder prefix does not match. *)
let strip_binders ~n_ty ~n_val e =
  let rec tys n acc e =
    if n = 0 then vals n_val acc [] e
    else
      match e with
      | TyLam (a, b) -> tys (n - 1) acc b |> add_ty a
      | _ -> None
  and add_ty a = Option.map (fun (tvs, xs, body) -> (a :: tvs, xs, body))
  and vals n _acc xs e =
    if n = 0 then Some ([], List.rev xs, e)
    else
      match e with
      | Lam (x, b) -> vals (n - 1) _acc (x :: xs) b
      | _ -> None
  in
  tys n_ty () e

(* Rewrite every saturated tail-call spine of one of the [targets] into
   a jump. The occurrence analysis has already certified that every
   occurrence of a target is such a spine in tail position, so we can
   rewrite spines wherever they appear. [targets] maps the old
   identifier to the new join binder and its shape. *)
let rewrite_calls (targets : (var * Occur.call_shape) Ident.Map.t) e =
  let rec go e =
    match e with
    | Var _ | App _ | TyApp _ -> spine e
    | Lit _ -> e
    | Con (dc, phis, es) -> Con (dc, phis, List.map go es)
    | Prim (op, es) -> Prim (op, List.map go es)
    | Lam (x, b) -> Lam (x, go b)
    | TyLam (a, b) -> TyLam (a, go b)
    | Let (NonRec (x, rhs), body) -> Let (NonRec (x, go rhs), go body)
    | Let (Strict (x, rhs), body) -> Let (Strict (x, go rhs), go body)
    | Let (Rec pairs, body) ->
        Let (Rec (List.map (fun (x, rhs) -> (x, go rhs)) pairs), go body)
    | Case (scrut, alts) ->
        Case
          ( go scrut,
            List.map (fun a -> { a with alt_rhs = go a.alt_rhs }) alts )
    | Join (JNonRec d, body) ->
        Join (JNonRec { d with j_rhs = go d.j_rhs }, go body)
    | Join (JRec ds, body) ->
        Join (JRec (List.map (fun d -> { d with j_rhs = go d.j_rhs }) ds), go body)
    | Jump (j, phis, es, ty) -> Jump (j, phis, List.map go es, ty)
  and spine e =
    let head, args = collect_args e in
    match head with
    | Var v when Ident.Map.mem v.v_name targets ->
        let jvar, (shape : Occur.call_shape) =
          Ident.Map.find v.v_name targets
        in
        let tys =
          List.filter_map (function `Ty t -> Some t | `Val _ -> None) args
        in
        let vals =
          List.filter_map
            (function `Val a -> Some (go a) | `Ty _ -> None)
            args
        in
        assert (List.length tys = shape.n_ty);
        assert (List.length vals = shape.n_val);
        (* The jump's declared result type is the type the call had. *)
        let res_ty =
          let inst = Types.instantiate v.v_ty tys in
          let rec drop n ty =
            if n = 0 then ty
            else
              match ty with
              | Types.Arrow (_, t) -> drop (n - 1) t
              | _ -> invalid_arg "Contify: call shape does not match type"
          in
          drop shape.n_val inst
        in
        Jump (jvar, tys, vals, res_ty)
    | Var _ -> e
    | _ -> (
        match e with
        | App (f, a) -> App (spine f, go a)
        | TyApp (f, t) -> TyApp (spine f, t)
        | _ -> go e)
  in
  go e

(* Can this binding group be contified, given the usage of its binders
   in their scope (and, for recursive groups, in the right-hand
   sides)? Returns the prepared join definitions. *)
let candidate_defn (x : var) rhs (shape : Occur.call_shape) =
  match strip_binders ~n_ty:shape.n_ty ~n_val:shape.n_val rhs with
  | None -> None
  | Some (tvs, xs, body) ->
      let jvar =
        { v_name = x.v_name; v_ty = Types.join_point_ty tvs (List.map (fun p -> p.v_ty) xs) }
      in
      Some (jvar, { j_var = jvar; j_tyvars = tvs; j_params = xs; j_rhs = body })

let shape_of_usage (i : Occur.info) =
  if i.count > 0 && i.all_tail then
    match i.shape with
    | Some s when s.n_ty + s.n_val >= 1 || i.count = 1 -> Some s
    | _ -> None
  else None

(* This pass's name in the decision ledger. *)
let dpass = "contify"

(* Why {!shape_of_usage} said no, as a ledger reason. [None] for dead
   binders (count 0): dropping dead code is the simplifier's decision,
   not a contification refusal. *)
let usage_rejection (i : Occur.info) : Decision.reason option =
  if i.count = 0 then None
  else if not i.all_tail then
    Some
      (if i.under_lam then Decision.Escapes_under_lambda
       else Decision.Not_all_tail_calls)
  else
    match i.shape with
    | None -> Some Decision.Shape_mismatch
    | Some s when s.n_ty + s.n_val >= 1 || i.count = 1 -> None
    | Some _ -> Some Decision.Nullary_candidate

let record_verdict (x : var) verdict =
  Decision.record ~pass:dpass Decision.Contify ~site:(Ident.site x.v_name)
    verdict

(* The Fig. 5 proviso: the contified body must have the type of the
   scope. [ty_of] may raise on open terms built by tests; treat any
   failure as "not contifiable". *)
let body_ty_matches body scope_ty =
  match Syntax.ty_of body with
  | ty -> Types.equal ty scope_ty
  | exception _ -> false

(** One bottom-up pass turning every eligible [let] into a [join].
    Idempotent; cheap enough to run "whenever the occurrence analyzer
    runs" (Sec. 7). *)
let rec contify (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map contify es)
  | Prim (op, es) -> Prim (op, List.map contify es)
  | App (f, a) -> App (contify f, contify a)
  | TyApp (f, t) -> TyApp (contify f, t)
  | Lam (x, b) -> Lam (x, contify b)
  | TyLam (a, b) -> TyLam (a, contify b)
  | Case (scrut, alts) ->
      Case
        ( contify scrut,
          List.map (fun a -> { a with alt_rhs = contify a.alt_rhs }) alts )
  | Join (JNonRec d, body) ->
      Join (JNonRec { d with j_rhs = contify d.j_rhs }, contify body)
  | Join (JRec ds, body) ->
      Join
        ( JRec (List.map (fun d -> { d with j_rhs = contify d.j_rhs }) ds),
          contify body )
  | Jump (j, phis, es, ty) -> Jump (j, phis, List.map contify es, ty)
  | Let (Strict (x, rhs), body) ->
      Let (Strict (x, contify rhs), contify body)
  | Let (NonRec (x, rhs), body) -> (
      let rhs = contify rhs in
      let body = contify body in
      let usage = Occur.of_expr body in
      let info = Occur.lookup usage x in
      let keep () = Let (NonRec (x, rhs), body) in
      let reject reason =
        record_verdict x (Decision.Rejected reason);
        keep ()
      in
      match shape_of_usage info with
      | None -> (
          match usage_rejection info with
          | None -> keep () (* dead binder; the simplifier will drop it *)
          | Some r -> reject r)
      | Some shape -> (
          match candidate_defn x rhs shape with
          | None -> reject Decision.Rhs_arity_mismatch
          | Some (jvar, defn) ->
              let scope_ty =
                match Syntax.ty_of body with
                | ty -> Some ty
                | exception _ -> None
              in
              if
                match scope_ty with
                | Some ty -> body_ty_matches defn.j_rhs ty
                | None -> false
              then begin
                Telemetry.tick Telemetry.Contified;
                record_verdict x Decision.Fired;
                let targets = Ident.Map.singleton x.v_name (jvar, shape) in
                Join (JNonRec defn, rewrite_calls targets body)
              end
              else reject Decision.Scope_type_mismatch))
  | Let (Rec pairs, body) -> (
      let pairs = List.map (fun (x, rhs) -> (x, contify rhs)) pairs in
      let body = contify body in
      let fallback () = Let (Rec pairs, body) in
      (* Usage across the scope and every right-hand side. *)
      let body_usage = Occur.of_expr body in
      let scope_ty =
        match Syntax.ty_of body with ty -> Some ty | exception _ -> None
      in
      match scope_ty with
      | None ->
          (* The proviso cannot even be checked (open scope). *)
          List.iter
            (fun (x, _) ->
              record_verdict x (Decision.Rejected Decision.Scope_type_mismatch))
            pairs;
          fallback ()
      | Some scope_ty -> (
          (* Each binder needs a consistent shape across body and all
             rhss; each rhs must strip to that shape; recursive calls
             must be tail calls of the stripped bodies. *)
          let shapes =
            List.map
              (fun (x, _) -> (x, Occur.lookup body_usage x))
              pairs
          in
          (* First guess shapes from the body usage; occurrences may
             also be only in rhss, so merge rhs usages (computed on
             stripped bodies below). To keep this simple we require a
             usable shape to be visible from the merged usage of body
             and raw rhss-in-tail-position-after-stripping. We iterate:
             strip with the body shape. *)
          let try_with_shapes
              (chosen : (var * Occur.call_shape) list) =
            let defns =
              List.map
                (fun ((x : var), shape) ->
                  match
                    List.find_opt
                      (fun ((y : var), _) -> var_equal x y)
                      pairs
                  with
                  | None -> None
                  | Some (_, rhs) ->
                      Option.map
                        (fun (jv, d) -> (x, shape, jv, d))
                        (candidate_defn x rhs shape))
                chosen
            in
            if List.exists Option.is_none defns then begin
              (* Groups contify only as a whole: the binders whose rhs
                 did not strip are the culprits. *)
              List.iter2
                (fun (x, _) defn ->
                  if Option.is_none defn then
                    record_verdict x
                      (Decision.Rejected Decision.Rhs_arity_mismatch))
                chosen defns;
              None
            end
            else
              let defns = List.filter_map Fun.id defns in
              (* Check typing proviso and tail-ness of recursive calls
                 inside each stripped rhs. *)
              let bad_types =
                List.filter
                  (fun (_, _, _, d) -> not (body_ty_matches d.j_rhs scope_ty))
                  defns
              in
              if bad_types <> [] then begin
                List.iter
                  (fun (x, _, _, _) ->
                    record_verdict x
                      (Decision.Rejected Decision.Scope_type_mismatch))
                  bad_types;
                None
              end
              else
                let rhs_usages =
                  List.map (fun (_, _, _, d) -> Occur.of_expr d.j_rhs) defns
                in
                let total_usage =
                  List.fold_left Occur.union body_usage rhs_usages
                in
                let bad_shapes =
                  List.filter
                    (fun ((x : var), shape, _, _) ->
                      match
                        shape_of_usage (Occur.lookup total_usage x)
                      with
                      | Some s -> s <> shape
                      | None -> true)
                    defns
                in
                if bad_shapes <> [] then begin
                  List.iter
                    (fun ((x : var), _, _, _) ->
                      let i = Occur.lookup total_usage x in
                      record_verdict x
                        (Decision.Rejected
                           (Option.value
                              ~default:Decision.Shape_mismatch
                              (usage_rejection i))))
                    bad_shapes;
                  None
                end
                else
                  let targets =
                    List.fold_left
                      (fun m ((x : var), shape, jv, _) ->
                        Ident.Map.add x.v_name (jv, shape) m)
                      Ident.Map.empty defns
                  in
                  let ds =
                    List.map
                      (fun (_, _, _, d) ->
                        { d with j_rhs = rewrite_calls targets d.j_rhs })
                      defns
                  in
                  Some (Join (JRec ds, rewrite_calls targets body))
          in
          let chosen =
            List.filter_map
              (fun ((x : var), (i : Occur.info)) ->
                match shape_of_usage i with
                | Some s -> Some (x, s)
                | None -> (
                    (* The binder may be used only in the rhss; guess
                       its shape from its manifest arity. *)
                    if i.count > 0 then None
                    else
                      match
                        List.find_opt
                          (fun ((y : var), _) -> var_equal x y)
                          pairs
                      with
                      | None -> None
                      | Some (_, rhs) ->
                          let binders, _ = collect_binders rhs in
                          let n_ty =
                            List.length
                              (List.filter
                                 (function `Ty _ -> true | _ -> false)
                                 binders)
                          in
                          let n_val =
                            List.length
                              (List.filter
                                 (function `Val _ -> true | _ -> false)
                                 binders)
                          in
                          Some (x, { Occur.n_ty; n_val })))
              shapes
          in
          if List.length chosen <> List.length pairs then begin
            (* The binders with no usable shape sink the whole group. *)
            List.iter
              (fun ((x : var), i) ->
                if
                  not
                    (List.exists
                       (fun ((y : var), _) -> var_equal x y)
                       chosen)
                then
                  match usage_rejection i with
                  | Some r -> record_verdict x (Decision.Rejected r)
                  | None ->
                      record_verdict x
                        (Decision.Rejected Decision.Shape_mismatch))
              shapes;
            fallback ()
          end
          else
            match try_with_shapes chosen with
            | Some e' ->
                Telemetry.tick Telemetry.Contified_group;
                Telemetry.tick ~n:(List.length pairs) Telemetry.Contified;
                List.iter (fun (x, _) -> record_verdict x Decision.Fired) pairs;
                e'
            | None -> fallback ()))

(* Injection point for the {!Guard} recovery tests (identity unless
   armed). *)
let contify e = Fault.point "contify/result" (contify e)

(** [contify] under a private collector; returns the term and this
    invocation's contified-binding count. The ticks are re-emitted into
    the enclosing collector (if any) so a surrounding pipeline run
    still observes them. *)
let contify_counted (e : expr) : expr * int =
  let c = Telemetry.create () in
  let e' = Telemetry.with_counters c (fun () -> contify e) in
  let n = Telemetry.get c Telemetry.Contified in
  let groups = Telemetry.get c Telemetry.Contified_group in
  if n > 0 then Telemetry.tick ~n Telemetry.Contified;
  if groups > 0 then Telemetry.tick ~n:groups Telemetry.Contified_group;
  (e', n)
