(** Call-pattern specialisation (SpecConstr) for recursive join points.

    Sec. 9 of the paper notes that stream fusion "depends on several
    algorithms working in concert, including commuting conversions,
    inlining, user-specified rewrite rules, and {e call-pattern
    specialisation} [21]". This pass supplies the last ingredient, in
    the restricted (and most profitable) form the fused loops need:

    If {e every} jump to a recursive join point passes, in some
    argument position, an application of the {e same} data constructor,
    the join point is respecialised to take the constructor's {e
    fields} instead, and the jumps pass the fields directly. The old
    parameter is rebuilt inside the right-hand side by a let binding

    {v join rec go (acc : Int) (st : Pair a b) = ... case st of ...
       ==>
       join rec go (acc : Int) (f1 : a) (f2 : b) =
         let st = MkPair f1 f2 in ... case st of ... v}

    which is trivially meaning-preserving; the Simplifier's
    case-of-known-constructor then cancels the rebuilt constructor
    against the scrutinee, and with it the per-iteration allocation of
    the loop state (e.g. the [Pair] threaded through a fused [zip]).

    Jump arguments that are variables let-bound to a constructor in
    scope are looked through, so the pass composes with the
    simplifier's ANF-isation of constructor bindings. *)

open Syntax

(* Specialised-group counts are reported per-invocation via Telemetry
   ([Spec_constr] ticks). *)

(* Constructor bindings in scope: variable unique -> constructor rhs.
   Used to look through [let x = K ... in ... jump j x ...]. *)
type cenv = expr Ident.Map.t

let con_view (cenv : cenv) (e : expr) : (Datacon.t * Types.t list * expr list) option =
  match e with
  | Con (dc, phis, args) -> Some (dc, phis, args)
  | Var v -> (
      match Ident.Map.find_opt v.v_name cenv with
      | Some (Con (dc, phis, args))
        when List.for_all Cleanup.ok_for_speculation args ->
          (* Only look through bindings whose fields are cheap and
             certainly terminating: moving them to the jump site may
             duplicate them if the binding has other uses. *)
          Some (dc, phis, args)
      | _ -> None)
  | _ -> None

(* Collect the argument lists of every jump to [labels] in [e]. Returns
   None-poisoned info if a label is used with an unexpected shape. *)
let collect_jumps (labels : Ident.Set.t) (cenv : cenv) (e : expr) :
    (Ident.t * (Datacon.t * Types.t list * expr list) option list) list =
  let acc = ref [] in
  let rec go cenv e =
    match e with
    | Var _ | Lit _ -> ()
    | Con (_, _, es) | Prim (_, es) -> List.iter (go cenv) es
    | App (f, a) ->
        go cenv f;
        go cenv a
    | TyApp (f, _) -> go cenv f
    | Lam (_, b) | TyLam (_, b) -> go cenv b
    | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
        go cenv rhs;
        let cenv' =
          match rhs with
          | Con _ -> Ident.Map.add x.v_name rhs cenv
          | _ -> cenv
        in
        go cenv' body
    | Let (Rec pairs, body) ->
        List.iter (fun (_, rhs) -> go cenv rhs) pairs;
        go cenv body
    | Case (scrut, alts) ->
        go cenv scrut;
        List.iter (fun a -> go cenv a.alt_rhs) alts
    | Join (jb, body) ->
        List.iter (fun d -> go cenv d.j_rhs) (join_defns jb);
        go cenv body
    | Jump (j, _, es, _) ->
        List.iter (go cenv) es;
        if Ident.Set.mem j.v_name labels then
          acc := (j.v_name, List.map (con_view cenv) es) :: !acc
  in
  go cenv e;
  !acc

(* Decide, for one definition, which positions can be specialised:
   every jump must present the same constructor there, and the
   parameter's type must be that constructor's datatype. *)
let spec_mask (d : join_defn)
    (jumps : (Datacon.t * Types.t list * expr list) option list list) :
    Datacon.t option list =
  List.mapi
    (fun i (p : var) ->
      let head_ok =
        match fst (Types.split_apps p.v_ty) with
        | Types.Con _ -> true
        | _ -> false
      in
      if not head_ok then None
      else
        let views = List.map (fun args -> List.nth args i) jumps in
        match views with
        | [] -> None
        | Some (dc, _, _) :: _
          when List.for_all
                 (function
                   | Some (dc', _, _) -> Datacon.equal dc dc'
                   | None -> false)
                 views ->
            Some dc
        | _ -> None)
    d.j_params

(* The rewriting environment for one specialised group. *)
type spec = {
  new_var : var;  (** The respecialised label (same unique family). *)
  masks : Datacon.t option list;
}

let rec spec_expr (cenv : cenv) (specs : spec Ident.Map.t) (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map (spec_expr cenv specs) es)
  | Prim (op, es) -> Prim (op, List.map (spec_expr cenv specs) es)
  | App (f, a) -> App (spec_expr cenv specs f, spec_expr cenv specs a)
  | TyApp (f, t) -> TyApp (spec_expr cenv specs f, t)
  | Lam (x, b) -> Lam (x, spec_expr cenv specs b)
  | TyLam (a, b) -> TyLam (a, spec_expr cenv specs b)
  | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
      let rhs' = spec_expr cenv specs rhs in
      let cenv' =
        match rhs' with
        | Con _ -> Ident.Map.add x.v_name rhs' cenv
        | _ -> cenv
      in
      let mk = match e with Let (Strict _, _) -> (fun x r -> Strict (x, r)) | _ -> (fun x r -> NonRec (x, r)) in
      Let (mk x rhs', spec_expr cenv' specs body)
  | Let (Rec pairs, body) ->
      Let
        ( Rec (List.map (fun (x, rhs) -> (x, spec_expr cenv specs rhs)) pairs),
          spec_expr cenv specs body )
  | Case (scrut, alts) ->
      Case
        ( spec_expr cenv specs scrut,
          List.map
            (fun a -> { a with alt_rhs = spec_expr cenv specs a.alt_rhs })
            alts )
  | Jump (j, phis, es, ty) -> (
      let es = List.map (spec_expr cenv specs) es in
      match Ident.Map.find_opt j.v_name specs with
      | None -> Jump (j, phis, es, ty)
      | Some s ->
          let es' =
            List.concat
              (List.map2
                 (fun mask arg ->
                   match mask with
                   | None -> [ arg ]
                   | Some _ -> (
                       match con_view cenv arg with
                       | Some (_, _, fields) -> fields
                       | None ->
                           (* The analysis certified every jump; but a
                              rewrite above may have changed the shape.
                              Fall back to field projections via a
                              case — cannot happen in practice, so we
                              fail loudly. *)
                           invalid_arg
                             "SpecConstr: jump argument lost its constructor"))
                 s.masks es)
          in
          Jump (s.new_var, phis, es', ty))
  | Join (JRec ds, body) -> (
      (* First specialise inside, then consider this group. *)
      let ds = List.map (fun d -> { d with j_rhs = spec_expr cenv specs d.j_rhs }) ds in
      let body = spec_expr cenv specs body in
      match try_specialise cenv ds body with
      | Some e' -> e'
      | None -> Join (JRec ds, body))
  | Join (JNonRec d, body) ->
      Join
        ( JNonRec { d with j_rhs = spec_expr cenv specs d.j_rhs },
          spec_expr cenv specs body )

and try_specialise (cenv : cenv) (ds : join_defn list) (body : expr) :
    expr option =
  let labels =
    Ident.Set.of_list (List.map (fun d -> d.j_var.v_name) ds)
  in
  let all_jumps =
    collect_jumps labels cenv body
    @ List.concat_map (fun d -> collect_jumps labels cenv d.j_rhs) ds
  in
  (* Group jumps per label, requiring consistent arity. *)
  let jumps_for (d : join_defn) =
    List.filter_map
      (fun (l, views) ->
        if Ident.equal l d.j_var.v_name then
          if List.length views = List.length d.j_params then Some views
          else None
        else None)
      all_jumps
  in
  let masks =
    List.map
      (fun d ->
        let js = jumps_for d in
        if js = [] then List.map (fun _ -> None) d.j_params
        else spec_mask d js)
      ds
  in
  let record d verdict =
    Decision.record ~pass:"spec-constr" Decision.Spec_constr
      ~site:(Ident.site d.j_var.v_name) verdict
  in
  (* A member with live jumps but no position where every jump agrees
     on a constructor cannot be specialised — ledger it (dead members,
     with no jumps at all, are not a decision). *)
  let record_unspecialisable () =
    if Decision.enabled () then
      List.iter2
        (fun d mask ->
          if List.for_all Option.is_none mask && jumps_for d <> [] then
            record d (Decision.Rejected Decision.No_common_constructor))
        ds masks
  in
  if List.for_all (List.for_all Option.is_none) masks then begin
    record_unspecialisable ();
    None
  end
  else begin
    Telemetry.tick Telemetry.Spec_constr;
    List.iter2
      (fun d mask ->
        if List.exists Option.is_some mask then record d Decision.Fired)
      ds masks;
    record_unspecialisable ();
    (* Build the new definitions and the rewriting specs. *)
    let items =
      List.map2
        (fun d mask ->
          let new_params_rev, rebuilds =
            List.fold_left2
              (fun (ps, rb) (p : var) m ->
                match m with
                | None -> (p :: ps, rb)
                | Some dc ->
                    let _, phis = Types.split_apps p.v_ty in
                    let field_tys = Datacon.instantiate_args dc phis in
                    let fields =
                      List.map (fun t -> mk_var (p.v_name.Ident.name ^ "f") t) field_tys
                    in
                    ( List.rev_append fields ps,
                      (fun body ->
                        Let
                          ( NonRec
                              ( p,
                                Con
                                  ( dc,
                                    phis,
                                    List.map (fun f -> Var f) fields ) ),
                            body ))
                      :: rb ))
              ([], []) d.j_params mask
          in
          let new_params = List.rev new_params_rev in
          let new_var = mk_join_var d.j_var.v_name.Ident.name d.j_tyvars new_params in
          let rebuild body = List.fold_left (fun b w -> w b) body rebuilds in
          (d, mask, new_params, new_var, rebuild))
        ds masks
    in
    let specs =
      List.fold_left
        (fun m (d, mask, _, new_var, _) ->
          Ident.Map.add d.j_var.v_name { new_var; masks = mask } m)
        Ident.Map.empty items
    in
    let ds' =
      List.map
        (fun ((d : join_defn), _, new_params, new_var, rebuild) ->
          {
            j_var = new_var;
            j_tyvars = d.j_tyvars;
            j_params = new_params;
            j_rhs = spec_expr cenv specs (rebuild d.j_rhs);
          })
        items
    in
    Some (Join (JRec ds', spec_expr cenv specs body))
  end

(** Run call-pattern specialisation over a whole program. One call
    specialises one constructor layer; the pipeline's rounds peel
    nested layers. *)
let run (e : expr) : expr =
  Fault.point "spec-constr/result" (spec_expr Ident.Map.empty Ident.Map.empty e)
