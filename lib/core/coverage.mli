(** Optimization coverage maps: which parts of the optimizer has a
    corpus of programs actually exercised?

    The dual of the telemetry substrate. {!Telemetry} counts what one
    compilation {e did}; this module aggregates, over many
    compilations, which of the optimizer's {e possible} behaviours
    ever happened at all. The universe is finite and statically
    enumerable — the paper's Fig. 4 axioms and the per-pass work
    counters ({!Telemetry.all_ticks}) crossed with the three pipeline
    configurations, every decision outcome the {!Decision} ledger can
    record (action crossed with fired / each structurally-possible
    rejection reason), and the {!Guard} incident causes — so "never
    fired" is a meaningful, closed listing, not an open-ended guess.

    A map is a plain hit-count table over that universe. [fjc cover]
    folds a corpus into one and gates CI on the percent exercised;
    {!Fuzz} keeps a cumulative map and treats any case that covers a
    previously-unseen point as {e interesting} — the feedback loop of
    coverage-guided generation. *)

(** The three dimensions of the universe. *)
type dim =
  | Ticks
      (** One point per (pipeline configuration, tick): did this
          rewrite ever fire under this configuration? *)
  | Decisions
      (** One point per (ledger action, outcome), where the outcomes
          of an action are [fired] plus each rejection reason a pass
          can actually record for it. *)
  | Guards  (** One point per {!Guard.cause} of a pass rollback. *)

val dims : dim list

(** ["ticks" | "decisions" | "guards"]. *)
val dim_name : dim -> string

(** {1 The universe} *)

(** Every point, in canonical order. Point names are stable:
    ["<mode>/<tick>"] (ticks), ["<action>:fired"] /
    ["<action>:rejected:<reason>"] (decisions), and the
    {!Guard.cause_name}s (guards). *)
val universe : (dim * string) list

val universe_size : int

(** Points of one dimension, in canonical order. *)
val dim_points : dim -> string list

(** {1 Maps} *)

type t

(** The all-zeroes map. *)
val create : unit -> t

(** An independent copy. *)
val copy : t -> t

(** {1 Recording} *)

(** [hit_tick m ~mode tick ~n] records [n] firings of [tick] under
    configuration [mode] (a {!Pipeline.mode_name}); an unknown [mode]
    counts as an {!unknown_hits}. *)
val hit_tick : ?n:int -> t -> mode:string -> Telemetry.tick -> unit

(** Record one ledger outcome. A (action, reason) pair outside the
    static table counts as an {!unknown_hits} — the round-trip tests
    assert this never happens on a real pipeline run, so the table
    cannot silently drift from the passes. *)
val hit_decision : t -> Decision.action -> Decision.verdict -> unit

(** Record one pass-rollback cause. *)
val hit_incident : t -> Guard.cause -> unit

(** Fold one whole pipeline trace into the map: every tick the run
    fired (under the report's configuration), every ledger outcome,
    every incident cause. *)
val observe_report : t -> Pipeline.report -> unit

(** Hits that fell outside the universe (unknown mode, or an
    (action, reason) pair the static table does not list). Stays 0 on
    real pipeline runs. *)
val unknown_hits : t -> int

(** {1 Reading} *)

(** Hit count of a point; 0 for unknown names. *)
val count : t -> dim -> string -> int

(** The full universe with hit counts, in canonical order. *)
val hits : t -> (dim * string * int) list

(** Points with a nonzero count. *)
val covered : t -> int

(** [100 * covered / universe_size]. *)
val percent : t -> float

(** (covered, total) of one dimension. *)
val dim_covered : t -> dim -> int * int

(** The Fig. 4 gate: (tick names fired under {e at least one}
    configuration, number of tick names). This is the percentage
    [fjc cover --require] enforces — a corpus exercises an axiom if
    any of the three compilers fires it. *)
val axioms_covered : t -> int * int

(** Tick names (see {!Telemetry.tick_name}) never fired under any
    configuration. *)
val axioms_never : t -> string list

(** Points never hit, in canonical order — the actionable listing. *)
val never_fired : t -> (dim * string) list

(** {1 Combining} *)

(** [merge_into ~into m] adds every count of [m] (and its unknown
    hits) into [into]. *)
val merge_into : into:t -> t -> unit

(** [diff a b]: points covered in [a] but not in [b] — e.g. what a
    guided fuzz run reached that the unguided run did not. *)
val diff : t -> t -> (dim * string) list

(** {1 JSON}

    The [fj-cover/1] encoding. {!to_json} is complete (every nonzero
    point count); {!of_json} reads it back exactly, so maps can be
    aggregated across processes. *)

(** [{schema: "fj-cover/1", universe, covered, percent, unknown_hits,
    axioms: {covered, total, percent, never: [tick...]}, dims: {<dim>:
    {total, covered, percent, points: {<point>: count}}}, never_fired:
    [<dim>/<point>...]}] — [points] lists nonzero counts only. *)
val to_json : t -> Telemetry.Json.t

(** Compact form for trajectory files: {!to_json} without the
    per-point counts and the never-fired listing. *)
val summary_json : t -> Telemetry.Json.t

(** Parse {!to_json} output back into a map. [Error] on a wrong
    schema tag or a point name outside the universe. *)
val of_json : Telemetry.Json.t -> (t, string) result

(** Count-for-count equality (including unknown hits). *)
val equal : t -> t -> bool

(** One line per dimension plus the axiom gate, e.g.
    [ticks      62/81  76.5%]. *)
val pp_summary : Format.formatter -> t -> unit
