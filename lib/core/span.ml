(** Hierarchical wall-clock spans — see the interface for the design. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_ms : float;
  sp_dur_ms : float;
  sp_depth : int;
  sp_gc : Gcstats.t;
  sp_args : (string * Telemetry.Json.t) list;
}

(* A span being timed: annotations accumulate until it closes. *)
type open_span = {
  o_name : string;
  o_cat : string;
  o_t0 : float;
  o_gc0 : Gcstats.t;
  o_depth : int;
  mutable o_args : (string * Telemetry.Json.t) list;  (* newest first *)
}

type collector = {
  completed : span Queue.t;  (* oldest first *)
  cap : int option;
  mutable open_stack : open_span list;  (* innermost first *)
  mutable n_dropped : int;
}

let create ?cap () =
  { completed = Queue.create (); cap; open_stack = []; n_dropped = 0 }

(* The innermost installed collector; installation nests (save and
   restore), exactly as Telemetry collectors do. *)
let current : collector option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_collector c f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

let record c (sp : span) =
  (match c.cap with
  | Some cap when Queue.length c.completed >= cap ->
      ignore (Queue.pop c.completed);
      c.n_dropped <- c.n_dropped + 1
  | _ -> ());
  Queue.push sp c.completed

let annotate key v =
  match Domain.DLS.get current with
  | None -> ()
  | Some c -> (
      match c.open_stack with
      | [] -> ()
      | o :: _ -> o.o_args <- (key, v) :: List.remove_assoc key o.o_args)

let with_span_stats ?(cat = "") name f =
  match Domain.DLS.get current with
  | None ->
      let t0 = Telemetry.now_ms () in
      let gc0 = Gcstats.snapshot () in
      let x = f () in
      let gc = Gcstats.delta gc0 (Gcstats.snapshot ()) in
      (x, Telemetry.now_ms () -. t0, gc)
  | Some c ->
      let o =
        {
          o_name = name;
          o_cat = cat;
          o_t0 = Telemetry.now_ms ();
          o_gc0 = Gcstats.snapshot ();
          o_depth = List.length c.open_stack;
          o_args = [];
        }
      in
      c.open_stack <- o :: c.open_stack;
      let dur = ref 0.0 in
      let gc = ref Gcstats.zero in
      let close ~raised =
        (* [f] may itself have installed a different collector and
           leaked an unbalanced stack only on raise; pop down to [o]
           defensively so an exception cannot wedge the nesting. *)
        (if raised then
           o.o_args <- ("raised", Telemetry.Json.Bool true) :: o.o_args);
        dur := Telemetry.now_ms () -. o.o_t0;
        gc := Gcstats.delta o.o_gc0 (Gcstats.snapshot ());
        (match c.open_stack with
        | o' :: rest when o' == o -> c.open_stack <- rest
        | stack -> c.open_stack <- List.filter (fun o' -> not (o' == o)) stack);
        record c
          {
            sp_name = o.o_name;
            sp_cat = o.o_cat;
            sp_start_ms = o.o_t0;
            sp_dur_ms = !dur;
            sp_depth = o.o_depth;
            sp_gc = !gc;
            sp_args = List.rev o.o_args;
          }
      in
      let x =
        match f () with
        | x ->
            close ~raised:false;
            x
        | exception exn ->
            close ~raised:true;
            raise exn
      in
      (x, !dur, !gc)

let with_span_timed ?cat name f =
  let x, dur, _ = with_span_stats ?cat name f in
  (x, dur)

let with_span ?cat name f =
  let x, _, _ = with_span_stats ?cat name f in
  x

let spans c = List.rev (Queue.fold (fun acc s -> s :: acc) [] c.completed)
let dropped c = c.n_dropped

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let us ms = int_of_float (Float.round (ms *. 1000.0))

let event ?(pid = 1) ?(tid = 1) (sp : span) =
  Telemetry.Json.(
    Obj
      [
        ("ph", Str "X");
        ("ts", Int (us sp.sp_start_ms));
        ("dur", Int (us sp.sp_dur_ms));
        ("name", Str sp.sp_name);
        ("cat", Str (if sp.sp_cat = "" then "span" else sp.sp_cat));
        ("pid", Int pid);
        ("tid", Int tid);
        ("args", Obj (sp.sp_args @ Gcstats.fields sp.sp_gc));
      ])

let by_start_order ss =
  (* Children complete before their parents, so the completion queue
     is not start-ordered; ties on the coarse clock are broken by
     depth so a parent always precedes its children. *)
  List.stable_sort
    (fun a b -> compare (a.sp_start_ms, a.sp_depth) (b.sp_start_ms, b.sp_depth))
    ss

let trace_events ?pid ?tid c = List.map (event ?pid ?tid) (by_start_order (spans c))

let thread_name_event ?(pid = 1) ~tid name =
  Telemetry.Json.(
    Obj
      [
        ("ph", Str "M");
        ("ts", Int 0);
        ("name", Str "thread_name");
        ("pid", Int pid);
        ("tid", Int tid);
        ("args", Obj [ ("name", Str name) ]);
      ])

let counter_event ?(pid = 1) ?(tid = 1) ~name ~ts args =
  Telemetry.Json.(
    Obj
      [
        ("ph", Str "C");
        ("ts", Int ts);
        ("name", Str name);
        ("pid", Int pid);
        ("tid", Int tid);
        ("args", Obj args);
      ])

let span_json (sp : span) =
  Telemetry.Json.(
    Obj
      [
        ("name", Str sp.sp_name);
        ("cat", Str sp.sp_cat);
        ("start_ms", Float sp.sp_start_ms);
        ("dur_ms", Float sp.sp_dur_ms);
        ("depth", Int sp.sp_depth);
        ("gc", Gcstats.to_json sp.sp_gc);
        ("args", Obj sp.sp_args);
      ])

(* ------------------------------------------------------------------ *)
(* Collapsed-stack (folded) export                                     *)
(* ------------------------------------------------------------------ *)

type weight = Self_time | Alloc_words

(* A reconstructed span-tree node; children newest-first while
   building. *)
type fnode = { f_span : span; mutable f_children : fnode list }

(* Rebuild the forest from the flat completed-span list: replay the
   spans in start order keeping the path of currently-enclosing nodes
   (the recorded depth says how far to pop). A ring-capped collector
   may have evicted ancestors; an orphan attaches to the closest
   surviving one. *)
let forest c =
  let roots = ref [] in
  let path = ref [] in
  (* innermost first *)
  List.iter
    (fun sp ->
      let rec pop p = if List.length p > sp.sp_depth then pop (List.tl p) else p in
      path := pop !path;
      let node = { f_span = sp; f_children = [] } in
      (match !path with
      | [] -> roots := node :: !roots
      | parent :: _ -> parent.f_children <- node :: parent.f_children);
      path := node :: !path)
    (by_start_order (spans c));
  List.rev !roots

(* One flamegraph frame. Root spans keep their bare name ([compile],
   [eval]); nested frames are prefixed with their category, giving
   [compile;pass:simplify_(0);guard:lint]. The folded format reserves
   ';' (stack separator) and ' ' (weight separator). *)
let frame_label (sp : span) =
  let sanitize s =
    String.map (function ';' -> ',' | ' ' -> '_' | c -> c) s
  in
  if sp.sp_depth = 0 || sp.sp_cat = "" then sanitize sp.sp_name
  else sanitize (sp.sp_cat ^ ":" ^ sp.sp_name)

let folded_stacks ?(weight = Self_time) c =
  (* Integer per-span weights first, so that self = own - Σ children
     is exact in the integer domain and the folded lines sum to
     exactly the roots' totals (no float re-rounding drift). *)
  let span_weight (sp : span) =
    match weight with
    | Self_time -> us sp.sp_dur_ms
    | Alloc_words -> int_of_float (Float.round (Gcstats.alloc_words sp.sp_gc))
  in
  let tbl = Hashtbl.create 64 in
  let keys = ref [] in
  let add stack w =
    match Hashtbl.find_opt tbl stack with
    | Some prior -> Hashtbl.replace tbl stack (prior + w)
    | None ->
        keys := stack :: !keys;
        Hashtbl.add tbl stack w
  in
  let rec visit prefix n =
    let stack =
      let l = frame_label n.f_span in
      if prefix = "" then l else prefix ^ ";" ^ l
    in
    let children = List.rev n.f_children in
    let child_sum =
      List.fold_left (fun acc ch -> acc + span_weight ch.f_span) 0 children
    in
    add stack (max 0 (span_weight n.f_span - child_sum));
    List.iter (visit stack) children
  in
  List.iter (visit "") (forest c);
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun k -> (k, Hashtbl.find tbl k)) !keys)

let folded ?weight c =
  String.concat "\n"
    (List.map (fun (stack, w) -> Fmt.str "%s %d" stack w)
       (folded_stacks ?weight c))
