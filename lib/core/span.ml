(** Hierarchical wall-clock spans — see the interface for the design. *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start_ms : float;
  sp_dur_ms : float;
  sp_depth : int;
  sp_args : (string * Telemetry.Json.t) list;
}

(* A span being timed: annotations accumulate until it closes. *)
type open_span = {
  o_name : string;
  o_cat : string;
  o_t0 : float;
  o_depth : int;
  mutable o_args : (string * Telemetry.Json.t) list;  (* newest first *)
}

type collector = {
  completed : span Queue.t;  (* oldest first *)
  cap : int option;
  mutable open_stack : open_span list;  (* innermost first *)
  mutable n_dropped : int;
}

let create ?cap () =
  { completed = Queue.create (); cap; open_stack = []; n_dropped = 0 }

(* The innermost installed collector; installation nests (save and
   restore), exactly as Telemetry collectors do. *)
let current : collector option ref = ref None

let with_collector c f =
  let saved = !current in
  current := Some c;
  Fun.protect ~finally:(fun () -> current := saved) f

let record c (sp : span) =
  (match c.cap with
  | Some cap when Queue.length c.completed >= cap ->
      ignore (Queue.pop c.completed);
      c.n_dropped <- c.n_dropped + 1
  | _ -> ());
  Queue.push sp c.completed

let annotate key v =
  match !current with
  | None -> ()
  | Some c -> (
      match c.open_stack with
      | [] -> ()
      | o :: _ -> o.o_args <- (key, v) :: List.remove_assoc key o.o_args)

let with_span_timed ?(cat = "") name f =
  match !current with
  | None ->
      let t0 = Telemetry.now_ms () in
      let x = f () in
      (x, Telemetry.now_ms () -. t0)
  | Some c ->
      let o =
        {
          o_name = name;
          o_cat = cat;
          o_t0 = Telemetry.now_ms ();
          o_depth = List.length c.open_stack;
          o_args = [];
        }
      in
      c.open_stack <- o :: c.open_stack;
      let dur = ref 0.0 in
      let close ~raised =
        (* [f] may itself have installed a different collector and
           leaked an unbalanced stack only on raise; pop down to [o]
           defensively so an exception cannot wedge the nesting. *)
        (if raised then
           o.o_args <- ("raised", Telemetry.Json.Bool true) :: o.o_args);
        dur := Telemetry.now_ms () -. o.o_t0;
        (match c.open_stack with
        | o' :: rest when o' == o -> c.open_stack <- rest
        | stack -> c.open_stack <- List.filter (fun o' -> not (o' == o)) stack);
        record c
          {
            sp_name = o.o_name;
            sp_cat = o.o_cat;
            sp_start_ms = o.o_t0;
            sp_dur_ms = !dur;
            sp_depth = o.o_depth;
            sp_args = List.rev o.o_args;
          }
      in
      let x =
        match f () with
        | x ->
            close ~raised:false;
            x
        | exception exn ->
            close ~raised:true;
            raise exn
      in
      (x, !dur)

let with_span ?cat name f = fst (with_span_timed ?cat name f)

let spans c = List.rev (Queue.fold (fun acc s -> s :: acc) [] c.completed)
let dropped c = c.n_dropped

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let us ms = int_of_float (Float.round (ms *. 1000.0))

let event ?(pid = 1) ?(tid = 1) (sp : span) =
  Telemetry.Json.(
    Obj
      [
        ("ph", Str "X");
        ("ts", Int (us sp.sp_start_ms));
        ("dur", Int (us sp.sp_dur_ms));
        ("name", Str sp.sp_name);
        ("cat", Str (if sp.sp_cat = "" then "span" else sp.sp_cat));
        ("pid", Int pid);
        ("tid", Int tid);
        ("args", Obj sp.sp_args);
      ])

let trace_events ?pid ?tid c =
  let by_start =
    List.stable_sort
      (fun a b -> compare a.sp_start_ms b.sp_start_ms)
      (spans c)
  in
  List.map (event ?pid ?tid) by_start

let thread_name_event ?(pid = 1) ~tid name =
  Telemetry.Json.(
    Obj
      [
        ("ph", Str "M");
        ("ts", Int 0);
        ("name", Str "thread_name");
        ("pid", Int pid);
        ("tid", Int tid);
        ("args", Obj [ ("name", Str name) ]);
      ])

let span_json (sp : span) =
  Telemetry.Json.(
    Obj
      [
        ("name", Str sp.sp_name);
        ("cat", Str sp.sp_cat);
        ("start_ms", Float sp.sp_start_ms);
        ("dur_ms", Float sp.sp_dur_ms);
        ("depth", Int sp.sp_depth);
        ("args", Obj sp.sp_args);
      ])
