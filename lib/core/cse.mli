(** Common sub-expression elimination — the Sec. 8 direct-style
    argument made concrete. Only work-reducing sharing is performed. *)

(** Run CSE over a whole program. Each shared occurrence fires a
    {!Telemetry.Cse_shared} tick. *)
val run : Syntax.expr -> Syntax.expr

(** [run] plus this invocation's count of shared occurrences — for
    callers not running under a pipeline telemetry collector. *)
val run_counted : Syntax.expr -> Syntax.expr * int
