(** The metrics registry — see the interface for the design. *)

(* Log buckets at quarter-powers of two: sample v > 0 lands in bucket
   floor(4 * log2 v), i.e. boundaries 2^(i/4) — ~19% wide, constant
   space for any stream length. Bucket min_int holds exact zeros. *)
let bucket_of v = if v <= 0.0 then min_int else int_of_float (Float.floor (4.0 *. Float.log2 v))

let bucket_lo i = if i = min_int then 0.0 else Float.pow 2.0 (float_of_int i /. 4.0)
let bucket_hi i = if i = min_int then 0.0 else Float.pow 2.0 (float_of_int (i + 1) /. 4.0)

type hist = {
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : (int, int ref) Hashtbl.t;
}

type t = {
  counters_tbl : (string, int ref) Hashtbl.t;
  gauges_tbl : (string, float ref) Hashtbl.t;
  hists_tbl : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters_tbl = Hashtbl.create 16;
    gauges_tbl = Hashtbl.create 16;
    hists_tbl = Hashtbl.create 16;
  }

(* Domain-local so parallel compile-service workers never race. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_registry r f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some r);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

let incr ?(by = 1) name =
  match Domain.DLS.get current with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.counters_tbl name with
      | Some c -> c := !c + by
      | None -> Hashtbl.add r.counters_tbl name (ref by))

let set_gauge name v =
  match Domain.DLS.get current with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.gauges_tbl name with
      | Some g -> g := v
      | None -> Hashtbl.add r.gauges_tbl name (ref v))

let observe name v =
  match Domain.DLS.get current with
  | None -> ()
  | Some r ->
      let v = Float.max 0.0 v in
      let h =
        match Hashtbl.find_opt r.hists_tbl name with
        | Some h -> h
        | None ->
            let h =
              {
                n = 0;
                sum = 0.0;
                min_v = infinity;
                max_v = neg_infinity;
                buckets = Hashtbl.create 8;
              }
            in
            Hashtbl.add r.hists_tbl name h;
            h
      in
      h.n <- h.n + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v;
      let b = bucket_of v in
      (match Hashtbl.find_opt h.buckets b with
      | Some c -> Stdlib.incr c
      | None -> Hashtbl.add h.buckets b (ref 1))

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p95 : float;
}

(* Quantile from the buckets: walk them in order until the cumulative
   count covers the target rank, estimate by the bucket's geometric
   midpoint, and clamp into the exact observed [min, max]. *)
let quantile (h : hist) q =
  if h.n = 0 then 0.0
  else begin
    let sorted =
      List.sort compare
        (Hashtbl.fold (fun b c acc -> (b, !c) :: acc) h.buckets [])
    in
    let target =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.n)))
    in
    let rec go acc = function
      | [] -> h.max_v
      | (b, c) :: rest ->
          let acc = acc + c in
          if acc >= target then
            if b = min_int then 0.0 else sqrt (bucket_lo b *. bucket_hi b)
          else go acc rest
    in
    Float.min h.max_v (Float.max h.min_v (go 0 sorted))
  end

let summarize h =
  {
    h_count = h.n;
    h_sum = h.sum;
    h_min = (if h.n = 0 then 0.0 else h.min_v);
    h_max = (if h.n = 0 then 0.0 else h.max_v);
    h_p50 = quantile h 0.50;
    h_p95 = quantile h 0.95;
  }

let counter_value r name =
  match Hashtbl.find_opt r.counters_tbl name with Some c -> !c | None -> 0

let gauge_value r name =
  Option.map ( ! ) (Hashtbl.find_opt r.gauges_tbl name)

let histogram r name =
  Option.map summarize (Hashtbl.find_opt r.hists_tbl name)

let sorted_bindings fold tbl =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (fold (fun k v acc -> (k, v) :: acc) tbl [])

let counters r =
  List.map (fun (k, c) -> (k, !c)) (sorted_bindings Hashtbl.fold r.counters_tbl)

let gauges r =
  List.map (fun (k, g) -> (k, !g)) (sorted_bindings Hashtbl.fold r.gauges_tbl)

let histograms r =
  List.map (fun (k, h) -> (k, summarize h))
    (sorted_bindings Hashtbl.fold r.hists_tbl)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let summary_json (s : summary) =
  Telemetry.Json.(
    Obj
      [
        ("count", Int s.h_count);
        ("sum", Float s.h_sum);
        ("min", Float s.h_min);
        ("max", Float s.h_max);
        ("p50", Float s.h_p50);
        ("p95", Float s.h_p95);
      ])

let to_json r =
  let open Telemetry.Json in
  let section name entries =
    if entries = [] then [] else [ (name, Obj entries) ]
  in
  Obj
    (section "counters" (List.map (fun (k, n) -> (k, Int n)) (counters r))
    @ section "gauges" (List.map (fun (k, v) -> (k, Float v)) (gauges r))
    @ section "histograms"
        (List.map (fun (k, s) -> (k, summary_json s)) (histograms r)))

let pp ppf r =
  List.iter (fun (k, n) -> Fmt.pf ppf "%-32s %d@," k n) (counters r);
  List.iter (fun (k, v) -> Fmt.pf ppf "%-32s %g@," k v) (gauges r);
  List.iter
    (fun (k, s) ->
      Fmt.pf ppf "%-32s count=%d p50=%.3f p95=%.3f max=%.3f@," k s.h_count
        s.h_p50 s.h_p95 s.h_max)
    (histograms r)
