(** The Core-to-Core pass pipeline: the three compiler configurations
    of the paper's experiment (join-points, pre-join-point baseline,
    and a no-commuting-conversions ablation). *)

type mode = Baseline | Join_points | No_cc

val mode_name : mode -> string

(** What the pass cache stores for one (pass, input tree) pair: the
    output tree plus {e everything else} the pass would have produced
    — its tick firings, its ledger entries, and the unique-supply
    position it left behind ({!Ident.counter_value}) — so a cache hit
    replays the pass exactly and a warm compile stays byte-identical
    to a cold one (trees, tick counts, and decision ledgers alike). *)
type cached_pass = {
  cp_output : Syntax.expr;
  cp_ident_after : int;
      (** {!Ident.counter_value} after the pass ran; restored on hit
          so later passes allocate the same uniques they would have
          cold. *)
  cp_ticks : (string * int) list;  (** Ticks the pass fired, by name. *)
  cp_decisions : Decision.event list;  (** Ledger entries, in order. *)
}

(** The memoization hook the compile service installs: [lookup] is
    consulted before each pass runs; [store] is offered every
    successful, un-rolled-back pass result. [supply] is
    {!Ident.counter_value} {e before} the pass — part of the cache
    key, because what a pass produces depends on where the unique
    supply stands when it starts (the pipeline passes it explicitly
    since by store time the counter has already moved). The
    implementation also keys on the pass label, the round-trippable
    {!Sexp} encoding of [input], and its own configuration
    fingerprint. The identity ["input"] pass is never cached. *)
type pass_cache = {
  cache_lookup :
    pass:string -> supply:int -> input:Syntax.expr -> cached_pass option;
  cache_store :
    pass:string -> supply:int -> input:Syntax.expr -> cached_pass -> unit;
}

type config = {
  mode : mode;
  iterations : int;
  inline_threshold : int;
  dup_threshold : int;
  strictness : bool;
  cse : bool;
  rules : Rules.rule list;
  spec_constr : bool;
  datacons : Datacon.env;
  lint_every_pass : bool;
  policy : Guard.policy;
      (** [Strict] (default): pass failures abort compilation.
          [Recover]: failed passes are rolled back and recorded as
          {!Guard.incident}s — every optimisation pass is optional. *)
  limits : Guard.limits;
      (** Per-pass fuel / size-growth budgets enforced under
          [Recover]. *)
  cache : pass_cache option;
      (** Content-addressed pass memoization (the compile service's
          {!pass_cache}); [None] (the default) recomputes every pass. *)
}

val default_config :
  ?mode:mode ->
  ?iterations:int ->
  ?inline_threshold:int ->
  ?dup_threshold:int ->
  ?strictness:bool ->
  ?cse:bool ->
  ?spec_constr:bool ->
  ?rules:Rules.rule list ->
  ?datacons:Datacon.env ->
  ?lint_every_pass:bool ->
  ?policy:Guard.policy ->
  ?limits:Guard.limits ->
  ?cache:pass_cache ->
  unit ->
  config

(** Raised by {!run_report} when [lint_every_pass] is set and a pass
    breaks typing — the paper's "forensic" use of Core Lint (Sec. 7). *)
exception Pass_broke_lint of string * Lint.error

(** One pass execution in the trace. *)
type pass_record = {
  pass : string;
  duration_ms : float;
  lint_ms : float;  (** 0 unless [lint_every_pass]. *)
  size_before : int;
  size_after : int;
  joins_after : int;
  shape_after : Syntax.measure;
      (** Tree shape of the pass's output: nodes, depth, estimated
          heap words ({!Syntax.measure}). *)
  gc : Gcstats.t;
      (** What the {e compiler} allocated running this pass: the GC
          delta over the pass span (lint time included), answering
          "which pass allocates". *)
  ticks : (string * int) list;  (** Ticks fired by this pass. *)
  decisions : Decision.event list;
      (** Ledger entries recorded by this pass, oldest first. *)
  incident : Guard.incident option;
      (** Under the [Recover] policy: the rollback this pass suffered,
          if any ([size_after] then equals [size_before]). *)
  cached : bool;
      (** The pass was replayed from the pass cache rather than run:
          same output, ticks, and ledger entries, near-zero cost. *)
}

(** A structured trace of one pipeline run: per-pass timing, term
    sizes, join-point counts, and simplifier-tick deltas, plus the
    whole-run tick totals. *)
type report

(** Passes in execution order. *)
val passes : report -> pass_record list

(** The configuration the report was produced under ({!mode_name}) —
    the key coverage maps file the run's ticks under. *)
val report_mode : report -> string

(** Completed hierarchical wall-clock spans of the run, oldest first:
    a root ["compile"] span (cat ["pipeline"]) enclosing one span per
    pass (cat ["pass"], whose duration {e equals} the corresponding
    {!pass_record.duration_ms}) enclosing the guard phases (cat
    ["guard"]: ["body"], ["lint"], ["rollback"]). *)
val spans : report -> Span.span list

(** The run's metrics registry: pass-duration histograms
    ([pass.<family>.ms]), guard rollback counters, etc. *)
val metrics : report -> Metrics.t

(** The run's span tree as collapsed flamegraph stacks
    ({!Span.folded_stacks}): exclusive weights, every span exactly
    once, the line weights under the [compile] root summing to the
    compile span's own total. *)
val folded_stacks : ?weight:Span.weight -> report -> (string * int) list

(** {!folded_stacks} rendered as folded text ({!Span.folded}) —
    pipeable straight into flamegraph.pl / inferno / speedscope. *)
val folded : ?weight:Span.weight -> report -> string

(** (pass name, size after) in execution order — the legacy trail. *)
val trail : report -> (string * int) list

(** Whole-run nonzero tick counts, by tick name. *)
val ticks : report -> (string * int) list

val total_ticks : report -> int

(** Bindings contified over the whole run. *)
val contified : report -> int

(** The whole-run decision ledger, oldest first: every rewrite any
    pass accepted or refused, with its site and structured reason. *)
val decisions : report -> Decision.event list

(** {!Decision.summary} of {!decisions}: counts keyed
    ["action:verdict[:reason]"], sorted. *)
val decision_summary : report -> (string * int) list

(** Rollbacks suffered during the run, in execution order. Always
    empty under [Strict] (which aborts instead of rolling back). *)
val incidents : report -> Guard.incident list

(** GC delta over the whole compile span ({!Gcstats}): everything the
    run allocated, passes and glue alike. *)
val total_gc : report -> Gcstats.t

(** Per-pass table (with per-pass compiler allocation) followed by a
    GC summary line and the GHC-style "Total ticks" table. *)
val pp_report : Format.formatter -> report -> unit

(** The full trace as JSON: [{mode, policy, input_size, output_size,
    total_ms, total_gc, total_ticks, contified, ticks: {name: count},
    decisions: {fired, rejected, counts}, incidents: [incident],
    passes: [{name, duration_ms, lint_ms, size_before, size_after,
    joins_after, shape_after: {nodes, depth, heap_words}, gc, ticks,
    decisions, incident?}]}] — see {!Guard.incident_json} and
    {!Gcstats.to_json} for the nested shapes. *)
val report_to_json : report -> string

(** Compact optimizer summary for benchmark trajectory files:
    [{total_ms, total_gc, total_ticks, contified, ticks, decisions,
    metrics}]. *)
val summary_json : report -> Telemetry.Json.t

(** Chrome trace-event JSON over one or more runs — one Perfetto track
    per report, named by its configuration, plus a [gc_words/<mode>]
    counter track with one sample per pass boundary (minor / major /
    promoted words allocated by that pass); histogram summaries under
    [otherData.metrics]. Loadable in https://ui.perfetto.dev. *)
val perfetto_json : ?file:string -> report list -> Telemetry.Json.t

(** Run the configured pipeline; also returns the structured trace. *)
val run_report : config -> Syntax.expr -> Syntax.expr * report

val run : config -> Syntax.expr -> Syntax.expr

(** Optimise under every mode (used by the benchmark harness). *)
val run_all_modes :
  ?iterations:int ->
  ?datacons:Datacon.env ->
  Syntax.expr ->
  (mode * Syntax.expr) list
