(** Demand (strictness) analysis and strictification.

    Sec. 7 of the paper: "Strictness analysis is as useful for join
    points as it is for ordinary let bindings", with the
    worker/wrapper transform adjusted so the pieces remain join
    points. This module implements the part of that story that matters
    for allocation:

    - {!strict_vars} computes which free variables an expression
      {e certainly forces} before producing a WHNF (a 2-point demand
      domain). Jumps to join points (and saturated calls to known
      functions) propagate the demand of the callee's strict
      parameters into the corresponding arguments; for {e recursive}
      groups the parameter masks are computed as a (descending)
      fixpoint, exactly as in GHC's demand analyser.
    - {!strictify} uses the masks to
      {ul {- turn demanded lazy [let]s into {!Syntax.Strict} bindings;}
          {- wrap the strict arguments of jumps and saturated calls in
             strict bindings, forcing them before the transfer.}}

    The payoff is GHC's: a tail-recursive loop whose accumulator is
    strictly used no longer allocates a thunk per iteration — the
    argument is evaluated before the jump, and an unboxed result binds
    for free. Forcing early is sound exactly because the analysis
    proved the value would be forced anyway (or the program diverges
    either way). *)

open Syntax

(* ------------------------------------------------------------------ *)
(* The analysis                                                        *)
(* ------------------------------------------------------------------ *)

(** Strictness environment: binder unique -> (value arity, parameter
    strictness mask). Entries exist for join points and for let-bound
    functions whose definition is in scope. *)
type fenv = (int * bool list) Ident.Map.t

(** Free variables certainly forced before [e] yields a WHNF, given
    strictness masks for in-scope join points and functions. *)
let rec strict_vars (fenv : fenv) (e : expr) : Ident.Set.t =
  match e with
  | Var v -> Ident.Set.singleton v.v_name
  | Lit _ | Lam _ | TyLam _ | Con _ ->
      (* Already WHNF; constructor fields are lazy. *)
      Ident.Set.empty
  | Prim (_, es) ->
      (* Primops are strict in every argument. *)
      List.fold_left
        (fun acc e -> Ident.Set.union acc (strict_vars fenv e))
        Ident.Set.empty es
  | App _ | TyApp _ -> spine_strict fenv e
  | Case (scrut, alts) ->
      let branches =
        List.map
          (fun { alt_pat; alt_rhs } ->
            List.fold_left
              (fun s (x : var) -> Ident.Set.remove x.v_name s)
              (strict_vars fenv alt_rhs) (pat_binders alt_pat))
          alts
      in
      let meet =
        match branches with
        | [] -> Ident.Set.empty
        | b :: bs -> List.fold_left Ident.Set.inter b bs
      in
      Ident.Set.union (strict_vars fenv scrut) meet
  | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
      let sb = strict_vars fenv body in
      let s = Ident.Set.remove x.v_name sb in
      if Ident.Set.mem x.v_name sb then
        Ident.Set.union s (strict_vars fenv rhs)
      else s
  | Let (Rec pairs, body) ->
      (* Compute the group's parameter masks (fixpoint) so calls to the
         local functions propagate demand into their arguments. *)
      let defs =
        List.filter_map
          (fun ((x : var), rhs) ->
            let binders, b = collect_binders rhs in
            let params =
              List.filter_map
                (function `Val x -> Some x | `Ty _ -> None)
                binders
            in
            if params = [] then None else Some (x, params, b))
          pairs
      in
      let fenv' =
        List.fold_left
          (fun fe (name, m) -> Ident.Map.add name m fe)
          fenv (fix_masks fenv defs)
      in
      List.fold_left
        (fun s ((x : var), _) -> Ident.Set.remove x.v_name s)
        (strict_vars fenv' body) pairs
  | Join (jb, body) ->
      (* The body runs first. Jumps inside it propagate demand into
         their arguments via the masks (threaded by the caller through
         [fenv]); the labels themselves are not values. *)
      List.fold_left
        (fun s (j : var) -> Ident.Set.remove j.v_name s)
        (strict_vars fenv body)
        (binders_of_jbind jb)
  | Jump (j, _, es, _) -> (
      match Ident.Map.find_opt j.v_name fenv with
      | Some (_, mask) when List.length mask = List.length es ->
          List.fold_left2
            (fun acc strict e ->
              if strict then Ident.Set.union acc (strict_vars fenv e)
              else acc)
            Ident.Set.empty mask es
      | _ -> Ident.Set.empty)

(* A saturated call to a function with a known mask forces the head and
   the strict arguments. *)
and spine_strict fenv e =
  let head, args = collect_args e in
  let vargs =
    List.filter_map (function `Val a -> Some a | `Ty _ -> None) args
  in
  match head with
  | Var v -> (
      let self = Ident.Set.singleton v.v_name in
      match Ident.Map.find_opt v.v_name fenv with
      | Some (arity, mask) when List.length vargs = arity ->
          List.fold_left2
            (fun acc strict a ->
              if strict then Ident.Set.union acc (strict_vars fenv a)
              else acc)
            self mask vargs
      | _ -> self)
  | _ -> strict_vars fenv head

(** Which parameters of a (stripped) body are strictly demanded. *)
and strict_params fenv (params : var list) (body : expr) : bool list =
  let s = strict_vars fenv body in
  List.map (fun (p : var) -> Ident.Set.mem p.v_name s) params

(* Descending fixpoint for a recursive group: start with every
   parameter assumed strict; recompute until the masks stabilise. *)
and fix_masks (fenv : fenv) (defs : (var * var list * expr) list) :
    (Ident.t * (int * bool list)) list =
  let init =
    List.map
      (fun ((jv : var), params, _) ->
        (jv.v_name, (List.length params, List.map (fun _ -> true) params)))
      defs
  in
  let rec iterate masks =
    let env =
      List.fold_left
        (fun fe (name, m) -> Ident.Map.add name m fe)
        fenv masks
    in
    let masks' =
      List.map
        (fun ((jv : var), params, body) ->
          (jv.v_name, (List.length params, strict_params env params body)))
        defs
    in
    if masks' = masks then masks else iterate masks'
  in
  iterate init

(* ------------------------------------------------------------------ *)
(* Strictification                                                     *)
(* ------------------------------------------------------------------ *)

(* Strictification counts are reported per-invocation via Telemetry
   ([Strict_let] / [Strict_arg] ticks). *)

(* Is it worth (and sound by demand) forcing this argument early? WHNFs
   and trivial expressions gain nothing. *)
let worth_forcing e = not (is_trivial e || is_whnf e)

(* Wrap the strict arguments of an argument list in strict bindings
   around [mk args']. [site] is the call/jump target, for the ledger. *)
let strictify_args ~(site : string) (mask : bool list) (es : expr list)
    (mk : expr list -> expr) : expr =
  let wraps = ref [] in
  let es' =
    List.map2
      (fun strict e ->
        if strict && worth_forcing e then begin
          Telemetry.tick Telemetry.Strict_arg;
          Decision.record ~pass:"demand" Decision.Strict_arg ~site
            Decision.Fired;
          let ty = match ty_of e with t -> t | exception _ -> Types.unit in
          let t = mk_var "s" ty in
          wraps := (fun body -> Let (Strict (t, e), body)) :: !wraps;
          Var t
        end
        else e)
      mask es
  in
  List.fold_left (fun body w -> w body) (mk es') !wraps

let mask_of_lambda fenv rhs =
  let binders, body = collect_binders rhs in
  let params =
    List.filter_map (function `Val x -> Some x | `Ty _ -> None) binders
  in
  if params = [] then None
  else Some (List.length params, strict_params fenv params body)

(* Strip a lambda chain to (params, body); [None] if no value params. *)
let lambda_parts rhs =
  let binders, body = collect_binders rhs in
  let params =
    List.filter_map (function `Val x -> Some x | `Ty _ -> None) binders
  in
  if params = [] then None else Some (params, body)

(** One bottom-up strictification pass. *)
let rec strictify_expr (fenv : fenv) (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map (strictify_expr fenv) es)
  | Prim (op, es) -> Prim (op, List.map (strictify_expr fenv) es)
  | App _ | TyApp _ -> strictify_spine fenv e
  | Lam (x, b) -> Lam (x, strictify_expr fenv b)
  | TyLam (a, b) -> TyLam (a, strictify_expr fenv b)
  | Let (NonRec (x, rhs), body) ->
      let rhs = strictify_expr fenv rhs in
      let fenv_body =
        match mask_of_lambda fenv rhs with
        | Some m -> Ident.Map.add x.v_name m fenv
        | None -> fenv
      in
      let body = strictify_expr fenv_body body in
      (* Demanded lazy bindings become strict bindings. The demand set
         is only computed when it can matter — or when a ledger wants
         the demanded-but-already-WHNF refusals too. *)
      let forced = worth_forcing rhs in
      if forced || Decision.enabled () then begin
        let demanded =
          Ident.Set.mem x.v_name (strict_vars fenv_body body)
        in
        if forced && demanded then begin
          Telemetry.tick Telemetry.Strict_let;
          Decision.record ~pass:"demand" Decision.Strict_let
            ~site:(Ident.site x.v_name) Decision.Fired;
          Let (Strict (x, rhs), body)
        end
        else begin
          if demanded && not forced then
            Decision.record ~pass:"demand" Decision.Strict_let
              ~site:(Ident.site x.v_name)
              (Decision.Rejected Decision.Already_whnf);
          Let (NonRec (x, rhs), body)
        end
      end
      else Let (NonRec (x, rhs), body)
  | Let (Strict (x, rhs), body) ->
      Let (Strict (x, strictify_expr fenv rhs), strictify_expr fenv body)
  | Let (Rec pairs, body) ->
      let defs =
        List.filter_map
          (fun ((x : var), rhs) ->
            Option.map (fun (ps, b) -> (x, ps, b)) (lambda_parts rhs))
          pairs
      in
      let masks = fix_masks fenv defs in
      let fenv' =
        List.fold_left
          (fun fe (name, m) -> Ident.Map.add name m fe)
          fenv masks
      in
      Let
        ( Rec (List.map (fun (x, rhs) -> (x, strictify_expr fenv' rhs)) pairs),
          strictify_expr fenv' body )
  | Case (scrut, alts) ->
      Case
        ( strictify_expr fenv scrut,
          List.map
            (fun a -> { a with alt_rhs = strictify_expr fenv a.alt_rhs })
            alts )
  | Join (jb, body) ->
      let defns = join_defns jb in
      let masks =
        match jb with
        | JNonRec d ->
            [
              ( d.j_var.v_name,
                ( List.length d.j_params,
                  strict_params fenv d.j_params d.j_rhs ) );
            ]
        | JRec ds ->
            fix_masks fenv
              (List.map (fun d -> (d.j_var, d.j_params, d.j_rhs)) ds)
      in
      ignore defns;
      let fenv' =
        List.fold_left
          (fun fe (name, m) -> Ident.Map.add name m fe)
          fenv masks
      in
      (* Jumps inside the rhss (recursive case) see the masks too. *)
      let rhs_env = match jb with JNonRec _ -> fenv | JRec _ -> fenv' in
      let jb' =
        match jb with
        | JNonRec d -> JNonRec { d with j_rhs = strictify_expr rhs_env d.j_rhs }
        | JRec ds ->
            JRec
              (List.map
                 (fun d -> { d with j_rhs = strictify_expr rhs_env d.j_rhs })
                 ds)
      in
      Join (jb', strictify_expr fenv' body)
  | Jump (j, phis, es, ty) -> (
      let es = List.map (strictify_expr fenv) es in
      match Ident.Map.find_opt j.v_name fenv with
      | Some (_, mask) when List.length mask = List.length es ->
          strictify_args ~site:(Ident.site j.v_name) mask es (fun es' ->
              Jump (j, phis, es', ty))
      | _ -> Jump (j, phis, es, ty))

(* Saturated calls to functions with known masks get their strict
   arguments forced early; other spines are just traversed. *)
and strictify_spine fenv e =
  let head, args = collect_args e in
  let vargs =
    List.filter_map (function `Val a -> Some a | `Ty _ -> None) args
  in
  match head with
  | Var v -> (
      match Ident.Map.find_opt v.v_name fenv with
      | Some (arity, mask) when List.length vargs = arity ->
          let vargs = List.map (strictify_expr fenv) vargs in
          strictify_args ~site:(Ident.site v.v_name) mask vargs (fun vargs' ->
              (* Rebuild the spine in the original arg order. *)
              let rec rebuild e args vals =
                match args with
                | [] -> e
                | `Ty t :: rest -> rebuild (TyApp (e, t)) rest vals
                | `Val _ :: rest -> (
                    match vals with
                    | v :: vals -> rebuild (App (e, v)) rest vals
                    | [] -> assert false)
              in
              rebuild (Var v) args vargs')
      | _ -> apps_rebuild fenv head args)
  | _ -> apps_rebuild fenv head args

and apps_rebuild fenv head args =
  let head' = strictify_expr fenv head in
  List.fold_left
    (fun e -> function
      | `Ty t -> TyApp (e, t)
      | `Val a -> App (e, strictify_expr fenv a))
    head' args

(** Run strictification over a whole program. *)
let strictify (e : expr) : expr = strictify_expr Ident.Map.empty e
