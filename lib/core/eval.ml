(** The abstract machine of Fig. 3, with allocation accounting.

    A configuration is (focus expression, stack, heap). We implement it
    as an environment machine: variables map to heap addresses rather
    than being substituted, so evaluation is constant-time per step and
    large benchmark programs run quickly.

    Two evaluation strategies are provided: call-by-name, exactly as in
    Fig. 3, and call-by-need, which is Fig. 3 plus standard update
    frames (the paper: "switching to call-by-need by pushing an update
    frame is absolutely standard"). Benchmarks use call-by-need since
    the paper measures GHC.

    {b Join points are stack-allocated}: a [join] binding captures the
    current stack; a [jump] truncates the stack back to it ("adjust the
    stack and jump", Sec. 2). Neither allocates heap. Everything
    heap-allocated is counted:

    - a constructor with [n > 0] fields costs [n + 1] words;
    - a closure or thunk costs 2 words;
    - literals, nullary constructors, join bindings and jumps are free.

    The counter is the same quantity GHC's [-ticky]/RTS allocation
    statistics measure, which Table 1 of the paper reports.

    {b Profiling.} Passing [?profile] additionally attributes every
    allocation to its {e site} — the name hint of the binder that
    built the object ({!Ident.site}), which the optimiser preserves —
    and records machine events into the profile's bounded trace. Steps
    are charged to the most recently entered cost centre (the thunk
    being forced, the join point jumped to, or the closure entered;
    [Profile.main_site] outside any). Join-labelled sites accumulate
    steps and jumps but never words: the paper's claim, per site.
    Statistics are kept in the machine-neutral {!Mstats} shape so the
    block machine's run of the same program can be cross-checked
    metric by metric. *)

open Syntax

type mode = By_name | By_need

type stats = Mstats.t = {
  mutable steps : int;  (** Machine transitions taken. *)
  mutable objects : int;  (** Heap objects allocated. *)
  mutable words : int;  (** Words allocated (proxy for bytes). *)
  mutable jumps : int;  (** Jumps executed. *)
  mutable joins_entered : int;  (** Join bindings evaluated (free). *)
  mutable calls : int;  (** Applications entering a closure. *)
  mutable updates : int;  (** Thunk updates (call-by-need). *)
  mutable max_stack : int;  (** Stack high-water mark, in frames. *)
}

let fresh_stats = Mstats.create
let pp_stats = Mstats.pp

(* ------------------------------------------------------------------ *)
(* Machine representation                                              *)
(* ------------------------------------------------------------------ *)

type operand = Imm of Literal.t | Ptr of cell ref

and value =
  | VLit of Literal.t
  | VCon of Datacon.t * operand list
  | VFun of string * env * var list * expr
      (** A function closure with its allocation-site label and its
          {e manifest arity}: consecutive value binders are collected
          so saturated curried calls bind all arguments in one step
          without intermediate closures (GHC's eval/apply). A partial
          application re-closes over the bound prefix (a PAP) and is
          counted as an allocation. *)
  | VTyFun of string * env * Ident.t * expr

and cell =
  | Thunk of env * expr * string
      (** Suspended computation, labelled with its allocation site. *)
  | Value of value
  | Blackhole

and env = { vars : operand Ident.Map.t; joins : jpoint Ident.Map.t }

and jpoint = {
  jp_defn : join_defn;
  mutable jp_env : env;  (** Environment at the binding (tied for rec). *)
  jp_stack : frame list;  (** Stack at the binding; a jump resumes here. *)
  jp_depth : int;  (** [List.length jp_stack], tracked incrementally. *)
}

and frame =
  | FArg of env * expr  (** [[] e]: apply the value to argument [e]. *)
  | FTyArg  (** [[] tau]: instantiate (types are erased). *)
  | FCase of env * alt list  (** [case [] of alts]. *)
  | FPrim of Primop.t * value list * (env * expr) list
      (** Primop with evaluated prefix (reversed) and pending args. *)
  | FUpdate of cell ref * string * string
      (** Call-by-need update frame: the cell, the thunk's site (for
          update attribution) and the cost centre to restore. *)
  | FStrict of env * var * expr
      (** Strict-let frame: bind the value, then run the body. *)

let empty_env = { vars = Ident.Map.empty; joins = Ident.Map.empty }

exception Stuck of string
exception Out_of_fuel

let stuck fmt = Fmt.kstr (fun m -> raise (Stuck m)) fmt

(* ------------------------------------------------------------------ *)
(* The machine                                                         *)
(* ------------------------------------------------------------------ *)

type config = {
  mode : mode;
  stats : stats;
  mutable fuel : int;
  prof : Profile.t option;
}

(* Profiler hooks: no-ops when no profile is attached. *)
let p_alloc cfg ~label ~kind ~words =
  match cfg.prof with
  | Some p -> Profile.alloc p ~label ~kind ~words
  | None -> ()

let p_enter cfg label =
  match cfg.prof with Some p -> Profile.enter p label | None -> ()

let p_jump cfg label =
  match cfg.prof with Some p -> Profile.jump p label | None -> ()

let p_update cfg label =
  match cfg.prof with Some p -> Profile.update p label | None -> ()

let p_join_bind cfg label =
  match cfg.prof with Some p -> Profile.join_bind p label | None -> ()

let alloc_cell cfg ~site ~kind ~words c =
  cfg.stats.objects <- cfg.stats.objects + 1;
  cfg.stats.words <- cfg.stats.words + words;
  p_alloc cfg ~label:site ~kind ~words;
  ref c

let closure_words = 2

(* Evaluate "cheap" expressions speculatively: literals, variables
   already pointing at values, and a {e bounded} number of primops over
   cheap arguments. This mirrors the effect of GHC's strictness
   analysis / ok-for-speculation on strict loop arguments (an [Int]
   counter does not allocate a thunk per iteration); like GHC, the
   amount of speculated work is bounded, so a large deferred
   computation still costs a thunk. The speculation applies identically
   under every compiler pipeline, so allocation deltas still isolate
   the join-point effects. *)
let speculation_budget = 8

let rec eval_cheap_b budget env e : value option =
  if !budget < 0 then None
  else
    match e with
    | Lit l -> Some (VLit l)
    | Var v -> (
        match Ident.Map.find_opt v.v_name env.vars with
        | Some (Imm l) -> Some (VLit l)
        | Some (Ptr cell) -> (
            match !cell with Value v -> Some v | _ -> None)
        | None -> None)
    | Prim (op, args) ->
        decr budget;
        if !budget < 0 then None
        else
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | a :: rest -> (
                match eval_cheap_b budget env a with
                | Some v -> go (v :: acc) rest
                | None -> None)
          in
          Option.bind (go [] args) (fun vs -> apply_prim_opt op vs)
    | TyApp (f, _) -> eval_cheap_b budget env f
    | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) -> (
        (* Look through cheap bindings (e.g. demand-analysis wrappers)
           so they do not defeat speculation. *)
        decr budget;
        match eval_cheap_b budget env rhs with
        | Some (VLit l) ->
            eval_cheap_b budget
              { env with vars = Ident.Map.add x.v_name (Imm l) env.vars }
              body
        | Some v ->
            eval_cheap_b budget
              { env with
                vars = Ident.Map.add x.v_name (Ptr (ref (Value v))) env.vars
              }
              body
        | None -> None)
    | _ -> None

and eval_cheap env e : value option =
  eval_cheap_b (ref speculation_budget) env e

and apply_prim_opt op vs : value option =
  let lits =
    List.filter_map (function VLit l -> Some l | _ -> None) vs
  in
  if List.length lits <> List.length vs then None
  else
    match Primop.fold_lit op lits with
    | Some l -> Some (VLit l)
    | None -> (
        match Primop.fold_bool op lits with
        | Some b -> Some (VCon (Datacon.of_bool b, []))
        | None -> None)

let apply_prim op vs =
  match apply_prim_opt op vs with
  | Some v -> v
  | None -> stuck "primop %s applied to bad arguments" (Primop.name op)

(* Turn an argument expression into an operand, allocating a thunk when
   it is neither trivial nor cheaply evaluable. *)
let bind_operand (x : var) op env =
  { env with vars = Ident.Map.add x.v_name op env.vars }

(* Wrap an already-evaluated (and already-counted) value as an operand:
   never allocates. *)
let operand_of_value = function
  | VLit l -> Imm l
  | v -> Ptr (ref (Value v))

(* [site] is the binder (or surrounding cost centre) any fresh thunk or
   WHNF allocation is attributed to. *)
let rec operand_of_arg cfg ~site env e : operand =
  match e with
  | Lit l -> Imm l
  | Var v -> (
      match Ident.Map.find_opt v.v_name env.vars with
      | Some op -> op
      | None -> stuck "unbound variable %a" Ident.pp v.v_name)
  | Con _ | Lam _ | TyLam _ ->
      (* A WHNF argument is built directly (its own allocation is
         counted inside [value_of_whnf]); no extra thunk. *)
      (match value_of_whnf cfg ~site env e with
      | VLit l -> Imm l
      | v -> Ptr (ref (Value v)))
  | _ -> (
      match eval_cheap env e with
      | Some (VLit l) -> Imm l
      | Some (VCon (_, []) as v) ->
          (* Nullary constructors are static: share one cell, count no
             allocation. *)
          Ptr (ref (Value v))
      | Some v ->
          Ptr
            (alloc_cell cfg ~site ~kind:Profile.Thunk ~words:closure_words
               (Value v))
      | None ->
          Ptr
            (alloc_cell cfg ~site ~kind:Profile.Thunk ~words:closure_words
               (Thunk (env, e, site))))

(* Evaluate a WHNF right-hand side directly to a value (used by [let]
   so that a constructor binding allocates a constructor, not a thunk
   around one). *)
and value_of_whnf cfg ~site env e : value =
  match e with
  | Lit l -> VLit l
  | Lam _ ->
      (* Collect the manifest arity: one closure for the whole chain. *)
      let rec collect acc = function
        | Lam (x, b) -> collect (x :: acc) b
        | b -> (List.rev acc, b)
      in
      let params, body = collect [] e in
      cfg.stats.objects <- cfg.stats.objects + 1;
      cfg.stats.words <- cfg.stats.words + closure_words;
      p_alloc cfg ~label:site ~kind:Profile.Closure ~words:closure_words;
      VFun (site, env, params, body)
  | TyLam (a, b) ->
      cfg.stats.objects <- cfg.stats.objects + 1;
      cfg.stats.words <- cfg.stats.words + closure_words;
      p_alloc cfg ~label:site ~kind:Profile.Closure ~words:closure_words;
      VTyFun (site, env, a, b)
  | Con (dc, _, args) ->
      let ops = List.map (operand_of_arg cfg ~site env) args in
      if args <> [] then begin
        cfg.stats.objects <- cfg.stats.objects + 1;
        cfg.stats.words <- cfg.stats.words + 1 + List.length args;
        p_alloc cfg ~label:site ~kind:Profile.Con
          ~words:(1 + List.length args)
      end;
      VCon (dc, ops)
  | _ -> invalid_arg "value_of_whnf: not a WHNF"

and bind_let cfg env (x : var) rhs =
  let site = Ident.site x.v_name in
  if is_whnf rhs then bind_operand x (operand_of_whnf cfg ~site env rhs) env
  else
    (* [operand_of_arg] speculates cheap right-hand sides (variables,
       literals, primops over evaluated operands) without allocating;
       anything else becomes a thunk. *)
    bind_operand x (operand_of_arg cfg ~site env rhs) env

and operand_of_whnf cfg ~site env rhs =
  match value_of_whnf cfg ~site env rhs with
  | VLit l -> Imm l
  | v -> Ptr (ref (Value v))

(* Note: the cell for a WHNF value was already counted inside
   [value_of_whnf]; the [ref] above is representation, not a fresh
   object. *)

let match_alt (dc_opt : [ `Con of Datacon.t | `Lit of Literal.t ]) alts =
  let matches { alt_pat; _ } =
    match (alt_pat, dc_opt) with
    | PCon (d, _), `Con dc -> Datacon.equal d dc
    | PLit l, `Lit l' -> Literal.equal l l'
    | _ -> false
  in
  match List.find_opt matches alts with
  | Some a -> Some a
  | None ->
      List.find_opt (fun { alt_pat; _ } -> alt_pat = PDefault) alts

(** Run [e] in [env0]. Raises {!Stuck} on type errors, {!Out_of_fuel}
    when [fuel] machine steps are exhausted. [profile] attaches a
    per-site profiler (see {!Profile}). *)
let eval_machine ?(mode = By_need) ?(fuel = max_int) ?(env = empty_env)
    ?profile e : value * stats =
  let cfg = { mode; stats = fresh_stats (); fuel; prof = profile } in
  let tick site depth =
    cfg.stats.steps <- cfg.stats.steps + 1;
    if depth > cfg.stats.max_stack then cfg.stats.max_stack <- depth;
    (match cfg.prof with Some p -> Profile.step p site | None -> ());
    cfg.fuel <- cfg.fuel - 1;
    if cfg.fuel <= 0 then raise Out_of_fuel
  in
  (* [run site env e stack depth] — the [push]/[beta]/[bind]/[look]/
     [case]/[jump] transitions. Written in CPS over an explicit stack,
     tail-recursive. [site] is the current cost centre; [depth] tracks
     [List.length stack] incrementally for the high-water mark. *)
  let rec run site env (e : expr) (stack : frame list) (depth : int) : value =
    tick site depth;
    match e with
    | Lit l -> ret site (VLit l) stack depth
    | Var v -> (
        match Ident.Map.find_opt v.v_name env.vars with
        | None -> stuck "unbound variable %a" Ident.pp v.v_name
        | Some (Imm l) -> ret site (VLit l) stack depth
        | Some (Ptr cell) -> force site cell stack depth)
    | Con _ -> ret site (value_of_whnf cfg ~site env e) stack depth
    | Lam _ | TyLam _ -> ret site (value_of_whnf cfg ~site env e) stack depth
    | Prim (op, []) -> ret site (apply_prim op []) stack depth
    | Prim (op, a :: rest) -> (
        match eval_cheap env e with
        | Some v -> ret site v stack depth
        | None ->
            run site env a
              (FPrim (op, [], List.map (fun e -> (env, e)) rest) :: stack)
              (depth + 1))
    | App (f, a) -> run site env f (FArg (env, a) :: stack) (depth + 1)
    | TyApp (f, _) -> run site env f (FTyArg :: stack) (depth + 1)
    | Let (NonRec (x, rhs), body) ->
        run site (bind_let cfg env x rhs) body stack depth
    | Let (Strict (x, rhs), body) ->
        (* Evaluate the right-hand side to WHNF first; an unboxed
           result binds with no allocation. *)
        if is_whnf rhs then run site (bind_let cfg env x rhs) body stack depth
        else (
          match eval_cheap env rhs with
          | Some v ->
              run site (bind_operand x (operand_of_value v) env) body stack
                depth
          | None ->
              run site env rhs (FStrict (env, x, body) :: stack) (depth + 1))
    | Let (Rec pairs, body) ->
        (* Allocate cells first so the closures can see each other. *)
        let cells =
          List.map
            (fun (x, rhs) ->
              ( x,
                rhs,
                alloc_cell cfg
                  ~site:(Ident.site x.v_name)
                  ~kind:Profile.Closure ~words:closure_words Blackhole ))
            pairs
        in
        let env' =
          List.fold_left
            (fun env (x, _, cell) -> bind_operand x (Ptr cell) env)
            env cells
        in
        List.iter
          (fun ((x : var), rhs, cell) ->
            if is_whnf rhs then
              (* The object was already counted as the recursive cell. *)
              cell :=
                Value
                  (match rhs with
                  | Lit l -> VLit l
                  | Lam _ ->
                      let rec collect acc = function
                        | Lam (x, b) -> collect (x :: acc) b
                        | b -> (List.rev acc, b)
                      in
                      let params, body = collect [] rhs in
                      VFun (Ident.site x.v_name, env', params, body)
                  | TyLam (a, b) -> VTyFun (Ident.site x.v_name, env', a, b)
                  | Con (dc, _, args) ->
                      VCon
                        ( dc,
                          List.map
                            (operand_of_arg cfg ~site:(Ident.site x.v_name)
                               env')
                            args )
                  | _ -> assert false)
            else cell := Thunk (env', rhs, Ident.site x.v_name))
          cells;
        run site env' body stack depth
    | Case (scrut, alts) ->
        run site env scrut (FCase (env, alts) :: stack) (depth + 1)
    | Join (jb, body) ->
        cfg.stats.joins_entered <- cfg.stats.joins_entered + 1;
        let ds = join_defns jb in
        let jps =
          List.map
            (fun d ->
              p_join_bind cfg (Ident.site d.j_var.v_name);
              ( d,
                { jp_defn = d; jp_env = env; jp_stack = stack; jp_depth = depth }
              ))
            ds
        in
        let env' =
          List.fold_left
            (fun env (d, jp) ->
              { env with joins = Ident.Map.add d.j_var.v_name jp env.joins })
            env jps
        in
        (* Tie the knot: recursive join points see their siblings. *)
        (match jb with
        | JNonRec _ -> ()
        | JRec _ -> List.iter (fun (_, jp) -> jp.jp_env <- env') jps);
        run site env' body stack depth
    | Jump (j, _, args, _) -> (
        match Ident.Map.find_opt j.v_name env.joins with
        | None -> stuck "jump to unbound label %a" Ident.pp j.v_name
        | Some jp ->
            cfg.stats.jumps <- cfg.stats.jumps + 1;
            let jsite = Ident.site jp.jp_defn.j_var.v_name in
            p_jump cfg jsite;
            let d = jp.jp_defn in
            if List.length args <> List.length d.j_params then
              stuck "jump to %a: wrong arity" Ident.pp j.v_name;
            (* Arguments are prepared in the current environment, each
               thunk attributed to the parameter it is bound to... *)
            let ops =
              List.map2
                (fun (p : var) a ->
                  operand_of_arg cfg ~site:(Ident.site p.v_name) env a)
                d.j_params args
            in
            let env' =
              List.fold_left2
                (fun env p op -> bind_operand p op env)
                jp.jp_env d.j_params ops
            in
            (* ...then the stack is truncated to the binding's: this is
               the [jump] rule popping [s']. No allocation. Steps in
               the right-hand side are charged to the join point. *)
            run jsite env' d.j_rhs jp.jp_stack jp.jp_depth)
  (* Return a value to the topmost frame. *)
  and ret site (v : value) (stack : frame list) (depth : int) : value =
    match stack with
    | [] -> v
    | FUpdate (cell, tsite, restore) :: rest ->
        cell := Value v;
        cfg.stats.updates <- cfg.stats.updates + 1;
        p_update cfg tsite;
        ret restore v rest (depth - 1)
    | FStrict (senv, x, body) :: rest ->
        run site (bind_operand x (operand_of_value v) senv) body rest
          (depth - 1)
    | FArg _ :: _ -> (
        match v with
        | VFun (fsite, cenv, params, body) ->
            (* Bind as many pending arguments as we have parameters;
               a leftover parameter prefix becomes a PAP (allocated);
               leftover argument frames continue on the result. The
               entered function becomes the cost centre. *)
            cfg.stats.calls <- cfg.stats.calls + 1;
            let rec bind env params stack depth =
              match (params, stack) with
              | [], _ ->
                  p_enter cfg fsite;
                  run fsite env body stack depth
              | p :: ps, FArg (aenv, arg) :: rest ->
                  let op =
                    operand_of_arg cfg
                      ~site:(Ident.site (p : var).v_name)
                      aenv arg
                  in
                  bind (bind_operand p op env) ps rest (depth - 1)
              | _ :: _, _ ->
                  (* Under-saturated: allocate a partial application. *)
                  cfg.stats.objects <- cfg.stats.objects + 1;
                  cfg.stats.words <- cfg.stats.words + closure_words;
                  p_alloc cfg ~label:fsite ~kind:Profile.Pap
                    ~words:closure_words;
                  ret site (VFun (fsite, env, params, body)) stack depth
            in
            bind cenv params stack depth
        | _ -> stuck "applying a non-function")
    | FTyArg :: rest -> (
        match v with
        | VTyFun (fsite, cenv, _, body) ->
            cfg.stats.calls <- cfg.stats.calls + 1;
            p_enter cfg fsite;
            run fsite cenv body rest (depth - 1)
        | _ -> stuck "type-applying a non-type-function")
    | FCase (cenv, alts) :: rest -> (
        let alt =
          match v with
          | VCon (dc, _) -> match_alt (`Con dc) alts
          | VLit l -> match_alt (`Lit l) alts
          | _ ->
              (* Functions are already WHNF: casing one is a seq, and
                 only a wildcard alternative can match — agreeing with
                 the block machine's [PAny] and the simplifier's
                 case-elim, which discards exactly such a case. *)
              List.find_opt (fun { alt_pat; _ } -> alt_pat = PDefault) alts
        in
        match alt with
        | None -> stuck "no matching case alternative"
        | Some { alt_pat; alt_rhs } ->
            let env' =
              match (alt_pat, v) with
              | PCon (_, xs), VCon (_, ops) ->
                  List.fold_left2
                    (fun env x op -> bind_operand x op env)
                    cenv xs ops
              | _ -> cenv
            in
            run site env' alt_rhs rest (depth - 1))
    | FPrim (op, done_, pending) :: rest -> (
        let done_ = v :: done_ in
        match pending with
        | [] -> ret site (apply_prim op (List.rev done_)) rest (depth - 1)
        | (penv, pe) :: pending' ->
            run site penv pe (FPrim (op, done_, pending') :: rest) depth)
  (* Force a heap cell. *)
  and force site (cell : cell ref) (stack : frame list) (depth : int) : value
      =
    match !cell with
    | Value v -> ret site v stack depth
    | Blackhole -> stuck "<<loop>> (blackhole entered)"
    | Thunk (tenv, te, tsite) -> (
        p_enter cfg tsite;
        match cfg.mode with
        | By_name ->
            (* No update frame, so no restore point: the thunk's site
               simply becomes the cost centre. *)
            run tsite tenv te stack depth
        | By_need ->
            cell := Blackhole;
            run tsite tenv te
              (FUpdate (cell, tsite, site) :: stack)
              (depth + 1))
  in
  let v = run Profile.main_site env e [] 0 in
  (v, cfg.stats)

(* The public entry point: the machine run is a root span (cat
   ["eval"]) annotated with its step/word counts, and publishes into
   the innermost metrics registry — both no-ops unless an observability
   collector/registry is installed (the per-step hot loop above is
   never touched). *)
let eval ?mode ?fuel ?env ?profile e : value * stats =
  let (v, stats), dur =
    Span.with_span_timed ~cat:"eval" "eval" (fun () ->
        let (v, stats) = eval_machine ?mode ?fuel ?env ?profile e in
        Span.annotate "steps" (Telemetry.Json.Int stats.steps);
        Span.annotate "words" (Telemetry.Json.Int stats.words);
        Span.annotate "jumps" (Telemetry.Json.Int stats.jumps);
        (v, stats))
  in
  Metrics.observe "eval.ms" dur;
  Metrics.observe "eval.steps" (float_of_int stats.steps);
  Metrics.observe "eval.words" (float_of_int stats.words);
  (v, stats)

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

(** A fully-forced first-order view of a value, for comparing results
    across compiler pipelines in tests and benchmarks. Functions print
    as [<fun>]; forcing is bounded by [depth]. *)
type tree = TLit of Literal.t | TCon of string * tree list | TFun

let rec force_deep ?(depth = 1_000_000) ?(fuel = max_int) (v : value) : tree =
  if depth <= 0 then TFun
  else
    match v with
    | VLit l -> TLit l
    | VFun _ | VTyFun _ -> TFun
    | VCon (dc, ops) ->
        TCon
          ( dc.name,
            List.map
              (fun op ->
                let v =
                  match op with
                  | Imm l -> VLit l
                  | Ptr cell -> force_operand ~fuel cell
                in
                force_deep ~depth:(depth - 1) ~fuel v)
              ops )

and force_operand ~fuel (cell : cell ref) : value =
  match !cell with
  | Value v -> v
  | Blackhole -> stuck "<<loop>> (blackhole entered during observation)"
  | Thunk (tenv, te, _) ->
      let v, _ = eval ~mode:By_need ~fuel ~env:tenv te in
      cell := Value v;
      v

let rec equal_tree a b =
  match (a, b) with
  | TLit l, TLit l' -> Literal.equal l l'
  | TCon (c, xs), TCon (c', ys) ->
      String.equal c c'
      && List.length xs = List.length ys
      && List.for_all2 equal_tree xs ys
  | TFun, TFun -> true
  | _ -> false

(* Where do two trees first disagree? A path like "root.1.0" plus a
   one-line description of the disagreement — [None] when equal. *)
let tree_mismatch a b =
  let describe = function
    | TLit l -> Fmt.str "%a" Literal.pp l
    | TCon (c, args) -> Fmt.str "%s/%d" c (List.length args)
    | TFun -> "<fun>"
  in
  let rec go path a b =
    match (a, b) with
    | TLit l, TLit l' when Literal.equal l l' -> None
    | TFun, TFun -> None
    | TCon (c, xs), TCon (c', ys)
      when String.equal c c' && List.length xs = List.length ys ->
        let rec first i = function
          | [], [] -> None
          | x :: xs, y :: ys -> (
              match go (Fmt.str "%s.%d" path i) x y with
              | Some _ as m -> m
              | None -> first (i + 1) (xs, ys))
          | _ -> assert false
        in
        first 0 (xs, ys)
    | _ -> Some (Fmt.str "at %s: %s vs %s" path (describe a) (describe b))
  in
  go "root" a b

let rec pp_tree ppf = function
  | TLit l -> Literal.pp ppf l
  | TFun -> Fmt.string ppf "<fun>"
  | TCon (c, []) -> Fmt.string ppf c
  | TCon (c, args) ->
      Fmt.pf ppf "(%s%a)" c
        Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf " %a" pp_tree t))
        args

(** Run a closed expression and return the deeply-forced result along
    with allocation statistics. The statistics (and the profile, when
    one is attached) do {e not} include work done while forcing the
    result for observation. *)
let run_deep ?(mode = By_need) ?(fuel = max_int) ?profile e : tree * stats =
  let v, stats = eval ~mode ~fuel ?profile e in
  (force_deep ~fuel v, stats)

type outcome =
  | Finished of tree * stats
  | Fuel_exhausted
  | Crashed of string

(** {!run_deep} with the exceptional exits reified: a program that
    diverges (relative to the fuel budget) or gets stuck yields a
    graceful outcome instead of killing the harness — the bench and
    fuzz oracles run generated programs through this. *)
let run_outcome ?mode ?(fuel = max_int) ?profile e : outcome =
  match run_deep ?mode ~fuel ?profile e with
  | t, s -> Finished (t, s)
  | exception Out_of_fuel -> Fuel_exhausted
  | exception Stuck m -> Crashed m
