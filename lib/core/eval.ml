(** The abstract machine of Fig. 3, with allocation accounting.

    A configuration is (focus expression, stack, heap). We implement it
    as an environment machine: variables map to heap addresses rather
    than being substituted, so evaluation is constant-time per step and
    large benchmark programs run quickly.

    Two evaluation strategies are provided: call-by-name, exactly as in
    Fig. 3, and call-by-need, which is Fig. 3 plus standard update
    frames (the paper: "switching to call-by-need by pushing an update
    frame is absolutely standard"). Benchmarks use call-by-need since
    the paper measures GHC.

    {b Join points are stack-allocated}: a [join] binding captures the
    current stack; a [jump] truncates the stack back to it ("adjust the
    stack and jump", Sec. 2). Neither allocates heap. Everything
    heap-allocated is counted:

    - a constructor with [n > 0] fields costs [n + 1] words;
    - a closure or thunk costs 2 words;
    - literals, nullary constructors, join bindings and jumps are free.

    The counter is the same quantity GHC's [-ticky]/RTS allocation
    statistics measure, which Table 1 of the paper reports. *)

open Syntax

type mode = By_name | By_need

type stats = {
  mutable steps : int;  (** Machine transitions taken. *)
  mutable objects : int;  (** Heap objects allocated. *)
  mutable words : int;  (** Words allocated (proxy for bytes). *)
  mutable jumps : int;  (** Jumps executed. *)
  mutable joins_entered : int;  (** Join bindings evaluated (free). *)
}

let fresh_stats () =
  { steps = 0; objects = 0; words = 0; jumps = 0; joins_entered = 0 }

let pp_stats ppf s =
  Fmt.pf ppf "steps=%d allocs=%d words=%d jumps=%d joins=%d" s.steps s.objects
    s.words s.jumps s.joins_entered

(* ------------------------------------------------------------------ *)
(* Machine representation                                              *)
(* ------------------------------------------------------------------ *)

type operand = Imm of Literal.t | Ptr of cell ref

and value =
  | VLit of Literal.t
  | VCon of Datacon.t * operand list
  | VFun of env * var list * expr
      (** A function closure with its {e manifest arity}: consecutive
          value binders are collected so saturated curried calls bind
          all arguments in one step without intermediate closures
          (GHC's eval/apply). A partial application re-closes over the
          bound prefix (a PAP) and is counted as an allocation. *)
  | VTyFun of env * Ident.t * expr

and cell = Thunk of env * expr | Value of value | Blackhole

and env = { vars : operand Ident.Map.t; joins : jpoint Ident.Map.t }

and jpoint = {
  jp_defn : join_defn;
  mutable jp_env : env;  (** Environment at the binding (tied for rec). *)
  jp_stack : frame list;  (** Stack at the binding; a jump resumes here. *)
}

and frame =
  | FArg of env * expr  (** [[] e]: apply the value to argument [e]. *)
  | FTyArg  (** [[] tau]: instantiate (types are erased). *)
  | FCase of env * alt list  (** [case [] of alts]. *)
  | FPrim of Primop.t * value list * (env * expr) list
      (** Primop with evaluated prefix (reversed) and pending args. *)
  | FUpdate of cell ref  (** Call-by-need update frame. *)
  | FStrict of env * var * expr
      (** Strict-let frame: bind the value, then run the body. *)

let empty_env = { vars = Ident.Map.empty; joins = Ident.Map.empty }

exception Stuck of string
exception Out_of_fuel

let stuck fmt = Fmt.kstr (fun m -> raise (Stuck m)) fmt

(* ------------------------------------------------------------------ *)
(* The machine                                                         *)
(* ------------------------------------------------------------------ *)

type config = { mode : mode; stats : stats; mutable fuel : int }

let alloc_cell cfg ~words c =
  cfg.stats.objects <- cfg.stats.objects + 1;
  cfg.stats.words <- cfg.stats.words + words;
  ref c

let closure_words = 2

(* Evaluate "cheap" expressions speculatively: literals, variables
   already pointing at values, and a {e bounded} number of primops over
   cheap arguments. This mirrors the effect of GHC's strictness
   analysis / ok-for-speculation on strict loop arguments (an [Int]
   counter does not allocate a thunk per iteration); like GHC, the
   amount of speculated work is bounded, so a large deferred
   computation still costs a thunk. The speculation applies identically
   under every compiler pipeline, so allocation deltas still isolate
   the join-point effects. *)
let speculation_budget = 8

let rec eval_cheap_b budget env e : value option =
  if !budget < 0 then None
  else
    match e with
    | Lit l -> Some (VLit l)
    | Var v -> (
        match Ident.Map.find_opt v.v_name env.vars with
        | Some (Imm l) -> Some (VLit l)
        | Some (Ptr cell) -> (
            match !cell with Value v -> Some v | _ -> None)
        | None -> None)
    | Prim (op, args) ->
        decr budget;
        if !budget < 0 then None
        else
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | a :: rest -> (
                match eval_cheap_b budget env a with
                | Some v -> go (v :: acc) rest
                | None -> None)
          in
          Option.bind (go [] args) (fun vs -> apply_prim_opt op vs)
    | TyApp (f, _) -> eval_cheap_b budget env f
    | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) -> (
        (* Look through cheap bindings (e.g. demand-analysis wrappers)
           so they do not defeat speculation. *)
        decr budget;
        match eval_cheap_b budget env rhs with
        | Some (VLit l) ->
            eval_cheap_b budget
              { env with vars = Ident.Map.add x.v_name (Imm l) env.vars }
              body
        | Some v ->
            eval_cheap_b budget
              { env with
                vars = Ident.Map.add x.v_name (Ptr (ref (Value v))) env.vars
              }
              body
        | None -> None)
    | _ -> None

and eval_cheap env e : value option =
  eval_cheap_b (ref speculation_budget) env e

and apply_prim_opt op vs : value option =
  let lits =
    List.filter_map (function VLit l -> Some l | _ -> None) vs
  in
  if List.length lits <> List.length vs then None
  else
    match Primop.fold_lit op lits with
    | Some l -> Some (VLit l)
    | None -> (
        match Primop.fold_bool op lits with
        | Some b -> Some (VCon (Datacon.of_bool b, []))
        | None -> None)

let apply_prim op vs =
  match apply_prim_opt op vs with
  | Some v -> v
  | None -> stuck "primop %s applied to bad arguments" (Primop.name op)

(* Turn an argument expression into an operand, allocating a thunk when
   it is neither trivial nor cheaply evaluable. *)
let bind_operand (x : var) op env =
  { env with vars = Ident.Map.add x.v_name op env.vars }

(* Wrap an already-evaluated (and already-counted) value as an operand:
   never allocates. *)
let operand_of_value = function
  | VLit l -> Imm l
  | v -> Ptr (ref (Value v))

let rec operand_of_arg cfg env e : operand =
  match e with
  | Lit l -> Imm l
  | Var v -> (
      match Ident.Map.find_opt v.v_name env.vars with
      | Some op -> op
      | None -> stuck "unbound variable %a" Ident.pp v.v_name)
  | Con _ | Lam _ | TyLam _ ->
      (* A WHNF argument is built directly (its own allocation is
         counted inside [value_of_whnf]); no extra thunk. *)
      (match value_of_whnf cfg env e with
      | VLit l -> Imm l
      | v -> Ptr (ref (Value v)))
  | _ -> (
      match eval_cheap env e with
      | Some (VLit l) -> Imm l
      | Some (VCon (_, []) as v) ->
          (* Nullary constructors are static: share one cell, count no
             allocation. *)
          Ptr (ref (Value v))
      | Some v ->
          Ptr (alloc_cell cfg ~words:closure_words (Value v))
      | None -> Ptr (alloc_cell cfg ~words:closure_words (Thunk (env, e))))

(* Evaluate a WHNF right-hand side directly to a value (used by [let]
   so that a constructor binding allocates a constructor, not a thunk
   around one). *)
and value_of_whnf cfg env e : value =
  match e with
  | Lit l -> VLit l
  | Lam _ ->
      (* Collect the manifest arity: one closure for the whole chain. *)
      let rec collect acc = function
        | Lam (x, b) -> collect (x :: acc) b
        | b -> (List.rev acc, b)
      in
      let params, body = collect [] e in
      cfg.stats.objects <- cfg.stats.objects + 1;
      cfg.stats.words <- cfg.stats.words + closure_words;
      VFun (env, params, body)
  | TyLam (a, b) ->
      cfg.stats.objects <- cfg.stats.objects + 1;
      cfg.stats.words <- cfg.stats.words + closure_words;
      VTyFun (env, a, b)
  | Con (dc, _, args) ->
      let ops = List.map (operand_of_arg cfg env) args in
      if args <> [] then begin
        cfg.stats.objects <- cfg.stats.objects + 1;
        cfg.stats.words <- cfg.stats.words + 1 + List.length args
      end;
      VCon (dc, ops)
  | _ -> invalid_arg "value_of_whnf: not a WHNF"

and bind_let cfg env (x : var) rhs =
  if is_whnf rhs then bind_operand x (operand_of_whnf cfg env rhs) env
  else
    (* [operand_of_arg] speculates cheap right-hand sides (variables,
       literals, primops over evaluated operands) without allocating;
       anything else becomes a thunk. *)
    bind_operand x (operand_of_arg cfg env rhs) env

and operand_of_whnf cfg env rhs =
  match value_of_whnf cfg env rhs with
  | VLit l -> Imm l
  | v -> Ptr (ref (Value v))

(* Note: the cell for a WHNF value was already counted inside
   [value_of_whnf]; the [ref] above is representation, not a fresh
   object. *)

let match_alt (dc_opt : [ `Con of Datacon.t | `Lit of Literal.t ]) alts =
  let matches { alt_pat; _ } =
    match (alt_pat, dc_opt) with
    | PCon (d, _), `Con dc -> Datacon.equal d dc
    | PLit l, `Lit l' -> Literal.equal l l'
    | _ -> false
  in
  match List.find_opt matches alts with
  | Some a -> Some a
  | None ->
      List.find_opt (fun { alt_pat; _ } -> alt_pat = PDefault) alts

(** Run [e] in [env0]. Raises {!Stuck} on type errors, {!Out_of_fuel}
    when [fuel] machine steps are exhausted. *)
let eval ?(mode = By_need) ?(fuel = max_int) ?(env = empty_env) e :
    value * stats =
  let cfg = { mode; stats = fresh_stats (); fuel } in
  let tick () =
    cfg.stats.steps <- cfg.stats.steps + 1;
    cfg.fuel <- cfg.fuel - 1;
    if cfg.fuel <= 0 then raise Out_of_fuel
  in
  (* [run env e stack] — the [push]/[beta]/[bind]/[look]/[case]/[jump]
     transitions. Written in CPS over an explicit stack, tail-recursive. *)
  let rec run env (e : expr) (stack : frame list) : value =
    tick ();
    match e with
    | Lit l -> ret (VLit l) stack
    | Var v -> (
        match Ident.Map.find_opt v.v_name env.vars with
        | None -> stuck "unbound variable %a" Ident.pp v.v_name
        | Some (Imm l) -> ret (VLit l) stack
        | Some (Ptr cell) -> force cell stack)
    | Con _ -> ret (value_of_whnf cfg env e) stack
    | Lam _ | TyLam _ -> ret (value_of_whnf cfg env e) stack
    | Prim (op, []) -> ret (apply_prim op []) stack
    | Prim (op, a :: rest) -> (
        match eval_cheap env e with
        | Some v -> ret v stack
        | None ->
            run env a (FPrim (op, [], List.map (fun e -> (env, e)) rest) :: stack))
    | App (f, a) -> run env f (FArg (env, a) :: stack)
    | TyApp (f, _) -> run env f (FTyArg :: stack)
    | Let (NonRec (x, rhs), body) ->
        run (bind_let cfg env x rhs) body stack
    | Let (Strict (x, rhs), body) ->
        (* Evaluate the right-hand side to WHNF first; an unboxed
           result binds with no allocation. *)
        if is_whnf rhs then run (bind_let cfg env x rhs) body stack
        else (
          match eval_cheap env rhs with
          | Some v ->
              run (bind_operand x (operand_of_value v) env) body stack
          | None -> run env rhs (FStrict (env, x, body) :: stack))
    | Let (Rec pairs, body) ->
        (* Allocate cells first so the closures can see each other. *)
        let cells =
          List.map
            (fun (x, rhs) ->
              (x, rhs, alloc_cell cfg ~words:closure_words Blackhole))
            pairs
        in
        let env' =
          List.fold_left
            (fun env (x, _, cell) -> bind_operand x (Ptr cell) env)
            env cells
        in
        List.iter
          (fun (_, rhs, cell) ->
            if is_whnf rhs then
              (* The object was already counted as the recursive cell. *)
              cell :=
                Value
                  (match rhs with
                  | Lit l -> VLit l
                  | Lam _ ->
                      let rec collect acc = function
                        | Lam (x, b) -> collect (x :: acc) b
                        | b -> (List.rev acc, b)
                      in
                      let params, body = collect [] rhs in
                      VFun (env', params, body)
                  | TyLam (a, b) -> VTyFun (env', a, b)
                  | Con (dc, _, args) ->
                      VCon (dc, List.map (operand_of_arg cfg env') args)
                  | _ -> assert false)
            else cell := Thunk (env', rhs))
          cells;
        run env' body stack
    | Case (scrut, alts) -> run env scrut (FCase (env, alts) :: stack)
    | Join (jb, body) ->
        cfg.stats.joins_entered <- cfg.stats.joins_entered + 1;
        let ds = join_defns jb in
        let jps =
          List.map
            (fun d -> (d, { jp_defn = d; jp_env = env; jp_stack = stack }))
            ds
        in
        let env' =
          List.fold_left
            (fun env (d, jp) ->
              { env with joins = Ident.Map.add d.j_var.v_name jp env.joins })
            env jps
        in
        (* Tie the knot: recursive join points see their siblings. *)
        (match jb with
        | JNonRec _ -> ()
        | JRec _ -> List.iter (fun (_, jp) -> jp.jp_env <- env') jps);
        run env' body stack
    | Jump (j, _, args, _) -> (
        match Ident.Map.find_opt j.v_name env.joins with
        | None -> stuck "jump to unbound label %a" Ident.pp j.v_name
        | Some jp ->
            cfg.stats.jumps <- cfg.stats.jumps + 1;
            let d = jp.jp_defn in
            if List.length args <> List.length d.j_params then
              stuck "jump to %a: wrong arity" Ident.pp j.v_name;
            (* Arguments are prepared in the current environment... *)
            let ops = List.map (operand_of_arg cfg env) args in
            let env' =
              List.fold_left2
                (fun env p op -> bind_operand p op env)
                jp.jp_env d.j_params ops
            in
            (* ...then the stack is truncated to the binding's: this is
               the [jump] rule popping [s']. No allocation. *)
            run env' d.j_rhs jp.jp_stack)
  (* Return a value to the topmost frame. *)
  and ret (v : value) (stack : frame list) : value =
    match stack with
    | [] -> v
    | FUpdate cell :: rest ->
        cell := Value v;
        ret v rest
    | FStrict (senv, x, body) :: rest ->
        run (bind_operand x (operand_of_value v) senv) body rest
    | FArg _ :: _ -> (
        match v with
        | VFun (cenv, params, body) ->
            (* Bind as many pending arguments as we have parameters;
               a leftover parameter prefix becomes a PAP (allocated);
               leftover argument frames continue on the result. *)
            let rec bind env params stack =
              match (params, stack) with
              | [], _ -> run env body stack
              | _ :: _, FArg (aenv, arg) :: rest ->
                  let op = operand_of_arg cfg aenv arg in
                  bind
                    (bind_operand (List.hd params) op env)
                    (List.tl params) rest
              | _ :: _, _ ->
                  (* Under-saturated: allocate a partial application. *)
                  cfg.stats.objects <- cfg.stats.objects + 1;
                  cfg.stats.words <- cfg.stats.words + closure_words;
                  ret (VFun (env, params, body)) stack
            in
            bind cenv params stack
        | _ -> stuck "applying a non-function")
    | FTyArg :: rest -> (
        match v with
        | VTyFun (cenv, _, body) -> run cenv body rest
        | _ -> stuck "type-applying a non-type-function")
    | FCase (cenv, alts) :: rest -> (
        let key =
          match v with
          | VCon (dc, _) -> `Con dc
          | VLit l -> `Lit l
          | _ -> stuck "case on a function value"
        in
        match match_alt key alts with
        | None -> stuck "no matching case alternative"
        | Some { alt_pat; alt_rhs } ->
            let env' =
              match (alt_pat, v) with
              | PCon (_, xs), VCon (_, ops) ->
                  List.fold_left2
                    (fun env x op -> bind_operand x op env)
                    cenv xs ops
              | _ -> cenv
            in
            run env' alt_rhs rest)
    | FPrim (op, done_, pending) :: rest -> (
        let done_ = v :: done_ in
        match pending with
        | [] -> ret (apply_prim op (List.rev done_)) rest
        | (penv, pe) :: pending' ->
            run penv pe (FPrim (op, done_, pending') :: rest))
  (* Force a heap cell. *)
  and force (cell : cell ref) (stack : frame list) : value =
    match !cell with
    | Value v -> ret v stack
    | Blackhole -> stuck "<<loop>> (blackhole entered)"
    | Thunk (tenv, te) -> (
        match cfg.mode with
        | By_name -> run tenv te stack
        | By_need ->
            cell := Blackhole;
            run tenv te (FUpdate cell :: stack))
  in
  let v = run env e [] in
  (v, cfg.stats)

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

(** A fully-forced first-order view of a value, for comparing results
    across compiler pipelines in tests and benchmarks. Functions print
    as [<fun>]; forcing is bounded by [depth]. *)
type tree = TLit of Literal.t | TCon of string * tree list | TFun

let rec force_deep ?(depth = 1_000_000) ?(fuel = max_int) (v : value) : tree =
  if depth <= 0 then TFun
  else
    match v with
    | VLit l -> TLit l
    | VFun _ | VTyFun _ -> TFun
    | VCon (dc, ops) ->
        TCon
          ( dc.name,
            List.map
              (fun op ->
                let v =
                  match op with
                  | Imm l -> VLit l
                  | Ptr cell -> force_operand ~fuel cell
                in
                force_deep ~depth:(depth - 1) ~fuel v)
              ops )

and force_operand ~fuel (cell : cell ref) : value =
  match !cell with
  | Value v -> v
  | Blackhole -> stuck "<<loop>> (blackhole entered during observation)"
  | Thunk (tenv, te) ->
      let v, _ = eval ~mode:By_need ~fuel ~env:tenv te in
      cell := Value v;
      v

let rec equal_tree a b =
  match (a, b) with
  | TLit l, TLit l' -> Literal.equal l l'
  | TCon (c, xs), TCon (c', ys) ->
      String.equal c c'
      && List.length xs = List.length ys
      && List.for_all2 equal_tree xs ys
  | TFun, TFun -> true
  | _ -> false

(* Where do two trees first disagree? A path like "root.1.0" plus a
   one-line description of the disagreement — [None] when equal. *)
let tree_mismatch a b =
  let describe = function
    | TLit l -> Fmt.str "%a" Literal.pp l
    | TCon (c, args) -> Fmt.str "%s/%d" c (List.length args)
    | TFun -> "<fun>"
  in
  let rec go path a b =
    match (a, b) with
    | TLit l, TLit l' when Literal.equal l l' -> None
    | TFun, TFun -> None
    | TCon (c, xs), TCon (c', ys)
      when String.equal c c' && List.length xs = List.length ys ->
        let rec first i = function
          | [], [] -> None
          | x :: xs, y :: ys -> (
              match go (Fmt.str "%s.%d" path i) x y with
              | Some _ as m -> m
              | None -> first (i + 1) (xs, ys))
          | _ -> assert false
        in
        first 0 (xs, ys)
    | _ -> Some (Fmt.str "at %s: %s vs %s" path (describe a) (describe b))
  in
  go "root" a b

let rec pp_tree ppf = function
  | TLit l -> Literal.pp ppf l
  | TFun -> Fmt.string ppf "<fun>"
  | TCon (c, []) -> Fmt.string ppf c
  | TCon (c, args) ->
      Fmt.pf ppf "(%s%a)" c
        Fmt.(list ~sep:nop (fun ppf t -> Fmt.pf ppf " %a" pp_tree t))
        args

(** Run a closed expression and return the deeply-forced result along
    with allocation statistics. The statistics do {e not} include work
    done while forcing the result for observation. *)
let run_deep ?(mode = By_need) ?(fuel = max_int) e : tree * stats =
  let v, stats = eval ~mode ~fuel e in
  (force_deep ~fuel v, stats)
