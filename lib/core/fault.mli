(** Fault injection: armable named failure points inside the
    Core-to-Core passes, so the {!Guard} recovery machinery is
    testable.

    Each optimisation pass threads its result through a named
    {!point}. Unarmed points are identity and cost one table lookup;
    an armed point misbehaves in one of four characteristic ways —
    the exact failure modes the pass harness must contain:

    - [Raise]: the pass throws;
    - [Ill_typed]: the pass returns a tree that breaks the Fig. 2
      typing rules (caught by the lint gate);
    - [Burn_fuel]: the pass spins, spending {!Guard.spend} fuel until
      the budget cuts it off (a "runaway simplifier");
    - [Grow]: the pass returns a well-typed but size-exploded tree
      (caught by the size ceiling).

    The registry is global mutable state (the points live inside pass
    code with no configuration path); use {!with_armed} to scope the
    arming, and {!fired} to assert a point actually triggered. *)

type behaviour = Raise | Ill_typed | Burn_fuel | Grow

val behaviour_name : behaviour -> string

(** Parse ["raise" | "ill-typed" | "burn-fuel" | "grow"]. *)
val behaviour_of_string : string -> behaviour option

(** Raised by a point armed with [Raise]. *)
exception Injected of string

(** Every failure point compiled into the passes, in display order. *)
val points : string list

(** Arm a point. @raise Invalid_argument on an unknown point name. *)
val arm : string -> behaviour -> unit

val disarm : string -> unit
val disarm_all : unit -> unit

(** Currently armed points, with their behaviour. *)
val armed : unit -> (string * behaviour) list

(** Points that have triggered (acted while armed) since the last
    {!reset_fired}. *)
val fired : unit -> string list

val reset_fired : unit -> unit

(** [with_armed arms f] arms the given points for the dynamic extent
    of [f] (clearing the fired set first), then restores the previous
    arming. *)
val with_armed : (string * behaviour) list -> (unit -> 'a) -> 'a

(** The hook the passes call: [point name e] returns [e] unless [name]
    is armed, in which case it misbehaves per the armed behaviour.
    @raise Invalid_argument on an unknown point name, so a typo in a
    pass cannot silently create an unarmable point. *)
val point : string -> Syntax.expr -> Syntax.expr
