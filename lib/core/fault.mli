(** Fault injection: armable named failure points inside the
    Core-to-Core passes, so the {!Guard} recovery machinery is
    testable.

    Each optimisation pass threads its result through a named
    {!point}. Unarmed points are identity and cost one table lookup;
    an armed point misbehaves in one of four characteristic ways —
    the exact failure modes the pass harness must contain:

    - [Raise]: the pass throws;
    - [Ill_typed]: the pass returns a tree that breaks the Fig. 2
      typing rules (caught by the lint gate);
    - [Burn_fuel]: the pass spins, spending {!Guard.spend} fuel until
      the budget cuts it off (a "runaway simplifier");
    - [Grow]: the pass returns a well-typed but size-exploded tree
      (caught by the size ceiling).

    The registry is global mutable state (the points live inside pass
    code with no configuration path); use {!with_armed} to scope the
    arming, and {!fired} to assert a point actually triggered. The
    whole registry is mutex-protected: the compile service arms points
    before spawning workers, but every worker domain consults (and,
    with a fire limit, decrements) the table concurrently.

    Beyond the pass points, three {e service-layer} points exercise
    the compile-service robustness machinery; they are consulted via
    {!trigger} (the caller implements the misbehaviour, since it is
    not a tree transformation):

    - ["service/worker"] — the worker loop crashes mid-request
      ([Raise]; any other behaviour is treated the same), proving
      supervision: respawn, re-queue, retry;
    - ["service/cache"] — the cache write path corrupts the entry body
      on disk, proving integrity verification: quarantine + recompute,
      never serve;
    - ["service/slow-pass"] — the request burns its wall-clock
      deadline, proving the watchdog: deadline expiry is a transient
      failure with retry/degrade, never a hang. *)

type behaviour = Raise | Ill_typed | Burn_fuel | Grow

val behaviour_name : behaviour -> string

(** Parse ["raise" | "ill-typed" | "burn-fuel" | "grow"]. *)
val behaviour_of_string : string -> behaviour option

(** Raised by a point armed with [Raise]. *)
exception Injected of string

(** Every failure point compiled into the passes, in display order. *)
val points : string list

(** The tree-valued pass points ({!point}). *)
val pass_points : string list

(** The service-layer points ({!trigger}). *)
val service_points : string list

(** Arm a point. [limit] (if given, positive) bounds how many times
    the point fires before auto-disarming — the syntax for injecting
    a {e transient} fault the retry path must absorb, as opposed to a
    permanent one it cannot.
    @raise Invalid_argument on an unknown point name. *)
val arm : ?limit:int -> string -> behaviour -> unit

(** Parse a [--fault] spec: [POINT:BEHAVIOUR] or [POINT:BEHAVIOUR:N]
    (fire at most [N] times). *)
val parse_spec : string -> (string * behaviour * int option, string) result

val disarm : string -> unit
val disarm_all : unit -> unit

(** Currently armed points, with their behaviour. *)
val armed : unit -> (string * behaviour) list

(** Points that have triggered (acted while armed) since the last
    {!reset_fired}. *)
val fired : unit -> string list

val reset_fired : unit -> unit

(** [with_armed arms f] arms the given points for the dynamic extent
    of [f] (clearing the fired set first), then restores the previous
    arming. *)
val with_armed : (string * behaviour) list -> (unit -> 'a) -> 'a

(** The hook the passes call: [point name e] returns [e] unless [name]
    is armed, in which case it misbehaves per the armed behaviour.
    @raise Invalid_argument on an unknown point name, so a typo in a
    pass cannot silently create an unarmable point. *)
val point : string -> Syntax.expr -> Syntax.expr

(** The hook the service layer calls: [trigger name] claims one firing
    of [name] if armed (burning a unit of its fire budget, recording
    it in {!fired}) and returns the behaviour for the {e caller} to
    enact — service misbehaviours (crash the worker, corrupt the
    bytes, burn the deadline) are not tree transformations, so the
    registry cannot enact them itself.
    @raise Invalid_argument on an unknown point name. *)
val trigger : string -> behaviour option
