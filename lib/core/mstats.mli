(** Machine statistics shared by {!Eval} (Fig. 3) and the block
    machine — one record shape, one printer, so the two executors can
    be cross-checked per metric. [updates] is call-by-need only; the
    heap high-water mark equals [words] (nothing is ever freed). *)

type t = {
  mutable steps : int;  (** Transitions / instructions executed. *)
  mutable objects : int;  (** Heap objects allocated. *)
  mutable words : int;  (** Words allocated — the Table 1 metric. *)
  mutable jumps : int;  (** Jumps / gotos: never allocate. *)
  mutable joins_entered : int;  (** Join bindings / LetBlocks: free. *)
  mutable calls : int;  (** Applications through a closure. *)
  mutable updates : int;  (** Thunk updates (call-by-need only). *)
  mutable max_stack : int;  (** Stack high-water mark, in frames. *)
}

val create : unit -> t
val pp : Format.formatter -> t -> unit

(** [(name, value)] rows in display order. *)
val fields : t -> (string * int) list

val to_json : t -> Telemetry.Json.t
