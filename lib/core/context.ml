(** Per-compilation context — see the interface for the design. *)

type t = { supply : Ident.supply }

let create ?(from = 0) () = { supply = Ident.new_supply ~from () }
let supply t = t.supply
let with_ctx t f = Ident.with_supply t.supply f
let with_fresh f = with_ctx (create ()) f
