(** The Float Out pass: move let bindings outwards (a light version of
    GHC's full laziness [20]).

    A binding whose right-hand side does not mention the enclosing
    lambda's binder can be allocated once, outside the lambda, instead
    of once per call.

    Per the paper's GHC modifications (Sec. 7): {b moving a join
    binding outwards risks destroying the join point} (it can separate
    the binding from the evaluation context its jumps must return to,
    or capture it in a closure), so Float Out {e leaves join bindings
    alone}. The test suite checks this. *)

open Syntax

let changed = ref false

let moved floats =
  changed := true;
  Telemetry.tick ~n:(List.length floats) Telemetry.Float_out_moved;
  List.iter
    (fun ((x : var), _) ->
      Decision.record ~pass:"float-out" Decision.Float_out
        ~site:(Ident.site x.v_name) Decision.Fired)
    floats

(* If the (possibly partially stripped) lambda body still starts with a
   let, that binding is the one the blocked-variable check refused to
   hoist — ledger it. *)
let record_blocked body' =
  if Decision.enabled () then
    match body' with
    | Let (NonRec (y, _), _) ->
        Decision.record ~pass:"float-out" Decision.Float_out
          ~site:(Ident.site y.v_name)
          (Decision.Rejected Decision.Mentions_lambda_binder)
    | _ -> ()

(* Collect consecutive non-recursive lets at the top of [e] whose
   right-hand sides do not mention any variable in [blocked]; return
   them (outermost first) and the stripped body. Join bindings stop the
   collection: they are never floated. *)
let rec split_floatable blocked (e : expr) =
  match e with
  | Let (NonRec (x, rhs), body)
    when Ident.Set.is_empty (Ident.Set.inter blocked (free_vars rhs)) ->
      let floats, body' = split_floatable blocked body in
      ((x, rhs) :: floats, body')
  | _ -> ([], e)

let wrap_floats floats e =
  List.fold_right (fun (x, rhs) acc -> Let (NonRec (x, rhs), acc)) floats e

(** One bottom-up Float Out pass. *)
let rec float_out (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map float_out es)
  | Prim (op, es) -> Prim (op, List.map float_out es)
  | App (f, a) -> App (float_out f, float_out a)
  | TyApp (f, t) -> TyApp (float_out f, t)
  | Lam (x, b) -> (
      let b = float_out b in
      let blocked = Ident.Set.singleton x.v_name in
      match split_floatable blocked b with
      | [], body' ->
          record_blocked body';
          Lam (x, b)
      | floats, body' ->
          moved floats;
          record_blocked body';
          wrap_floats floats (Lam (x, body')))
  | TyLam (a, b) -> (
      let b = float_out b in
      let blocked = Ident.Set.singleton a in
      (* For a type lambda the blocking variable is a type variable;
         check the rhs's free type variables. *)
      let rec split e =
        match e with
        | Let (NonRec (x, rhs), body)
          when not (Ident.Set.mem a (free_ty_vars rhs))
               && not (Ident.Set.mem a (Types.free_vars x.v_ty)) ->
            let fs, body' = split body in
            ((x, rhs) :: fs, body')
        | _ -> ([], e)
      in
      ignore blocked;
      match split b with
      | [], body' ->
          record_blocked body';
          TyLam (a, b)
      | floats, body' ->
          moved floats;
          record_blocked body';
          wrap_floats floats (TyLam (a, body')))
  | Let (NonRec (x, rhs), body) ->
      Let (NonRec (x, float_out rhs), float_out body)
  | Let (Strict (x, rhs), body) ->
      Let (Strict (x, float_out rhs), float_out body)
  | Let (Rec pairs, body) ->
      Let
        ( Rec (List.map (fun (x, rhs) -> (x, float_out rhs)) pairs),
          float_out body )
  | Case (scrut, alts) ->
      Case
        ( float_out scrut,
          List.map (fun a -> { a with alt_rhs = float_out a.alt_rhs }) alts )
  | Join (jb, body) ->
      (* Join bindings are not floated, but we still traverse inside. *)
      let jb' =
        match jb with
        | JNonRec d -> JNonRec { d with j_rhs = float_out d.j_rhs }
        | JRec ds ->
            JRec (List.map (fun d -> { d with j_rhs = float_out d.j_rhs }) ds)
      in
      Join (jb', float_out body)
  | Jump (j, phis, es, ty) -> Jump (j, phis, List.map float_out es, ty)

(** Entry point: returns the floated term and whether anything moved. *)
let run (e : expr) : expr * bool =
  changed := false;
  let e' = float_out e in
  (Fault.point "float-out/result" e', !changed)
