(** The Float In pass: move let bindings inwards, towards their use
    sites (Sec. 7; [float] of Fig. 4 read right-to-left).

    Floating a binding into a case branch means it is only allocated
    when that branch is taken; floating it into a case {e scrutinee}
    turns calls that were blocked by an intervening context into tail
    calls, which is the first step of the staged Moby derivation of
    Sec. 4:

    {v let f x = rhs in case f y of alts
       ==> case (let f x = rhs in f y) of alts   (this pass)
       ==> case (join f x = rhs in jump f y) of alts  (Contify)
       ==> join f x = case rhs of alts in ...        (Simplify, jfloat) v}

    A binding is never pushed under a lambda, into a join-point or
    letrec right-hand side (work duplication), and — per the paper's
    GHC modifications — Float In {e never un-saturates a join point}
    (join bindings and jumps are left exactly where they are). *)

open Syntax

let changed = ref false

let moved () =
  changed := true;
  Telemetry.tick Telemetry.Float_in_moved

(* Number of sink targets in [body] that mention [x]: used to require a
   unique home. *)
let rec sink (x : var) rhs body : expr option =
  let free_in e = occurs x.v_name e in
  match body with
  | Case (scrut, alts) ->
      let in_scrut = free_in scrut in
      let live_alts = List.filter (fun a -> free_in a.alt_rhs) alts in
      if in_scrut && live_alts = [] then (
        moved ();
        Some (Case (push x rhs scrut, alts)))
      else if (not in_scrut) && List.length live_alts = 1 then (
        moved ();
        Some
          (Case
             ( scrut,
               List.map
                 (fun a ->
                   if free_in a.alt_rhs then
                     { a with alt_rhs = push x rhs a.alt_rhs }
                   else a)
                 alts )))
      else None
  | Let (Strict _, _) -> None
  | Let (NonRec (y, yrhs), body') ->
      if free_in yrhs then None
      else if free_in body' then
        Option.map (fun b -> Let (NonRec (y, yrhs), b)) (sink x rhs body')
      else None
  | Join (jb, body') ->
      (* Never disturb join right-hand sides; sink into the body only. *)
      let rhss_free =
        List.exists (fun d -> occurs x.v_name d.j_rhs) (join_defns jb)
      in
      if rhss_free then None
      else Option.map (fun b -> Join (jb, b)) (sink x rhs body')
  | App (f, a) ->
      (* Never separate a bound variable from its arguments: pushing
         [let x = ...] into the head of a call [x a1 .. an] would
         un-saturate it (the same pitfall the paper fixed in GHC's
         Float In for join points, Sec. 7) and block contification. *)
      let head_is_x =
        match fst (collect_args body) with
        | Var v -> Ident.equal v.v_name x.v_name
        | _ -> false
      in
      if head_is_x then None
      else if free_in f && not (free_in a) then (
        moved ();
        Some (App (push x rhs f, a)))
      else if free_in a && not (free_in f) then (
        moved ();
        Some (App (f, push x rhs a)))
      else None
  | TyApp (f, t) ->
      if free_in f then (
        moved ();
        Some (TyApp (push x rhs f, t)))
      else None
  | _ -> None

and push x rhs e = Let (NonRec (x, rhs), e)

(** One bottom-up Float In pass. *)
let rec float_in (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map float_in es)
  | Prim (op, es) -> Prim (op, List.map float_in es)
  | App (f, a) -> App (float_in f, float_in a)
  | TyApp (f, t) -> TyApp (float_in f, t)
  | Lam (x, b) -> Lam (x, float_in b)
  | TyLam (a, b) -> TyLam (a, float_in b)
  | Let (Strict (x, rhs), body) ->
      Let (Strict (x, float_in rhs), float_in body)
  | Let (NonRec (x, rhs), body) -> (
      let rhs = float_in rhs in
      let body = float_in body in
      match sink x rhs body with
      | Some e' ->
          Decision.record ~pass:"float-in" Decision.Float_in
            ~site:(Ident.site x.v_name) Decision.Fired;
          float_in e'
      | None ->
          (* Only a refusal worth explaining if the binding is live:
             there is a use, but no unique home to sink it into. *)
          if Decision.enabled () && occurs x.v_name body then
            Decision.record ~pass:"float-in" Decision.Float_in
              ~site:(Ident.site x.v_name)
              (Decision.Rejected Decision.No_unique_use_site);
          Let (NonRec (x, rhs), body))
  | Let (Rec pairs, body) ->
      Let
        ( Rec (List.map (fun (x, rhs) -> (x, float_in rhs)) pairs),
          float_in body )
  | Case (scrut, alts) ->
      Case
        ( float_in scrut,
          List.map (fun a -> { a with alt_rhs = float_in a.alt_rhs }) alts )
  | Join (jb, body) ->
      let jb' =
        match jb with
        | JNonRec d -> JNonRec { d with j_rhs = float_in d.j_rhs }
        | JRec ds ->
            JRec (List.map (fun d -> { d with j_rhs = float_in d.j_rhs }) ds)
      in
      Join (jb', float_in body)
  | Jump (j, phis, es, ty) -> Jump (j, phis, List.map float_in es, ty)

(** Entry point: returns the floated term and whether anything moved. *)
let run (e : expr) : expr * bool =
  changed := false;
  let e' = float_in e in
  (Fault.point "float-in/result" e', !changed)
