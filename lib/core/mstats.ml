(** Machine statistics shared by the Fig. 3 abstract machine
    ({!Eval}) and the block machine ({!Fj_machine.Bmachine}).

    Both executors fill the {e same} record shape so the benchmark
    harness can cross-check them metric by metric: a [jump] in the
    Fig. 3 machine is a [Goto] in the block machine, a [join] binding
    is a [LetBlock], and so on. Fields that only make sense on one
    machine stay 0 on the other ([updates] is call-by-need only;
    [calls] counts closure applications on either).

    - [steps] — transitions taken (instructions, on the block machine);
    - [objects]/[words] — heap allocation (the Table 1 metric);
    - [jumps] — jumps executed / gotos taken: {b never allocate};
    - [joins_entered] — join bindings ([LetBlock]s) evaluated: free;
    - [calls] — applications that went through a closure;
    - [updates] — thunk updates (call-by-need only);
    - [max_stack] — stack high-water mark (frames). Since neither
      machine frees memory, the heap high-water mark {e is} [words]. *)

type t = {
  mutable steps : int;
  mutable objects : int;
  mutable words : int;
  mutable jumps : int;
  mutable joins_entered : int;
  mutable calls : int;
  mutable updates : int;
  mutable max_stack : int;
}

let create () =
  {
    steps = 0;
    objects = 0;
    words = 0;
    jumps = 0;
    joins_entered = 0;
    calls = 0;
    updates = 0;
    max_stack = 0;
  }

let pp ppf s =
  Fmt.pf ppf
    "steps=%d allocs=%d words=%d jumps=%d joins=%d calls=%d updates=%d \
     max_stack=%d"
    s.steps s.objects s.words s.jumps s.joins_entered s.calls s.updates
    s.max_stack

(** The metrics as [(name, value)] rows, in display order — the basis
    of the per-metric cross-check and of the JSON encodings. *)
let fields s =
  [
    ("steps", s.steps);
    ("objects", s.objects);
    ("words", s.words);
    ("jumps", s.jumps);
    ("joins_entered", s.joins_entered);
    ("calls", s.calls);
    ("updates", s.updates);
    ("max_stack", s.max_stack);
  ]

let to_json s =
  Telemetry.Json.Obj
    (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) (fields s))
