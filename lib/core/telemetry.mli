(** Compiler telemetry: simplifier ticks, per-pass counters, and a
    tiny JSON substrate for structured traces.

    Modelled on GHC's simplifier ticks ([-ddump-simpl-stats]): every
    rewrite the optimizer performs is counted under a stable name, one
    per Fig. 4 axiom plus the derived forms the passes implement. The
    counters are {e per-invocation}: a pipeline run installs a fresh
    {!counters} with {!with_counters}, every pass reports into it via
    {!tick}, and nothing leaks across runs — unlike the old
    per-module global mutable [stats] records. *)

(** One named rewrite. The first group is the Fig. 4 equational theory
    (and its derived forms) as fired by the Simplifier and Cleanup;
    the second group is the per-pass work counters. *)
type tick =
  | Beta  (** [beta]: value beta reduction. *)
  | Beta_tau  (** [beta_tau]: type beta reduction. *)
  | Inline  (** [inline]: call-site unfolding splice. *)
  | Pre_inline
      (** Once-used / trivial rhs substituted (GHC's
          preInlineUnconditionally); a work-safe [inline] + [drop]. *)
  | Drop  (** [drop]: dead value binding discarded. *)
  | Jinline  (** [jinline]: once-used join point inlined at its jump. *)
  | Jdrop  (** [jdrop]: dead join binding discarded. *)
  | Case_of_known  (** [case]: case of known constructor / literal. *)
  | Case_elim  (** Case on a known-evaluated variable elided. *)
  | Casefloat  (** [casefloat]: case context pushed past a binding. *)
  | Case_of_case  (** [commute] on a case scrutinee: case-of-case. *)
  | Jfloat  (** [jfloat]: continuation copied into join rhs(s). *)
  | Abort  (** [abort]: a jump discarded its evaluation context. *)
  | Commute  (** Other commuting conversion: context past a binding. *)
  | Constant_fold  (** Primop applied to literals, folded. *)
  | Share_alt
      (** Large case alternative shared as a join point (join mode) or
          a let-bound function (baseline). *)
  | Anf_con  (** Constructor rhs ANF-ised to keep fields shareable. *)
  | Demote
      (** Join binding demoted to a let (baseline simplifier only). *)
  | Contified  (** Contify: a binding became a join point. *)
  | Contified_group  (** Contify: a recursive group, as a whole. *)
  | Cse_shared  (** CSE: repeated expression replaced by its binder. *)
  | Strict_let  (** Demand: a demanded lazy let made strict. *)
  | Strict_arg  (** Demand: a strict call/jump argument forced early. *)
  | Spec_constr  (** SpecConstr: a recursive join specialised. *)
  | Float_in_moved  (** Float In: a binding sunk toward its use. *)
  | Float_out_moved  (** Float Out: bindings hoisted past a lambda. *)
  | Rule_fired  (** A user RULE rewrote a redex. *)

(** The stable external name of a tick (as it appears in tick tables
    and JSON traces), e.g. [Beta] -> ["beta"]. *)
val tick_name : tick -> string

(** Every tick, in display order. *)
val all_ticks : tick list

(** The inverse of {!tick_name}: [tick_of_name "beta" = Some Beta],
    [None] on an unknown name. Loaders of external encodings keyed by
    tick name (the [fj-cover/1] coverage maps, trace consumers) use
    this to map back into the closed universe. *)
val tick_of_name : string -> tick option

(** A per-invocation tick accumulator. *)
type counters

val create : unit -> counters

(** [with_counters c f] installs [c] as the current collector for the
    dynamic extent of [f] (nesting saves and restores the previous
    collector), so passes deep in the optimizer can {!tick} without
    threading state. *)
val with_counters : counters -> (unit -> 'a) -> 'a

(** Record [n] (default 1) firings of a tick into the innermost
    installed collector; a no-op when none is installed. *)
val tick : ?n:int -> tick -> unit

(** [with_observer h f] additionally calls [h n] on every {!tick} for
    the dynamic extent of [f], whether or not a collector is
    installed. Observers {e stack}: nesting runs the new observer and
    then the enclosing ones, so a wall-clock watchdog installed around
    a whole compilation keeps firing inside a pass whose {!Guard} fuel
    meter is also installed. Any observer may raise (that is the
    point); unwinding restores the enclosing chain. *)
val with_observer : (int -> unit) -> (unit -> 'a) -> 'a

val get : counters -> tick -> int

(** Sum over all ticks. *)
val total : counters -> int

(** All nonzero ticks as [(name, count)], in display order. *)
val nonzero : counters -> (string * int) list

(** An immutable copy of a collector's state, for per-pass deltas. *)
type snapshot

val snapshot : counters -> snapshot

(** Nonzero per-tick increments since the snapshot was taken. *)
val delta_since : snapshot -> counters -> (string * int) list

(** GHC-style ["Total ticks: n"] table (nonzero ticks only). *)
val pp_table : Format.formatter -> counters -> unit

(** {1 Clock} *)

(** Milliseconds since process start-up on the {e monotonic} clock:
    duration arithmetic ([now_ms () -. t0]) can never go negative
    under a wall-clock adjustment. Use for every duration. *)
val now_ms : unit -> float

(** Milliseconds since the Unix epoch (wall clock). Only for reporting
    an absolute timestamp; never subtract two of these. *)
val epoch_ms : unit -> float

(** {1 JSON}

    A hand-rolled JSON emitter and minimal parser — just enough for
    structured traces and their well-formedness checks, with no new
    dependencies. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (** Serialise (compact, valid JSON; strings escaped, non-finite
      floats emitted as [null]). *)
  val to_string : t -> string

  (** Minimal recursive-descent parser (objects, arrays, strings with
      escapes, numbers, booleans, null). *)
  val parse : string -> (t, string) result

  val is_well_formed : string -> bool
end
