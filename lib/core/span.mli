(** Hierarchical wall-clock spans — the timing backbone of the
    observability layer.

    A {!collector} is per-invocation (same discipline as
    {!Telemetry.counters}: installed with {!with_collector} for a
    dynamic extent, nothing global survives the run). Any code inside
    that extent brackets work with {!with_span}; nesting is tracked by
    an open-span stack, so a pass span encloses its guard phases and an
    evaluator run encloses nothing but still records as a root span.
    When no collector is installed {!with_span} just runs its body —
    the machines stay instrumentable without paying for it.

    Spans are measured on the monotonic clock ({!Telemetry.now_ms})
    and export directly as Chrome trace-event JSON ("ph":"X" complete
    events), loadable in Perfetto / chrome://tracing — see
    {!trace_events}. A collector may be ring-bounded ([?cap]), which is
    what the fuzz soak flight recorder uses: only the most recent
    spans are retained and {!dropped} counts the evicted ones. *)

(** One completed span. *)
type span = {
  sp_name : string;  (** e.g. ["simplify (0)"], ["lint"], ["eval"]. *)
  sp_cat : string;
      (** Coarse category: ["pipeline"], ["pass"], ["guard"],
          ["eval"], ["machine"], ["fuzz"]. *)
  sp_start_ms : float;  (** Monotonic, process origin. *)
  sp_dur_ms : float;
  sp_depth : int;  (** 0 for a root span, parents minus one below. *)
  sp_args : (string * Telemetry.Json.t) list;
      (** Annotations ({!annotate}), e.g. step counts. *)
}

type collector

(** [create ?cap ()] — [cap] bounds the number of {e completed} spans
    retained (oldest evicted first); default unbounded. *)
val create : ?cap:int -> unit -> collector

(** Install [c] as the innermost collector for the extent of the
    callback (nesting saves and restores, as {!Telemetry.with_counters}
    does). *)
val with_collector : collector -> (unit -> 'a) -> 'a

(** [with_span ~cat name f] times [f] and records a span into the
    innermost collector (none installed: just runs [f]). The span is
    recorded even when [f] raises, annotated with ["raised"]. *)
val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** As {!with_span}, and also returns the measured duration in ms —
    taken from the very same two clock reads that the recorded span
    holds, so a caller that stores the duration in its own record
    (e.g. {!Pipeline.pass_record.duration_ms}) is {e exactly}
    consistent with the exported span. *)
val with_span_timed : ?cat:string -> string -> (unit -> 'a) -> 'a * float

(** Attach an annotation to the innermost {e open} span (no collector
    or no open span: a no-op). Later values win on key collision. *)
val annotate : string -> Telemetry.Json.t -> unit

(** {1 Reading} *)

(** Completed spans, oldest first (by completion; children complete
    before their parents). *)
val spans : collector -> span list

(** Number of completed spans evicted by the ring bound. *)
val dropped : collector -> int

(** {1 Chrome trace-event export} *)

(** One ["ph":"X"] complete event per span: [ts]/[dur] in integer
    microseconds, [name], [cat], the given [pid]/[tid], and the
    annotations under [args]. Ordered by start time. *)
val trace_events : ?pid:int -> ?tid:int -> collector -> Telemetry.Json.t list

(** A ["ph":"M"] [thread_name] metadata event — names a Perfetto
    track, e.g. one per pipeline configuration. *)
val thread_name_event : ?pid:int -> tid:int -> string -> Telemetry.Json.t

val span_json : span -> Telemetry.Json.t
