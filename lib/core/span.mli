(** Hierarchical wall-clock spans — the timing backbone of the
    observability layer.

    A {!collector} is per-invocation (same discipline as
    {!Telemetry.counters}: installed with {!with_collector} for a
    dynamic extent, nothing global survives the run). Any code inside
    that extent brackets work with {!with_span}; nesting is tracked by
    an open-span stack, so a pass span encloses its guard phases and an
    evaluator run encloses nothing but still records as a root span.
    When no collector is installed {!with_span} just runs its body —
    the machines stay instrumentable without paying for it.

    Spans are measured on the monotonic clock ({!Telemetry.now_ms})
    and export directly as Chrome trace-event JSON ("ph":"X" complete
    events), loadable in Perfetto / chrome://tracing — see
    {!trace_events}. A collector may be ring-bounded ([?cap]), which is
    what the fuzz soak flight recorder uses: only the most recent
    spans are retained and {!dropped} counts the evicted ones. *)

(** One completed span. *)
type span = {
  sp_name : string;  (** e.g. ["simplify (0)"], ["lint"], ["eval"]. *)
  sp_cat : string;
      (** Coarse category: ["pipeline"], ["pass"], ["guard"],
          ["eval"], ["machine"], ["fuzz"]. *)
  sp_start_ms : float;  (** Monotonic, process origin. *)
  sp_dur_ms : float;
  sp_depth : int;  (** 0 for a root span, parents minus one below. *)
  sp_gc : Gcstats.t;
      (** GC delta over the span's extent — what the bracketed work
          allocated and which collections it triggered. *)
  sp_args : (string * Telemetry.Json.t) list;
      (** Annotations ({!annotate}), e.g. step counts. *)
}

type collector

(** [create ?cap ()] — [cap] bounds the number of {e completed} spans
    retained (oldest evicted first); default unbounded. *)
val create : ?cap:int -> unit -> collector

(** Install [c] as the innermost collector for the extent of the
    callback (nesting saves and restores, as {!Telemetry.with_counters}
    does). *)
val with_collector : collector -> (unit -> 'a) -> 'a

(** [with_span ~cat name f] times [f] and records a span into the
    innermost collector (none installed: just runs [f]). The span is
    recorded even when [f] raises, annotated with ["raised"]. *)
val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a

(** As {!with_span}, and also returns the measured duration in ms —
    taken from the very same two clock reads that the recorded span
    holds, so a caller that stores the duration in its own record
    (e.g. {!Pipeline.pass_record.duration_ms}) is {e exactly}
    consistent with the exported span. *)
val with_span_timed : ?cat:string -> string -> (unit -> 'a) -> 'a * float

(** As {!with_span_timed}, and also returns the GC delta — again the
    very same readings the recorded span holds ({!span.sp_gc}), so
    pass records and span annotations can never disagree. Works (and
    still measures) with no collector installed. *)
val with_span_stats :
  ?cat:string -> string -> (unit -> 'a) -> 'a * float * Gcstats.t

(** Attach an annotation to the innermost {e open} span (no collector
    or no open span: a no-op). Later values win on key collision. *)
val annotate : string -> Telemetry.Json.t -> unit

(** {1 Reading} *)

(** Completed spans, oldest first (by completion; children complete
    before their parents). *)
val spans : collector -> span list

(** Number of completed spans evicted by the ring bound. *)
val dropped : collector -> int

(** {1 Chrome trace-event export} *)

(** Milliseconds to the trace format's integer microseconds
    (rounded) — the [ts]/[dur] domain of every exported event. *)
val us : float -> int

(** One ["ph":"X"] complete event per span: [ts]/[dur] in integer
    microseconds, [name], [cat], the given [pid]/[tid], and the
    annotations plus [gc_*] counters under [args]. Ordered by start
    time. *)
val trace_events : ?pid:int -> ?tid:int -> collector -> Telemetry.Json.t list

(** A ["ph":"M"] [thread_name] metadata event — names a Perfetto
    track, e.g. one per pipeline configuration. *)
val thread_name_event : ?pid:int -> tid:int -> string -> Telemetry.Json.t

(** A ["ph":"C"] counter event: plots the given [args] as a counter
    track named [name] at time [ts] (integer microseconds). Used for
    the per-pass GC counter track. *)
val counter_event :
  ?pid:int ->
  ?tid:int ->
  name:string ->
  ts:int ->
  (string * Telemetry.Json.t) list ->
  Telemetry.Json.t

val span_json : span -> Telemetry.Json.t

(** {1 Collapsed-stack (folded) export}

    The flamegraph interchange format: one line per distinct stack,
    [frame;frame;frame WEIGHT], consumable by [flamegraph.pl],
    [inferno-flamegraph], speedscope, etc. *)

(** What a folded line's weight counts. *)
type weight =
  | Self_time  (** Exclusive wall-clock microseconds. *)
  | Alloc_words
      (** Exclusive allocated words ({!Gcstats.alloc_words}) — an
          allocation flamegraph. *)

(** Folded stacks, one entry per distinct stack, sorted by stack
    string. The span tree is rebuilt from the flat span list (start
    order + recorded depth); every span contributes to exactly one
    stack. Weights are {e exclusive} (a frame's own weight minus its
    children's), computed in the integer domain and clamped at 0, so
    the weights of all lines under a root sum to that root span's own
    total. Frames are [cat:name] ([name] alone for roots), with [' ']
    and [';'] sanitized. *)
val folded_stacks : ?weight:weight -> collector -> (string * int) list

(** {!folded_stacks} rendered as the newline-joined folded text. *)
val folded : ?weight:weight -> collector -> string
