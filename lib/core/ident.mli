(** Globally-unique identifiers (GHC-style uniques). Identity is the
    integer key; the name is a printing hint. *)

type t = { name : string; id : int }

(** Allocate a brand-new identifier with the given name hint. *)
val fresh : string -> t

(** New identifier with the same name hint but a distinct key. *)
val refresh : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val name : t -> string
val id : t -> int

(** The allocation-site (provenance) label: the name hint, which
    {!refresh} — and so the whole optimiser — preserves. *)
val site : t -> string

(** Prints as [name_id]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t

(** Reset the global supply — tests only. *)
val unsafe_reset_counter : unit -> unit

(** Ensure future {!fresh} keys exceed [n] (used by deserialisers). *)
val ensure_above : int -> unit
