(** Globally-unique identifiers (GHC-style uniques). Identity is the
    integer key; the name is a printing hint. *)

type t = { name : string; id : int }

(** Allocate a brand-new identifier with the given name hint. *)
val fresh : string -> t

(** New identifier with the same name hint but a distinct key. *)
val refresh : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val name : t -> string
val id : t -> int

(** The allocation-site (provenance) label: the name hint, which
    {!refresh} — and so the whole optimiser — preserves. *)
val site : t -> string

(** Prints as [name_id]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t

(** {1 The unique supply}

    The supply is {e domain-local}: each domain (each compile-service
    worker) owns its own counter, and a compilation that must be
    reproducible installs an explicit supply for its extent. *)

(** An explicit unique supply, installable per compilation. *)
type supply

(** A fresh supply whose next key is [from + 1] (default: 1). *)
val new_supply : ?from:int -> unit -> supply

(** [with_supply s f] makes [s] the current domain's supply for the
    dynamic extent of [f] (nesting saves and restores). Two runs of
    the same deterministic compilation under fresh supplies allocate
    identical keys — the per-compilation context the compile service
    threads through every request. *)
val with_supply : supply -> (unit -> 'a) -> 'a

(** The last key the current supply allocated (0 initially). *)
val counter_value : unit -> int

(** Set the current supply to exactly [n] (as if [n] were the last
    allocated key) — the pass cache's replay hook. Never rewind while
    terms built under higher keys are alive. *)
val restore_counter : int -> unit

(** Reset the current supply — tests only. *)
val unsafe_reset_counter : unit -> unit

(** Ensure future {!fresh} keys exceed [n] (used by deserialisers). *)
val ensure_above : int -> unit
