(** Benchmark trajectory analytics: the diff of two [fj-bench/1] files.

    The repository accumulates committed [BENCH_*.json] snapshots (see
    the bench harness and EXPERIMENTS.md); this module turns a pair of
    them into a structured answer to "what moved, and does it matter?"
    Programs are aligned by name, every comparable metric gets a
    delta, and an optional {e gate} classifies deltas into noise and
    regressions — replacing the ad-hoc "delta_pct worsened by more
    than 2 points" shell check CI used to hard-code.

    Metric kinds decide both the delta's unit and the gate's meaning:

    - {b Count} (machine words, steps, jumps): relative — regressed
      when the increase exceeds the gate {e percentage}.
    - {b Points} (the Table-1 [delta_pct] itself, already a
      percentage): absolute — regressed when it worsens by more than
      the gate in {e points}, which is exactly the old CI rule.
    - {b Timing} (eval wall-clock medians): noisy — the recorded
      sample spread (p95 − median of both runs) widens the gate, so
      only movement beyond measured noise {e and} the gate trips;
      off unless [gate_timing] opts in, because two machines'
      wall-clocks aren't comparable however wide the band.
    - {b Info} (tick totals, decision counts, coverage): reported,
      never gated — useful trajectory, meaningless as a pass/fail.

    Missing metrics (older snapshots) are skipped, not errors; only a
    file that fails to parse or lacks the [fj-bench/1] schema tag is
    rejected. *)

type kind = Count | Points | Timing | Info

(** One aligned metric. [delta] is [new - old] in the metric's own
    unit; [delta_pct] is its relative form when [old <> 0]. [noise]
    (Timing only) is the combined sample spread the gate is widened
    by. [regressed] is set iff a gate was given and this metric trips
    it. *)
type metric = {
  m_metric : string;
  m_kind : kind;
  m_old : float;
  m_new : float;
  m_delta : float;
  m_delta_pct : float option;
  m_noise : float option;
  m_regressed : bool;
}

(** One program present in both files. *)
type prog = { p_name : string; p_suite : string; p_metrics : metric list }

type t = {
  d_old : string;  (** Label of the old file: date, commit if stamped. *)
  d_new : string;
  d_gate_pct : float option;
  d_gate_timing : bool;  (** Whether timing medians participate in the gate. *)
  d_programs : prog list;  (** Aligned programs, old-file order. *)
  d_only_old : string list;  (** Programs that disappeared. *)
  d_only_new : string list;  (** Programs that appeared. *)
  d_file_metrics : metric list;
      (** Whole-file trajectory: program counts, coverage. *)
}

(** All gated regressions, as [(program, metric)] — [""] for the
    program of a whole-file metric. Empty iff exit code 0. *)
val regressions : t -> (string * metric) list

(** [diff ?gate_pct ?gate_timing ~old_label ~new_label old new] over
    two parsed [fj-bench/1] documents. [Error] on a non-bench
    document. The labels (usually file names) are used in reports.
    [gate_timing] (default [false]) lets the gate also trip on eval
    timing medians; off by default because wall-clock comparisons are
    only meaningful between runs on the same machine — counts and
    [delta_pct] gate machine-independently. *)
val diff :
  ?gate_pct:float ->
  ?gate_timing:bool ->
  old_label:string ->
  new_label:string ->
  Telemetry.Json.t ->
  Telemetry.Json.t ->
  (t, string) result

(** As {!diff}, from raw file contents (parses both sides). *)
val of_strings :
  ?gate_pct:float ->
  ?gate_timing:bool ->
  old_label:string ->
  new_label:string ->
  string ->
  string ->
  (t, string) result

(** Console rendering: aligned per-program table, appearing /
    disappearing programs, regression list. *)
val pp : Format.formatter -> t -> unit

(** The same content as a markdown document (summary table plus a
    regressions section) — the CI artifact. *)
val to_markdown : t -> string

(** Machine-readable diff, schema [fj-bench-diff/1]. *)
val to_json : t -> Telemetry.Json.t
