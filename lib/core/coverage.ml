(** Optimization coverage maps — see the interface for the design. *)

type dim = Ticks | Decisions | Guards

let dims = [ Ticks; Decisions; Guards ]

let dim_name = function
  | Ticks -> "ticks"
  | Decisions -> "decisions"
  | Guards -> "guards"

(* ------------------------------------------------------------------ *)
(* The universe                                                        *)
(* ------------------------------------------------------------------ *)

(* The three configurations, by their {!Pipeline.mode_name}. *)
let modes =
  List.map Pipeline.mode_name
    [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]

(* Which rejection reasons each ledger action can actually record —
   the static shape of every [Decision.record] call site in the
   passes. An (action, reason) pair outside this table at runtime
   lands in [unknown] (and a test asserts that never happens), so the
   table cannot silently rot when a pass grows a new refusal. *)
let action_outcomes : (Decision.action * Decision.reason option list) list =
  let open Decision in
  [
    ( Inline,
      [
        None;
        Some (Inline_too_big { size = 0; threshold = 0 });
        Some Uninformative_context;
        Some Loop_breaker;
      ] );
    (Pre_inline, [ None; Some (Occurs_many { count = 0 }); Some Escapes_under_lambda ]);
    (Dup_alt, [ None; Some (Dup_threshold_shared { size = 0; threshold = 0 }) ]);
    (Demote, [ None ]);
    ( Contify,
      [
        None;
        Some Escapes_under_lambda;
        Some Not_all_tail_calls;
        Some Shape_mismatch;
        Some Nullary_candidate;
        Some Rhs_arity_mismatch;
        Some Scope_type_mismatch;
      ] );
    (Cse, [ None ]);
    (Strict_let, [ None; Some Already_whnf ]);
    (Strict_arg, [ None ]);
    (Spec_constr, [ None; Some No_common_constructor ]);
    (Float_in, [ None; Some No_unique_use_site ]);
    (Float_out, [ None; Some Mentions_lambda_binder ]);
  ]

let decision_point action (reason : Decision.reason option) =
  match reason with
  | None -> Decision.action_name action ^ ":fired"
  | Some r -> Decision.action_name action ^ ":rejected:" ^ Decision.reason_name r

let guard_causes : Guard.cause list =
  [
    Guard.Exn "";
    Guard.Lint_failed "";
    Guard.Fuel_exhausted { budget = 0 };
    Guard.Size_exploded { size_before = 0; size_after = 0; limit = 0 };
  ]

let tick_points =
  List.concat_map
    (fun mode ->
      List.map (fun t -> mode ^ "/" ^ Telemetry.tick_name t) Telemetry.all_ticks)
    modes

let decision_points =
  List.concat_map
    (fun (a, outcomes) -> List.map (decision_point a) outcomes)
    action_outcomes

let guard_points = List.map Guard.cause_name guard_causes

let dim_points = function
  | Ticks -> tick_points
  | Decisions -> decision_points
  | Guards -> guard_points

let universe =
  List.concat_map (fun d -> List.map (fun p -> (d, p)) (dim_points d)) dims

let universe_size = List.length universe

(* Point name -> index into the hit array, built once. *)
let index_of : (dim * string, int) Hashtbl.t =
  let h = Hashtbl.create (2 * universe_size) in
  List.iteri (fun i p -> Hashtbl.replace h p i) universe;
  h

(* ------------------------------------------------------------------ *)
(* Maps                                                                *)
(* ------------------------------------------------------------------ *)

type t = { counts : int array; mutable unknown : int }

let create () = { counts = Array.make universe_size 0; unknown = 0 }
let copy m = { counts = Array.copy m.counts; unknown = m.unknown }

let hit ?(n = 1) m dim point =
  if n > 0 then
    match Hashtbl.find_opt index_of (dim, point) with
    | Some i -> m.counts.(i) <- m.counts.(i) + n
    | None -> m.unknown <- m.unknown + n

let hit_tick ?(n = 1) m ~mode tick =
  hit ~n m Ticks (mode ^ "/" ^ Telemetry.tick_name tick)

let hit_decision m action (verdict : Decision.verdict) =
  let point =
    match verdict with
    | Decision.Fired -> decision_point action None
    | Decision.Rejected r -> decision_point action (Some r)
  in
  hit m Decisions point

let hit_incident m (cause : Guard.cause) =
  hit m Guards (Guard.cause_name cause)

let observe_report m (r : Pipeline.report) =
  let mode = Pipeline.report_mode r in
  List.iter
    (fun (name, n) ->
      match Telemetry.tick_of_name name with
      | Some t -> hit_tick ~n m ~mode t
      | None -> m.unknown <- m.unknown + n)
    (Pipeline.ticks r);
  List.iter
    (fun (ev : Decision.event) ->
      hit_decision m ev.Decision.d_action ev.Decision.d_verdict)
    (Pipeline.decisions r);
  List.iter
    (fun (i : Guard.incident) -> hit_incident m i.Guard.i_cause)
    (Pipeline.incidents r)

let unknown_hits m = m.unknown

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let count m dim point =
  match Hashtbl.find_opt index_of (dim, point) with
  | Some i -> m.counts.(i)
  | None -> 0

let hits m =
  List.mapi (fun i (d, p) -> (d, p, m.counts.(i))) universe

let covered m =
  Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 m.counts

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let percent m = pct (covered m) universe_size

let dim_covered m dim =
  let points = dim_points dim in
  let c = List.fold_left (fun acc p -> if count m dim p > 0 then acc + 1 else acc) 0 points in
  (c, List.length points)

(* A tick name is an exercised axiom if it fired under any of the
   three configurations. *)
let axiom_fired m t =
  List.exists
    (fun mode -> count m Ticks (mode ^ "/" ^ Telemetry.tick_name t) > 0)
    modes

let axioms_covered m =
  ( List.fold_left
      (fun acc t -> if axiom_fired m t then acc + 1 else acc)
      0 Telemetry.all_ticks,
    List.length Telemetry.all_ticks )

let axioms_never m =
  List.filter_map
    (fun t -> if axiom_fired m t then None else Some (Telemetry.tick_name t))
    Telemetry.all_ticks

let never_fired m =
  List.filter_map
    (fun (d, p, n) -> if n = 0 then Some (d, p) else None)
    (hits m)

(* ------------------------------------------------------------------ *)
(* Combining                                                           *)
(* ------------------------------------------------------------------ *)

let merge_into ~into m =
  Array.iteri (fun i n -> into.counts.(i) <- into.counts.(i) + n) m.counts;
  into.unknown <- into.unknown + m.unknown

let diff a b =
  List.filter_map
    (fun (i, (d, p)) ->
      if a.counts.(i) > 0 && b.counts.(i) = 0 then Some (d, p) else None)
    (List.mapi (fun i p -> (i, p)) universe)

let equal a b = a.counts = b.counts && a.unknown = b.unknown

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let schema = "fj-cover/1"

let axioms_json m =
  let c, total = axioms_covered m in
  Telemetry.Json.(
    Obj
      [
        ("covered", Int c);
        ("total", Int total);
        ("percent", Float (pct c total));
        ("never", Arr (List.map (fun s -> Str s) (axioms_never m)));
      ])

let dim_json ?(points = true) m d =
  let c, total = dim_covered m d in
  let base =
    Telemetry.Json.
      [ ("total", Int total); ("covered", Int c); ("percent", Float (pct c total)) ]
  in
  let fields =
    if not points then base
    else
      base
      @ [
          ( "points",
            Telemetry.Json.Obj
              (List.filter_map
                 (fun p ->
                   let n = count m d p in
                   if n > 0 then Some (p, Telemetry.Json.Int n) else None)
                 (dim_points d)) );
        ]
  in
  Telemetry.Json.Obj fields

let header_json m =
  Telemetry.Json.
    [
      ("schema", Str schema);
      ("universe", Int universe_size);
      ("covered", Int (covered m));
      ("percent", Float (percent m));
      ("unknown_hits", Int m.unknown);
      ("axioms", axioms_json m);
    ]

let to_json m =
  Telemetry.Json.(
    Obj
      (header_json m
      @ [
          ( "dims",
            Obj (List.map (fun d -> (dim_name d, dim_json m d)) dims) );
          ( "never_fired",
            Arr
              (List.map
                 (fun (d, p) -> Str (dim_name d ^ "/" ^ p))
                 (never_fired m)) );
        ]))

let summary_json m =
  Telemetry.Json.(
    Obj
      (header_json m
      @ [
          ( "dims",
            Obj
              (List.map (fun d -> (dim_name d, dim_json ~points:false m d)) dims)
          );
        ]))

let of_json (j : Telemetry.Json.t) : (t, string) result =
  let open Telemetry.Json in
  let exception Bad of string in
  let field name = function
    | Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  try
    (match field "schema" j with
    | Some (Str s) when s = schema -> ()
    | Some (Str s) -> raise (Bad (Fmt.str "unexpected schema %S" s))
    | _ -> raise (Bad "missing schema tag"));
    let m = create () in
    (match field "unknown_hits" j with
    | Some (Int n) -> m.unknown <- n
    | _ -> ());
    let dims_obj =
      match field "dims" j with
      | Some (Obj fields) -> fields
      | _ -> raise (Bad "missing dims object")
    in
    List.iter
      (fun d ->
        match List.assoc_opt (dim_name d) dims_obj with
        | None -> ()
        | Some dj -> (
            match field "points" dj with
            | Some (Obj points) ->
                List.iter
                  (fun (p, v) ->
                    match (Hashtbl.find_opt index_of (d, p), v) with
                    | Some i, Int n -> m.counts.(i) <- m.counts.(i) + n
                    | None, _ ->
                        raise
                          (Bad
                             (Fmt.str "unknown %s point %S" (dim_name d) p))
                    | Some _, _ ->
                        raise (Bad (Fmt.str "non-integer count for %S" p)))
                  points
            | _ -> ()))
      dims;
    Ok m
  with Bad msg -> Error msg

let pp_summary ppf m =
  List.iter
    (fun d ->
      let c, total = dim_covered m d in
      Fmt.pf ppf "%-10s %4d/%-4d %5.1f%%@." (dim_name d) c total (pct c total))
    dims;
  Fmt.pf ppf "%-10s %4d/%-4d %5.1f%%@." "overall" (covered m) universe_size
    (percent m);
  let ac, at = axioms_covered m in
  Fmt.pf ppf "%-10s %4d/%-4d %5.1f%%  (ticks fired under >=1 configuration)"
    "axioms" ac at (pct ac at)
