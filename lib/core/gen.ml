(** Random well-typed program generation — see the interface for the
    design. The generator is the one grown out of the property-based
    test suite: leaves and constructors at five monomorphic types,
    lets, cases, applications, join points with jumps in tail
    position, and bounded counting loops via recursive join points. *)

open Syntax
module B = Builder

let default_size = 24

(* ------------------------------------------------------------------ *)
(* RNG combinators (direct-style over Random.State)                    *)
(* ------------------------------------------------------------------ *)

let oneofl st l = List.nth l (Random.State.int st (List.length l))

(* Weighted choice over [(weight, thunk)] candidates. *)
let frequency st (cands : (int * (unit -> 'a)) list) : 'a =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 cands in
  let k = Random.State.int st total in
  let rec pick k = function
    | [] -> assert false
    | (w, f) :: rest -> if k < w then f () else pick (k - w) rest
  in
  pick k cands

let int_range st lo hi = lo + Random.State.int st (hi - lo + 1)

(* ------------------------------------------------------------------ *)
(* The generator                                                       *)
(* ------------------------------------------------------------------ *)

type genv = {
  vars : (Types.t * var) list;  (** In-scope term variables. *)
  labels : (var * Types.t list) list;
      (** In-scope join points (label, parameter types); only usable
          in tail position. *)
}

let maybe_int = B.maybe_ty Types.int
let list_int = B.list_ty Types.int
let i2i = Types.Arrow (Types.int, Types.int)
let scrutinee_types = [ Types.bool; maybe_int; list_int ]
let all_types = [ Types.int; Types.bool; maybe_int; list_int; i2i ]

let vars_of env ty =
  List.filter_map
    (fun (t, v) -> if Types.equal t ty then Some v else None)
    env.vars

(* A canonical inhabitant of any generated type (fallback leaf, also
   used by the shrinker to discharge pattern binders). *)
let rec default_of (ty : Types.t) : expr =
  match ty with
  | Types.Arrow (a, b) ->
      let x = mk_var "d" a in
      Lam (x, default_of b)
  | _ ->
      if Types.equal ty Types.int then B.int 0
      else if Types.equal ty Types.bool then B.false_
      else if Types.equal ty maybe_int then B.nothing Types.int
      else if Types.equal ty list_int then B.nil Types.int
      else invalid_arg "Gen.default_of: unexpected type"

(* Leaf expressions of each type. *)
let gen_leaf env ty st : expr =
  let vs = vars_of env ty in
  let var_gens = List.map (fun v fun_st -> ignore fun_st; Var v) vs in
  let base =
    if Types.equal ty Types.int then
      [ (fun st -> B.int (Random.State.int st 101)) ]
    else if Types.equal ty Types.bool then
      [ (fun st -> oneofl st [ B.true_; B.false_ ]) ]
    else if Types.equal ty maybe_int then
      [ (fun _ -> B.nothing Types.int) ]
    else if Types.equal ty list_int then [ (fun _ -> B.nil Types.int) ]
    else if Types.equal ty i2i then
      [ (fun _ -> B.lam "l" Types.int (fun x -> B.add x (B.int 1))) ]
    else [ (fun _ -> default_of ty) ]
  in
  (oneofl st (base @ var_gens)) st

(* [tail] controls whether jumps to in-scope labels may be emitted. *)
let rec gen ~tail env ty n st : expr =
  if n <= 0 then gen_leaf env ty st
  else
    let sub = n / 2 in
    let no_labels = { env with labels = [] } in
    let candidates =
      [
        (* leaf *)
        (3, fun () -> gen_leaf env ty st);
        (* let *)
        ( 2,
          fun () ->
            let rty = oneofl st all_types in
            let rhs = gen ~tail:false no_labels rty sub st in
            let x = mk_var "x" rty in
            let body =
              gen ~tail { env with vars = (rty, x) :: env.vars } ty sub st
            in
            Let (NonRec (x, rhs), body) );
        (* case: scrutinee keeps no labels (conservative); branches
           inherit tail-ness. *)
        ( 3,
          fun () ->
            let sty = oneofl st scrutinee_types in
            let scrut = gen ~tail:false no_labels sty sub st in
            let alts = gen_alts ~tail env sty ty sub st in
            Case (scrut, alts) );
        (* application *)
        ( 2,
          fun () ->
            let arg = gen ~tail:false no_labels Types.int sub st in
            let f =
              gen ~tail:false no_labels (Types.Arrow (Types.int, ty)) sub st
            in
            App (f, arg) );
        (* join point: one Int parameter; rhs and body are both tail
           (rhs may also use outer labels). *)
        ( 2,
          fun () ->
            let x = mk_var "p" Types.int in
            let jv = mk_join_var "j" [] [ x ] in
            let rhs =
              gen ~tail:true
                { env with vars = (Types.int, x) :: env.vars }
                ty sub st
            in
            let body =
              gen ~tail:true
                { env with labels = (jv, [ Types.int ]) :: env.labels }
                ty sub st
            in
            Join
              ( JNonRec
                  { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = rhs },
                body ) );
      ]
    in
    (* arithmetic at Int *)
    let candidates =
      if Types.equal ty Types.int then
        ( 2,
          fun () ->
            let a = gen ~tail:false no_labels Types.int sub st in
            let b = gen ~tail:false no_labels Types.int sub st in
            B.add a b )
        :: ( 1,
             fun () ->
               let a = gen ~tail:false no_labels Types.int sub st in
               let b = gen ~tail:false no_labels Types.int sub st in
               B.mul a b )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty Types.bool then
        ( 2,
          fun () ->
            let a = gen ~tail:false no_labels Types.int sub st in
            let b = gen ~tail:false no_labels Types.int sub st in
            B.lt a b )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty maybe_int then
        ( 2,
          fun () ->
            B.just Types.int (gen ~tail:false no_labels Types.int sub st) )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty list_int then
        ( 2,
          fun () ->
            let h = gen ~tail:false no_labels Types.int sub st in
            let t = gen ~tail:false no_labels list_int sub st in
            B.cons Types.int h t )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty i2i then
        ( 2,
          fun () ->
            let x = mk_var "a" Types.int in
            let body =
              gen ~tail:false
                { vars = (Types.int, x) :: env.vars; labels = [] }
                Types.int sub st
            in
            Lam (x, body) )
        :: candidates
      else candidates
    in
    (* bounded recursive join point: a loop over a decreasing counter,
       so evaluation always terminates. The loop body may jump to the
       loop itself (with n-1) or to outer labels. *)
    let candidates =
      ( 1,
        fun () ->
          let n = mk_var "n" Types.int in
          let jv = mk_join_var "loop" [] [ n ] in
          let start = int_range st 1 5 in
          let base =
            gen ~tail:true
              { env with vars = (Types.int, n) :: env.vars }
              ty (sub / 2) st
          in
          (* The non-jump branch sees only OUTER labels, so the counter
             strictly decreases and the loop always terminates. *)
          let step_tail =
            gen ~tail:true
              { vars = (Types.int, n) :: env.vars; labels = env.labels }
              ty (sub / 2) st
          in
          let rhs =
            B.if_
              (B.le (Var n) (B.int 0))
              base
              (Case
                 ( B.gt (Var n) (B.int 2),
                   [
                     {
                       alt_pat = PCon (Datacon.builtin "True", []);
                       alt_rhs =
                         Jump (jv, [], [ B.sub (Var n) (B.int 1) ], ty);
                     };
                     {
                       alt_pat = PCon (Datacon.builtin "False", []);
                       alt_rhs = step_tail;
                     };
                   ] ))
          in
          Join
            ( JRec
                [ { j_var = jv; j_tyvars = []; j_params = [ n ]; j_rhs = rhs } ],
              Jump (jv, [], [ B.int start ], ty) ) )
      :: candidates
    in
    (* jumps, only in tail position *)
    let candidates =
      if tail && env.labels <> [] then
        ( 4,
          fun () ->
            let jv, ptys = oneofl st env.labels in
            let args =
              List.map
                (fun pty -> gen ~tail:false no_labels pty (sub / 2) st)
                ptys
            in
            Jump (jv, [], args, ty) )
        :: candidates
      else candidates
    in
    frequency st candidates

and gen_alts ~tail env sty rty n st : alt list =
  if Types.equal sty Types.bool then
    let t = gen ~tail env rty n st in
    let f = gen ~tail env rty n st in
    [
      { alt_pat = PCon (Datacon.builtin "True", []); alt_rhs = t };
      { alt_pat = PCon (Datacon.builtin "False", []); alt_rhs = f };
    ]
  else if Types.equal sty maybe_int then begin
    let x = mk_var "mx" Types.int in
    let nothing_rhs = gen ~tail env rty n st in
    let just_rhs =
      gen ~tail { env with vars = (Types.int, x) :: env.vars } rty n st
    in
    [
      { alt_pat = PCon (Datacon.builtin "Nothing", []); alt_rhs = nothing_rhs };
      { alt_pat = PCon (Datacon.builtin "Just", [ x ]); alt_rhs = just_rhs };
    ]
  end
  else begin
    (* List Int *)
    let h = mk_var "h" Types.int in
    let t = mk_var "t" list_int in
    let nil_rhs = gen ~tail env rty n st in
    let cons_rhs =
      gen ~tail
        { env with vars = (Types.int, h) :: (list_int, t) :: env.vars }
        rty n st
    in
    [
      { alt_pat = PCon (Datacon.builtin "Nil", []); alt_rhs = nil_rhs };
      { alt_pat = PCon (Datacon.builtin "Cons", [ h; t ]); alt_rhs = cons_rhs };
    ]
  end

let program ?(size = default_size) st : expr =
  let ty = oneofl st all_types in
  let n = int_range st 2 size in
  gen ~tail:true { vars = []; labels = [] } ty n st

let program_of_seed ?size seed : expr =
  Ident.unsafe_reset_counter ();
  program ?size (Random.State.make [| seed |])

(* ------------------------------------------------------------------ *)
(* Mutation (coverage-guided fuzzing)                                  *)
(* ------------------------------------------------------------------ *)

(* Number of [Lit (Int _)] nodes in a term, for uniform selection. *)
let rec count_int_lits (e : expr) : int =
  match e with
  | Lit (Literal.Int _) -> 1
  | _ ->
      let sub =
        match e with
        | Var _ | Lit _ -> []
        | Con (_, _, args) | Prim (_, args) -> args
        | App (f, a) -> [ f; a ]
        | TyApp (f, _) -> [ f ]
        | Lam (_, b) | TyLam (_, b) -> [ b ]
        | Let (bind, body) -> List.map snd (bind_pairs bind) @ [ body ]
        | Case (scrut, alts) ->
            scrut :: List.map (fun a -> a.alt_rhs) alts
        | Join (jb, body) ->
            List.map (fun d -> d.j_rhs) (join_defns jb) @ [ body ]
        | Jump (_, _, args, _) -> args
      in
      List.fold_left (fun acc e -> acc + count_int_lits e) 0 sub

(* Replace the [k]-th (preorder) integer literal with [by]. The
   traversal threads the remaining index through a ref — literals are
   leaves, so order within a node's children is all that matters. *)
let replace_int_lit k ~by (e : expr) : expr =
  let remaining = ref k in
  let rec go (e : expr) : expr =
    match e with
    | Lit (Literal.Int _) ->
        if !remaining = 0 then begin
          decr remaining;
          by
        end
        else begin
          decr remaining;
          e
        end
    | Var _ | Lit _ -> e
    | Con (dc, phis, args) -> Con (dc, phis, List.map go args)
    | Prim (op, args) -> Prim (op, List.map go args)
    | App (f, a) ->
        let f = go f in
        App (f, go a)
    | TyApp (f, t) -> TyApp (go f, t)
    | Lam (x, b) -> Lam (x, go b)
    | TyLam (a, b) -> TyLam (a, go b)
    | Let (bind, body) ->
        let bind =
          match bind with
          | NonRec (x, rhs) -> NonRec (x, go rhs)
          | Strict (x, rhs) -> Strict (x, go rhs)
          | Rec pairs -> Rec (List.map (fun (x, rhs) -> (x, go rhs)) pairs)
        in
        Let (bind, go body)
    | Case (scrut, alts) ->
        let scrut = go scrut in
        Case
          (scrut, List.map (fun a -> { a with alt_rhs = go a.alt_rhs }) alts)
    | Join (jb, body) ->
        let jb =
          match jb with
          | JNonRec d -> JNonRec { d with j_rhs = go d.j_rhs }
          | JRec ds -> JRec (List.map (fun d -> { d with j_rhs = go d.j_rhs }) ds)
        in
        Join (jb, go body)
    | Jump (j, tys, args, ty) -> Jump (j, tys, List.map go args, ty)
  in
  go e

let closed_env = { vars = []; labels = [] }

(* Each operator preserves closedness and the seed's type; [ty_of]
   works on the closed well-typed programs the fuzzer feeds in. The
   wrappers deliberately hand the optimizer new material around the
   retained program: a dead binding (drop), a branch (case-of-case,
   share_alt), a join point around the whole term, a counting loop
   (contify_group, spec_constr fuel). *)
let mutate st (e : expr) : expr =
  let small = 6 in
  let perturb_literal () =
    match count_int_lits e with
    | 0 -> None
    | n ->
        let k = Random.State.int st n in
        let by = gen ~tail:false closed_env Types.int small st in
        Some (replace_int_lit k ~by e)
  in
  let wrap_let () =
    let rty = oneofl st all_types in
    let rhs = gen ~tail:false closed_env rty small st in
    let x = mk_var "m" rty in
    Some (Let (NonRec (x, rhs), e))
  in
  let wrap_case ty =
    let scrut = gen ~tail:false closed_env Types.bool small st in
    let other = gen ~tail:false closed_env ty small st in
    Some
      (Case
         ( scrut,
           [
             { alt_pat = PCon (Datacon.builtin "True", []); alt_rhs = e };
             { alt_pat = PCon (Datacon.builtin "False", []); alt_rhs = other };
           ] ))
  in
  let wrap_join ty =
    let x = mk_var "p" Types.int in
    let jv = mk_join_var "j" [] [ x ] in
    let arg = gen ~tail:false closed_env Types.int small st in
    Some
      (Join
         ( JNonRec { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = e },
           Jump (jv, [], [ arg ], ty) ))
  in
  let wrap_loop ty =
    let n = mk_var "n" Types.int in
    let jv = mk_join_var "loop" [] [ n ] in
    let start = int_range st 1 4 in
    let rhs =
      B.if_
        (B.le (Var n) (B.int 0))
        e
        (Jump (jv, [], [ B.sub (Var n) (B.int 1) ], ty))
    in
    Some
      (Join
         ( JRec
             [ { j_var = jv; j_tyvars = []; j_params = [ n ]; j_rhs = rhs } ],
           Jump (jv, [], [ B.int start ], ty) ))
  in
  (* Scaffolding the simplifier cannot evaluate away: a non-tail
     recursive function is a loop breaker, so [h 5] stays an opaque
     call and everything built from it resists constant folding. Around
     that opaque value: two bindings with identical right-hand sides
     (CSE), a lambda past the inline threshold (inline_too_big), and a
     small shared lambda (call-site inlining) — optimizer behaviours
     fresh generation essentially never produces. The scaffold is
     strict and total; its value gates a branch that always takes [e]. *)
  let wrap_opaque ty =
    let h = mk_var "h" (Types.arrows [ Types.int ] Types.int) in
    let n = mk_var "n" Types.int in
    let h_rhs =
      Lam
        ( n,
          B.if_
            (B.le (Var n) (B.int 0))
            (B.int 1)
            (B.add (App (Var h, B.sub (Var n) (B.int 1))) (B.int 2)) )
    in
    let x = mk_var "x" Types.int in
    let a = mk_var "a" Types.int in
    let b = mk_var "b" Types.int in
    let big = mk_var "big" (Types.arrows [ Types.int ] Types.int) in
    let w = mk_var "w" Types.int in
    let big_rhs =
      let rec pad acc k =
        if k > 24 then acc
        else pad (B.add acc (B.mul (Var w) (B.add (Var x) (B.int k)))) (k + 1)
      in
      Lam (w, pad (Var w) 1)
    in
    let sm = mk_var "sm" (Types.arrows [ Types.int ] Types.int) in
    let v = mk_var "v" Types.int in
    let sm_rhs = Lam (v, B.add (B.add (Var v) (Var v)) (B.int 3)) in
    let scaffold =
      Let
        ( Rec [ (h, h_rhs) ],
          Let
            ( NonRec (x, App (Var h, B.int 5)),
              Let
                ( NonRec (a, B.add (Var x) (B.int 7)),
                  Let
                    ( NonRec (b, B.add (Var x) (B.int 7)),
                      Let
                        ( NonRec (big, big_rhs),
                          Let
                            ( NonRec (sm, sm_rhs),
                              B.add
                                (B.add (B.add (Var a) (Var a)) (Var b))
                                (B.add
                                   (B.add
                                      (App (Var big, B.int 1))
                                      (App (Var big, B.int 2)))
                                   (B.add
                                      (App (Var sm, B.int 1))
                                      (App (Var sm, B.int 2)))) ) ) ) ) ) )
    in
    let other = gen ~tail:false closed_env ty small st in
    Some
      (Case
         ( B.le (B.int 0) scaffold,
           [
             { alt_pat = PCon (Datacon.builtin "True", []); alt_rhs = e };
             { alt_pat = PCon (Datacon.builtin "False", []); alt_rhs = other };
           ] ))
  in
  let result =
    match Syntax.ty_of e with
    | exception _ -> perturb_literal ()
    | ty ->
        frequency st
          [
            (3, perturb_literal);
            (2, wrap_let);
            (2, fun () -> wrap_case ty);
            (2, fun () -> wrap_join ty);
            (1, fun () -> wrap_loop ty);
            (2, fun () -> wrap_opaque ty);
          ]
  in
  match result with
  | Some e' -> e'
  | None -> (
      (* No integer literal to perturb: fall back to a wrapper. *)
      match wrap_let () with Some e' -> e' | None -> e)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* Immediate subterms, as shrink candidates. Only closed ones survive
   the filter below; openness is cheaper to test once than to track. *)
let subterms (e : expr) : expr list =
  match e with
  | Var _ | Lit _ -> []
  | Con (_, _, args) -> args
  | Prim (_, args) -> args
  | App (f, a) -> [ f; a ]
  | TyApp (f, _) -> [ f ]
  | Lam (_, b) | TyLam (_, b) -> [ b ]
  | Let (bind, body) -> body :: List.map snd (bind_pairs bind)
  | Case (scrut, alts) -> scrut :: List.map (fun a -> a.alt_rhs) alts
  | Join (jb, body) ->
      body :: List.map (fun d -> d.j_rhs) (join_defns jb)
  | Jump (_, _, args, _) -> args

(* Discharge an alternative's pattern binders with canonical values so
   its rhs can stand alone. *)
let discharge_alt (a : alt) : expr option =
  match a.alt_pat with
  | PLit _ | PDefault -> Some a.alt_rhs
  | PCon (_, xs) -> (
      try
        Some
          (List.fold_left
             (fun rhs (x : var) -> Subst.beta_reduce x (default_of x.v_ty) rhs)
             a.alt_rhs xs)
      with Invalid_argument _ -> None)

let shrink (e : expr) : expr list =
  let structural =
    match e with
    | Let (NonRec (x, rhs), body) | Let (Strict (x, rhs), body) ->
        (* Let elimination by substitution (may not shrink if x is
           multi-use; the size filter below discards that case). *)
        [ Subst.beta_reduce x rhs body ]
    | Case (_, alts) -> List.filter_map discharge_alt alts
    | Join (_, body) -> [ body ]
    | _ -> []
  in
  let n = size e in
  List.filter
    (fun c -> size c <= n && Ident.Set.is_empty (free_vars c))
    (structural @ subterms e)

let minimize ?(steps = 500) ~failing (e : expr) : expr =
  let rec go fuel e =
    if fuel <= 0 then e
    else
      match List.find_opt failing (shrink e) with
      | Some smaller when size smaller < size e -> go (fuel - 1) smaller
      | Some same ->
          (* Equal-size candidate (e.g. a substitution that did not
             shrink): take it only if it unlocks further progress. *)
          let next = go (fuel - 1) same in
          if size next < size e then next else e
      | None -> e
  in
  go steps e
