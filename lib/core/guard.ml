(** The fault-tolerant pass harness — see the interface for the
    design. *)

type policy = Strict | Recover

let policy_name = function Strict -> "strict" | Recover -> "recover"

type limits = {
  pass_fuel : int option;
  max_growth_factor : int;
  max_growth_slack : int;
}

let default_limits =
  { pass_fuel = Some 2_000_000; max_growth_factor = 12; max_growth_slack = 2_000 }

type cause =
  | Exn of string
  | Lint_failed of string
  | Fuel_exhausted of { budget : int }
  | Size_exploded of { size_before : int; size_after : int; limit : int }

let cause_name = function
  | Exn _ -> "exception"
  | Lint_failed _ -> "lint"
  | Fuel_exhausted _ -> "fuel"
  | Size_exploded _ -> "size"

let cause_detail = function
  | Exn m -> m
  | Lint_failed m -> m
  | Fuel_exhausted { budget } -> Fmt.str "pass exceeded %d ticks" budget
  | Size_exploded { size_before; size_after; limit } ->
      Fmt.str "size %d -> %d exceeds ceiling %d" size_before size_after limit

let pp_cause ppf c = Fmt.pf ppf "%s: %s" (cause_name c) (cause_detail c)

type incident = { i_pass : string; i_cause : cause; i_restored : string }

let pp_incident ppf i =
  Fmt.pf ppf "pass %s rolled back (%a); resumed from %s" i.i_pass pp_cause
    i.i_cause i.i_restored

let incident_json (i : incident) =
  let payload =
    match i.i_cause with
    | Exn _ | Lint_failed _ -> []
    | Fuel_exhausted { budget } -> [ ("budget", Telemetry.Json.Int budget) ]
    | Size_exploded { size_before; size_after; limit } ->
        Telemetry.Json.
          [
            ("size_before", Int size_before);
            ("size_after", Int size_after);
            ("limit", Int limit);
          ]
  in
  Telemetry.Json.(
    Obj
      ([
         ("pass", Str i.i_pass);
         ("cause", Str (cause_name i.i_cause));
         ("detail", Str (cause_detail i.i_cause));
         ("restored", Str i.i_restored);
       ]
      @ payload))

let incident_of_json (j : Telemetry.Json.t) : incident option =
  let open Telemetry.Json in
  match j with
  | Obj fields ->
      let str k =
        match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None
      in
      let int k =
        match List.assoc_opt k fields with Some (Int n) -> Some n | _ -> None
      in
      let ( let* ) = Option.bind in
      let* pass = str "pass" in
      let* cause = str "cause" in
      let* restored = str "restored" in
      let detail = Option.value ~default:"" (str "detail") in
      let* cause =
        match cause with
        | "exception" -> Some (Exn detail)
        | "lint" -> Some (Lint_failed detail)
        | "fuel" ->
            let* budget = int "budget" in
            Some (Fuel_exhausted { budget })
        | "size" ->
            let* size_before = int "size_before" in
            let* size_after = int "size_after" in
            let* limit = int "limit" in
            Some (Size_exploded { size_before; size_after; limit })
        | _ -> None
      in
      Some { i_pass = pass; i_cause = cause; i_restored = restored }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fuel metering                                                       *)
(* ------------------------------------------------------------------ *)

(* Raised internally when a metered pass exceeds its tick budget;
   [protect] turns it into a [Fuel_exhausted] incident, so it never
   escapes to callers. *)
exception Cutoff of int

(* The innermost installed budget: remaining fuel and the original
   budget (for the incident report). Dynamically scoped by [protect];
   [spend] is a no-op outside any budget. *)
let budget : (int ref * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let spend n =
  match Domain.DLS.get budget with
  | None -> ()
  | Some (remaining, total) ->
      remaining := !remaining - n;
      if !remaining < 0 then raise (Cutoff total)

let with_budget b f =
  match b with
  | None -> Telemetry.with_observer spend f
  | Some total ->
      let saved = Domain.DLS.get budget in
      Domain.DLS.set budget (Some (ref total, total));
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set budget saved)
        (fun () -> Telemetry.with_observer spend f)

(* ------------------------------------------------------------------ *)
(* The harness                                                         *)
(* ------------------------------------------------------------------ *)

(* Lint errors quote the offending expression in full context, which
   for a whole program is pages of text; an incident record wants the
   diagnosis, not the dump. *)
let truncate_detail s =
  let cap = 400 in
  if String.length s <= cap then s
  else String.sub s 0 cap ^ Fmt.str " ... [%d more bytes]" (String.length s - cap)

let protect ~limits ~datacons ~pass ~restored f (e : Syntax.expr) :
    (Syntax.expr * float, incident) result =
  let size_before = Syntax.size e in
  (* A rollback is a structural decision, not timed work, but marking
     it as a (near-zero) span puts the guard's verdict on the same
     Perfetto track as the phases it judged; the cause counters feed
     the metrics registry the heartbeats snapshot. *)
  let fail cause =
    Span.with_span ~cat:"guard" "rollback" (fun () ->
        Span.annotate "cause" (Telemetry.Json.Str (cause_name cause)));
    Metrics.incr "guard.rollbacks";
    Metrics.incr ("guard.rollback." ^ cause_name cause);
    Error { i_pass = pass; i_cause = cause; i_restored = restored }
  in
  match
    with_budget limits.pass_fuel (fun () ->
        Span.with_span ~cat:"guard" "body" (fun () -> f e))
  with
  | exception Cutoff total -> fail (Fuel_exhausted { budget = total })
  | exception Stack_overflow -> fail (Exn "stack overflow")
  | exception exn -> fail (Exn (Printexc.to_string exn))
  | e' -> (
      let size_after = Syntax.size e' in
      let limit =
        (limits.max_growth_factor * size_before) + limits.max_growth_slack
      in
      if size_after > limit then
        fail (Size_exploded { size_before; size_after; limit })
      else
        let result, lint_ms =
          Span.with_span_timed ~cat:"guard" "lint" (fun () ->
              match Lint.lint_result datacons e' with
              | r -> Ok r
              | exception exn -> Error exn)
        in
        Metrics.observe "guard.lint_ms" lint_ms;
        match result with
        | Ok (Ok _) -> Ok (e', lint_ms)
        | Ok (Error err) ->
            fail (Lint_failed (truncate_detail (Fmt.str "%a" Lint.pp_error err)))
        | Error exn ->
            fail (Lint_failed ("lint itself raised: " ^ Printexc.to_string exn)))
