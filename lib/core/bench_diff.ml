(** Diff of two [fj-bench/1] trajectory files — see the interface for
    the metric-kind design. *)

type kind = Count | Points | Timing | Info

type metric = {
  m_metric : string;
  m_kind : kind;
  m_old : float;
  m_new : float;
  m_delta : float;
  m_delta_pct : float option;
  m_noise : float option;
  m_regressed : bool;
}

type prog = { p_name : string; p_suite : string; p_metrics : metric list }

type t = {
  d_old : string;
  d_new : string;
  d_gate_pct : float option;
  d_gate_timing : bool;
  d_programs : prog list;
  d_only_old : string list;
  d_only_new : string list;
  d_file_metrics : metric list;
}

let kind_name = function
  | Count -> "count"
  | Points -> "points"
  | Timing -> "timing"
  | Info -> "info"

(* ------------------------------------------------------------------ *)
(* JSON spelunking                                                     *)
(* ------------------------------------------------------------------ *)

let field name = function
  | Telemetry.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

(* Dotted path into nested objects: ["timing.base_eval_ms_median"]. *)
let path p j =
  List.fold_left
    (fun acc name -> Option.bind acc (field name))
    (Some j)
    (String.split_on_char '.' p)

let num = function
  | Some (Telemetry.Json.Int n) -> Some (float_of_int n)
  | Some (Telemetry.Json.Float f) -> Some f
  | _ -> None

let str = function Some (Telemetry.Json.Str s) -> Some s | _ -> None

let arr = function Some (Telemetry.Json.Arr l) -> l | _ -> []

(* ------------------------------------------------------------------ *)
(* Gating                                                              *)
(* ------------------------------------------------------------------ *)

(* Every compared metric is lower-is-better (allocation, steps, time,
   the Table-1 delta_pct); Info metrics have no polarity at all.
   Timing only participates when explicitly asked ([gate_timing]):
   counts and delta_pct are machine-independent, but wall-clock
   medians from two different machines (a committed baseline vs a CI
   runner) differ for reasons no same-run noise band can absorb. *)
let gated (gate_pct, gate_timing) (m : metric) =
  match (gate_pct, m.m_kind) with
  | None, _ | _, Info -> false
  | Some gate, Count -> (
      match m.m_delta_pct with Some pct -> pct > gate | None -> m.m_delta > 0.0)
  | Some gate, Points -> m.m_delta > gate
  | Some gate, Timing ->
      gate_timing
      &&
      let noise = Option.value ~default:0.0 m.m_noise in
      m.m_delta > noise +. (gate /. 100.0 *. Float.abs m.m_old)

let mk gate_pct ~kind ?noise name vold vnew =
  let delta = vnew -. vold in
  let delta_pct =
    if vold <> 0.0 then Some (delta /. Float.abs vold *. 100.0) else None
  in
  let m =
    {
      m_metric = name;
      m_kind = kind;
      m_old = vold;
      m_new = vnew;
      m_delta = delta;
      m_delta_pct = delta_pct;
      m_noise = noise;
      m_regressed = false;
    }
  in
  { m with m_regressed = gated gate_pct m }

(* Compare one dotted path present in both program rows; absent on
   either side (older snapshot) means no metric. *)
let compare_path gate_pct ~kind ?noise_path name po pn =
  match (num (path name po), num (path name pn)) with
  | Some vold, Some vnew ->
      let noise =
        match noise_path with
        | None -> None
        | Some (med, p95) -> (
            (* Spread of each run's own samples, summed: movement
               inside this band is indistinguishable from jitter. *)
            match
              (num (path med po), num (path p95 po), num (path med pn),
               num (path p95 pn))
            with
            | Some mo, Some po95, Some mn, Some pn95 ->
                Some (Float.abs (po95 -. mo) +. Float.abs (pn95 -. mn))
            | _ -> None)
      in
      Some (mk gate_pct ~kind ?noise name vold vnew)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The diff                                                            *)
(* ------------------------------------------------------------------ *)

let prog_metrics gate_pct po pn =
  List.filter_map
    (fun f -> f ())
    [
      (fun () -> compare_path gate_pct ~kind:Count "base_words" po pn);
      (fun () -> compare_path gate_pct ~kind:Count "join_words" po pn);
      (fun () -> compare_path gate_pct ~kind:Count "base_steps" po pn);
      (fun () -> compare_path gate_pct ~kind:Count "join_steps" po pn);
      (fun () -> compare_path gate_pct ~kind:Count "base_jumps" po pn);
      (fun () -> compare_path gate_pct ~kind:Count "join_jumps" po pn);
      (fun () -> compare_path gate_pct ~kind:Points "delta_pct" po pn);
      (fun () ->
        compare_path gate_pct ~kind:Timing "timing.base_eval_ms_median"
          ~noise_path:
            ("timing.base_eval_ms_median", "timing.base_eval_ms_p95")
          po pn);
      (fun () ->
        compare_path gate_pct ~kind:Timing "timing.join_eval_ms_median"
          ~noise_path:
            ("timing.join_eval_ms_median", "timing.join_eval_ms_p95")
          po pn);
      (fun () ->
        compare_path gate_pct ~kind:Info "optimizer.join.total_ticks" po pn);
      (fun () ->
        compare_path gate_pct ~kind:Info "optimizer.join.contified" po pn);
      (fun () ->
        compare_path gate_pct ~kind:Info "optimizer.join.decisions.fired" po pn);
      (fun () ->
        compare_path gate_pct ~kind:Info "optimizer.join.decisions.rejected" po
          pn);
      (fun () ->
        compare_path gate_pct ~kind:Info "optimizer.join.total_gc.minor_words"
          po pn);
      (* Static-analysis verdicts (Absint): informational only — a
         missed-opt count moving is a lead, not a regression gate. *)
      (fun () -> compare_path gate_pct ~kind:Info "analysis.errors" po pn);
      (fun () ->
        compare_path gate_pct ~kind:Info "analysis.missed_opt" po pn);
      (fun () ->
        compare_path gate_pct ~kind:Info "analysis.fixpoint_iterations" po
          pn);
    ]

let label j file =
  let date = Option.value ~default:"?" (str (field "date" j)) in
  match str (field "commit" j) with
  | Some c ->
      Fmt.str "%s (%s, %s)" file date
        (String.sub c 0 (min 9 (String.length c)))
  | None -> Fmt.str "%s (%s)" file date

let diff ?gate_pct ?(gate_timing = false) ~old_label ~new_label jold jnew =
  let gate = (gate_pct, gate_timing) in
  let schema j = str (field "schema" j) in
  match (schema jold, schema jnew) with
  | Some "fj-bench/1", Some "fj-bench/1" ->
      let progs j =
        List.filter_map
          (fun p -> Option.map (fun n -> (n, p)) (str (field "name" p)))
          (arr (field "programs" j))
      in
      let po = progs jold and pn = progs jnew in
      let aligned =
        List.filter_map
          (fun (name, o) ->
            match List.assoc_opt name pn with
            | None -> None
            | Some n ->
                Some
                  {
                    p_name = name;
                    p_suite = Option.value ~default:"" (str (field "suite" o));
                    p_metrics = prog_metrics gate o n;
                  })
          po
      in
      let only l l' =
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name l' then None else Some name)
          l
      in
      let file_metrics =
        List.filter_map
          (fun f -> f ())
          [
            (fun () ->
              Some
                (mk gate ~kind:Info "programs"
                   (float_of_int (List.length po))
                   (float_of_int (List.length pn))));
            (fun () ->
              compare_path gate ~kind:Info "coverage.covered" jold jnew);
            (fun () ->
              compare_path gate ~kind:Info "coverage.percent" jold jnew);
          ]
      in
      Ok
        {
          d_old = label jold old_label;
          d_new = label jnew new_label;
          d_gate_pct = gate_pct;
          d_gate_timing = gate_timing;
          d_programs = aligned;
          d_only_old = only po pn;
          d_only_new = only pn po;
          d_file_metrics = file_metrics;
        }
  | s, s' ->
      let bad =
        if s <> Some "fj-bench/1" then (old_label, s) else (new_label, s')
      in
      Error
        (Fmt.str "%s: not an fj-bench/1 file (schema %s)" (fst bad)
           (Option.value ~default:"missing" (snd bad)))

let of_strings ?gate_pct ?gate_timing ~old_label ~new_label sold snew =
  match Telemetry.Json.parse sold with
  | Error m -> Error (Fmt.str "%s: %s" old_label m)
  | Ok jold -> (
      match Telemetry.Json.parse snew with
      | Error m -> Error (Fmt.str "%s: %s" new_label m)
      | Ok jnew -> diff ?gate_pct ?gate_timing ~old_label ~new_label jold jnew)

let regressions d =
  List.filter (fun (_, m) -> m.m_regressed)
    (List.map (fun m -> ("", m)) d.d_file_metrics
    @ List.concat_map
        (fun p -> List.map (fun m -> (p.p_name, m)) p.p_metrics)
        d.d_programs)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let find p name = List.find_opt (fun m -> m.m_metric = name) p.p_metrics

(* "1234 -> 1300 (+5.3%)" — the common cell. *)
let cell ppf (m : metric) =
  let v ppf x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Fmt.pf ppf "%.0f" x
    else Fmt.pf ppf "%.3f" x
  in
  Fmt.pf ppf "%a -> %a" v m.m_old v m.m_new;
  match m.m_delta_pct with
  | Some pct when m.m_kind <> Points -> Fmt.pf ppf " (%+.1f%%)" pct
  | _ -> Fmt.pf ppf " (%+.1f)" m.m_delta

let pp_gate ppf (g, timing) =
  match g with
  | None -> Fmt.pf ppf "no gate"
  | Some g ->
      Fmt.pf ppf "gate %g%% (counts), %g points (delta_pct), %s" g g
        (if timing then Fmt.str "noise+%g%% (timing)" g
         else "timing not gated")

let pp ppf d =
  Fmt.pf ppf "@[<v>fj-bench diff: %s -> %s  [%a]@," d.d_old d.d_new pp_gate
    (d.d_gate_pct, d.d_gate_timing);
  List.iter
    (fun p ->
      Fmt.pf ppf "%-22s" p.p_name;
      (match find p "join_words" with
      | Some m -> Fmt.pf ppf "  words %a" cell m
      | None -> ());
      (match find p "delta_pct" with
      | Some m -> Fmt.pf ppf "  delta_pct %a" cell m
      | None -> ());
      Fmt.pf ppf "@,")
    d.d_programs;
  List.iter (fun n -> Fmt.pf ppf "only in old: %s@," n) d.d_only_old;
  List.iter (fun n -> Fmt.pf ppf "only in new: %s@," n) d.d_only_new;
  (match regressions d with
  | [] -> Fmt.pf ppf "no regressions"
  | rs ->
      Fmt.pf ppf "REGRESSIONS (%d):@," (List.length rs);
      List.iter
        (fun (prog, m) ->
          Fmt.pf ppf "  %s %s: %a@," prog m.m_metric cell m)
        rs);
  Fmt.pf ppf "@]"

let to_markdown d =
  let b = Buffer.create 1024 in
  let pr fmt = Fmt.kstr (fun s -> Buffer.add_string b s) fmt in
  pr "# fj-bench diff\n\n";
  pr "- old: `%s`\n- new: `%s`\n- %a\n\n" d.d_old d.d_new pp_gate
    (d.d_gate_pct, d.d_gate_timing);
  pr "| program | suite | join words | base words | delta_pct (pts) | join eval p50 (ms) |\n";
  pr "|---|---|---|---|---|---|\n";
  List.iter
    (fun p ->
      let c name =
        match find p name with
        | Some m -> Fmt.str "%a%s" cell m (if m.m_regressed then " ⚠" else "")
        | None -> "—"
      in
      pr "| %s | %s | %s | %s | %s | %s |\n" p.p_name p.p_suite
        (c "join_words") (c "base_words") (c "delta_pct")
        (c "timing.join_eval_ms_median"))
    d.d_programs;
  if d.d_only_old <> [] then
    pr "\nPrograms only in old: %s\n" (String.concat ", " d.d_only_old);
  if d.d_only_new <> [] then
    pr "\nPrograms only in new: %s\n" (String.concat ", " d.d_only_new);
  (match regressions d with
  | [] -> pr "\n**No regressions.**\n"
  | rs ->
      pr "\n## Regressions (%d)\n\n" (List.length rs);
      List.iter
        (fun (prog, m) ->
          pr "- `%s` %s: %a\n"
            (if prog = "" then "(file)" else prog)
            m.m_metric cell m)
        rs);
  Buffer.contents b

let metric_json (m : metric) =
  Telemetry.Json.(
    Obj
      ([
         ("metric", Str m.m_metric);
         ("kind", Str (kind_name m.m_kind));
         ("old", Float m.m_old);
         ("new", Float m.m_new);
         ("delta", Float m.m_delta);
       ]
      @ (match m.m_delta_pct with
        | Some p -> [ ("delta_pct", Float p) ]
        | None -> [])
      @ (match m.m_noise with
        | Some n -> [ ("noise", Float n) ]
        | None -> [])
      @ [ ("regressed", Bool m.m_regressed) ]))

let to_json d =
  Telemetry.Json.(
    Obj
      [
        ("schema", Str "fj-bench-diff/1");
        ("old", Str d.d_old);
        ("new", Str d.d_new);
        ( "gate_pct",
          match d.d_gate_pct with Some g -> Float g | None -> Null );
        ("gate_timing", Bool d.d_gate_timing);
        ( "programs",
          Arr
            (List.map
               (fun p ->
                 Obj
                   [
                     ("name", Str p.p_name);
                     ("suite", Str p.p_suite);
                     ("metrics", Arr (List.map metric_json p.p_metrics));
                   ])
               d.d_programs) );
        ("only_old", Arr (List.map (fun s -> Str s) d.d_only_old));
        ("only_new", Arr (List.map (fun s -> Str s) d.d_only_new));
        ("file_metrics", Arr (List.map metric_json d.d_file_metrics));
        ( "regressions",
          Arr
            (List.map
               (fun (prog, m) ->
                 Obj [ ("program", Str prog); ("metric", metric_json m) ])
               (regressions d)) );
      ])
