(** The Simplifier: a context-passing partial evaluator in the style of
    GHC's Simplifier (Sec. 7), implementing the Fig. 4 equational theory
    wholesale — inlining, beta reduction, case-of-known-constructor,
    dead-code elimination, constant folding, and the commuting
    conversions ([float], [casefloat], [jfloat], [abort]).

    The traversal builds up a representation of the evaluation context
    (the continuation {!cont}) as it goes. The two join-point behaviours
    the paper highlights need only two cases:

    - {e jfloat}: when traversing a join-point binding, the current
      continuation is copied into the right-hand side(s);
    - {e abort}: when traversing a jump, the current continuation is
      thrown away (and the jump's claimed result type re-pointed).

    Everything else treats join points exactly like let bindings.

    A {!config} chooses between the {b join-point compiler} and the
    {b baseline} (pre-join-point GHC): in baseline mode, when
    case-of-case must share the outer alternatives it binds them as
    ordinary [let]-bound functions — the paper's "ordinary let binding
    (as GHC does today)" — which both allocates and blocks further
    commuting; in join mode it binds them as join points. *)

open Syntax

type config = {
  join_points : bool;
      (** Use join points for shared case alternatives ([jfloat] /
          [abort] enabled). When false, behave like pre-join-point GHC. *)
  case_of_case : bool;  (** Enable the commuting conversions at all. *)
  inline_threshold : int;  (** Max size of an unfolding spliced at a site. *)
  dup_threshold : int;
      (** Continuations no larger than this are duplicated into case
          branches directly rather than shared via a join point. *)
  datacons : Datacon.env;
}

let default_config ?(join_points = true) ?(case_of_case = true)
    ?(inline_threshold = 60) ?(dup_threshold = 12)
    ?(datacons = Datacon.builtins) () =
  { join_points; case_of_case; inline_threshold; dup_threshold; datacons }

(* ------------------------------------------------------------------ *)
(* Environment and continuations                                       *)
(* ------------------------------------------------------------------ *)

type env = {
  cfg : config;
  subst : Subst.t;  (** Pending renamings / substitutions. *)
  unf : expr Ident.Map.t;
      (** Unfoldings of in-scope (post-cloning) let binders whose
          right-hand sides are values; used for call-site inlining. *)
  usage : Occur.info Ident.Map.t;  (** Binder usage, from pass start. *)
  changed : bool ref;
}

(** Usage of a binder; conservative for binders introduced mid-pass. *)
let usage_of env (x : var) : Occur.info =
  match Ident.Map.find_opt x.v_name env.usage with
  | Some i -> i
  | None ->
      { count = 2; under_lam = true; all_tail = false; shape = None }

type cont =
  | Stop
  | CApp of env * expr * cont  (** [[] e] with [e] not yet simplified. *)
  | CTyApp of Types.t * cont  (** [[] tau], [tau] already substituted. *)
  | CCase of env * alt list * cont  (** [case [] of alts]. *)

let rec cont_is_stop = function
  | Stop -> true
  | _ -> false

and cont_size = function
  | Stop -> 0
  | CApp (_, arg, k) -> 1 + size arg + cont_size k
  | CTyApp (_, k) -> cont_size k
  | CCase (_, alts, k) ->
      List.fold_left (fun n a -> n + 1 + size a.alt_rhs) 1 alts + cont_size k

(* The type delivered by the continuation, given the type flowing into
   its hole. Uses [ty_of] on raw alternatives, whose binders carry
   their (substituted) types. *)
let rec cont_res_ty env (k : cont) (hole_ty : Types.t) : Types.t =
  match k with
  | Stop -> hole_ty
  | CApp (_, _, k') -> (
      match hole_ty with
      | Types.Arrow (_, r) -> cont_res_ty env k' r
      | _ -> raise (Ill_typed "cont_res_ty: application of non-function"))
  | CTyApp (t, k') -> (
      match hole_ty with
      | Types.Forall (a, body) -> cont_res_ty env k' (Types.subst1 a t body)
      | _ -> raise (Ill_typed "cont_res_ty: instantiation of non-forall"))
  | CCase (aenv, alts, k') -> (
      match alts with
      | [] -> raise (Ill_typed "cont_res_ty: empty case")
      | a :: _ -> cont_res_ty env k' (Subst.subst_ty aenv.subst (ty_of a.alt_rhs)))

(* ------------------------------------------------------------------ *)
(* The simplifier                                                      *)
(* ------------------------------------------------------------------ *)

(* Record a change AND attribute it: every rewrite the simplifier
   performs ticks a named counter (GHC's simplifier ticks). *)
let mark env t =
  env.changed := true;
  Telemetry.tick t

(* This pass's name in the decision ledger. *)
let dpass = "simplify"

(* The ledger site for a decision about a case alternative: the
   constructor being matched, or [alt._] for literal/default arms. *)
let alt_site = function
  | PCon (dc, _) -> "alt." ^ String.lowercase_ascii dc.name
  | PLit _ | PDefault -> "alt._"

(* Ledger a pre-inline verdict for binder [x]. Rejections quote the
   occurrence fact that blocked the substitution. *)
let record_pre_inline (x : var) (info : Occur.info) ~fired =
  if Decision.enabled () then
    let site = Ident.site x.v_name in
    let verdict =
      if fired then Decision.Fired
      else if info.count > 1 then
        Decision.Rejected (Decision.Occurs_many { count = info.count })
      else Decision.Rejected Decision.Escapes_under_lambda
    in
    Decision.record ~pass:dpass Decision.Pre_inline ~site verdict

(* The [float]/[casefloat] axioms are implicit in the traversal: when a
   binding is reached with a non-empty continuation, the context is
   passed into its body. Not a {!mark} — the traversal always does
   this; the tick merely attributes the commuting work. *)
let tick_context_passed (_ : env) (k : cont) =
  match k with
  | Stop -> ()
  | CCase _ -> Telemetry.tick Telemetry.Casefloat
  | CApp _ | CTyApp _ -> Telemetry.tick Telemetry.Commute

let rec simpl (env : env) (e : expr) (k : cont) : expr =
  match e with
  | Var v -> (
      match Ident.Map.find_opt v.v_name env.subst.terms with
      | Some e' ->
          (* A pending substitution: [e'] is already simplified (it was
             a trivial expression or a once-used rhs). Re-enter so it
             can interact with the continuation. *)
          simpl { env with subst = Subst.empty } e' k
      | None ->
          let v = { v with v_ty = Subst.subst_ty env.subst v.v_ty } in
          consider_inline env v k)
  | Lit _ -> rebuild env e k
  | Con (dc, phis, es) ->
      let phis = List.map (Subst.subst_ty env.subst) phis in
      let es = List.map (fun e -> simpl env e Stop) es in
      rebuild env (Con (dc, phis, es)) k
  | Prim (op, es) -> (
      let es = List.map (fun e -> simpl env e Stop) es in
      let lits = List.filter_map (function Lit l -> Some l | _ -> None) es in
      if List.length lits = List.length es then
        match Primop.fold_lit op lits with
        | Some l ->
            mark env Telemetry.Constant_fold;
            rebuild env (Lit l) k
        | None -> (
            match Primop.fold_bool op lits with
            | Some b ->
                mark env Telemetry.Constant_fold;
                rebuild env (Con (Datacon.of_bool b, [], [])) k
            | None -> rebuild env (Prim (op, es)) k)
      else rebuild env (Prim (op, es)) k)
  | App (f, a) -> simpl env f (CApp (env, a, k))
  | TyApp (f, t) -> simpl env f (CTyApp (Subst.subst_ty env.subst t, k))
  | Lam (x, body) -> (
      match k with
      | CApp (aenv, arg, k') ->
          (* beta: bind the argument, continue into the body. *)
          mark env Telemetry.Beta;
          let arg' = simpl aenv arg Stop in
          bind_arg env x arg' (fun env' -> simpl env' body k')
      | _ ->
          let x', s = Subst.clone_var env.subst x in
          let body' = simpl { env with subst = s } body Stop in
          rebuild env (Lam (x', body')) k)
  | TyLam (a, body) -> (
      match k with
      | CTyApp (t, k') ->
          (* beta_tau *)
          mark env Telemetry.Beta_tau;
          simpl { env with subst = Subst.add_type a t env.subst } body k'
      | _ ->
          let a', s = Subst.clone_tyvar env.subst a in
          let body' = simpl { env with subst = s } body Stop in
          rebuild env (TyLam (a', body')) k)
  | Let (NonRec (x, rhs), body) ->
      tick_context_passed env k;
      simpl_nonrec env x rhs body k
  | Let (Strict (x, rhs), body) ->
      tick_context_passed env k;
      let rhs' = simpl env rhs Stop in
      if is_whnf rhs' || is_trivial rhs' then
        (* The demand is already satisfied: an ordinary binding now. *)
        bind_arg env x rhs' (fun env' -> simpl env' body k)
      else begin
        let x', s = Subst.clone_var env.subst x in
        let env' = { env with subst = s } in
        let body' = simpl env' body k in
        if
          (not (occurs x'.v_name body'))
          && Cleanup.ok_for_speculation rhs'
        then begin
          mark env Telemetry.Drop;
          body'
        end
        else Let (Strict (x', rhs'), body')
      end
  | Let (Rec pairs, body) ->
      tick_context_passed env k;
      (* Recursive binders never get unfoldings (GHC's loop breakers),
         so call-site inlining of them is off the table — say so. *)
      (if Decision.enabled () then
         List.iter
           (fun ((x : var), _) ->
             Decision.record ~pass:dpass Decision.Inline
               ~site:(Ident.site x.v_name)
               (Decision.Rejected Decision.Loop_breaker))
           pairs);
      let xs = List.map fst pairs in
      let xs', s = Subst.clone_vars env.subst xs in
      let env' = { env with subst = s } in
      let pairs' =
        List.map2 (fun x' (_, rhs) -> (x', simpl env' rhs Stop)) xs' pairs
      in
      (* The context passes the binding (the [float] axiom). *)
      let body' = simpl env' body k in
      if
        List.for_all
          (fun (x' : var) -> not (occurs x'.v_name body'))
          (List.map fst pairs')
        && List.for_all
             (fun (x' : var) ->
               List.for_all
                 (fun (_, rhs') -> not (occurs x'.v_name rhs'))
                 pairs')
             (List.map fst pairs')
      then begin
        mark env Telemetry.Drop;
        body'
      end
      else Let (Rec pairs', body')
  | Case (scrut, alts) -> simpl env scrut (CCase (env, alts, k))
  | Join (jb, body) -> simpl_join env jb body k
  | Jump (j, phis, es, tau) ->
      let j' =
        match Ident.Map.find_opt j.v_name env.subst.terms with
        | Some (Var v) -> v
        | Some _ -> invalid_arg "Simplify: label mapped to non-variable"
        | None -> { j with v_ty = Subst.subst_ty env.subst j.v_ty }
      in
      let phis' = List.map (Subst.subst_ty env.subst) phis in
      let es' = List.map (fun e -> simpl env e Stop) es in
      let tau0 = Subst.subst_ty env.subst tau in
      (* abort: the continuation is discarded; the jump claims the type
         the continuation would have delivered. *)
      if not (cont_is_stop k) then mark env Telemetry.Abort;
      let tau' = cont_res_ty env k tau0 in
      Jump (j', phis', es', tau')

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)
(* ------------------------------------------------------------------ *)

(* A once-used binding may be substituted when doing so cannot
   duplicate {e work}: either the occurrence is not under a lambda, or
   the right-hand side is itself a lambda (re-"evaluating" a lambda is
   free — though note that, unlike GHC, we deliberately keep once-used
   {e constructors} shared, since duplicating them duplicates
   allocation). *)
and once_inlinable (info : Occur.info) (rhs' : expr) =
  info.count = 1
  && ((not info.under_lam)
     || match rhs' with Lam _ | TyLam _ -> true | _ -> false)

(* Bind [x] to the already-simplified [arg'] around [body_k]. Trivial
   arguments and work-safe once-used arguments are substituted;
   otherwise a let is built (and an unfolding recorded if the rhs is a
   value). Dead binders are dropped (sound under call-by-name/need). *)
and bind_arg env (x : var) (arg' : expr) (body_k : env -> expr) : expr =
  let info = usage_of env x in
  if info.count = 0 then begin
    mark env Telemetry.Drop;
    body_k env
  end
  else if is_trivial arg' || once_inlinable info arg' then begin
    if not (is_trivial arg') then begin
      mark env Telemetry.Pre_inline;
      record_pre_inline x info ~fired:true
    end;
    body_k { env with subst = Subst.add_term x.v_name arg' env.subst }
  end
  else begin
    record_pre_inline x info ~fired:false;
    let x', s = Subst.clone_var env.subst x in
    (* ANF-ise constructor right-hand sides so the unfolding can be
       duplicated without losing sharing of its fields. *)
    anf_con env arg' (fun env arg'' ->
        let env' =
          {
            env with
            subst = s;
            unf =
              (if is_whnf arg'' then Ident.Map.add x'.v_name arg'' env.unf
               else env.unf);
          }
        in
        let body' = body_k env' in
        if occurs x'.v_name body' then Let (NonRec (x', arg''), body')
        else begin
          mark env Telemetry.Drop;
          body'
        end)
  end

(* Give a constructor application trivial fields by let-binding any
   non-trivial ones. [k] receives the env (with unfoldings for the new
   binders) and the flattened constructor. *)
and anf_con env (e : expr) (k : env -> expr -> expr) : expr =
  match e with
  | Con (dc, phis, args) when not (List.for_all is_trivial args) ->
      let rec go env acc wraps = function
        | [] -> (
            let args' = List.rev acc in
            let body = k env (Con (dc, phis, args')) in
            match wraps body with b -> b)
        | a :: rest ->
            if is_trivial a then go env (a :: acc) wraps rest
            else
              let ty =
                match ty_of a with
                | t -> t
                | exception _ -> Types.bottom ()
              in
              (* Provenance: name the field binder after the
                 constructor it feeds, so the allocation profiler can
                 attribute the field's thunk to it (e.g. [cons.f]). *)
              let x = mk_var (String.lowercase_ascii dc.name ^ ".f") ty in
              let env' =
                if is_whnf a then
                  { env with unf = Ident.Map.add x.v_name a env.unf }
                else env
              in
              go env'
                (Var x :: acc)
                (fun b -> wraps (Let (NonRec (x, a), b)))
                rest
      in
      mark env Telemetry.Anf_con;
      go env [] Fun.id args
  | _ -> k env e

and simpl_nonrec env (x : var) rhs body k =
  let info = usage_of env x in
  if info.count = 0 then begin
    (* drop (dead code): never simplify nor emit the rhs. *)
    mark env Telemetry.Drop;
    simpl env body k
  end
  else
    let rhs' = simpl env rhs Stop in
    if is_trivial rhs' || once_inlinable info rhs' then begin
      (* preInlineUnconditionally: substitute the simplified rhs. *)
      if not (is_trivial rhs') then begin
        mark env Telemetry.Pre_inline;
        record_pre_inline x info ~fired:true
      end;
      simpl { env with subst = Subst.add_term x.v_name rhs' env.subst } body k
    end
    else begin
      record_pre_inline x info ~fired:false;
      bind_emit env x rhs' (fun env' -> simpl env' body k)
    end

(* Emit a let binding for [x] = [rhs'] (already simplified), recording
   an unfolding, and continue with the body. The continuation [k] flows
   into the body — the [float] axiom. *)
and bind_emit env (x : var) (rhs' : expr) (body_k : env -> expr) : expr =
  let x0, s = Subst.clone_var env.subst x in
  anf_con env rhs' (fun env rhs'' ->
      let env' =
        {
          env with
          subst = s;
          unf =
            (if is_whnf rhs'' then Ident.Map.add x0.v_name rhs'' env.unf
             else env.unf);
        }
      in
      let body' = body_k env' in
      if occurs x0.v_name body' then Let (NonRec (x0, rhs''), body')
      else begin
        mark env Telemetry.Drop;
        body'
      end)


(* ------------------------------------------------------------------ *)
(* Join points                                                         *)
(* ------------------------------------------------------------------ *)

(* jfloat: the continuation is made duplicable, then copied into every
   right-hand side and the body. The join binder itself keeps its
   bottom-returning type. *)
and simpl_join env jb body k =
  if not env.cfg.join_points then begin
    (* The baseline IR has no join points; demote defensively. *)
    Telemetry.tick Telemetry.Demote;
    (if Decision.enabled () then
       let defns = match jb with JNonRec d -> [ d ] | JRec ds -> ds in
       List.iter
         (fun d ->
           Decision.record ~pass:dpass Decision.Demote
             ~site:(Ident.site d.j_var.v_name) Decision.Fired)
         defns);
    simpl env (Demote.demote_top (Join (jb, body))) k
  end
  else begin
    (* jfloat: a non-empty continuation is about to be copied into the
       right-hand side(s) (after being made duplicable). *)
    if not (cont_is_stop k) then Telemetry.tick Telemetry.Jfloat;
    let wrap, kdup = mk_dupable env k in
    match jb with
    | JNonRec d ->
        let info = usage_of env d.j_var in
        if info.count = 0 then begin
          mark env Telemetry.Jdrop;
          wrap (simpl env body kdup)
        end
        else
          let d', env_body = simpl_defn env d kdup in
          let body' = simpl env_body body kdup in
          if occurs d'.j_var.v_name body' then
            wrap (Join (JNonRec d', body'))
          else begin
            mark env Telemetry.Jdrop;
            wrap body'
          end
    | JRec ds ->
        let jvs = List.map (fun d -> d.j_var) ds in
        let jvs', s = Subst.clone_vars env.subst jvs in
        let env' = { env with subst = s } in
        let ds' =
          List.map2
            (fun (jv' : var) d ->
              let tvs', s' = Subst.clone_tyvars env'.subst d.j_tyvars in
              let ps', s' = Subst.clone_vars s' d.j_params in
              let denv = { env' with subst = s' } in
              {
                j_var = jv';
                j_tyvars = tvs';
                j_params = ps';
                j_rhs = simpl denv d.j_rhs kdup;
              })
            jvs' ds
        in
        let body' = simpl env' body kdup in
        let live =
          List.exists
            (fun (jv' : var) ->
              occurs jv'.v_name body'
              || List.exists (fun d -> occurs jv'.v_name d.j_rhs) ds')
            jvs'
        in
        if live then wrap (Join (JRec ds', body'))
        else begin
          mark env Telemetry.Jdrop;
          wrap body'
        end
  end

(* Simplify one non-recursive join definition under continuation [kdup];
   returns the new definition and the body environment with the label
   renamed. *)
and simpl_defn env (d : join_defn) kdup =
  let jv', s_body = Subst.clone_var env.subst d.j_var in
  let tvs', s = Subst.clone_tyvars env.subst d.j_tyvars in
  let ps', s = Subst.clone_vars s d.j_params in
  let denv = { env with subst = s } in
  let rhs' = simpl denv d.j_rhs kdup in
  ( { j_var = jv'; j_tyvars = tvs'; j_params = ps'; j_rhs = rhs' },
    { env with subst = s_body } )

(* ------------------------------------------------------------------ *)
(* mk_dupable: prepare a continuation for duplication                   *)
(* ------------------------------------------------------------------ *)

(* Returns [wrap, k'] where [k'] is small enough to copy into several
   branches and [wrap] binds whatever was shared to make that so. For a
   case continuation with large alternatives, the alternatives are
   bound as join points (join mode) or let-bound functions (baseline
   mode — "as GHC does today", which is precisely what destroys the
   optimisation and costs allocation, Sec. 2). *)
and mk_dupable env (k : cont) : (expr -> expr) * cont =
  match k with
  | Stop -> (Fun.id, Stop)
  | _ when cont_size k <= env.cfg.dup_threshold -> (Fun.id, k)
  | CTyApp (t, k') ->
      let wrap, k'' = mk_dupable env k' in
      (wrap, CTyApp (t, k''))
  | CApp (aenv, arg, k') ->
      let wrap, k'' = mk_dupable env k' in
      let arg' = simpl aenv arg Stop in
      if is_trivial arg' then
        (wrap, CApp ({ env with subst = Subst.empty }, arg', k''))
      else
        let ty = match ty_of arg' with t -> t | exception _ -> Types.bottom () in
        let a = mk_var "arg" ty in
        let wrap' e = wrap (Let (NonRec (a, arg'), e)) in
        (wrap', CApp ({ env with subst = Subst.empty }, Var a, k''))
  | CCase (aenv, alts, k') ->
      let wrap, k'' = mk_dupable env k' in
      (* Simplify each alternative under k'' — this is where the outer
         context is absorbed — then share any large result. *)
      let wraps = ref [] in
      let alts' =
        List.map
          (fun { alt_pat; alt_rhs } ->
            match alt_pat with
            | PCon (dc, xs) ->
                let xs', s = Subst.clone_vars aenv.subst xs in
                let rhs' = simpl { aenv with subst = s } alt_rhs k'' in
                share_alt env wraps (PCon (dc, xs')) xs' rhs'
            | (PLit _ | PDefault) as p ->
                let rhs' = simpl aenv alt_rhs k'' in
                share_alt env wraps p [] rhs')
          alts
      in
      let wrap_all e =
        wrap (List.fold_left (fun e w -> w e) e !wraps)
      in
      (wrap_all, CCase ({ env with subst = Subst.empty }, alts', Stop))

(* Share one simplified alternative: small ones are kept inline; large
   ones become a join point (or, in baseline mode, a let-bound
   function) jumped to (called) with the pattern binders. *)
and share_alt env wraps pat (xs : var list) (rhs' : expr) : alt =
  let sz = size rhs' in
  if sz <= env.cfg.dup_threshold then begin
    Decision.record ~pass:dpass Decision.Dup_alt ~site:(alt_site pat)
      Decision.Fired;
    { alt_pat = pat; alt_rhs = rhs' }
  end
  else begin
    Decision.record ~pass:dpass Decision.Dup_alt ~site:(alt_site pat)
      (Decision.Rejected
         (Decision.Dup_threshold_shared
            { size = sz; threshold = env.cfg.dup_threshold }));
    mark env Telemetry.Share_alt;
    let res_ty =
      match ty_of rhs' with t -> t | exception _ -> Types.bottom ()
    in
    if env.cfg.join_points then begin
      (* Bind the alternative as a join point. *)
      let params = List.map refresh_var xs in
      let s =
        List.fold_left2
          (fun s (x : var) (p : var) -> Subst.add_term x.v_name (Var p) s)
          Subst.empty xs params
      in
      let j_rhs = Subst.expr s rhs' in
      let jv = mk_join_var "j" [] params in
      let defn = { j_var = jv; j_tyvars = []; j_params = params; j_rhs } in
      wraps := (fun e -> Join (JNonRec defn, e)) :: !wraps;
      {
        alt_pat = pat;
        alt_rhs = Jump (jv, [], List.map (fun x -> Var x) xs, res_ty);
      }
    end
    else begin
      (* Baseline: an ordinary let-bound function (allocates a closure;
         scrutinising its call is uninformative). *)
      let params = List.map refresh_var xs in
      let s =
        List.fold_left2
          (fun s (x : var) (p : var) -> Subst.add_term x.v_name (Var p) s)
          Subst.empty xs params
      in
      let f_rhs = lams params (Subst.expr s rhs') in
      let f_ty =
        Types.arrows (List.map (fun (p : var) -> p.v_ty) params) res_ty
      in
      let f = mk_var "j" f_ty in
      wraps := (fun e -> Let (NonRec (f, f_rhs), e)) :: !wraps;
      { alt_pat = pat; alt_rhs = apps (Var f) (List.map (fun x -> Var x) xs) }
    end
  end

(* ------------------------------------------------------------------ *)
(* Rebuilding                                                          *)
(* ------------------------------------------------------------------ *)

(* The focus [e] is fully simplified (an answer or a neutral term);
   feed it to the continuation. *)
and rebuild env (e : expr) (k : cont) : expr =
  match k with
  | Stop -> e
  | CApp (aenv, arg, k') -> (
      match e with
      | Lam _ -> simpl { env with subst = Subst.empty } e k
      | _ ->
          let arg' = simpl aenv arg Stop in
          rebuild env (App (e, arg')) k')
  | CTyApp (t, k') -> (
      match e with
      | TyLam _ -> simpl { env with subst = Subst.empty } e k
      | _ -> rebuild env (TyApp (e, t)) k')
  | CCase (aenv, alts, k') -> rebuild_case env e aenv alts k'

and rebuild_case env scrut aenv alts k' =
  match scrut with
  | Con (dc, _, args) -> (
      (* case-of-known-constructor *)
      let pick { alt_pat; _ } =
        match alt_pat with PCon (d, _) -> Datacon.equal d dc | _ -> false
      in
      match
        ( List.find_opt pick alts,
          List.find_opt (fun a -> a.alt_pat = PDefault) alts )
      with
      | Some { alt_pat = PCon (_, xs); alt_rhs }, _ ->
          mark env Telemetry.Case_of_known;
          let rec bind_all env xs args =
            match (xs, args) with
            | [], [] -> simpl env alt_rhs k'
            | x :: xs, arg :: args ->
                bind_arg env x arg (fun env -> bind_all env xs args)
            | _ -> invalid_arg "rebuild_case: constructor arity mismatch"
          in
          bind_all aenv xs args
      | None, Some { alt_rhs; _ } ->
          mark env Telemetry.Case_of_known;
          simpl aenv alt_rhs k'
      | _ ->
          (* No alternative can match: this is dead code, but we have no
             way to express that; rebuild as-is. *)
          rebuild_case_neutral env scrut aenv alts k')
  | Lit l -> (
      let pick { alt_pat; _ } =
        match alt_pat with PLit l' -> Literal.equal l l' | _ -> false
      in
      match
        ( List.find_opt pick alts,
          List.find_opt (fun a -> a.alt_pat = PDefault) alts )
      with
      | Some { alt_rhs; _ }, _ | None, Some { alt_rhs; _ } ->
          mark env Telemetry.Case_of_known;
          simpl aenv alt_rhs k'
      | _ -> rebuild_case_neutral env scrut aenv alts k')
  | _ -> rebuild_case_neutral env scrut aenv alts k'

and rebuild_case_neutral env scrut aenv alts k' =
  (* case-elim: [case x of _ -> rhs] when [x] is known evaluated. *)
  match (alts, scrut) with
  | [ { alt_pat = PDefault; alt_rhs } ], Var v
    when Ident.Map.mem v.v_name env.unf ->
      mark env Telemetry.Case_elim;
      simpl aenv alt_rhs k'
  | _ ->
      if env.cfg.case_of_case && not (cont_is_stop k') then begin
        (* The commuting conversion: push the (dupable) context into
           every branch. *)
        Telemetry.tick Telemetry.Case_of_case;
        let wrap, kdup = mk_dupable env k' in
        let alts' = simpl_alts aenv alts kdup in
        wrap (Case (scrut, alts'))
      end
      else
        let alts' = simpl_alts aenv alts Stop in
        rebuild env (Case (scrut, alts')) k'

and simpl_alts aenv alts k =
  List.map
    (fun { alt_pat; alt_rhs } ->
      match alt_pat with
      | PCon (dc, xs) ->
          let xs', s = Subst.clone_vars aenv.subst xs in
          { alt_pat = PCon (dc, xs'); alt_rhs = simpl { aenv with subst = s } alt_rhs k }
      | (PLit _ | PDefault) as p ->
          { alt_pat = p; alt_rhs = simpl aenv alt_rhs k })
    alts

(* ------------------------------------------------------------------ *)
(* Call-site inlining                                                  *)
(* ------------------------------------------------------------------ *)

and consider_inline env (v : var) (k : cont) : expr =
  match Ident.Map.find_opt v.v_name env.unf with
  | None -> rebuild env (Var v) k
  | Some u ->
      let site = Ident.site v.v_name in
      let splice () =
        mark env Telemetry.Inline;
        Decision.record ~pass:dpass Decision.Inline ~site Decision.Fired;
        simpl { env with subst = Subst.empty } (Subst.freshen u) k
      in
      let reject reason =
        Decision.record ~pass:dpass Decision.Inline ~site
          (Decision.Rejected reason);
        rebuild env (Var v) k
      in
      if is_trivial u then splice ()
      else
        let sz = size u in
        if sz > env.cfg.inline_threshold then
          reject
            (Decision.Inline_too_big
               { size = sz; threshold = env.cfg.inline_threshold })
        else (
          match (u, k) with
          | Con _, CCase _ -> splice ()
          | Lam _, CApp _ -> splice ()
          | TyLam _, CTyApp _ -> splice ()
          | Lit _, _ -> splice ()
          | _ -> reject Decision.Uninformative_context)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** One simplifier pass over a complete term. Returns the new term and
    whether anything changed. *)
let run_pass (cfg : config) (e : expr) : expr * bool =
  let _, binder_usage = Occur.with_binder_info e in
  let changed = ref false in
  let env =
    {
      cfg;
      subst = Subst.empty;
      unf = Ident.Map.empty;
      usage = binder_usage;
      changed;
    }
  in
  let e' = simpl env e Stop in
  (e', !changed)

(** Iterate {!run_pass} (interleaved with the {!Cleanup} of dead and
    once-used join points) until a fixpoint or [max_iters]. *)
let simplify ?(max_iters = 8) (cfg : config) (e : expr) : expr =
  let e = Fault.point "simplify/input" e in
  let rec go i e =
    if i >= max_iters then e
    else
      let e, changed = run_pass cfg e in
      let e, cleaned = Cleanup.cleanup e in
      if changed || cleaned then go (i + 1) e else e
  in
  Fault.point "simplify/result" (go 0 e)
