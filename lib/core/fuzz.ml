(** The differential fuzzing harness — see the interface for the
    oracle. *)

open Syntax

let dc = Datacon.builtins
let default_fuel = 200_000

type verdict =
  | Pass
  | Skip of string
  | Fail of { mode : string; kind : string; detail : string }

let fail mode kind detail = Fail { mode; kind; detail }

(* The three pipeline configurations under test. Baseline and No_cc
   model compilers without first-class join points, so (as in the
   property suite) they compile the erased program. Strict policy and
   per-pass lint: a pass bug must surface as a failure here, not be
   healed by the recovery machinery it is meant to exercise. *)
let configurations =
  [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]

let optimize mode (e : expr) : (expr, string) result =
  let e =
    if mode = Pipeline.Join_points then e else Erase.erase e
  in
  let cfg =
    Pipeline.default_config ~mode ~datacons:dc ~policy:Guard.Strict
      ~lint_every_pass:true ()
  in
  match Pipeline.run cfg e with
  | e' -> Ok e'
  | exception Pipeline.Pass_broke_lint (pass, err) ->
      Error (Fmt.str "pass %s broke lint: %a" pass Lint.pp_error err)
  | exception exn -> Error (Printexc.to_string exn)

let check_program ?(fuel = default_fuel) (e : expr) : verdict =
  if not (Lint.well_typed dc e) then
    fail "seed" "generator-ill-typed" "generated program does not lint"
  else
    let seed_prof = Profile.create ~trace_cap:0 () in
    match Eval.run_outcome ~fuel ~profile:seed_prof e with
    | Eval.Fuel_exhausted -> Skip "seed program exhausts the fuel budget"
    | Eval.Crashed m -> fail "seed" "seed-stuck" m
    | Eval.Finished (t0, _) -> (
        (* Sites (of any kind) that already allocate in the unoptimised
           run. A join body is free to allocate — its result value is
           the program's allocation, not the machinery's — and contify
           legitimately moves a lambda's allocation under a join label.
           The invariant the oracle enforces is that optimisation does
           not *introduce* allocation at a join site whose label was
           allocation-free before. *)
        let seed_allocating =
          List.filter_map
            (fun (s : Profile.site) ->
              if s.s_words > 0 then Some s.site_label else None)
            (Profile.sites seed_prof)
        in
        (* Strategy agreement: call-by-name must reach the same answer
           (more steps, so give it a larger budget; a timeout is only a
           skip). *)
        match Eval.run_outcome ~mode:Eval.By_name ~fuel:(8 * fuel) e with
        | Eval.Crashed m -> fail "seed" "strategy-disagree" ("by-name stuck: " ^ m)
        | Eval.Finished (t1, _) when not (Eval.equal_tree t0 t1) ->
            fail "seed" "strategy-disagree"
              (Option.value ~default:"trees differ" (Eval.tree_mismatch t0 t1))
        | Eval.Fuel_exhausted | Eval.Finished _ -> (
            let rec modes = function
              | [] -> Pass
              | mode :: rest -> (
                  let mname = Pipeline.mode_name mode in
                  match optimize mode e with
                  | Error detail -> fail mname "pass-aborted" detail
                  | Ok e' -> (
                      if not (Lint.well_typed dc e') then
                        fail mname "output-ill-typed"
                          "optimised program does not lint"
                      else
                        let prof = Profile.create ~trace_cap:0 () in
                        match
                          Eval.run_outcome ~fuel:(8 * fuel) ~profile:prof e'
                        with
                        | Eval.Fuel_exhausted ->
                            Skip
                              (Fmt.str
                                 "optimised (%s) program exhausts the fuel \
                                  budget"
                                 mname)
                        | Eval.Crashed m -> fail mname "output-stuck" m
                        | Eval.Finished (t, _) -> (
                            match Eval.tree_mismatch t0 t with
                            | Some where ->
                                fail mname "result-mismatch" where
                            | None -> (
                                match
                                  List.find_opt
                                    (fun (s : Profile.site) ->
                                      s.s_words > 0
                                      && not
                                           (List.mem s.site_label
                                              seed_allocating))
                                    (Profile.join_sites prof)
                                with
                                | Some s ->
                                    fail mname "join-site-allocated"
                                      (Fmt.str "join site %s allocated %d words"
                                         s.site_label s.s_words)
                                | None -> modes rest))))
            in
            modes configurations))

(* ------------------------------------------------------------------ *)
(* Counterexamples                                                     *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_seed : int;
  f_mode : string;
  f_kind : string;
  f_detail : string;
  f_size_orig : int;
  f_program : expr;
}

let pp_failure ppf f =
  Fmt.pf ppf
    "@[<v>seed %d: %s under %s (%s)@,size %d -> %d (minimized)@,%s@]" f.f_seed
    f.f_kind f.f_mode f.f_detail f.f_size_orig (size f.f_program)
    (Sexp.write f.f_program)

let failure_json (f : failure) =
  Telemetry.Json.(
    Obj
      [
        ("seed", Int f.f_seed);
        ("mode", Str f.f_mode);
        ("kind", Str f.f_kind);
        ("detail", Str f.f_detail);
        ("size_orig", Int f.f_size_orig);
        ("size_min", Int (size f.f_program));
        ("program", Str (Sexp.write f.f_program));
      ])

type summary = {
  cases : int;
  passed : int;
  skipped : int;
  failures : failure list;
}

let run ?(size = Gen.default_size) ?(fuel = default_fuel)
    ?(on_case = fun _ _ -> ()) ~seed ~count () : summary =
  let passed = ref 0 and skipped = ref 0 and failures = ref [] in
  for i = 0 to count - 1 do
    let case_seed = seed + i in
    let e = Gen.program_of_seed ~size case_seed in
    let v = check_program ~fuel e in
    on_case case_seed v;
    match v with
    | Pass -> incr passed
    | Skip _ -> incr skipped
    | Fail { mode; kind; detail } ->
        (* Minimize: candidates must still lint (shrinking is
           structural, not type-directed) and still fail the oracle —
           any failure kind counts, so the shrinker may surface an
           even simpler neighbouring bug. *)
        let failing e =
          Lint.well_typed dc e
          &&
          match check_program ~fuel e with Fail _ -> true | _ -> false
        in
        let minimized = Gen.minimize ~failing e in
        failures :=
          {
            f_seed = case_seed;
            f_mode = mode;
            f_kind = kind;
            f_detail = detail;
            f_size_orig = Syntax.size e;
            f_program = minimized;
          }
          :: !failures
  done;
  {
    cases = count;
    passed = !passed;
    skipped = !skipped;
    failures = List.rev !failures;
  }
