(** The differential fuzzing harness — see the interface for the
    oracle. *)

open Syntax

let dc = Datacon.builtins
let default_fuel = 200_000

type verdict =
  | Pass
  | Skip of string
  | Fail of { mode : string; kind : string; detail : string }

let fail mode kind detail = Fail { mode; kind; detail }

(* The three pipeline configurations under test. Baseline and No_cc
   model compilers without first-class join points, so (as in the
   property suite) they compile the erased program. Strict policy and
   per-pass lint: a pass bug must surface as a failure here, not be
   healed by the recovery machinery it is meant to exercise. *)
let configurations =
  [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]

let optimize ?cover mode (e : expr) : (expr, string) result =
  let e =
    if mode = Pipeline.Join_points then e else Erase.erase e
  in
  let cfg =
    Pipeline.default_config ~mode ~datacons:dc ~policy:Guard.Strict
      ~lint_every_pass:true ()
  in
  match Pipeline.run_report cfg e with
  | e', r ->
      (* Coverage is of the compile, whatever the later oracle stages
         conclude: ticks under this mode, ledger outcomes, incident
         causes (none under Strict — faults abort instead). *)
      (match cover with
      | Some c -> Coverage.observe_report c r
      | None -> ());
      Ok e'
  | exception Pipeline.Pass_broke_lint (pass, err) ->
      Error (Fmt.str "pass %s broke lint: %a" pass Lint.pp_error err)
  | exception exn -> Error (Printexc.to_string exn)

(* The analysis-soundness oracle ([--absint]): the discipline verifier
   must be clean on a Lint-clean tree, and the concrete machine result
   must lie in the concretization of the abstract one. Runs on the
   seed and on every optimised output, so the differential fuzzer
   doubles as a fuzzer for the analysis itself. *)
let absint_verdict ~absint mname (e : expr) (t : Eval.tree) : verdict option
    =
  if not absint then None
  else
    Span.with_span ~cat:"fuzz" ("absint " ^ mname) @@ fun () ->
    match List.filter Diagnostic.is_error (Absint.verify e) with
    | d :: _ ->
        Some (fail mname "absint-discipline" (Fmt.str "%a" Diagnostic.pp d))
    | [] ->
        let r = Absint.analyze e in
        if Absint.concretizes r.Absint.r_value t then None
        else
          Some
            (fail mname "absint-unsound"
               (Fmt.str "machine result outside the concretization of %s"
                  (Absint.aval_to_string r.Absint.r_value)))

let check_program ?(fuel = default_fuel) ?cover ?(absint = false) (e : expr)
    : verdict =
  if not (Lint.well_typed dc e) then
    fail "seed" "generator-ill-typed" "generated program does not lint"
  else
    let seed_prof = Profile.create ~trace_cap:0 () in
    match
      Span.with_span ~cat:"fuzz" "seed-eval" (fun () ->
          Eval.run_outcome ~fuel ~profile:seed_prof e)
    with
    | Eval.Fuel_exhausted -> Skip "seed program exhausts the fuel budget"
    | Eval.Crashed m -> fail "seed" "seed-stuck" m
    | Eval.Finished (t0, _) -> (
        match absint_verdict ~absint "seed" e t0 with
        | Some v -> v
        | None -> (
        (* Sites (of any kind) that already allocate in the unoptimised
           run. A join body is free to allocate — its result value is
           the program's allocation, not the machinery's — and contify
           legitimately moves a lambda's allocation under a join label.
           The invariant the oracle enforces is that optimisation does
           not *introduce* allocation at a join site whose label was
           allocation-free before. *)
        let seed_allocating =
          List.filter_map
            (fun (s : Profile.site) ->
              if s.s_words > 0 then Some s.site_label else None)
            (Profile.sites seed_prof)
        in
        (* Strategy agreement: call-by-name must reach the same answer
           (more steps, so give it a larger budget; a timeout is only a
           skip). *)
        match
          Span.with_span ~cat:"fuzz" "by-name-eval" (fun () ->
              Eval.run_outcome ~mode:Eval.By_name ~fuel:(8 * fuel) e)
        with
        | Eval.Crashed m -> fail "seed" "strategy-disagree" ("by-name stuck: " ^ m)
        | Eval.Finished (t1, _) when not (Eval.equal_tree t0 t1) ->
            fail "seed" "strategy-disagree"
              (Option.value ~default:"trees differ" (Eval.tree_mismatch t0 t1))
        | Eval.Fuel_exhausted | Eval.Finished _ -> (
            let rec modes = function
              | [] -> Pass
              | mode :: rest -> (
                  let mname = Pipeline.mode_name mode in
                  match
                    Span.with_span ~cat:"fuzz" ("compile " ^ mname) (fun () ->
                        optimize ?cover mode e)
                  with
                  | Error detail -> fail mname "pass-aborted" detail
                  | Ok e' -> (
                      if not (Lint.well_typed dc e') then
                        fail mname "output-ill-typed"
                          "optimised program does not lint"
                      else
                        let prof = Profile.create ~trace_cap:0 () in
                        match
                          Span.with_span ~cat:"fuzz" ("run " ^ mname)
                            (fun () ->
                              Eval.run_outcome ~fuel:(8 * fuel) ~profile:prof
                                e')
                        with
                        | Eval.Fuel_exhausted ->
                            Skip
                              (Fmt.str
                                 "optimised (%s) program exhausts the fuel \
                                  budget"
                                 mname)
                        | Eval.Crashed m -> fail mname "output-stuck" m
                        | Eval.Finished (t, _) -> (
                            match absint_verdict ~absint mname e' t with
                            | Some v -> v
                            | None -> (
                            match Eval.tree_mismatch t0 t with
                            | Some where ->
                                fail mname "result-mismatch" where
                            | None -> (
                                match
                                  List.find_opt
                                    (fun (s : Profile.site) ->
                                      s.s_words > 0
                                      && not
                                           (List.mem s.site_label
                                              seed_allocating))
                                    (Profile.join_sites prof)
                                with
                                | Some s ->
                                    fail mname "join-site-allocated"
                                      (Fmt.str "join site %s allocated %d words"
                                         s.site_label s.s_words)
                                | None -> modes rest)))))
            in
            modes configurations)))

(* ------------------------------------------------------------------ *)
(* Counterexamples                                                     *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_seed : int;
  f_mode : string;
  f_kind : string;
  f_detail : string;
  f_size_orig : int;
  f_program : expr;
}

let pp_failure ppf f =
  Fmt.pf ppf
    "@[<v>seed %d: %s under %s (%s)@,size %d -> %d (minimized)@,%s@]" f.f_seed
    f.f_kind f.f_mode f.f_detail f.f_size_orig (size f.f_program)
    (Sexp.write f.f_program)

let failure_json (f : failure) =
  Telemetry.Json.(
    Obj
      [
        ("seed", Int f.f_seed);
        ("mode", Str f.f_mode);
        ("kind", Str f.f_kind);
        ("detail", Str f.f_detail);
        ("size_orig", Int f.f_size_orig);
        ("size_min", Int (size f.f_program));
        ("program", Str (Sexp.write f.f_program));
      ])

type summary = {
  cases : int;
  passed : int;
  skipped : int;
  interesting : int;
  failures : failure list;
}

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

type heartbeat = {
  hb_cases : int;
  hb_total : int;
  hb_elapsed_ms : float;
  hb_rate : float;
  hb_passed : int;
  hb_skipped : int;
  hb_incidents : int;
  hb_epoch_ms : float;
  hb_coverage : (int * int) option;
  hb_histograms : (string * Metrics.summary) list;
}

let pp_heartbeat ppf (h : heartbeat) =
  Fmt.pf ppf "heartbeat cases=%d/%d elapsed=%.1fs rate=%.1f/s pass=%d skip=%d \
              incidents=%d"
    h.hb_cases h.hb_total (h.hb_elapsed_ms /. 1000.0) h.hb_rate h.hb_passed
    h.hb_skipped h.hb_incidents;
  (match h.hb_coverage with
  | Some (c, total) ->
      Fmt.pf ppf " cover=%d/%d (%.1f%%)" c total
        (if total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int total)
  | None -> ());
  List.iter
    (fun (name, (s : Metrics.summary)) ->
      if name = "fuzz.case_ms" || name = "eval.ms" then
        Fmt.pf ppf " | %s p50=%.1f p95=%.1f max=%.1f" name s.Metrics.h_p50
          s.Metrics.h_p95 s.Metrics.h_max)
    h.hb_histograms

let heartbeat_json (h : heartbeat) =
  Telemetry.Json.(
    Obj
      ([
         ("cases", Int h.hb_cases);
         ("total", Int h.hb_total);
         ("elapsed_ms", Float h.hb_elapsed_ms);
         ("cases_per_sec", Float h.hb_rate);
         ("passed", Int h.hb_passed);
         ("skipped", Int h.hb_skipped);
         ("incidents", Int h.hb_incidents);
         ("epoch_ms", Float h.hb_epoch_ms);
       ]
      @ (match h.hb_coverage with
        | Some (c, total) ->
            [
              ( "coverage",
                Obj [ ("covered", Int c); ("universe", Int total) ] );
            ]
        | None -> [])
      @ [
          ( "histograms",
            Obj
              (List.map
                 (fun (k, s) -> (k, Metrics.summary_json s))
                 h.hb_histograms) );
        ]))

type recorder = {
  r_spans : Span.collector;
  r_metrics : Metrics.t;
  r_every : int;
  r_on_heartbeat : heartbeat -> unit;
  mutable r_heartbeats : heartbeat list;  (* newest first *)
}

let default_ring_cap = 256
let default_heartbeat_every = 100

let recorder ?(ring_cap = default_ring_cap)
    ?(every = default_heartbeat_every) ?(on_heartbeat = fun _ -> ()) () =
  {
    r_spans = Span.create ~cap:ring_cap ();
    r_metrics = Metrics.create ();
    r_every = max 1 every;
    r_on_heartbeat = on_heartbeat;
    r_heartbeats = [];
  }

let recent_spans r = Span.spans r.r_spans
let dropped_spans r = Span.dropped r.r_spans
let heartbeats r = List.rev r.r_heartbeats
let recorder_metrics r = r.r_metrics

let flight_json ?cover r =
  Telemetry.Json.(
    Obj
      ([
         ("schema", Str "fj-flight/1");
         ( "traceEvents",
           Arr
             (Span.thread_name_event ~pid:1 ~tid:1 "fuzz"
             :: Span.trace_events ~pid:1 ~tid:1 r.r_spans) );
         ("displayTimeUnit", Str "ms");
         ("dropped_spans", Int (Span.dropped r.r_spans));
         ("heartbeats", Arr (List.map heartbeat_json (heartbeats r)));
         ("metrics", Metrics.to_json r.r_metrics);
       ]
      @
      match cover with
      | Some c -> [ ("coverage", Coverage.summary_json c) ]
      | None -> []))

let emit_heartbeat (r : recorder) ~t_start ~cases ~total ~passed ~skipped
    ~incidents ~cover =
  let elapsed_ms = Telemetry.now_ms () -. t_start in
  let hb =
    {
      hb_cases = cases;
      hb_total = total;
      hb_elapsed_ms = elapsed_ms;
      hb_rate =
        (if elapsed_ms <= 0.0 then 0.0
         else float_of_int cases /. (elapsed_ms /. 1000.0));
      hb_passed = passed;
      hb_skipped = skipped;
      hb_incidents = incidents;
      hb_epoch_ms = Telemetry.epoch_ms ();
      hb_coverage =
        Option.map
          (fun c -> (Coverage.covered c, Coverage.universe_size))
          cover;
      hb_histograms = Metrics.histograms r.r_metrics;
    }
  in
  r.r_heartbeats <- hb :: r.r_heartbeats;
  r.r_on_heartbeat hb

(* Retained interesting seeds for guided runs. Entries are kept as
   s-expression text: re-reading through [Sexp.read] bumps the global
   Ident supply past every unique in the program, so the fresh binders
   [Gen.mutate] allocates can never collide with loaded ones. *)
let pool_cap = 32

let run ?(size = Gen.default_size) ?(fuel = default_fuel)
    ?(on_case = fun _ _ -> ()) ?recorder ?cover ?(guided = false)
    ?(absint = false) ?(on_interesting = fun _ _ -> ())
    ?(should_stop = fun () -> false) ~seed ~count () : summary =
  let passed = ref 0 and skipped = ref 0 and failures = ref [] in
  let ran = ref 0 in
  let interesting = ref 0 in
  let pool : string list ref = ref [] in
  (* Mutation choices draw from their own RNG, seeded from [seed]
     alone, so a guided run replays exactly. *)
  let mrng = Random.State.make [| seed; 0x6d75 |] in
  let t_start = Telemetry.now_ms () in
  (* Raised (locally) when [should_stop] interrupts a soak: the loop
     unwinds to the final heartbeat so the flight recorder closes with
     an honest account of the partial run. *)
  let module M = struct exception Stop end in
  let body () =
    (try
      for i = 0 to count - 1 do
      if should_stop () then raise_notrace M.Stop;
      ran := i + 1;
      let case_seed = seed + i in
      let e =
        if guided && !pool <> [] && Random.State.bool mrng then begin
          let s =
            List.nth !pool (Random.State.int mrng (List.length !pool))
          in
          let m = Gen.mutate mrng (Sexp.read dc s) in
          (* A mutant that fails to lint would register as a bogus
             "generator-ill-typed" counterexample; fall back to fresh
             generation instead. *)
          if Lint.well_typed dc m then m
          else Gen.program_of_seed ~size case_seed
        end
        else Gen.program_of_seed ~size case_seed
      in
      let covered_before =
        match cover with Some c -> Coverage.covered c | None -> 0
      in
      (* One span per case into the (ring-bounded) recorder, so a
         wedged soak shows its most recent cases post mortem. *)
      let v, case_ms =
        Span.with_span_timed ~cat:"fuzz" (Fmt.str "case %d" case_seed)
          (fun () ->
            let v = check_program ~fuel ?cover ~absint e in
            Span.annotate "verdict"
              (Telemetry.Json.Str
                 (match v with
                 | Pass -> "pass"
                 | Skip _ -> "skip"
                 | Fail { kind; _ } -> kind));
            v)
      in
      Metrics.observe "fuzz.case_ms" case_ms;
      (match cover with
      | Some c when Coverage.covered c > covered_before ->
          (* This case reached a previously-unseen coverage point:
             retain it as a mutation seed for later guided cases. *)
          incr interesting;
          Metrics.incr "fuzz.interesting";
          pool :=
            Sexp.write e
            :: (if List.length !pool >= pool_cap then
                  List.filteri (fun j _ -> j < pool_cap - 1) !pool
                else !pool);
          on_interesting case_seed e
      | _ -> ());
      on_case case_seed v;
      (match v with
      | Pass ->
          Metrics.incr "fuzz.pass";
          incr passed
      | Skip _ ->
          Metrics.incr "fuzz.skip";
          incr skipped
      | Fail { mode; kind; detail } ->
          Metrics.incr "fuzz.fail";
          (* Minimize: candidates must still lint (shrinking is
             structural, not type-directed) and still fail the oracle —
             any failure kind counts, so the shrinker may surface an
             even simpler neighbouring bug. *)
          let failing e =
            Lint.well_typed dc e
            &&
            match check_program ~fuel ~absint e with
            | Fail _ -> true
            | _ -> false
          in
          let minimized =
            Span.with_span ~cat:"fuzz" (Fmt.str "minimize %d" case_seed)
              (fun () -> Gen.minimize ~failing e)
          in
          failures :=
            {
              f_seed = case_seed;
              f_mode = mode;
              f_kind = kind;
              f_detail = detail;
              f_size_orig = Syntax.size e;
              f_program = minimized;
            }
            :: !failures);
      match recorder with
      | Some r when (i + 1) mod r.r_every = 0 && i + 1 < count ->
          emit_heartbeat r ~t_start ~cases:(i + 1) ~total:count
            ~passed:!passed ~skipped:!skipped
            ~incidents:(List.length !failures) ~cover
      | _ -> ()
      done
    with M.Stop -> ());
    (* Always close with a final heartbeat: even a short smoke run (or
       an interrupted soak) leaves one line saying what happened. *)
    match recorder with
    | Some r when !ran > 0 || count > 0 ->
        emit_heartbeat r ~t_start ~cases:!ran ~total:count ~passed:!passed
          ~skipped:!skipped ~incidents:(List.length !failures) ~cover
    | _ -> ()
  in
  (match recorder with
  | None -> body ()
  | Some r ->
      Span.with_collector r.r_spans (fun () ->
          Metrics.with_registry r.r_metrics body));
  {
    cases = !ran;
    passed = !passed;
    skipped = !skipped;
    interesting = !interesting;
    failures = List.rev !failures;
  }
