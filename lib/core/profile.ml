(** The runtime allocation profiler: per-site cost attribution and a
    bounded machine event trace.

    This is the runtime complement of {!Telemetry}'s compile-time
    ticks, modelled on GHC's cost-centre profiling (Sansom &
    Peyton Jones, POPL 1995): every heap object is labelled with the
    {e allocation site} that built it — the name hint of the binder
    ({!Ident.site}), which substitution, inlining and contification all
    preserve — so the optimised program's allocations map back to
    source bindings. Both machines ({!Eval} and
    {!Fj_machine.Bmachine}) attribute into the same profile shape, and
    the paper's central claim becomes checkable {e per site}: a
    [join]-labelled site accumulates steps and jumps but {b zero
    words}.

    Attribution rules:

    - {b words/objects} go to the binder that built the object (a
      thunk's [let], a closure's [let]/argument position, a
      constructor's binder, ["<pap>"] for partial applications);
    - {b steps} go to the nearest enclosing cost centre: the thunk
      being forced, the join point jumped to, the code entered — or
      ["MAIN"] outside any of these;
    - {b jumps/updates/entries} go to the label jumped to, the thunk
      updated, the site entered.

    The event trace is a bounded ring buffer (oldest events are
    dropped once [trace_cap] is exceeded, and counted in [dropped]);
    it serialises to JSON via {!Telemetry.Json} and parses back, so
    traces survive a round trip through files and tools. *)

(** The site that is charged when execution is outside any labelled
    cost centre. *)
let main_site = "MAIN"

(** What kind of object (or binding) a site builds. A site first seen
    as a [join] keeps that kind: the join claim ("neither allocates")
    is what the profile exists to check. *)
type kind = Thunk | Closure | Con | Pap | Join

let kind_name = function
  | Thunk -> "thunk"
  | Closure -> "closure"
  | Con -> "con"
  | Pap -> "pap"
  | Join -> "join"

type site = {
  site_label : string;
  mutable site_kind : kind;
  mutable s_objects : int;
  mutable s_words : int;
  mutable s_steps : int;
  mutable s_jumps : int;
  mutable s_updates : int;
  mutable s_entries : int;  (** Thunk forces / code entries. *)
}

(** One machine step event, as stored in the ring buffer. *)
type event =
  | EEnter of string  (** A thunk was forced / a code was entered. *)
  | EAlloc of string * int  (** An object of [words] words was built. *)
  | EJump of string  (** A jump/goto to this label. *)
  | EUpdate of string  (** A thunk at this site was updated. *)

let event_equal (a : event) (b : event) = a = b

type t = {
  tbl : (string, site) Hashtbl.t;
  mutable order : string list;  (** First-seen order, newest first. *)
  ring : event array;  (** Bounded trace; unused when [cap = 0]. *)
  cap : int;
  mutable start : int;  (** Index of the oldest retained event. *)
  mutable len : int;
  mutable dropped : int;  (** Events evicted by the ring bound. *)
}

let default_trace_cap = 4096

let create ?(trace_cap = default_trace_cap) () =
  {
    tbl = Hashtbl.create 64;
    order = [];
    ring =
      (if trace_cap <= 0 then [||] else Array.make trace_cap (EEnter main_site));
    cap = max trace_cap 0;
    start = 0;
    len = 0;
    dropped = 0;
  }

let record p ev =
  if p.cap > 0 then
    if p.len < p.cap then begin
      p.ring.((p.start + p.len) mod p.cap) <- ev;
      p.len <- p.len + 1
    end
    else begin
      (* Full: overwrite the oldest. *)
      p.ring.(p.start) <- ev;
      p.start <- (p.start + 1) mod p.cap;
      p.dropped <- p.dropped + 1
    end

let site p label kind =
  match Hashtbl.find_opt p.tbl label with
  | Some s ->
      (* A join site stays a join site; otherwise first kind wins. *)
      if s.site_kind <> Join && kind = Join then s.site_kind <- Join;
      s
  | None ->
      let s =
        {
          site_label = label;
          site_kind = kind;
          s_objects = 0;
          s_words = 0;
          s_steps = 0;
          s_jumps = 0;
          s_updates = 0;
          s_entries = 0;
        }
      in
      Hashtbl.add p.tbl label s;
      p.order <- label :: p.order;
      s

(* ------------------------------------------------------------------ *)
(* Attribution (the machine-facing API)                                *)
(* ------------------------------------------------------------------ *)

let alloc p ~label ~kind ~words =
  let s = site p label kind in
  s.s_objects <- s.s_objects + 1;
  s.s_words <- s.s_words + words;
  record p (EAlloc (label, words))

let step p label =
  let s = site p label Thunk in
  s.s_steps <- s.s_steps + 1

let enter p label =
  let s = site p label Thunk in
  s.s_entries <- s.s_entries + 1;
  record p (EEnter label)

let jump p label =
  let s = site p label Join in
  s.s_jumps <- s.s_jumps + 1;
  record p (EJump label)

let update p label =
  let s = site p label Thunk in
  s.s_updates <- s.s_updates + 1;
  record p (EUpdate label)

(** Register a join binding's label so it appears in the profile (with
    zero words) even if it is never jumped to. *)
let join_bind p label = ignore (site p label Join)

(* ------------------------------------------------------------------ *)
(* Reading the profile                                                 *)
(* ------------------------------------------------------------------ *)

let find p label = Hashtbl.find_opt p.tbl label

let total_words p =
  Hashtbl.fold (fun _ s acc -> acc + s.s_words) p.tbl 0

let total_steps p =
  Hashtbl.fold (fun _ s acc -> acc + s.s_steps) p.tbl 0

(** Every site, heaviest (words, then steps) first; ties broken by
    label so output is deterministic. *)
let sites p =
  let all = Hashtbl.fold (fun _ s acc -> s :: acc) p.tbl [] in
  List.sort
    (fun a b ->
      match compare (b.s_words, b.s_steps) (a.s_words, a.s_steps) with
      | 0 -> String.compare a.site_label b.site_label
      | c -> c)
    all

let join_sites p =
  List.filter (fun s -> s.site_kind = Join) (sites p)

(** Retained events, oldest first. *)
let events p = List.init p.len (fun i -> p.ring.((p.start + i) mod p.cap))

let dropped p = p.dropped

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let event_json = function
  | EEnter l -> Telemetry.Json.(Obj [ ("t", Str "enter"); ("site", Str l) ])
  | EAlloc (l, w) ->
      Telemetry.Json.(
        Obj [ ("t", Str "alloc"); ("site", Str l); ("words", Int w) ])
  | EJump l -> Telemetry.Json.(Obj [ ("t", Str "jump"); ("site", Str l) ])
  | EUpdate l -> Telemetry.Json.(Obj [ ("t", Str "update"); ("site", Str l) ])

let event_of_json (j : Telemetry.Json.t) : (event, string) result =
  let open Telemetry.Json in
  match j with
  | Obj fields -> (
      let str k =
        match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None
      in
      let int k =
        match List.assoc_opt k fields with Some (Int n) -> Some n | _ -> None
      in
      match (str "t", str "site") with
      | Some "enter", Some l -> Ok (EEnter l)
      | Some "alloc", Some l -> (
          match int "words" with
          | Some w -> Ok (EAlloc (l, w))
          | None -> Error "alloc event without integer \"words\"")
      | Some "jump", Some l -> Ok (EJump l)
      | Some "update", Some l -> Ok (EUpdate l)
      | Some t, Some _ -> Error ("unknown event tag " ^ t)
      | _ -> Error "event object needs string \"t\" and \"site\"")
  | _ -> Error "event is not an object"

let events_json p = Telemetry.Json.Arr (List.map event_json (events p))

let events_of_json (j : Telemetry.Json.t) : (event list, string) result =
  match j with
  | Telemetry.Json.Arr items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match event_of_json x with
            | Ok e -> go (e :: acc) rest
            | Error _ as e -> e)
      in
      go [] items
  | _ -> Error "event trace is not an array"

let site_json s =
  Telemetry.Json.(
    Obj
      [
        ("site", Str s.site_label);
        ("kind", Str (kind_name s.site_kind));
        ("objects", Int s.s_objects);
        ("words", Int s.s_words);
        ("steps", Int s.s_steps);
        ("jumps", Int s.s_jumps);
        ("updates", Int s.s_updates);
        ("entries", Int s.s_entries);
      ])

let to_json ?stats p =
  let base =
    [
      ("total_words", Telemetry.Json.Int (total_words p));
      ("sites", Telemetry.Json.Arr (List.map site_json (sites p)));
      ("events", events_json p);
      ("events_dropped", Telemetry.Json.Int p.dropped);
    ]
  in
  Telemetry.Json.Obj
    (match stats with
    | None -> base
    | Some s -> ("machine", Mstats.to_json s) :: base)

(* ------------------------------------------------------------------ *)
(* The cost-centre table                                               *)
(* ------------------------------------------------------------------ *)

let pct total n =
  if total = 0 then 0.0 else float_of_int n /. float_of_int total *. 100.0

let pp_table ppf p =
  let total = total_words p in
  Fmt.pf ppf "%-24s %-8s %10s %6s %10s %8s %8s@," "SITE" "KIND" "words" "%"
    "steps" "jumps" "updates";
  List.iter
    (fun s ->
      Fmt.pf ppf "%-24s %-8s %10d %6.1f %10d %8d %8d@," s.site_label
        (kind_name s.site_kind) s.s_words
        (pct total s.s_words)
        s.s_steps s.s_jumps s.s_updates)
    (sites p);
  Fmt.pf ppf "%-24s %-8s %10d %6.1f@," "TOTAL" "" total 100.0
