(** The differential fuzzing harness behind [fjc fuzz]: generate a
    seeded well-typed program ({!Gen}), compile it under all three
    pipeline configurations, and compare every observable against the
    unoptimised seed program — results (the Fig. 3 evaluator, fuel
    bounded), typing (Lint on every output), evaluation-strategy
    agreement (call-by-name vs call-by-need), and the paper's
    allocation invariant — optimisation must not introduce allocation
    at a join-labelled cost centre whose label was allocation-free in
    the unoptimised run (checked via {!Profile}; a join {e body} is
    free to allocate its result). A failing program is greedily
    minimized ({!Gen.minimize}) and reported as a reproducible
    s-expression plus its generation seed. *)

(** What one fuzz case concluded. *)
type verdict =
  | Pass
  | Skip of string
      (** Oracle not applicable — e.g. the seed program exhausts the
          fuel budget. Never counts as a failure. *)
  | Fail of { mode : string; kind : string; detail : string }
      (** [mode] is the pipeline configuration that misbehaved (or
          ["seed"] for failures of the unoptimised program itself),
          [kind] a stable failure class: ["generator-ill-typed"],
          ["seed-stuck"], ["strategy-disagree"], ["pass-aborted"],
          ["output-ill-typed"], ["output-stuck"], ["result-mismatch"],
          ["join-site-allocated"]. *)

(** Run the full oracle on one (closed, generated) program. [fuel]
    bounds each evaluation (default 200_000 machine steps). *)
val check_program : ?fuel:int -> Syntax.expr -> verdict

(** A minimized counterexample. *)
type failure = {
  f_seed : int;  (** Replay: [Gen.program_of_seed ~size f_seed]. *)
  f_mode : string;
  f_kind : string;
  f_detail : string;  (** Of the {e original} failure. *)
  f_size_orig : int;  (** Size of the program as generated. *)
  f_program : Syntax.expr;  (** Minimized; still fails the oracle. *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [{seed, mode, kind, detail, size_orig, size_min, program}] with
    the program as its {!Sexp} text. *)
val failure_json : failure -> Telemetry.Json.t

type summary = {
  cases : int;
  passed : int;
  skipped : int;
  failures : failure list;  (** Oldest first. *)
}

(** [run ~seed ~count ()] fuzzes [count] cases with seeds [seed],
    [seed+1], … — each case resets the {!Ident} supply
    ({!Gen.program_of_seed}), so any case replays in isolation from
    its printed seed. Failing cases are minimized (shrink candidates
    must lint and still fail the oracle) before being reported.
    [on_case] (if given) is called after each case with the seed and
    its verdict — progress reporting for the CLI. *)
val run :
  ?size:int ->
  ?fuel:int ->
  ?on_case:(int -> verdict -> unit) ->
  seed:int ->
  count:int ->
  unit ->
  summary
