(** The differential fuzzing harness behind [fjc fuzz]: generate a
    seeded well-typed program ({!Gen}), compile it under all three
    pipeline configurations, and compare every observable against the
    unoptimised seed program — results (the Fig. 3 evaluator, fuel
    bounded), typing (Lint on every output), evaluation-strategy
    agreement (call-by-name vs call-by-need), and the paper's
    allocation invariant — optimisation must not introduce allocation
    at a join-labelled cost centre whose label was allocation-free in
    the unoptimised run (checked via {!Profile}; a join {e body} is
    free to allocate its result). A failing program is greedily
    minimized ({!Gen.minimize}) and reported as a reproducible
    s-expression plus its generation seed. *)

(** What one fuzz case concluded. *)
type verdict =
  | Pass
  | Skip of string
      (** Oracle not applicable — e.g. the seed program exhausts the
          fuel budget. Never counts as a failure. *)
  | Fail of { mode : string; kind : string; detail : string }
      (** [mode] is the pipeline configuration that misbehaved (or
          ["seed"] for failures of the unoptimised program itself),
          [kind] a stable failure class: ["generator-ill-typed"],
          ["seed-stuck"], ["strategy-disagree"], ["pass-aborted"],
          ["output-ill-typed"], ["output-stuck"], ["result-mismatch"],
          ["join-site-allocated"] — plus, with the [--absint] oracle
          armed, ["absint-discipline"] (the {!Absint.verify} verifier
          errored on a Lint-clean tree) and ["absint-unsound"] (the
          machine result fell outside the concretization of the
          abstract result). *)

(** Run the full oracle on one (closed, generated) program. [fuel]
    bounds each evaluation (default 200_000 machine steps). [cover]
    (if given) accumulates the optimization coverage of the three
    compiles — every tick, ledger outcome, and incident cause — into
    the map ({!Coverage.observe_report}). [absint] additionally runs
    the analysis-soundness oracle on the seed and on every optimised
    output: {!Absint.verify} must report no errors, and the concrete
    {!Eval} result must lie in the concretization
    ({!Absint.concretizes}) of the {!Absint.analyze} result. *)
val check_program :
  ?fuel:int -> ?cover:Coverage.t -> ?absint:bool -> Syntax.expr -> verdict

(** A minimized counterexample. *)
type failure = {
  f_seed : int;  (** Replay: [Gen.program_of_seed ~size f_seed]. *)
  f_mode : string;
  f_kind : string;
  f_detail : string;  (** Of the {e original} failure. *)
  f_size_orig : int;  (** Size of the program as generated. *)
  f_program : Syntax.expr;  (** Minimized; still fails the oracle. *)
}

val pp_failure : Format.formatter -> failure -> unit

(** [{seed, mode, kind, detail, size_orig, size_min, program}] with
    the program as its {!Sexp} text. *)
val failure_json : failure -> Telemetry.Json.t

type summary = {
  cases : int;  (** Cases actually executed (less than requested when
                    [should_stop] ended the run early). *)
  passed : int;
  skipped : int;
  interesting : int;
      (** Cases that covered a previously-unseen coverage point
          (always 0 without a [cover] map). *)
  failures : failure list;  (** Oldest first. *)
}

(** {1 Flight recorder}

    Long soak runs need to be diagnosable without rerunning: the
    recorder keeps a bounded ring of the most recent spans (cases,
    per-configuration compiles and evaluations, minimizations) and
    emits periodic heartbeat lines — progress, throughput, incident
    count, and a snapshot of the latency histograms. *)

(** One heartbeat: progress and throughput at an instant of the run.
    [hb_incidents] counts the oracle failures found so far. *)
type heartbeat = {
  hb_cases : int;  (** Cases completed. *)
  hb_total : int;  (** Cases planned. *)
  hb_elapsed_ms : float;  (** Monotonic, since the run started. *)
  hb_rate : float;  (** Cases per second. *)
  hb_passed : int;
  hb_skipped : int;
  hb_incidents : int;
  hb_epoch_ms : float;  (** Wall clock, for log correlation. *)
  hb_coverage : (int * int) option;
      (** (points covered so far, universe size) when the run carries
          a coverage map; [None] otherwise. *)
  hb_histograms : (string * Metrics.summary) list;
      (** Registry snapshot: [fuzz.case_ms], [eval.ms], … *)
}

(** One line: [heartbeat cases=200/1000 elapsed=1.3s rate=153.8/s
    pass=197 skip=3 incidents=0 cover=83/112 | fuzz.case_ms p50=4.2
    p95=31.0 max=96.3 | eval.ms …] ([cover=] only with a coverage
    map). *)
val pp_heartbeat : Format.formatter -> heartbeat -> unit

val heartbeat_json : heartbeat -> Telemetry.Json.t

type recorder

val default_ring_cap : int
val default_heartbeat_every : int

(** [recorder ()] — [ring_cap] bounds the retained spans (default
    {!default_ring_cap}), [every] is the heartbeat period in cases
    (default {!default_heartbeat_every}; a final heartbeat is always
    emitted), [on_heartbeat] is called on each emission. *)
val recorder :
  ?ring_cap:int ->
  ?every:int ->
  ?on_heartbeat:(heartbeat -> unit) ->
  unit ->
  recorder

(** The retained (most recent) spans, oldest first. *)
val recent_spans : recorder -> Span.span list

(** Spans evicted by the ring bound. *)
val dropped_spans : recorder -> int

(** Heartbeats emitted so far, oldest first. *)
val heartbeats : recorder -> heartbeat list

val recorder_metrics : recorder -> Metrics.t

(** The post-mortem dump: [{schema: "fj-flight/1", traceEvents: [...],
    dropped_spans, heartbeats, metrics, coverage?}] — [traceEvents] is
    loadable in Perfetto like the pipeline trace; [coverage] (the
    {!Coverage.summary_json} of [cover], when given) records how far
    the run reached into the optimizer. *)
val flight_json : ?cover:Coverage.t -> recorder -> Telemetry.Json.t

(** [run ~seed ~count ()] fuzzes [count] cases with seeds [seed],
    [seed+1], … — each case resets the {!Ident} supply
    ({!Gen.program_of_seed}), so any case replays in isolation from
    its printed seed. Failing cases are minimized (shrink candidates
    must lint and still fail the oracle) before being reported.
    [on_case] (if given) is called after each case with the seed and
    its verdict — progress reporting for the CLI. [recorder] (if
    given) attaches a flight recorder: every case runs inside a span
    feeding its ring, case latencies land in its metrics registry,
    and heartbeats are emitted every [every] cases plus once at the
    end.

    [cover] (if given) accumulates optimization coverage across the
    whole run; a case that covers a previously-unseen point is
    {e interesting} — counted in the summary and reported through
    [on_interesting] with its seed and program. With [guided] (needs
    [cover]) the generator is steered: interesting programs are
    retained as seeds, and about half of the later cases {!Gen.mutate}
    a retained seed instead of generating fresh — coverage-guided
    fuzzing. A mutated case keeps its [seed+i] case seed for
    reporting, but only the minimized program (not the seed) replays
    it; mutation choices are deterministic in [seed], so a whole
    guided run replays exactly. Shrinking never pollutes the map:
    minimization re-checks without [cover].

    [absint] arms the analysis-soundness oracle (see
    {!check_program}) on every case — including during minimization,
    so a counterexample shrinks while preserving {e some} failure.

    [should_stop] is polled before each case; returning [true] ends
    the run gracefully — the case in flight is never abandoned, the
    flight recorder still gets its final heartbeat, and the summary
    (whose [cases] counts cases actually executed) reports the partial
    run honestly. This is how a SIGINT/SIGTERM drains a soak. *)
val run :
  ?size:int ->
  ?fuel:int ->
  ?on_case:(int -> verdict -> unit) ->
  ?recorder:recorder ->
  ?cover:Coverage.t ->
  ?guided:bool ->
  ?absint:bool ->
  ?on_interesting:(int -> Syntax.expr -> unit) ->
  ?should_stop:(unit -> bool) ->
  seed:int ->
  count:int ->
  unit ->
  summary
