(** GC accounting deltas for the compiler's own work — see the
    interface for the design. *)

type t = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
  }

let snapshot () =
  (* On OCaml 5 [Gc.quick_stat]'s word counters only advance at
     collections — a delta across a pass that triggered none reads 0.
     [Gc.minor_words] and [Gc.counters] read the live allocation
     pointers instead, so deltas are word-exact; quick_stat still
     supplies the collection counts (which only change at collections
     by definition). *)
  let minor_words = Gc.minor_words () in
  let _, promoted_words, major_words = Gc.counters () in
  let s = Gc.quick_stat () in
  {
    minor_words;
    promoted_words;
    major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

let delta before after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
  }

let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
  }

let alloc_words g = g.minor_words +. g.major_words -. g.promoted_words

(* Word counters are integral values stored as floats; export them as
   integers so JSON consumers (and the flamegraph weights) never see
   "1.2e+06". *)
let words w = Telemetry.Json.Int (int_of_float (Float.round w))

let fields g =
  [
    ("gc_minor_words", words g.minor_words);
    ("gc_promoted_words", words g.promoted_words);
    ("gc_major_words", words g.major_words);
    ("gc_minor_collections", Telemetry.Json.Int g.minor_collections);
    ("gc_major_collections", Telemetry.Json.Int g.major_collections);
  ]

let to_json g =
  Telemetry.Json.(
    Obj
      [
        ("minor_words", words g.minor_words);
        ("promoted_words", words g.promoted_words);
        ("major_words", words g.major_words);
        ("minor_collections", Int g.minor_collections);
        ("major_collections", Int g.major_collections);
      ])

let pp ppf g =
  Fmt.pf ppf "minor %.0fw promoted %.0fw major %.0fw collections %d/%d"
    g.minor_words g.promoted_words g.major_words g.minor_collections
    g.major_collections
