(* The optimization decision ledger. See decision.mli.

   Same collection discipline as Telemetry: a [current] dynamic
   collector installed for the extent of a pipeline run, and a
   [record] that is a cheap no-op otherwise. The ledger is an
   append-only reversed list plus a length, so [snapshot] is O(1) and
   per-pass deltas are cheap even on large runs. *)

type action =
  | Inline
  | Pre_inline
  | Dup_alt
  | Demote
  | Contify
  | Cse
  | Strict_let
  | Strict_arg
  | Spec_constr
  | Float_in
  | Float_out

let action_name = function
  | Inline -> "inline"
  | Pre_inline -> "pre_inline"
  | Dup_alt -> "dup_alt"
  | Demote -> "demote"
  | Contify -> "contify"
  | Cse -> "cse"
  | Strict_let -> "strict_let"
  | Strict_arg -> "strict_arg"
  | Spec_constr -> "spec_constr"
  | Float_in -> "float_in"
  | Float_out -> "float_out"

type reason =
  | Inline_too_big of { size : int; threshold : int }
  | Uninformative_context
  | Occurs_many of { count : int }
  | Escapes_under_lambda
  | Loop_breaker
  | Dup_threshold_shared of { size : int; threshold : int }
  | Not_all_tail_calls
  | Shape_mismatch
  | Rhs_arity_mismatch
  | Nullary_candidate
  | Scope_type_mismatch
  | Already_whnf
  | No_common_constructor
  | No_unique_use_site
  | Mentions_lambda_binder

let reason_name = function
  | Inline_too_big _ -> "inline_too_big"
  | Uninformative_context -> "uninformative_context"
  | Occurs_many _ -> "occurs_many"
  | Escapes_under_lambda -> "escapes_under_lambda"
  | Loop_breaker -> "loop_breaker"
  | Dup_threshold_shared _ -> "dup_threshold_shared"
  | Not_all_tail_calls -> "not_all_tail_calls"
  | Shape_mismatch -> "shape_mismatch"
  | Rhs_arity_mismatch -> "rhs_arity_mismatch"
  | Nullary_candidate -> "nullary_candidate"
  | Scope_type_mismatch -> "scope_type_mismatch"
  | Already_whnf -> "already_whnf"
  | No_common_constructor -> "no_common_constructor"
  | No_unique_use_site -> "no_unique_use_site"
  | Mentions_lambda_binder -> "mentions_lambda_binder"

let pp_reason ppf = function
  | Inline_too_big { size; threshold } ->
      Format.fprintf ppf "size %d > threshold %d" size threshold
  | Uninformative_context ->
      Format.fprintf ppf "use site would not consume the unfolding"
  | Occurs_many { count } ->
      Format.fprintf ppf "occurs %d times (would duplicate code)" count
  | Escapes_under_lambda ->
      Format.fprintf ppf "an occurrence escapes under a lambda"
  | Loop_breaker -> Format.fprintf ppf "recursive binder (loop breaker)"
  | Dup_threshold_shared { size; threshold } ->
      Format.fprintf ppf "alternative size %d > dup threshold %d, shared" size
        threshold
  | Not_all_tail_calls ->
      Format.fprintf ppf "not every occurrence is a saturated tail call"
  | Shape_mismatch ->
      Format.fprintf ppf "tail calls disagree on argument shape"
  | Rhs_arity_mismatch ->
      Format.fprintf ppf "rhs does not bind the called argument prefix"
  | Nullary_candidate ->
      Format.fprintf ppf
        "nullary with several uses (a join point would lose sharing)"
  | Scope_type_mismatch ->
      Format.fprintf ppf "body type differs from the scope's type"
  | Already_whnf -> Format.fprintf ppf "demanded rhs is already a value"
  | No_common_constructor ->
      Format.fprintf ppf "no argument is the same constructor at every jump"
  | No_unique_use_site ->
      Format.fprintf ppf "no unique branch to sink the binding into"
  | Mentions_lambda_binder ->
      Format.fprintf ppf "rhs mentions the enclosing lambda's binder"

type verdict = Fired | Rejected of reason

let verdict_name = function Fired -> "fired" | Rejected _ -> "rejected"

type event = {
  d_pass : string;
  d_action : action;
  d_site : string;
  d_verdict : verdict;
}

let pp_event ppf e =
  match e.d_verdict with
  | Fired ->
      Format.fprintf ppf "%s of `%s` fired" (action_name e.d_action) e.d_site
  | Rejected r ->
      Format.fprintf ppf "%s of `%s` rejected: %a" (action_name e.d_action)
        e.d_site pp_reason r

type t = { mutable events_rev : event list; mutable n : int }

let create () = { events_rev = []; n = 0 }

(* The innermost installed ledger, if any. Domain-local, like every
   dynamically-scoped collector, so parallel workers never race. *)
let current : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_ledger l f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some l);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

let enabled () = Option.is_some (Domain.DLS.get current)

let record ~pass action ~site verdict =
  match Domain.DLS.get current with
  | None -> ()
  | Some l ->
      l.events_rev <-
        { d_pass = pass; d_action = action; d_site = site; d_verdict = verdict }
        :: l.events_rev;
      l.n <- l.n + 1

let events l = List.rev l.events_rev
let length l = l.n

type snapshot = int

let snapshot l = l.n

let events_since s l =
  (* The newest [l.n - s] events, oldest first. *)
  let rec take acc k = function
    | e :: rest when k > 0 -> take (e :: acc) (k - 1) rest
    | _ -> acc
  in
  take [] (l.n - s) l.events_rev

let fired es =
  List.length (List.filter (fun e -> e.d_verdict = Fired) es)

let rejected es = List.length es - fired es

let bump key tbl =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reason_counts es =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.d_verdict with
      | Fired -> ()
      | Rejected r -> bump (reason_name r) tbl)
    es;
  sorted_counts tbl

let summary_key e =
  match e.d_verdict with
  | Fired -> action_name e.d_action ^ ":fired"
  | Rejected r -> action_name e.d_action ^ ":rejected:" ^ reason_name r

let summary es =
  let tbl = Hashtbl.create 16 in
  List.iter (fun e -> bump (summary_key e) tbl) es;
  sorted_counts tbl

(* JSON *)

let reason_payload = function
  | Inline_too_big { size; threshold } | Dup_threshold_shared { size; threshold }
    ->
      [
        ("size", Telemetry.Json.Int size);
        ("threshold", Telemetry.Json.Int threshold);
      ]
  | Occurs_many { count } -> [ ("count", Telemetry.Json.Int count) ]
  | _ -> []

let event_json e =
  let open Telemetry.Json in
  let base =
    [
      ("pass", Str e.d_pass);
      ("action", Str (action_name e.d_action));
      ("site", Str e.d_site);
      ("verdict", Str (verdict_name e.d_verdict));
    ]
  in
  match e.d_verdict with
  | Fired -> Obj base
  | Rejected r ->
      Obj (base @ (("reason", Str (reason_name r)) :: reason_payload r))

let summary_json es =
  let open Telemetry.Json in
  Obj
    [
      ("fired", Int (fired es));
      ("rejected", Int (rejected es));
      ("counts", Obj (List.map (fun (k, n) -> (k, Int n)) (summary es)));
    ]

(* ------------------------------------------------------------------ *)
(* Parsing (the exact inverse of event_json) — what lets a cached     *)
(* pass replay its ledger entries so warm compiles keep byte-         *)
(* identical decision ledgers.                                        *)
(* ------------------------------------------------------------------ *)

let all_actions =
  [
    Inline; Pre_inline; Dup_alt; Demote; Contify; Cse; Strict_let; Strict_arg;
    Spec_constr; Float_in; Float_out;
  ]

let action_of_name name =
  List.find_opt (fun a -> String.equal (action_name a) name) all_actions

let reason_of_json fields =
  let int k =
    match List.assoc_opt k fields with
    | Some (Telemetry.Json.Int n) -> Some n
    | _ -> None
  in
  match List.assoc_opt "reason" fields with
  | Some (Telemetry.Json.Str name) -> (
      match name with
      | "inline_too_big" -> (
          match (int "size", int "threshold") with
          | Some size, Some threshold -> Some (Inline_too_big { size; threshold })
          | _ -> None)
      | "uninformative_context" -> Some Uninformative_context
      | "occurs_many" -> (
          match int "count" with
          | Some count -> Some (Occurs_many { count })
          | None -> None)
      | "escapes_under_lambda" -> Some Escapes_under_lambda
      | "loop_breaker" -> Some Loop_breaker
      | "dup_threshold_shared" -> (
          match (int "size", int "threshold") with
          | Some size, Some threshold ->
              Some (Dup_threshold_shared { size; threshold })
          | _ -> None)
      | "not_all_tail_calls" -> Some Not_all_tail_calls
      | "shape_mismatch" -> Some Shape_mismatch
      | "rhs_arity_mismatch" -> Some Rhs_arity_mismatch
      | "nullary_candidate" -> Some Nullary_candidate
      | "scope_type_mismatch" -> Some Scope_type_mismatch
      | "already_whnf" -> Some Already_whnf
      | "no_common_constructor" -> Some No_common_constructor
      | "no_unique_use_site" -> Some No_unique_use_site
      | "mentions_lambda_binder" -> Some Mentions_lambda_binder
      | _ -> None)
  | _ -> None

let event_of_json = function
  | Telemetry.Json.Obj fields -> (
      let str k =
        match List.assoc_opt k fields with
        | Some (Telemetry.Json.Str s) -> Some s
        | _ -> None
      in
      match (str "pass", str "action", str "site", str "verdict") with
      | Some d_pass, Some action, Some d_site, Some verdict -> (
          match (action_of_name action, verdict) with
          | Some d_action, "fired" ->
              Some { d_pass; d_action; d_site; d_verdict = Fired }
          | Some d_action, "rejected" ->
              Option.map
                (fun r -> { d_pass; d_action; d_site; d_verdict = Rejected r })
                (reason_of_json fields)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Append a pre-built event verbatim (the cache-replay path). *)
let record_event e =
  match Domain.DLS.get current with
  | None -> ()
  | Some l ->
      l.events_rev <- e :: l.events_rev;
      l.n <- l.n + 1
