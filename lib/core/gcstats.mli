(** OCaml GC accounting for the compiler's own passes.

    The observability layers attribute the {e compiled program}'s
    allocation word by word ({!Profile}, {!Mstats}); this module does
    the same for the {e compiler}: a delta of GC-counter readings
    around a dynamic extent says how many words the extent allocated
    (minor and major), how many survived a minor collection
    (promoted), and how many collections it triggered. Word counts
    are read from the live allocation pointers ([Gc.minor_words] /
    [Gc.counters] — on OCaml 5, [Gc.quick_stat]'s copies only advance
    at collections), collection counts from [Gc.quick_stat]; nothing
    walks the heap, so a snapshot per pass (or per {!Span}) costs
    nanoseconds.

    Readings and deltas share one record shape: a {!snapshot} is the
    counters since process start, {!delta} subtracts two of them, and
    deltas {!add} component-wise (a parent span's delta is the sum of
    its children's plus its own self-allocation — the invariant the
    flamegraph word-weighting relies on). *)

type t = {
  minor_words : float;
      (** Words allocated in the minor heap. [Gc] reports these as
          floats because the lifetime counter overflows 32-bit ints. *)
  promoted_words : float;  (** Minor-heap words that survived into the major heap. *)
  major_words : float;  (** Words allocated directly in the major heap. *)
  minor_collections : int;
  major_collections : int;
}

(** All-zero delta — the identity of {!add}. *)
val zero : t

(** Current [Gc.quick_stat] readings (counters since process start). *)
val snapshot : unit -> t

(** [delta before after] — counters accumulated between the two
    snapshots (component-wise [after - before]). *)
val delta : t -> t -> t

val add : t -> t -> t

(** Total words allocated: [minor_words + major_words -
    promoted_words] (promoted words would otherwise be counted in both
    heaps). This is the flamegraph word weight. *)
val alloc_words : t -> float

(** [{minor_words, promoted_words, major_words, minor_collections,
    major_collections}], word counts rounded to integers (they are
    integral; [Gc] only stores them as floats). *)
val to_json : t -> Telemetry.Json.t

(** The same fields as a [gc_]-prefixed assoc, ready to splice into
    span annotations or Perfetto [args]. *)
val fields : t -> (string * Telemetry.Json.t) list

(** One-line rendering, e.g. [minor 12480w promoted 96w major 0w
    collections 1/0]. *)
val pp : Format.formatter -> t -> unit
