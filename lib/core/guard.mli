(** The fault-tolerant pass harness: every Core-to-Core pass is
    {e optional}.

    The paper uses Core Lint "forensically" (Sec. 7) to identify a
    pass that destroys the Fig. 2 typing rules; this module turns that
    forensic check into a {e gate}. Under the [Recover] policy a pass
    that raises, produces an ill-typed tree, exceeds its rewrite-fuel
    budget, or explodes the term size is {e rolled back}: compilation
    continues from the pre-pass tree and an {!incident} records what
    happened and which tree we recovered to. Under [Strict] the pass
    runs bare and any failure aborts compilation, exactly as before —
    the posture of a compiler developer hunting the bug rather than a
    production build that must ship. *)

(** [Strict]: failures propagate (today's abort behaviour).
    [Recover]: failures roll back to the pre-pass tree. *)
type policy = Strict | Recover

val policy_name : policy -> string

(** Per-pass budgets enforced under [Recover].

    - [pass_fuel]: how many {!Telemetry} tick firings one pass may
      record before it is considered runaway and cut off ([None] =
      unlimited). Every rewrite the optimizer performs ticks, so this
      bounds work even when each individual rewrite is legitimate.
    - Size ceiling: after the pass, the term may not exceed
      [max_growth_factor * size_before + max_growth_slack] nodes. *)
type limits = {
  pass_fuel : int option;
  max_growth_factor : int;
  max_growth_slack : int;
}

(** [{pass_fuel = Some 2_000_000; max_growth_factor = 12;
    max_growth_slack = 2_000}] — far above anything a healthy pass
    does on the programs we compile, so the gate only trips on genuine
    runaways. *)
val default_limits : limits

(** Why a pass was rolled back. *)
type cause =
  | Exn of string  (** The pass raised; the payload is the message. *)
  | Lint_failed of string  (** The output broke the Fig. 2 rules. *)
  | Fuel_exhausted of { budget : int }
      (** The pass recorded more than [budget] tick firings. *)
  | Size_exploded of { size_before : int; size_after : int; limit : int }

(** Stable external name: ["exception" | "lint" | "fuel" | "size"]. *)
val cause_name : cause -> string

val pp_cause : Format.formatter -> cause -> unit

(** One recovery event: which pass failed, why, and the provenance of
    the tree compilation resumed from (the label of the last pass whose
    output survived — the rolled-back-to tree). *)
type incident = {
  i_pass : string;
  i_cause : cause;
  i_restored : string;
}

val pp_incident : Format.formatter -> incident -> unit

(** [{pass, cause, detail, restored}] plus the cause's payload fields
    ([budget] for fuel; [size_before]/[size_after]/[limit] for size). *)
val incident_json : incident -> Telemetry.Json.t

(** Parse {!incident_json} back (used by round-trip tests and external
    trace consumers); [None] when the shape is wrong. *)
val incident_of_json : Telemetry.Json.t -> incident option

(** [spend n] burns [n] units of the innermost installed pass-fuel
    budget, raising the internal cutoff exception when it runs out; a
    no-op when no budget is installed (so passes and fault points may
    call it unconditionally). *)
val spend : int -> unit

(** [protect ~limits ~datacons ~pass ~restored f e] runs [f e] under
    the [Recover] policy: exceptions captured, tick fuel metered,
    result linted and size-checked. On success returns
    [Ok (e', lint_ms)]; on any failure returns [Error incident] with
    the incident's [i_restored] set to [restored] — the caller keeps
    [e]. Never raises (save for truly asynchronous exceptions like
    [Stack_overflow] escaping the heuristics, or [Out_of_memory]). *)
val protect :
  limits:limits ->
  datacons:Datacon.env ->
  pass:string ->
  restored:string ->
  (Syntax.expr -> Syntax.expr) ->
  Syntax.expr ->
  (Syntax.expr * float, incident) result
