(** Abstract syntax of System F_J terms (Fig. 1 of the paper): System F
    with datatypes, (recursive and strict) lets, case, and the paper's
    two new constructs — join-point bindings and jumps. Join binders
    are ordinary variables whose type is [forall a. sigmas -> forall
    r. r], as in the GHC implementation (Sec. 7). *)

(** A term-variable binder: identifier plus type. *)
type var = { v_name : Ident.t; v_ty : Types.t }

type expr =
  | Var of var  (** Variable occurrence. *)
  | Lit of Literal.t  (** Unboxed literal. *)
  | Con of Datacon.t * Types.t list * expr list
      (** Saturated constructor application [K phis es]. *)
  | Prim of Primop.t * expr list  (** Saturated primitive operation. *)
  | App of expr * expr
  | TyApp of expr * Types.t
  | Lam of var * expr
  | TyLam of Ident.t * expr
  | Let of bind * expr
  | Case of expr * alt list
  | Join of jbind * expr  (** [join jb in u]. *)
  | Jump of var * Types.t list * expr list * Types.t
      (** [jump j phis es tau] — [tau] is the claimed result type
          (arbitrary: a jump never returns to its context). *)

and bind =
  | NonRec of var * expr
  | Strict of var * expr
      (** Demand-certified strict binding ([let!]): the rhs is
          evaluated to WHNF before the body (see {!Demand}). *)
  | Rec of (var * expr) list

(** One join definition [j tyvars params = rhs]; [j_var]'s type is
    always {!Types.join_point_ty} of the parameters. *)
and join_defn = {
  j_var : var;
  j_tyvars : Ident.t list;
  j_params : var list;
  j_rhs : expr;
}

and jbind = JNonRec of join_defn | JRec of join_defn list

and alt = { alt_pat : pat; alt_rhs : expr }

and pat =
  | PCon of Datacon.t * var list
  | PLit of Literal.t
  | PDefault

(** {1 Smart constructors} *)

val mk_var : string -> Types.t -> var
val var_occ : var -> expr

(** New unique, same name hint and type. *)
val refresh_var : var -> var

val var_equal : var -> var -> bool

(** Curried application [f e1 ... en]. *)
val apps : expr -> expr list -> expr

val ty_apps : expr -> Types.t list -> expr
val lams : var list -> expr -> expr
val ty_lams : Ident.t list -> expr -> expr

(** Decompose an application spine into head and arguments in order. *)
val collect_args :
  expr -> expr * [ `Ty of Types.t | `Val of expr ] list

(** Strip leading value/type lambdas, in order. *)
val collect_binders :
  expr -> [ `Ty of Ident.t | `Val of var ] list * expr

val join_defns : jbind -> join_defn list
val bind_pairs : bind -> (var * expr) list
val binders_of_bind : bind -> var list
val binders_of_jbind : jbind -> var list
val pat_binders : pat -> var list

(** A fresh ⊥-typed join binder for the given parameters. *)
val mk_join_var : string -> Ident.t list -> var list -> var

(** {1 Predicates} *)

(** Answers [A] of Fig. 1. *)
val is_answer : expr -> bool

(** Weak head normal forms (the [inline] axiom's values). *)
val is_whnf : expr -> bool

(** Expressions free to duplicate (variables, literals, nullary
    constructors, type applications thereof). *)
val is_trivial : expr -> bool

(** {1 Measures and variables} *)

(** Syntax-node count (inlining heuristics). *)
val size : expr -> int

(** Number of join-point definitions in the term (telemetry). *)
val count_joins : expr -> int

(** Tree-shape statistics at a pass boundary: how big the term is, how
    deep it nests, and roughly what it costs to {e hold} in the OCaml
    heap — the denominator behind "which pass allocates" (a pass whose
    GC delta dwarfs the tree it returned is churning, not building). *)
type measure = {
  m_nodes : int;
      (** Every AST constructor, including the type-level ones that
          {!size} ignores (TyApp/TyLam) — the true node count. *)
  m_depth : int;  (** Maximum constructor-nesting depth; >= 1. *)
  m_heap_words : int;
      (** Estimated OCaml heap words the tree occupies: one header
          word plus one word per field for each block, 3 words per
          binder record and list cons cell. An estimate (types are
          counted shallowly), but a {e consistent} one: deltas across
          a pass are meaningful. *)
}

(** One traversal computing all three components. *)
val measure : expr -> measure

(** Free term variables, including free labels. *)
val free_vars : expr -> Ident.Set.t

(** Free type variables. *)
val free_ty_vars : expr -> Ident.Set.t

val occurs : Ident.t -> expr -> bool

exception Ill_typed of string

(** The type of a {e well-typed} expression (cf. GHC's [exprType]);
    raises {!Ill_typed} on broken terms — use {!Lint} to check. *)
val ty_of : expr -> Types.t
