(** Compiler telemetry — see the interface for the design. *)

type tick =
  | Beta
  | Beta_tau
  | Inline
  | Pre_inline
  | Drop
  | Jinline
  | Jdrop
  | Case_of_known
  | Case_elim
  | Casefloat
  | Case_of_case
  | Jfloat
  | Abort
  | Commute
  | Constant_fold
  | Share_alt
  | Anf_con
  | Demote
  | Contified
  | Contified_group
  | Cse_shared
  | Strict_let
  | Strict_arg
  | Spec_constr
  | Float_in_moved
  | Float_out_moved
  | Rule_fired

let tick_name = function
  | Beta -> "beta"
  | Beta_tau -> "beta_tau"
  | Inline -> "inline"
  | Pre_inline -> "pre_inline"
  | Drop -> "drop"
  | Jinline -> "jinline"
  | Jdrop -> "jdrop"
  | Case_of_known -> "case_of_known"
  | Case_elim -> "case_elim"
  | Casefloat -> "casefloat"
  | Case_of_case -> "case_of_case"
  | Jfloat -> "jfloat"
  | Abort -> "abort"
  | Commute -> "commute"
  | Constant_fold -> "constant_fold"
  | Share_alt -> "share_alt"
  | Anf_con -> "anf_con"
  | Demote -> "demote"
  | Contified -> "contify"
  | Contified_group -> "contify_group"
  | Cse_shared -> "cse"
  | Strict_let -> "demand_strict_let"
  | Strict_arg -> "demand_strict_arg"
  | Spec_constr -> "spec_constr"
  | Float_in_moved -> "float_in"
  | Float_out_moved -> "float_out"
  | Rule_fired -> "rule_fired"

let index = function
  | Beta -> 0
  | Beta_tau -> 1
  | Inline -> 2
  | Pre_inline -> 3
  | Drop -> 4
  | Jinline -> 5
  | Jdrop -> 6
  | Case_of_known -> 7
  | Case_elim -> 8
  | Casefloat -> 9
  | Case_of_case -> 10
  | Jfloat -> 11
  | Abort -> 12
  | Commute -> 13
  | Constant_fold -> 14
  | Share_alt -> 15
  | Anf_con -> 16
  | Demote -> 17
  | Contified -> 18
  | Contified_group -> 19
  | Cse_shared -> 20
  | Strict_let -> 21
  | Strict_arg -> 22
  | Spec_constr -> 23
  | Float_in_moved -> 24
  | Float_out_moved -> 25
  | Rule_fired -> 26

let all_ticks =
  [
    Beta; Beta_tau; Inline; Pre_inline; Drop; Jinline; Jdrop;
    Case_of_known; Case_elim; Casefloat; Case_of_case; Jfloat; Abort;
    Commute; Constant_fold; Share_alt; Anf_con; Demote; Contified;
    Contified_group; Cse_shared; Strict_let; Strict_arg; Spec_constr;
    Float_in_moved; Float_out_moved; Rule_fired;
  ]

let n_ticks = List.length all_ticks

(* The inverse of [tick_name], as a closed assoc over [all_ticks] so
   the two can never drift apart (a new tick added to [all_ticks]
   is automatically loadable by name). *)
let name_table = List.map (fun t -> (tick_name t, t)) all_ticks
let tick_of_name name = List.assoc_opt name name_table

type counters = int array

let create () : counters = Array.make n_ticks 0

(* The innermost installed collector. Installation nests (the previous
   collector is saved and restored), so a pass that runs a sub-pipeline
   — e.g. a test driving two reports — cannot cross-contaminate.
   Domain-local: parallel compile-service workers each install their
   own collector without racing. *)
let current : counters option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_counters c f =
  let saved = Domain.DLS.get current in
  Domain.DLS.set current (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current saved) f

(* An optional per-tick observer, orthogonal to the collector: {!Guard}
   installs one to meter a pass's rewrite budget, so a pass that loops
   rewriting forever is cut off even though each individual rewrite is
   legitimate. The observer runs whether or not a collector is
   installed, and may raise (that is the point). Observers stack
   rather than shadow: the compile service's deadline watchdog wraps a
   whole request, and must keep firing inside a pass that has also
   installed its fuel meter. *)
let observer : (int -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_observer h f =
  let saved = Domain.DLS.get observer in
  let chained =
    match saved with None -> h | Some g -> fun n -> h n; g n
  in
  Domain.DLS.set observer (Some chained);
  Fun.protect ~finally:(fun () -> Domain.DLS.set observer saved) f

let tick ?(n = 1) t =
  (match Domain.DLS.get observer with None -> () | Some h -> h n);
  match Domain.DLS.get current with
  | None -> ()
  | Some c ->
      let i = index t in
      c.(i) <- c.(i) + n

let get (c : counters) t = c.(index t)
let total (c : counters) = Array.fold_left ( + ) 0 c

let nonzero (c : counters) =
  List.filter_map
    (fun t ->
      let n = get c t in
      if n > 0 then Some (tick_name t, n) else None)
    all_ticks

type snapshot = int array

let snapshot (c : counters) : snapshot = Array.copy c

let delta_since (s : snapshot) (c : counters) =
  List.filter_map
    (fun t ->
      let i = index t in
      let d = c.(i) - s.(i) in
      if d > 0 then Some (tick_name t, d) else None)
    all_ticks

let pp_table ppf (c : counters) =
  Fmt.pf ppf "@[<v>Total ticks: %d" (total c);
  List.iter (fun (name, n) -> Fmt.pf ppf "@,%8d %s" n name) (nonzero c);
  Fmt.pf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* Durations are measured on the monotonic clock (CLOCK_MONOTONIC via
   the bechamel stub, already a dependency of the package), so a
   backwards NTP step can never make a pass or span read negative.
   The origin is process start-up, keeping the values small enough
   that the %.6g float printing below loses nothing. *)
let origin_ns = Monotonic_clock.now ()

let now_ms () =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) origin_ns) /. 1e6

(* The wall clock, for the few places that report an absolute
   timestamp (trace capture time, heartbeats) — never subtracted. *)
let epoch_ms () = Unix.gettimeofday () *. 1000.0

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let to_string (j : t) : string =
    let b = Buffer.create 256 in
    let rec go = function
      | Null -> Buffer.add_string b "null"
      | Bool true -> Buffer.add_string b "true"
      | Bool false -> Buffer.add_string b "false"
      | Int n -> Buffer.add_string b (string_of_int n)
      | Float f ->
          if Float.is_finite f then
            (* %.17g round-trips but is noisy; ms precisions don't need
               it. Ensure the result still reads back as a number. *)
            Buffer.add_string b (Printf.sprintf "%.6g" f)
          else Buffer.add_string b "null"
      | Str s -> escape_string b s
      | Arr xs ->
          Buffer.add_char b '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char b ',';
              go x)
            xs;
          Buffer.add_char b ']'
      | Obj fields ->
          Buffer.add_char b '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              escape_string b k;
              Buffer.add_char b ':';
              go v)
            fields;
          Buffer.add_char b '}'
    in
    go j;
    Buffer.contents b

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> Buffer.add_char b '"'; advance (); go ()
            | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
            | Some '/' -> Buffer.add_char b '/'; advance (); go ()
            | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
            | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
            | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
            | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "bad \\u escape";
                let hex = String.sub s !pos 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                | None -> fail "bad \\u escape"
                | Some code ->
                    (* Keep it simple: BMP code points below 0x80 as a
                       char, the rest replaced; traces are ASCII. *)
                    if code < 0x80 then Buffer.add_char b (Char.chr code)
                    else Buffer.add_char b '?');
                pos := !pos + 4;
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (items [])
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let is_well_formed s = Result.is_ok (parse s)
end
