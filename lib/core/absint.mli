(** Abstract interpretation over Core: a monotone-framework fixpoint
    engine with three client analyses.

    The paper's argument rests on static facts about join points —
    every jump is an exact-arity tail call, Δ is reset at non-tail
    positions, dead bindings are decided by occurrence information
    (Sec. 4, Fig. 2) — which the repository could previously only
    {e typecheck} ({!Lint}) or observe dynamically (ticks, ledger,
    fuzzing). This module proves them statically:

    - {b Constant / constructor-shape propagation} on a flat lattice
      ({!aval}): literals, constructor shapes with abstract fields
      (depth-bounded), functions, ⊤. Join points are the analysis'
      control-flow graph — a jump transfers its argument abstractions
      into the join's parameter cells, and the engine iterates the
      whole program to a fixpoint over those cells (recursive join
      groups and recursive lets are the loops).
    - {b Liveness}: a binding is dead iff it is unreachable in the
      binder-dependency graph rooted at the program spine — strictly
      stronger than {!Occur.is_dead} (zero occurrences implies
      unreachable, and additionally a binding used {e only by dead
      bindings} is dead).
    - {b Join-point discipline}: a structural verifier for the Δ
      invariants — exact-arity tail jumps only, no join capture under
      lambdas, correct scoping across recursive join groups — that
      reports {e all} violations as structured {!Diagnostic}s with
      messages sharper than Lint's (a jump whose frame left the
      evaluation context names the construct that reset Δ), plus
      checks Lint has no notion of (unreached join points).

    {!check} drives all three for [fjc check], including the
    {b missed-optimization} report: sites the analysis proves
    constant-foldable or dead in the {e output} of the full
    Join_points pipeline, cross-referenced against the decision
    ledger so each finding names the pass that declined the rewrite
    and its recorded reason.

    Soundness is fuzzed ([fjc fuzz --absint]): for every generated
    program, the concrete {!Eval} result must lie in the
    concretization of {!analyze}'s abstract result ({!concretizes}),
    before and after optimisation under every configuration.

    Instrumentation follows the house discipline: the engine runs
    under {!Span} spans (cat ["analysis"], GC deltas attached) and
    publishes fixpoint-iteration counters into the ambient {!Metrics}
    registry; both are no-ops when no collector is installed. *)

(** The abstract value lattice (flat constants, depth-bounded
    constructor shapes):

    {v
            Top
        /    |    \
    Const  Shape   Fun        (Shape fields are again avals)
        \    |    /
            Bot
    v}

    [Bot] concretizes to nothing — the expression provably never
    produces a value at that point (a jump, a stuck primop, an
    unreachable branch). *)
type aval =
  | Bot
  | Const of Literal.t
  | Shape of string * aval list  (** Constructor name, field values. *)
  | Fun  (** Some (type or value) lambda. *)
  | Top

(** Least upper bound. *)
val join_aval : aval -> aval -> aval

val equal_aval : aval -> aval -> bool
val pp_aval : Format.formatter -> aval -> unit
val aval_to_string : aval -> string

(** Does the deep-forced machine result lie in the concretization of
    the abstract value? ([Top] accepts everything; [Bot] nothing —
    an analysis claiming unreachability refuted by a finished run is
    unsound.) *)
val concretizes : aval -> Eval.tree -> bool

(** What one {!analyze} run concluded. *)
type result = {
  r_value : aval;  (** Abstract result of the whole program. *)
  r_binders : aval Ident.Map.t;
      (** Final abstract value per binder (lets, join parameters,
          case-pattern binders; lambda parameters are ⊤). *)
  r_iterations : int;
      (** Global fixpoint rounds until the join-parameter and
          recursive-binder cells stabilised. *)
}

(** Run the constant/shape engine to fixpoint. [max_rounds] bounds the
    chaotic iteration (default 64); on overrun every fixpoint cell is
    widened to ⊤ and one final round records the (sound) result. *)
val analyze : ?max_rounds:int -> Syntax.expr -> result

(** {1 Liveness} *)

(** Every [let]/[letrec]/[join] binder of the program, in syntactic
    order — the universe {!dead_binders} selects from. *)
val let_binders : Syntax.expr -> Syntax.var list

(** Uniques of the transitively dead {!let_binders}: bindings
    unreachable in the dependency graph rooted at the program spine.
    [Occur.is_dead x] implies membership. *)
val dead_binders : Syntax.expr -> Ident.Set.t

(** {1 The join-point discipline verifier} *)

(** Statically prove the Δ invariants, reporting every violation:
    ["join-as-value"], ["jump-arity"], ["jump-escape"] (the jump
    names the construct — lambda body, let rhs, argument — that reset
    Δ between binding and use), ["jump-unbound"],
    ["join-binder-type"], ["ill-formed-application"] (literal or
    constructor in application-head position), plus ["dead-join"]
    warnings for join points never jumped to. A Lint-clean program
    produces no errors; the converse does not hold. *)
val verify : Syntax.expr -> Diagnostic.t list

(** {1 Missed optimizations} *)

(** [missed ~decisions e'] inspects the {e optimized} program [e']:
    primops whose arguments the analysis proves constant, cases whose
    scrutinee shape selects a single alternative, and transitively
    dead bindings that nevertheless survived the pipeline. Each
    finding is cross-checked against the decision ledger [decisions]
    (and, for dead bindings, against {!Occur.is_dead}) so the
    diagnostic names the pass that declined the rewrite and its
    recorded reason. Also returns the fixpoint rounds the underlying
    analysis took. *)
val missed :
  decisions:Decision.event list ->
  Syntax.expr ->
  Diagnostic.t list * int

(** {1 The [fjc check] driver} *)

type check_result = {
  c_diagnostics : Diagnostic.t list;
      (** Discipline verdicts on the input followed by missed-opt
          findings on the pipeline output, in that order. *)
  c_errors : int;
  c_warnings : int;
  c_iterations : int;  (** Fixpoint rounds, both analyses summed. *)
  c_value : aval;  (** Abstract result of the input program. *)
}

(** Verify the input, run the analysis, then compile under the
    Join_points pipeline ([config]'s mode is overridden) with the
    decision ledger on and report the missed optimizations that
    survived. Discipline {e errors} suppress the pipeline stage (an
    ill-formed tree is not worth optimising). Pipeline failures are
    reported as an ["analysis-pipeline-failed"] warning, never an
    exception. *)
val check : config:Pipeline.config -> Syntax.expr -> check_result
