(** Demand (strictness) analysis and strictification — the Sec. 7
    strictness story for join points. *)

(** Strictness environment: binder unique -> (value arity, per-parameter
    strictness mask). *)
type fenv = (int * bool list) Ident.Map.t

(** Free variables certainly forced before the expression yields a
    WHNF, under the given masks for in-scope join points/functions. *)
val strict_vars : fenv -> Syntax.expr -> Ident.Set.t

(** Which of [params] are strictly demanded by [body]. *)
val strict_params : fenv -> Syntax.var list -> Syntax.expr -> bool list

(** Turn demanded lazy lets into strict bindings and force the strict
    arguments of jumps and saturated known calls (fixpoint masks for
    recursive groups). Typing- and meaning-preserving. Each
    strictified let / argument fires a {!Telemetry.Strict_let} /
    {!Telemetry.Strict_arg} tick. *)
val strictify : Syntax.expr -> Syntax.expr
