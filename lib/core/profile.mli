(** Runtime allocation profiler: per-site cost attribution (GHC
    cost-centre style) plus a bounded ring buffer of machine events.
    Sites are binder name hints ({!Ident.site}), which the optimiser
    preserves — so allocations in optimised code map back to source
    bindings, and the join-point claim is checkable per site: a
    [Join]-kinded site never accumulates words. *)

(** The site charged outside any labelled cost centre. *)
val main_site : string

type kind = Thunk | Closure | Con | Pap | Join

val kind_name : kind -> string

type site = {
  site_label : string;
  mutable site_kind : kind;
  mutable s_objects : int;
  mutable s_words : int;
  mutable s_steps : int;
  mutable s_jumps : int;
  mutable s_updates : int;
  mutable s_entries : int;
}

type event =
  | EEnter of string
  | EAlloc of string * int
  | EJump of string
  | EUpdate of string

val event_equal : event -> event -> bool

type t

val default_trace_cap : int

(** [create ~trace_cap ()] — [trace_cap] bounds the event ring buffer
    (default {!default_trace_cap}; [0] disables the trace). *)
val create : ?trace_cap:int -> unit -> t

(** {1 Attribution — called by the machines} *)

val alloc : t -> label:string -> kind:kind -> words:int -> unit
val step : t -> string -> unit
val enter : t -> string -> unit
val jump : t -> string -> unit
val update : t -> string -> unit

(** Register a join label (zero words) even if never jumped to. *)
val join_bind : t -> string -> unit

(** {1 Reading} *)

val find : t -> string -> site option
val total_words : t -> int
val total_steps : t -> int

(** All sites, heaviest first (deterministic order). *)
val sites : t -> site list

val join_sites : t -> site list

(** Retained trace events, oldest first. *)
val events : t -> event list

(** Events evicted by the ring bound. *)
val dropped : t -> int

(** {1 JSON} *)

val event_json : event -> Telemetry.Json.t
val event_of_json : Telemetry.Json.t -> (event, string) result
val events_json : t -> Telemetry.Json.t
val events_of_json : Telemetry.Json.t -> (event list, string) result
val site_json : site -> Telemetry.Json.t

(** The whole profile; [?stats] inlines the machine's aggregate
    counters under ["machine"]. *)
val to_json : ?stats:Mstats.t -> t -> Telemetry.Json.t

(** The cost-centre table: site, kind, words, %, steps, jumps,
    updates. *)
val pp_table : Format.formatter -> t -> unit
