(** The abstract machine of Fig. 3 with allocation accounting:
    call-by-name (as in the figure) and call-by-need (update frames).
    Join bindings capture the stack; a jump truncates back to it —
    neither allocates. Constructors cost [1 + n] words, closures and
    thunks 2; literals, nullary constructors and join points are
    free. Statistics use the machine-neutral {!Mstats} shape shared
    with the block machine; [?profile] attaches a per-site
    {!Profile}. *)

type mode = By_name | By_need

type stats = Mstats.t = {
  mutable steps : int;
  mutable objects : int;
  mutable words : int;  (** The Table 1 metric. *)
  mutable jumps : int;
  mutable joins_entered : int;
  mutable calls : int;
  mutable updates : int;
  mutable max_stack : int;
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Machine values (weak head normal forms). *)
type value

(** Machine environments. *)
type env

val empty_env : env

exception Stuck of string
exception Out_of_fuel

(** Run an expression to WHNF. Defaults: call-by-need, unlimited fuel,
    empty environment, no profiler. *)
val eval :
  ?mode:mode ->
  ?fuel:int ->
  ?env:env ->
  ?profile:Profile.t ->
  Syntax.expr ->
  value * stats

(** A fully-forced first-order view of a value. *)
type tree = TLit of Literal.t | TCon of string * tree list | TFun

(** Deep-force a value (functions print as [TFun]). *)
val force_deep : ?depth:int -> ?fuel:int -> value -> tree

val equal_tree : tree -> tree -> bool

(** Where two trees first disagree: a path from the root (e.g.
    ["at root.1.0: Cons/2 vs Nil/0"]); [None] when equal. *)
val tree_mismatch : tree -> tree -> string option

val pp_tree : Format.formatter -> tree -> unit

(** Evaluate and deep-force a closed expression. Neither the
    statistics nor the profile include the observation forcing. *)
val run_deep :
  ?mode:mode -> ?fuel:int -> ?profile:Profile.t -> Syntax.expr -> tree * stats

(** The three ways a fuel-bounded run can end, reified. *)
type outcome =
  | Finished of tree * stats
  | Fuel_exhausted  (** The fuel budget ran out ({!Out_of_fuel}). *)
  | Crashed of string  (** The machine got {!Stuck}; the message. *)

(** {!run_deep} with {!Out_of_fuel} and {!Stuck} captured as outcomes
    rather than exceptions — so a divergent generated program cannot
    wedge a harness. *)
val run_outcome :
  ?mode:mode -> ?fuel:int -> ?profile:Profile.t -> Syntax.expr -> outcome
