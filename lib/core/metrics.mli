(** The metrics registry: counters, gauges, and log-bucketed
    histograms.

    Where {!Span} answers "where did the time go, hierarchically",
    this module answers "how is the quantity distributed" — pass
    durations, evaluator step counts, fuzz case latencies. A registry
    is per-invocation (created by the pipeline / bench / fuzz harness
    and installed with {!with_registry} for a dynamic extent); the
    publishing calls ({!incr}, {!set_gauge}, {!observe}) write into
    the innermost installed registry and are no-ops when none is —
    the same discipline as {!Telemetry.tick}, so the machines publish
    unconditionally without threading state or paying when nobody is
    listening.

    Histograms are log-bucketed at quarter-powers of two (boundaries
    [2^(i/4)], resolution ~19%): constant space however many samples
    land, which is what lets a multi-hour soak keep a live latency
    distribution. Summaries report count / sum / min / max and
    bucket-interpolated p50 / p95. *)

type t

val create : unit -> t

(** Install [r] as the innermost registry for the extent of the
    callback (nesting saves and restores). *)
val with_registry : t -> (unit -> 'a) -> 'a

(** {1 Publishing — into the innermost registry; no-ops without one} *)

(** Add [by] (default 1) to a named monotone counter. *)
val incr : ?by:int -> string -> unit

(** Set a named last-value-wins gauge. *)
val set_gauge : string -> float -> unit

(** Record one sample into a named histogram. Negative samples clamp
    to 0. *)
val observe : string -> float -> unit

(** {1 Reading} *)

(** The summary of one histogram. [p50]/[p95] are bucket-interpolated
    (log-bucket resolution ~19%), clamped into [[min, max]]. *)
type summary = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p95 : float;
}

val counter_value : t -> string -> int
val gauge_value : t -> string -> float option
val histogram : t -> string -> summary option

(** All counters / gauges / histogram summaries, sorted by name. *)
val counters : t -> (string * int) list

val gauges : t -> (string * float) list
val histograms : t -> (string * summary) list

(** {1 Export} *)

val summary_json : summary -> Telemetry.Json.t

(** [{counters: {name: n}, gauges: {name: v}, histograms: {name:
    {count, sum, min, max, p50, p95}}}]. Empty sections elided. *)
val to_json : t -> Telemetry.Json.t

(** Human-readable registry dump (one line per entry); prints nothing
    on an empty registry. *)
val pp : Format.formatter -> t -> unit
