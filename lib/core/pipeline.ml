(** The Core-to-Core pass pipeline.

    Three compiler configurations, matching the experimental contrast
    of Sec. 7 plus one ablation:

    - {b Join_points} — the paper's compiler: Float In, contification
      (run "whenever the occurrence analyzer runs"), and the Simplifier
      with [jfloat]/[abort], iterated; Float Out at the end.
    - {b Baseline} — pre-join-point GHC, the paper's baseline: same
      pipeline but contification off and shared case alternatives bound
      as ordinary lets. (The {e back end} — see {!Fj_machine.Lower} —
      still recognises non-escaping tail-called bindings, as the
      paper's baseline does.)
    - {b No_cc} — commuting conversions disabled entirely; quantifies
      the Sec. 2 claim that they are "tremendously important in
      practice".

    [run] optionally Lints between every pass, which is how the test
    suite "forensically identifies" any pass that destroys typing. *)

open Syntax

type mode = Baseline | Join_points | No_cc

let mode_name = function
  | Baseline -> "baseline"
  | Join_points -> "join-points"
  | No_cc -> "no-commuting-conversions"

(** What the pass cache stores for one (pass, input tree) pair: the
    output tree plus everything else the pass would have produced —
    tick firings, ledger entries, and the unique-supply position it
    left behind — so a hit replays the pass exactly and warm compiles
    stay byte-identical to cold ones. *)
type cached_pass = {
  cp_output : Syntax.expr;
  cp_ident_after : int;
  cp_ticks : (string * int) list;
  cp_decisions : Decision.event list;
}

(** The memoization hook the compile service installs. The
    implementation owns the keying (pass label + round-trippable Sexp
    of the input + supply position + configuration fingerprint) and
    the integrity story; the pipeline just offers lookups and
    results. *)
type pass_cache = {
  cache_lookup :
    pass:string -> supply:int -> input:Syntax.expr -> cached_pass option;
  cache_store :
    pass:string -> supply:int -> input:Syntax.expr -> cached_pass -> unit;
}

type config = {
  mode : mode;
  iterations : int;  (** Rounds of (float-in; contify; simplify). *)
  inline_threshold : int;
  dup_threshold : int;
  strictness : bool;
      (** Run the demand analysis ({!Demand}) each round. Applies under
          every mode — the paper's baseline GHC has strictness analysis
          too; only the join-point-specific parts differ. *)
  cse : bool;  (** Run common sub-expression elimination each round. *)
  rules : Rules.rule list;
      (** User rewrite RULES (Sec. 8), applied once per round before
          the simplifier — like GHC, rules fire interleaved with
          inlining so that library-author equations (e.g.
          stream/unstream) meet their redexes. *)
  spec_constr : bool;
      (** Run call-pattern specialisation ({!Spec_constr}) each round
          (only effective on recursive join points, i.e. under
          [Join_points]). *)
  datacons : Datacon.env;
  lint_every_pass : bool;
      (** Under [Strict] only: typecheck between passes; raise
          {!Pass_broke_lint} on failure. Under [Recover] the lint gate
          is always on (it is what triggers rollback). *)
  policy : Guard.policy;
      (** [Strict] (the default): any pass failure aborts compilation,
          today's behaviour. [Recover]: a pass that raises, breaks
          Lint, exhausts its fuel budget or explodes the term size is
          rolled back to the pre-pass tree and recorded as a
          {!Guard.incident} — every optimisation pass is optional. *)
  limits : Guard.limits;  (** Per-pass budgets enforced under [Recover]. *)
  cache : pass_cache option;
      (** Pass memoization hook; [None] (the default) recomputes every
          pass. *)
}

let default_config ?(mode = Join_points) ?(iterations = 3)
    ?(inline_threshold = 60) ?(dup_threshold = 12) ?(strictness = true)
    ?(cse = true) ?(spec_constr = true) ?(rules = [])
    ?(datacons = Datacon.builtins) ?(lint_every_pass = false)
    ?(policy = Guard.Strict) ?(limits = Guard.default_limits) ?cache () =
  { mode; iterations; inline_threshold; dup_threshold; strictness; cse;
    rules; spec_constr; datacons; lint_every_pass; policy; limits; cache }

exception Pass_broke_lint of string * Lint.error

(** One pass execution in the trace: what ran, how long it took, what
    it did to the term, and which ticks it fired. *)
type pass_record = {
  pass : string;  (** e.g. ["simplify (0)"]. *)
  duration_ms : float;
  lint_ms : float;  (** 0 unless [lint_every_pass]. *)
  size_before : int;
  size_after : int;
  joins_after : int;  (** Join-point definitions after the pass. *)
  shape_after : Syntax.measure;
      (** Tree shape of the pass's output: nodes, depth, estimated
          heap words. *)
  gc : Gcstats.t;
      (** What the {e compiler} allocated running this pass (GC delta
          over the pass span, lint included). *)
  ticks : (string * int) list;  (** Ticks fired {e by this pass}. *)
  decisions : Decision.event list;
      (** Ledger entries recorded {e by this pass}. *)
  incident : Guard.incident option;
      (** Under [Recover]: the rollback this pass suffered, if any.
          When set, [size_after] equals [size_before] (the pre-pass
          tree was restored), while [ticks]/[decisions] still describe
          what the failed pass did before being rolled back. *)
  cached : bool;  (** Replayed from the pass cache rather than run. *)
}

type report = {
  mode : string;
  policy : string;  (** {!Guard.policy_name} of the run's policy. *)
  input_size : int;
  mutable output_size : int;
  mutable total_ms : float;
  mutable total_gc : Gcstats.t;
      (** GC delta over the whole compile span: everything the run
          allocated, passes and glue alike. *)
  mutable passes_rev : pass_record list;  (** Built newest-first. *)
  counters : Telemetry.counters;  (** Whole-run tick totals. *)
  ledger : Decision.t;  (** Whole-run decision ledger. *)
  span_collector : Span.collector;  (** Hierarchical wall-clock spans. *)
  metrics : Metrics.t;  (** Counters/gauges/histograms of the run. *)
}

let fresh_report (c : config) e =
  {
    mode = mode_name c.mode;
    policy = Guard.policy_name c.policy;
    input_size = size e;
    output_size = size e;
    total_ms = 0.0;
    total_gc = Gcstats.zero;
    passes_rev = [];
    counters = Telemetry.create ();
    ledger = Decision.create ();
    span_collector = Span.create ();
    metrics = Metrics.create ();
  }

let passes r = List.rev r.passes_rev
let report_mode r = r.mode
let total_gc r = r.total_gc
let folded ?weight r = Span.folded ?weight r.span_collector
let folded_stacks ?weight r = Span.folded_stacks ?weight r.span_collector
let spans r = Span.spans r.span_collector
let metrics r = r.metrics
let trail r = List.map (fun p -> (p.pass, p.size_after)) (passes r)
let ticks r = Telemetry.nonzero r.counters
let total_ticks r = Telemetry.total r.counters
let contified r = Telemetry.get r.counters Telemetry.Contified
let decisions r = Decision.events r.ledger
let decision_summary r = Decision.summary (decisions r)

(** Rollbacks suffered during the run, in execution order (empty under
    [Strict], which aborts instead). *)
let incidents r = List.filter_map (fun p -> p.incident) (passes r)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-28s %8.3f ms   size %5d -> %5d   joins %3d   alloc %9.0fw@,"
        p.pass p.duration_ms p.size_before p.size_after p.joins_after
        (Gcstats.alloc_words p.gc))
    (passes r);
  Fmt.pf ppf "%-28s %8.3f ms   size %5d -> %5d   %17s alloc %9.0fw@," "TOTAL"
    r.total_ms r.input_size r.output_size ""
    (Gcstats.alloc_words r.total_gc);
  Fmt.pf ppf "GC: %a@," Gcstats.pp r.total_gc;
  (let is = incidents r in
   if is <> [] then begin
     Fmt.pf ppf "Incidents (%d):@," (List.length is);
     List.iter (fun i -> Fmt.pf ppf "  %a@," Guard.pp_incident i) is
   end);
  Telemetry.pp_table ppf r.counters;
  (let ds = decisions r in
   if ds <> [] then
     Fmt.pf ppf "@,Decisions: %d fired, %d rejected" (Decision.fired ds)
       (Decision.rejected ds));
  (if Metrics.histograms r.metrics <> [] || Metrics.counters r.metrics <> []
   then begin
     Fmt.pf ppf "@,Metrics:@,";
     Metrics.pp ppf r.metrics
   end);
  Fmt.pf ppf "@]"

let ticks_json l =
  Telemetry.Json.Obj (List.map (fun (k, v) -> (k, Telemetry.Json.Int v)) l)

let pass_record_json (p : pass_record) =
  Telemetry.Json.(
    Obj
      ([
         ("name", Str p.pass);
         ("duration_ms", Float p.duration_ms);
         ("lint_ms", Float p.lint_ms);
         ("size_before", Int p.size_before);
         ("size_after", Int p.size_after);
         ("joins_after", Int p.joins_after);
         ( "shape_after",
           Obj
             [
               ("nodes", Int p.shape_after.Syntax.m_nodes);
               ("depth", Int p.shape_after.Syntax.m_depth);
               ("heap_words", Int p.shape_after.Syntax.m_heap_words);
             ] );
         ("gc", Gcstats.to_json p.gc);
         ("ticks", ticks_json p.ticks);
         ("decisions", Decision.summary_json p.decisions);
       ]
      @ (if p.cached then [ ("cached", Bool true) ] else [])
      @
      match p.incident with
      | None -> []
      | Some i -> [ ("incident", Guard.incident_json i) ]))

let report_json (r : report) =
  Telemetry.Json.(
    Obj
      [
        ("mode", Str r.mode);
        ("policy", Str r.policy);
        ("input_size", Int r.input_size);
        ("output_size", Int r.output_size);
        ("total_ms", Float r.total_ms);
        ("total_gc", Gcstats.to_json r.total_gc);
        ("total_ticks", Int (total_ticks r));
        ("contified", Int (contified r));
        ("ticks", ticks_json (ticks r));
        ("decisions", Decision.summary_json (decisions r));
        ("incidents", Arr (List.map Guard.incident_json (incidents r)));
        ("passes", Arr (List.map pass_record_json (passes r)));
        ("metrics", Metrics.to_json r.metrics);
        ("spans", Arr (List.map Span.span_json (spans r)));
      ])

let report_to_json r = Telemetry.Json.to_string (report_json r)

(** A compact optimizer summary — wall-clock, tick totals, headline
    join-point counters — for benchmark trajectory files
    ([BENCH_*.json]), where the full per-pass trace would drown the
    per-program rows. *)
let summary_json (r : report) =
  Telemetry.Json.(
    Obj
      [
        ("total_ms", Float r.total_ms);
        ("total_gc", Gcstats.to_json r.total_gc);
        ("total_ticks", Int (total_ticks r));
        ("contified", Int (contified r));
        ("ticks", ticks_json (ticks r));
        ("decisions", Decision.summary_json (decisions r));
        ("metrics", Metrics.to_json r.metrics);
      ])

(** The Chrome trace-event / Perfetto envelope over one or more runs:
    one track (tid) per report, named by its configuration, so the
    Baseline / Join_points / No_cc compile timelines sit side by side;
    the per-run metrics registries (histogram summaries included) ride
    under [otherData]. Load the result in https://ui.perfetto.dev or
    chrome://tracing. *)
let perfetto_json ?file (rs : report list) =
  let open Telemetry.Json in
  let process_name =
    Obj
      [
        ("ph", Str "M");
        ("ts", Int 0);
        ("name", Str "process_name");
        ("pid", Int 1);
        ("tid", Int 0);
        ("args", Obj [ ("name", Str "fjc") ]);
      ]
  in
  let events =
    List.concat
      (List.mapi
         (fun i r ->
           (* One GC counter sample per pass boundary (counter tracks
              are per-process in the trace format, so the track name
              carries the configuration): the per-pass allocation
              profile plots right under the pass timeline. *)
           let gc_counters =
             List.filter_map
               (fun (sp : Span.span) ->
                 if sp.Span.sp_cat <> "pass" then None
                 else
                   Some
                     (Span.counter_event ~pid:1 ~tid:(i + 1)
                        ~name:(Fmt.str "gc_words/%s" r.mode)
                        ~ts:(Span.us (sp.Span.sp_start_ms +. sp.Span.sp_dur_ms))
                        Telemetry.Json.
                          [
                            ( "minor",
                              Int
                                (int_of_float
                                   (Float.round sp.Span.sp_gc.Gcstats.minor_words))
                            );
                            ( "major",
                              Int
                                (int_of_float
                                   (Float.round sp.Span.sp_gc.Gcstats.major_words))
                            );
                            ( "promoted",
                              Int
                                (int_of_float
                                   (Float.round
                                      sp.Span.sp_gc.Gcstats.promoted_words)) );
                          ]))
               (Span.spans r.span_collector)
           in
           (Span.thread_name_event ~pid:1 ~tid:(i + 1) r.mode
           :: Span.trace_events ~pid:1 ~tid:(i + 1) r.span_collector)
           @ gc_counters)
         rs)
  in
  Obj
    [
      ("traceEvents", Arr (process_name :: events));
      ("displayTimeUnit", Str "ms");
      ( "otherData",
        Obj
          ((match file with None -> [] | Some f -> [ ("file", Str f) ])
          @ [
              ("captured_epoch_ms", Float (Telemetry.epoch_ms ()));
              ("configurations", Arr (List.map (fun r -> Str r.mode) rs));
              ( "metrics",
                Obj (List.map (fun r -> (r.mode, Metrics.to_json r.metrics)) rs)
              );
            ]) );
    ]

let simplify_config (c : config) : Simplify.config =
  {
    Simplify.join_points = (c.mode = Join_points);
    case_of_case = c.mode <> No_cc;
    inline_threshold = c.inline_threshold;
    dup_threshold = c.dup_threshold;
    datacons = c.datacons;
  }

(** Run the configured pipeline. Returns the optimised term and the
    structured trace of the passes run. *)
let run_report (c : config) (e : expr) : expr * report =
  let report = fresh_report c e in
  let t_run0 = Telemetry.now_ms () in
  (* The label of the last pass whose output survived: under [Recover]
     it is the provenance a rollback restores to. *)
  let last_good = ref "input" in
  (* Time + size + tick-delta accounting around one pass. The optional
     Lint check is timed separately so the trace distinguishes forensic
     overhead from optimisation work. Under [Recover] the pass runs
     inside {!Guard.protect}: on failure the pre-pass tree is kept and
     the incident lands in the pass record. *)
  let step pass f e =
    let size_before = size e in
    let snap = Telemetry.snapshot report.counters in
    let dsnap = Decision.snapshot report.ledger in
    (* Pass cache: consult before running. A hit replays the pass
       verbatim — output tree, tick firings, ledger entries, and the
       unique-supply position — inside a span of the usual shape, so
       warm compiles differ from cold ones only in wall-clock. The
       identity "input" pass is never cached. The supply position is
       read before anything runs: it is part of the key. *)
    let supply = Ident.counter_value () in
    let hit =
      match c.cache with
      | Some pc when pass <> "input" -> pc.cache_lookup ~pass ~supply ~input:e
      | _ -> None
    in
    match hit with
    | Some cp ->
        let (), duration_ms, gc =
          Span.with_span_stats ~cat:"pass" pass (fun () ->
              List.iter
                (fun (name, n) ->
                  match Telemetry.tick_of_name name with
                  | Some t -> Telemetry.tick ~n t
                  | None -> ())
                cp.cp_ticks;
              List.iter Decision.record_event cp.cp_decisions;
              Ident.restore_counter cp.cp_ident_after;
              Span.annotate "cached" (Telemetry.Json.Bool true);
              Span.annotate "size_before" (Telemetry.Json.Int size_before);
              Span.annotate "size_after"
                (Telemetry.Json.Int (size cp.cp_output)))
        in
        last_good := pass;
        Metrics.incr "pipeline.passes";
        Metrics.incr "cache.pass_hits";
        report.passes_rev <-
          {
            pass;
            duration_ms;
            lint_ms = 0.0;
            size_before;
            size_after = size cp.cp_output;
            joins_after = count_joins cp.cp_output;
            shape_after = measure cp.cp_output;
            gc;
            ticks = Telemetry.delta_since snap report.counters;
            decisions = Decision.events_since dsnap report.ledger;
            incident = None;
            cached = true;
          }
          :: report.passes_rev;
        cp.cp_output
    | None ->
    (* The pass runs inside a span whose measured duration {e is} the
       record's [duration_ms] — the exported Perfetto event and the
       trace-JSON field come from the same two clock reads, so they
       can never drift apart. *)
    let (e', lint_ms, incident), duration_ms, gc =
      Span.with_span_stats ~cat:"pass" pass (fun () ->
          let result =
            match c.policy with
            | Guard.Strict ->
                let e' = f e in
                let lint_ms =
                  if not c.lint_every_pass then 0.0
                  else
                    snd
                      (Span.with_span_timed ~cat:"guard" "lint" (fun () ->
                           match Lint.lint_result c.datacons e' with
                           | Ok _ -> ()
                           | Error err -> raise (Pass_broke_lint (pass, err))))
                in
                (e', lint_ms, None)
            | Guard.Recover -> (
                match
                  Guard.protect ~limits:c.limits ~datacons:c.datacons ~pass
                    ~restored:!last_good f e
                with
                | Ok (e', lint_ms) -> (e', lint_ms, None)
                | Error incident -> (e, 0.0, Some incident))
          in
          let e', _, incident = result in
          Span.annotate "size_before" (Telemetry.Json.Int size_before);
          Span.annotate "size_after" (Telemetry.Json.Int (size e'));
          (match incident with
          | None -> ()
          | Some i ->
              Span.annotate "incident"
                (Telemetry.Json.Str (Guard.cause_name i.Guard.i_cause)));
          result)
    in
    if incident = None then last_good := pass;
    (* The histogram family strips the round index: every "simplify
       (i)" lands in one "pass.simplify.ms" distribution. *)
    let family =
      match String.index_opt pass ' ' with
      | Some i -> String.sub pass 0 i
      | None -> pass
    in
    Metrics.incr "pipeline.passes";
    Metrics.observe "pass.duration_ms" duration_ms;
    Metrics.observe (Fmt.str "pass.%s.ms" family) duration_ms;
    Metrics.observe "pass.alloc_words" (Gcstats.alloc_words gc);
    let ticks_delta = Telemetry.delta_since snap report.counters in
    let decisions_delta = Decision.events_since dsnap report.ledger in
    (* Offer successful, un-rolled-back pass results to the cache.
       Rolled-back passes are excluded: their stored "result" would be
       the input tree but their ticks describe the failed attempt. *)
    (match c.cache with
    | Some pc when pass <> "input" && incident = None ->
        pc.cache_store ~pass ~supply ~input:e
          {
            cp_output = e';
            cp_ident_after = Ident.counter_value ();
            cp_ticks = ticks_delta;
            cp_decisions = decisions_delta;
          }
    | _ -> ());
    report.passes_rev <-
      {
        pass;
        duration_ms;
        lint_ms;
        size_before;
        size_after = size e';
        joins_after = count_joins e';
        (* Measured outside the span on purpose: the measurement's own
           allocation must not pollute the pass's GC delta. *)
        shape_after = measure e';
        gc;
        ticks = ticks_delta;
        decisions = decisions_delta;
        incident;
        cached = false;
      }
      :: report.passes_rev;
    e'
  in
  let body () =
    let scfg = simplify_config c in
    let e = step "input" Fun.id e in
    let rec rounds i e =
      if i >= c.iterations then e
      else
        let e = step (Fmt.str "float-in (%d)" i) (fun e -> fst (Float_in.run e)) e in
        let e =
          if c.mode = Join_points then
            step (Fmt.str "contify (%d)" i) Contify.contify e
          else e
        in
        let e =
          if c.rules = [] then e
          else begin
            let fired = ref [] in
            let e' =
              step (Fmt.str "rules (%d)" i)
                (fun e ->
                  let e', names = Rules.rewrite c.rules e in
                  fired := names;
                  if names <> [] then
                    Telemetry.tick ~n:(List.length names) Telemetry.Rule_fired;
                  e')
                e
            in
            (* Keep the trace quiet when no rule fired; name the firing
               rules when some did (the trail tests grep for these). *)
            (match report.passes_rev with
            | h :: t when !fired <> [] ->
                report.passes_rev <-
                  { h with
                    pass =
                      Fmt.str "rules (%d): %s" i (String.concat "," !fired)
                  }
                  :: t
            | { incident = Some _; _ } :: _ ->
                (* A rolled-back rules pass fired nothing, but the
                   incident must stay in the trace. *)
                ()
            | _ :: t -> report.passes_rev <- t
            | [] -> ());
            e'
          end
        in
        let e =
          if c.spec_constr && c.mode = Join_points then
            step (Fmt.str "spec-constr (%d)" i) Spec_constr.run e
          else e
        in
        let e =
          if c.strictness then
            step (Fmt.str "demand (%d)" i) Demand.strictify e
          else e
        in
        let e =
          step (Fmt.str "simplify (%d)" i)
            (Simplify.simplify ~max_iters:6 scfg) e
        in
        let e = if c.cse then step (Fmt.str "cse (%d)" i) Cse.run e else e in
        rounds (i + 1) e
    in
    let e = rounds 0 e in
    let e = step "float-out" (fun e -> fst (Float_out.run e)) e in
    let e = step "simplify (final)" (Simplify.simplify ~max_iters:4 scfg) e in
    e
  in
  let e =
    Span.with_collector report.span_collector @@ fun () ->
    Metrics.with_registry report.metrics @@ fun () ->
    let e, _, total_gc =
      Span.with_span_stats ~cat:"pipeline" "compile" (fun () ->
          Span.annotate "mode" (Telemetry.Json.Str report.mode);
          Span.annotate "input_size" (Telemetry.Json.Int report.input_size);
          let e =
            Telemetry.with_counters report.counters (fun () ->
                Decision.with_ledger report.ledger body)
          in
          Span.annotate "output_size" (Telemetry.Json.Int (size e));
          Span.annotate "total_ticks"
            (Telemetry.Json.Int (Telemetry.total report.counters));
          e)
    in
    report.total_gc <- total_gc;
    report.output_size <- size e;
    report.total_ms <- Telemetry.now_ms () -. t_run0;
    Metrics.incr "pipeline.runs";
    Metrics.set_gauge "pipeline.output_size" (float_of_int report.output_size);
    Metrics.observe "pipeline.total_ms" report.total_ms;
    e
  in
  (e, report)

let run c e = fst (run_report c e)

(** Convenience: optimise under every mode and return the association
    list (used by the benchmark harness). *)
let run_all_modes ?(iterations = 3) ?(datacons = Datacon.builtins) e =
  List.map
    (fun mode ->
      (mode, run (default_config ~mode ~iterations ~datacons ()) e))
    [ Baseline; Join_points; No_cc ]
