(** Globally-unique identifiers.

    Every binder in the System F_J intermediate representation carries an
    identifier with a globally unique integer key (a [Unique] in GHC
    parlance). Identity is decided solely by the key; the textual name is
    kept only for printing and debugging. Substitution avoids capture by
    refreshing binders, i.e. by allocating a new key while keeping the
    human-readable name. *)

type t = {
  name : string;  (** Human-readable hint, not significant for identity. *)
  id : int;  (** Globally unique key; the sole basis of identity. *)
}

(** The unique supply. Domain-local rather than process-global: every
    domain — in particular every compile-service worker — draws from
    its own counter, so parallel compilations never race on it. A
    compilation that must be reproducible installs an explicit
    {!supply} for its extent ({!with_supply}); identical source then
    allocates identical uniques whichever worker runs it, which is
    what makes [--jobs 8] output byte-identical to [--jobs 1]. *)
type supply = int ref

let supply_key : supply Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)
let counter () = Domain.DLS.get supply_key
let new_supply ?(from = 0) () : supply = ref from

let with_supply (s : supply) f =
  let saved = Domain.DLS.get supply_key in
  Domain.DLS.set supply_key s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set supply_key saved) f

(** The last unique the installed supply allocated (0 initially). *)
let counter_value () = !(counter ())

(** Set the installed supply to exactly [n], as if [n] were the last
    allocated key. The pass cache uses this to replay a cached pass's
    supply consumption so cold and warm compiles stay byte-identical;
    like {!unsafe_reset_counter}, never rewind while terms built under
    higher keys are still alive. *)
let restore_counter n = counter () := n

(** [fresh name] allocates a brand-new identifier with hint [name]. *)
let fresh name =
  let c = counter () in
  incr c;
  { name; id = !c }

(** [refresh x] allocates a new identifier with the same name hint as [x]
    but a distinct key. Used when cloning binders during substitution. *)
let refresh t = fresh t.name

(** [equal a b] holds iff the two identifiers have the same unique key. *)
let equal a b = Int.equal a.id b.id

(** Total order on the unique key (names are ignored). *)
let compare a b = Int.compare a.id b.id

let hash t = t.id
let name t = t.name
let id t = t.id

(** [site x] is the allocation-site (provenance) label of [x]: the
    name hint alone. Unlike the unique key, the hint survives
    {!refresh} — and therefore substitution, inlining and
    contification — so a profile keyed on it maps optimised-code
    allocations back to the source binding. Distinct binders sharing a
    hint share a site, exactly as same-named GHC cost centres do. *)
let site t = t.name

(** Pretty-print as [name_id]; stable and unambiguous within a run. *)
let pp ppf t = Fmt.pf ppf "%s_%d" t.name t.id

let to_string t = Fmt.str "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Reset the installed supply. Only for deterministic test output;
    never call while terms built under the old supply are still
    alive. *)
let unsafe_reset_counter () = counter () := 0

(** Ensure future {!fresh} keys exceed [n]. Called by deserialisers so
    loaded uniques can never collide with newly allocated ones. *)
let ensure_above n =
  let c = counter () in
  if !c <= n then c := n + 1
