(** Globally-unique identifiers.

    Every binder in the System F_J intermediate representation carries an
    identifier with a globally unique integer key (a [Unique] in GHC
    parlance). Identity is decided solely by the key; the textual name is
    kept only for printing and debugging. Substitution avoids capture by
    refreshing binders, i.e. by allocating a new key while keeping the
    human-readable name. *)

type t = {
  name : string;  (** Human-readable hint, not significant for identity. *)
  id : int;  (** Globally unique key; the sole basis of identity. *)
}

let counter = ref 0

(** [fresh name] allocates a brand-new identifier with hint [name]. *)
let fresh name =
  incr counter;
  { name; id = !counter }

(** [refresh x] allocates a new identifier with the same name hint as [x]
    but a distinct key. Used when cloning binders during substitution. *)
let refresh t = fresh t.name

(** [equal a b] holds iff the two identifiers have the same unique key. *)
let equal a b = Int.equal a.id b.id

(** Total order on the unique key (names are ignored). *)
let compare a b = Int.compare a.id b.id

let hash t = t.id
let name t = t.name
let id t = t.id

(** [site x] is the allocation-site (provenance) label of [x]: the
    name hint alone. Unlike the unique key, the hint survives
    {!refresh} — and therefore substitution, inlining and
    contification — so a profile keyed on it maps optimised-code
    allocations back to the source binding. Distinct binders sharing a
    hint share a site, exactly as same-named GHC cost centres do. *)
let site t = t.name

(** Pretty-print as [name_id]; stable and unambiguous within a run. *)
let pp ppf t = Fmt.pf ppf "%s_%d" t.name t.id

let to_string t = Fmt.str "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Reset the global supply. Only for deterministic test output; never
    call while terms built under the old supply are still alive. *)
let unsafe_reset_counter () = counter := 0

(** Ensure future {!fresh} keys exceed [n]. Called by deserialisers so
    loaded uniques can never collide with newly allocated ones. *)
let ensure_above n = if !counter <= n then counter := n + 1
