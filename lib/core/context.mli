(** The per-compilation context.

    Historically the compiler kept one piece of process-global mutable
    state: the {!Ident} unique supply. Every other collector
    (telemetry counters, the decision ledger, span collectors, metrics
    registries) was already per-invocation, but the supply was a bare
    global [ref] — harmless for a one-shot CLI, fatal for a parallel
    compile service: two workers interleaving [fresh] calls make
    unique allocation (and therefore every binder name in the output)
    depend on scheduling.

    A {!t} makes the remaining implicit state explicit. Each compile
    request runs inside {!with_ctx} (or {!with_fresh}), which installs
    the context's own supply for the request's dynamic extent — on the
    worker domain that happens to execute it. Identical source then
    compiles to byte-identical Core under any [--jobs] level, because
    every request starts from the same supply state and nothing leaks
    between requests. *)

type t

(** A fresh context whose supply starts at [from] (default 0 — the
    state of a newly started process, which is what makes runs
    reproducible). *)
val create : ?from:int -> unit -> t

(** The context's supply (to snapshot or restore around cache hits). *)
val supply : t -> Ident.supply

(** [with_ctx ctx f] runs [f] with [ctx]'s unique supply installed as
    the current domain's supply (nesting saves and restores). Reusing
    a context resumes its supply where the last extent left off. *)
val with_ctx : t -> (unit -> 'a) -> 'a

(** [with_fresh f] = [with_ctx (create ()) f]: run one compilation in
    a fresh, reproducible context — the per-request entry point of the
    compile service. *)
val with_fresh : (unit -> 'a) -> 'a
