(** Abstract interpretation over Core — see the interface for the
    design. *)

open Syntax

(* ------------------------------------------------------------------ *)
(* The lattice                                                         *)
(* ------------------------------------------------------------------ *)

type aval =
  | Bot
  | Const of Literal.t
  | Shape of string * aval list
  | Fun
  | Top

(* Constructor shapes are cut at this nesting depth: deeper structure
   widens to Top, which bounds every ascending chain (a recursive
   [let xs = Cons 1 xs] otherwise grows a shape per round forever). *)
let max_shape_depth = 4

let rec clamp d v =
  if d <= 0 then match v with Bot -> Bot | _ -> Top
  else
    match v with
    | Shape (n, fs) -> Shape (n, List.map (clamp (d - 1)) fs)
    | v -> v

let rec join_aval a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Top, _ | _, Top -> Top
  | Const l1, Const l2 -> if Literal.equal l1 l2 then a else Top
  | Shape (n1, fs1), Shape (n2, fs2) ->
      if String.equal n1 n2 && List.length fs1 = List.length fs2 then
        Shape (n1, List.map2 join_aval fs1 fs2)
      else Top
  | Fun, Fun -> Fun
  | _ -> Top

let rec equal_aval a b =
  match (a, b) with
  | Bot, Bot | Fun, Fun | Top, Top -> true
  | Const l1, Const l2 -> Literal.equal l1 l2
  | Shape (n1, fs1), Shape (n2, fs2) ->
      String.equal n1 n2
      && List.length fs1 = List.length fs2
      && List.for_all2 equal_aval fs1 fs2
  | _ -> false

let rec pp_aval ppf = function
  | Bot -> Fmt.string ppf "_|_"
  | Top -> Fmt.string ppf "T"
  | Fun -> Fmt.string ppf "fun"
  | Const l -> Literal.pp ppf l
  | Shape (n, []) -> Fmt.string ppf n
  | Shape (n, fs) ->
      Fmt.pf ppf "(%s %a)" n (Fmt.list ~sep:(Fmt.any " ") pp_aval) fs

let aval_to_string v = Fmt.str "%a" pp_aval v

let rec concretizes v (t : Eval.tree) =
  match (v, t) with
  | Top, _ -> true
  | Bot, _ -> false
  | Fun, Eval.TFun -> true
  | Fun, _ -> false
  | Const l, Eval.TLit l' -> Literal.equal l l'
  | Const _, _ -> false
  | Shape (n, fs), Eval.TCon (n', ts) ->
      String.equal n n'
      && List.length fs = List.length ts
      && List.for_all2 concretizes fs ts
  | Shape _, _ -> false

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

(* Chaotic iteration with one global worklist collapsed to "re-run the
   whole program while any fixpoint cell moved". The cells are the
   flow variables of the framework: join-point parameters (fed by
   jumps — the join graph is the program's CFG) and recursive-let
   binders. Everything else is environment-passed. *)
type state = {
  mutable iters : int;
  mutable changed : bool;
  mutable binders : aval Ident.Map.t;  (* last-round value per binder *)
  cells : aval Ident.Tbl.t;  (* join params + recursive binders *)
  jparams : var list Ident.Tbl.t;  (* join label -> parameter binders *)
  reached : unit Ident.Tbl.t;  (* join labels jumped to at least once *)
}

let cell_value st (x : Ident.t) =
  match Ident.Tbl.find_opt st.cells x with Some v -> v | None -> Top

let init_cell st (x : Ident.t) =
  if not (Ident.Tbl.mem st.cells x) then Ident.Tbl.replace st.cells x Bot

let raise_cell st (x : Ident.t) v =
  let old = match Ident.Tbl.find_opt st.cells x with Some v -> v | None -> Bot in
  let u = clamp max_shape_depth (join_aval old v) in
  if not (equal_aval u old) then begin
    Ident.Tbl.replace st.cells x u;
    st.changed <- true
  end

let record st (x : var) v = st.binders <- Ident.Map.add x.v_name v st.binders

(* Alternatives a scrutinee abstraction can still reach: a known
   literal or shape selects its exact match, falling back to the
   default; ⊤ keeps everything; ⊥ nothing. *)
let feasible_alts sv alts =
  let defaults () =
    List.filter (fun a -> a.alt_pat = PDefault) alts
  in
  match sv with
  | Bot -> []
  | Const l -> (
      match
        List.filter
          (fun a ->
            match a.alt_pat with
            | PLit l' -> Literal.equal l l'
            | _ -> false)
          alts
      with
      | [] -> defaults ()
      | exact -> exact)
  | Shape (n, _) -> (
      match
        List.filter
          (fun a ->
            match a.alt_pat with
            | PCon (dc, _) -> String.equal dc.Datacon.name n
            | _ -> false)
          alts
      with
      | [] -> defaults ()
      | exact -> exact)
  | Top | Fun -> alts

let rec aeval st (env : aval Ident.Map.t) (e : expr) : aval =
  match e with
  | Var v -> (
      match Ident.Map.find_opt v.v_name env with
      | Some a -> a
      | None -> (
          (* Recursive binders and join parameters live in cells;
             anything else free here is an analysis hole: Top. *)
          match Ident.Tbl.find_opt st.cells v.v_name with
          | Some a -> a
          | None -> Top))
  | Lit l -> Const l
  | Con (dc, _, es) ->
      clamp max_shape_depth
        (Shape (dc.Datacon.name, List.map (aeval st env) es))
  | Prim (op, es) -> (
      let avs = List.map (aeval st env) es in
      if List.exists (fun a -> a = Bot) avs then Bot
      else
        match
          List.fold_right
            (fun a acc ->
              match (a, acc) with
              | Const l, Some ls -> Some (l :: ls)
              | _ -> None)
            avs (Some [])
        with
        | None -> Top
        | Some ls -> (
            match Primop.fold_bool op ls with
            | Some b -> Shape ((Datacon.of_bool b).Datacon.name, [])
            | None -> (
                match Primop.fold_lit op ls with
                | Some l -> Const l
                | None -> Top)))
  | App (f, a) -> (
      let vf = aeval st env f in
      let _ = aeval st env a in
      (* No interprocedural step: a call to anything but ⊥ is ⊤. *)
      match vf with Bot -> Bot | _ -> Top)
  | TyApp (f, _) -> ( match aeval st env f with Bot -> Bot | _ -> Top)
  | Lam (x, b) ->
      record st x Top;
      let _ = aeval st (Ident.Map.add x.v_name Top env) b in
      Fun
  | TyLam (_, b) ->
      let _ = aeval st env b in
      Fun
  | Let (NonRec (x, rhs), body) ->
      let v = aeval st env rhs in
      record st x v;
      aeval st (Ident.Map.add x.v_name v env) body
  | Let (Strict (x, rhs), body) ->
      let v = aeval st env rhs in
      record st x v;
      (* A strict let forces its rhs first: no rhs value, no body. *)
      if v = Bot then Bot
      else aeval st (Ident.Map.add x.v_name v env) body
  | Let (Rec pairs, body) ->
      List.iter (fun ((x : var), _) -> init_cell st x.v_name) pairs;
      List.iter
        (fun ((x : var), rhs) ->
          raise_cell st x.v_name (aeval st env rhs);
          record st x (cell_value st x.v_name))
        pairs;
      aeval st env body
  | Case (scrut, alts) -> (
      let sv = aeval st env scrut in
      match feasible_alts sv alts with
      | [] -> Bot
      | alts ->
          List.fold_left
            (fun acc { alt_pat; alt_rhs } ->
              let env' =
                match (alt_pat, sv) with
                | PCon (_, xs), Shape (_, fs)
                  when List.length xs = List.length fs ->
                    List.fold_left2
                      (fun env (x : var) f ->
                        record st x f;
                        Ident.Map.add x.v_name f env)
                      env xs fs
                | PCon (_, xs), _ ->
                    List.fold_left
                      (fun env (x : var) ->
                        record st x Top;
                        Ident.Map.add x.v_name Top env)
                      env xs
                | _ -> env
              in
              join_aval acc (aeval st env' alt_rhs))
            Bot alts)
  | Join (jb, body) ->
      let ds = join_defns jb in
      List.iter
        (fun (d : join_defn) ->
          Ident.Tbl.replace st.jparams d.j_var.v_name d.j_params;
          List.iter (fun (p : var) -> init_cell st p.v_name) d.j_params)
        ds;
      (* Body first: its jumps seed the parameter cells the rhss read
         this very round (inner loops converge over global rounds). *)
      let bv = aeval st env body in
      let rvs =
        List.map
          (fun (d : join_defn) ->
            List.iter
              (fun (p : var) -> record st p (cell_value st p.v_name))
              d.j_params;
            (Ident.Tbl.mem st.reached d.j_var.v_name, aeval st env d.j_rhs))
          ds
      in
      (* The expression's value is the body's, plus the rhs of every
         join point some jump actually reaches. *)
      List.fold_left
        (fun acc (reached, rv) -> if reached then join_aval acc rv else acc)
        bv rvs
  | Jump (j, _, es, _) ->
      let avs = List.map (aeval st env) es in
      (match Ident.Tbl.find_opt st.jparams j.v_name with
      | None -> ()  (* unbound label: the verifier's problem *)
      | Some ps ->
          if not (Ident.Tbl.mem st.reached j.v_name) then begin
            Ident.Tbl.replace st.reached j.v_name ();
            st.changed <- true
          end;
          let rec feed ps avs =
            match (ps, avs) with
            | (p : var) :: ps, a :: avs ->
                raise_cell st p.v_name a;
                feed ps avs
            | _ -> ()
          in
          feed ps avs);
      (* A jump never returns a value to its own context. *)
      Bot

type result = {
  r_value : aval;
  r_binders : aval Ident.Map.t;
  r_iterations : int;
}

let default_max_rounds = 64

let analyze ?(max_rounds = default_max_rounds) e =
  let body () =
    let st =
      {
        iters = 0;
        changed = false;
        binders = Ident.Map.empty;
        cells = Ident.Tbl.create 64;
        jparams = Ident.Tbl.create 16;
        reached = Ident.Tbl.create 16;
      }
    in
    let rec loop () =
      st.changed <- false;
      st.iters <- st.iters + 1;
      st.binders <- Ident.Map.empty;
      let v = aeval st Ident.Map.empty e in
      if not st.changed then v
      else if st.iters < max_rounds then loop ()
      else begin
        (* Give up on precision, never on soundness: widen every
           fixpoint cell to ⊤ and take one last stable round. *)
        Ident.Tbl.iter
          (fun x _ -> Ident.Tbl.replace st.cells x Top)
          st.cells;
        st.iters <- st.iters + 1;
        st.binders <- Ident.Map.empty;
        aeval st Ident.Map.empty e
      end
    in
    let v = loop () in
    { r_value = v; r_binders = st.binders; r_iterations = st.iters }
  in
  let r, _ms, _gc =
    Span.with_span_stats ~cat:"analysis" "absint.analyze" body
  in
  Metrics.incr "absint.analyses";
  Metrics.observe "absint.fixpoint_rounds" (float_of_int r.r_iterations);
  r

(* ------------------------------------------------------------------ *)
(* Liveness                                                            *)
(* ------------------------------------------------------------------ *)

let let_binders e =
  let acc = ref [] in
  let rec go e =
    (match e with
    | Let (b, _) -> acc := List.rev_append (binders_of_bind b) !acc
    | Join (jb, _) -> acc := List.rev_append (binders_of_jbind jb) !acc
    | _ -> ());
    iter_sub go e
  and iter_sub f = function
    | Var _ | Lit _ -> ()
    | Con (_, _, es) | Prim (_, es) -> List.iter f es
    | App (a, b) ->
        f a;
        f b
    | TyApp (a, _) | Lam (_, a) | TyLam (_, a) -> f a
    | Let (b, body) ->
        List.iter (fun (_, rhs) -> f rhs) (bind_pairs b);
        f body
    | Case (s, alts) ->
        f s;
        List.iter (fun a -> f a.alt_rhs) alts
    | Join (jb, body) ->
        List.iter (fun (d : join_defn) -> f d.j_rhs) (join_defns jb);
        f body
    | Jump (_, _, es, _) -> List.iter f es
  in
  go e;
  List.rev !acc

(* The binder-dependency graph: an occurrence of [b] inside the rhs of
   binding [c] is the edge c -> b ("b is demanded only if c is");
   occurrences on the program spine (bodies, scrutinees, arguments not
   under any rhs) root b directly. Dead = unreachable from the root —
   [Occur.is_dead] (zero occurrences anywhere) is the edgeless special
   case, and a binding referenced only by dead bindings also dies. *)
let dead_binders e =
  let universe =
    List.fold_left
      (fun s (x : var) -> Ident.Set.add x.v_name s)
      Ident.Set.empty (let_binders e)
  in
  (* deps: owner unique -> binders its rhs mentions; None owner = root. *)
  let deps : Ident.Set.t Ident.Tbl.t = Ident.Tbl.create 64 in
  let root_uses = ref Ident.Set.empty in
  let use owner x =
    if Ident.Set.mem x universe then
      match owner with
      | None -> root_uses := Ident.Set.add x !root_uses
      | Some o ->
          let cur =
            match Ident.Tbl.find_opt deps o with
            | Some s -> s
            | None -> Ident.Set.empty
          in
          Ident.Tbl.replace deps o (Ident.Set.add x cur)
  in
  let rec go owner e =
    match e with
    | Var v -> use owner v.v_name
    | Lit _ -> ()
    | Con (_, _, es) | Prim (_, es) -> List.iter (go owner) es
    | App (a, b) ->
        go owner a;
        go owner b
    | TyApp (a, _) | Lam (_, a) | TyLam (_, a) -> go owner a
    | Let (b, body) ->
        List.iter
          (fun ((x : var), rhs) -> go (Some x.v_name) rhs)
          (bind_pairs b);
        go owner body
    | Case (s, alts) ->
        go owner s;
        List.iter (fun a -> go owner a.alt_rhs) alts
    | Join (jb, body) ->
        List.iter
          (fun (d : join_defn) -> go (Some d.j_var.v_name) d.j_rhs)
          (join_defns jb);
        go owner body
    | Jump (j, _, es, _) ->
        use owner j.v_name;
        List.iter (go owner) es
  in
  go None e;
  (* Reachability from the root over the dependency edges. *)
  let live = ref Ident.Set.empty in
  let rec visit x =
    if not (Ident.Set.mem x !live) then begin
      live := Ident.Set.add x !live;
      match Ident.Tbl.find_opt deps x with
      | Some s -> Ident.Set.iter visit s
      | None -> ()
    end
  in
  Ident.Set.iter visit !root_uses;
  Ident.Set.diff universe !live

(* ------------------------------------------------------------------ *)
(* The join-point discipline verifier                                  *)
(* ------------------------------------------------------------------ *)

(* Unlike Lint (which raises at the first error), the verifier walks
   the whole tree collecting every violation, and distinguishes *why*
   a jump's frame is gone: [delta] holds the labels still jumpable,
   [blocked] the labels lexically visible but severed from the
   evaluation context, mapped to the construct that reset Δ. *)
type vctx = {
  delta : (int * int) Ident.Map.t;  (* label -> (tyvar, param) arity *)
  blocked : string Ident.Map.t;  (* label -> what reset Δ *)
}

let verify e =
  let out = ref [] in
  let emit d = out := d :: !out in
  let jumped : unit Ident.Tbl.t = Ident.Tbl.create 16 in
  let reset why ctx =
    {
      delta = Ident.Map.empty;
      blocked =
        Ident.Map.fold
          (fun l _ b -> Ident.Map.add l why b)
          ctx.delta ctx.blocked;
    }
  in
  let is_join ctx (x : Ident.t) =
    Ident.Map.mem x ctx.delta || Ident.Map.mem x ctx.blocked
  in
  let check_join_binder (d : join_defn) =
    let want =
      Types.join_point_ty d.j_tyvars
        (List.map (fun (p : var) -> p.v_ty) d.j_params)
    in
    if not (Types.equal d.j_var.v_ty want) then
      emit
        (Diagnostic.error "join-binder-type"
           ~site:(Ident.site d.j_var.v_name)
           (Fmt.str
              "join binder %a has type %a, should be %a"
              Ident.pp d.j_var.v_name Types.pp d.j_var.v_ty Types.pp want))
  in
  let dead_join (d : join_defn) =
    if not (Ident.Tbl.mem jumped d.j_var.v_name) then
      emit
        (Diagnostic.warning "dead-join"
           ~site:(Ident.site d.j_var.v_name)
           (Fmt.str "join point %a is never jumped to" Ident.pp
              d.j_var.v_name))
  in
  let rec go ctx e =
    match e with
    | Var v ->
        if is_join ctx v.v_name then
          emit
            (Diagnostic.error "join-as-value"
               ~site:(Ident.site v.v_name)
               (Fmt.str "join point %a used as a first-class value"
                  Ident.pp v.v_name))
    | Lit _ -> ()
    | Con (_, _, es) ->
        List.iter (go (reset "a constructor argument" ctx)) es
    | Prim (_, es) ->
        List.iter (go (reset "a primop argument" ctx)) es
    | App (f, a) ->
        (match f with
        | Lit _ ->
            emit
              (Diagnostic.error "ill-formed-application" ~site:"<top>"
                 "a literal in application-head position")
        | Con _ ->
            emit
              (Diagnostic.error "ill-formed-application" ~site:"<top>"
                 "a saturated constructor in application-head position")
        | _ -> ());
        go ctx f;  (* evaluation position: Δ flows into the head *)
        go (reset "a function argument" ctx) a
    | TyApp (f, _) -> go ctx f
    | Lam (_, b) -> go (reset "a lambda body" ctx) b
    | TyLam (_, b) -> go (reset "a type-lambda body" ctx) b
    | Let ((NonRec (_, rhs) | Strict (_, rhs)), body) ->
        go (reset "a let right-hand side" ctx) rhs;
        go ctx body
    | Let (Rec pairs, body) ->
        List.iter
          (fun (_, rhs) ->
            go (reset "a recursive let right-hand side" ctx) rhs)
          pairs;
        go ctx body
    | Case (scrut, alts) ->
        go ctx scrut;  (* evaluation position *)
        List.iter (fun a -> go ctx a.alt_rhs) alts  (* tail positions *)
    | Join (JNonRec d, body) ->
        check_join_binder d;
        (* Non-recursive: the rhs is a tail context of the *outer*
           joins only; the body sees d. *)
        go ctx d.j_rhs;
        go
          {
            ctx with
            delta =
              Ident.Map.add d.j_var.v_name
                (List.length d.j_tyvars, List.length d.j_params)
                ctx.delta;
          }
          body;
        dead_join d
    | Join (JRec ds, body) ->
        List.iter check_join_binder ds;
        let ctx' =
          {
            ctx with
            delta =
              List.fold_left
                (fun m (d : join_defn) ->
                  Ident.Map.add d.j_var.v_name
                    (List.length d.j_tyvars, List.length d.j_params)
                    m)
                ctx.delta ds;
          }
        in
        (* Recursive group: each rhs may jump to every sibling. *)
        List.iter (fun (d : join_defn) -> go ctx' d.j_rhs) ds;
        go ctx' body;
        List.iter dead_join ds
    | Jump (j, phis, es, _) -> (
        List.iter (go (reset "a jump argument" ctx)) es;
        match Ident.Map.find_opt j.v_name ctx.delta with
        | Some (nty, nval) ->
            Ident.Tbl.replace jumped j.v_name ();
            if List.length phis <> nty || List.length es <> nval then
              emit
                (Diagnostic.error "jump-arity"
                   ~site:(Ident.site j.v_name)
                   (Fmt.str
                      "jump to %a with %d type and %d value argument(s); \
                       the join point takes exactly (%d, %d)"
                      Ident.pp j.v_name (List.length phis) (List.length es)
                      nty nval))
        | None -> (
            match Ident.Map.find_opt j.v_name ctx.blocked with
            | Some why ->
                (* Still mark it jumped: the bug is the escape, not
                   an unused join point. *)
                Ident.Tbl.replace jumped j.v_name ();
                emit
                  (Diagnostic.error "jump-escape"
                     ~site:(Ident.site j.v_name)
                     (Fmt.str
                        "jump to %a from inside %s: the join frame is no \
                         longer in the evaluation context"
                        Ident.pp j.v_name why))
            | None ->
                emit
                  (Diagnostic.error "jump-unbound"
                     ~site:(Ident.site j.v_name)
                     (Fmt.str "jump to unbound label %a" Ident.pp j.v_name))))
  in
  let r =
    Span.with_span ~cat:"analysis" "absint.verify" (fun () ->
        go { delta = Ident.Map.empty; blocked = Ident.Map.empty } e;
        List.rev !out)
  in
  Metrics.incr "absint.verifies";
  r

(* ------------------------------------------------------------------ *)
(* Missed optimizations                                                *)
(* ------------------------------------------------------------------ *)

(* The ledger cross-reference: the last *rejection* recorded for this
   site names the pass that looked at the binding and declined, and
   why. No event at all is itself informative ("no pass considered
   it"). *)
let ledger_verdict decisions site =
  let mine =
    List.filter
      (fun (ev : Decision.event) -> String.equal ev.Decision.d_site site)
      decisions
  in
  match
    List.fold_left
      (fun acc (ev : Decision.event) ->
        match ev.Decision.d_verdict with
        | Decision.Rejected r -> Some (ev.Decision.d_pass, r)
        | Decision.Fired -> acc)
      None mine
  with
  | Some (pass, reason) ->
      (Some pass, Some (Fmt.str "%a" Decision.pp_reason reason))
  | None ->
      if mine = [] then (None, Some "no ledger entry for this site")
      else (None, Some "every ledger entry for this site fired")

let missed ~decisions e' =
  let body () =
    let r = analyze e' in
    let out = ref [] in
    let emit d = out := d :: !out in
    (* Simple value lookup against the final binder table: enough to
       recognise "all arguments constant" / "scrutinee shape known"
       at a site without re-running the engine. *)
    let rec sval e =
      match e with
      | Lit l -> Const l
      | Var v -> (
          match Ident.Map.find_opt v.v_name r.r_binders with
          | Some a -> a
          | None -> Top)
      | Con (dc, _, es) ->
          clamp max_shape_depth (Shape (dc.Datacon.name, List.map sval es))
      | _ -> Top
    in
    let warn check ~site msg =
      let pass, reason = ledger_verdict decisions site in
      emit (Diagnostic.warning ?pass ?reason check ~site msg)
    in
    let rec go site e =
      match e with
      | Var _ | Lit _ -> ()
      | Con (_, _, es) -> List.iter (go site) es
      | Prim (op, es) ->
          (match
             List.fold_right
               (fun e acc ->
                 match (sval e, acc) with
                 | Const l, Some ls -> Some (l :: ls)
                 | _ -> None)
               es (Some [])
           with
          | Some ls
            when Primop.fold_lit op ls <> None
                 || Primop.fold_bool op ls <> None ->
              warn "missed-constant-fold" ~site
                (Fmt.str
                   "primop %s applied to provably constant arguments (%a) \
                    survived the pipeline"
                   (Primop.name op)
                   (Fmt.list ~sep:(Fmt.any ", ") Literal.pp)
                   ls)
          | _ -> ());
          List.iter (go site) es
      | App (f, a) ->
          go site f;
          go site a
      | TyApp (f, _) -> go site f
      | Lam (_, b) | TyLam (_, b) -> go site b
      | Let (b, body) ->
          List.iter
            (fun ((x : var), rhs) -> go (Ident.site x.v_name) rhs)
            (bind_pairs b);
          go site body
      | Case (scrut, alts) ->
          (match sval scrut with
          | (Const _ | Shape _) as sv
            when List.length alts > 1
                 && List.length (feasible_alts sv alts) = 1 ->
              warn "missed-case-fold" ~site
                (Fmt.str
                   "case scrutinee is provably %s: a single alternative is \
                    reachable, yet %d survived the pipeline"
                   (aval_to_string sv) (List.length alts))
          | _ -> ());
          go site scrut;
          List.iter (fun a -> go site a.alt_rhs) alts
      | Join (jb, body) ->
          List.iter
            (fun (d : join_defn) -> go (Ident.site d.j_var.v_name) d.j_rhs)
            (join_defns jb);
          go site body
      | Jump (_, _, es, _) -> List.iter (go site) es
    in
    go "<top>" e';
    (* Transitively dead bindings that survived, cross-checked against
       the occurrence analyser: "syntactically dead" means Occur sees
       count zero too; otherwise only the dependency graph proves it. *)
    let dead = dead_binders e' in
    if not (Ident.Set.is_empty dead) then begin
      let occ, binfo = Occur.with_binder_info e' in
      ignore occ;
      List.iter
        (fun (x : var) ->
          if Ident.Set.mem x.v_name dead then
            let syntactic =
              match Ident.Map.find_opt x.v_name binfo with
              | Some (i : Occur.info) -> i.Occur.count = 0
              | None -> true
            in
            warn "missed-dead-binding" ~site:(Ident.site x.v_name)
              (Fmt.str "binding %a is %s, yet survived the pipeline"
                 Ident.pp x.v_name
                 (if syntactic then "dead (no occurrences; Occur agrees)"
                  else
                    "transitively dead (used only by dead bindings — \
                     beyond Occur's reach)")))
        (let_binders e')
    end;
    (List.rev !out, r.r_iterations)
  in
  let r = Span.with_span ~cat:"analysis" "absint.missed" body in
  Metrics.incr "absint.missed_scans";
  r

(* ------------------------------------------------------------------ *)
(* The [fjc check] driver                                              *)
(* ------------------------------------------------------------------ *)

type check_result = {
  c_diagnostics : Diagnostic.t list;
  c_errors : int;
  c_warnings : int;
  c_iterations : int;
  c_value : aval;
}

let check ~config e =
  Span.with_span ~cat:"analysis" "absint.check" @@ fun () ->
  let discipline = verify e in
  let r = analyze e in
  let missed_ds, missed_iters =
    if List.exists Diagnostic.is_error discipline then ([], 0)
    else
      match
        Pipeline.run_report
          { config with Pipeline.mode = Pipeline.Join_points }
          e
      with
      | e', report -> missed ~decisions:(Pipeline.decisions report) e'
      | exception exn ->
          ( [
              Diagnostic.warning "analysis-pipeline-failed" ~site:"<top>"
                (Fmt.str "Join_points pipeline failed under analysis: %s"
                   (Printexc.to_string exn));
            ],
            0 )
  in
  let ds = discipline @ missed_ds in
  let errors, warnings = Diagnostic.count ds in
  Metrics.incr "absint.checks";
  {
    c_diagnostics = ds;
    c_errors = errors;
    c_warnings = warnings;
    c_iterations = r.r_iterations + missed_iters;
    c_value = r.r_value;
  }
