(** The optimization decision ledger: every accepted {e and rejected}
    rewrite, with its site and a structured reason.

    {!Telemetry} ticks count what the optimizer {e did}; this module
    records what it {e decided} — including the refusals that today
    would silently fall through (an inline skipped because the
    unfolding is too big, a candidate not contified because one
    occurrence escapes under a lambda, …). Modelled on GHC's
    [-ddump-inlinings]/[-ddump-rule-rejections] decision dumps.

    Collection follows the {!Telemetry.with_counters} discipline: a
    pipeline run installs a {!t} with {!with_ledger}, every pass
    {!record}s into it without threading state, and {!record} is a
    no-op when no ledger is installed (so bare pass invocations in
    tests pay nothing).

    Sites are binder name hints ({!Ident.site}) — the same provenance
    labels the allocation profiler uses — so a decision in optimised
    code maps back to the source binding the user asked about. *)

(** What kind of rewrite was being considered. *)
type action =
  | Inline  (** Splice an unfolding at a call site (Simplify). *)
  | Pre_inline
      (** Substitute a once-used / trivial rhs
          (preInlineUnconditionally). *)
  | Dup_alt
      (** Copy a case alternative when duplicating a continuation
          (vs sharing it via [Share_alt]). *)
  | Demote  (** Demote a join binding to a let (baseline simplifier). *)
  | Contify  (** Rebind a let as a join point (Fig. 5). *)
  | Cse  (** Replace a repeated expression by its earlier binder. *)
  | Strict_let  (** Turn a demanded lazy let strict (Demand). *)
  | Strict_arg  (** Force a strict call/jump argument early (Demand). *)
  | Spec_constr  (** Specialise a recursive join to a call pattern. *)
  | Float_in  (** Sink a binding towards its use site. *)
  | Float_out  (** Hoist a binding past a lambda. *)

(** Stable external name, e.g. [Inline] -> ["inline"]. *)
val action_name : action -> string

(** Why a rewrite was refused. The payloads quote the facts the guard
    actually tested (sizes and thresholds, occurrence counts), so the
    refusal can be reproduced and reasoned about. *)
type reason =
  | Inline_too_big of { size : int; threshold : int }
      (** [size u > inline_threshold] at the call site. *)
  | Uninformative_context
      (** The unfolding is small enough, but the use site is not a
          context the unfolding's WHNF would reduce with. *)
  | Occurs_many of { count : int }
      (** Multi-use, non-trivial rhs: pre-inlining would duplicate
          code; left for call-site inlining to consider. *)
  | Escapes_under_lambda
      (** An occurrence sits under a lambda: inlining (or treating the
          occurrence as a tail call) would duplicate work. *)
  | Loop_breaker
      (** Recursive binder: never recorded as an unfolding, so never
          inlined (GHC's loop breakers). *)
  | Dup_threshold_shared of { size : int; threshold : int }
      (** Alternative larger than [dup_threshold]: shared as a join
          point (or a let-bound function in baseline mode) instead of
          being copied. *)
  | Not_all_tail_calls
      (** Contify: some occurrence is not a saturated tail call. *)
  | Shape_mismatch
      (** Contify: occurrences are tail calls but disagree on the
          (n_ty, n_val) argument shape. *)
  | Rhs_arity_mismatch
      (** Contify: the rhs does not strip to the occurrence shape's
          binder prefix. *)
  | Nullary_candidate
      (** Contify: shape (0,0) with several uses — a join point would
          re-evaluate per jump what the let shares (deliberate
          divergence from Fig. 5; see DESIGN.md). *)
  | Scope_type_mismatch
      (** Contify: the stripped body's type differs from the scope's
          (the Fig. 5 proviso). *)
  | Already_whnf
      (** Demand: the demanded rhs is already a value (or trivial) —
          nothing to force. *)
  | No_common_constructor
      (** SpecConstr: no argument position receives the same
          constructor at every jump. *)
  | No_unique_use_site
      (** Float In: no single branch/scrutinee to sink the binding
          into. *)
  | Mentions_lambda_binder
      (** Float Out: the rhs depends on the enclosing lambda's binder,
          so it cannot be hoisted past it. *)

(** Stable external name, e.g. ["inline_too_big"] (payloads omitted). *)
val reason_name : reason -> string

(** Human narrative, e.g. ["size 74 > threshold 60"]. *)
val pp_reason : Format.formatter -> reason -> unit

type verdict = Fired | Rejected of reason

val verdict_name : verdict -> string

(** One decision: which pass considered which rewrite at which site,
    and what it concluded. *)
type event = {
  d_pass : string;  (** The deciding pass, e.g. ["simplify"]. *)
  d_action : action;
  d_site : string;  (** {!Ident.site} of the binder concerned. *)
  d_verdict : verdict;
}

(** ["inline of `f` rejected: size 74 > threshold 60"]. *)
val pp_event : Format.formatter -> event -> unit

(** {1 Collection} *)

(** An append-only ledger for one pipeline run. *)
type t

val create : unit -> t

(** [with_ledger l f] installs [l] as the current ledger for the
    dynamic extent of [f]; nesting saves and restores. *)
val with_ledger : t -> (unit -> 'a) -> 'a

(** Is a ledger currently installed? Passes use this to skip
    {e computing} a verdict's facts when nobody is listening. *)
val enabled : unit -> bool

(** Append one event to the innermost installed ledger; a no-op when
    none is installed. *)
val record : pass:string -> action -> site:string -> verdict -> unit

(** Append a pre-built event verbatim — the pass cache's replay hook:
    a cache hit re-records the stored events so cold and warm compiles
    carry byte-identical ledgers. No-op when no ledger is installed. *)
val record_event : event -> unit

(** {1 Reading} *)

(** Events in the order they were recorded. *)
val events : t -> event list

val length : t -> int

(** A position in the ledger, for per-pass deltas. *)
type snapshot

val snapshot : t -> snapshot

(** Events recorded since the snapshot, oldest first. *)
val events_since : snapshot -> t -> event list

(** {1 Summaries} *)

val fired : event list -> int
val rejected : event list -> int

(** Rejection counts keyed by {!reason_name}, sorted by name. *)
val reason_counts : event list -> (string * int) list

(** Counts keyed ["action:verdict"] or ["action:rejected:reason"],
    sorted by key — the per-pass decision summary. *)
val summary : event list -> (string * int) list

(** {1 JSON} *)

(** [{pass, action, site, verdict}] plus, for rejections, [reason] and
    its payload fields ([size], [threshold], [count]). *)
val event_json : event -> Telemetry.Json.t

(** The exact inverse of {!event_json}; [None] on an unknown shape.
    Used by the content-addressed pass cache to round-trip ledger
    entries through disk. *)
val event_of_json : Telemetry.Json.t -> event option

(** [{fired, rejected, counts: {key: n}}] over the given events. *)
val summary_json : event list -> Telemetry.Json.t
