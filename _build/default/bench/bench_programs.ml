(** The benchmark workload suite: NoFib-shaped programs (Table 1).

    NoFib itself is tens of thousands of lines of Haskell; these are
    analogues written in our surface language, grouped and named after
    the NoFib programs whose workload style they imitate (see DESIGN.md,
    "Substitutions"). Each exercises the code paths the paper credits
    for its allocation deltas: case-of-case chains over library
    composition, local tail-recursive loops (contification), and stream
    pipelines (fusion). Every program's [main] computes an [Int] so
    results can be checked across compiler configurations. *)

type program = {
  name : string;
  group : string;  (** "spectral" | "real" | "shootout" *)
  descr : string;
  source : string;  (** Surface code defining [main]. *)
  uses_streams : bool;  (** Prepend the stream-fusion library? *)
}

let p ?(streams = false) group name descr source =
  { name; group; descr; source; uses_streams = streams }

(* ================================================================== *)
(* spectral                                                            *)
(* ================================================================== *)

(* fibheaps: priority-queue churn (skew heap): insert, meld, drain. *)
let fibheaps =
  p "spectral" "fibheaps" "skew-heap priority queue: insert/drain churn"
    {|
data Heap = Empty | Node Int Heap Heap

def meld a b = case a of {
  Empty -> b;
  Node x la ra -> case b of {
    Empty -> a;
    Node y lb rb ->
      if x <= y then Node x (meld ra b) la
      else Node y (meld rb a) lb
  }
}

def insert x h = meld (Node x Empty Empty) h

def findMin h = case h of { Empty -> Nothing; Node x l r -> Just x }

def deleteMin h = case h of { Empty -> Empty; Node x l r -> meld l r }

def fill seed n h =
  if n <= 0 then h
  else fill ((seed * 1103515245 + 12345) % 1048573) (n - 1)
            (insert (seed % 1000) h)

def drain h acc = case findMin h of {
  Nothing -> acc;
  Just x -> drain (deleteMin h) (acc + x)
}

def main = drain (fill 42 400 Empty) 0
|}

(* ida: iterative-deepening search over an implicit tree. *)
let ida =
  p "spectral" "ida" "iterative deepening search with local loops"
    {|
-- implicit ternary tree; leaf value from node id
def goal n = n % 9337 == 0

def dfs node depth =
  if goal node then Just node
  else if depth <= 0 then Nothing
  else case dfs (node * 3 + 1) (depth - 1) of {
    Just r -> Just r;
    Nothing -> case dfs (node * 3 + 2) (depth - 1) of {
      Just r -> Just r;
      Nothing -> dfs (node * 3 + 3) (depth - 1)
    }
  }

def deepen d =
  if d > 8 then 0 - 1
  else case dfs 1 d of { Just r -> r; Nothing -> deepen (d + 1) }

def main = deepen 1
|}

(* nucleic2: floating-ish geometry — fixed-point 3D vector arithmetic. *)
let nucleic2 =
  p "spectral" "nucleic2" "fixed-point 3-vector geometry sweeps"
    {|
data V3 = V3 Int Int Int

def vadd a b = case a of { V3 x1 y1 z1 ->
  case b of { V3 x2 y2 z2 -> V3 (x1 + x2) (y1 + y2) (z1 + z2) } }

def vdot a b = case a of { V3 x1 y1 z1 ->
  case b of { V3 x2 y2 z2 -> x1 * x2 + y1 * y2 + z1 * z2 } }

def vscale k a = case a of { V3 x y z -> V3 (k * x) (k * y) (k * z) }

def atoms n =
  if n <= 0 then Nil
  else Cons (V3 (n % 17) ((n * 7) % 23) ((n * 13) % 29)) (atoms (n - 1))

def energy xs = case xs of {
  Nil -> 0;
  Cons a rest ->
    let contrib = sum (map (\b -> vdot a b % 1000) rest)
    in contrib + energy rest
}

def main = energy (atoms 60)
|}

(* para: paragraph filling over word widths. *)
let para =
  p "spectral" "para" "greedy line-breaking with local accumulation loops"
    {|
def widths n =
  if n <= 0 then Nil
  else Cons (1 + (n * 7919) % 12) (widths (n - 1))

-- cost of a line of total width w against target 40
def lineCost w = let d = 40 - w in d * d

def fill ws =
  let rec go line ws2 = case ws2 of {
    Nil -> lineCost line;
    Cons w rest ->
      if line + w + 1 > 40
      then lineCost line + go w rest
      else go (line + w + 1) rest
  } in
  let rec start ws3 = case ws3 of {
    Nil -> 0;
    Cons w rest -> go w rest
  } in start ws

def main = fill (widths 600)
|}

(* primetest: modular exponentiation + Fermat witness loop. *)
let primetest =
  p "spectral" "primetest" "modular exponentiation, witness loops"
    {|
def mulmod a b m = (a * b) % m

def powmod b e m =
  let rec go acc base ex =
    if ex <= 0 then acc
    else if odd ex then go (mulmod acc base m) (mulmod base base m) (ex / 2)
    else go acc (mulmod base base m) (ex / 2)
  in go 1 (b % m) e

def fermat n =
  let rec try a =
    if a > 5 then True
    else if powmod a (n - 1) n /= 1 then False
    else try (a + 1)
  in if n <= 3 then True else try 2

def main = sum (map (\n -> if fermat n then 1 else 0) (enumFromTo 1000 1500))
|}

(* simple: relaxation sweeps over a 1-D "mesh" list. *)
let simple =
  p "spectral" "simple" "stencil relaxation sweeps over a mesh"
    {|
def mesh n = map (\i -> (i * 37) % 100) (enumFromTo 1 n)

def sweep xs = case xs of {
  Nil -> Nil;
  Cons a rest -> case rest of {
    Nil -> Cons a Nil;
    Cons b rest2 -> Cons ((a + b) / 2) (sweep rest)
  }
}

def iterateN k xs = if k <= 0 then xs else iterateN (k - 1) (sweep xs)

def main = sum (iterateN 12 (mesh 200))
|}

(* solid: interval/box intersection tests, branch-heavy arithmetic. *)
let solid =
  p "spectral" "solid" "box intersection census, branch-heavy"
    {|
data Box = Box Int Int Int Int

def overlap a b = case a of { Box ax ay aw ah ->
  case b of { Box bx by bw bh ->
    if ax > bx + bw then False
    else if bx > ax + aw then False
    else if ay > by + bh then False
    else if by > ay + ah then False
    else True } }

def boxes n =
  if n <= 0 then Nil
  else Cons (Box (n % 50) ((n * 3) % 50) (1 + n % 9) (1 + (n * 7) % 9))
            (boxes (n - 1))

def countPairs bs = case bs of {
  Nil -> 0;
  Cons b rest ->
    length (filter (\c -> overlap b c) rest) + countPairs rest
}

def main = countPairs (boxes 80)
|}

(* sphere: ray/sphere intersection fold, min-by local loop. *)
let sphere =
  p "spectral" "sphere" "closest-hit folds over a sphere list"
    {|
data Sph = Sph Int Int Int Int

def spheres n =
  if n <= 0 then Nil
  else Cons (Sph (n % 37) ((n * 5) % 41) ((n * 11) % 43) (1 + n % 7))
            (spheres (n - 1))

-- quadratic discriminant in fixed point; negative = miss
def hit ox oy s = case s of { Sph cx cy cz r ->
  let dx = cx - ox in
  let dy = cy - oy in
  let d2 = dx * dx + dy * dy in
  let rr = r * r + cz in
  if d2 <= rr then Just (d2 + cz) else Nothing }

def closest ox oy ss =
  let rec go best rest = case rest of {
    Nil -> best;
    Cons s more -> case hit ox oy s of {
      Nothing -> go best more;
      Just d -> go (min2 best d) more
    }
  } in go 99999 ss

def main =
  let ss = spheres 40 in
  sum (map (\i -> closest (i % 31) ((i * 13) % 37) ss) (enumFromTo 1 60))
|}

(* transform: algebraic term rewriting to a normal form. *)
let transform =
  p "spectral" "transform" "expression-tree rewriting passes"
    {|
data Exp = Lit Int | Add Exp Exp | Mul Exp Exp | Neg Exp

def build depth seed =
  if depth <= 0 then Lit (seed % 17)
  else if seed % 3 == 0
  then Add (build (depth - 1) (seed * 5 + 1)) (build (depth - 1) (seed * 7 + 2))
  else if seed % 3 == 1
  then Mul (build (depth - 1) (seed * 5 + 3)) (build (depth - 1) (seed * 7 + 4))
  else Neg (build (depth - 1) (seed * 5 + 5))

def simplify e = case e of {
  Lit n -> Lit n;
  Neg a ->
    let a2 = simplify a in
    case a2 of {
      Lit n -> Lit (0 - n);
      Neg b -> b;
      _ -> Neg a2
    };
  Add a b ->
    let a2 = simplify a in
    let b2 = simplify b in
    case a2 of {
      Lit x -> case b2 of { Lit y -> Lit (x + y); _ -> Add a2 b2 };
      _ -> Add a2 b2
    };
  Mul a b ->
    let a2 = simplify a in
    let b2 = simplify b in
    case a2 of {
      Lit x -> case b2 of { Lit y -> Lit (x * y); _ -> Mul a2 b2 };
      _ -> Mul a2 b2
    }
}

def value e = case e of {
  Lit n -> n;
  Add a b -> value a + value b;
  Mul a b -> value a * value b;
  Neg a -> 0 - value a
}

def main = value (simplify (build 10 42)) % 100003
|}

(* ================================================================== *)
(* real                                                                *)
(* ================================================================== *)

(* anna: a tiny strictness analyser (abstract interpreter). *)
let anna =
  p "real" "anna" "abstract interpretation over a program tree"
    {|
data Tm = Var Int | App2 Tm Tm | Lam2 Tm | IfZ Tm Tm Tm | Num Int

-- two-point domain: 0 = bottom (divergent), 1 = defined
def ameet a b = min2 a b
def ajoin a b = max2 a b

def aeval env t = case t of {
  Num n -> 1;
  Var i -> fromMaybe 0 (lookupList i env);
  Lam2 b -> 1;
  App2 f a -> ameet (aeval env f) (aeval env a);
  IfZ c t2 e2 -> ameet (aeval env c) (ajoin (aeval env t2) (aeval env e2))
}

def gen d seed =
  if d <= 0 then (if even seed then Num seed else Var (seed % 4))
  else if seed % 4 == 0 then App2 (gen (d-1) (seed*3+1)) (gen (d-1) (seed*5+2))
  else if seed % 4 == 1 then Lam2 (gen (d-1) (seed*7+3))
  else if seed % 4 == 2 then IfZ (gen (d-1) (seed*3+5))
                                 (gen (d-1) (seed*5+7))
                                 (gen (d-1) (seed*7+11))
  else Num (seed % 9)

def main =
  let env = [(0, 1), (1, 0), (2, 1), (3, 0)] in
  sum (map (\s -> aeval env (gen 8 s)) (enumFromTo 1 30))
|}

(* cacheprof: text statistics over a synthetic trace string. *)
let cacheprof =
  p "real" "cacheprof" "character-class counting over a trace string"
    {|
def isDigit c = ord c >= 48 && ord c <= 57
def isAlpha c = ord c >= 97 && ord c <= 122

def classify s =
  let n = strLen s in
  let rec go i digits alphas others =
    if i >= n then digits * 10000 + alphas * 100 + others
    else
      let c = strIdx s i in
      if isDigit c then go (i + 1) (digits + 1) alphas others
      else if isAlpha c then go (i + 1) digits (alphas + 1) others
      else go (i + 1) digits alphas (others + 1)
  in go 0 0 0 0

def main = classify "ld 0x4a3f r7, st 0x2211 r3, mv r1 r2, jmp label9; ld 0x9f r0"
|}

(* fem: assemble and relax a 1-D finite-element-ish system. *)
let fem =
  p "real" "fem" "element assembly and Jacobi relaxation"
    {|
def stiffness i = 2 + (i * 31) % 5
def load i = (i * 17) % 7

def assemble n = map (\i -> (stiffness i, load i)) (enumFromTo 1 n)

-- one Jacobi sweep: each unknown updated from its element pair and the
-- previous iterate's neighbour
def relax sys us = zipWith
  (\su u -> case su of { (s, f) -> (u + f) / s })
  sys us

def shift us = case us of { Nil -> Nil; Cons x rest -> append rest (Cons x Nil) }

def iter k sys us =
  if k <= 0 then sum us
  else iter (k - 1) sys (relax sys (shift us))

def main = iter 8 (assemble 120) (map (\i -> i % 13) (enumFromTo 1 120))
|}

(* gamteb: Monte-Carlo-ish particle transport with an LCG. *)
let gamteb =
  p "real" "gamteb" "pseudo-random particle transport loop"
    {|
def lcg s = (s * 1103515245 + 12345) % 2147483648

def walk seed energy scatters absorbed escaped =
  if energy <= 0 then (absorbed + 1, escaped)
  else if scatters > 30 then (absorbed, escaped + 1)
  else
    let s2 = lcg seed in
    if s2 % 100 < 30 then (absorbed + 1, escaped)
    else if s2 % 100 < 90
    then walk s2 (energy - 1 - (s2 % 3)) (scatters + 1) absorbed escaped
    else (absorbed, escaped + 1)

def particles n seed absorbed escaped =
  if n <= 0 then absorbed * 1000 + escaped
  else case walk seed 12 0 absorbed escaped of {
    (a, e) -> particles (n - 1) (lcg (seed + n)) a e
  }

def main = particles 300 7 0 0
|}

(* hpg: random tree generation and measurement. *)
let hpg =
  p "real" "hpg" "random program/tree generation and measuring"
    {|
data T = Leaf Int | Un T | Bin T T

def lcg s = (s * 48271) % 2147483647

def genT fuel seed =
  if fuel <= 1 then (Leaf (seed % 100), lcg seed)
  else if seed % 3 == 0 then
    case genT (fuel - 1) (lcg seed) of { (t, s2) -> (Un t, s2) }
  else
    case genT (fuel / 2) (lcg seed) of { (l, s2) ->
      case genT (fuel / 2) s2 of { (r, s3) -> (Bin l r, s3) } }

def sizeT t = case t of {
  Leaf n -> 1;
  Un a -> 1 + sizeT a;
  Bin a b -> 1 + sizeT a + sizeT b
}

def sumT t = case t of {
  Leaf n -> n;
  Un a -> sumT a;
  Bin a b -> sumT a + sumT b
}

def main =
  let rec go i seed acc =
    if i <= 0 then acc
    else case genT 40 seed of {
      (t, s2) -> go (i - 1) s2 (acc + sizeT t * 7 + sumT t)
    }
  in go 40 123 0
|}

(* parser: tokenize + parse + evaluate arithmetic over a string. *)
let parser =
  p "real" "parser" "recursive-descent arithmetic parsing from a string"
    {|
data Tok = TNum Int | TPlus | TTimes | TOpen | TClose

def isDigit c = ord c >= 48 && ord c <= 57

def tokenize s =
  let n = strLen s in
  let rec go i =
    if i >= n then Nil
    else
      let c = strIdx s i in
      if c == '+' then Cons TPlus (go (i + 1))
      else if c == '*' then Cons TTimes (go (i + 1))
      else if c == '(' then Cons TOpen (go (i + 1))
      else if c == ')' then Cons TClose (go (i + 1))
      else if isDigit c then
        let rec num j acc =
          if j >= n then (acc, j)
          else
            let d = strIdx s j in
            if isDigit d then num (j + 1) (acc * 10 + (ord d - 48))
            else (acc, j)
        in case num i 0 of { (v, j) -> Cons (TNum v) (go j) }
      else go (i + 1)
  in go 0

-- precedence climbing: parse prec ts, prec 0 = '+', prec 1 = '*',
-- prec 2 = atoms (self-recursive, so no mutual recursion needed)
def parse prec ts =
  if prec >= 2 then
    case ts of {
      Nil -> (0, Nil);
      Cons t more -> case t of {
        TNum v -> (v, more);
        TOpen -> case parse 0 more of {
          (v, rest) -> case rest of {
            Cons c rest2 -> (v, rest2);
            Nil -> (v, Nil)
          }
        };
        _ -> (0, more)
      }
    }
  else
    case parse (prec + 1) ts of {
      (v, rest) -> case rest of {
        Cons t more -> case t of {
          TPlus -> if prec == 0
                   then case parse 0 more of { (w, rest2) -> (v + w, rest2) }
                   else (v, rest);
          TTimes -> if prec == 1
                    then case parse 1 more of { (w, rest2) -> (v * w, rest2) }
                    else (v, rest);
          _ -> (v, rest)
        };
        Nil -> (v, Nil)
      }
    }

def main = fst (parse 0 (tokenize "(1+2)*3+4*(5+6)+7*8*(9+10)"))
|}

(* rsa: modexp-based encrypt/decrypt round trips. *)
let rsa =
  p "real" "rsa" "modular-exponentiation encrypt/decrypt round trips"
    {|
def mulmod a b m = (a * b) % m

def powmod b e m =
  let rec go acc base ex =
    if ex <= 0 then acc
    else if odd ex then go (mulmod acc base m) (mulmod base base m) (ex / 2)
    else go acc (mulmod base base m) (ex / 2)
  in go 1 (b % m) e

-- toy parameters: n = 3233 = 61*53, e = 17, d = 413
def encrypt m = powmod m 17 3233
def decrypt c = powmod c 413 3233

def main =
  sum (map (\m -> if decrypt (encrypt m) == m then 1 else 0)
           (enumFromTo 100 250))
|}

(* ================================================================== *)
(* shootout                                                            *)
(* ================================================================== *)

(* n-body: pure numeric inner loop over unboxed state — the paper's
   -100% headline comes from exactly this shape: the local stepper is
   contified and the Maybe/state constructors vanish. *)
let n_body =
  p "shootout" "n-body" "numeric leapfrog inner loop over scalar state"
    ~streams:true
    {|
-- 1-D two-body problem in fixed point; advance returns the updated
-- (position, velocity) through a Step-style result that join points
-- erase completely.
def advance x v =
  let f = 0 - x / 8 in
  Yield (x + v) (v + f)

def steps n =
  let rec go i x v acc =
    if i >= n then acc
    else case advance x v of {
      Yield x2 v2 -> go (i + 1) x2 v2 (acc + abs x2);
      Done -> acc
    }
  in go 0 1000 0 0

def main = steps 2000 % 1000003
|}

(* k-nucleotide: count k-mers with a fused filter/count pipeline. *)
let k_nucleotide =
  p "shootout" "k-nucleotide" "k-mer counting via fused stream pipeline"
    ~streams:true
    {|
def lcg s = (s * 48271) % 2147483647

-- synthetic genome: 0..3 per position, from the LCG
def base i = (lcg (i * 2654435761)) % 4

-- count occurrences of a 3-mer code in positions [0..n)
def countKmer n code =
  sSum (sMap (\x -> 1)
    (sFilter (\i -> base i * 16 + base (i+1) * 4 + base (i+2) == code)
      (sFromTo 0 (n - 3))))

def main =
  let n = 600 in
  countKmer n 27 * 10000 + countKmer n 9 * 100 + countKmer n 0
|}

(* spectral-norm: A-times-v products via nested fused loops. *)
let spectral_norm =
  p "shootout" "spectral-norm" "matrix-vector products via nested loops"
    ~streams:true
    {|
def aij i j = 1000 / ((i + j) * (i + j + 1) / 2 + i + 1)

def av n i = sSum (sMap (\j -> aij i j) (sFromTo 0 (n - 1)))

def atv n i = sSum (sMap (\j -> aij j i) (sFromTo 0 (n - 1)))

def main =
  let n = 60 in
  sSum (sMap (\i -> av n i * atv n i % 10007) (sFromTo 0 (n - 1))) % 1000003
|}

(* queens: spectral classic — n-queens via list search. *)
let queens =
  p "spectral" "queens" "n-queens backtracking over lists"
    {|
def safe q d placed = case placed of {
  Nil -> True;
  Cons pq rest ->
    if pq == q then False
    else if pq == q + d then False
    else if pq == q - d then False
    else safe q (d + 1) rest
}

def count n placed row =
  if row > n then 1
  else
    let rec try q acc =
      if q > n then acc
      else if safe q 1 placed
      then try (q + 1) (acc + count n (Cons q placed) (row + 1))
      else try (q + 1) acc
    in try 1 0

def main = count 6 Nil 1
|}

(* cichelli: spectral — perfect-hash search style: try offsets. *)
let cichelli =
  p "spectral" "cichelli" "perfect-hash offset search"
    {|
def keys = [3, 17, 24, 9, 12, 5, 20]

def hash off k = (k * 7 + off) % 16

def collides off ks seen = case ks of {
  Nil -> False;
  Cons k rest ->
    let h = hash off k in
    if elem h seen then True else collides off rest (Cons h seen)
}

def search off =
  if off > 40 then 0 - 1
  else if collides off keys Nil then search (off + 1)
  else off

def main = search 0
|}

(* wheel-sieve: spectral — primes via trial division over a lazy-ish list. *)
let wheel_sieve =
  p "spectral" "wheel-sieve" "prime sieve by filtering multiples"
    {|
def sieve xs = case xs of {
  Nil -> Nil;
  Cons x rest -> Cons x (sieve (filter (\y -> y % x /= 0) rest))
}

def main = sum (take 25 (sieve (enumFromTo 2 200)))
|}

(* boyer: spectral — rewriting to normal form, tautology-checker style. *)
let boyer =
  p "spectral" "boyer" "term rewriting to a boolean normal form"
    {|
data Term = TTrue | TFalse | TIf Term Term Term | TVar2 Int

def rewriteT t = case t of {
  TTrue -> TTrue;
  TFalse -> TFalse;
  TVar2 i -> TVar2 i;
  TIf c a b ->
    let c2 = rewriteT c in
    case c2 of {
      TTrue -> rewriteT a;
      TFalse -> rewriteT b;
      _ -> TIf c2 (rewriteT a) (rewriteT b)
    }
}

def genTerm d seed =
  if d <= 0 then (if seed % 3 == 0 then TTrue
                  else if seed % 3 == 1 then TFalse
                  else TVar2 (seed % 5))
  else TIf (genTerm (d - 1) (seed * 3 + 1))
           (genTerm (d - 1) (seed * 5 + 2))
           (genTerm (d - 1) (seed * 7 + 3))

def sizeT t = case t of {
  TTrue -> 1;
  TFalse -> 1;
  TVar2 i -> 1;
  TIf a b c -> 1 + sizeT a + sizeT b + sizeT c
}

def main = sum (map (\s -> sizeT (rewriteT (genTerm 7 s))) (enumFromTo 1 8))
|}

(* compress: real — run-length encoding of a synthetic string. *)
let compress =
  p "real" "compress" "run-length encoding over a string"
    {|
def gen i = chr (97 + ((i * i) / 7) % 4)

def rle n =
  let rec go i cur count acc =
    if i >= n then acc + count
    else
      let c = gen i in
      if c == cur then go (i + 1) cur (count + 1) acc
      else go (i + 1) c 1 (acc + count * 2 + 1)
  in go 1 (gen 0) 1 0

def main = rle 500
|}

(* infer: real — a miniature type inferencer over expression trees. *)
let infer_bench =
  p "real" "infer" "unification-free type checking of a term tree"
    {|
data Ty2 = TInt2 | TBool2 | TFun2 Ty2 Ty2 | TBad

def tyEq a b = case a of {
  TInt2 -> (case b of { TInt2 -> True; _ -> False });
  TBool2 -> (case b of { TBool2 -> True; _ -> False });
  TFun2 x y -> (case b of {
    TFun2 u v -> tyEq x u && tyEq y v;
    _ -> False });
  TBad -> False
}

data Tm2 = Num2 Int | Bool2 | Add2 Tm2 Tm2 | If2 Tm2 Tm2 Tm2 | Lam3 Tm2 | App3 Tm2 Tm2

def check t = case t of {
  Num2 n -> TInt2;
  Bool2 -> TBool2;
  Add2 a b ->
    if tyEq (check a) TInt2 && tyEq (check b) TInt2 then TInt2 else TBad;
  If2 c a b ->
    let ta = check a in
    if tyEq (check c) TBool2 && tyEq ta (check b) then ta else TBad;
  Lam3 b -> TFun2 TInt2 (check b);
  App3 f a -> case check f of {
    TFun2 x y -> if tyEq (check a) x then y else TBad;
    _ -> TBad
  }
}

def gen2 d seed =
  if d <= 0 then (if even seed then Num2 seed else Bool2)
  else if seed % 4 == 0 then Add2 (gen2 (d-1) (seed*3+1)) (gen2 (d-1) (seed*5+2))
  else if seed % 4 == 1 then If2 Bool2 (gen2 (d-1) (seed*3+5)) (gen2 (d-1) (seed*7+1))
  else if seed % 4 == 2 then Lam3 (gen2 (d-1) (seed*5+3))
  else App3 (Lam3 (gen2 (d-1) (seed*3+7))) (Num2 seed)

def score ty = case ty of { TBad -> 0; TInt2 -> 1; TBool2 -> 2; TFun2 a b -> 3 }

def main = sum (map (\s -> score (check (gen2 7 s))) (enumFromTo 1 20))
|}

(* fulsom: real — solid modelling octree-style subdivision. *)
let fulsom =
  p "real" "fulsom" "recursive space subdivision census"
    {|
def inside x y r = x * x + y * y <= r

def census x y size depth =
  if depth <= 0 then (if inside x y 5000 then 1 else 0)
  else
    let h = size / 2 in
    census x y h (depth - 1)
    + census (x + h) y h (depth - 1)
    + census x (y + h) h (depth - 1)
    + census (x + h) (y + h) h (depth - 1)

def main = census 0 0 64 6
|}

(* fannkuch: shootout — permutation flipping over small lists. *)
let fannkuch =
  p "shootout" "fannkuch" "pancake flipping over permutations"
    {|
def flip_ n xs =
  let pre = reverse (take n xs) in
  append pre (drop n xs)

def countFlips xs acc = case xs of {
  Nil -> acc;
  Cons h rest -> if h == 1 then acc else countFlips (flip_ h xs) (acc + 1)
}

def rotate n xs =
  if n <= 0 then xs
  else case xs of {
    Nil -> Nil;
    Cons h rest -> rotate (n - 1) (append rest (Cons h Nil))
  }

def main =
  let perms = map (\i -> rotate i [1,2,3,4,5,6]) (enumFromTo 0 5) in
  sum (map (\p -> countFlips p 0) perms)
|}

(* ================================================================== *)
(* The suite                                                           *)
(* ================================================================== *)

let spectral =
  [
    fibheaps; ida; nucleic2; para; primetest; simple; solid; sphere;
    transform; queens; cichelli; wheel_sieve; boyer;
  ]

let real = [ anna; cacheprof; fem; gamteb; hpg; parser; rsa; compress;
             infer_bench; fulsom ]

let shootout = [ n_body; k_nucleotide; spectral_norm; fannkuch ]
let all = spectral @ real @ shootout

(** Compile a benchmark program to linted core. *)
let compile (pr : program) : Fj_core.Datacon.env * Fj_core.Syntax.expr =
  if pr.uses_streams then
    Fj_surface.Prelude.compile (Fj_fusion.Streams.source ^ "\n" ^ pr.source)
  else Fj_surface.Prelude.compile pr.source
