(** Shared helpers for the test suites. *)

open Fj_core

let dc = Datacon.builtins

(** Assert that [e] lints (in the builtin datatype env unless given)
    and return its type. *)
let lints ?(env = dc) e =
  match Lint.lint_result env e with
  | Ok ty -> ty
  | Error err ->
      Alcotest.failf "expected the term to lint, got: %a@.term: %a"
        Lint.pp_error err Pretty.pp e

(** Assert that [e] does NOT lint. *)
let fails_lint ?(env = dc) e =
  match Lint.lint_result env e with
  | Ok ty ->
      Alcotest.failf "expected a lint failure, got type %a@.term: %a" Types.pp
        ty Pretty.pp e
  | Error _ -> ()

(** Run to a deep value tree (call-by-need). *)
let run ?(fuel = 2_000_000) e =
  match Eval.run_deep ~fuel e with
  | t, s -> (t, s)
  | exception Eval.Stuck m -> Alcotest.failf "evaluation stuck: %s" m
  | exception Eval.Out_of_fuel -> Alcotest.failf "evaluation ran out of fuel"

(** Assert both expressions evaluate to the same (deep) value. *)
let same_result ?fuel a b =
  let ta, _ = run ?fuel a in
  let tb, _ = run ?fuel b in
  if not (Eval.equal_tree ta tb) then
    Alcotest.failf "results differ: %a vs %a@.left: %a@.right: %a"
      Eval.pp_tree ta Eval.pp_tree tb Pretty.pp a Pretty.pp b

(** Assert the result tree of [e] equals the expected rendering. *)
let result_is ?fuel expected e =
  let t, _ = run ?fuel e in
  let got = Fmt.str "%a" Eval.pp_tree t in
  Alcotest.(check string) "result" expected got

let tree_testable =
  Alcotest.testable Eval.pp_tree Eval.equal_tree

let ty_testable = Alcotest.testable Types.pp Types.equal

let test name f = Alcotest.test_case name `Quick f

(** Quick alias: an optimisation preserves lint and meaning. *)
let preserves ?(env = dc) name (pass : Syntax.expr -> Syntax.expr) e =
  ignore name;
  let _ = lints ~env e in
  let e' = pass e in
  let _ = lints ~env e' in
  same_result e e'
