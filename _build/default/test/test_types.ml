(** Unit tests for {!Fj_core.Types}: substitution, alpha-equivalence,
    instantiation, and the join-point type constructor. *)

open Fj_core
open Util

let a () = Ident.fresh "a"
let b () = Ident.fresh "b"

let alpha_equal_forall () =
  let x = a () and y = b () in
  let t1 = Types.Forall (x, Types.Arrow (Types.Var x, Types.Var x)) in
  let t2 = Types.Forall (y, Types.Arrow (Types.Var y, Types.Var y)) in
  Alcotest.(check bool) "alpha-equal foralls" true (Types.equal t1 t2)

let alpha_distinguishes_structure () =
  let x = a () and y = b () in
  let t1 = Types.Forall (x, Types.Forall (y, Types.Arrow (Types.Var x, Types.Var y))) in
  let t2 = Types.Forall (x, Types.Forall (y, Types.Arrow (Types.Var y, Types.Var x))) in
  Alcotest.(check bool) "binder order matters" false (Types.equal t1 t2)

let free_vs_bound () =
  let x = a () in
  let free = Types.Arrow (Types.Var x, Types.int) in
  Alcotest.(check bool) "free var is free" true (Types.occurs x free);
  let bound = Types.Forall (x, Types.Arrow (Types.Var x, Types.int)) in
  Alcotest.(check bool) "bound var is not free" false (Types.occurs x bound)

let subst_avoids_capture () =
  let x = a () and y = b () in
  (* (forall y. x -> y){y/x} must not capture: result is
     forall y'. y -> y'. *)
  let t = Types.Forall (y, Types.Arrow (Types.Var x, Types.Var y)) in
  let t' = Types.subst1 x (Types.Var y) t in
  match t' with
  | Types.Forall (y', Types.Arrow (Types.Var fy, Types.Var vy')) ->
      Alcotest.(check bool) "free y survives" true (Ident.equal fy y);
      Alcotest.(check bool) "binder renamed apart" false (Ident.equal y' y);
      Alcotest.(check bool) "bound occurrence follows binder" true
        (Ident.equal vy' y')
  | _ -> Alcotest.failf "unexpected shape: %a" Types.pp t'

let subst_identity_on_closed () =
  let t = Types.Arrow (Types.int, Types.apps (Types.Con "List") [ Types.bool ]) in
  Alcotest.check ty_testable "closed type unchanged"
    t
    (Types.subst1 (a ()) Types.int t)

let instantiate_peels () =
  let x = a () and y = b () in
  let t =
    Types.foralls [ x; y ] (Types.Arrow (Types.Var x, Types.Var y))
  in
  let t' = Types.instantiate t [ Types.int; Types.bool ] in
  Alcotest.check ty_testable "instantiated"
    (Types.Arrow (Types.int, Types.bool))
    t'

let instantiate_too_many () =
  Alcotest.check_raises "not a forall"
    (Invalid_argument "Types.instantiate: not a forall") (fun () ->
      ignore (Types.instantiate Types.int [ Types.int ]))

let split_roundtrip () =
  let x = a () in
  let t =
    Types.foralls [ x ]
      (Types.arrows [ Types.int; Types.bool ] (Types.Var x))
  in
  let vars, body = Types.split_foralls t in
  Alcotest.(check int) "one quantifier" 1 (List.length vars);
  let args, res = Types.split_arrows body in
  Alcotest.(check int) "two arrows" 2 (List.length args);
  Alcotest.check ty_testable "result is the var" (Types.Var (List.hd vars)) res

let bottom_is_bottom () =
  Alcotest.(check bool) "fresh bottom recognised" true
    (Types.is_bottom (Types.bottom ()));
  Alcotest.(check bool) "Int is not bottom" false (Types.is_bottom Types.int);
  (* forall a. a -> a is not bottom *)
  let x = a () in
  Alcotest.(check bool) "identity type is not bottom" false
    (Types.is_bottom (Types.Forall (x, Types.Arrow (Types.Var x, Types.Var x))))

let join_point_ty_shape () =
  let x = a () in
  let t = Types.join_point_ty [ x ] [ Types.Var x; Types.int ] in
  let vars, body = Types.split_foralls t in
  Alcotest.(check int) "one quantifier before args" 1 (List.length vars);
  let args, res = Types.split_arrows body in
  Alcotest.(check int) "two value args" 2 (List.length args);
  Alcotest.(check bool) "returns bottom" true (Types.is_bottom res)

let equal_bottoms () =
  Alcotest.(check bool) "two fresh bottoms are alpha-equal" true
    (Types.equal (Types.bottom ()) (Types.bottom ()))

let pp_roundtrip_shapes () =
  (* The printer should parenthesise correctly (spot checks). *)
  let x = a () in
  let t =
    Types.Arrow
      (Types.Arrow (Types.int, Types.bool), Types.apps (Types.Con "List") [ Types.Var x ])
  in
  let s = Types.to_string t in
  Alcotest.(check bool) "nested arrow parenthesised" true
    (String.length s > 0 && String.contains s '(')

let free_vars_app () =
  let x = a () and y = b () in
  let t = Types.apps (Types.Con "Pair") [ Types.Var x; Types.Var y ] in
  Alcotest.(check int) "two free vars" 2
    (Ident.Set.cardinal (Types.free_vars t))

let tests =
  [
    test "alpha-equal foralls" alpha_equal_forall;
    test "alpha distinguishes structure" alpha_distinguishes_structure;
    test "free vs bound" free_vs_bound;
    test "subst avoids capture" subst_avoids_capture;
    test "subst identity on closed" subst_identity_on_closed;
    test "instantiate peels quantifiers" instantiate_peels;
    test "instantiate of non-forall raises" instantiate_too_many;
    test "split/rebuild roundtrip" split_roundtrip;
    test "bottom recognition" bottom_is_bottom;
    test "join point type shape" join_point_ty_shape;
    test "bottoms are alpha-equal" equal_bottoms;
    test "printer parenthesises" pp_roundtrip_shapes;
    test "free vars of application" free_vars_app;
  ]
