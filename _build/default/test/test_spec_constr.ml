(** Tests for {!Fj_core.Spec_constr} — call-pattern specialisation of
    recursive join points (the Sec. 9 stream-fusion ingredient). *)

open Fj_core
open Syntax
open Util
module B = Builder

let spec e =
  let _ = lints e in
  let e' = Spec_constr.run e in
  let _ = lints e' in
  same_result e e';
  e'

(* join rec go (st : Pair Int Int) = case st of (a,b) ->
     if a > 5 then b else jump go (MkPair (a+1) (b+a))
   in jump go (MkPair 0 0) *)
let pair_loop () =
  let pair_ty = B.pair_ty Types.int Types.int in
  let st = mk_var "st" pair_ty in
  let jv = mk_join_var "go" [] [ st ] in
  let jump args = Jump (jv, [], args, Types.int) in
  let rhs =
    B.case (Var st)
      [
        B.alt_con "MkPair" [ Types.int; Types.int ] [ "a"; "b" ] (fun bs ->
            match bs with
            | [ a; b ] ->
                B.if_ (B.gt a (B.int 5)) b
                  (jump [ B.pair Types.int Types.int (B.add a (B.int 1)) (B.add b a) ])
            | _ -> assert false);
      ]
  in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ st ]; j_rhs = rhs } in
  Join (JRec [ defn ], jump [ B.pair Types.int Types.int (B.int 0) (B.int 0) ])

let specialises_pair_state () =
  let e = pair_loop () in
  let e' = spec e in
  (* The loop must now have two Int parameters. *)
  (match e' with
  | Join (JRec [ d ], _) ->
      Alcotest.(check int) "two parameters" 2 (List.length d.j_params);
      List.iter
        (fun (p : var) ->
          Alcotest.check ty_testable "Int param" Types.int p.v_ty)
        d.j_params
  | _ -> Alcotest.failf "unexpected shape: %a" Pretty.pp e');
  (* After a simplifier round the rebuilt pair cancels: zero alloc. *)
  let e'' = Simplify.simplify (Simplify.default_config ()) e' in
  let _, s = run e'' in
  Alcotest.(check int) "no allocation" 0 s.Eval.words

let mixed_constructors_block () =
  (* Jumps passing different constructors must not specialise. *)
  let m_ty = B.maybe_ty Types.int in
  let st = mk_var "st" m_ty in
  let jv = mk_join_var "go" [] [ st ] in
  let jump args = Jump (jv, [], args, Types.int) in
  let rhs =
    B.case (Var st)
      [
        B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs ->
            B.if_ (B.gt (List.hd xs) (B.int 3)) (List.hd xs)
              (jump [ B.nothing Types.int ]));
        B.alt_con "Nothing" [ Types.int ] [] (fun _ ->
            jump [ B.just Types.int (B.int 9) ]);
      ]
  in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ st ]; j_rhs = rhs } in
  let e = Join (JRec [ defn ], jump [ B.just Types.int (B.int 0) ]) in
  let e' = spec e in
  match e' with
  | Join (JRec [ d ], _) ->
      Alcotest.(check int) "parameter untouched" 1 (List.length d.j_params)
  | _ -> Alcotest.failf "unexpected shape: %a" Pretty.pp e'

let opaque_argument_blocks () =
  (* A jump passing an opaque variable (no visible constructor) blocks
     specialisation. *)
  let pair_ty = B.pair_ty Types.int Types.int in
  let e =
    B.lam "p0" pair_ty (fun p0 ->
        let st = mk_var "st" pair_ty in
        let jv = mk_join_var "go" [] [ st ] in
        let jump args = Jump (jv, [], args, Types.int) in
        let rhs =
          B.case (Var st)
            [
              B.alt_con "MkPair" [ Types.int; Types.int ] [ "a"; "b" ]
                (fun bs -> B.add (List.hd bs) (List.nth bs 1));
            ]
        in
        let defn =
          { j_var = jv; j_tyvars = []; j_params = [ st ]; j_rhs = rhs }
        in
        Join (JRec [ defn ], jump [ p0 ]))
  in
  let e' = spec e in
  match e' with
  | Lam (_, Join (JRec [ d ], _)) ->
      Alcotest.(check int) "parameter untouched" 1 (List.length d.j_params)
  | _ -> Alcotest.failf "unexpected shape: %a" Pretty.pp e'

let looks_through_let_bound_cons () =
  (* jump go st where let st = MkPair a b is in scope: the binding is
     looked through. *)
  let pair_ty = B.pair_ty Types.int Types.int in
  let st_p = mk_var "st" pair_ty in
  let jv = mk_join_var "go" [] [ st_p ] in
  let jump args = Jump (jv, [], args, Types.int) in
  let rhs =
    B.case (Var st_p)
      [
        B.alt_con "MkPair" [ Types.int; Types.int ] [ "a"; "b" ] (fun bs ->
            match bs with
            | [ a; b ] ->
                B.if_ (B.gt a (B.int 3)) b
                  (B.let_ "next"
                     (B.pair Types.int Types.int (B.add a (B.int 1)) b)
                     (fun next -> jump [ next ]))
            | _ -> assert false);
      ]
  in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ st_p ]; j_rhs = rhs } in
  let e =
    Join (JRec [ defn ], jump [ B.pair Types.int Types.int (B.int 0) (B.int 7) ])
  in
  let e' = spec e in
  match e' with
  | Join (JRec [ d ], _) ->
      Alcotest.(check int) "specialised through let" 2
        (List.length d.j_params)
  | _ -> Alcotest.failf "unexpected shape: %a" Pretty.pp e'

let end_to_end_zip_state_gone () =
  (* The full pipeline on a fused zip: zero allocation. *)
  let denv, core =
    Fj_fusion.Streams.compile_pipeline
      (Fj_fusion.Streams.dot_product_skipless 50)
  in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
      ~inline_threshold:300 ()
  in
  let e = Pipeline.run cfg core in
  let _ = lints ~env:denv e in
  let t0, _ = run core in
  let t, s = run e in
  Alcotest.check tree_testable "same result" t0 t;
  Alcotest.(check int) "pair state specialised away" 0 s.Eval.words

let without_spec_constr_pairs_remain () =
  let denv, core =
    Fj_fusion.Streams.compile_pipeline
      (Fj_fusion.Streams.dot_product_skipless 50)
  in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~spec_constr:false
      ~datacons:denv ~inline_threshold:300 ()
  in
  let e = Pipeline.run cfg core in
  let _, s = run e in
  Alcotest.(check bool)
    (Fmt.str "pairs allocate without SpecConstr (%d > 0)" s.Eval.words)
    true (s.Eval.words > 0)

let tests =
  [
    test "specialises pair-state loops" specialises_pair_state;
    test "mixed constructors block" mixed_constructors_block;
    test "opaque arguments block" opaque_argument_blocks;
    test "looks through let-bound constructors" looks_through_let_bound_cons;
    test "end-to-end: fused zip allocates nothing" end_to_end_zip_state_gone;
    test "ablation: pairs remain without SpecConstr"
      without_spec_constr_pairs_remain;
  ]
