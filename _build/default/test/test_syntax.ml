(** Unit tests for {!Fj_core.Syntax} and {!Fj_core.Subst}: free
    variables, sizes, and capture-avoiding substitution over terms. *)

open Fj_core
open Syntax
open Util
module B = Builder

let free_vars_lambda () =
  let free = mk_var "free" Types.int in
  let e = B.lam "x" Types.int (fun x -> B.add x (Var free)) in
  let fvs = free_vars e in
  Alcotest.(check int) "one free var" 1 (Ident.Set.cardinal fvs);
  Alcotest.(check bool) "it is the free one" true
    (Ident.Set.mem free.v_name fvs)

let free_vars_join () =
  (* Labels are tracked as free variables of jumps. *)
  let jv = mk_join_var "j" [] [ mk_var "x" Types.int ] in
  let jump = Jump (jv, [], [ B.int 1 ], Types.int) in
  Alcotest.(check bool) "jump's label is free" true
    (Ident.Set.mem jv.v_name (free_vars jump));
  (* ... and bound by the enclosing join. *)
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> List.hd xs)
      (fun jmp -> jmp [ B.int 1 ] Types.int)
  in
  Alcotest.(check int) "closed join binding" 0
    (Ident.Set.cardinal (free_vars e))

let free_vars_case_binders () =
  let e =
    B.case (B.just Types.int (B.int 1))
      [
        B.alt_con "Just" [ Types.int ] [ "y" ] (fun ys -> List.hd ys);
        B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
      ]
  in
  Alcotest.(check int) "pattern binders are bound" 0
    (Ident.Set.cardinal (free_vars e))

let free_vars_letrec () =
  let e =
    B.letrec1 "f"
      (Types.Arrow (Types.int, Types.int))
      (fun f -> B.lam "n" Types.int (fun n -> B.app f n))
      (fun f -> B.app f (B.int 3))
  in
  Alcotest.(check int) "recursive binder not free" 0
    (Ident.Set.cardinal (free_vars e))

let size_counts () =
  let e = B.add (B.int 1) (B.int 2) in
  Alcotest.(check int) "prim + two literals" 3 (size e)

let trivial_things () =
  Alcotest.(check bool) "literal trivial" true (is_trivial (B.int 1));
  Alcotest.(check bool) "nullary con trivial" true (is_trivial B.true_);
  Alcotest.(check bool) "app not trivial" false
    (is_trivial (B.add (B.int 1) (B.int 2)))

let whnf_things () =
  Alcotest.(check bool) "lam is whnf" true
    (is_whnf (B.lam "x" Types.int (fun x -> x)));
  Alcotest.(check bool) "con is whnf" true (is_whnf (B.just Types.int (B.int 1)));
  Alcotest.(check bool) "case is not whnf" false
    (is_whnf (B.if_ B.true_ (B.int 1) (B.int 2)))

let ty_of_spine () =
  let f =
    B.lam "x" Types.int (fun x -> B.lam "y" Types.bool (fun _ -> x))
  in
  Alcotest.check ty_testable "application type" Types.bool
    (ty_of
       (App
          ( App
              ( B.lam "x" Types.int (fun _ ->
                    B.lam "y" Types.bool (fun y -> y)),
                B.int 1 ),
            B.true_ )));
  Alcotest.check ty_testable "lambda type"
    (Types.Arrow (Types.int, Types.Arrow (Types.bool, Types.int)))
    (ty_of f)

let subst_single () =
  let x = mk_var "x" Types.int in
  let body = B.add (Var x) (Var x) in
  let e = Subst.beta_reduce x (B.int 21) body in
  result_is "42" e

let subst_avoids_capture () =
  (* (\y. x + y){y-expr/x} where the substituted expression mentions a
     DIFFERENT y: uniques make capture impossible by construction, but
     freshening must also rename the binder. *)
  let x = mk_var "x" Types.int in
  let outer_y = mk_var "y" Types.int in
  let inner = B.lam "y" Types.int (fun y -> B.add (Var x) y) in
  let e = Subst.expr (Subst.add_term x.v_name (Var outer_y) Subst.empty) inner in
  match e with
  | Lam (y', Prim (_, [ Var vx; Var vy ])) ->
      Alcotest.(check bool) "x became outer y" true
        (Ident.equal vx.v_name outer_y.v_name);
      Alcotest.(check bool) "binder occurrence follows clone" true
        (Ident.equal vy.v_name y'.v_name);
      Alcotest.(check bool) "binder was renamed apart from outer y" false
        (Ident.equal y'.v_name outer_y.v_name)
  | _ -> Alcotest.failf "unexpected shape: %a" Pretty.pp e

let freshen_is_alpha_copy () =
  let e =
    B.let_ "x" (B.int 1) (fun x ->
        B.lam "y" Types.int (fun y -> B.add x y))
  in
  let e' = Subst.freshen e in
  (* Same meaning... *)
  same_result (App (e, B.int 2)) (App (e', B.int 2));
  (* ...but disjoint binders. *)
  let binders expr =
    let rec go acc = function
      | Lam (x, b) -> go (x.v_name :: acc) b
      | Let (NonRec (x, rhs), b) -> go (go (x.v_name :: acc) rhs) b
      | Prim (_, es) -> List.fold_left go acc es
      | _ -> acc
    in
    go [] expr
  in
  let b1 = binders e and b2 = binders e' in
  List.iter
    (fun i1 ->
      List.iter
        (fun i2 ->
          Alcotest.(check bool) "no shared binder" false (Ident.equal i1 i2))
        b2)
    b1

let jump_label_subst () =
  (* Substitution must rename jump targets when the join binder is
     cloned. *)
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> B.add (List.hd xs) (B.int 1))
      (fun jmp -> jmp [ B.int 41 ] Types.int)
  in
  let e' = Subst.freshen e in
  let _ = lints e' in
  same_result e e'

let collect_args_spine () =
  let f = mk_var "f" (Types.Arrow (Types.int, Types.Arrow (Types.int, Types.int))) in
  let e = B.app2 (Var f) (B.int 1) (B.int 2) in
  let head, args = collect_args e in
  (match head with
  | Var v -> Alcotest.(check bool) "head is f" true (var_equal v f)
  | _ -> Alcotest.fail "wrong head");
  Alcotest.(check int) "two args" 2 (List.length args)

let tests =
  [
    test "free vars under lambda" free_vars_lambda;
    test "free vars of jumps and joins" free_vars_join;
    test "case binders are bound" free_vars_case_binders;
    test "letrec binder not free" free_vars_letrec;
    test "size counts nodes" size_counts;
    test "trivial expressions" trivial_things;
    test "whnf expressions" whnf_things;
    test "ty_of computes types" ty_of_spine;
    test "substitution evaluates" subst_single;
    test "substitution avoids capture" subst_avoids_capture;
    test "freshen is an alpha copy" freshen_is_alpha_copy;
    test "freshen renames jump labels" jump_label_subst;
    test "collect_args decomposes spines" collect_args_spine;
  ]
