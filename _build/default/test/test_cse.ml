(** Tests for {!Fj_core.Cse} — the Sec. 8 direct-style CSE example. *)

open Fj_core
open Syntax
open Util
module B = Builder

let cse e =
  let _ = lints e in
  let e' = Cse.run e in
  let _ = lints e' in
  same_result e e';
  e'

(* The paper's example: in [f (g x) (g x)] the common sub-expression is
   easy to see in direct style. We bind the first occurrence so there
   is a sharable witness. *)
let f_gx_gx () =
  let i2i = Types.Arrow (Types.int, Types.int) in
  let e =
    B.lam "f" (Types.arrows [ Types.int; Types.int ] Types.int) (fun f ->
        B.lam "g" i2i (fun g ->
            B.lam "x" Types.int (fun x ->
                B.let_ "a" (B.app g x) (fun a ->
                    B.app2 f a (B.app g x)))))
  in
  let e' = cse e in
  (* The second [g x] must have become a reference to [a]: exactly one
     call with head [g] remains (in the let's right-hand side). *)
  let rec count_g_calls = function
    | App (Var g, _) when Ident.name g.v_name = "g" -> 1
    | App (f, a) -> count_g_calls f + count_g_calls a
    | Lam (_, b) -> count_g_calls b
    | Let ((NonRec (_, r) | Strict (_, r)), b) ->
        count_g_calls r + count_g_calls b
    | _ -> 0
  in
  Alcotest.(check int) "only one g x call remains" 1 (count_g_calls e')

let shares_primops () =
  let e =
    B.lam "x" Types.int (fun x ->
        B.let_ "a" (B.mul x x) (fun a -> B.add a (B.mul x x)))
  in
  match cse e with
  | Lam (_, Let (NonRec (a, _), Prim (Primop.Add, [ Var u; Var v ]))) ->
      Alcotest.(check bool) "both operands are the binder" true
        (var_equal u a && var_equal v a)
  | e' -> Alcotest.failf "unexpected shape: %a" Pretty.pp e'

let shares_constructors () =
  let e =
    B.lam "x" Types.int (fun x ->
        B.let_ "p" (B.just Types.int x) (fun p ->
            B.pair (B.maybe_ty Types.int) (B.maybe_ty Types.int) p
              (B.just Types.int x)))
  in
  match cse e with
  | Lam (_, Let (NonRec (p, _), Con (_, _, [ Var u; Var v ]))) ->
      Alcotest.(check bool) "constructor shared" true
        (var_equal u p && var_equal v p)
  | e' -> Alcotest.failf "unexpected shape: %a" Pretty.pp e'

let no_sharing_across_branches () =
  (* Bindings in one branch must not be visible in a sibling branch. *)
  let e =
    B.lam "x" Types.int (fun x ->
        B.if_ B.true_
          (B.let_ "a" (B.mul x x) (fun a -> a))
          (B.mul x x))
  in
  let e' = cse e in
  (* The second branch's [x * x] must be untouched (no [a] in scope). *)
  match e' with
  | Lam (_, Case (_, alts)) ->
      let false_rhs = (List.nth alts 1).alt_rhs in
      (match false_rhs with
      | Prim (Primop.Mul, _) -> ()
      | other ->
          Alcotest.failf "sibling branch corrupted: %a" Pretty.pp other)
  | e' -> Alcotest.failf "unexpected shape: %a" Pretty.pp e'

let distinct_expressions_untouched () =
  let e =
    B.lam "x" Types.int (fun x ->
        B.let_ "a" (B.mul x x) (fun a -> B.add a (B.mul x (B.int 2))))
  in
  match cse e with
  | Lam (_, Let (_, Prim (Primop.Add, [ Var _; Prim (Primop.Mul, _) ]))) -> ()
  | e' -> Alcotest.failf "unexpected shape: %a" Pretty.pp e'

let reduces_allocation () =
  (* Two identical constructor bindings: the second is shared away and
     its allocation disappears after simplification. *)
  let e =
    B.let_ "p" (B.just Types.int (B.int 1)) (fun p ->
        B.let_ "q" (B.just Types.int (B.int 1)) (fun q ->
            B.pair (B.maybe_ty Types.int) (B.maybe_ty Types.int) p q))
  in
  let e' = Simplify.simplify (Simplify.default_config ()) (Cse.run e) in
  let _, s = run e' in
  (* one Just (2 words) + one Pair (3 words) *)
  Alcotest.(check int) "one Just allocation" 5 s.Eval.words

let tests =
  [
    test "the paper's f (g x) (g x)" f_gx_gx;
    test "shares primop computations" shares_primops;
    test "shares constructors" shares_constructors;
    test "no sharing across sibling branches" no_sharing_across_branches;
    test "distinct expressions untouched" distinct_expressions_untouched;
    test "sharing reduces allocation" reduces_allocation;
  ]
