(* Quick smoke exercise of the core pipeline on the paper's find/any
   example (Sec. 5): contify the local loop, inline find into any,
   case-of-case with join points; check Lint at every step and compare
   evaluation results and allocation counts. Run manually:
   dune exec test/smoke.exe *)

open Fj_core
open Builder

let dcenv = Datacon.builtins

(* find : (Int -> Bool) -> List Int -> Maybe Int, with a local loop
   [go], monomorphised at Int to keep the smoke test small. *)
let find_def () =
  let ilist = list_ty Types.int in
  let imaybe = maybe_ty Types.int in
  lam "p" (Types.Arrow (Types.int, Types.bool)) (fun p ->
      lam "xs0" ilist (fun xs0 ->
          letrec1 "go" (Types.Arrow (ilist, imaybe))
            (fun go ->
              lam "xs" ilist (fun xs ->
                  case xs
                    [
                      alt_con "Cons" [ Types.int ] [ "x"; "xs'" ]
                        (fun binders ->
                          match binders with
                          | [ x; xs' ] ->
                              if_ (app p x) (just Types.int x) (app go xs')
                          | _ -> assert false);
                      alt_con "Nil" [ Types.int ] [] (fun _ ->
                          nothing Types.int);
                    ]))
            (fun go -> app go xs0)))

(* any p xs = case find p xs of Just _ -> True ; Nothing -> False *)
let any_def find =
  let ilist = list_ty Types.int in
  lam "p" (Types.Arrow (Types.int, Types.bool)) (fun p ->
      lam "xs" ilist (fun xs ->
          case
            (app2 find p xs)
            [
              alt_con "Just" [ Types.int ] [ "y" ] (fun _ -> true_);
              alt_con "Nothing" [ Types.int ] [] (fun _ -> false_);
            ]))

let lint_or_die label e =
  match Lint.lint_result dcenv e with
  | Ok ty -> Fmt.pr "%s lints : %a@." label Types.pp ty
  | Error err ->
      Fmt.pr "%s LINT FAILURE: %a@." label Lint.pp_error err;
      Fmt.pr "term: %a@." Pretty.pp e;
      exit 1

let () =
  let find = find_def () in
  lint_or_die "find" find;
  (* Program: any (\x -> x > 3) [1;2;3;4;5] inlined via a let. *)
  let prog mk_find =
    let_ "find" (mk_find ()) (fun find ->
        let_ "any" (any_def find) (fun any ->
            app2 any
              (lam "x" Types.int (fun x -> gt x (int 3)))
              (int_list [ 1; 2; 3; 4; 5 ])))
  in
  let p0 = prog find_def in
  lint_or_die "program" p0;
  let t0, s0 = Eval.run_deep p0 in
  Fmt.pr "unoptimised result: %a (%a)@." Eval.pp_tree t0 Eval.pp_stats s0;

  (* Contify *)
  let p1 = Contify.contify p0 in
  lint_or_die "contified" p1;
  let t1, s1 = Eval.run_deep p1 in
  Fmt.pr "contified result: %a (%a)@." Eval.pp_tree t1 Eval.pp_stats s1;

  (* Simplify with join points *)
  let cfg = Simplify.default_config ~datacons:dcenv () in
  let p2 = Simplify.simplify cfg p1 in
  lint_or_die "simplified" p2;
  Fmt.pr "--- simplified core ---@.%a@." Pretty.pp p2;
  let t2, s2 = Eval.run_deep p2 in
  Fmt.pr "simplified result: %a (%a)@." Eval.pp_tree t2 Eval.pp_stats s2;

  (* Baseline: no contify, no joins *)
  let cfgb = Simplify.default_config ~join_points:false ~datacons:dcenv () in
  let p3 = Simplify.simplify cfgb p0 in
  lint_or_die "baseline-simplified" p3;
  let t3, s3 = Eval.run_deep p3 in
  Fmt.pr "baseline result: %a (%a)@." Eval.pp_tree t3 Eval.pp_stats s3;
  assert (Eval.equal_tree t0 t1);
  assert (Eval.equal_tree t0 t2);
  assert (Eval.equal_tree t0 t3);
  Fmt.pr "smoke OK@."

(* Pipeline + erasure round-trip *)
let () =
  let p0 =
    let_ "find" (find_def ()) (fun find ->
        let_ "any" (any_def find) (fun any ->
            app2 any
              (lam "x" Types.int (fun x -> gt x (int 3)))
              (int_list [ 1; 2; 3; 4; 5 ])))
  in
  let t0, _ = Eval.run_deep p0 in
  List.iter
    (fun mode ->
      let cfg = Pipeline.default_config ~mode ~lint_every_pass:true () in
      let e, report = Pipeline.run_report cfg p0 in
      let t, s = Eval.run_deep e in
      Fmt.pr "pipeline %-28s: %a (%a)@." (Pipeline.mode_name mode)
        Eval.pp_tree t Eval.pp_stats s;
      ignore report;
      assert (Eval.equal_tree t0 t);
      (* erasure *)
      let erased = Erase.erase e in
      assert (Erase.is_join_free erased);
      (match Lint.lint_result dcenv erased with
      | Ok _ -> ()
      | Error err ->
          Fmt.pr "ERASED LINT FAIL: %a@.%a@." Lint.pp_error err Pretty.pp
            erased;
          exit 1);
      let te, _ = Eval.run_deep erased in
      assert (Eval.equal_tree t0 te))
    [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ];
  Fmt.pr "pipeline+erase OK@."
