(* Surface language smoke test: compile, lint, run, optimise, compare. *)
open Fj_core

let () =
  let src =
    {|
def main = sum (map (\x -> x * 2) (filter odd (enumFromTo 1 20)))
|}
  in
  let denv, core = Fj_surface.Prelude.compile src in
  (match Lint.lint_result denv core with
  | Ok ty -> Fmt.pr "lints at %a@." Types.pp ty
  | Error err ->
      Fmt.pr "LINT FAIL: %a@." Lint.pp_error err;
      exit 1);
  let t0, s0 = Eval.run_deep core in
  Fmt.pr "unopt: %a (%a)@." Eval.pp_tree t0 Eval.pp_stats s0;
  List.iter
    (fun mode ->
      let cfg = Pipeline.default_config ~mode ~datacons:denv ~lint_every_pass:true () in
      let e = Pipeline.run cfg core in
      let t, s = Eval.run_deep e in
      Fmt.pr "%-12s: %a (%a)@." (Pipeline.mode_name mode) Eval.pp_tree t
        Eval.pp_stats s;
      assert (Eval.equal_tree t0 t))
    [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ];
  Fmt.pr "surface smoke OK@."
