(** Integration tests: every example program and every benchmark
    workload, end to end through every compiler configuration, the
    erasure procedure, and the block-machine backend — all checked to
    compute the same value, with every intermediate Linted. *)

open Fj_core
open Util

let modes = [ Pipeline.Baseline; Pipeline.Join_points; Pipeline.No_cc ]

(* Exercise one compiled program through the full matrix. *)
let exercise ?(check_machine = true) name denv core =
  (match Lint.lint_result denv core with
  | Ok _ -> ()
  | Error err ->
      Alcotest.failf "%s: input does not lint: %a" name Lint.pp_error err);
  let t0, _ = run core in
  List.iter
    (fun mode ->
      let cfg =
        Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300
          ~lint_every_pass:true ()
      in
      let opt =
        try Pipeline.run cfg core
        with Pipeline.Pass_broke_lint (pass, err) ->
          Alcotest.failf "%s [%s]: pass %s broke lint: %a" name
            (Pipeline.mode_name mode) pass Lint.pp_error err
      in
      let t, _ = run opt in
      if not (Eval.equal_tree t0 t) then
        Alcotest.failf "%s [%s]: optimised result %a differs from %a" name
          (Pipeline.mode_name mode) Eval.pp_tree t Eval.pp_tree t0;
      (* Erasure (Thm. 5) on the optimised output. *)
      let erased = Erase.erase opt in
      if not (Erase.is_join_free erased) then
        Alcotest.failf "%s [%s]: erasure left join points" name
          (Pipeline.mode_name mode);
      (match Lint.lint_result denv erased with
      | Ok _ -> ()
      | Error err ->
          Alcotest.failf "%s [%s]: erased term does not lint: %a" name
            (Pipeline.mode_name mode) Lint.pp_error err);
      let te, _ = run erased in
      if not (Eval.equal_tree t0 te) then
        Alcotest.failf "%s [%s]: erased result differs" name
          (Pipeline.mode_name mode);
      (* Block machine agreement (call-by-value: only for programs
         whose evaluation is strictness-independent — all of these). *)
      if check_machine then begin
        let prog = Fj_machine.Lower.lower_program opt in
        match Fj_machine.Bmachine.run ~fuel:50_000_000 prog with
        | v, _ ->
            let tm = Fj_machine.Bmachine.tree_of_value v in
            if not (Eval.equal_tree t0 tm) then
              Alcotest.failf "%s [%s]: machine result %a differs" name
                (Pipeline.mode_name mode) Eval.pp_tree tm
        | exception Fj_machine.Bmachine.Stuck m ->
            Alcotest.failf "%s [%s]: machine stuck: %s" name
              (Pipeline.mode_name mode) m
      end)
    modes

(* ---------------- example .fj files ---------------- *)

let example_dir = "../../../examples/programs"
(* dune runs tests in _build/default/test; examples are copied via the
   dune rule below (deps). *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let example_programs () =
  let dir =
    if Sys.file_exists example_dir then example_dir
    else "examples/programs" (* when run from the repo root *)
  in
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".fj")
    |> List.sort String.compare
    |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let test_examples () =
  let progs = example_programs () in
  Alcotest.(check bool) "found example programs" true (List.length progs >= 4);
  List.iter
    (fun (name, src) ->
      let denv, core = Fj_surface.Prelude.compile src in
      (* primes.fj relies on laziness of sieve? take-limits the sieve,
         and the sieve recursion is productive; the block machine is
         strict, so skip it for programs marked lazy. *)
      let lazy_program = name = "primes.fj" in
      exercise ~check_machine:(not lazy_program) name denv core)
    progs

(* ---------------- benchmark workloads ---------------- *)

let test_bench_programs_compile () =
  (* The full matrix on every benchmark program would be slow under the
     test runner; exercising compilation + join-points mode with lint
     between passes covers the interesting surface (the bench harness
     itself cross-checks results across modes on every run). *)
  List.iter
    (fun (prog : Bench_programs.program) ->
      let denv, core = Bench_programs.compile prog in
      let cfg =
        Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
          ~inline_threshold:300 ~lint_every_pass:true ()
      in
      let opt =
        try Pipeline.run cfg core
        with Pipeline.Pass_broke_lint (pass, err) ->
          Alcotest.failf "%s: pass %s broke lint: %a" prog.name pass
            Lint.pp_error err
      in
      let t0, _ = run core in
      let t, _ = run opt in
      if not (Eval.equal_tree t0 t) then
        Alcotest.failf "%s: optimised result differs" prog.name)
    Bench_programs.all

let tests =
  [
    test "example .fj programs, full matrix" test_examples;
    test "benchmark workloads compile and agree" test_bench_programs_compile;
  ]
