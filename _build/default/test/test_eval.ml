(** Tests for {!Fj_core.Eval} — the Fig. 3 abstract machine: basic
    reduction, laziness/sharing, the jump rule (context discarding),
    and the allocation accounting the benchmarks rely on. *)

open Fj_core
open Syntax
open Util
module B = Builder

let diverge ty =
  (* letrec bad = bad in bad *)
  let x = mk_var "bad" ty in
  Let (Rec [ (x, Var x) ], Var x)

let arith () =
  result_is "9" (B.add (B.mul (B.int 2) (B.int 3)) (B.int 3));
  result_is "-4" (B.sub (B.int 3) (B.int 7));
  result_is "2" (B.div_ (B.int 7) (B.int 3));
  result_is "1" (B.mod_ (B.int 7) (B.int 3))

let comparisons () =
  result_is "True" (B.lt (B.int 1) (B.int 2));
  result_is "False" (B.eq (B.int 1) (B.int 2));
  result_is "True" (B.ge (B.int 2) (B.int 2))

let beta () =
  result_is "42"
    (B.app (B.lam "x" Types.int (fun x -> B.add x (B.int 1))) (B.int 41))

let case_selects () =
  let e =
    B.case (B.just Types.int (B.int 5))
      [
        B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
        B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
      ]
  in
  result_is "5" e

let case_default () =
  let e =
    B.case (B.int 3)
      [
        B.alt_lit (Literal.Int 1) (B.int 10);
        B.alt_lit (Literal.Int 2) (B.int 20);
        B.alt_default (B.int 99);
      ]
  in
  result_is "99" e

let lazy_let_unused () =
  (* An unused diverging binding must not be forced. *)
  result_is "42" (B.let_ "boom" (diverge Types.int) (fun _ -> B.int 42))

let lazy_argument_unused () =
  result_is "7"
    (B.app (B.lam "x" Types.int (fun _ -> B.int 7)) (diverge Types.int))

let lazy_constructor_fields () =
  (* head of a list whose tail field diverges. *)
  let e =
    B.case
      (B.cons Types.int (B.int 1) (diverge (B.list_ty Types.int)))
      [
        B.alt_con "Cons" [ Types.int ] [ "h"; "t" ] (fun xs -> List.hd xs);
        B.alt_con "Nil" [ Types.int ] [] (fun _ -> B.int 0);
      ]
  in
  result_is "1" e

let sharing_by_need () =
  (* let x = <expensive> in x + x: by-need forces once, by-name twice. *)
  let expensive =
    B.app
      (B.lam "n" Types.int (fun n -> B.mul n (B.mul n n)))
      (B.add (B.int 2) (B.int 3))
  in
  let e = B.let_ "x" expensive (fun x -> B.add x x) in
  let _, s_need = Eval.eval ~mode:Eval.By_need e in
  let _, s_name = Eval.eval ~mode:Eval.By_name e in
  Alcotest.(check bool) "by-name repeats work" true
    (s_name.Eval.steps > s_need.Eval.steps)

let blackhole_detected () =
  match Eval.eval (diverge Types.int) with
  | exception Eval.Stuck _ -> ()
  | _ -> Alcotest.fail "expected a blackhole"

let fuel_exhaustion () =
  let loop =
    B.joinrec1 "spin" []
      (fun jmp _ -> jmp [] Types.int)
      (fun jmp -> jmp [] Types.int)
  in
  match Eval.eval ~fuel:1000 loop with
  | exception Eval.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

(* The machine example of Sec. 3: the jump pops the application and
   case frames.
   join j x = x in case (jump j 2 (Int -> Bool)) 3 of ... ==> 2 *)
let jump_discards_context () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = Var x } in
  let scrut =
    App
      ( Jump (jv, [], [ B.int 2 ], Types.Arrow (Types.int, Types.bool)),
        B.int 3 )
  in
  let e =
    Join
      (JNonRec defn, Case (scrut, [ { alt_pat = PDefault; alt_rhs = B.int 99 } ]))
  in
  let _ = lints e in
  result_is "2" e

let joins_do_not_allocate () =
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int); ("acc", Types.int) ]
      (fun jmp xs ->
        match xs with
        | [ n; acc ] ->
            B.if_ (B.le n (B.int 0)) acc
              (jmp [ B.sub n (B.int 1); B.add acc n ] Types.int)
        | _ -> assert false)
      (fun jmp -> jmp [ B.int 100; B.int 0 ] Types.int)
  in
  let t, s = run e in
  Alcotest.(check string) "sum" "5050" (Fmt.str "%a" Eval.pp_tree t);
  Alcotest.(check int) "zero allocation" 0 s.Eval.words;
  Alcotest.(check bool) "jumps happened" true (s.Eval.jumps > 100)

let allocation_accounting () =
  (* Cons 1 Nil: one 3-word object (Nil is static). *)
  let _, s = run (B.int_list [ 1 ]) in
  Alcotest.(check int) "one object" 1 s.Eval.objects;
  Alcotest.(check int) "three words" 3 s.Eval.words;
  (* A let-bound lambda allocates one closure. *)
  let _, s2 =
    run
      (B.let_ "f" (B.lam "x" Types.int (fun x -> x)) (fun f ->
           B.app f (B.int 1)))
  in
  Alcotest.(check int) "one closure" 1 s2.Eval.objects;
  (* Nullary constructors are free. *)
  let _, s3 = run B.true_ in
  Alcotest.(check int) "static constructor" 0 s3.Eval.objects

let deep_observation () =
  let e = B.int_list [ 1; 2; 3 ] in
  let t, _ = run e in
  Alcotest.(check string) "rendered"
    "(Cons 1 (Cons 2 (Cons 3 Nil)))"
    (Fmt.str "%a" Eval.pp_tree t)

let letrec_closures () =
  (* Mutual recursion through the heap: even/odd. *)
  let ebool = Types.Arrow (Types.int, Types.bool) in
  let ev = mk_var "even" ebool and od = mk_var "odd" ebool in
  let body f = B.app (Var f) (B.int 10) in
  let e =
    Let
      ( Rec
          [
            ( ev,
              B.lam "n" Types.int (fun n ->
                  B.if_ (B.eq n (B.int 0)) B.true_
                    (App (Var od, B.sub n (B.int 1)))) );
            ( od,
              B.lam "n" Types.int (fun n ->
                  B.if_ (B.eq n (B.int 0)) B.false_
                    (App (Var ev, B.sub n (B.int 1)))) );
          ],
        body ev )
  in
  let _ = lints e in
  result_is "True" e

let tests =
  [
    test "arithmetic" arith;
    test "comparisons" comparisons;
    test "beta reduction" beta;
    test "case selects alternative" case_selects;
    test "case default fallback" case_default;
    test "unused let is lazy" lazy_let_unused;
    test "unused argument is lazy" lazy_argument_unused;
    test "constructor fields are lazy" lazy_constructor_fields;
    test "by-need shares, by-name repeats" sharing_by_need;
    test "blackhole detection" blackhole_detected;
    test "fuel exhaustion" fuel_exhaustion;
    test "jump discards its context (Sec. 3 example)" jump_discards_context;
    test "join/jump allocate nothing" joins_do_not_allocate;
    test "allocation accounting" allocation_accounting;
    test "deep observation" deep_observation;
    test "recursive closures (even/odd)" letrec_closures;
  ]
