(* Lower optimized programs to the block machine, run, compare results
   with the core evaluator, and contrast goto-vs-closure costs. *)
open Fj_core

let () =
  let src = {|
def main = sum (map (\x -> x * 2) (filter odd (enumFromTo 1 100)))
|} in
  let denv, core = Fj_surface.Prelude.compile src in
  let t0, _ = Eval.run_deep core in
  List.iter
    (fun mode ->
      let cfg = Pipeline.default_config ~mode ~datacons:denv () in
      let e = Pipeline.run cfg core in
      let prog = Fj_machine.Lower.lower_program e in
      let v, s = Fj_machine.Bmachine.run prog in
      let t = Fj_machine.Bmachine.tree_of_value v in
      Fmt.pr "%-12s machine: %a (%a)@." (Pipeline.mode_name mode)
        Eval.pp_tree t Fj_machine.Bmachine.pp_stats s;
      assert (Eval.equal_tree t0 t))
    [ Pipeline.Baseline; Pipeline.Join_points ];
  Fmt.pr "machine smoke OK@."
