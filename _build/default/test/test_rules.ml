(** Tests for {!Fj_core.Rules} — user rewrite rules (GHC RULES), with
    the paper's stream/unstream rule as the flagship example (Sec. 8). *)

open Fj_core
open Syntax
open Util
module B = Builder

(* A toy stream/unstream pair operating on Int lists (identity
   functions at runtime, as the real ones are at the representation
   level). *)
let mk_stream_world () =
  let ilist = B.list_ty Types.int in
  let stream_v = mk_var "stream" (Types.Arrow (ilist, ilist)) in
  let unstream_v = mk_var "unstream" (Types.Arrow (ilist, ilist)) in
  let s_hole = mk_var "s" ilist in
  let rule =
    Rules.rule ~name:"stream/unstream" ~term_holes:[ s_hole ] ~ty_holes:[]
      ~lhs:(App (Var stream_v, App (Var unstream_v, Var s_hole)))
      ~rhs:(Var s_hole)
  in
  (stream_v, unstream_v, rule)

let fires_on_redex () =
  let stream_v, unstream_v, rule = mk_stream_world () in
  let xs = mk_var "xs" (B.list_ty Types.int) in
  let e = App (Var stream_v, App (Var unstream_v, Var xs)) in
  let e', fired = Rules.rewrite [ rule ] e in
  Alcotest.(check (list string)) "fired once" [ "stream/unstream" ] fired;
  match e' with
  | Var v -> Alcotest.(check bool) "rewrote to the hole" true (var_equal v xs)
  | _ -> Alcotest.failf "unexpected result %a" Pretty.pp e'

let no_fire_on_partial () =
  let stream_v, _, rule = mk_stream_world () in
  let xs = mk_var "xs" (B.list_ty Types.int) in
  let e = App (Var stream_v, Var xs) in
  let _, fired = Rules.rewrite [ rule ] e in
  Alcotest.(check (list string)) "did not fire" [] fired

let fires_nested () =
  let stream_v, unstream_v, rule = mk_stream_world () in
  let xs = mk_var "xs" (B.list_ty Types.int) in
  (* stream (unstream (stream (unstream xs))) — fires twice (bottom-up
     then again at the top). *)
  let e =
    App
      ( Var stream_v,
        App
          ( Var unstream_v,
            App (Var stream_v, App (Var unstream_v, Var xs)) ) )
  in
  let e', fired = Rules.rewrite [ rule ] e in
  Alcotest.(check int) "fired twice" 2 (List.length fired);
  match e' with
  | Var v -> Alcotest.(check bool) "fully collapsed" true (var_equal v xs)
  | _ -> Alcotest.failf "unexpected result %a" Pretty.pp e'

let repeated_holes_consistent () =
  (* rule: double x x => x; must NOT fire on double 1 2. *)
  let d = mk_var "double" (Types.arrows [ Types.int; Types.int ] Types.int) in
  let h = mk_var "h" Types.int in
  let rule =
    Rules.rule ~name:"collapse" ~term_holes:[ h ] ~ty_holes:[]
      ~lhs:(B.app2 (Var d) (Var h) (Var h))
      ~rhs:(Var h)
  in
  let _, fired1 = Rules.rewrite [ rule ] (B.app2 (Var d) (B.int 1) (B.int 1)) in
  Alcotest.(check int) "fires on equal" 1 (List.length fired1);
  let _, fired2 = Rules.rewrite [ rule ] (B.app2 (Var d) (B.int 1) (B.int 2)) in
  Alcotest.(check int) "refuses unequal" 0 (List.length fired2)

let type_holes_match () =
  (* forall a s. idmap @a s => s *)
  let a = Ident.fresh "a" in
  let f =
    mk_var "idmap"
      (Types.Forall (a, Types.Arrow (Types.Var a, Types.Var a)))
  in
  let h = mk_var "h" (Types.Var a) in
  let rule =
    Rules.rule ~name:"idmap" ~term_holes:[ h ] ~ty_holes:[ a ]
      ~lhs:(App (TyApp (Var f, Types.Var a), Var h))
      ~rhs:(Var h)
  in
  let e = App (TyApp (Var f, Types.int), B.int 7) in
  let e', fired = Rules.rewrite [ rule ] e in
  Alcotest.(check int) "fired" 1 (List.length fired);
  match e' with
  | Lit (Literal.Int 7) -> ()
  | _ -> Alcotest.failf "unexpected result %a" Pretty.pp e'

let rewrites_under_binders () =
  let stream_v, unstream_v, rule = mk_stream_world () in
  let e =
    B.lam "xs" (B.list_ty Types.int) (fun xs ->
        App (Var stream_v, App (Var unstream_v, xs)))
  in
  let e', fired = Rules.rewrite [ rule ] e in
  Alcotest.(check int) "fired under lambda" 1 (List.length fired);
  match e' with
  | Lam (x, Var v) ->
      Alcotest.(check bool) "eta-identity" true (var_equal x v)
  | _ -> Alcotest.failf "unexpected result %a" Pretty.pp e'

let tests =
  [
    test "stream/unstream fires" fires_on_redex;
    test "no fire on partial match" no_fire_on_partial;
    test "fires on nested redexes" fires_nested;
    test "repeated holes must match consistently" repeated_holes_consistent;
    test "type holes" type_holes_match;
    test "rewrites under binders" rewrites_under_binders;
  ]
