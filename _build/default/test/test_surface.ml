(** Tests for the surface language front end: lexer, parser, type
    inference, and elaboration to well-typed F_J core. *)

open Fj_core
open Util

let compile ?datacons src = Fj_surface.Infer.compile ?datacons src

let compile_main src =
  let denv, core = compile src in
  (match Lint.lint_result denv core with
  | Ok _ -> ()
  | Error err ->
      Alcotest.failf "elaborated core does not lint: %a" Lint.pp_error err);
  (denv, core)

let runs_to expected src =
  let _, core = compile_main src in
  let t, _ = run core in
  Alcotest.(check string) "result" expected (Fmt.str "%a" Eval.pp_tree t)

let type_errors src =
  match compile src with
  | exception Fj_surface.Infer.Type_error _ -> ()
  | exception Fj_surface.Parser.Parse_error _ ->
      Alcotest.fail "expected a type error, got a parse error"
  | _ -> Alcotest.fail "expected a type error"

let parse_errors src =
  match compile src with
  | exception Fj_surface.Parser.Parse_error _ -> ()
  | exception Fj_surface.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected a parse error"

(* ---------------- parsing ---------------- *)

let arithmetic () = runs_to "11" "def main = 1 + 2 * 3 + 4"
let precedence () = runs_to "True" "def main = 1 + 1 == 2 && 2 < 3"
let unary_minus () = runs_to "-5" "def main = 0 - 2 - 3"
let chars_strings () = runs_to "105" "def main = ord (strIdx \"hi\" 1) + 0"

let comments () =
  runs_to "7"
    {|
-- a line comment
def main = {- block
   comment -} 7
|}

let lambda_and_app () = runs_to "9" "def main = (\\x y -> x * y) 3 3"

let let_and_rec () =
  runs_to "120"
    {|
def main =
  let rec fact n = if n <= 1 then 1 else n * fact (n - 1)
  in fact 5
|}

let list_sugar () =
  runs_to "(Cons 1 (Cons 2 Nil))" "def main = [1, 2]";
  runs_to "(Cons 1 (Cons 2 (Cons 3 Nil)))" "def main = 1 : 2 : [3]"

let tuple_sugar () =
  runs_to "(MkPair 1 True)" "def main = (1, 1 == 1)"

let case_literals () =
  runs_to "20"
    {|
def main = case 2 of { 1 -> 10; 2 -> 20; _ -> 0 }
|}

let char_patterns () =
  runs_to "1"
    {|
def main = case strIdx "a" 0 of { 'a' -> 1; _ -> 0 }
|}

let data_declaration () =
  runs_to "(Leaf 42)"
    {|
data Tree = Leaf Int | Branch Tree Tree
def main = Leaf 42
|}

let parameterised_data () =
  runs_to "(MkBox True)"
    {|
data Box a = MkBox a
def main = MkBox (1 == 1)
|}

(* ---------------- inference ---------------- *)

let polymorphic_defs () =
  runs_to "3"
    {|
def identity x = x
def main = identity (identity 3)
|}

let polymorphic_at_two_types () =
  runs_to "(MkPair 1 True)"
    {|
def identity x = x
def main = (identity 1, identity True)
|}

let constructor_partial_application () =
  runs_to "(Cons 5 Nil)"
    {|
def apply f x = f x
def main = apply (Cons 5) Nil
|}

let char_equality () =
  runs_to "True" "def main = 'a' == 'a'";
  runs_to "True" "def main = 'a' /= 'b'"

let occurs_check () = type_errors "def main = (\\x -> x x) 1"

let branch_type_mismatch () =
  type_errors "def main = if True then 1 else False"

let unbound_variable () = type_errors "def main = nonexistent"

let unknown_constructor () = type_errors "def main = Nonsense 3"

let wrong_pattern_arity () =
  type_errors
    "def main = case Just 1 of { Just -> 0; Nothing -> 1 }"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let no_main () =
  match compile "def notmain = 3" with
  | exception Fj_surface.Infer.Type_error (m, _) ->
      Alcotest.(check bool) "mentions main" true (contains m "main")
  | _ -> Alcotest.fail "expected an error about main"

(* ---------------- parse errors ---------------- *)

let missing_brace () = parse_errors "def main = case 1 of { 1 -> 2"
let stray_operator () = parse_errors "def main = 1 + "
let bad_char_literal () = parse_errors "def main = 'ab"

(* ---------------- prelude ---------------- *)

let prelude_works () =
  let denv, core =
    Fj_surface.Prelude.compile
      "def main = (length [1,2,3], reverse [1,2])"
  in
  let _ = lints ~env:denv core in
  let t, _ = run core in
  Alcotest.(check string) "result" "(MkPair 3 (Cons 2 (Cons 1 Nil)))"
    (Fmt.str "%a" Eval.pp_tree t)

let prelude_fold_functions () =
  let _, core =
    Fj_surface.Prelude.compile
      "def main = foldr (\\x acc -> x + acc) 0 [1,2,3] + foldl (\\acc x -> acc * x) 1 [2,3,4]"
  in
  let t, _ = run core in
  Alcotest.(check string) "result" "30" (Fmt.str "%a" Eval.pp_tree t)

let prelude_zip () =
  let _, core =
    Fj_surface.Prelude.compile
      "def main = sum (map (\\p -> fst p * snd p) (zip [1,2,3] [4,5,6]))"
  in
  let t, _ = run core in
  Alcotest.(check string) "result" "32" (Fmt.str "%a" Eval.pp_tree t)

(* laziness is preserved by elaboration *)
let elaboration_preserves_laziness () =
  runs_to "1"
    {|
def main =
  let rec boom x = boom x in
  let unused = boom 0 in
  1
|}

let tests =
  [
    test "arithmetic and precedence" arithmetic;
    test "boolean precedence" precedence;
    test "unary and binary minus" unary_minus;
    test "chars and strings" chars_strings;
    test "comments" comments;
    test "lambda and application" lambda_and_app;
    test "let and let rec" let_and_rec;
    test "list sugar" list_sugar;
    test "tuple sugar" tuple_sugar;
    test "case on literals" case_literals;
    test "char patterns" char_patterns;
    test "data declarations" data_declaration;
    test "parameterised data" parameterised_data;
    test "polymorphic defs" polymorphic_defs;
    test "polymorphism at two types" polymorphic_at_two_types;
    test "constructor partial application" constructor_partial_application;
    test "char equality" char_equality;
    test "occurs check" occurs_check;
    test "branch type mismatch" branch_type_mismatch;
    test "unbound variable" unbound_variable;
    test "unknown constructor" unknown_constructor;
    test "wrong pattern arity" wrong_pattern_arity;
    test "program without main" no_main;
    test "missing brace" missing_brace;
    test "stray operator" stray_operator;
    test "bad char literal" bad_char_literal;
    test "prelude basics" prelude_works;
    test "prelude folds" prelude_fold_functions;
    test "prelude zip" prelude_zip;
    test "elaboration preserves laziness" elaboration_preserves_laziness;
  ]
