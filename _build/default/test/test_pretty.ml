(** Tests for {!Fj_core.Pretty} — the Core-dump printer. The notation
    must match the paper's ([join ... in], [jump j args @\[ty\]]), stay
    parseable by humans, and parenthesise correctly. *)

open Fj_core
open Syntax
open Util
module B = Builder

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let show e = Pretty.to_string e

let prints_join_and_jump () =
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> B.add (List.hd xs) (B.int 1))
      (fun jmp -> jmp [ B.int 41 ] Types.int)
  in
  let s = show e in
  Alcotest.(check bool) "has join keyword" true (contains s "join j");
  Alcotest.(check bool) "has jump keyword" true (contains s "jump j");
  Alcotest.(check bool) "prints jump result type" true (contains s "@[Int]")

let prints_rec_joins () =
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int) ]
      (fun jmp xs ->
        B.if_ (B.le (List.hd xs) (B.int 0)) (B.int 0)
          (jmp [ B.sub (List.hd xs) (B.int 1) ] Types.int))
      (fun jmp -> jmp [ B.int 3 ] Types.int)
  in
  Alcotest.(check bool) "marks recursion" true (contains (show e) "join rec")

let prints_strict_lets () =
  let x = mk_var "x" Types.int in
  let e = Let (Strict (x, B.add (B.int 1) (B.int 2)), Var x) in
  Alcotest.(check bool) "bang marks strict binding" true
    (contains (show e) "!(x_")

let prints_types_on_binders () =
  let e = B.lam "x" (B.list_ty Types.int) (fun x -> x) in
  Alcotest.(check bool) "binder type" true (contains (show e) ": List Int")

let parenthesises_nested_apps () =
  let f = mk_var "f" (Types.arrows [ Types.int; Types.int ] Types.int) in
  let e = B.app2 (Var f) (B.add (B.int 1) (B.int 2)) (B.int 3) in
  Alcotest.(check bool) "argument parenthesised" true
    (contains (show e) "(+# 1 2)")

let prints_type_applications () =
  let e = B.nil Types.int in
  Alcotest.(check bool) "type argument" true (contains (show e) "Nil @Int");
  let e2 = B.cons Types.int (B.int 1) (B.nil Types.int) in
  Alcotest.(check bool) "saturated constructor" true
    (contains (show e2) "Cons @Int 1")

let prints_case_layout () =
  let e =
    B.case B.true_
      [
        B.alt_con "True" [] [] (fun _ -> B.int 1);
        B.alt_con "False" [] [] (fun _ -> B.int 2);
        B.alt_default (B.int 3);
      ]
  in
  let s = show e in
  Alcotest.(check bool) "case keyword" true (contains s "case True of");
  Alcotest.(check bool) "default is underscore" true (contains s "_ ->")

let prints_literals () =
  Alcotest.(check bool) "chars" true (contains (show (B.char 'a')) "'a'");
  Alcotest.(check bool) "strings" true
    (contains (show (B.str "hi")) "\"hi\"");
  Alcotest.(check bool) "negative ints" true (contains (show (B.int (-3))) "-3")

let stable_under_freshen () =
  (* Printing must remain well-formed after alpha-copying (binder
     numbers change, structure does not). *)
  let e =
    B.let_ "x" (B.int 1) (fun x -> B.lam "y" Types.int (fun y -> B.add x y))
  in
  let s1 = show e and s2 = show (Subst.freshen e) in
  Alcotest.(check bool) "same shape modulo uniques" true
    (String.length s1 = String.length s2
    || abs (String.length s1 - String.length s2) < 16)

let tests =
  [
    test "join and jump notation" prints_join_and_jump;
    test "recursive join groups" prints_rec_joins;
    test "strict bindings" prints_strict_lets;
    test "binder types" prints_types_on_binders;
    test "application parentheses" parenthesises_nested_apps;
    test "type applications" prints_type_applications;
    test "case layout" prints_case_layout;
    test "literals" prints_literals;
    test "stable under freshening" stable_under_freshen;
  ]
