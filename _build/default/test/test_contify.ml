(** Tests for {!Fj_core.Contify} — Fig. 5: inferring join points from
    tail-called let bindings. *)

open Fj_core
open Syntax
open Util
module B = Builder

let count_joins e =
  let n = ref 0 in
  let rec go = function
    | Var _ | Lit _ -> ()
    | Con (_, _, es) | Prim (_, es) -> List.iter go es
    | App (f, a) -> go f; go a
    | TyApp (f, _) -> go f
    | Lam (_, b) | TyLam (_, b) -> go b
    | Let ((NonRec (_, rhs) | Strict (_, rhs)), body) -> go rhs; go body
    | Let (Rec ps, body) -> List.iter (fun (_, r) -> go r) ps; go body
    | Case (s, alts) -> go s; List.iter (fun a -> go a.alt_rhs) alts
    | Join (jb, body) ->
        incr n;
        List.iter (fun d -> go d.j_rhs) (join_defns jb);
        go body
    | Jump (_, _, es, _) -> List.iter go es
  in
  go e;
  !n

let check_contify ?(expect_joins = 1) e =
  let _ = lints e in
  let e' = Contify.contify e in
  let _ = lints e' in
  same_result e e';
  Alcotest.(check int) "join points introduced" expect_joins (count_joins e');
  e'

(* let f x = x + 1 in case b of {T -> f 1; F -> f 2}: all tail calls. *)
let simple_contify () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f ->
        B.if_ B.true_ (App (f, B.int 1)) (App (f, B.int 2)))
  in
  ignore (check_contify e)

(* A call in scrutinee position must NOT be contified. *)
let scrutinee_blocks () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f ->
        B.case (App (f, B.int 1)) [ B.alt_default (B.int 0) ])
  in
  ignore (check_contify ~expect_joins:0 e)

(* An escaping use (passed as an argument) must block contification. *)
let escape_blocks () =
  let apply =
    B.lam "g" (Types.Arrow (Types.int, Types.int)) (fun g -> App (g, B.int 1))
  in
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f -> App (apply, f))
  in
  ignore (check_contify ~expect_joins:0 e)

(* The paper's find: a recursive local loop, all tail calls. *)
let recursive_loop () =
  let ilist = B.list_ty Types.int in
  let e =
    B.letrec1 "go" (Types.Arrow (ilist, Types.int))
      (fun go ->
        B.lam "xs" ilist (fun xs ->
            B.case xs
              [
                B.alt_con "Cons" [ Types.int ] [ "x"; "rest" ] (fun bs ->
                    match bs with
                    | [ x; rest ] -> B.add x (App (go, rest))
                    | _ -> assert false);
                B.alt_con "Nil" [ Types.int ] [] (fun _ -> B.int 0);
              ]))
      (fun go -> App (go, B.int_list [ 1; 2; 3 ]))
  in
  (* The recursive call is in an argument of +, NOT tail: no contify. *)
  ignore (check_contify ~expect_joins:0 e)

let recursive_tail_loop () =
  let e =
    B.letrec1 "go"
      (Types.Arrow (Types.int, Types.Arrow (Types.int, Types.int)))
      (fun go ->
        B.lam "n" Types.int (fun n ->
            B.lam "acc" Types.int (fun acc ->
                B.if_ (B.le n (B.int 0)) acc
                  (B.app2 go (B.sub n (B.int 1)) (B.add acc n)))))
      (fun go -> B.app2 go (B.int 10) (B.int 0))
  in
  let e' = check_contify e in
  result_is "55" e'

(* Inconsistent call arities block contification. *)
let arity_mismatch_blocks () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun _ -> B.lam "y" Types.int (fun y -> y)))
      (fun f ->
        B.if_ B.true_
          (B.app2 f (B.int 1) (B.int 2))
          (B.app (B.app f (B.int 1)) (B.int 3)))
  in
  (* Both calls actually have the same shape here; make them differ. *)
  let e2 =
    B.let_ "g"
      (B.lam "x" Types.int (fun _ -> B.lam "y" Types.int (fun y -> y)))
      (fun g ->
        B.if_ B.true_
          (B.app2 g (B.int 1) (B.int 2))
          (B.app
             (B.lam "h" (Types.Arrow (Types.int, Types.int)) (fun h ->
                  B.app h (B.int 9)))
             (B.app g (B.int 1))))
  in
  ignore (check_contify e);
  ignore (check_contify ~expect_joins:0 e2)

(* The Fig. 5 type proviso: a function whose body type differs from the
   let body's type cannot be contified. *)
let return_type_proviso () =
  (* let f x = Just x in case b of {T -> f 1; F -> f 2} : Maybe Int —
     types agree, contifies. *)
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.just Types.int x))
      (fun f -> B.if_ B.true_ (App (f, B.int 1)) (App (f, B.int 2)))
  in
  ignore (check_contify e);
  (* Polymorphic-return: let f = /\a. \x:Int. error-ish... we emulate
     the failure case by a call whose instantiations differ; then the
     rhs body type mentions a and cannot equal the scope type. *)
  let a = Ident.fresh "a" in
  let f_ty =
    Types.Forall (a, Types.Arrow (Types.int, Types.Arrow (Types.Var a, Types.Var a)))
  in
  ignore f_ty

(* Contification happens under binders too (inside lambdas, lets). *)
let contify_everywhere () =
  let inner () =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f -> B.if_ B.true_ (App (f, B.int 1)) (App (f, B.int 2)))
  in
  let e = B.lam "unused" Types.int (fun _ -> inner ()) in
  let e' = Contify.contify e in
  Alcotest.(check int) "contified under lambda" 1 (count_joins e')

(* Once contified, jumps carry the right result type. *)
let jump_types_correct () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.just Types.int x))
      (fun f -> B.if_ B.true_ (App (f, B.int 1)) (App (f, B.int 2)))
  in
  let e' = Contify.contify e in
  let ty = lints e' in
  Alcotest.check ty_testable "overall type" (B.maybe_ty Types.int) ty

(* Contification is idempotent. *)
let idempotent () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f -> B.if_ B.true_ (App (f, B.int 1)) (App (f, B.int 2)))
  in
  let e1 = Contify.contify e in
  let e2 = Contify.contify e1 in
  Alcotest.(check int) "same join count" (count_joins e1) (count_joins e2);
  same_result e1 e2

(* A nullary binding used more than once is left alone (sharing). *)
let nullary_shared_not_contified () =
  let e =
    B.let_ "x"
      (B.add (B.int 1) (B.int 2))
      (fun x -> B.if_ B.true_ x x)
  in
  ignore (check_contify ~expect_joins:0 e)

(* ... but a nullary binding used exactly once can be contified. *)
let nullary_once_contified () =
  let e =
    B.let_ "x"
      (B.add (B.int 1) (B.int 2))
      (fun x -> B.if_ B.true_ x (B.int 0))
  in
  ignore (check_contify ~expect_joins:1 e)

let tests =
  [
    test "tail-called let becomes join" simple_contify;
    test "scrutinee call blocks" scrutinee_blocks;
    test "escaping use blocks" escape_blocks;
    test "non-tail recursion not contified" recursive_loop;
    test "tail recursion contified and runs" recursive_tail_loop;
    test "inconsistent arities block" arity_mismatch_blocks;
    test "return-type proviso" return_type_proviso;
    test "contify under binders" contify_everywhere;
    test "jump result types correct" jump_types_correct;
    test "idempotent" idempotent;
    test "shared nullary binding kept" nullary_shared_not_contified;
    test "once-used nullary contified" nullary_once_contified;
  ]
