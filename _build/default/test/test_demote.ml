(** Tests for {!Fj_core.Demote} — de-contification (the right-to-left
    [contify] axiom), directly. *)

open Fj_core
open Syntax
open Util
module B = Builder

let demote_ok e =
  let _ = lints e in
  let e' = Demote.demote e in
  Alcotest.(check bool) "join-free" true (Erase.is_join_free e');
  let _ = lints e' in
  same_result e e';
  e'

let simple_join () =
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> B.add (List.hd xs) (B.int 1))
      (fun jmp -> jmp [ B.int 41 ] Types.int)
  in
  match demote_ok e with
  | Let (NonRec (f, Lam _), _) ->
      (* The binder's type becomes an honest function type. *)
      Alcotest.check ty_testable "function type"
        (Types.Arrow (Types.int, Types.int))
        f.v_ty
  | e' -> Alcotest.failf "expected a let of a lambda: %a" Pretty.pp e'

let recursive_join () =
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int); ("acc", Types.int) ]
      (fun jmp xs ->
        match xs with
        | [ n; acc ] ->
            B.if_ (B.le n (B.int 0)) acc
              (jmp [ B.sub n (B.int 1); B.add acc n ] Types.int)
        | _ -> assert false)
      (fun jmp -> jmp [ B.int 10; B.int 0 ] Types.int)
  in
  match demote_ok e with
  | Let (Rec [ (f, _) ], _) ->
      Alcotest.check ty_testable "function type"
        (Types.arrows [ Types.int; Types.int ] Types.int)
        f.v_ty
  | e' -> Alcotest.failf "expected a letrec: %a" Pretty.pp e'

let nested_joins () =
  (* A join whose rhs jumps to an outer join: demote bottom-up turns
     both into ordinary calls. *)
  let x1 = mk_var "x" Types.int in
  let outer = mk_join_var "out" [] [ x1 ] in
  let outer_defn =
    { j_var = outer; j_tyvars = []; j_params = [ x1 ]; j_rhs = B.add (Var x1) (B.int 1) }
  in
  let x2 = mk_var "y" Types.int in
  let inner = mk_join_var "inn" [] [ x2 ] in
  let inner_defn =
    {
      j_var = inner;
      j_tyvars = [];
      j_params = [ x2 ];
      j_rhs = Jump (outer, [], [ B.mul (Var x2) (B.int 2) ], Types.int);
    }
  in
  let e =
    Join
      ( JNonRec outer_defn,
        Join (JNonRec inner_defn, Jump (inner, [], [ B.int 3 ], Types.int)) )
  in
  let e' = demote_ok e in
  let t, _ = run e' in
  Alcotest.(check string) "3*2+1" "7" (Fmt.str "%a" Eval.pp_tree t)

let polymorphic_join () =
  let a = Ident.fresh "a" in
  let x = mk_var "x" (Types.Var a) in
  let jv = mk_join_var "j" [ a ] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = [ a ]; j_params = [ x ]; j_rhs = B.int 7 }
  in
  let e =
    Join (JNonRec defn, Jump (jv, [ Types.bool ], [ B.true_ ], Types.int))
  in
  let e' = demote_ok e in
  let t, _ = run e' in
  Alcotest.(check string) "constant" "7" (Fmt.str "%a" Eval.pp_tree t)

let join_inside_jump_argument () =
  (* Regression: a join nested inside a jump's argument must be demoted
     too (found by the property suite). *)
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = B.mul (Var x) (Var x) }
  in
  let arg =
    B.join1 "k"
      [ ("y", Types.int) ]
      (fun ys -> B.add (List.hd ys) (B.int 1))
      (fun jmp -> jmp [ B.int 4 ] Types.int)
  in
  let e = Join (JNonRec defn, Jump (jv, [], [ arg ], Types.int)) in
  let e' = demote_ok e in
  let t, _ = run e' in
  Alcotest.(check string) "(4+1)^2" "25" (Fmt.str "%a" Eval.pp_tree t)

let tests =
  [
    test "simple join becomes a function" simple_join;
    test "recursive join becomes a letrec" recursive_join;
    test "nested joins demote bottom-up" nested_joins;
    test "polymorphic join demotes" polymorphic_join;
    test "join inside a jump argument (regression)" join_inside_jump_argument;
  ]
