(** Tests for {!Fj_core.Demand} — strictness analysis and
    strictification (the Sec. 7 strictness story). *)

open Fj_core
open Syntax
open Util
module B = Builder

let sv e = Demand.strict_vars Ident.Map.empty e

let mem (x : var) s = Ident.Set.mem x.v_name s

let var_is_strict () =
  let x = mk_var "x" Types.int in
  Alcotest.(check bool) "a variable is strict in itself" true
    (mem x (sv (Var x)))

let lambda_is_lazy () =
  let x = mk_var "x" Types.int in
  Alcotest.(check bool) "lambdas force nothing" true
    (Ident.Set.is_empty (sv (B.lam "y" Types.int (fun _ -> Var x))))

let con_fields_lazy () =
  let x = mk_var "x" Types.int in
  Alcotest.(check bool) "constructor fields are lazy" false
    (mem x (sv (B.just Types.int (Var x))))

let primops_strict () =
  let x = mk_var "x" Types.int and y = mk_var "y" Types.int in
  let s = sv (B.add (Var x) (Var y)) in
  Alcotest.(check bool) "both args" true (mem x s && mem y s)

let case_meets_branches () =
  let x = mk_var "x" Types.int and y = mk_var "y" Types.int in
  let c = mk_var "c" Types.bool in
  (* strict in c (scrutinee) and x (both branches); lazy in y. *)
  let e = B.if_ (Var c) (B.add (Var x) (B.int 1)) (B.add (Var x) (Var y)) in
  let s = sv e in
  Alcotest.(check bool) "scrutinee strict" true (mem c s);
  Alcotest.(check bool) "common branch var strict" true (mem x s);
  Alcotest.(check bool) "one-branch var lazy" false (mem y s)

let let_chains_demand () =
  let y = mk_var "y" Types.int in
  (* let x = y + 1 in x * 2 — strict in y through the demanded x. *)
  let e =
    B.let_ "x" (B.add (Var y) (B.int 1)) (fun x -> B.mul x (B.int 2))
  in
  Alcotest.(check bool) "demand flows through demanded let" true
    (mem y (sv e))

let lazy_let_no_demand () =
  let y = mk_var "y" Types.int in
  let e =
    B.let_ "x" (B.add (Var y) (B.int 1)) (fun x ->
        B.if_ B.true_ (B.int 0) x)
  in
  Alcotest.(check bool) "no demand through undemanded let" false
    (mem y (sv e))

let fixpoint_loop_params () =
  (* join rec go n acc = if n <= 0 then acc else jump go (n-1) (acc+n):
     the fixpoint must find BOTH parameters strict ([acc] is strict only
     via the recursive jump + the True branch). *)
  let e =
    B.joinrec1 "go"
      [ ("n", Types.int); ("acc", Types.int) ]
      (fun jmp xs ->
        match xs with
        | [ n; acc ] ->
            B.if_ (B.le n (B.int 0)) acc
              (jmp [ B.sub n (B.int 1); B.add acc n ] Types.int)
        | _ -> assert false)
      (fun jmp -> jmp [ B.int 10; B.int 0 ] Types.int)
  in
  let e' = Demand.strictify e in
  let _ = lints e' in
  same_result e e';
  (* After strictification + a simplifier round, running must allocate
     nothing: the accumulator is forced before each jump. *)
  let e'' = Simplify.simplify (Simplify.default_config ()) e' in
  let _, s = run e'' in
  Alcotest.(check int) "loop runs allocation-free" 0 s.Eval.words

let accumulator_thunks_eliminated () =
  (* The n-body shape through the whole pipeline: without strictness the
     accumulator builds a thunk chain. *)
  let denv, core =
    Fj_surface.Prelude.compile
      {|
def main =
  let rec go i acc =
    if i >= 50 then acc else go (i + 1) (acc + abs (0 - i))
  in go 0 0
|}
  in
  let words ~strictness =
    let cfg =
      Pipeline.default_config ~mode:Pipeline.Join_points ~strictness
        ~datacons:denv ()
    in
    let e = Pipeline.run cfg core in
    let _ = lints ~env:denv e in
    same_result core e;
    (snd (run e)).Eval.words
  in
  let w_on = words ~strictness:true in
  let w_off = words ~strictness:false in
  Alcotest.(check int) "zero allocation with demand analysis" 0 w_on;
  Alcotest.(check bool)
    (Fmt.str "thunks without it (%d > 0)" w_off)
    true (w_off > 0)

let strict_let_semantics () =
  (* A strict let with a demanded binder behaves like the lazy one. *)
  let x = mk_var "x" Types.int in
  let lazy_e =
    Let (NonRec (x, B.add (B.int 1) (B.int 2)), B.mul (Var x) (Var x))
  in
  let strict_e =
    Let (Strict (x, B.add (B.int 1) (B.int 2)), B.mul (Var x) (Var x))
  in
  let _ = lints strict_e in
  same_result lazy_e strict_e

let strict_let_forces () =
  (* Unlike a lazy let, a strict binding of a divergent rhs diverges
     even if unused. *)
  let diverge =
    let f = mk_var "f" Types.int in
    Let (Rec [ (f, Var f) ], Var f)
  in
  let x = mk_var "x" Types.int in
  let e = Let (Strict (x, diverge), B.int 42) in
  (match Eval.eval ~fuel:10_000 e with
  | exception Eval.Stuck _ -> ()
  | exception Eval.Out_of_fuel -> ()
  | _ -> Alcotest.fail "strict binding must force its rhs");
  (* And the simplifier must NOT discard it as dead code. *)
  let e' = Simplify.simplify (Simplify.default_config ()) e in
  match Eval.eval ~fuel:10_000 e' with
  | exception Eval.Stuck _ -> ()
  | exception Eval.Out_of_fuel -> ()
  | _ ->
      Alcotest.failf "simplifier dropped a non-terminating strict binding: %a"
        Pretty.pp e'

let strictify_preserves_surface_results () =
  List.iter
    (fun src ->
      let denv, core = Fj_surface.Prelude.compile src in
      let e' = Demand.strictify core in
      (match Lint.lint_result denv e' with
      | Ok _ -> ()
      | Error err ->
          Alcotest.failf "strictify broke lint: %a" Lint.pp_error err);
      same_result core e')
    [
      "def main = sum (map (\\x -> x * 2) (enumFromTo 1 20))";
      "def main = let rec f n = if n <= 0 then 0 else n + f (n - 1) in f 9";
      "def main = case mHead [1,2,3] of { Just x -> x; Nothing -> 0 }";
    ]

let tests =
  [
    test "a variable is strict in itself" var_is_strict;
    test "lambdas are lazy" lambda_is_lazy;
    test "constructor fields are lazy" con_fields_lazy;
    test "primops are strict" primops_strict;
    test "case meets branch demands" case_meets_branches;
    test "demand flows through demanded lets" let_chains_demand;
    test "no demand through undemanded lets" lazy_let_no_demand;
    test "fixpoint finds loop accumulators" fixpoint_loop_params;
    test "accumulator thunks eliminated end-to-end"
      accumulator_thunks_eliminated;
    test "strict let preserves semantics" strict_let_semantics;
    test "strict let forces; never dropped" strict_let_forces;
    test "strictify preserves surface programs" strictify_preserves_surface_results;
  ]
