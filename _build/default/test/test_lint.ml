(** Tests for {!Fj_core.Lint} — the type system of Fig. 2, with
    particular attention to where the join environment Δ is reset
    (Sec. 3). Each negative test is a program the paper's rules must
    reject; each positive one exercises a subtlety the paper calls out
    as legal. *)

open Fj_core
open Syntax
open Util
module B = Builder

let mk_jump jv phis args ty = Jump (jv, phis, args, ty)

(* join j x = x + 1 in jump j 41 Int — the basic well-typed join. *)
let basic_join () =
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> B.add (List.hd xs) (B.int 1))
      (fun jmp -> jmp [ B.int 41 ] Types.int)
  in
  Alcotest.check ty_testable "type" Types.int (lints e)

(* The paper's "Gotcha!" example: a join point whose rhs type differs
   from the body type must be rejected.
   join j = "Gotcha!" in if b then jump j Int else 4 *)
let gotcha_rejected () =
  let jv = mk_join_var "j" [] [] in
  let defn = { j_var = jv; j_tyvars = []; j_params = []; j_rhs = B.str "Gotcha!" } in
  let e =
    Join
      ( JNonRec defn,
        B.if_ B.true_ (mk_jump jv [] [] Types.int) (B.int 4) )
  in
  fails_lint e

(* jump in a function ARGUMENT is rejected: Δ is reset there.
   join j x = x in f (jump j True Bool) *)
let jump_in_argument_rejected () =
  let jv = mk_join_var "j" [] [ mk_var "x" Types.bool ] in
  let defn =
    {
      j_var = jv;
      j_tyvars = [];
      j_params = [ mk_var "x" Types.bool ];
      j_rhs = B.true_;
    }
  in
  let f = mk_var "f" (Types.Arrow (Types.bool, Types.bool)) in
  let e =
    B.lam "f" (Types.Arrow (Types.bool, Types.bool)) (fun _ ->
        Join (JNonRec defn, App (Var f, mk_jump jv [] [ B.true_ ] Types.bool)))
  in
  fails_lint e

(* jump under a lambda is rejected: Δ is reset in lambda bodies. This
   is exactly what outlaws the callcc encoding (Sec. 9). *)
let jump_under_lambda_rejected () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = Var x } in
  let e =
    Join
      ( JNonRec defn,
        B.lam "y" Types.int (fun y -> mk_jump jv [] [ y ] Types.int) )
  in
  fails_lint e

(* jump in a case SCRUTINEE is fine: the scrutinee is an evaluation
   context and Δ flows into it. *)
let jump_in_scrutinee_ok () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = Var x } in
  let e =
    Join
      ( JNonRec defn,
        Case
          ( mk_jump jv [] [ B.int 1 ] Types.int,
            [ { alt_pat = PDefault; alt_rhs = B.int 0 } ] ) )
  in
  Alcotest.check ty_testable "type" Types.int (lints e)

(* The Sec. 3 example: jumps may appear in the FUNCTION part of an
   application (Δ is not reset there), with the claimed result type
   adjusted — "(jump j True C2C) 'x'" style. *)
let jump_in_function_position_ok () =
  let c2c = Types.Arrow (Types.char, Types.char) in
  let x = mk_var "x" Types.bool in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    {
      j_var = jv;
      j_tyvars = [];
      j_params = [ x ];
      j_rhs = App (B.lam "c" Types.char (fun c -> c), B.char 'x');
    }
  in
  let e =
    Join
      ( JNonRec defn,
        B.case B.true_
          [
            B.alt_con "True" [] [] (fun _ ->
                App (mk_jump jv [] [ B.true_ ] c2c, B.char 'x'));
            B.alt_con "False" [] [] (fun _ ->
                App (B.lam "c" Types.char (fun c -> c), B.char 'x'));
          ] )
  in
  Alcotest.check ty_testable "type" Types.char (lints e)

(* A join rhs is a tail context: it may jump to an OUTER join point. *)
let join_rhs_jumps_outer_ok () =
  let x1 = mk_var "x" Types.int in
  let outer = mk_join_var "out" [] [ x1 ] in
  let outer_defn =
    { j_var = outer; j_tyvars = []; j_params = [ x1 ]; j_rhs = Var x1 }
  in
  let x2 = mk_var "y" Types.int in
  let inner = mk_join_var "in" [] [ x2 ] in
  let inner_defn =
    {
      j_var = inner;
      j_tyvars = [];
      j_params = [ x2 ];
      j_rhs = mk_jump outer [] [ Var x2 ] Types.int;
    }
  in
  let e =
    Join
      ( JNonRec outer_defn,
        Join (JNonRec inner_defn, mk_jump inner [] [ B.int 7 ] Types.int) )
  in
  Alcotest.check ty_testable "type" Types.int (lints e)

(* A non-recursive join's rhs must NOT see its own label. *)
let nonrec_join_self_jump_rejected () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    {
      j_var = jv;
      j_tyvars = [];
      j_params = [ x ];
      j_rhs = mk_jump jv [] [ Var x ] Types.int;
    }
  in
  let e = Join (JNonRec defn, mk_jump jv [] [ B.int 1 ] Types.int) in
  fails_lint e

(* Recursive joins may self-jump. *)
let rec_join_ok () =
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int) ]
      (fun jmp xs ->
        let n = List.hd xs in
        B.if_ (B.le n (B.int 0)) (B.int 0) (jmp [ B.sub n (B.int 1) ] Types.int))
      (fun jmp -> jmp [ B.int 3 ] Types.int)
  in
  Alcotest.check ty_testable "type" Types.int (lints e);
  result_is "0" e

(* Wrong argument type at a jump. *)
let jump_arg_type_mismatch () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = Var x } in
  let e = Join (JNonRec defn, mk_jump jv [] [ B.true_ ] Types.int) in
  fails_lint e

(* Wrong arity at a jump (join points are polyadic; no partial
   application). *)
let jump_arity_mismatch () =
  let x = mk_var "x" Types.int in
  let y = mk_var "y" Types.int in
  let jv = mk_join_var "j" [] [ x; y ] in
  let defn =
    { j_var = jv; j_tyvars = []; j_params = [ x; y ]; j_rhs = B.add (Var x) (Var y) }
  in
  let e = Join (JNonRec defn, mk_jump jv [] [ B.int 1 ] Types.int) in
  fails_lint e

(* Polymorphic join points: join j @a (x:a) = x in jump j @Int 5 Int —
   but note the rhs must still match the body type, so instantiate at a
   fixed body type. *)
let polymorphic_join () =
  let a = Ident.fresh "a" in
  let x = mk_var "x" (Types.Var a) in
  (* rhs must have the BODY's type, which cannot mention a; so the rhs
     ignores x and returns an Int. *)
  let jv = mk_join_var "j" [ a ] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = [ a ]; j_params = [ x ]; j_rhs = B.int 7 }
  in
  let e =
    Join (JNonRec defn, mk_jump jv [ Types.bool ] [ B.true_ ] Types.int)
  in
  Alcotest.check ty_testable "type" Types.int (lints e);
  result_is "7" e

(* A join type parameter may not escape into the result type. *)
let join_tyvar_escape_rejected () =
  let a = Ident.fresh "a" in
  let x = mk_var "x" (Types.Var a) in
  let jv = mk_join_var "j" [ a ] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = [ a ]; j_params = [ x ]; j_rhs = Var x }
  in
  let e =
    Join (JNonRec defn, mk_jump jv [ Types.int ] [ B.int 1 ] Types.int)
  in
  fails_lint e

(* A join point name used as a first-class value is rejected. *)
let join_as_value_rejected () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = Var x } in
  let e = Join (JNonRec defn, Var jv) in
  fails_lint e

(* Scope: a jump outside the join's body is unbound. *)
let jump_out_of_scope_rejected () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  fails_lint (mk_jump jv [] [ B.int 1 ] Types.int)

(* Ordinary typing still works: unbound vars, bad cases, etc. *)
let unbound_var_rejected () = fails_lint (Var (mk_var "ghost" Types.int))

let case_alt_types_must_agree () =
  let e =
    B.case B.true_
      [
        B.alt_con "True" [] [] (fun _ -> B.int 1);
        B.alt_con "False" [] [] (fun _ -> B.str "no");
      ]
  in
  fails_lint e

let case_pattern_wrong_tycon () =
  let e =
    B.case (B.int 1 |> fun i -> B.just Types.int i)
      [ B.alt_con "True" [] [] (fun _ -> B.int 1) ]
  in
  fails_lint e

let constructor_arity_checked () =
  let dc = Datacon.builtin "Just" in
  fails_lint (Con (dc, [ Types.int ], []))

let jump_may_claim_any_type () =
  (* The same join jumped to at two different claimed types (contexts
     of different types) — legal, both discard their context. *)
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn = { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = Var x } in
  let scrut = mk_jump jv [] [ B.int 1 ] Types.bool in
  let e =
    Join
      ( JNonRec defn,
        Case
          ( scrut,
            [
              { alt_pat = PCon (Datacon.builtin "True", []); alt_rhs = B.int 0 };
              { alt_pat = PDefault; alt_rhs = mk_jump jv [] [ B.int 2 ] Types.int };
            ] ) )
  in
  Alcotest.check ty_testable "type" Types.int (lints e)

let tests =
  [
    test "basic join lints" basic_join;
    test "Gotcha! example rejected" gotcha_rejected;
    test "jump in argument rejected (Delta reset)" jump_in_argument_rejected;
    test "jump under lambda rejected (Delta reset)" jump_under_lambda_rejected;
    test "jump in scrutinee ok (evaluation context)" jump_in_scrutinee_ok;
    test "jump in function position ok (Sec. 3)" jump_in_function_position_ok;
    test "join rhs may jump to outer join" join_rhs_jumps_outer_ok;
    test "non-recursive self-jump rejected" nonrec_join_self_jump_rejected;
    test "recursive join ok and runs" rec_join_ok;
    test "jump argument type mismatch" jump_arg_type_mismatch;
    test "jump arity mismatch (polyadic)" jump_arity_mismatch;
    test "polymorphic join point" polymorphic_join;
    test "join tyvar escape rejected" join_tyvar_escape_rejected;
    test "join point as value rejected" join_as_value_rejected;
    test "jump out of scope rejected" jump_out_of_scope_rejected;
    test "unbound variable rejected" unbound_var_rejected;
    test "case alternative types must agree" case_alt_types_must_agree;
    test "case pattern tycon mismatch" case_pattern_wrong_tycon;
    test "constructor arity checked" constructor_arity_checked;
    test "jump claims arbitrary types" jump_may_claim_any_type;
  ]
