(** Property-based tests: a generator of random {e well-typed} F_J
    terms (including join points and jumps), over which we check the
    paper's metatheory:

    - the generator only produces Lint-clean terms;
    - type safety (Prop. 1): evaluation never gets stuck;
    - call-by-name and call-by-need agree;
    - every optimisation pass — simplifier (both configurations),
      contification, Float In/Out, the full pipelines — preserves
      typing and observable results (Prop. 3);
    - erasure produces an equivalent join-free System F term (Thm. 5);
    - lowering to the block machine agrees with the evaluator. *)

open Fj_core
open Syntax
module B = Builder
module G = QCheck.Gen

let dc = Datacon.builtins

(* ------------------------------------------------------------------ *)
(* A generator of well-typed terms                                     *)
(* ------------------------------------------------------------------ *)

type genv = {
  vars : (Types.t * var) list;  (** In-scope term variables. *)
  labels : (var * Types.t list) list;
      (** In-scope join points (label, parameter types); only usable in
          tail position. *)
}

let maybe_int = B.maybe_ty Types.int
let list_int = B.list_ty Types.int
let i2i = Types.Arrow (Types.int, Types.int)

let scrutinee_types = [ Types.bool; maybe_int; list_int ]
let all_types = [ Types.int; Types.bool; maybe_int; list_int; i2i ]

let gen_ty : Types.t G.t = G.oneofl all_types

let vars_of env ty =
  List.filter_map
    (fun (t, v) -> if Types.equal t ty then Some v else None)
    env.vars

(* A canonical inhabitant of any generated type (fallback leaf). *)
let rec default_of (ty : Types.t) : expr =
  match ty with
  | Types.Arrow (a, b) ->
      let x = mk_var "d" a in
      Lam (x, default_of b)
  | _ ->
      if Types.equal ty Types.int then B.int 0
      else if Types.equal ty Types.bool then B.false_
      else if Types.equal ty maybe_int then B.nothing Types.int
      else if Types.equal ty list_int then B.nil Types.int
      else invalid_arg "default_of: unexpected type"

(* Leaf expressions of each type. *)
let gen_leaf env ty : expr G.t =
  let vs = vars_of env ty in
  let var_gens = List.map (fun v -> G.return (Var v)) vs in
  let base =
    if Types.equal ty Types.int then [ G.map B.int (G.int_bound 100) ]
    else if Types.equal ty Types.bool then
      [ G.oneofl [ B.true_; B.false_ ] ]
    else if Types.equal ty maybe_int then [ G.return (B.nothing Types.int) ]
    else if Types.equal ty list_int then [ G.return (B.nil Types.int) ]
    else if Types.equal ty i2i then
      [ G.return (B.lam "l" Types.int (fun x -> B.add x (B.int 1))) ]
    else [ G.return (default_of ty) ]
  in
  G.oneof (base @ var_gens)

(* [tail] controls whether jumps to in-scope labels may be emitted. *)
let rec gen ~tail env ty n : expr G.t =
  let open G in
  if n <= 0 then gen_leaf env ty
  else
    let sub = n / 2 in
    let no_labels = { env with labels = [] } in
    let candidates =
      [
        (* leaf *)
        (3, gen_leaf env ty);
        (* let *)
        ( 2,
          gen_ty >>= fun rty ->
          gen ~tail:false no_labels rty sub >>= fun rhs ->
          let x = mk_var "x" rty in
          gen ~tail { env with vars = (rty, x) :: env.vars } ty sub
          >|= fun body -> Let (NonRec (x, rhs), body) );
        (* case: scrutinee keeps no labels (conservative); branches
           inherit tail-ness. *)
        ( 3,
          oneofl scrutinee_types >>= fun sty ->
          gen ~tail:false no_labels sty sub >>= fun scrut ->
          gen_alts ~tail env sty ty sub >|= fun alts -> Case (scrut, alts) );
        (* application *)
        ( 2,
          gen ~tail:false no_labels Types.int sub >>= fun arg ->
          gen ~tail:false no_labels (Types.Arrow (Types.int, ty)) sub
          >|= fun f -> App (f, arg) );
        (* join point: one Int parameter; rhs and body are both tail
           (rhs may also use outer labels). *)
        ( 2,
          let x = mk_var "p" Types.int in
          let jv = mk_join_var "j" [] [ x ] in
          gen ~tail:true
            { env with vars = (Types.int, x) :: env.vars }
            ty sub
          >>= fun rhs ->
          gen ~tail:true
            { env with labels = (jv, [ Types.int ]) :: env.labels }
            ty sub
          >|= fun body ->
          Join
            (JNonRec { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = rhs }, body)
        );
      ]
    in
    (* arithmetic at Int *)
    let candidates =
      if Types.equal ty Types.int then
        ( 2,
          gen ~tail:false no_labels Types.int sub >>= fun a ->
          gen ~tail:false no_labels Types.int sub >|= fun b -> B.add a b )
        :: ( 1,
             gen ~tail:false no_labels Types.int sub >>= fun a ->
             gen ~tail:false no_labels Types.int sub >|= fun b -> B.mul a b )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty Types.bool then
        ( 2,
          gen ~tail:false no_labels Types.int sub >>= fun a ->
          gen ~tail:false no_labels Types.int sub >|= fun b -> B.lt a b )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty maybe_int then
        ( 2,
          gen ~tail:false no_labels Types.int sub >|= fun a ->
          B.just Types.int a )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty list_int then
        ( 2,
          gen ~tail:false no_labels Types.int sub >>= fun h ->
          gen ~tail:false no_labels list_int sub >|= fun t ->
          B.cons Types.int h t )
        :: candidates
      else candidates
    in
    let candidates =
      if Types.equal ty i2i then
        ( 2,
          let x = mk_var "a" Types.int in
          gen ~tail:false
            { vars = (Types.int, x) :: env.vars; labels = [] }
            Types.int sub
          >|= fun body -> Lam (x, body) )
        :: candidates
      else candidates
    in
    (* bounded recursive join point: a loop over a decreasing counter,
       so evaluation always terminates. The loop body may jump to the
       loop itself (with n-1) or to outer labels. *)
    let candidates =
      ( 1,
        let open G in
        let n = mk_var "n" Types.int in
        let jv = mk_join_var "loop" [] [ n ] in
        int_range 1 5 >>= fun start ->
        gen ~tail:true
          { env with vars = (Types.int, n) :: env.vars }
          ty (sub / 2)
        >>= fun base ->
        (* The non-jump branch sees only OUTER labels, so the counter
           strictly decreases and the loop always terminates. *)
        gen ~tail:true
          { vars = (Types.int, n) :: env.vars; labels = env.labels }
          ty (sub / 2)
        >|= fun step_tail ->
        let rhs =
          B.if_
            (B.le (Var n) (B.int 0))
            base
            (Case
               ( B.gt (Var n) (B.int 2),
                 [
                   {
                     alt_pat = PCon (Datacon.builtin "True", []);
                     alt_rhs = Jump (jv, [], [ B.sub (Var n) (B.int 1) ], ty);
                   };
                   {
                     alt_pat = PCon (Datacon.builtin "False", []);
                     alt_rhs = step_tail;
                   };
                 ] ))
        in
        Join
          ( JRec [ { j_var = jv; j_tyvars = []; j_params = [ n ]; j_rhs = rhs } ],
            Jump (jv, [], [ B.int start ], ty) ) )
      :: candidates
    in
    (* jumps, only in tail position *)
    let candidates =
      if tail && env.labels <> [] then
        ( 4,
          oneofl env.labels >>= fun (jv, ptys) ->
          let rec gen_args = function
            | [] -> return []
            | pty :: rest ->
                gen ~tail:false no_labels pty (sub / 2) >>= fun a ->
                gen_args rest >|= fun args -> a :: args
          in
          gen_args ptys >|= fun args -> Jump (jv, [], args, ty) )
        :: candidates
      else candidates
    in
    frequency candidates

and gen_alts ~tail env sty rty n : alt list G.t =
  let open G in
  if Types.equal sty Types.bool then
    gen ~tail env rty n >>= fun t ->
    gen ~tail env rty n >|= fun f ->
    [
      { alt_pat = PCon (Datacon.builtin "True", []); alt_rhs = t };
      { alt_pat = PCon (Datacon.builtin "False", []); alt_rhs = f };
    ]
  else if Types.equal sty maybe_int then
    let x = mk_var "mx" Types.int in
    gen ~tail env rty n >>= fun nothing_rhs ->
    gen ~tail { env with vars = (Types.int, x) :: env.vars } rty n
    >|= fun just_rhs ->
    [
      { alt_pat = PCon (Datacon.builtin "Nothing", []); alt_rhs = nothing_rhs };
      { alt_pat = PCon (Datacon.builtin "Just", [ x ]); alt_rhs = just_rhs };
    ]
  else
    (* List Int *)
    let h = mk_var "h" Types.int in
    let t = mk_var "t" list_int in
    gen ~tail env rty n >>= fun nil_rhs ->
    gen ~tail
      { env with vars = (Types.int, h) :: (list_int, t) :: env.vars }
      rty n
    >|= fun cons_rhs ->
    [
      { alt_pat = PCon (Datacon.builtin "Nil", []); alt_rhs = nil_rhs };
      { alt_pat = PCon (Datacon.builtin "Cons", [ h; t ]); alt_rhs = cons_rhs };
    ]

let gen_program : expr G.t =
  let open G in
  gen_ty >>= fun ty ->
  int_range 2 24 >>= fun n -> gen ~tail:true { vars = []; labels = [] } ty n

let arb_program =
  QCheck.make ~print:(fun e -> Pretty.to_string e) gen_program

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let fuel = 200_000

let eval_tree e =
  match Eval.run_deep ~fuel e with
  | t, _ -> `Value t
  | exception Eval.Out_of_fuel -> `Timeout
  | exception Eval.Stuck m -> `Stuck m

let prop_count = 300

let prop name f = QCheck.Test.make ~count:prop_count ~name arb_program f

let generator_produces_well_typed =
  prop "generated terms lint" (fun e -> Lint.well_typed dc e)

let type_safety =
  prop "type safety: evaluation never sticks (Prop. 1)" (fun e ->
      match eval_tree e with
      | `Value _ | `Timeout -> true
      | `Stuck m -> QCheck.Test.fail_reportf "stuck: %s" m)

let name_need_agree =
  prop "call-by-name and call-by-need agree" (fun e ->
      let need = eval_tree e in
      let name =
        match Eval.eval ~mode:Eval.By_name ~fuel e with
        | v, _ -> (
            match Eval.force_deep ~fuel v with
            | t -> `Value t
            | exception Eval.Out_of_fuel -> `Timeout)
        | exception Eval.Out_of_fuel -> `Timeout
        | exception Eval.Stuck m -> `Stuck m
      in
      match (need, name) with
      | `Value a, `Value b -> Eval.equal_tree a b
      | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
      | _ -> false)

let pass_preserves pass_name pass =
  prop
    (pass_name ^ " preserves typing and meaning (Prop. 3)")
    (fun e ->
      let e' = pass e in
      if not (Lint.well_typed dc e') then
        QCheck.Test.fail_reportf "result does not lint:@.%a" Pretty.pp e'
      else
        match (eval_tree e, eval_tree e') with
        | `Value a, `Value b ->
            Eval.equal_tree a b
            || QCheck.Test.fail_reportf "results differ: %a vs %a@.after:@.%a"
                 Eval.pp_tree a Eval.pp_tree b Pretty.pp e'
        | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
        | `Stuck m, _ | _, `Stuck m ->
            QCheck.Test.fail_reportf "stuck: %s" m)

let simplify_preserves =
  pass_preserves "simplify (join points)"
    (Simplify.simplify (Simplify.default_config ()))

let simplify_baseline_preserves =
  pass_preserves "simplify (baseline)"
    (fun e ->
      Simplify.simplify (Simplify.default_config ~join_points:false ())
        (Erase.erase e))

let contify_preserves = pass_preserves "contify" Contify.contify

let float_in_preserves =
  pass_preserves "float-in" (fun e -> fst (Float_in.run e))

let float_out_preserves =
  pass_preserves "float-out" (fun e -> fst (Float_out.run e))

let cleanup_preserves =
  pass_preserves "cleanup (jinline/jdrop)" (fun e -> fst (Cleanup.cleanup e))

let strictify_preserves = pass_preserves "demand strictify" Demand.strictify

let sexp_roundtrip =
  prop "serialisation round trips exactly" (fun e ->
      let e' = Sexp.read dc (Sexp.write e) in
      String.equal (Pretty.to_string e) (Pretty.to_string e'))

let cps_preserves =
  prop "CPS transform preserves meaning on the monomorphic fragment"
    (fun e ->
      (* Generated terms are monomorphic and join-ful: erase first.
         CPS evaluation is call-by-value; generated terms are total, so
         results agree (timeouts discarded). *)
      match Cps.transform (Erase.erase e) with
      | exception Cps.Unsupported _ -> QCheck.assume_fail ()
      | e' ->
          if not (Lint.well_typed dc e') then
            QCheck.Test.fail_reportf "CPS output does not lint:@.%a" Pretty.pp
              e'
          else (
            match (eval_tree e, eval_tree e') with
            | `Value a, `Value b -> Eval.equal_tree a b
            | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
            | `Stuck m, _ | _, `Stuck m ->
                QCheck.Test.fail_reportf "stuck: %s" m))

let freshen_preserves = pass_preserves "freshen" Subst.freshen

let cnf_preserves =
  pass_preserves "commuting-normal form" Erase.commuting_normal_form

let pipeline_preserves mode =
  pass_preserves
    ("pipeline " ^ Pipeline.mode_name mode)
    (fun e ->
      let e = if mode = Pipeline.Join_points then e else Erase.erase e in
      Pipeline.run (Pipeline.default_config ~mode ()) e)

let erase_theorem =
  prop "erasure: equivalent join-free System F term (Thm. 5)" (fun e ->
      let e' = Erase.erase e in
      if not (Erase.is_join_free e') then
        QCheck.Test.fail_reportf "joins remain:@.%a" Pretty.pp e'
      else if not (Lint.well_typed dc e') then
        QCheck.Test.fail_reportf "erased term does not lint:@.%a" Pretty.pp e'
      else
        match (eval_tree e, eval_tree e') with
        | `Value a, `Value b -> Eval.equal_tree a b
        | `Timeout, _ | _, `Timeout -> QCheck.assume_fail ()
        | _ -> false)

let erase_type_preserved =
  prop "erasure preserves the type" (fun e ->
      match (Lint.lint_result dc e, Lint.lint_result dc (Erase.erase e)) with
      | Ok t1, Ok t2 -> Types.equal t1 t2
      | _ -> false)

let machine_agrees =
  prop "block machine agrees with the evaluator" (fun e ->
      (* The machine is call-by-value: evaluate strictly; compare only
         when the lazy evaluator also produced a value and the strict
         machine terminates. Disagreement on termination alone is
         allowed (strictness); disagreement on VALUES is a bug. *)
      match eval_tree e with
      | `Timeout | `Stuck _ -> QCheck.assume_fail ()
      | `Value a -> (
          let prog = Fj_machine.Lower.lower_program e in
          match Fj_machine.Bmachine.run ~fuel prog with
          | v, _ ->
              let b = Fj_machine.Bmachine.tree_of_value v in
              Eval.equal_tree a b
              || QCheck.Test.fail_reportf "machine: %a, evaluator: %a"
                   Eval.pp_tree b Eval.pp_tree a
          | exception Fj_machine.Bmachine.Out_of_fuel -> QCheck.assume_fail ()
          | exception Fj_machine.Bmachine.Stuck m ->
              QCheck.Test.fail_reportf "machine stuck: %s" m))

let occurrence_analysis_sound =
  prop "dead per Occur implies really dead" (fun e ->
      (* If the analysis says a let binder is dead, dropping the
         binding must preserve meaning. Checked via the Cleanup pass on
         a wrapper; here we validate on the root only. *)
      match e with
      | Let (NonRec (x, _), body) ->
          let usage = Occur.of_expr body in
          if Occur.is_dead usage x then not (occurs x.v_name body) else true
      | _ -> true)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      generator_produces_well_typed;
      type_safety;
      name_need_agree;
      simplify_preserves;
      simplify_baseline_preserves;
      contify_preserves;
      float_in_preserves;
      float_out_preserves;
      cleanup_preserves;
      strictify_preserves;
      sexp_roundtrip;
      cps_preserves;
      freshen_preserves;
      cnf_preserves;
      pipeline_preserves Pipeline.Baseline;
      pipeline_preserves Pipeline.Join_points;
      pipeline_preserves Pipeline.No_cc;
      erase_theorem;
      erase_type_preserved;
      machine_agrees;
      occurrence_analysis_sound;
    ]
