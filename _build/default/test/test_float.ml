(** Tests for {!Fj_core.Float_in} and {!Fj_core.Float_out}, including
    the paper's requirements that the floating passes not destroy join
    points (Sec. 7), and the staged Moby derivation of Sec. 4. *)

open Fj_core
open Syntax
open Util
module B = Builder

let float_in e =
  let _ = lints e in
  let e', _ = Float_in.run e in
  let _ = lints e' in
  same_result e e';
  e'

let float_out e =
  let _ = lints e in
  let e', _ = Float_out.run e in
  let _ = lints e' in
  same_result e e';
  e'

(* let x = rhs in case s of {A -> ..x..; B -> no-x} sinks x into the A
   branch. *)
let sink_into_branch () =
  let e =
    B.let_ "x"
      (B.add (B.int 1) (B.int 2))
      (fun x ->
        B.if_ B.true_ (B.add x (B.int 1)) (B.int 0))
  in
  match float_in e with
  | Case (_, alts) ->
      let lets_in_branches =
        List.length
          (List.filter
             (fun a -> match a.alt_rhs with Let _ -> true | _ -> false)
             alts)
      in
      Alcotest.(check int) "binding sank into one branch" 1 lets_in_branches
  | e' -> Alcotest.failf "expected a case at top, got %a" Pretty.pp e'

(* The Moby first step (Sec. 4): let f = rhs in case (f y) of alts
   becomes case (let f = rhs in f y) of alts, which contify can then
   turn into a join. *)
let moby_staging () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f ->
        B.case (App (f, B.int 1))
          [ B.alt_default (B.int 0) ])
  in
  let e1 = float_in e in
  (match e1 with
  | Case (Let _, _) -> ()
  | _ -> Alcotest.failf "expected case-of-let, got %a" Pretty.pp e1);
  (* Now contification applies inside the scrutinee. *)
  let e2 = Contify.contify e1 in
  let rec has_join = function
    | Join _ -> true
    | Case (s, alts) ->
        has_join s || List.exists (fun a -> has_join a.alt_rhs) alts
    | Let (NonRec (_, r), b) -> has_join r || has_join b
    | _ -> false
  in
  Alcotest.(check bool) "contified after float-in" true (has_join e2);
  let _ = lints e2 in
  same_result e e2

(* Float In does not sink a binding used in several branches. *)
let no_sink_when_shared () =
  let e =
    B.let_ "x"
      (B.add (B.int 1) (B.int 2))
      (fun x -> B.if_ B.true_ x x)
  in
  match float_in e with
  | Let _ -> ()
  | e' -> Alcotest.failf "shared binding must stay put: %a" Pretty.pp e'

(* Float In never pushes into (or past) a join right-hand side. *)
let no_sink_into_join_rhs () =
  let e =
    B.let_ "x"
      (B.add (B.int 1) (B.int 2))
      (fun x ->
        B.join1 "j"
          [ ("y", Types.int) ]
          (fun ys -> B.add (List.hd ys) x)
          (fun jmp -> jmp [ B.int 1 ] Types.int))
  in
  match float_in e with
  | Let (NonRec _, Join _) -> ()
  | e' -> Alcotest.failf "binding must stay outside the join: %a" Pretty.pp e'

(* Float Out moves a closed binding out of a lambda. *)
let float_out_of_lambda () =
  let e =
    B.lam "x" Types.int (fun x ->
        B.let_ "k" (B.add (B.int 1) (B.int 2)) (fun k -> B.add x k))
  in
  match float_out e with
  | Let (NonRec _, Lam _) -> ()
  | e' -> Alcotest.failf "expected let outside lambda, got %a" Pretty.pp e'

(* Float Out must NOT move a binding that mentions the lambda's binder. *)
let float_out_respects_scope () =
  let e =
    B.lam "x" Types.int (fun x ->
        B.let_ "k" (B.add x (B.int 2)) (fun k -> B.add k k))
  in
  match float_out e with
  | Lam _ -> ()
  | e' -> Alcotest.failf "dependent binding must stay, got %a" Pretty.pp e'

(* Sec. 7: Float Out leaves join bindings alone (moving them would
   destroy the join point). *)
let float_out_keeps_joins () =
  let e =
    B.lam "x" Types.int (fun x ->
        B.join1 "j" []
          (fun _ -> B.int 5)
          (fun jmp ->
            B.if_ (B.gt x (B.int 0)) (jmp [] Types.int) (B.int 0)))
  in
  match float_out e with
  | Lam (_, Join _) -> ()
  | e' -> Alcotest.failf "join binding must not move, got %a" Pretty.pp e'

(* Float In sinks through App arguments. *)
let sink_into_argument () =
  let e =
    B.let_ "x"
      (B.add (B.int 1) (B.int 2))
      (fun x ->
        B.app (B.lam "y" Types.int (fun y -> y)) (B.add x (B.int 1)))
  in
  match float_in e with
  | App (_, Let _) -> ()
  | e' -> Alcotest.failf "expected let in argument, got %a" Pretty.pp e'

let tests =
  [
    test "sink into single branch" sink_into_branch;
    test "Moby staging: float-in then contify (Sec. 4)" moby_staging;
    test "no sink when shared" no_sink_when_shared;
    test "no sink into join rhs" no_sink_into_join_rhs;
    test "float out of lambda" float_out_of_lambda;
    test "float out respects scope" float_out_respects_scope;
    test "float out leaves join bindings (Sec. 7)" float_out_keeps_joins;
    test "sink into application argument" sink_into_argument;
  ]
