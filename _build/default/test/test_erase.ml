(** Tests for {!Fj_core.Erase} — the executable Theorem 5: every
    well-typed F_J term has an equivalent System F (join-free) term,
    via commuting-normal form + de-contification. Includes the worked
    examples of Sec. 6. *)

open Fj_core
open Syntax
open Util
module B = Builder

let check_erase e =
  let _ = lints e in
  let e' = Erase.erase e in
  Alcotest.(check bool) "join-free" true (Erase.is_join_free e');
  let _ = lints e' in
  same_result e e';
  e'

(* Sec. 6 example 1: join j x = x + 1 in (jump j 1 (Int -> Int)) 2 —
   the jump is not a tail call; abort must fire first. *)
let non_tail_jump_erases () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = B.add (Var x) (B.int 1) }
  in
  let e =
    Join
      ( JNonRec defn,
        App
          (Jump (jv, [], [ B.int 1 ], Types.Arrow (Types.int, Types.int)), B.int 2)
      )
  in
  let e' = check_erase e in
  let t, _ = run e' in
  Alcotest.(check string) "result" "2" (Fmt.str "%a" Eval.pp_tree t)

(* Sec. 6 example 2: the jump buried inside a tail context under an
   application — needs commute then abort. *)
let buried_jump_erases () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = B.add (Var x) (B.int 1) }
  in
  let i2i = Types.Arrow (Types.int, Types.int) in
  let e =
    Join
      ( JNonRec defn,
        App
          ( B.if_ B.true_
              (Jump (jv, [], [ B.int 1 ], i2i))
              (Jump (jv, [], [ B.int 3 ], i2i)),
            B.int 2 ) )
  in
  let e' = check_erase e in
  let t, _ = run e' in
  Alcotest.(check string) "result" "2" (Fmt.str "%a" Eval.pp_tree t)

let simple_join_erases () =
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> B.add (List.hd xs) (B.int 1))
      (fun jmp -> jmp [ B.int 41 ] Types.int)
  in
  ignore (check_erase e)

let recursive_join_erases () =
  let e =
    B.joinrec1 "loop"
      [ ("n", Types.int); ("acc", Types.int) ]
      (fun jmp xs ->
        match xs with
        | [ n; acc ] ->
            B.if_ (B.le n (B.int 0)) acc
              (jmp [ B.sub n (B.int 1); B.add acc n ] Types.int)
        | _ -> assert false)
      (fun jmp -> jmp [ B.int 10; B.int 0 ] Types.int)
  in
  let e' = check_erase e in
  let t, _ = run e' in
  Alcotest.(check string) "sum" "55" (Fmt.str "%a" Eval.pp_tree t)

(* Erasure round-trip: contify then erase recovers a join-free term
   with the same meaning. *)
let contify_erase_roundtrip () =
  let e =
    B.let_ "f"
      (B.lam "x" Types.int (fun x -> B.add x (B.int 1)))
      (fun f -> B.if_ B.true_ (App (f, B.int 1)) (App (f, B.int 2)))
  in
  let contified = Contify.contify e in
  let erased = check_erase contified in
  same_result e erased

(* Erasing output of the full optimiser. *)
let erase_optimised_pipeline () =
  let denv, core =
    Fj_surface.Prelude.compile
      "def main = sum (map (\\x -> x + 1) (filter even (enumFromTo 1 30)))"
  in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv ()
  in
  let opt = Pipeline.run cfg core in
  let erased = Erase.erase opt in
  Alcotest.(check bool) "join-free" true (Erase.is_join_free erased);
  (match Lint.lint_result denv erased with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "erased does not lint: %a" Lint.pp_error err);
  same_result core erased

(* Commuting-normal form alone already makes every jump a tail call:
   after [commuting_normal_form], jinline must apply to every
   once-used join. *)
let cnf_tail_property () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = B.add (Var x) (B.int 1) }
  in
  let e =
    Join
      ( JNonRec defn,
        App
          (Jump (jv, [], [ B.int 1 ], Types.Arrow (Types.int, Types.int)), B.int 2)
      )
  in
  let cnf = Erase.commuting_normal_form e in
  let _ = lints cnf in
  same_result e cnf;
  match cnf with
  | Join (JNonRec d, body) ->
      Alcotest.(check bool) "jinline applies post-CNF" true
        (Axioms.substitute_jumps ~defn:d body <> None)
  | e' -> Alcotest.failf "expected a join at top: %a" Pretty.pp e'

let tests =
  [
    test "non-tail jump erases (Sec. 6 ex. 1)" non_tail_jump_erases;
    test "buried jump erases (Sec. 6 ex. 2)" buried_jump_erases;
    test "simple join erases" simple_join_erases;
    test "recursive join erases" recursive_join_erases;
    test "contify/erase round trip" contify_erase_roundtrip;
    test "erase optimised pipeline output" erase_optimised_pipeline;
    test "CNF makes jumps tail calls (Lemma 4)" cnf_tail_property;
  ]
