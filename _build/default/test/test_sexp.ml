(** Tests for {!Fj_core.Sexp} — the IR serialisation: exact round
    trips (uniques preserved), error handling, and interaction with the
    rest of the toolchain (a reloaded program still lints, runs and
    optimises identically). *)

open Fj_core
open Util
module B = Builder

let roundtrip e =
  let s = Sexp.write e in
  let e' = Sexp.read dc s in
  (* Exact: the printed Core must be identical, uniques included. *)
  Alcotest.(check string) "identical after round trip" (Pretty.to_string e)
    (Pretty.to_string e');
  e'

let literals () =
  ignore (roundtrip (B.int 42));
  ignore (roundtrip (B.int (-7)));
  ignore (roundtrip (B.char 'x'));
  ignore (roundtrip (B.str "hello \"world\"\n"))

let data_and_prims () =
  ignore (roundtrip (B.int_list [ 1; 2; 3 ]));
  ignore (roundtrip (B.add (B.mul (B.int 2) (B.int 3)) (B.int 4)));
  ignore (roundtrip (B.pair Types.int Types.bool (B.int 1) B.true_))

let functions_and_lets () =
  ignore (roundtrip (B.lam "x" Types.int (fun x -> B.add x (B.int 1))));
  ignore
    (roundtrip
       (B.let_ "a" (B.int 1) (fun a ->
            B.letrec1 "f"
              (Types.Arrow (Types.int, Types.int))
              (fun f -> B.lam "n" Types.int (fun n -> B.app f (B.add n a)))
              (fun f -> B.app f (B.int 0)))))

let polymorphism () =
  ignore (roundtrip (B.tlam "a" (fun a -> B.lam "x" a (fun x -> x))));
  ignore
    (roundtrip
       (B.tyapp (B.tlam "a" (fun a -> B.lam "x" a (fun x -> x))) Types.int))

let join_points () =
  ignore
    (roundtrip
       (B.join1 "j"
          [ ("x", Types.int) ]
          (fun xs -> B.add (List.hd xs) (B.int 1))
          (fun jmp -> jmp [ B.int 41 ] Types.int)));
  ignore
    (roundtrip
       (B.joinrec1 "loop"
          [ ("n", Types.int) ]
          (fun jmp xs ->
            B.if_
              (B.le (List.hd xs) (B.int 0))
              (B.int 0)
              (jmp [ B.sub (List.hd xs) (B.int 1) ] Types.int))
          (fun jmp -> jmp [ B.int 3 ] Types.int)))

let strict_bindings () =
  let x = Syntax.mk_var "x" Types.int in
  ignore
    (roundtrip
       (Syntax.Let (Syntax.Strict (x, B.add (B.int 1) (B.int 2)), Syntax.Var x)))

let whole_program () =
  let denv, core =
    Fj_surface.Prelude.compile
      "def main = sum (map (\\x -> x * 2) (filter odd (enumFromTo 1 20)))"
  in
  let s = Sexp.write core in
  let core' = Sexp.read denv s in
  (* Reloaded: lints, runs and optimises exactly like the original. *)
  let _ = lints ~env:denv core' in
  same_result core core';
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv ()
  in
  same_result (Pipeline.run cfg core) (Pipeline.run cfg core')

let optimised_program () =
  (* Serialising post-optimisation Core (with joins and strict lets). *)
  let denv, core =
    Fj_fusion.Streams.compile_pipeline
      (Fj_fusion.Streams.sum_map_filter_skipless 30)
  in
  let cfg =
    Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv
      ~inline_threshold:300 ()
  in
  let opt = Pipeline.run cfg core in
  let opt' = Sexp.read denv (Sexp.write opt) in
  let _ = lints ~env:denv opt' in
  same_result opt opt'

let fresh_uniques_safe () =
  (* After reading, newly allocated uniques must not collide with the
     loaded ones. *)
  let e = B.lam "x" Types.int (fun x -> x) in
  let e' = Sexp.read dc (Sexp.write e) in
  let max_id =
    Ident.Set.fold
      (fun i acc -> max acc (Ident.id i))
      (Syntax.free_vars e') 0
  in
  let fresh = Ident.fresh "probe" in
  Alcotest.(check bool) "fresh above loaded" true (Ident.id fresh > max_id)

let parse_errors () =
  let bad = [ "("; ")"; "(var)"; "(lam x)"; "(con Unknown () )"; "" ] in
  List.iter
    (fun src ->
      match Sexp.read dc src with
      | exception Sexp.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected a parse error for %S" src)
    bad

let tests =
  [
    test "literals round trip" literals;
    test "data and primops round trip" data_and_prims;
    test "functions and lets round trip" functions_and_lets;
    test "polymorphism round trips" polymorphism;
    test "join points round trip" join_points;
    test "strict bindings round trip" strict_bindings;
    test "whole programs round trip and re-optimise" whole_program;
    test "optimised core round trips" optimised_program;
    test "fresh uniques stay disjoint" fresh_uniques_safe;
    test "parse errors are reported" parse_errors;
  ]
