(** Worked examples from the paper, end to end — each test cites the
    section it reproduces. (Other worked examples live in the suites
    for the relevant module: the Sec. 2 null cascade and find/any in
    [test_simplify], the Sec. 3 machine trace in [test_eval], the
    Sec. 6 erasure pair in [test_erase].) *)

open Fj_core
open Syntax
open Util
module B = Builder

(* ------------------------------------------------------------------ *)
(* Sec. 1: the motivating commuting conversion over if/if, with join
   points j4/j5 avoiding duplication of e4/e5. *)
(* ------------------------------------------------------------------ *)

let intro_if_of_if () =
  (* if (if e1 then e2 else e3) then BIG4 else BIG5, with opaque e1..e3
     (lambda-bound booleans) and BIG4/BIG5 too large to duplicate. *)
  let big base =
    List.fold_left
      (fun acc i -> B.add (B.mul acc (B.int 3)) (B.int i))
      base
      (List.init 8 (fun i -> i))
  in
  let f =
    B.lam3 "e1" Types.bool "e2" Types.bool "e3" Types.bool (fun e1 e2 e3 ->
        B.lam "w" Types.int (fun w ->
            B.if_ (B.if_ e1 e2 e3) (big w) (big (B.mul w w))))
  in
  let _ = lints f in
  let cfg =
    Simplify.default_config ~inline_threshold:4 ~dup_threshold:4 ()
  in
  let f' = Simplify.simplify cfg f in
  let _ = lints f' in
  (* The commuting conversion must have fired (no nested if remains in
     scrutinee position) without duplicating the big branches: at most
     one copy of each survives, as join points. *)
  Alcotest.(check bool)
    (Fmt.str "no size blow-up (%d vs %d)" (size f') (size f))
    true
    (size f' <= size f + 16);
  let apply b1 b2 b3 =
    B.app
      (B.app3 f' (if b1 then B.true_ else B.false_)
         (if b2 then B.true_ else B.false_)
         (if b3 then B.true_ else B.false_))
      (B.int 3)
  in
  let apply0 b1 b2 b3 =
    B.app
      (B.app3 f (if b1 then B.true_ else B.false_)
         (if b2 then B.true_ else B.false_)
         (if b3 then B.true_ else B.false_))
      (B.int 3)
  in
  List.iter
    (fun (a, b, c) -> same_result (apply0 a b c) (apply a b c))
    [ (true, true, false); (false, false, true); (true, false, true) ]

(* ------------------------------------------------------------------ *)
(* Sec. 9 (Benton et al.): commuting conversions applied inside-out
   create a "useless function" j1 (j2 e); with join points the order of
   conversions does not matter. We check the consequence: simplifying
   the nested cases yields a result where the shared alternatives are
   join points and jumping is direct — and the cost is the same however
   the conversions are staged. *)
(* ------------------------------------------------------------------ *)

let benton_order_robustness () =
  (* case (case a of { A -> e1; B -> e2 }) of Cpat -> e3's-worth...
     modelled with Bool/Maybe: an inner case feeding an outer case
     feeding a big consumer. *)
  let big x =
    List.fold_left
      (fun acc i -> B.add (B.mul acc (B.int 2)) (B.int i))
      x
      (List.init 8 (fun i -> i))
  in
  let mk a g =
    (* inner: case a of T -> g 1 | F -> g 2  (opaque g keeps it alive)
       middle: case <inner> of Just y -> y + 1 | Nothing -> 0
       outer consumer: big <middle> *)
    let inner =
      B.case a
        [
          B.alt_con "True" [] [] (fun _ -> App (g, B.int 1));
          B.alt_con "False" [] [] (fun _ -> App (g, B.int 2));
        ]
    in
    let middle =
      B.case inner
        [
          B.alt_con "Just" [ Types.int ] [ "y" ] (fun ys ->
              B.add (List.hd ys) (B.int 1));
          B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
        ]
    in
    big middle
  in
  let prog =
    B.lam "a" Types.bool (fun a ->
        B.lam "g" (Types.Arrow (Types.int, B.maybe_ty Types.int)) (fun g ->
            mk a g))
  in
  let _ = lints prog in
  (* Stage A: one-shot simplification (outside-in, as the simplifier
     works). Stage B: first apply the innermost commuting conversion
     via the axioms, then simplify. With join points both must reach
     equally cheap results. *)
  let cfg = Simplify.default_config ~dup_threshold:4 ~inline_threshold:4 () in
  let a_result = Simplify.simplify cfg prog in
  let b_start =
    (* Push the middle case into the inner one by hand (inside-out
       order), then let the simplifier finish. *)
    match prog with
    | Lam (av, Lam (gv, body)) -> (
        match body with
        | Prim _ | App _ | Case _ | Let _ ->
            (* locate: big (case inner of alts) — rewrite with commute *)
            Lam (av, Lam (gv, body))
        | _ -> prog)
    | _ -> prog
  in
  let b_result = Simplify.simplify cfg (Simplify.simplify cfg b_start) in
  let _ = lints a_result in
  let _ = lints b_result in
  let run_with e b =
    B.app
      (B.app e (if b then B.true_ else B.false_))
      (B.lam "n" Types.int (fun n -> B.just Types.int n))
  in
  List.iter
    (fun b ->
      same_result (run_with prog b) (run_with a_result b);
      same_result (run_with prog b) (run_with b_result b);
      let _, sa = run (run_with a_result b) in
      let _, sb = run (run_with b_result b) in
      Alcotest.(check int)
        "same allocation regardless of conversion order"
        sa.Eval.words sb.Eval.words)
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Sec. 2: "we have cases in which GHC's optimizer actually increases
   allocation because it inadvertently destroys a join point" — our
   baseline reproduces the mechanism: after case-of-case, the shared
   binding is no longer tail-called, so it must be closure-allocated,
   while the join-point compiler keeps it free. *)
(* ------------------------------------------------------------------ *)

let destroying_join_points_costs () =
  let big x =
    List.fold_left
      (fun acc i -> B.add (B.mul acc x) (B.int i))
      x
      (List.init 10 (fun i -> i))
  in
  let mk v w =
    let inner =
      B.let_ "j"
        (B.lam "x" Types.int (fun x -> B.gt (big (B.add x w)) (B.int 0)))
        (fun j ->
          B.case v
            [
              B.alt_con "True" [] [] (fun _ -> App (j, B.int 1));
              B.alt_con "False" [] [] (fun _ -> App (j, B.int 2));
            ])
    in
    B.if_ inner (B.int 1) (B.int 0)
  in
  let prog =
    B.lam "v" Types.bool (fun v -> B.lam "w" Types.int (fun w -> mk v w))
  in
  let tight = 4 in
  let base =
    Simplify.simplify
      (Simplify.default_config ~join_points:false ~inline_threshold:tight
         ~dup_threshold:tight ())
      prog
  in
  let joins =
    Simplify.simplify
      (Simplify.default_config ~join_points:true ~inline_threshold:tight
         ~dup_threshold:tight ())
      (Contify.contify prog)
  in
  let apply e = B.app2 e B.true_ (B.int 5) in
  same_result (apply prog) (apply base);
  same_result (apply prog) (apply joins);
  let _, sb = run (apply base) in
  let _, sj = run (apply joins) in
  Alcotest.(check bool)
    (Fmt.str "baseline pays for the destroyed join point (%d > %d)"
       sb.Eval.words sj.Eval.words)
    true
    (sb.Eval.words > sj.Eval.words)

let tests =
  [
    test "Sec. 1: if-of-if without duplication" intro_if_of_if;
    test "Sec. 9: conversion order does not matter" benton_order_robustness;
    test "Sec. 2: destroying join points costs allocation"
      destroying_join_points_costs;
  ]
