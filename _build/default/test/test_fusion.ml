(** Tests for the stream-fusion library (Sec. 5): the paper's central
    performance claims, checked exactly.

    - skipless pipelines containing [filter] fuse to zero allocation
      under the join-point compiler ("a straight win");
    - they do NOT fuse under the baseline (the recursive stepper
      "breaks up the chain of cases by putting a loop in the way");
    - skip-ful [zip] is more expensive than skipless [zip]. *)

open Fj_core
open Util

let words_after mode src =
  let denv, core = Fj_fusion.Streams.compile_pipeline src in
  let _ = lints ~env:denv core in
  let cfg =
    Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 ()
  in
  let e = Pipeline.run cfg core in
  let _ = lints ~env:denv e in
  let t0, _ = run core in
  let t, s = run e in
  Alcotest.check tree_testable "pipeline preserves meaning" t0 t;
  s.Eval.words

let skipless_fuses_to_zero () =
  let w =
    words_after Pipeline.Join_points
      (Fj_fusion.Streams.sum_map_filter_skipless 100)
  in
  Alcotest.(check int) "zero allocation" 0 w

let skipless_baseline_allocates_per_element () =
  let w100 =
    words_after Pipeline.Baseline
      (Fj_fusion.Streams.sum_map_filter_skipless 100)
  in
  let w200 =
    words_after Pipeline.Baseline
      (Fj_fusion.Streams.sum_map_filter_skipless 200)
  in
  Alcotest.(check bool) "O(n) allocation" true (w200 > w100 + 100)

let skipful_also_fuses () =
  let w =
    words_after Pipeline.Join_points
      (Fj_fusion.Streams.sum_map_filter_skipful 100)
  in
  Alcotest.(check int) "zero allocation" 0 w

let double_filter_fuses () =
  let w =
    words_after Pipeline.Join_points
      (Fj_fusion.Streams.double_filter_skipless 100)
  in
  Alcotest.(check int) "zero allocation" 0 w

let zip_skipful_worse () =
  (* "functions like zip that consume two lists become more complicated
     and less efficient" with Skip. *)
  let skipless =
    words_after Pipeline.Join_points (Fj_fusion.Streams.dot_product_skipless 100)
  in
  let skipful =
    words_after Pipeline.Join_points (Fj_fusion.Streams.dot_product_skipful 100)
  in
  Alcotest.(check bool)
    (Fmt.str "skip-ful zip allocates more (%d > %d)" skipful skipless)
    true (skipful > skipless)

let results_agree_everywhere () =
  (* One shared value across: lists, skipless, skip-ful × both modes. *)
  let value src =
    let denv, core = Fj_fusion.Streams.compile_pipeline src in
    let cfg =
      Pipeline.default_config ~mode:Pipeline.Join_points ~datacons:denv ()
    in
    let t, _ = run (Pipeline.run cfg core) in
    Fmt.str "%a" Eval.pp_tree t
  in
  let open Fj_fusion.Streams in
  let a = value (sum_map_filter_skipless 50) in
  let b = value (sum_map_filter_skipful 50) in
  let c = value (sum_map_filter_lists 50) in
  Alcotest.(check string) "skipless = skipful" a b;
  Alcotest.(check string) "skipless = lists" a c

let to_list_round_trip () =
  let denv, core =
    Fj_fusion.Streams.compile_pipeline "sToList (sMap (\\x -> x + 1) (sFromTo 1 5))"
  in
  let _ = lints ~env:denv core in
  let t, _ = run core in
  Alcotest.(check string) "materialised"
    "(Cons 2 (Cons 3 (Cons 4 (Cons 5 (Cons 6 Nil)))))"
    (Fmt.str "%a" Eval.pp_tree t)

let from_list_consumes () =
  let denv, core =
    Fj_fusion.Streams.compile_pipeline "sSum (sFromList [10, 20, 30])"
  in
  let _ = lints ~env:denv core in
  let t, _ = run core in
  Alcotest.(check string) "summed" "60" (Fmt.str "%a" Eval.pp_tree t)

let take_limits () =
  let denv, core =
    Fj_fusion.Streams.compile_pipeline "sSum (sTake 3 (sFromTo 1 100))"
  in
  let _ = lints ~env:denv core in
  let t, _ = run core in
  Alcotest.(check string) "took 3" "6" (Fmt.str "%a" Eval.pp_tree t)

let fused_beats_lists_on_steps () =
  let steps mode src =
    let denv, core = Fj_fusion.Streams.compile_pipeline src in
    let cfg = Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 () in
    let _, s = run (Pipeline.run cfg core) in
    s.Eval.steps
  in
  let fused =
    steps Pipeline.Join_points (Fj_fusion.Streams.sum_map_filter_skipless 100)
  in
  let lists =
    steps Pipeline.Join_points (Fj_fusion.Streams.sum_map_filter_lists 100)
  in
  Alcotest.(check bool)
    (Fmt.str "fused streams cheaper than lists (%d < %d)" fused lists)
    true (fused < lists)

let tests =
  [
    test "skipless+joins fuses to zero allocation" skipless_fuses_to_zero;
    test "skipless baseline allocates O(n)" skipless_baseline_allocates_per_element;
    test "skip-ful also fuses under joins" skipful_also_fuses;
    test "double filter fuses" double_filter_fuses;
    test "skip-ful zip is worse" zip_skipful_worse;
    test "all representations agree" results_agree_everywhere;
    test "sToList materialises" to_list_round_trip;
    test "sFromList consumes" from_list_consumes;
    test "sTake limits" take_limits;
    test "fused streams beat lists on steps" fused_beats_lists_on_steps;
  ]
