(** Tests for {!Fj_core.Axioms} — each Fig. 4 axiom as a single-step
    rewrite, checked for applicability, type preservation and meaning
    preservation (Prop. 3 on concrete instances). *)

open Fj_core
open Syntax
open Util
module B = Builder
module A = Axioms

let apply_ok name ax e =
  match ax e with
  | Some e' ->
      let _ = lints e in
      let _ = lints e' in
      same_result e e';
      e'
  | None -> Alcotest.failf "axiom %s did not apply to %a" name Pretty.pp e

let beta_makes_let () =
  let e = App (B.lam "x" Types.int (fun x -> B.add x x), B.int 5) in
  let e' = apply_ok "beta" A.beta e in
  match e' with
  | Let (NonRec (_, Lit _), _) -> ()
  | _ -> Alcotest.failf "expected a let, got %a" Pretty.pp e'

let beta_ty_substitutes () =
  let e = TyApp (B.tlam "a" (fun a -> B.lam "x" a (fun x -> x)), Types.int) in
  let e' = apply_ok "beta_ty" A.beta_ty e in
  Alcotest.check ty_testable "instantiated"
    (Types.Arrow (Types.int, Types.int))
    (ty_of e')

let inline_value () =
  let e =
    B.let_ "v" (B.just Types.int (B.int 3)) (fun v ->
        B.case v
          [
            B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
            B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
          ])
  in
  let e' = apply_ok "inline" A.inline e in
  (* After inlining, the body scrutinises the constructor directly. *)
  match e' with
  | Let (_, Case (Con _, _)) -> ()
  | _ -> Alcotest.failf "expected inlined scrutinee, got %a" Pretty.pp e'

let drop_dead_let () =
  let e = B.let_ "dead" (B.int 1) (fun _ -> B.int 42) in
  let e' = apply_ok "drop" A.drop e in
  result_is "42" e'

let drop_refuses_live () =
  let e = B.let_ "x" (B.int 1) (fun x -> x) in
  Alcotest.(check bool) "live binding kept" true (A.drop e = None)

let case_known_constructor () =
  let e =
    B.case (B.just Types.int (B.int 9))
      [
        B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
        B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
      ]
  in
  let e' = apply_ok "case" A.case_of_known e in
  result_is "9" e'

let case_known_literal () =
  let e =
    B.case (B.int 2)
      [
        B.alt_lit (Literal.Int 1) (B.int 10);
        B.alt_lit (Literal.Int 2) (B.int 20);
        B.alt_default (B.int 0);
      ]
  in
  let e' = apply_ok "case-lit" A.case_of_known e in
  result_is "20" e'

let case_known_default () =
  let e =
    B.case (B.int 5)
      [ B.alt_lit (Literal.Int 1) (B.int 10); B.alt_default (B.int 0) ]
  in
  let e' = apply_ok "case-default" A.case_of_known e in
  result_is "0" e'

(* jinline: join j x = x+1 in case v of {T -> jump j 1; F -> jump j 2}
   inlines at both (tail) jumps. *)
let jinline_tail_jumps () =
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> B.add (List.hd xs) (B.int 1))
      (fun jmp ->
        B.if_ B.true_ (jmp [ B.int 1 ] Types.int) (jmp [ B.int 2 ] Types.int))
  in
  let e' = apply_ok "jinline" A.jinline e in
  (* All jumps replaced; jdrop then applies. *)
  match A.jdrop e' with
  | Some e'' -> result_is "2" e''
  | None -> Alcotest.failf "jdrop should apply after jinline: %a" Pretty.pp e'

(* jinline must refuse when a jump is NOT a tail call (the ill-typed
   inlining example of Sec. 3). *)
let jinline_refuses_non_tail () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = B.add (Var x) (B.int 1) }
  in
  (* join j x = x + 1 in (jump j 2 (Int -> Int)) 3 *)
  let e =
    Join
      ( JNonRec defn,
        App (Jump (jv, [], [ B.int 2 ], Types.Arrow (Types.int, Types.int)), B.int 3)
      )
  in
  let _ = lints e in
  Alcotest.(check bool) "refused" true (A.jinline e = None)

let jdrop_dead_join () =
  let e =
    B.join1 "j"
      [ ("x", Types.int) ]
      (fun xs -> List.hd xs)
      (fun _ -> B.int 42)
  in
  let e' = apply_ok "jdrop" A.jdrop e in
  result_is "42" e'

(* casefloat: (case b of {T -> f; F -> g}) 3 = case b of {T -> f 3; ...} *)
let casefloat_app () =
  let f = B.lam "x" Types.int (fun x -> B.add x (B.int 1)) in
  let g = B.lam "x" Types.int (fun x -> B.mul x (B.int 2)) in
  let inner = B.if_ B.true_ f g in
  let e = A.casefloat (A.FApp (B.int 3)) inner in
  match e with
  | Some (Case (_, alts)) ->
      List.iter
        (fun a ->
          match a.alt_rhs with
          | App _ -> ()
          | other -> Alcotest.failf "expected app in branch: %a" Pretty.pp other)
        alts;
      let e' = Option.get e in
      let _ = lints e' in
      same_result (App (inner, B.int 3)) e'
  | _ -> Alcotest.fail "casefloat did not apply"

(* float: (let x = e in f) 3 = let x = e in f 3 *)
let float_let () =
  let inner =
    B.let_ "k" (B.int 10) (fun k -> B.lam "x" Types.int (fun x -> B.add x k))
  in
  match A.float (A.FApp (B.int 3)) inner with
  | Some e' ->
      let _ = lints e' in
      same_result (App (inner, B.int 3)) e'
  | None -> Alcotest.fail "float did not apply"

(* jfloat on the Sec. 2 motivating example: case (join j x = BIG in
   case v of ...) of {T -> F; F -> T} pushes the outer case into the
   join rhs and body. *)
let jfloat_case () =
  let big xs = B.gt (List.hd xs) (B.int 0) in
  let inner =
    B.join1 "j" [ ("x", Types.int) ] big (fun jmp ->
        B.if_ B.false_ (jmp [ B.int 1 ] Types.bool) B.true_)
  in
  let not_alts =
    [
      B.alt_con "True" [] [] (fun _ -> B.false_);
      B.alt_con "False" [] [] (fun _ -> B.true_);
    ]
  in
  match A.jfloat (A.FCase not_alts) inner with
  | Some (Join (JNonRec d, _) as e') ->
      let _ = lints e' in
      same_result (Case (inner, not_alts)) e';
      (* The rhs now scrutinises BIG. *)
      (match d.j_rhs with
      | Case _ -> ()
      | other -> Alcotest.failf "rhs should be a case: %a" Pretty.pp other)
  | _ -> Alcotest.fail "jfloat did not apply"

(* abort: E[jump] = jump with retargeted type. *)
let abort_jump () =
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let jump = Jump (jv, [], [ B.int 1 ], Types.Arrow (Types.int, Types.bool)) in
  match A.abort (A.FApp (B.int 3)) jump with
  | Some (Jump (_, _, _, ty)) ->
      Alcotest.check ty_testable "retargeted" Types.bool ty
  | _ -> Alcotest.fail "abort did not apply"

(* commute pushes a frame through nested tail contexts and aborts at
   jumps; on a term with no tail structure it just plugs. *)
let commute_general () =
  let inner =
    B.let_ "k" (B.int 1) (fun k ->
        B.if_ B.true_ (B.add k (B.int 1)) (B.add k (B.int 2)))
  in
  let framed = A.commute (A.FApp (B.int 0)) inner in
  ignore framed;
  (* type-level smoke only: inner is Int so FApp is ill-typed here; use
     a case frame instead for the executable check. *)
  let alts = [ B.alt_default (B.int 9) ] in
  let e' = A.commute (A.FCase alts) inner in
  let _ = lints e' in
  same_result (Case (inner, alts)) e';
  match e' with
  | Let (_, Case (_, _)) -> ()
  | _ -> Alcotest.failf "commute should push past the let: %a" Pretty.pp e'

let tests =
  [
    test "beta creates a let" beta_makes_let;
    test "beta_tau substitutes" beta_ty_substitutes;
    test "inline substitutes values" inline_value;
    test "drop removes dead lets" drop_dead_let;
    test "drop keeps live lets" drop_refuses_live;
    test "case-of-known-constructor" case_known_constructor;
    test "case of known literal" case_known_literal;
    test "case of known falls to default" case_known_default;
    test "jinline at tail jumps" jinline_tail_jumps;
    test "jinline refuses non-tail jumps" jinline_refuses_non_tail;
    test "jdrop removes dead joins" jdrop_dead_join;
    test "casefloat duplicates frame into branches" casefloat_app;
    test "float passes bindings" float_let;
    test "jfloat pushes context into join (Sec. 2)" jfloat_case;
    test "abort retargets jump types" abort_jump;
    test "commute = generalised float axioms" commute_general;
  ]
