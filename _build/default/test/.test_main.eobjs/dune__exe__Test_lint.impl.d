test/test_lint.ml: Alcotest Builder Datacon Fj_core Ident List Syntax Types Util
