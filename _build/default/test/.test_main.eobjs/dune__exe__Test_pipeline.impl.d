test/test_pipeline.ml: Alcotest Eval Fj_core Fj_surface Fmt Ident List Option Pipeline Rules String Syntax Types Util
