test/test_pretty.ml: Alcotest Builder Fj_core List Pretty String Subst Syntax Types Util
