test/test_demand.ml: Alcotest Builder Demand Eval Fj_core Fj_surface Fmt Ident Lint List Pipeline Pretty Simplify Syntax Types Util
