test/test_sexp.ml: Alcotest Builder Fj_core Fj_fusion Fj_surface Ident List Pipeline Pretty Sexp Syntax Types Util
