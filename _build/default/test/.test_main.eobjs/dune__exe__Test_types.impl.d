test/test_types.ml: Alcotest Fj_core Ident List String Types Util
