test/test_cps.ml: Alcotest Builder Cps Cse Datacon Erase Fj_core Fmt Lint List Pretty Rules Syntax Types Util
