test/test_erase.ml: Alcotest Axioms Builder Contify Erase Eval Fj_core Fj_surface Fmt Lint List Pipeline Pretty Syntax Types Util
