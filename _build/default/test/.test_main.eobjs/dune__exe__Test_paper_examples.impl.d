test/test_paper_examples.ml: Alcotest Builder Contify Eval Fj_core Fmt List Simplify Syntax Types Util
