test/test_integration.ml: Alcotest Array Bench_programs Erase Eval Filename Fj_core Fj_machine Fj_surface Fun Lint List Pipeline String Sys Util
