test/test_spec_constr.ml: Alcotest Builder Eval Fj_core Fj_fusion Fmt List Pipeline Pretty Simplify Spec_constr Syntax Types Util
