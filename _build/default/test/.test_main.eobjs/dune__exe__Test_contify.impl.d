test/test_contify.ml: Alcotest Builder Contify Fj_core Ident List Syntax Types Util
