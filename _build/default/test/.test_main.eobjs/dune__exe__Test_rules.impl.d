test/test_rules.ml: Alcotest Builder Fj_core Ident List Literal Pretty Rules Syntax Types Util
