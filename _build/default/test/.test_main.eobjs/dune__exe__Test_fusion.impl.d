test/test_fusion.ml: Alcotest Eval Fj_core Fj_fusion Fmt Pipeline Util
