test/test_axioms.ml: Alcotest Axioms Builder Fj_core List Literal Option Pretty Syntax Types Util
