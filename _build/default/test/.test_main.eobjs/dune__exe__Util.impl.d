test/util.ml: Alcotest Datacon Eval Fj_core Fmt Lint Pretty Syntax Types
