test/test_syntax.ml: Alcotest Builder Fj_core Ident List Pretty Subst Syntax Types Util
