test/test_simplify.ml: Alcotest Builder Contify Eval Fj_core Fmt List Literal Pretty Simplify String Syntax Types Util
