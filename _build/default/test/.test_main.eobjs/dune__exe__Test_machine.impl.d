test/test_machine.ml: Alcotest Builder Eval Fj_core Fj_machine Fj_surface Fmt List Pipeline Syntax Types Util
