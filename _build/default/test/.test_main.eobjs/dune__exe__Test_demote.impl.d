test/test_demote.ml: Alcotest Builder Demote Erase Eval Fj_core Fmt Ident List Pretty Syntax Types Util
