test/test_float.ml: Alcotest Builder Contify Fj_core Float_in Float_out List Pretty Syntax Types Util
