test/test_occur.ml: Alcotest Builder Fj_core Ident Occur Syntax Types Util
