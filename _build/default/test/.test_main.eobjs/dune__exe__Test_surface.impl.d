test/test_surface.ml: Alcotest Eval Fj_core Fj_surface Fmt Lint String Util
