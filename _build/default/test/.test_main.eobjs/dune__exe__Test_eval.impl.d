test/test_eval.ml: Alcotest Builder Eval Fj_core Fmt List Literal Syntax Types Util
