test/test_cse.ml: Alcotest Builder Cse Eval Fj_core Ident List Pretty Primop Simplify Syntax Types Util
