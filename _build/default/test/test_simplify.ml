(** Tests for {!Fj_core.Simplify} — the GHC-style simplifier: the
    worked examples of Sec. 2 and 5 must come out exactly as the paper
    shows, and every simplification must preserve Lint and meaning. *)

open Fj_core
open Syntax
open Util
module B = Builder

let cfg = Simplify.default_config ()
let cfg_baseline = Simplify.default_config ~join_points:false ()

let simp ?(c = cfg) e =
  let _ = lints e in
  let e' = Simplify.simplify c e in
  let _ = lints e' in
  same_result e e';
  e'

let count_allocs e = Eval.run_deep e

(* The null = isNothing . mHead cascade (Sec. 2): after inlining and
   case-of-case, no Maybe constructor survives. *)
let null_cascade () =
  let ilist = B.list_ty Types.int in
  let mhead =
    B.lam "as" ilist (fun asv ->
        B.case asv
          [
            B.alt_con "Nil" [ Types.int ] [] (fun _ -> B.nothing Types.int);
            B.alt_con "Cons" [ Types.int ] [ "p"; "ps" ] (fun bs ->
                B.just Types.int (List.hd bs));
          ])
  in
  let is_nothing x =
    B.case x
      [
        B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.true_);
        B.alt_con "Just" [ Types.int ] [ "z" ] (fun _ -> B.false_);
      ]
  in
  let null = B.lam "as" ilist (fun asv -> is_nothing (B.app mhead asv)) in
  let e' = simp null in
  (* The simplified function must contain no Maybe constructors. *)
  let rec mentions_maybe = function
    | Con (dc, _, es) ->
        String.equal dc.tycon "Maybe" || List.exists mentions_maybe es
    | Prim (_, es) -> List.exists mentions_maybe es
    | App (f, a) -> mentions_maybe f || mentions_maybe a
    | TyApp (f, _) -> mentions_maybe f
    | Lam (_, b) | TyLam (_, b) -> mentions_maybe b
    | Let ((NonRec (_, r) | Strict (_, r)), b) -> mentions_maybe r || mentions_maybe b
    | Let (Rec ps, b) ->
        List.exists (fun (_, r) -> mentions_maybe r) ps || mentions_maybe b
    | Case (s, alts) ->
        mentions_maybe s || List.exists (fun a -> mentions_maybe a.alt_rhs) alts
    | Join (jb, b) ->
        List.exists (fun d -> mentions_maybe d.j_rhs) (join_defns jb)
        || mentions_maybe b
    | Jump (_, _, es, _) -> List.exists mentions_maybe es
    | Var _ | Lit _ -> false
  in
  Alcotest.(check bool) "Maybe constructors fused away" false
    (mentions_maybe e');
  (* And it behaves like null. *)
  same_result (B.app e' (B.int_list [])) B.true_;
  same_result (B.app e' (B.int_list [ 1 ])) B.false_

(* Constant folding. *)
let constant_folding () =
  let e = B.add (B.mul (B.int 6) (B.int 7)) (B.int 0) in
  match simp e with
  | Lit (Literal.Int 42) -> ()
  | e' -> Alcotest.failf "expected 42, got %a" Pretty.pp e'

let dead_code_dropped () =
  let e = B.let_ "dead" (B.int 1) (fun _ -> B.int 2) in
  match simp e with
  | Lit (Literal.Int 2) -> ()
  | e' -> Alcotest.failf "expected 2, got %a" Pretty.pp e'

let beta_and_inline () =
  let e =
    B.app
      (B.lam "f" (Types.Arrow (Types.int, Types.int)) (fun f ->
           B.app f (B.int 20)))
      (B.lam "x" Types.int (fun x -> B.add x (B.int 22)))
  in
  match simp e with
  | Lit (Literal.Int 42) -> ()
  | e' -> Alcotest.failf "expected 42, got %a" Pretty.pp e'

(* Sec. 2 key example: case-of-case over a join point keeps the join
   point a join point and moves the outer case into its rhs. *)
let preserves_join_points () =
  let big xs = B.gt (List.hd xs) (B.int 0) in
  let inner =
    B.join1 "j" [ ("x", Types.int) ] big (fun jmp ->
        B.case (B.int 1)
          [
            B.alt_lit (Literal.Int 1) (jmp [ B.int 1 ] Types.bool);
            B.alt_lit (Literal.Int 2) (jmp [ B.int 2 ] Types.bool);
            B.alt_default B.true_;
          ])
  in
  let nots =
    [
      B.alt_con "True" [] [] (fun _ -> B.false_);
      B.alt_con "False" [] [] (fun _ -> B.true_);
    ]
  in
  let e = Case (inner, nots) in
  let e' = simp e in
  (* The result must still run without allocation: the join survived or
     was fully reduced. *)
  let _, stats = count_allocs e' in
  Alcotest.(check int) "no allocation" 0 stats.Eval.words

(* The baseline, by contrast, allocates for the same program: its
   shared alternatives become let-bound functions. We use an opaque
   scrutinee so the case cannot be resolved statically. *)
let baseline_allocates () =
  (* Small thresholds so BIG is "too big to inline or duplicate" for
     both configurations, as in the paper's motivating example. *)
  let cfg =
    Simplify.default_config ~inline_threshold:5 ~dup_threshold:5 ()
  in
  let cfg_baseline =
    Simplify.default_config ~join_points:false ~inline_threshold:5
      ~dup_threshold:5 ()
  in
  let mk scrut_var =
    let big x =
      List.fold_left B.add x (List.init 10 (fun i -> B.int i)) |> fun s ->
      B.gt s (B.int 0)
    in
    (* let j x = BIG in case v of {T -> j 1; F -> j 2} — pre-join-point
       style, under an outer case. *)
    let inner =
      B.let_ "j"
        (B.lam "x" Types.int (fun x -> big x))
        (fun j ->
          B.case scrut_var
            [
              B.alt_con "True" [] [] (fun _ -> App (j, B.int 1));
              B.alt_con "False" [] [] (fun _ -> App (j, B.int 2));
            ])
    in
    let nots =
      [
        B.alt_con "True" [] [] (fun _ -> B.false_);
        B.alt_con "False" [] [] (fun _ -> B.true_);
      ]
    in
    Case (inner, nots)
  in
  let wrap body = B.lam "v" Types.bool (fun v -> body v) in
  let with_joins =
    Simplify.simplify cfg (Contify.contify (wrap (fun v -> mk v)))
  in
  let base = Simplify.simplify cfg_baseline (wrap (fun v -> mk v)) in
  let _ = lints with_joins in
  let _ = lints base in
  let _, sj = count_allocs (B.app with_joins B.true_) in
  let _, sb = count_allocs (B.app base B.true_) in
  same_result (B.app with_joins B.true_) (B.app base B.true_);
  Alcotest.(check bool)
    (Fmt.str "join-point compiler allocates less (%d < %d)" sj.Eval.words
       sb.Eval.words)
    true
    (sj.Eval.words < sb.Eval.words)

(* Known-constructor through a let binding (unfolding splice). *)
let known_con_through_let () =
  let e =
    B.let_ "m" (B.just Types.int (B.int 5)) (fun m ->
        B.case m
          [
            B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
            B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
          ])
  in
  match simp e with
  | Lit (Literal.Int 5) -> ()
  | e' -> Alcotest.failf "expected 5, got %a" Pretty.pp e'

(* The Sec. 5 find/any fusion, end to end. *)
let find_any_fusion () =
  let ilist = B.list_ty Types.int in
  let imaybe = B.maybe_ty Types.int in
  let find =
    B.lam "p" (Types.Arrow (Types.int, Types.bool)) (fun p ->
        B.lam "xs0" ilist (fun xs0 ->
            B.letrec1 "go" (Types.Arrow (ilist, imaybe))
              (fun go ->
                B.lam "xs" ilist (fun xs ->
                    B.case xs
                      [
                        B.alt_con "Cons" [ Types.int ] [ "x"; "rest" ]
                          (fun bs ->
                            match bs with
                            | [ x; rest ] ->
                                B.if_ (B.app p x) (B.just Types.int x)
                                  (B.app go rest)
                            | _ -> assert false);
                        B.alt_con "Nil" [ Types.int ] [] (fun _ ->
                            B.nothing Types.int);
                      ]))
              (fun go -> B.app go xs0)))
  in
  let any =
    B.let_ "find" find (fun find ->
        B.lam "p" (Types.Arrow (Types.int, Types.bool)) (fun p ->
            B.lam "xs" ilist (fun xs ->
                B.case (B.app2 find p xs)
                  [
                    B.alt_con "Just" [ Types.int ] [ "y" ] (fun _ -> B.true_);
                    B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.false_);
                  ])))
  in
  (* Optimise the fully-applied program: must allocate only the list
     cells (3 words per cons), nothing per element beyond it. *)
  let applied0 =
    B.app2 any
      (B.lam "x" Types.int (fun x -> B.gt x (B.int 2)))
      (B.int_list [ 1; 2; 3; 4 ])
  in
  let applied = Simplify.simplify cfg (Contify.contify applied0) in
  let _ = lints applied in
  same_result applied0 applied;
  let t, s = count_allocs applied in
  Alcotest.(check string) "found" "True" (Fmt.str "%a" Eval.pp_tree t);
  (* 4 cons cells = 12 words; no Maybe, no closures. *)
  Alcotest.(check int) "only the list allocates" 12 s.Eval.words

(* Case-of-case with big alternatives shares them via join points
   rather than duplicating (code growth bounded). *)
let big_alts_shared () =
  let big x = List.init 12 (fun i -> B.int i) |> List.fold_left B.add x in
  let inner v =
    B.case v
      [
        B.alt_con "True" [] [] (fun _ -> B.just Types.int (B.int 1));
        B.alt_con "False" [] [] (fun _ -> B.nothing Types.int);
      ]
  in
  let e v =
    B.case (inner v)
      [
        B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> big (List.hd xs));
        B.alt_con "Nothing" [ Types.int ] [] (fun _ -> big (B.int 0));
      ]
  in
  let f = B.lam "v" Types.bool (fun v -> e v) in
  let f' = simp f in
  (* Size must not have doubled the big alternatives. *)
  Alcotest.(check bool)
    (Fmt.str "size bounded (%d vs %d)" (size f') (2 * size f))
    true
    (size f' <= 2 * size f)

let literal_case_folds () =
  let e =
    B.case
      (B.add (B.int 1) (B.int 1))
      [
        B.alt_lit (Literal.Int 2) (B.int 100);
        B.alt_default (B.int 0);
      ]
  in
  match simp e with
  | Lit (Literal.Int 100) -> ()
  | e' -> Alcotest.failf "expected 100, got %a" Pretty.pp e'

(* No-commuting-conversions config leaves case-of-case alone. *)
let no_cc_config () =
  let c = Simplify.default_config ~case_of_case:false () in
  let inner v =
    B.case v
      [
        B.alt_con "True" [] [] (fun _ -> B.just Types.int (B.int 1));
        B.alt_con "False" [] [] (fun _ -> B.nothing Types.int);
      ]
  in
  let f =
    B.lam "v" Types.bool (fun v ->
        B.case (inner v)
          [
            B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> List.hd xs);
            B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.int 0);
          ])
  in
  let f' = simp ~c f in
  (* The nested case survives. *)
  let rec nested_case = function
    | Lam (_, b) -> nested_case b
    | Case (Case _, _) -> true
    | _ -> false
  in
  Alcotest.(check bool) "case-of-case kept" true (nested_case f')

let tests =
  [
    test "null cascade (Sec. 2)" null_cascade;
    test "constant folding" constant_folding;
    test "dead code dropped" dead_code_dropped;
    test "beta + inlining" beta_and_inline;
    test "join points preserved through case-of-case" preserves_join_points;
    test "baseline allocates where joins do not" baseline_allocates;
    test "known constructor through let" known_con_through_let;
    test "find/any fusion (Sec. 5)" find_any_fusion;
    test "big alternatives shared, not duplicated" big_alts_shared;
    test "literal case folds" literal_case_folds;
    test "case-of-case can be disabled" no_cc_config;
  ]
