(* Does the skipless pipeline actually fuse with join points? Compare
   per-element allocation across representations and modes. *)
open Fj_core

let measure name src =
  let denv, core = Fj_fusion.Streams.compile_pipeline src in
  (match Lint.lint_result denv core with
  | Ok _ -> ()
  | Error err ->
      Fmt.pr "%s LINT FAIL: %a@." name Lint.pp_error err;
      exit 1);
  let t0, _ = Eval.run_deep core in
  List.iter
    (fun mode ->
      let cfg =
        Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 ()
      in
      let e = Pipeline.run cfg core in
      let t, s = Eval.run_deep e in
      assert (Eval.equal_tree t0 t);
      Fmt.pr "%-28s %-12s: %a (%a)@." name (Pipeline.mode_name mode)
        Eval.pp_tree t Eval.pp_stats s)
    [ Pipeline.Baseline; Pipeline.Join_points ]

let () =
  measure "skipless n=100" (Fj_fusion.Streams.sum_map_filter_skipless 100);
  measure "skipless n=200" (Fj_fusion.Streams.sum_map_filter_skipless 200);
  measure "skipful n=100" (Fj_fusion.Streams.sum_map_filter_skipful 100);
  measure "skipful n=200" (Fj_fusion.Streams.sum_map_filter_skipful 200);
  measure "lists n=100" (Fj_fusion.Streams.sum_map_filter_lists 100);
  Fmt.pr "fusion smoke OK@."
