(** Quickstart: the three ways to use the library.

    1. Compile a surface-language program and run it.
    2. Build System F_J terms directly with {!Fj_core.Builder}.
    3. Drive the optimiser and inspect what it did.

    Run with: [dune exec examples/quickstart.exe] *)

open Fj_core

(* ------------------------------------------------------------------ *)
(* 1. Compile and run a surface program                                 *)
(* ------------------------------------------------------------------ *)

let surface_demo () =
  Fmt.pr "== 1. surface language ==@.";
  let src =
    {|
def square x = x * x
def main = sum (map square (enumFromTo 1 10))
|}
  in
  (* [Prelude.compile] parses, infers types (Hindley–Milner), and
     elaborates to explicitly-typed System F_J. *)
  let denv, core = Fj_surface.Prelude.compile src in
  (* Lint is the Fig. 2 typechecker. *)
  let ty = Result.get_ok (Lint.lint_result denv core) in
  Fmt.pr "main : %a@." Types.pp ty;
  (* Evaluate on the Fig. 3 abstract machine. *)
  let result, stats = Eval.run_deep core in
  Fmt.pr "result = %a   (%a)@.@." Eval.pp_tree result Eval.pp_stats stats

(* ------------------------------------------------------------------ *)
(* 2. Build core terms directly                                        *)
(* ------------------------------------------------------------------ *)

let builder_demo () =
  Fmt.pr "== 2. building F_J terms ==@.";
  let open Builder in
  (* join loop (n, acc) = if n <= 0 then acc else jump loop (n-1, acc+n)
     in jump loop (10, 0) *)
  let e =
    joinrec1 "loop"
      [ ("n", Types.int); ("acc", Types.int) ]
      (fun jump args ->
        match args with
        | [ n; acc ] ->
            if_ (le n (int 0)) acc
              (jump [ sub n (int 1); add acc n ] Types.int)
        | _ -> assert false)
      (fun jump -> jump [ int 10; int 0 ] Types.int)
  in
  Fmt.pr "%a@." Pretty.pp e;
  let result, stats = Eval.run_deep e in
  Fmt.pr "result = %a   (%a)@." Eval.pp_tree result Eval.pp_stats stats;
  Fmt.pr "note: words=0 — join points are stack-allocated.@.@."

(* ------------------------------------------------------------------ *)
(* 3. Drive the optimiser                                              *)
(* ------------------------------------------------------------------ *)

let optimiser_demo () =
  Fmt.pr "== 3. the optimiser ==@.";
  let denv, core =
    Fj_surface.Prelude.compile
      {|
def main = any (\x -> x > 8) (enumFromTo 1 10)
|}
  in
  List.iter
    (fun mode ->
      let cfg = Pipeline.default_config ~mode ~datacons:denv () in
      let optimised, report = Pipeline.run_report cfg core in
      let result, stats = Eval.run_deep optimised in
      Fmt.pr "%-28s => %a   (%a)@."
        (Pipeline.mode_name mode)
        Eval.pp_tree result Eval.pp_stats stats;
      ignore report)
    [ Pipeline.Baseline; Pipeline.Join_points ];
  Fmt.pr
    "@.The join-point compiler allocates less: find's local loop was@.\
     contified (Sec. 4) and any's case commuted into it (Sec. 5).@."

let () =
  surface_demo ();
  builder_demo ();
  optimiser_demo ()
