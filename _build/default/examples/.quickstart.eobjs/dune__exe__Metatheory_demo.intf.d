examples/metatheory_demo.mli:
