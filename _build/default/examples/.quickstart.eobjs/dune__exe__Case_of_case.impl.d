examples/case_of_case.ml: Builder Datacon Eval Fj_core Fmt Lint List Pretty Result Simplify Syntax Types
