examples/quickstart.ml: Builder Eval Fj_core Fj_surface Fmt Lint List Pipeline Pretty Result Types
