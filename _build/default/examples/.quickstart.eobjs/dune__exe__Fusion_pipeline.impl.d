examples/fusion_pipeline.ml: Eval Fj_core Fj_fusion Fmt List Pipeline Pretty
