examples/contify_loop.ml: Builder Contify Datacon Eval Fj_core Fj_surface Float_in Fmt Lint Literal Pipeline Pretty Simplify Syntax Types
