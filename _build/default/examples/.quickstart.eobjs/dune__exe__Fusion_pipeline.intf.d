examples/fusion_pipeline.mli:
