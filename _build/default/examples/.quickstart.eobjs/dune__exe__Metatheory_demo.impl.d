examples/metatheory_demo.ml: Builder Datacon Erase Eval Fj_core Fmt Lint Pretty Syntax Types
