examples/case_of_case.mli:
