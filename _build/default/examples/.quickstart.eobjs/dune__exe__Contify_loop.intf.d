examples/contify_loop.mli:
