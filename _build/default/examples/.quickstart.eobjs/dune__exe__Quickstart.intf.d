examples/quickstart.mli:
