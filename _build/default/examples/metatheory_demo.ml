(** Walkthrough of the metatheory (Sec. 6 and Sec. 9):

    - erasure: any F_J term — even with jumps buried under evaluation
      contexts — rewrites to an equivalent System F term by
      commuting-normal form + de-contification (Theorem 5);
    - the callcc encoding of Sec. 9 is rejected by the type system:
      join points stay second class, which is exactly what lets them
      live on the stack.

    Run with: [dune exec examples/metatheory_demo.exe] *)

open Fj_core
open Syntax
module B = Builder

let show title e =
  Fmt.pr "@.---- %s ----@.%a@." title Pretty.pp e;
  match Lint.lint_result Datacon.builtins e with
  | Ok ty -> Fmt.pr "   : %a@." Types.pp ty
  | Error err -> Fmt.pr "   LINT ERROR: %a@." Lint.pp_error err

let () =
  Fmt.pr "== Erasure (Theorem 5) ==@.";
  (* The Sec. 6 example: join j x = x + 1 in (jump j 1 (Int->Int)) 2 —
     the jump is NOT a tail call (the application of 2 intervenes). *)
  let x = mk_var "x" Types.int in
  let jv = mk_join_var "j" [] [ x ] in
  let defn =
    { j_var = jv; j_tyvars = []; j_params = [ x ]; j_rhs = B.add (Var x) (B.int 1) }
  in
  let e =
    Join
      ( JNonRec defn,
        App
          ( Jump (jv, [], [ B.int 1 ], Types.Arrow (Types.int, Types.int)),
            B.int 2 ) )
  in
  show "input: a non-tail jump" e;
  let t, _ = Eval.run_deep e in
  Fmt.pr "evaluates to %a (the application of 2 is discarded!)@." Eval.pp_tree
    t;

  let cnf = Erase.commuting_normal_form e in
  show "after commuting-normal form (commute + abort)" cnf;
  Fmt.pr "every jump is now a tail call of its binding (Lemma 4)@.";

  let erased = Erase.erase e in
  show "after de-contification: a System F term" erased;
  assert (Erase.is_join_free erased);
  let t', _ = Eval.run_deep erased in
  Fmt.pr "still evaluates to %a@." Eval.pp_tree t';

  Fmt.pr
    "@.== Second-class continuations: the callcc encoding is ill-typed ==@.";
  (* Sec. 9: callcc v ~ join j x = x in [v] (\y. jump j y) — the
     continuation variable j occurs free under a lambda, which rule ABS
     (Delta reset) rejects: a join point captured in a closure could
     outlive its stack frame. *)
  let y = mk_var "y" Types.int in
  let jv2 = mk_join_var "k" [] [ mk_var "x" Types.int ] in
  let defn2 =
    {
      j_var = jv2;
      j_tyvars = [];
      j_params = [ mk_var "x" Types.int ];
      j_rhs = B.int 0;
    }
  in
  let callcc_ish =
    Join
      ( JNonRec defn2,
        App
          ( B.lam "f" (Types.Arrow (Types.Arrow (Types.int, Types.int), Types.int))
              (fun f -> App (f, Lam (y, Jump (jv2, [], [ Var y ], Types.int)))),
            B.lam "kont" (Types.Arrow (Types.int, Types.int)) (fun k ->
                App (k, B.int 42)) ) )
  in
  Fmt.pr "%a@." Pretty.pp callcc_ish;
  (match Lint.lint_result Datacon.builtins callcc_ish with
  | Ok _ -> Fmt.pr "UNEXPECTEDLY WELL TYPED?!@."
  | Error err ->
      Fmt.pr "@.rejected, as the paper requires:@.  %a@." Lint.pp_error err);
  Fmt.pr
    "@.\"By design, this encoding does not type in our system since the@.\
     continuation variable j is free in a lambda-abstraction. ... join@.\
     points can no longer be saved in the stack but need to be stored in@.\
     the heap, which is precisely what is needed to implement callcc.\"@.\
     — Sec. 9@."
