(** Walkthrough of Sec. 5: stream fusion with recursive join points.

    Shows the skipless pipeline [sSum (sMap f (sFilter p (sFromTo lo
    hi)))] fusing to a flat, allocation-free loop under the join-point
    compiler — and failing to fuse under the baseline — plus the
    skip-ful comparison.

    Run with: [dune exec examples/fusion_pipeline.exe] *)

open Fj_core

let n = 1000

let optimise mode (denv, core) =
  Pipeline.run
    (Pipeline.default_config ~mode ~datacons:denv ~inline_threshold:300 ())
    core

let measure name src =
  let denv, core = Fj_fusion.Streams.compile_pipeline src in
  let t0, s0 = Eval.run_deep core in
  let rows =
    List.map
      (fun mode ->
        let e = optimise mode (denv, core) in
        let t, s = Eval.run_deep e in
        assert (Eval.equal_tree t0 t);
        (Pipeline.mode_name mode, s))
      [ Pipeline.Baseline; Pipeline.Join_points ]
  in
  Fmt.pr "@.%s   (result %a)@." name Eval.pp_tree t0;
  Fmt.pr "  %-14s words=%-7d steps=%d@." "unoptimised" s0.Eval.words
    s0.Eval.steps;
  List.iter
    (fun (m, s) ->
      Fmt.pr "  %-14s words=%-7d steps=%d jumps=%d@." m s.Eval.words
        s.Eval.steps s.Eval.jumps)
    rows

let () =
  Fmt.pr "Stream fusion with join points (Sec. 5), n = %d@." n;

  measure "skipless: sSum . sMap (*3) . sFilter odd . sFromTo 1"
    (Fj_fusion.Streams.sum_map_filter_skipless n);
  measure "skip-ful: tSum . tMap (*3) . tFilter odd . tFromTo 1"
    (Fj_fusion.Streams.sum_map_filter_skipful n);
  measure "plain lists: sum . map (*3) . filter odd . enumFromTo 1"
    (Fj_fusion.Streams.sum_map_filter_lists n);
  measure "zip: dot-product, skipless"
    (Fj_fusion.Streams.dot_product_skipless (n / 2));
  measure "zip: dot-product, skip-ful (buffered state)"
    (Fj_fusion.Streams.dot_product_skipful (n / 2));

  (* Show the actual fused loop. *)
  Fmt.pr "@.---- the fused skipless loop (n = 10) ----@.";
  let denv, core =
    Fj_fusion.Streams.compile_pipeline
      (Fj_fusion.Streams.sum_map_filter_skipless 10)
  in
  let fused = optimise Pipeline.Join_points (denv, core) in
  Fmt.pr "%a@." Pretty.pp fused;
  Fmt.pr
    "@.\"with join points, Svenningsson's original Skip-less approach@.\
     fuses just fine! Result: simpler code, less of it, and faster to@.\
     execute. It's a straight win.\" — Sec. 5@."
