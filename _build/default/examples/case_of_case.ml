(** Walkthrough of Sec. 2: the case-of-case transformation, why naïve
    duplication is bad, how pre-join-point GHC shares alternatives as
    let-bound functions, and how join points fix both problems.

    Run with: [dune exec examples/case_of_case.exe] *)

open Fj_core
open Syntax
module B = Builder

(* The paper's shape:

     case (case v of { p1 -> e1; p2 -> e2 }) of
       Nothing -> BIG1 ; Just x -> BIG2

   with deliberately BIG alternatives. *)

(* BIG expressions must depend on run-time variables, or the constant
   folder would shrink them below every threshold. *)
let big1 w = List.fold_left (fun acc i -> B.add (B.mul acc w) (B.int i)) w (List.init 7 (fun i -> i))
let big2 w x = List.fold_left (fun acc i -> B.add (B.mul acc x) (B.int i)) w (List.init 7 (fun i -> i))

(* The inner case's branches call an OPAQUE function [g], so the outer
   case cannot be resolved statically: its big alternatives must be
   shared — the whole point of the example. *)
let program m g w =
  let inner =
    B.case m
      [
        B.alt_con "Just" [ Types.int ] [ "y" ]
          (fun ys -> Syntax.App (g, List.hd ys));
        B.alt_con "Nothing" [ Types.int ] [] (fun _ -> B.nothing Types.int);
      ]
  in
  B.case inner
    [
      B.alt_con "Nothing" [ Types.int ] [] (fun _ -> big1 w);
      B.alt_con "Just" [ Types.int ] [ "x" ] (fun xs -> big2 w (List.hd xs));
    ]

let show title e =
  Fmt.pr "@.---- %s (size %d) ----@.%a@." title (size e) Pretty.pp e

let () =
  let f =
    B.lam "m" (B.maybe_ty Types.int) (fun m ->
        B.lam "g"
          (Types.Arrow (Types.int, B.maybe_ty Types.int))
          (fun g -> B.lam "w" Types.int (fun w -> program m g w)))
  in
  let _ = Result.get_ok (Lint.lint_result Datacon.builtins f) in
  show "input" f;

  (* With a small duplication threshold the simplifier must share the
     big alternatives. Baseline: ordinary lets (allocate closures;
     calls are opaque). Join points: join bindings (free; cases can
     commute into them). *)
  let dup = 8 in
  let base =
    Simplify.simplify
      (Simplify.default_config ~join_points:false ~dup_threshold:dup ~inline_threshold:12 ())
      f
  in
  show "baseline: alternatives shared as LET-BOUND FUNCTIONS" base;

  let joins =
    Simplify.simplify
      (Simplify.default_config ~join_points:true ~dup_threshold:dup ~inline_threshold:12 ())
      f
  in
  show "join points: alternatives shared as JOIN POINTS" joins;

  (* Compare runtime cost when applied (the arguments are supplied at
     run time, invisible to the optimiser). *)
  let run name e =
    let applied =
      B.app3 e
        (B.just Types.int (B.int 1))
        (B.lam "y" Types.int (fun y -> B.just Types.int (B.add y (B.int 1))))
        (B.int 3)
    in
    let t, s = Eval.run_deep applied in
    Fmt.pr "%-12s => %a   (%a)@." name Eval.pp_tree t Eval.pp_stats s
  in
  Fmt.pr "@.---- applying to (Just 1) (\\y -> Just (y+1)) 3 ----@.";
  run "baseline" base;
  run "join-points" joins;
  Fmt.pr
    "@.The baseline allocates a closure for each shared alternative;@.\
     the join-point version allocates nothing (Sec. 2: \"A C compiler@.\
     would generate a jump to a label, not a call to a heap-allocated@.\
     function closure!\").@."
