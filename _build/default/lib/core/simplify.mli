(** The Simplifier: a context-passing partial evaluator in the style of
    GHC's (Sec. 7) — inlining, beta, case-of-known-constructor,
    dead-code, constant folding, and the commuting conversions.
    Join-point behaviour needs exactly two cases: the continuation is
    copied into join right-hand sides (jfloat) and discarded at jumps
    (abort). *)

type config = {
  join_points : bool;
      (** Share case alternatives as join points; enable jfloat/abort.
          When false, behave like pre-join-point GHC (alternatives
          shared as ordinary lets). *)
  case_of_case : bool;
  inline_threshold : int;
  dup_threshold : int;
  datacons : Datacon.env;
}

val default_config :
  ?join_points:bool ->
  ?case_of_case:bool ->
  ?inline_threshold:int ->
  ?dup_threshold:int ->
  ?datacons:Datacon.env ->
  unit ->
  config

(** One simplifier pass; returns the new term and whether anything
    changed. *)
val run_pass : config -> Syntax.expr -> Syntax.expr * bool

(** Iterate {!run_pass} (interleaved with {!Cleanup.cleanup}) to a
    fixpoint or [max_iters]. *)
val simplify : ?max_iters:int -> config -> Syntax.expr -> Syntax.expr
