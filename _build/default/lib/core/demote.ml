(** Demoting join points back to ordinary bindings.

    This is the right-to-left reading of the [contify] axiom (Fig. 5):
    a [join] whose jumps are all tail calls can be rebound as a [let]
    of a function, and the jumps as ordinary calls. It is the workhorse
    of the erasure theorem (Sec. 6) — after commuting-normalisation
    every jump is a tail call, so every join point can be demoted — and
    of the {e baseline} compiler pipeline, which must not have join
    points in its IR at all.

    {b Precondition}: every jump to a demoted label must be a tail
    call. On other inputs the result would change meaning (a non-tail
    jump discards its context; a call does not); {!Erase} establishes
    the precondition first. *)

open Syntax

let fun_var_of_defn (d : join_defn) ~res_ty : var =
  {
    v_name = d.j_var.v_name;
    v_ty =
      Types.foralls d.j_tyvars
        (Types.arrows (List.map (fun (p : var) -> p.v_ty) d.j_params) res_ty);
  }

let lam_of_defn (d : join_defn) : expr =
  ty_lams d.j_tyvars (lams d.j_params d.j_rhs)

(* Rewrite jumps to the given labels into calls of the corresponding
   function variables. *)
let rec rewrite_jumps (m : var Ident.Map.t) (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map (rewrite_jumps m) es)
  | Prim (op, es) -> Prim (op, List.map (rewrite_jumps m) es)
  | App (f, a) -> App (rewrite_jumps m f, rewrite_jumps m a)
  | TyApp (f, t) -> TyApp (rewrite_jumps m f, t)
  | Lam (x, b) -> Lam (x, rewrite_jumps m b)
  | TyLam (a, b) -> TyLam (a, rewrite_jumps m b)
  | Let (NonRec (x, rhs), body) ->
      Let (NonRec (x, rewrite_jumps m rhs), rewrite_jumps m body)
  | Let (Strict (x, rhs), body) ->
      Let (Strict (x, rewrite_jumps m rhs), rewrite_jumps m body)
  | Let (Rec pairs, body) ->
      Let
        ( Rec (List.map (fun (x, rhs) -> (x, rewrite_jumps m rhs)) pairs),
          rewrite_jumps m body )
  | Case (scrut, alts) ->
      Case
        ( rewrite_jumps m scrut,
          List.map (fun a -> { a with alt_rhs = rewrite_jumps m a.alt_rhs }) alts
        )
  | Join (jb, body) ->
      let jb' =
        match jb with
        | JNonRec d -> JNonRec { d with j_rhs = rewrite_jumps m d.j_rhs }
        | JRec ds ->
            JRec (List.map (fun d -> { d with j_rhs = rewrite_jumps m d.j_rhs }) ds)
      in
      Join (jb', rewrite_jumps m body)
  | Jump (j, phis, es, _) -> (
      let es = List.map (rewrite_jumps m) es in
      match Ident.Map.find_opt j.v_name m with
      | Some f -> apps (ty_apps (Var f) phis) es
      | None -> Jump (j, phis, es, ty_of e))

(** Demote every join binding in [e] to a let binding (bottom-up),
    rewriting the jumps into calls. See the precondition above. *)
let rec demote (e : expr) : expr =
  match e with
  | Var _ | Lit _ -> e
  | Con (dc, phis, es) -> Con (dc, phis, List.map demote es)
  | Prim (op, es) -> Prim (op, List.map demote es)
  | App (f, a) -> App (demote f, demote a)
  | TyApp (f, t) -> TyApp (demote f, t)
  | Lam (x, b) -> Lam (x, demote b)
  | TyLam (a, b) -> TyLam (a, demote b)
  | Let (NonRec (x, rhs), body) -> Let (NonRec (x, demote rhs), demote body)
  | Let (Strict (x, rhs), body) -> Let (Strict (x, demote rhs), demote body)
  | Let (Rec pairs, body) ->
      Let (Rec (List.map (fun (x, rhs) -> (x, demote rhs)) pairs), demote body)
  | Case (scrut, alts) ->
      Case (demote scrut, List.map (fun a -> { a with alt_rhs = demote a.alt_rhs }) alts)
  | Jump (j, phis, es, ty) -> Jump (j, phis, List.map demote es, ty)
  | Join (jb, body) -> demote_binding jb (demote_jb_rhss jb) (demote body)

and demote_jb_rhss jb =
  match jb with
  | JNonRec d -> JNonRec { d with j_rhs = demote d.j_rhs }
  | JRec ds -> JRec (List.map (fun d -> { d with j_rhs = demote d.j_rhs }) ds)

and demote_binding _orig jb body =
  match jb with
  | JNonRec d ->
      let res_ty =
        match ty_of d.j_rhs with t -> t | exception _ -> Types.bottom ()
      in
      let f = fun_var_of_defn d ~res_ty in
      let m = Ident.Map.singleton d.j_var.v_name f in
      Let (NonRec (f, lam_of_defn d), rewrite_jumps m body)
  | JRec ds ->
      let fs =
        List.map
          (fun d ->
            let res_ty =
              match ty_of d.j_rhs with t -> t | exception _ -> Types.bottom ()
            in
            (d, fun_var_of_defn d ~res_ty))
          ds
      in
      let m =
        List.fold_left
          (fun m (d, f) -> Ident.Map.add d.j_var.v_name f m)
          Ident.Map.empty fs
      in
      Let
        ( Rec
            (List.map
               (fun (d, f) ->
                 (f, rewrite_jumps m (lam_of_defn d)))
               fs),
          rewrite_jumps m body )

(** Demote a single [Join] at the root (defensive use by the baseline
    simplifier, which must never see join points). *)
let demote_top e =
  match e with Join (jb, body) -> demote_binding jb jb body | _ -> e
