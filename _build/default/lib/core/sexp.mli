(** S-expression serialisation of System F_J — the interface-file
    substrate: a complete, round-trippable textual encoding of Core.
    Uniques survive the round trip exactly, and the reader bumps the
    global supply so freshly allocated uniques never collide with
    loaded ones. *)

type t = Atom of string | List of t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

exception Parse_error of string

val parse_string : string -> t

(** Writers. *)

val of_ty : Types.t -> t
val of_expr : Syntax.expr -> t

(** Readers (constructors resolved in the datatype environment). *)

val to_ty : t -> Types.t
val to_expr : Datacon.env -> t -> Syntax.expr

(** Whole-expression convenience. *)

val write : Syntax.expr -> string
val read : Datacon.env -> string -> Syntax.expr
