(** Types of System F_J (Fig. 1 of the paper).

    The type language is that of System F with algebraic datatypes:
    variables, datatype constructors, type application, function arrows
    and universal quantification.

    Join points receive the type [forall a_i. sigma_1 -> ... -> sigma_n
    -> forall r. r]: the trailing [forall r. r] (written ⊥) marks a
    computation that never returns to its caller, so a [jump] may be
    assigned any result type (rule JUMP of Fig. 2). *)

type t =
  | Var of Ident.t  (** Type variable [a]. *)
  | Con of string  (** Datatype head [T] (or a primitive such as [Int]). *)
  | App of t * t  (** Type application [tau phi]. *)
  | Arrow of t * t  (** Function type [sigma -> tau]. *)
  | Forall of Ident.t * t  (** Polymorphic type [forall a. tau]. *)

(* ------------------------------------------------------------------ *)
(* Constructors and views                                              *)
(* ------------------------------------------------------------------ *)

let var a = Var a
let con s = Con s

(** [apps t args] applies the type [t] to [args] left-associatively. *)
let apps head args = List.fold_left (fun acc a -> App (acc, a)) head args

(** [arrows sigmas tau] builds [sigma_1 -> ... -> sigma_n -> tau]. *)
let arrows sigmas tau = List.fold_right (fun s acc -> Arrow (s, acc)) sigmas tau

(** [foralls as tau] builds [forall a_1 ... a_n. tau]. *)
let foralls vars tau = List.fold_right (fun a acc -> Forall (a, acc)) vars tau

let int = Con "Int"
let char = Con "Char"
let string = Con "String"
let bool = Con "Bool"
let unit = Con "Unit"

(** ⊥ = [forall r. r], the return type of join points. A fresh binder is
    allocated each time; [is_bottom] recognises any alpha-variant. *)
let bottom () =
  let r = Ident.fresh "r" in
  Forall (r, Var r)

let is_bottom = function Forall (r, Var r') -> Ident.equal r r' | _ -> false

(** [split_foralls tau] strips the maximal prefix of quantifiers,
    returning the bound variables in order and the remaining body. *)
let rec split_foralls = function
  | Forall (a, t) ->
      let vars, body = split_foralls t in
      (a :: vars, body)
  | t -> ([], t)

(** [split_arrows tau] strips the maximal prefix of arrows, returning
    the argument types in order and the final result type. *)
let rec split_arrows = function
  | Arrow (s, t) ->
      let args, res = split_arrows t in
      (s :: args, res)
  | t -> ([], t)

(** [split_apps tau] decomposes [((h phi_1) ... phi_n)] into [h] and
    [\[phi_1; ...; phi_n\]]. *)
let split_apps t =
  let rec go acc = function App (f, a) -> go (a :: acc) f | h -> (h, acc) in
  go [] t

(** The type of a join point binding type variables [tyvars] and value
    parameters of types [arg_tys]: [forall tyvars. arg_tys -> ⊥]. *)
let join_point_ty tyvars arg_tys = foralls tyvars (arrows arg_tys (bottom ()))

(* ------------------------------------------------------------------ *)
(* Free variables                                                      *)
(* ------------------------------------------------------------------ *)

let rec free_vars = function
  | Var a -> Ident.Set.singleton a
  | Con _ -> Ident.Set.empty
  | App (f, a) -> Ident.Set.union (free_vars f) (free_vars a)
  | Arrow (s, t) -> Ident.Set.union (free_vars s) (free_vars t)
  | Forall (a, t) -> Ident.Set.remove a (free_vars t)

let occurs a t = Ident.Set.mem a (free_vars t)

(* ------------------------------------------------------------------ *)
(* Substitution                                                        *)
(* ------------------------------------------------------------------ *)

(** [subst env tau] applies the simultaneous substitution [env] (mapping
    type variables to types) to [tau], refreshing quantified binders to
    avoid capture. *)
let rec subst (env : t Ident.Map.t) ty =
  if Ident.Map.is_empty env then ty
  else
    match ty with
    | Var a -> ( match Ident.Map.find_opt a env with Some t -> t | None -> ty)
    | Con _ -> ty
    | App (f, a) -> App (subst env f, subst env a)
    | Arrow (s, t) -> Arrow (subst env s, subst env t)
    | Forall (a, t) ->
        (* Refresh the binder unconditionally: cheap, and immune to
           capture by anything in the range of [env]. *)
        let a' = Ident.refresh a in
        Forall (a', subst (Ident.Map.add a (Var a') env) t)

(** [subst1 a phi tau] = [tau{phi/a}]. *)
let subst1 a phi ty = subst (Ident.Map.singleton a phi) ty

(** [instantiate tau phis] peels one quantifier per element of [phis],
    substituting as it goes. Raises [Invalid_argument] if [tau] has too
    few quantifiers. *)
let instantiate ty phis =
  List.fold_left
    (fun ty phi ->
      match ty with
      | Forall (a, body) -> subst1 a phi body
      | _ -> invalid_arg "Types.instantiate: not a forall")
    ty phis

(* ------------------------------------------------------------------ *)
(* Alpha-equivalence                                                   *)
(* ------------------------------------------------------------------ *)

(** [equal t1 t2]: alpha-equivalence of types. *)
let equal t1 t2 =
  let rec go env1 env2 t1 t2 =
    match (t1, t2) with
    | Var a, Var b -> (
        match (Ident.Map.find_opt a env1, Ident.Map.find_opt b env2) with
        | Some i, Some j -> Int.equal i j
        | None, None -> Ident.equal a b
        | _ -> false)
    | Con c, Con d -> String.equal c d
    | App (f1, a1), App (f2, a2) -> go env1 env2 f1 f2 && go env1 env2 a1 a2
    | Arrow (s1, t1), Arrow (s2, t2) -> go env1 env2 s1 s2 && go env1 env2 t1 t2
    | Forall (a, b1), Forall (b, b2) ->
        let lvl = Ident.Map.cardinal env1 in
        go (Ident.Map.add a lvl env1) (Ident.Map.add b lvl env2) b1 b2
    | _ -> false
  in
  go Ident.Map.empty Ident.Map.empty t1 t2

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

(** Precedence-aware printer: [forall] binds loosest, then arrows
    (right-associative), then application. *)
let pp ppf ty =
  let rec go prec ppf ty =
    match ty with
    | Var a -> Ident.pp ppf a
    | Con c -> Fmt.string ppf c
    | App (f, a) ->
        let doc ppf () = Fmt.pf ppf "%a %a" (go 10) f (go 11) a in
        if prec > 10 then Fmt.parens doc ppf () else doc ppf ()
    | Arrow (s, t) ->
        let doc ppf () = Fmt.pf ppf "%a -> %a" (go 6) s (go 5) t in
        if prec > 5 then Fmt.parens doc ppf () else doc ppf ()
    | Forall _ ->
        let vars, body = split_foralls ty in
        let doc ppf () =
          Fmt.pf ppf "forall %a. %a"
            Fmt.(list ~sep:sp Ident.pp)
            vars (go 0) body
        in
        if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  in
  go 0 ppf ty

let to_string ty = Fmt.str "%a" pp ty
