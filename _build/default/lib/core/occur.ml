(** Occurrence analysis.

    Computes, for every free variable of an expression, how often and
    {e how} it occurs:

    - the raw occurrence count (for dead-code elimination and
      inline-once decisions);
    - whether any occurrence sits under a lambda (inlining a redex
      under a lambda can duplicate work);
    - whether {e every} occurrence is a saturated call in {e tail
      position}, and with what consistent argument shape.

    The last item is the analysis of Sec. 4: "essentially a
    free-variable analysis that also tracks whether each free variable
    has appeared only in the holes of tail contexts". It is what
    {!Contify} consumes. Tail positions follow the tail contexts [L] of
    Fig. 1: the expression itself, case branches, let bodies, and join
    right-hand sides and bodies — but {e not} case scrutinees,
    application arguments or heads, lambda bodies, or let right-hand
    sides. *)

open Syntax

(** Shape of a call: number of type arguments and value arguments. *)
type call_shape = { n_ty : int; n_val : int }

type info = {
  count : int;  (** Total number of occurrences. *)
  under_lam : bool;  (** Some occurrence is under a (ty)lambda. *)
  all_tail : bool;  (** Every occurrence is a call in tail position. *)
  shape : call_shape option;
      (** The consistent call shape, if [all_tail] and all occurrences
          agree; meaningless otherwise. *)
}

type t = info Ident.Map.t

let no_info = { count = 0; under_lam = false; all_tail = true; shape = None }

let merge_info a b =
  let shape_ok =
    match (a.shape, b.shape) with
    | Some s, Some s' -> if s = s' then Some s else None
    | None, s | s, None -> s
  in
  let consistent =
    match (a.shape, b.shape) with
    | Some s, Some s' -> s = s'
    | _ -> true
  in
  {
    count = a.count + b.count;
    under_lam = a.under_lam || b.under_lam;
    all_tail = a.all_tail && b.all_tail && consistent;
    shape = shape_ok;
  }

let union : t -> t -> t =
  Ident.Map.union (fun _ a b -> Some (merge_info a b))

let unions = List.fold_left union Ident.Map.empty

(** Mark every entry as occurring under a lambda and (therefore) not in
    tail position. *)
let under_lambda (m : t) : t =
  Ident.Map.map (fun i -> { i with under_lam = true; all_tail = false }) m

(** Mark every entry as not in tail position (used for evaluation
    positions like case scrutinees and for argument positions). *)
let non_tail (m : t) : t = Ident.Map.map (fun i -> { i with all_tail = false }) m

(** Mark every entry as work-duplicating if inlined (an occurrence
    inside a {e recursive} join's right-hand side runs once per jump),
    without disturbing tail-ness — outer bindings may still be
    contified. *)
let work_dup (m : t) : t = Ident.Map.map (fun i -> { i with under_lam = true }) m

(* When enabled (see [with_binder_info]), records the usage of each
   binder at the moment its scope is closed. *)
let recorder : info Ident.Map.t ref option ref = ref None

let record (x : var) (m : t) =
  match !recorder with
  | None -> ()
  | Some acc ->
      let i =
        Option.value ~default:no_info (Ident.Map.find_opt x.v_name m)
      in
      acc := Ident.Map.add x.v_name i !acc

let remove_binders xs (m : t) =
  List.fold_left
    (fun m (x : var) ->
      record x m;
      Ident.Map.remove x.v_name m)
    m xs

let remove_tyvars _tvs (m : t) = m

(** [analyze ~tail e] returns usage info for the free variables of [e].
    [tail] says whether [e] itself sits in tail position. *)
let rec analyze ~tail (e : expr) : t =
  match e with
  | Var _ | App _ | TyApp _ -> analyze_spine ~tail e
  | Lit _ -> Ident.Map.empty
  | Con (_, _, es) | Prim (_, es) ->
      non_tail (unions (List.map (analyze ~tail:false) es))
  | Lam (x, b) -> under_lambda (remove_binders [ x ] (analyze ~tail:false b))
  | TyLam (a, b) -> under_lambda (remove_tyvars [ a ] (analyze ~tail:false b))
  | Let ((NonRec (x, rhs) | Strict (x, rhs)), body) ->
      union
        (non_tail (analyze ~tail:false rhs))
        (remove_binders [ x ] (analyze ~tail body))
  | Let (Rec pairs, body) ->
      let xs = List.map fst pairs in
      let rhss =
        unions (List.map (fun (_, rhs) -> analyze ~tail:false rhs) pairs)
      in
      remove_binders xs (union (non_tail rhss) (analyze ~tail body))
  | Case (scrut, alts) ->
      let s = non_tail (analyze ~tail:false scrut) in
      let bs =
        List.map
          (fun { alt_pat; alt_rhs } ->
            remove_binders (pat_binders alt_pat) (analyze ~tail alt_rhs))
          alts
      in
      union s (unions bs)
  | Join (jb, body) ->
      let ds = join_defns jb in
      let jvs = List.map (fun d -> d.j_var) ds in
      (* Join rhss are tail contexts. For the recursive case, the
         sibling labels are removed from the rhs usage. *)
      let rhss =
        List.map
          (fun d ->
            let m = analyze ~tail d.j_rhs in
            let m = remove_binders d.j_params m in
            match jb with
            | JNonRec _ -> m
            | JRec _ ->
                (* A recursive rhs executes once per jump: inlining an
                   outer binding into it duplicates work. *)
                work_dup (remove_binders jvs m))
          ds
      in
      let body_use =
        match jb with
        | JNonRec d -> remove_binders [ d.j_var ] (analyze ~tail body)
        | JRec _ -> remove_binders jvs (analyze ~tail body)
      in
      union (unions rhss) body_use
  | Jump (j, phis, es, _) ->
      let self =
        Ident.Map.singleton j.v_name
          {
            count = 1;
            under_lam = false;
            all_tail = true;
            shape = Some { n_ty = List.length phis; n_val = List.length es };
          }
      in
      union self (non_tail (unions (List.map (analyze ~tail:false) es)))

(* An application spine [f @t1 .. @tm a1 .. an]: the head variable is a
   call with the spine's shape; tail-ness is inherited. Mixed spines
   (type args after value args, or non-variable heads) are analyzed
   structurally. *)
and analyze_spine ~tail e : t =
  let head, args = collect_args e in
  match head with
  | Var v ->
      let n_ty =
        List.length (List.filter (function `Ty _ -> true | _ -> false) args)
      in
      let n_val =
        List.length (List.filter (function `Val _ -> true | _ -> false) args)
      in
      (* Only count a "canonical" spine (all type args first) as a
         call; anything else is a non-tail naked use. *)
      let canonical =
        let rec check seen_val = function
          | [] -> true
          | `Ty _ :: rest -> (not seen_val) && check false rest
          | `Val _ :: rest -> check true rest
        in
        check false args
      in
      let self =
        Ident.Map.singleton v.v_name
          {
            count = 1;
            under_lam = false;
            all_tail = tail && canonical;
            shape = (if canonical then Some { n_ty; n_val } else None);
          }
      in
      let arg_uses =
        List.filter_map
          (function `Val a -> Some (analyze ~tail:false a) | `Ty _ -> None)
          args
      in
      union self (non_tail (unions arg_uses))
  | _ ->
      let head_use = non_tail (analyze ~tail:false head) in
      let arg_uses =
        List.filter_map
          (function `Val a -> Some (analyze ~tail:false a) | `Ty _ -> None)
          args
      in
      union head_use (non_tail (unions arg_uses))

(** Usage of [x] within [e] ([e] regarded as being in tail position). *)
let lookup (m : t) (x : var) =
  Option.value ~default:no_info (Ident.Map.find_opt x.v_name m)

(** Convenience: analysis of a complete (tail-position) expression. *)
let of_expr e = analyze ~tail:true e

(** [is_dead m x]: [x] does not occur. *)
let is_dead m (x : var) = (lookup m x).count = 0

(** [occurs_once_safely m x]: exactly one occurrence, not under a
    lambda — inlining is work-safe. *)
let occurs_once_safely m (x : var) =
  let i = lookup m x in
  i.count = 1 && not i.under_lam

(** [with_binder_info e] analyzes [e] and additionally returns the
    usage information of every {e binder} in [e] (recorded at the point
    its scope closes), keyed by the binder's unique. The simplifier
    consumes this to make dead-code and inline-once decisions. *)
let with_binder_info e : t * info Ident.Map.t =
  let acc = ref Ident.Map.empty in
  recorder := Some acc;
  Fun.protect
    ~finally:(fun () -> recorder := None)
    (fun () ->
      let free = analyze ~tail:true e in
      (free, !acc))
