(** The Float Out pass (light full laziness): move closed let bindings
    out of lambdas. Join bindings are never moved (Sec. 7). *)

(** Returns the floated term and whether anything moved. *)
val run : Syntax.expr -> Syntax.expr * bool
