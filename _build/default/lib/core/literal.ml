(** Unboxed literals.

    The paper's Fig. 1 has only algebraic data; like GHC Core we add
    machine literals so that realistic benchmark programs can be written
    (see DESIGN.md, "Substitutions"). Literals are unboxed: evaluating
    one never allocates. *)

type t =
  | Int of int  (** Machine integer, [Int]. *)
  | Char of char  (** Machine character, [Char]. *)
  | String of string  (** Immutable string constant, [String]. *)

(** The type of a literal. *)
let ty = function
  | Int _ -> Types.int
  | Char _ -> Types.char
  | String _ -> Types.string

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Char x, Char y -> Char.equal x y
  | String x, String y -> String.equal x y
  | _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Char x, Char y -> Char.compare x y
  | String x, String y -> String.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Char _, _ -> -1
  | _, Char _ -> 1

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Char c -> Fmt.pf ppf "%C" c
  | String s -> Fmt.pf ppf "%S" s
