lib/core/builder.ml: Datacon Ident List Literal Primop Syntax Types
