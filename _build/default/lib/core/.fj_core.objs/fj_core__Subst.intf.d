lib/core/subst.mli: Ident Syntax Types
