lib/core/spec_constr.mli: Syntax
