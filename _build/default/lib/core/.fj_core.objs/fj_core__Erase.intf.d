lib/core/erase.mli: Syntax
