lib/core/cps.ml: Fmt List Primop Syntax Types
