lib/core/cps.mli: Syntax Types
