lib/core/cse.ml: List Pretty Stringmap Syntax
