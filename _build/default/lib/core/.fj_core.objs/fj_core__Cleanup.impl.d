lib/core/cleanup.ml: Axioms List Occur Primop Syntax
