lib/core/axioms.mli: Syntax Types
