lib/core/simplify.ml: Cleanup Datacon Demote Fun Ident List Literal Occur Primop Subst Syntax Types
