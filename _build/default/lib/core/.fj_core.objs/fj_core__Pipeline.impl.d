lib/core/pipeline.ml: Contify Cse Datacon Demand Float_in Float_out Fmt Lint List Rules Simplify Spec_constr String Syntax
