lib/core/demote.ml: Ident List Syntax Types
