lib/core/demand.ml: Ident List Option Syntax Types
