lib/core/float_in.mli: Syntax
