lib/core/pretty.ml: Datacon Fmt Ident Literal Primop Syntax Types
