lib/core/datacon.mli: Format Ident Types
