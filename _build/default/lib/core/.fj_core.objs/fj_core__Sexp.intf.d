lib/core/sexp.mli: Datacon Format Syntax Types
