lib/core/cleanup.mli: Syntax
