lib/core/primop.ml: Char Fmt List Literal String Types
