lib/core/contify.mli: Syntax
