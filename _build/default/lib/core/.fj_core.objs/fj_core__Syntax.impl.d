lib/core/syntax.ml: Datacon Fmt Ident List Literal Primop Types
