lib/core/eval.ml: Datacon Fmt Ident List Literal Option Primop String Syntax
