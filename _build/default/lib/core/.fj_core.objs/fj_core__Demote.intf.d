lib/core/demote.mli: Syntax
