lib/core/types.mli: Format Ident
