lib/core/lint.mli: Datacon Format Syntax Types
