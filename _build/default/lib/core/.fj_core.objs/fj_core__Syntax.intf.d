lib/core/syntax.mli: Datacon Ident Literal Primop Types
