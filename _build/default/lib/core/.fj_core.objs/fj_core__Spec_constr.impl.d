lib/core/spec_constr.ml: Cleanup Datacon Ident List Option Syntax Types
