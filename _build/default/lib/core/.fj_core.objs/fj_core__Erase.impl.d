lib/core/erase.ml: Demote List Subst Syntax Types
