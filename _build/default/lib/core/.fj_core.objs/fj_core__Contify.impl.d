lib/core/contify.ml: Fun Ident List Occur Option Syntax Types
