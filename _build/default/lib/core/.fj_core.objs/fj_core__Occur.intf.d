lib/core/occur.mli: Ident Syntax
