lib/core/float_out.ml: Ident List Syntax Types
