lib/core/subst.ml: Ident List Syntax Types
