lib/core/occur.ml: Fun Ident List Option Syntax
