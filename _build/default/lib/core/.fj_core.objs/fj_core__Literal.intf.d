lib/core/literal.mli: Format Types
