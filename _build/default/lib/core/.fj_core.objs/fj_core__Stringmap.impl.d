lib/core/stringmap.ml: Map String
