lib/core/eval.mli: Format Literal Syntax
