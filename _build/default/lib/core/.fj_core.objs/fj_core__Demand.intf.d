lib/core/demand.mli: Ident Syntax
