lib/core/ident.mli: Format Hashtbl Map Set
