lib/core/types.ml: Fmt Ident Int List String
