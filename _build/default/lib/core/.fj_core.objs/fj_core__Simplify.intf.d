lib/core/simplify.mli: Datacon Syntax
