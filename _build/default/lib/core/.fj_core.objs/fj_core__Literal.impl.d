lib/core/literal.ml: Char Fmt Int String Types
