lib/core/rules.mli: Ident Syntax Types
