lib/core/float_out.mli: Syntax
