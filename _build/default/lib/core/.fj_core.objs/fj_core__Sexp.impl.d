lib/core/sexp.ml: Char Datacon Fmt Fun Ident List Literal Primop Scanf String Syntax Types
