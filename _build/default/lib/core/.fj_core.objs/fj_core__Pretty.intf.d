lib/core/pretty.mli: Format Syntax
