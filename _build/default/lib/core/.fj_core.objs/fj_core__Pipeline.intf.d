lib/core/pipeline.mli: Datacon Format Lint Rules Syntax
