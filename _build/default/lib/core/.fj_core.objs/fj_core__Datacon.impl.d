lib/core/datacon.ml: Fmt Ident List String Stringmap Types
