lib/core/builder.mli: Datacon Literal Syntax Types
