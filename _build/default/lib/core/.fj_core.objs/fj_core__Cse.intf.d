lib/core/cse.mli: Syntax
