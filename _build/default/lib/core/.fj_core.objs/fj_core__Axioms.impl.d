lib/core/axioms.ml: Datacon Ident List Literal Option Subst Syntax Types
