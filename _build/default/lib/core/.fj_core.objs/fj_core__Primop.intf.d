lib/core/primop.mli: Format Literal Types
