lib/core/lint.ml: Datacon Fmt Ident List Literal Pretty Primop String Syntax Types
