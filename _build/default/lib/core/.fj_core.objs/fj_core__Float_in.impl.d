lib/core/float_in.ml: Ident List Option Syntax
