lib/core/rules.ml: Datacon Ident List Literal Pretty Primop Subst Syntax Types
