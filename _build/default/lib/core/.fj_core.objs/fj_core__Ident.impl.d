lib/core/ident.ml: Fmt Hashtbl Int Map Set
