(** A higher-order-abstract-syntax builder DSL for System F_J terms.

    Tests, examples and benchmarks construct well-typed terms through
    this module rather than the raw constructors: binders are allocated
    fresh automatically and occurrences are passed to OCaml functions,
    so scoping mistakes are impossible by construction.

    {[
      let open Builder in
      lam "x" Types.int (fun x -> add x (int 1))
    ]} *)

open Syntax

let dc = Datacon.builtins

(* ------------------------------------------------------------------ *)
(* Literals and primops                                                *)
(* ------------------------------------------------------------------ *)

let int n = Lit (Literal.Int n)
let char c = Lit (Literal.Char c)
let str s = Lit (Literal.String s)
let add a b = Prim (Primop.Add, [ a; b ])
let sub a b = Prim (Primop.Sub, [ a; b ])
let mul a b = Prim (Primop.Mul, [ a; b ])
let div_ a b = Prim (Primop.Div, [ a; b ])
let mod_ a b = Prim (Primop.Mod, [ a; b ])
let eq a b = Prim (Primop.Eq, [ a; b ])
let ne a b = Prim (Primop.Ne, [ a; b ])
let lt a b = Prim (Primop.Lt, [ a; b ])
let le a b = Prim (Primop.Le, [ a; b ])
let gt a b = Prim (Primop.Gt, [ a; b ])
let ge a b = Prim (Primop.Ge, [ a; b ])

(* ------------------------------------------------------------------ *)
(* Binders                                                             *)
(* ------------------------------------------------------------------ *)

(** [lam "x" ty body]: a value abstraction; [body] receives the
    occurrence of the binder. *)
let lam name ty (body : expr -> expr) : expr =
  let x = mk_var name ty in
  Lam (x, body (Var x))

let lam2 n1 t1 n2 t2 body =
  lam n1 t1 (fun x -> lam n2 t2 (fun y -> body x y))

let lam3 n1 t1 n2 t2 n3 t3 body =
  lam n1 t1 (fun x -> lam n2 t2 (fun y -> lam n3 t3 (fun z -> body x y z)))

(** [tlam "a" body]: a type abstraction; [body] receives the type
    variable as a type. *)
let tlam name (body : Types.t -> expr) : expr =
  let a = Ident.fresh name in
  TyLam (a, body (Types.Var a))

(** [let_ "x" rhs body]: non-recursive let; the binder's type is
    computed from [rhs]. *)
let let_ name rhs (body : expr -> expr) : expr =
  let x = mk_var name (ty_of rhs) in
  Let (NonRec (x, rhs), body (Var x))

(** [letrec1 "f" ty rhs body]: single recursive binding; both [rhs] and
    [body] receive the occurrence. *)
let letrec1 name ty (rhs : expr -> expr) (body : expr -> expr) : expr =
  let f = mk_var name ty in
  Let (Rec [ (f, rhs (Var f)) ], body (Var f))

(** [join1 "j" params rhs body]: non-recursive join point with value
    parameters [(name, ty) list]; [rhs] receives the parameter
    occurrences, [body] receives a jump-builder taking the arguments
    and the claimed result type. *)
let join1 name (params : (string * Types.t) list) (rhs : expr list -> expr)
    (body : (expr list -> Types.t -> expr) -> expr) : expr =
  let ps = List.map (fun (n, t) -> mk_var n t) params in
  let jv = mk_join_var name [] ps in
  let defn =
    {
      j_var = jv;
      j_tyvars = [];
      j_params = ps;
      j_rhs = rhs (List.map (fun p -> Var p) ps);
    }
  in
  Join (JNonRec defn, body (fun args ty -> Jump (jv, [], args, ty)))

(** [joinrec1 "j" params rhs body]: recursive join point; [rhs] also
    receives the jump-builder for self-jumps. *)
let joinrec1 name (params : (string * Types.t) list)
    (rhs : (expr list -> Types.t -> expr) -> expr list -> expr)
    (body : (expr list -> Types.t -> expr) -> expr) : expr =
  let ps = List.map (fun (n, t) -> mk_var n t) params in
  let jv = mk_join_var name [] ps in
  let jump args ty = Jump (jv, [], args, ty) in
  let defn =
    {
      j_var = jv;
      j_tyvars = [];
      j_params = ps;
      j_rhs = rhs jump (List.map (fun p -> Var p) ps);
    }
  in
  Join (JRec [ defn ], body jump)

(* ------------------------------------------------------------------ *)
(* Datatypes                                                           *)
(* ------------------------------------------------------------------ *)

(** [con env "Just" phis args]: saturated constructor application. *)
let con ?(env = dc) name phis args : expr =
  match Datacon.find_con env name with
  | Some d -> Con (d, phis, args)
  | None -> invalid_arg ("Builder.con: unknown constructor " ^ name)

let true_ = con "True" [] []
let false_ = con "False" [] []
let unit_ = con "MkUnit" [] []
let nothing phi = con "Nothing" [ phi ] []
let just phi e = con "Just" [ phi ] [ e ]
let nil phi = con "Nil" [ phi ] []
let cons phi hd tl = con "Cons" [ phi ] [ hd; tl ]
let pair t1 t2 a b = con "MkPair" [ t1; t2 ] [ a; b ]
let list_ty phi = Types.apps (Types.Con "List") [ phi ]
let maybe_ty phi = Types.apps (Types.Con "Maybe") [ phi ]
let pair_ty a b = Types.apps (Types.Con "Pair") [ a; b ]

(** Build a literal list. *)
let list_of phi (es : expr list) : expr =
  List.fold_right (fun e acc -> cons phi e acc) es (nil phi)

(** [int_list [1;2;3]]. *)
let int_list ns = list_of Types.int (List.map int ns)

(* ------------------------------------------------------------------ *)
(* Case expressions                                                    *)
(* ------------------------------------------------------------------ *)

(** [alt_con env "Cons" phis ["x";"xs"] rhs]: a constructor alternative;
    binder types are the constructor's field types at [phis]; [rhs]
    receives the binder occurrences. *)
let alt_con ?(env = dc) name phis (binder_names : string list)
    (rhs : expr list -> expr) : alt =
  match Datacon.find_con env name with
  | None -> invalid_arg ("Builder.alt_con: unknown constructor " ^ name)
  | Some d ->
      let tys = Datacon.instantiate_args d phis in
      if List.length tys <> List.length binder_names then
        invalid_arg ("Builder.alt_con: arity mismatch for " ^ name);
      let xs = List.map2 mk_var binder_names tys in
      { alt_pat = PCon (d, xs); alt_rhs = rhs (List.map (fun x -> Var x) xs) }

let alt_lit l rhs = { alt_pat = PLit l; alt_rhs = rhs }
let alt_default rhs = { alt_pat = PDefault; alt_rhs = rhs }

let case scrut alts = Case (scrut, alts)

(** [if_ c t e] — case analysis on [Bool]. *)
let if_ c t e =
  Case
    ( c,
      [
        { alt_pat = PCon (Datacon.builtin "True", []); alt_rhs = t };
        { alt_pat = PCon (Datacon.builtin "False", []); alt_rhs = e };
      ] )

(* ------------------------------------------------------------------ *)
(* Application                                                         *)
(* ------------------------------------------------------------------ *)

let app f a = App (f, a)
let app2 f a b = App (App (f, a), b)
let app3 f a b c = App (App (App (f, a), b), c)
let tyapp f t = TyApp (f, t)
