(** Unboxed literals (an addition over the paper's Fig. 1, as in GHC
    Core); evaluating one never allocates. *)

type t = Int of int | Char of char | String of string

val ty : t -> Types.t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
