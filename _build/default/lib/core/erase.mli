(** Erasure of join points: the executable Theorem 5 (Sec. 6). *)

(** Rewrite so every jump is a tail call of its binding (Lemma 4), by
    iterating [commute] and [abort]. *)
val commuting_normal_form : Syntax.expr -> Syntax.expr

(** An equivalent System F term with no join points: commuting-normal
    form, then de-contification, then a freshening pass. *)
val erase : Syntax.expr -> Syntax.expr

(** Does the term contain no [Join]/[Jump]? *)
val is_join_free : Syntax.expr -> bool
