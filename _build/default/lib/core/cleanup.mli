(** Post-simplification cleanup: [drop], [jdrop] and once-used
    [jinline], applied bottom-up between simplifier passes. *)

(** Cheap, certainly-terminating expressions (cf. GHC's
    ok-for-speculation): safe to discard or force early. *)
val ok_for_speculation : Syntax.expr -> bool

(** One bottom-up pass; returns the new term and whether anything
    changed. *)
val cleanup : Syntax.expr -> Syntax.expr * bool
