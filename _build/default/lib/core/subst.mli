(** Capture-avoiding substitution: every binder passed is refreshed, so
    [expr empty e] is an alpha-copy sharing no binders with [e]. *)

type t = {
  terms : Syntax.expr Ident.Map.t;
  types : Types.t Ident.Map.t;
}

val empty : t
val is_empty : t -> bool
val add_term : Ident.t -> Syntax.expr -> t -> t
val add_type : Ident.t -> Types.t -> t -> t

val of_list :
  ?types:(Ident.t * Types.t) list -> (Ident.t * Syntax.expr) list -> t

val subst_ty : t -> Types.t -> Types.t

(** Refresh one binder, returning it and the extended substitution. *)
val clone_var : t -> Syntax.var -> Syntax.var * t

val clone_tyvar : t -> Ident.t -> Ident.t * t
val clone_vars : t -> Syntax.var list -> Syntax.var list * t
val clone_tyvars : t -> Ident.t list -> Ident.t list * t

(** Apply a substitution to an expression. *)
val expr : t -> Syntax.expr -> Syntax.expr

(** Apply to one join definition (cloning its binders). *)
val defn : t -> Syntax.join_defn -> Syntax.join_defn

(** Alpha-copy with entirely fresh binders. *)
val freshen : Syntax.expr -> Syntax.expr

(** [beta_reduce x arg body] = [body{arg/x}]. *)
val beta_reduce : Syntax.var -> Syntax.expr -> Syntax.expr -> Syntax.expr

(** [ty_beta_reduce a phi body] = [body{phi/a}]. *)
val ty_beta_reduce : Ident.t -> Types.t -> Syntax.expr -> Syntax.expr
