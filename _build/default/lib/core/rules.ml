(** User-written rewrite rules (GHC's RULES pragmas, Sec. 8–9).

    Stream fusion hinges on rules like

    {v "stream/unstream"  forall s. stream (unstream s) = s v}

    The paper argues such rules are easy to state and match in a
    direct-style IR precisely because nested applications stay visible
    (in CPS the pattern is smeared across continuations).

    A rule is a pair of templates over {e pattern variables} (term
    holes) and {e pattern type variables} (type holes). Matching is
    purely structural on application spines; a hole matches any
    subterm, consistently across repeated holes (alpha-respecting
    first-order matching — the same design point as GHC's rule
    matcher). *)

open Syntax

type rule = {
  name : string;
  term_holes : var list;  (** [forall s.] — free term pattern vars. *)
  ty_holes : Ident.t list;  (** [forall a.] — free type pattern vars. *)
  lhs : expr;
  rhs : expr;
}

(** Build a rule. The holes must appear free in [lhs]; every hole free
    in [rhs] must be bound by [lhs]. *)
let rule ~name ~term_holes ~ty_holes ~lhs ~rhs =
  { name; term_holes; ty_holes; lhs; rhs }

type binding = {
  terms : expr Ident.Map.t;
  types : Types.t Ident.Map.t;
}

let empty_binding = { terms = Ident.Map.empty; types = Ident.Map.empty }

(* First-order matching of [pat] against [e]. Pattern variables match
   any term; repeated pattern variables require alpha-equal matches.
   Binders inside patterns are matched up to alpha (we keep patterns
   binder-free in practice; binder matching requires exact structure
   after consistent renaming, which we approximate by alpha equality of
   the whole subterm for non-spine forms). *)
let match_rule (r : rule) (e : expr) : binding option =
  let is_term_hole v =
    List.exists (fun (h : var) -> Ident.equal h.v_name v.v_name) r.term_holes
  in
  let is_ty_hole a = List.exists (Ident.equal a) r.ty_holes in
  let exception No_match in
  let bind_term b (v : var) e =
    match Ident.Map.find_opt v.v_name b.terms with
    | Some e' ->
        (* Repeated hole: require syntactic alpha-equality. *)
        if Pretty.to_string e = Pretty.to_string e' then b else raise No_match
    | None -> { b with terms = Ident.Map.add v.v_name e b.terms }
  in
  let bind_ty b a t =
    match Ident.Map.find_opt a b.types with
    | Some t' -> if Types.equal t t' then b else raise No_match
    | None -> { b with types = Ident.Map.add a t b.types }
  in
  let rec go b pat e =
    match (pat, e) with
    | Var v, _ when is_term_hole v -> bind_term b v e
    | Var v, Var w when Ident.equal v.v_name w.v_name -> b
    | Lit l, Lit l' when Literal.equal l l' -> b
    | Con (d, phis, es), Con (d', phis', es')
      when Datacon.equal d d' && List.length es = List.length es' ->
        let b = List.fold_left2 go_ty b phis phis' in
        List.fold_left2 go b es es'
    | Prim (op, es), Prim (op', es')
      when Primop.equal op op' && List.length es = List.length es' ->
        List.fold_left2 go b es es'
    | App (f, a), App (f', a') -> go (go b f f') a a'
    | TyApp (f, t), TyApp (f', t') -> go_ty (go b f f') t t'
    | _ -> raise No_match
  and go_ty b pt t =
    match pt with
    | Types.Var a when is_ty_hole a -> bind_ty b a t
    | _ -> if Types.equal pt t then b else raise No_match
  in
  match go empty_binding r.lhs e with
  | b -> Some b
  | exception No_match -> None

(** Apply the first matching rule at the root of [e]. *)
let apply_at (rules : rule list) (e : expr) : (string * expr) option =
  List.find_map
    (fun r ->
      match match_rule r e with
      | None -> None
      | Some b ->
          let s =
            Ident.Map.fold
              (fun x e s -> Subst.add_term x e s)
              b.terms
              (Ident.Map.fold
                 (fun a t s -> Subst.add_type a t s)
                 b.types Subst.empty)
          in
          Some (r.name, Subst.expr s (Subst.freshen r.rhs)))
    rules

(** One bottom-up pass applying [rules] everywhere; returns the new
    term and the names of the rules fired. *)
let rewrite (rules : rule list) (e : expr) : expr * string list =
  let fired = ref [] in
  let rec go e =
    let e =
      match e with
      | Var _ | Lit _ -> e
      | Con (d, phis, es) -> Con (d, phis, List.map go es)
      | Prim (op, es) -> Prim (op, List.map go es)
      | App (f, a) -> App (go f, go a)
      | TyApp (f, t) -> TyApp (go f, t)
      | Lam (x, b) -> Lam (x, go b)
      | TyLam (a, b) -> TyLam (a, go b)
      | Let (NonRec (x, rhs), body) -> Let (NonRec (x, go rhs), go body)
      | Let (Strict (x, rhs), body) -> Let (Strict (x, go rhs), go body)
      | Let (Rec pairs, body) ->
          Let (Rec (List.map (fun (x, rhs) -> (x, go rhs)) pairs), go body)
      | Case (scrut, alts) ->
          Case (go scrut, List.map (fun a -> { a with alt_rhs = go a.alt_rhs }) alts)
      | Join (jb, body) ->
          let jb' =
            match jb with
            | JNonRec d -> JNonRec { d with j_rhs = go d.j_rhs }
            | JRec ds ->
                JRec (List.map (fun d -> { d with j_rhs = go d.j_rhs }) ds)
          in
          Join (jb', go body)
      | Jump (j, phis, es, ty) -> Jump (j, phis, List.map go es, ty)
    in
    match apply_at rules e with
    | Some (name, e') ->
        fired := name :: !fired;
        go e'
    | None -> e
  in
  let e' = go e in
  (e', List.rev !fired)
